//! Integration test: a small RIPng network converges, reroutes around
//! failures, and expires dead routes — the control-plane behaviour the
//! paper's router must sustain while forwarding at line rate.

use taco::ipv6::Ipv6Prefix;
use taco::router::Router;
use taco::routing::ripng::InterfaceConfig;
use taco::routing::{LpmTable, PortId, SequentialTable, SimTime};

type R = Router<SequentialTable>;

fn router(name: u16, stub: Option<&str>) -> R {
    let mut interfaces = vec![
        InterfaceConfig::new(
            PortId(0),
            format!("fe80::{}:0", name + 1).parse().expect("valid"),
            stub.map(|p| p.parse().expect("valid prefix")).into_iter().collect(),
        ),
        InterfaceConfig::new(
            PortId(1),
            format!("fe80::{}:1", name + 1).parse().expect("valid"),
            vec![],
        ),
    ];
    if stub.is_none() {
        interfaces.remove(0);
    }
    Router::new(interfaces, SequentialTable::new())
}

fn wire(a: &mut R, pa: PortId, b: &mut R, pb: PortId) {
    for d in a.card_mut(pa).drain_transmitted() {
        b.card_mut(pb).receive(d);
    }
}

fn prefix(s: &str) -> Ipv6Prefix {
    s.parse().expect("valid prefix")
}

#[test]
fn line_topology_converges_with_correct_metrics() {
    let mut r0 = router(0, Some("2001:db8:a::/48"));
    let mut r1 = router(1, Some("2001:db8:b::/48"));
    let mut r2 = router(2, Some("2001:db8:c::/48"));

    for step in 0..8u64 {
        let now = SimTime::from_secs(step * 5);
        r0.tick(now);
        r1.tick(now);
        r2.tick(now);
        wire(&mut r0, PortId(1), &mut r1, PortId(0));
        wire(&mut r1, PortId(0), &mut r0, PortId(1));
        wire(&mut r1, PortId(1), &mut r2, PortId(0));
        wire(&mut r2, PortId(0), &mut r1, PortId(1));
        r0.card_mut(PortId(0)).drain_transmitted();
        r2.card_mut(PortId(0)).drain_transmitted();
    }

    // Everyone knows all three networks.
    for (name, r) in [("r0", &r0), ("r1", &r1), ("r2", &r2)] {
        assert_eq!(r.ripng().routes().count(), 3, "{name} incomplete");
    }
    // Metrics reflect distance: r0 reaches b at 2, c at 3.
    let metric = |r: &R, p: &str| {
        r.ripng()
            .routes()
            .find(|x| x.prefix() == prefix(p))
            .map(|x| x.metric())
            .expect("route present")
    };
    assert_eq!(metric(&r0, "2001:db8:a::/48"), 1);
    assert_eq!(metric(&r0, "2001:db8:b::/48"), 2);
    assert_eq!(metric(&r0, "2001:db8:c::/48"), 3);
    assert_eq!(metric(&r2, "2001:db8:a::/48"), 3);

    // The FIB serves a transit lookup end to end.
    let fib = r1.core().table();
    let hit = fib.lookup(&"2001:db8:c::99".parse().expect("valid"));
    assert!(hit.is_hit());
    assert_eq!(hit.route().expect("hit").interface(), PortId(1));
}

#[test]
fn silent_neighbour_routes_expire_and_are_garbage_collected() {
    let mut r0 = router(0, Some("2001:db8:a::/48"));
    let mut r1 = router(1, Some("2001:db8:b::/48"));

    // Converge.
    for step in 0..4u64 {
        let now = SimTime::from_secs(step * 5);
        r0.tick(now);
        r1.tick(now);
        wire(&mut r0, PortId(1), &mut r1, PortId(0));
        wire(&mut r1, PortId(0), &mut r0, PortId(1));
        r0.card_mut(PortId(0)).drain_transmitted();
        r1.card_mut(PortId(1)).drain_transmitted();
    }
    assert_eq!(r0.ripng().routes().count(), 2);

    // r1 goes silent: r0's learned route times out (180 s) while the
    // connected route stays.
    for step in 4..80u64 {
        let now = SimTime::from_secs(step * 5);
        r0.tick(now);
        r0.card_mut(PortId(0)).drain_transmitted();
        r0.card_mut(PortId(1)).drain_transmitted();
    }
    let remaining: Vec<_> = r0.ripng().routes().collect();
    assert_eq!(remaining.len(), 1, "{remaining:?}");
    assert!(remaining[0].is_connected());
    assert!(r0.ripng().stats().routes_expired >= 1);
    assert!(r0.ripng().stats().routes_deleted >= 1);

    // The FIB follows: traffic to the dead network now drops.
    assert!(!r0.core().table().lookup(&"2001:db8:b::1".parse().expect("valid")).is_hit());
}

#[test]
fn better_path_wins_in_a_triangle() {
    // r0 and r2 are directly connected AND connected through r1; r2
    // advertises its own network on both paths and r0 must pick the direct
    // (metric 2) one over the transit (metric 3) one.
    let mut r0 = Router::new(
        vec![
            InterfaceConfig::new(PortId(0), "fe80::1:0".parse().expect("valid"), vec![]),
            InterfaceConfig::new(PortId(1), "fe80::1:1".parse().expect("valid"), vec![]),
        ],
        SequentialTable::new(),
    );
    let mut r1 = router(1, None);
    let mut r2 = Router::new(
        vec![
            InterfaceConfig::new(
                PortId(0),
                "fe80::3:0".parse().expect("valid"),
                vec![prefix("2001:db8:c::/48")],
            ),
            InterfaceConfig::new(PortId(1), "fe80::3:1".parse().expect("valid"), vec![]),
            InterfaceConfig::new(PortId(2), "fe80::3:2".parse().expect("valid"), vec![]),
        ],
        SequentialTable::new(),
    );

    for step in 0..8u64 {
        let now = SimTime::from_secs(step * 5);
        r0.tick(now);
        r1.tick(now);
        r2.tick(now);
        // r0.p0 <-> r2.p1 (direct), r0.p1 <-> r1.p1... r1 has only port 1.
        wire(&mut r0, PortId(0), &mut r2, PortId(1));
        wire(&mut r2, PortId(1), &mut r0, PortId(0));
        // r0.p1 <-> r1.p1 and r1.p1 is also wired toward r2.p2: r1 relays.
        wire(&mut r0, PortId(1), &mut r1, PortId(1));
        wire(&mut r1, PortId(1), &mut r0, PortId(1));
        wire(&mut r2, PortId(2), &mut r1, PortId(1));
        r2.card_mut(PortId(0)).drain_transmitted();
    }

    let route =
        r0.ripng().routes().find(|r| r.prefix() == prefix("2001:db8:c::/48")).expect("learned");
    assert_eq!(route.metric(), 2, "direct path must win");
    assert_eq!(route.interface(), PortId(0));
}
