//! Integration test over the headline result: the reproduced Table 1 has
//! the paper's qualitative structure.  (The full-size table is printed by
//! `cargo run -p taco-bench --bin table1`; here a reduced routing table
//! keeps CI fast while preserving every ordering the paper reports.)

use taco::eval::{table1, ArchConfig, EvalRequest, LineRate};
use taco::routing::TableKind;

const ENTRIES: usize = 32;

#[test]
fn table1_reproduces_the_papers_structure() {
    let reports = table1::table1(LineRate::TEN_GBE, ENTRIES);
    // The paper's nine cells first (indices 0..9), then the appended
    // PATRICIA row (see `ArchConfig::table1_cells`).
    assert_eq!(reports.len(), 12);

    let freq = |kind: TableKind, cfg: usize| -> f64 {
        let idx = TableKind::PAPER_KINDS.iter().position(|k| *k == kind).expect("paper kind");
        reports[idx * 3 + cfg].required_frequency_hz
    };

    // Within every row: more interconnect never hurts.
    for kind in TableKind::PAPER_KINDS {
        assert!(freq(kind, 1) < freq(kind, 0), "{kind}: 3 buses must beat 1");
        assert!(freq(kind, 2) <= freq(kind, 1) * 1.01, "{kind}: 3 FUs must not lose");
    }

    // Between rows, for every configuration: sequential > tree > cam.
    for cfg in 0..3 {
        assert!(freq(TableKind::Sequential, cfg) > freq(TableKind::BalancedTree, cfg));
        assert!(freq(TableKind::BalancedTree, cfg) > freq(TableKind::Cam, cfg));
    }

    // The paper's bus-scaling factor (1 bus -> 3 buses ~ 2-3x).
    let scale = freq(TableKind::Sequential, 0) / freq(TableKind::Sequential, 1);
    assert!((1.8..3.5).contains(&scale), "bus scaling {scale}");

    // The paper's CAM observation: FUs barely matter once lookups are
    // constant-time.
    let cam_gain = freq(TableKind::Cam, 1) / freq(TableKind::Cam, 2);
    assert!(cam_gain < 1.25, "cam fu gain {cam_gain}");

    // 1-bus rows saturate their single bus (paper: 100%).
    for kind in TableKind::PAPER_KINDS {
        let idx = TableKind::PAPER_KINDS.iter().position(|k| *k == kind).expect("kind") * 3;
        assert!(
            reports[idx].bus_utilization > 0.9,
            "{kind} 1-bus utilisation {}",
            reports[idx].bus_utilization
        );
    }

    // The appended PATRICIA row keeps the same within-row structure: more
    // interconnect never hurts, and its 1-bus cell saturates the bus.
    let pat = |cfg: usize| reports[9 + cfg].required_frequency_hz;
    assert_eq!(reports[9].config.table, TableKind::Patricia);
    assert!(pat(1) < pat(0), "patricia: 3 buses must beat 1");
    assert!(pat(2) <= pat(1) * 1.01, "patricia: 3 FUs must not lose");
    assert!(reports[9].bus_utilization > 0.9);
}

#[test]
fn na_pattern_appears_at_full_scale_line_rate() {
    // At minimum-size frames (the adversarial 14.88 Mpps) the sequential
    // organisation is infeasible on 0.18um in every configuration, exactly
    // like the paper's 6 GHz / 2 GHz cells; the CAM stays comfortably
    // feasible.
    let seq = EvalRequest::new(ArchConfig::one_bus_one_fu(TableKind::Sequential))
        .rate(LineRate::TEN_GBE_MIN_FRAMES)
        .entries(ENTRIES)
        .run();
    assert!(!seq.is_feasible());
    let cam = EvalRequest::new(ArchConfig::three_bus_one_fu(TableKind::Cam))
        .rate(LineRate::TEN_GBE_MIN_FRAMES)
        .entries(ENTRIES)
        .run();
    assert!(cam.is_feasible(), "{:?}", cam.estimate);
}

#[test]
fn cam_fixed_point_latency_is_consistent() {
    // The CAM evaluation iterates clock <-> RTU latency to a fixed point;
    // verify the published pair is self-consistent: latency equals the
    // 40 ns search converted at the required clock.
    let r = EvalRequest::new(ArchConfig::three_bus_one_fu(TableKind::Cam))
        .rate(LineRate::TEN_GBE)
        .entries(ENTRIES)
        .run();
    let spec = taco::routing::cam::CamSpec::paper_default();
    assert_eq!(
        u64::from(r.rtu_latency_cycles),
        spec.search_cycles(r.required_frequency_hz),
        "latency {} inconsistent with clock {}",
        r.rtu_latency_cycles,
        r.required_frequency_hz
    );
}

#[test]
fn sequential_scales_linearly_tree_logarithmically() {
    use taco::eval::cycles_per_datagram;
    let seq = |n| cycles_per_datagram(&ArchConfig::one_bus_one_fu(TableKind::Sequential), n);
    let tree = |n| cycles_per_datagram(&ArchConfig::one_bus_one_fu(TableKind::BalancedTree), n);
    let cam = |n| cycles_per_datagram(&ArchConfig::one_bus_one_fu(TableKind::Cam), n);

    let (s16, s64) = (seq(16), seq(64));
    assert!(s64 / s16 > 2.0, "sequential must scale: {s16} -> {s64}");
    let (t16, t64) = (tree(16), tree(64));
    assert!(t64 / t16 < 1.6, "tree must not scale linearly: {t16} -> {t64}");
    let (c16, c64) = (cam(16), cam(64));
    assert!(c64 / c16 < 1.1, "cam must be flat: {c16} -> {c64}");
}
