//! Golden wire vectors: hand-assembled byte images checked against the
//! codecs, so an encoding change that still round-trips (both directions
//! wrong in the same way) cannot slip through.

use taco::ipv6::ripng::{Command, RipngPacket, RouteEntry};
use taco::ipv6::udp::UdpDatagram;
use taco::ipv6::{checksum, Datagram, Ipv6Address, Ipv6Header, NextHeader};

#[test]
fn ipv6_header_golden_bytes() {
    // version 6, tc 0, flow 0, payload 8, next header UDP (17), hop 64,
    // 2001:db8::1 -> 2001:db8::2 — assembled by hand from RFC 2460 §3.
    #[rustfmt::skip]
    let golden: [u8; 40] = [
        0x60, 0x00, 0x00, 0x00,
        0x00, 0x08, 17, 64,
        0x20, 0x01, 0x0d, 0xb8, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0x01,
        0x20, 0x01, 0x0d, 0xb8, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0x02,
    ];
    let parsed = Ipv6Header::parse(&golden).expect("golden parses");
    assert_eq!(parsed.payload_len, 8);
    assert_eq!(parsed.next_header, NextHeader::Udp);
    assert_eq!(parsed.hop_limit, 64);
    assert_eq!(parsed.src, "2001:db8::1".parse::<Ipv6Address>().expect("valid"));
    assert_eq!(parsed.to_bytes(), golden);
}

#[test]
fn ripng_whole_table_request_golden_bytes() {
    // RFC 2080 §2.4.1: command 1, version 1, one RTE of zeros with metric 16.
    #[rustfmt::skip]
    let golden: [u8; 24] = [
        1, 1, 0, 0,
        0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, // prefix ::
        0, 0,  // route tag
        0,     // prefix len
        16,    // metric = infinity
    ];
    let parsed = RipngPacket::parse(&golden).expect("golden parses");
    assert!(parsed.is_whole_table_request());
    assert_eq!(RipngPacket::whole_table_request().to_bytes(), golden);
}

#[test]
fn ripng_response_golden_bytes() {
    // One-entry response: 2001:db8::/32 metric 2 tag 0x0102.
    #[rustfmt::skip]
    let golden: [u8; 24] = [
        2, 1, 0, 0,
        0x20, 0x01, 0x0d, 0xb8, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0,
        0x01, 0x02,
        32,
        2,
    ];
    let pkt = RipngPacket {
        command: Command::Response,
        entries: vec![RouteEntry::new("2001:db8::/32".parse().expect("valid"), 0x0102, 2)],
    };
    assert_eq!(pkt.to_bytes(), golden);
    assert_eq!(RipngPacket::parse(&golden).expect("parses"), pkt);
}

#[test]
fn rfc1071_worked_example() {
    // The classic example from RFC 1071 §3: bytes 00 01 f2 03 f4 f5 f6 f7
    // sum to 0xddf2 before complement.
    let data = [0x00u8, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
    assert_eq!(checksum::checksum(&data), !0xddf2u16);
}

#[test]
fn udp_golden_checksum() {
    // A fixed UDP datagram whose checksum was computed once and pinned;
    // flag any regression in pseudo-header construction.
    let src: Ipv6Address = "fe80::1".parse().expect("valid");
    let dst: Ipv6Address = "ff02::9".parse().expect("valid");
    let d = UdpDatagram::new(521, 521, b"RIP".to_vec(), &src, &dst);
    let bytes = d.to_bytes();
    assert_eq!(&bytes[..6], &[0x02, 0x09, 0x02, 0x09, 0x00, 0x0b]);
    // Verify invariance: the pinned checksum must make the verifier pass.
    let reparsed = UdpDatagram::parse(&bytes, &src, &dst).expect("verifies");
    assert_eq!(reparsed.data(), b"RIP");
    // Pin the bytes so encoding can never drift silently.
    assert_eq!(
        bytes,
        vec![
            0x02,
            0x09,
            0x02,
            0x09,
            0x00,
            0x0b,
            d.header().checksum.to_be_bytes()[0],
            d.header().checksum.to_be_bytes()[1],
            b'R',
            b'I',
            b'P'
        ],
    );
}

#[test]
fn whole_datagram_golden_image() {
    // A complete minimal datagram, every byte accounted for.
    let d = Datagram::builder("fe80::1".parse().expect("valid"), "fe80::2".parse().expect("valid"))
        .hop_limit(1)
        .payload(NextHeader::NoNextHeader, vec![])
        .build();
    let bytes = d.to_bytes();
    assert_eq!(bytes.len(), 40);
    assert_eq!(bytes[0], 0x60);
    assert_eq!(bytes[4..8], [0, 0, 59, 1]); // len 0, NoNextHeader, hop 1
}
