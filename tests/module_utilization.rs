//! Integration test over the paper's "module utilization" output: the
//! simulator reports per-instance trigger rates, and FU replication spreads
//! the load across instances.

use taco::ipv6::{Datagram, NextHeader};
use taco::isa::{FuKind, FuRef, MachineConfig};
use taco::router::cycle::CycleRouter;
use taco::router::microcode::MicrocodeOptions;
use taco::routing::{PortId, Route, SequentialTable};

fn run(config: &MachineConfig) -> taco::sim::SimStats {
    let table = SequentialTable::from_routes((0..24u16).map(|i| {
        Route::new(
            format!("2001:db8:{i:x}::/48").parse().expect("valid"),
            "fe80::1".parse().expect("valid"),
            PortId(i % 4),
            1,
        )
    }));
    let mut router =
        CycleRouter::sequential(config, &table, &MicrocodeOptions::default()).expect("valid");
    let d = Datagram::builder(
        "2001:db8:ff::1".parse().expect("valid"),
        "2001:db8:17::9".parse().expect("valid"),
    )
    .hop_limit(64)
    .payload(NextHeader::Udp, vec![0u8; 16])
    .build();
    router.enqueue(PortId(0), &d).expect("fits");
    router.run(10_000_000).expect("halts");
    router.processor().stats().clone()
}

#[test]
fn replication_spreads_matcher_load_across_instances() {
    let narrow = run(&MachineConfig::three_bus_one_fu());
    let wide = run(&MachineConfig::three_bus_three_fu());

    let m = |s: &taco::sim::SimStats, i: u8| {
        s.fu_instance_triggers.get(&FuRef::new(FuKind::Matcher, i)).copied().unwrap_or(0)
    };
    // One instance carries everything on the narrow machine…
    assert!(m(&narrow, 0) > 0);
    assert_eq!(m(&narrow, 1), 0);
    // …and the three-matcher machine uses all three lanes.
    assert!(m(&wide, 0) > 0, "{:?}", wide.fu_instance_triggers);
    assert!(m(&wide, 1) > 0, "{:?}", wide.fu_instance_triggers);
    assert!(m(&wide, 2) > 0, "{:?}", wide.fu_instance_triggers);
    // Per-kind totals agree with per-instance sums.
    let total: u64 = (0..3).map(|i| m(&wide, i)).sum();
    assert_eq!(total, wide.triggers(FuKind::Matcher));
}

#[test]
fn module_utilization_is_a_rate() {
    let stats = run(&MachineConfig::three_bus_one_fu());
    let mmu = stats.module_utilization(FuRef::new(FuKind::Mmu, 0));
    assert!(mmu > 0.0 && mmu <= 1.0, "{mmu}");
    // The MMU is the scan's busiest unit.
    let matcher = stats.module_utilization(FuRef::new(FuKind::Matcher, 0));
    assert!(mmu > matcher, "mmu {mmu} vs matcher {matcher}");
}
