//! Internet-scale churn regression: the `table-churn` scenario on a
//! BGP-shaped table far beyond the paper's 100-entry cap, proving the
//! arena-backed engines recycle freed slots instead of leaking them.
//!
//! The debug-tier size here is 20k prefixes (the release-built 100k smoke
//! lives in `scripts/verify.sh` via the `churn` bench bin).  The bounded
//! arena invariant is stated as *no growth with churn cycles*: doubling
//! the measured window doubles the withdraw/re-advertise events, and the
//! footprint high-water mark must not move by a single word.

use taco_routing::TableKind;
use taco_workload::{run_scenario, ScenarioConfig, ScenarioMetrics, Workload, DEFAULT_SEED};

/// Debug-build-friendly internet scale.
const ENTRIES: u32 = 20_000;

fn churn(ticks: u32) -> Workload {
    Workload::TableChurn {
        seed: DEFAULT_SEED,
        ticks,
        packets_per_tick: 8,
        entries: ENTRIES,
        churn_every: 10,
        churn_size: 200,
    }
}

fn run(kind: TableKind, ticks: u32) -> ScenarioMetrics {
    run_scenario(&churn(ticks), &ScenarioConfig::new(kind))
}

#[test]
fn arena_engines_stay_bounded_across_churn_cycles_at_20k_prefixes() {
    for kind in [TableKind::Patricia, TableKind::Trie] {
        let short = run(kind, 60);
        let long = run(kind, 120);
        assert!(long.forwarded > 0, "{kind}: churn run forwarded nothing");
        assert!(long.table_updates > 0, "{kind}: no churn updates were serviced");
        assert!(long.table_memory_words > 0, "{kind}: footprint metric never sampled");
        assert_eq!(
            short.table_memory_words, long.table_memory_words,
            "{kind}: arena grew with extra churn cycles — the free list is leaking"
        );
    }
}

#[test]
fn patricia_footprint_matches_the_offline_build_at_scale() {
    // The harness seeds the table incrementally (RIPng adverts in card
    // batches); the high-water mark it reports must be what a one-shot
    // `from_routes` build of the same prefixes costs — incremental insert
    // buys churn capability, not a different memory story.  The scenario
    // router additionally carries one connected prefix per line card,
    // each worth at most a leaf plus a split node.
    use taco_router::traffic::TrafficGen;
    use taco_routing::{LpmTable, PatriciaTable};

    const PAT_NODE_WORDS: u64 = 16;
    const CONNECTED_PREFIXES: u64 = 4; // one per scenario port

    let routes = TrafficGen::new(DEFAULT_SEED, 4).bgp_table(ENTRIES as usize, false);
    let offline = PatriciaTable::from_routes(routes).memory_words() as u64;
    let measured = run(TableKind::Patricia, 30).table_memory_words;
    assert!(measured >= offline, "measured {measured} words below the offline build's {offline}");
    assert!(
        measured <= offline + CONNECTED_PREFIXES * 2 * PAT_NODE_WORDS,
        "incremental seeding changed the arena footprint: {measured} vs offline {offline}"
    );
}

#[test]
fn churn_metrics_are_deterministic_at_scale() {
    let a = run(TableKind::Patricia, 40);
    let b = run(TableKind::Patricia, 40);
    assert_eq!(a.to_json(), b.to_json(), "same seed, same metrics, byte for byte");
}
