//! Golden snapshot of the binary flow-trace format.
//!
//! A small blessed reference trace is checked in at
//! `tests/golden/reference.trace`, together with the byte-stable
//! `ScenarioMetrics` JSON of its CAM replay in
//! `tests/golden/reference_metrics.json`.  Between them they pin three
//! contracts at once: the generator (the same seed must keep producing
//! the same records), the on-disk format (the strict reader must keep
//! accepting old files byte-for-byte), and the replay (the scenario
//! engine must keep deriving the same metrics from the same records).
//!
//! To regenerate after an intentional change:
//!
//! ```text
//! BLESS=1 cargo test -p taco-workload --test golden_trace
//! ```
//!
//! then review both fixture diffs like any other code change.

use std::path::PathBuf;

use taco_routing::TableKind;
use taco_workload::{run_trace_replay, FlowTrace, ScenarioConfig, TraceGen};

/// The blessed generator parameters.  Deliberately small: the binary
/// fixture stays a few KiB while still exercising multi-flow interleaving
/// and every packet-size mode.
const SEED: u64 = 2002;
const TICKS: u32 = 120;
const FLOWS: u32 = 12;
const ENTRIES: u32 = 16;

fn golden(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden").join(name)
}

fn reference() -> FlowTrace {
    TraceGen::generate(SEED, TICKS, FLOWS, ENTRIES)
}

fn replay_json(trace: &FlowTrace) -> String {
    let config = ScenarioConfig::new(TableKind::Cam).service_per_tick(24);
    run_trace_replay(trace, &config, None).to_json()
}

#[test]
fn reference_trace_matches_the_blessed_fixture() {
    let current = reference().to_bytes();
    let path = golden("reference.trace");
    if std::env::var_os("BLESS").is_some() {
        std::fs::write(&path, &current).expect("write fixture");
        eprintln!("blessed {} ({} bytes)", path.display(), current.len());
        return;
    }
    let blessed = std::fs::read(&path).unwrap_or_else(|e| {
        panic!(
            "missing fixture {} ({e}); regenerate with \
             BLESS=1 cargo test -p taco-workload --test golden_trace",
            path.display()
        )
    });
    assert_eq!(
        current, blessed,
        "the generated trace drifted from the blessed bytes; if the change \
         is intentional, regenerate with BLESS=1 and review the diff"
    );
    // And the strict reader accepts the checked-in file as-is.
    let read_back = FlowTrace::from_bytes(&blessed).expect("blessed fixture parses");
    assert_eq!(read_back.digest(), reference().digest());
}

#[test]
fn reference_replay_matches_the_blessed_metrics() {
    let trace = reference();
    let current = format!("{}\n", replay_json(&trace));
    let path = golden("reference_metrics.json");
    if std::env::var_os("BLESS").is_some() {
        std::fs::write(&path, &current).expect("write fixture");
        eprintln!("blessed {}", path.display());
        return;
    }
    let blessed = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing fixture {} ({e}); regenerate with \
             BLESS=1 cargo test -p taco-workload --test golden_trace",
            path.display()
        )
    });
    assert_eq!(
        current, blessed,
        "the reference replay drifted from the blessed metrics; if the \
         change is intentional, regenerate with BLESS=1 and review the diff"
    );
}
