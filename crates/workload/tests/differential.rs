//! Differential forwarding test: the behavioural reference router and the
//! cycle-accurate microcoded router must hand down the same per-datagram
//! verdict — forwarded (same port, same rewritten hop limit), dropped, or
//! dropped-with-ICMP-error — for traffic drawn from **every builtin
//! workload** over **every routing-table organisation**.
//!
//! The reference is the oracle (plain Rust over a `SequentialTable`, the
//! organisation-independent LPM semantics); the subject is
//! [`CycleRouter::for_kind`] running the generated microcode on the
//! simulator.  Traffic is seeded from each workload's own seed, so the
//! whole suite is reproducible bit for bit.

use taco_ipv6::{Datagram, NextHeader};
use taco_isa::MachineConfig;
use taco_router::{
    CycleRouter, DropReason, ForwardDecision, MicrocodeOptions, ReferenceRouter, TrafficGen,
};
use taco_routing::{PortId, Route, SequentialTable, TableKind};
use taco_workload::Workload;

/// Data datagrams sampled per workload (the cycle router's buffer area
/// holds ~100 slots; edges ride on top of this).
const SAMPLE: usize = 24;

/// CAM search latency used for the `cam` organisation, in cycles.
const CAM_LATENCY: u32 = 3;

/// One of the router's own addresses — needed so the reference generates
/// ICMPv6 errors (an ICMP source must exist).  Traffic never targets it.
const ROUTER_ADDR: &str = "fe80::fe";

/// Every routing-table organisation the repo implements — the paper's
/// three plus the software trie baseline and the path-compressed
/// PATRICIA engine.
const ALL_KINDS: [TableKind; 5] = TableKind::ALL_KINDS;

/// The unibit trie serialises ~4 words per prefix bit, so a full
/// 100-entry workload table overflows the simulator's 64 Ki-word data
/// memory.  The trie rows run on a truncated slice — the reference sees
/// the same slice, so agreement is unaffected (traffic to truncated
/// routes becomes a no-route drop on both sides).  PATRICIA needs no cap:
/// path compression keeps a 100-entry table at ≤201 16-word nodes, well
/// inside the table area.
const TRIE_ROUTE_CAP: usize = 32;

/// The route slice organisation `kind` actually loads.
fn routes_for_kind(kind: TableKind, routes: &[Route]) -> &[Route] {
    match kind {
        TableKind::Trie => &routes[..routes.len().min(TRIE_ROUTE_CAP)],
        _ => routes,
    }
}

/// The projection of a forwarding decision both routers can express.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Verdict {
    /// Sent out `port` with the hop limit rewritten to `hop_limit`.
    Forwarded { port: u16, hop_limit: u8 },
    /// Discarded; `icmp_error` records whether the reference bounced an
    /// ICMPv6 error (the fast path drops silently either way).
    Dropped { icmp_error: bool },
}

impl std::fmt::Display for Verdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Verdict::Forwarded { port, hop_limit } => write!(f, "fwd:{port}:{hop_limit}"),
            Verdict::Dropped { icmp_error: true } => write!(f, "drop+icmp"),
            Verdict::Dropped { icmp_error: false } => write!(f, "drop"),
        }
    }
}

/// The oracle's verdicts, one per datagram.
fn reference_verdicts(routes: &[Route], traffic: &[Datagram]) -> Vec<Verdict> {
    let table = SequentialTable::from_routes(routes.iter().copied());
    let mut reference = ReferenceRouter::new(table, vec![ROUTER_ADDR.parse().unwrap()]);
    traffic
        .iter()
        .map(|d| match reference.process(PortId(0), &d.to_bytes()) {
            ForwardDecision::Forward { out_port, datagram } => {
                Verdict::Forwarded { port: out_port.0, hop_limit: datagram.header().hop_limit }
            }
            ForwardDecision::Drop { icmp, .. } => Verdict::Dropped { icmp_error: icmp.is_some() },
            ForwardDecision::Deliver { datagram } => {
                panic!("differential traffic must not be local: {:?}", datagram.header().dst)
            }
        })
        .collect()
}

/// The subject's observable outcome per datagram: `Some((port, hop_limit))`
/// when the datagram came back out of the oPPU, `None` when it was dropped.
fn cycle_outcomes(
    kind: TableKind,
    config: &MachineConfig,
    routes: &[Route],
    traffic: &[Datagram],
) -> Vec<Option<(u16, u8)>> {
    let mut router =
        CycleRouter::for_kind(kind, config, routes, CAM_LATENCY, &MicrocodeOptions::default())
            .expect("microcode validates");
    for d in traffic {
        router.enqueue(PortId(0), d).expect("traffic fits the buffer area");
    }
    router.run(50_000_000).expect("batch run halts");

    // Match outputs to inputs by byte image with the hop-limit decrement
    // undone (traffic is unique-ified below, so the mapping is exact).
    let out: std::collections::BTreeMap<Vec<u8>, (u16, u8)> = router
        .forwarded()
        .iter()
        .map(|(p, d)| {
            let mut bytes = d.to_bytes();
            bytes[7] += 1; // byte 7 of the IPv6 header is the hop limit
            (bytes, (p.0, d.header().hop_limit))
        })
        .collect();
    traffic.iter().map(|d| out.get(&d.to_bytes()).copied()).collect()
}

/// Asserts agreement for one workload × organisation, returning the
/// verdict transcript (used by the determinism test).
fn check_agreement(
    label: &str,
    kind: TableKind,
    routes: &[Route],
    traffic: &[Datagram],
) -> Vec<Verdict> {
    let config = MachineConfig::three_bus_one_fu();
    let routes = routes_for_kind(kind, routes);
    let reference = reference_verdicts(routes, traffic);
    let cycle = cycle_outcomes(kind, &config, routes, traffic);
    for (i, (r, c)) in reference.iter().zip(&cycle).enumerate() {
        let agree = match (r, c) {
            (Verdict::Forwarded { port, hop_limit }, Some((p, h))) => port == p && hop_limit == h,
            (Verdict::Dropped { .. }, None) => true,
            _ => false,
        };
        assert!(
            agree,
            "{label} on {kind}: datagram {i} (dst {:?}): reference says {r}, cycle says {c:?}",
            traffic[i].header().dst,
        );
    }
    reference
}

/// Seeded routes + traffic for one builtin workload: a sample of its data
/// stream plus hand-made edge datagrams (hop limits 0/1/2 and an
/// unroutable destination).
fn traffic_for(w: &Workload) -> (Vec<Route>, Vec<Datagram>) {
    let entries = match *w {
        Workload::SteadyForward { entries, .. }
        | Workload::BurstOverload { entries, .. }
        | Workload::TableChurn { entries, .. }
        | Workload::TraceReplay { entries, .. } => entries,
        Workload::RipngConvergence { neighbours, routes_per_neighbour, .. }
        | Workload::MixedPlane { neighbours, routes_per_neighbour, .. } => {
            neighbours * routes_per_neighbour
        }
    } as usize;
    let mut gen = TrafficGen::new(w.seed(), 4);
    let routes = gen.table(entries, false);
    let mut traffic: Vec<Datagram> =
        gen.forwarding_workload(&routes, SAMPLE, 0.85, 24).into_iter().map(|(_, d)| d).collect();

    // Edge datagrams: expiring, barely-surviving and unroutable.
    let routed = routes[0].prefix().addr();
    let src = "2001:db8:99::1".parse().unwrap();
    for hl in [0u8, 1, 2] {
        traffic.push(
            Datagram::builder(src, routed).hop_limit(hl).payload(NextHeader::Udp, vec![hl]).build(),
        );
    }
    // 9999::/16 is outside the generator's 2000::/4 allocation, so no
    // route ever covers it.
    traffic.push(
        Datagram::builder(src, "9999::1".parse().unwrap())
            .hop_limit(64)
            .payload(NextHeader::Udp, vec![0xee])
            .build(),
    );

    // Unique-ify by flow label so output matching by bytes is exact.
    for (i, d) in traffic.iter_mut().enumerate() {
        let mut bytes = d.to_bytes();
        bytes[2] = i as u8;
        *d = Datagram::parse(&bytes).expect("reparse");
    }
    (routes, traffic)
}

#[test]
fn builtin_workloads_agree_with_the_reference_on_every_kind() {
    for w in Workload::builtin() {
        let (routes, traffic) = traffic_for(&w);
        for kind in ALL_KINDS {
            let verdicts = check_agreement(w.name(), kind, &routes, &traffic);
            // The sample must exercise both paths, or the test is vacuous.
            let forwarded =
                verdicts.iter().filter(|v| matches!(v, Verdict::Forwarded { .. })).count();
            assert!(forwarded > 0, "{} on {kind}: nothing forwarded", w.name());
            assert!(forwarded < verdicts.len(), "{} on {kind}: nothing dropped", w.name());
        }
    }
}

#[test]
fn edge_datagrams_classify_as_the_rfc_says() {
    let routes = vec![
        Route::new("2001:db8::/32".parse().unwrap(), "fe80::1".parse().unwrap(), PortId(1), 1),
        Route::new("2001:db8:aa::/48".parse().unwrap(), "fe80::2".parse().unwrap(), PortId(2), 1),
    ];
    let src = "2001:db8:99::1".parse().unwrap();
    let dgram = |dst: &str, hl: u8, tag: u8| {
        Datagram::builder(src, dst.parse().unwrap())
            .hop_limit(hl)
            .payload(NextHeader::Udp, vec![tag])
            .build()
    };
    let traffic = vec![
        dgram("2001:db8:5::1", 0, 0),   // expires: ICMP time exceeded
        dgram("2001:db8:5::1", 1, 1),   // expires: would not survive the decrement
        dgram("2001:db8:5::1", 2, 2),   // barely survives: out port 1, hop limit 1
        dgram("2001:db8:aa::7", 64, 3), // longest match wins: port 2
        dgram("9999::1", 64, 4),        // no route: ICMP destination unreachable
        dgram("ff02::1", 64, 5),        // unserved multicast: silent drop
    ];
    let expected = vec![
        Verdict::Dropped { icmp_error: true },
        Verdict::Dropped { icmp_error: true },
        Verdict::Forwarded { port: 1, hop_limit: 1 },
        Verdict::Forwarded { port: 2, hop_limit: 63 },
        Verdict::Dropped { icmp_error: true },
        Verdict::Dropped { icmp_error: false },
    ];
    for kind in ALL_KINDS {
        let verdicts = check_agreement("edges", kind, &routes, &traffic);
        assert_eq!(verdicts, expected, "{kind}");
    }
}

#[test]
fn malformed_frames_drop_in_the_same_class_on_both_routers() {
    // Injected fault traffic: the reference must classify every frame as a
    // silent malformed drop (RFC 2460 parse failure — no ICMP), and the
    // cycle path must refuse or drop the very same frames, never forward
    // them.  A well-formed control frame proves the path stays open.
    let routes = vec![
        Route::new("2001:db8::/32".parse().unwrap(), "fe80::1".parse().unwrap(), PortId(1), 1),
        Route::new("2001:db8:aa::/48".parse().unwrap(), "fe80::2".parse().unwrap(), PortId(2), 1),
    ];
    let good =
        Datagram::builder("2001:db8:99::1".parse().unwrap(), "2001:db8:5::1".parse().unwrap())
            .hop_limit(64)
            .payload(NextHeader::Udp, vec![0xab])
            .build()
            .to_bytes();

    // Truncated frames: shorter than one IPv6 header, or cut mid-payload so
    // the declared payload length disagrees with the byte count.
    let truncated: Vec<Vec<u8>> =
        vec![vec![0x60], vec![0x60; 8], good[..39].to_vec(), good[..good.len() - 1].to_vec()];
    // Length-consistent frames whose version nibble is not 6: these pass a
    // pure length screen and must be caught by the header parse itself.
    let bad_version: Vec<Vec<u8>> = [0u8, 4, 7, 15]
        .iter()
        .map(|v| {
            let mut bytes = good.clone();
            bytes[0] = (bytes[0] & 0x0f) | (v << 4);
            bytes
        })
        .collect();

    // Reference verdicts: every malformed frame is a silent malformed drop.
    let table = SequentialTable::from_routes(routes.iter().copied());
    let mut reference = ReferenceRouter::new(table, vec![ROUTER_ADDR.parse().unwrap()]);
    for bytes in truncated.iter().chain(&bad_version) {
        match reference.process(PortId(0), bytes) {
            ForwardDecision::Drop { reason: DropReason::Malformed, icmp: None } => {}
            other => panic!("reference must drop malformed frames silently, got {other:?}"),
        }
    }
    assert!(matches!(
        reference.process(PortId(0), &good),
        ForwardDecision::Forward { out_port: PortId(1), .. }
    ));
    assert_eq!(reference.stats().dropped_malformed, (truncated.len() + bad_version.len()) as u64);

    // Cycle verdicts, on every organisation: truncated frames are screened
    // at the card (the paper's linecards hand over fully assembled
    // datagrams); bad-version frames enter the pipeline and the microcode's
    // version check drops them.  Nothing malformed ever forwards.
    let config = MachineConfig::three_bus_one_fu();
    for kind in ALL_KINDS {
        let mut router = CycleRouter::for_kind(
            kind,
            &config,
            &routes,
            CAM_LATENCY,
            &MicrocodeOptions::default(),
        )
        .expect("microcode validates");
        for bytes in &truncated {
            assert!(
                !router.enqueue_raw(PortId(0), bytes).expect("screening is not an error"),
                "{kind}: truncated frame must be refused at the card"
            );
        }
        for bytes in &bad_version {
            assert!(
                router.enqueue_raw(PortId(0), bytes).expect("fits the buffer area"),
                "{kind}: length-consistent frame reaches the pipeline"
            );
        }
        assert!(router.enqueue_raw(PortId(0), &good).expect("fits the buffer area"));
        router.run(50_000_000).expect("batch run halts");
        assert_eq!(router.malformed_rejected(), truncated.len() as u64, "{kind}");
        let forwarded = router.forwarded();
        assert_eq!(forwarded.len(), 1, "{kind}: only the well-formed frame forwards");
        assert_eq!(forwarded[0].0, PortId(1), "{kind}");
    }
}

#[test]
fn step_modes_forward_identically_on_every_kind() {
    // The compiled step loop must be invisible at the router's observable
    // surface: same forwarded datagrams (bytes, ports, emission order) and
    // same simulator counters as the interpretive reference, for every
    // organisation, on a full builtin-workload sample plus edge datagrams.
    use taco_router::StepMode;
    let config = MachineConfig::three_bus_one_fu();
    let (routes, traffic) = traffic_for(&Workload::steady_forward());
    for kind in ALL_KINDS {
        let routes = routes_for_kind(kind, &routes);
        let run = |mode: StepMode| {
            let mut router = CycleRouter::for_kind(
                kind,
                &config,
                routes,
                CAM_LATENCY,
                &MicrocodeOptions::default(),
            )
            .expect("microcode validates");
            router.set_step_mode(mode);
            for d in &traffic {
                router.enqueue(PortId(0), d).expect("traffic fits the buffer area");
            }
            let stats = router.run(50_000_000).expect("batch run halts");
            let out: Vec<(u16, Vec<u8>)> =
                router.forwarded().iter().map(|(p, d)| (p.0, d.to_bytes())).collect();
            (out, stats)
        };
        let (compiled_out, compiled_stats) = run(StepMode::Compiled);
        let (interp_out, interp_stats) = run(StepMode::Interpretive);
        assert_eq!(compiled_out, interp_out, "{kind}: forwarded streams diverged");
        assert_eq!(compiled_stats, interp_stats, "{kind}: simulator counters diverged");
        assert!(!compiled_out.is_empty(), "{kind}: vacuous sample");
    }
}

#[test]
fn verdict_transcripts_are_seeded_and_deterministic() {
    let w = Workload::burst_overload();
    let transcript = || -> String {
        let (routes, traffic) = traffic_for(&w);
        let mut out = String::new();
        for kind in ALL_KINDS {
            for v in check_agreement(w.name(), kind, &routes, &traffic) {
                out.push_str(&format!("{kind}:{v}\n"));
            }
        }
        out
    };
    assert_eq!(transcript(), transcript(), "same seed, same verdicts, byte for byte");

    // A different seed draws different traffic (the transcripts are seeded,
    // not accidental).
    let (_, a) = traffic_for(&w);
    let (_, b) = traffic_for(&w.with_seed(w.seed() ^ 1));
    assert_ne!(
        a.iter().map(Datagram::to_bytes).collect::<Vec<_>>(),
        b.iter().map(Datagram::to_bytes).collect::<Vec<_>>(),
    );
}
