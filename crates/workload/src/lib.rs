#![warn(missing_docs)]

//! Named, seeded workload scenarios for the behavioural router.
//!
//! The paper evaluates one workload — a steady forwarding stream — but
//! real IPv6 traffic is bursty and control-plane heavy.  This crate turns
//! the multi-linecard [`Router`](taco_router::Router) into a scenario
//! platform:
//!
//! * [`Workload`] — a named traffic pattern with all-integer parameters
//!   (`steady-forward`, `burst-overload`, `ripng-convergence`,
//!   `table-churn`, `mixed-plane`, `trace-replay`), hashable so
//!   evaluation caches can key on it;
//! * [`FlowTrace`] / [`TraceGen`] — versioned, checksummed binary flow
//!   traces and the seeded empirical generator behind `trace-replay`;
//! * [`ScenarioConfig`] — the router under test: table organisation,
//!   service rate, queue bound;
//! * [`run_scenario`] — the engine: deterministic tick-by-tick replay;
//! * [`ScenarioMetrics`] — what came out: throughput, drops by cause,
//!   queue depth, power-of-two latency histograms, table-update latency,
//!   all integers with byte-stable JSON.
//!
//! # Examples
//!
//! ```
//! use taco_routing::TableKind;
//! use taco_workload::{run_scenario, ScenarioConfig, Workload};
//!
//! let metrics = run_scenario(
//!     &Workload::by_name("burst-overload").unwrap(),
//!     &ScenarioConfig::new(TableKind::Cam).service_per_tick(24).queue_capacity(32),
//! );
//! assert!(metrics.dropped_overflow > 0); // bursts exceed the service rate
//! println!("{}", metrics.to_json());
//! ```

pub mod fault;
pub mod metrics;
pub mod scenario;
pub mod trace;

pub use fault::{FaultMetrics, FaultPlan, DEFAULT_FAULT_SEED};
pub use metrics::{
    coherence_to_json, FlowStats, LatencyHistogram, ScenarioMetrics, LATENCY_BUCKETS,
};
pub use scenario::{
    run_scenario, run_scenario_with_faults, run_trace_replay, ScenarioConfig, Workload,
    DEFAULT_SEED, PORTS, TICK_MILLIS,
};
pub use taco_sim::CoherenceStats;
pub use trace::{
    FlowTrace, TraceFormatError, TraceGen, TraceRecord, MAX_PAYLOAD, RECORD_BYTES, TRACE_MAGIC,
    TRACE_VERSION,
};
