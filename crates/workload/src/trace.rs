//! Binary flow traces and the empirical trace generator.
//!
//! A [`FlowTrace`] is a compact, versioned, checksummed recording of the
//! datagrams a scenario replays: fixed-width little-endian records (tick
//! offset, linecard, flow id, payload length, source and destination
//! address) behind an ASCII header carrying the generation parameters and
//! an FNV-1a checksum — the same header discipline as the `EvalCache`
//! snapshot format.  The reader is strict: a truncated body, a flipped
//! bit, a version skew or an out-of-range record surfaces as a structured
//! [`TraceFormatError`], never a panic and never a silently shortened
//! trace.
//!
//! [`TraceGen`] produces empirically shaped traces entirely in integers
//! (in-tree SplitMix64): heavy-tailed flow lengths, trimodal packet sizes
//! and prefix-local destination popularity, the IPv6 traffic shape
//! measured by Raicu's 2002 empirical IPv6 analysis.  The same
//! `(seed, ticks, flows, entries)` quadruple always regenerates the same
//! trace byte for byte, which is what lets [`Workload::TraceReplay`]
//! stay a compact hashable descriptor while still naming a concrete
//! packet sequence.

use std::fmt;
use std::path::Path;

use taco_ipv6::Ipv6Address;
use taco_router::traffic::TrafficGen;
use taco_router::SplitMix64;
use taco_routing::Route;

use crate::scenario::{Workload, PORTS};

/// Magic first line of the binary format.
pub const TRACE_MAGIC: &str = "taco-flowtrace";

/// Current format version.
pub const TRACE_VERSION: u32 = 1;

/// Encoded size of one [`TraceRecord`], in bytes.
pub const RECORD_BYTES: usize = 44;

/// Largest payload a record may carry (jumbo-frame bound); anything
/// larger is a corrupt record, not a datagram.
pub const MAX_PAYLOAD: u16 = 9216;

/// Salt mixed into the trace seed to derive the routing table the trace's
/// destinations were drawn against.  Part of the format: replaying a
/// trace seeds the router from `(seed, entries)` through this salt, so
/// the file alone fully determines the run.
const TABLE_SALT: u64 = 0x7AC0_F10D;

/// One replayed datagram: arrival tick, arrival linecard, flow identity,
/// payload size and the address pair.  Encodes to [`RECORD_BYTES`]
/// little-endian bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// Tick offset from the start of the measured window.
    pub tick: u32,
    /// Arrival linecard (must be `< PORTS`).
    pub linecard: u8,
    /// Payload bytes of the datagram (≤ [`MAX_PAYLOAD`]).
    pub payload_len: u16,
    /// Flow this datagram belongs to.
    pub flow_id: u32,
    /// Source address octets.
    pub src: [u8; 16],
    /// Destination address octets.
    pub dst: [u8; 16],
}

impl TraceRecord {
    /// Encodes the record to its fixed-width little-endian form.
    pub fn to_bytes(&self) -> [u8; RECORD_BYTES] {
        let mut b = [0u8; RECORD_BYTES];
        b[0..4].copy_from_slice(&self.tick.to_le_bytes());
        b[4] = self.linecard;
        b[5] = 0; // pad, must stay zero
        b[6..8].copy_from_slice(&self.payload_len.to_le_bytes());
        b[8..12].copy_from_slice(&self.flow_id.to_le_bytes());
        b[12..28].copy_from_slice(&self.src);
        b[28..44].copy_from_slice(&self.dst);
        b
    }

    /// Decodes one record; `index` names the record in errors.
    fn from_bytes(b: &[u8; RECORD_BYTES], index: usize, ticks: u32) -> TraceResult<TraceRecord> {
        let bad = |message: String| TraceFormatError::BadRecord { index, message };
        if b[5] != 0 {
            return Err(bad(format!("pad byte is {:#04x}, must be zero", b[5])));
        }
        let record = TraceRecord {
            tick: u32::from_le_bytes(b[0..4].try_into().expect("4 bytes")),
            linecard: b[4],
            payload_len: u16::from_le_bytes(b[6..8].try_into().expect("2 bytes")),
            flow_id: u32::from_le_bytes(b[8..12].try_into().expect("4 bytes")),
            src: b[12..28].try_into().expect("16 bytes"),
            dst: b[28..44].try_into().expect("16 bytes"),
        };
        if record.tick >= ticks {
            return Err(bad(format!("tick {} beyond the trace horizon {ticks}", record.tick)));
        }
        if u16::from(record.linecard) >= PORTS {
            return Err(bad(format!("linecard {} out of range 0..{PORTS}", record.linecard)));
        }
        if record.payload_len > MAX_PAYLOAD {
            return Err(bad(format!(
                "payload length {} exceeds the jumbo bound {MAX_PAYLOAD}",
                record.payload_len
            )));
        }
        Ok(record)
    }
}

/// What a strict trace read can reject.  Every variant names the problem
/// precisely enough to act on; none of them panic.
#[derive(Debug)]
pub enum TraceFormatError {
    /// The underlying file could not be read or written.
    Io(std::io::Error),
    /// The first line is not a `taco-flowtrace` header at all.
    MissingHeader,
    /// A `taco-flowtrace` header of a different version.
    VersionSkew {
        /// The version line actually found.
        found: String,
    },
    /// A malformed header parameter line.
    BadHeader {
        /// What was wrong.
        message: String,
    },
    /// The body checksum does not match the header's.
    ChecksumMismatch {
        /// Checksum declared in the header.
        expected: u64,
        /// Checksum computed over the body.
        found: u64,
    },
    /// The body is shorter or longer than `records` declares.
    Truncated {
        /// Body bytes the header promised.
        expected: usize,
        /// Body bytes actually present.
        found: usize,
    },
    /// A record decoded to an impossible value.
    BadRecord {
        /// Zero-based record index.
        index: usize,
        /// What was wrong.
        message: String,
    },
}

impl fmt::Display for TraceFormatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceFormatError::Io(e) => write!(f, "trace io error: {e}"),
            TraceFormatError::MissingHeader => {
                write!(f, "not a {TRACE_MAGIC} file (missing header)")
            }
            TraceFormatError::VersionSkew { found } => {
                write!(
                    f,
                    "trace version skew: found {found:?}, want \"{TRACE_MAGIC} v{TRACE_VERSION}\""
                )
            }
            TraceFormatError::BadHeader { message } => write!(f, "bad trace header: {message}"),
            TraceFormatError::ChecksumMismatch { expected, found } => write!(
                f,
                "trace checksum mismatch: header says {expected:016x}, body is {found:016x}"
            ),
            TraceFormatError::Truncated { expected, found } => {
                write!(f, "trace body truncated: expected {expected} bytes, found {found}")
            }
            TraceFormatError::BadRecord { index, message } => {
                write!(f, "bad trace record {index}: {message}")
            }
        }
    }
}

impl std::error::Error for TraceFormatError {}

impl From<std::io::Error> for TraceFormatError {
    fn from(e: std::io::Error) -> Self {
        TraceFormatError::Io(e)
    }
}

/// Shorthand for trace operations.
pub type TraceResult<T> = Result<T, TraceFormatError>;

/// FNV-1a 64-bit over `bytes` — the checksum and digest function of the
/// trace format (same constants as the `EvalCache` snapshot checksum).
pub fn trace_fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

/// A complete flow trace: the generation parameters (which double as the
/// compact [`Workload::TraceReplay`] descriptor) and the record sequence,
/// sorted by tick.  The digest is FNV-1a over the encoded record bytes
/// and keys evaluation caches.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlowTrace {
    /// Seed the trace was generated from (and the routing-table seed).
    pub seed: u64,
    /// Tick horizon: every record's tick is `< ticks`.
    pub ticks: u32,
    /// Flow count the generator was asked for.
    pub flows: u32,
    /// Routing-table size the destinations were drawn against.
    pub entries: u32,
    records: Vec<TraceRecord>,
    digest: u64,
}

impl FlowTrace {
    /// Builds a trace from explicit records, validating and sorting them
    /// exactly as the binary reader would.
    pub fn from_records(
        seed: u64,
        ticks: u32,
        flows: u32,
        entries: u32,
        mut records: Vec<TraceRecord>,
    ) -> TraceResult<FlowTrace> {
        records.sort_by_key(|r| r.tick);
        let body: Vec<u8> = records.iter().flat_map(|r| r.to_bytes()).collect();
        // Round-trip through the decoder so hand-built records obey the
        // same range rules as file-loaded ones.
        for (i, chunk) in body.chunks_exact(RECORD_BYTES).enumerate() {
            TraceRecord::from_bytes(chunk.try_into().expect("exact chunk"), i, ticks)?;
        }
        let digest = trace_fnv1a64(&body);
        Ok(FlowTrace { seed, ticks, flows, entries, records, digest })
    }

    /// The records, sorted by tick.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// FNV-1a digest over the encoded record bytes — the value cache keys
    /// carry.
    pub fn digest(&self) -> u64 {
        self.digest
    }

    /// The compact workload descriptor naming this trace's parameters.
    pub fn descriptor(&self) -> Workload {
        Workload::TraceReplay {
            seed: self.seed,
            ticks: self.ticks,
            flows: self.flows,
            entries: self.entries,
        }
    }

    /// The routing table this trace's destinations were drawn against —
    /// replay seeds the router with exactly this table.
    pub fn table(&self) -> Vec<Route> {
        trace_table(self.seed, self.entries)
    }

    /// Serialises header plus body to the versioned binary form.
    pub fn to_bytes(&self) -> Vec<u8> {
        let body: Vec<u8> = self.records.iter().flat_map(|r| r.to_bytes()).collect();
        let mut out = format!(
            "{TRACE_MAGIC} v{TRACE_VERSION}\nseed {}\nticks {}\nflows {}\nentries {}\n\
             records {}\nchecksum {:016x}\n",
            self.seed,
            self.ticks,
            self.flows,
            self.entries,
            self.records.len(),
            trace_fnv1a64(&body),
        )
        .into_bytes();
        out.extend_from_slice(&body);
        out
    }

    /// Strictly parses the binary form: header, version, checksum, exact
    /// body length, then every record's ranges.  All-or-nothing.
    pub fn from_bytes(bytes: &[u8]) -> TraceResult<FlowTrace> {
        let mut offset = 0usize;
        let mut line = |what: &str| -> TraceResult<&str> {
            let rest = &bytes[offset.min(bytes.len())..];
            let end = rest.iter().position(|&b| b == b'\n').ok_or_else(|| {
                TraceFormatError::BadHeader {
                    message: format!("{what} line missing (header cut short)"),
                }
            })?;
            let s = std::str::from_utf8(&rest[..end]).map_err(|_| TraceFormatError::BadHeader {
                message: format!("{what} line is not UTF-8"),
            })?;
            offset += end + 1;
            Ok(s)
        };
        let magic = match line("magic") {
            Ok(s) => s.to_owned(),
            Err(_) => return Err(TraceFormatError::MissingHeader),
        };
        if magic != format!("{TRACE_MAGIC} v{TRACE_VERSION}") {
            if magic.starts_with(TRACE_MAGIC) {
                return Err(TraceFormatError::VersionSkew { found: magic });
            }
            return Err(TraceFormatError::MissingHeader);
        }
        let mut field = |key: &'static str| -> TraceResult<u64> {
            let l = line(key)?;
            let value = l.strip_prefix(key).and_then(|v| v.strip_prefix(' ')).ok_or_else(|| {
                TraceFormatError::BadHeader {
                    message: format!("expected \"{key} <n>\", got {l:?}"),
                }
            })?;
            value.parse().map_err(|_| TraceFormatError::BadHeader {
                message: format!("{key} value {value:?} is not an integer"),
            })
        };
        let seed = field("seed")?;
        let ticks = u32::try_from(field("ticks")?)
            .map_err(|_| TraceFormatError::BadHeader { message: "ticks overflows u32".into() })?;
        let flows = u32::try_from(field("flows")?)
            .map_err(|_| TraceFormatError::BadHeader { message: "flows overflows u32".into() })?;
        let entries = u32::try_from(field("entries")?)
            .map_err(|_| TraceFormatError::BadHeader { message: "entries overflows u32".into() })?;
        let count = usize::try_from(field("records")?).map_err(|_| {
            TraceFormatError::BadHeader { message: "records overflows usize".into() }
        })?;
        let checksum_line = line("checksum")?;
        let checksum_hex =
            checksum_line.strip_prefix("checksum ").ok_or_else(|| TraceFormatError::BadHeader {
                message: format!("expected \"checksum <hex>\", got {checksum_line:?}"),
            })?;
        let expected = u64::from_str_radix(checksum_hex, 16).map_err(|_| {
            TraceFormatError::BadHeader { message: format!("checksum {checksum_hex:?} is not hex") }
        })?;

        let body = &bytes[offset..];
        let want = count.checked_mul(RECORD_BYTES).ok_or(TraceFormatError::BadHeader {
            message: "record count overflows the body size".into(),
        })?;
        if body.len() != want {
            return Err(TraceFormatError::Truncated { expected: want, found: body.len() });
        }
        let found = trace_fnv1a64(body);
        if found != expected {
            return Err(TraceFormatError::ChecksumMismatch { expected, found });
        }
        let mut records = Vec::with_capacity(count);
        for (i, chunk) in body.chunks_exact(RECORD_BYTES).enumerate() {
            records.push(TraceRecord::from_bytes(
                chunk.try_into().expect("exact chunk"),
                i,
                ticks,
            )?);
        }
        records.sort_by_key(|r| r.tick);
        let sorted_body: Vec<u8> = records.iter().flat_map(|r| r.to_bytes()).collect();
        let digest = trace_fnv1a64(&sorted_body);
        Ok(FlowTrace { seed, ticks, flows, entries, records, digest })
    }

    /// Writes the binary form to `path`.
    pub fn write(&self, path: &Path) -> TraceResult<()> {
        std::fs::write(path, self.to_bytes())?;
        Ok(())
    }

    /// Reads and strictly parses the binary form from `path`.
    pub fn read(path: &Path) -> TraceResult<FlowTrace> {
        FlowTrace::from_bytes(&std::fs::read(path)?)
    }
}

/// The routing table a trace's destinations were drawn against: derived
/// from `(seed, entries)` through [`TABLE_SALT`], so the trace file alone
/// (whose header carries both) fully determines the replay.
pub fn trace_table(seed: u64, entries: u32) -> Vec<Route> {
    TrafficGen::new(seed ^ TABLE_SALT, PORTS).table(entries as usize, false)
}

/// Seeded generator of empirically shaped flow traces (Raicu 2002 IPv6
/// measurement shapes, all-integer):
///
/// * **heavy-tailed flow lengths** — a discrete Pareto over octaves
///   (`P(length octave k) = 2^-(k+1)`), so a few elephant flows carry
///   most packets while mice dominate the flow count;
/// * **trimodal packet sizes** — ~55% small (ack-sized), ~25% medium
///   (576-byte legacy MTU), ~20% large (1280-byte IPv6 minimum MTU),
///   with small jitter inside each mode;
/// * **prefix-local destination popularity** — a Zipf-ish draw over the
///   derived routing table, so popular prefixes dominate while ~10% of
///   flows deliberately miss the table.
pub struct TraceGen {
    rng: SplitMix64,
}

/// Per-mille probability a flow's destination hits the routing table.
const HIT_MILLE: u64 = 900;

/// Octave cap for flow lengths (longest flow ≤ `2^11` packets before the
/// horizon truncates it).
const FLOW_OCTAVES: u32 = 10;

impl TraceGen {
    /// A generator over `seed`'s stream.
    pub fn new(seed: u64) -> Self {
        TraceGen { rng: SplitMix64::new(seed) }
    }

    /// Generates the canonical trace for a descriptor quadruple; the same
    /// inputs always produce the identical trace (and digest).
    pub fn generate(seed: u64, ticks: u32, flows: u32, entries: u32) -> FlowTrace {
        let mut g = TraceGen::new(seed);
        let routes = trace_table(seed, entries);
        let mut records = Vec::new();
        for flow_id in 0..flows {
            let start = if ticks > 0 { g.rng.below(u64::from(ticks)) as u32 } else { 0 };
            let len = g.flow_len();
            let linecard = g.rng.below(u64::from(PORTS)) as u8;
            let src = g.src_addr();
            let dst = g.destination(&routes).octets();
            for i in 0..len {
                let tick = start.saturating_add(i);
                if tick >= ticks {
                    break; // the horizon truncates elephant flows
                }
                records.push(TraceRecord {
                    tick,
                    linecard,
                    payload_len: g.payload_len(),
                    flow_id,
                    src,
                    dst,
                });
            }
        }
        records.sort_by_key(|r| r.tick);
        let body: Vec<u8> = records.iter().flat_map(|r| r.to_bytes()).collect();
        let digest = trace_fnv1a64(&body);
        FlowTrace { seed, ticks, flows, entries, records, digest }
    }

    /// Heavy-tailed flow length: octave from the geometric trailing-zero
    /// draw, jittered uniformly within the octave.
    fn flow_len(&mut self) -> u32 {
        let octave = self.rng.next_u64().trailing_zeros().min(FLOW_OCTAVES);
        let base = 1u32 << octave;
        base + self.rng.below(u64::from(base)) as u32
    }

    /// Trimodal payload size in bytes.
    fn payload_len(&mut self) -> u16 {
        let roll = self.rng.below(1000);
        if roll < 550 {
            40 + self.rng.below(32) as u16 // ack-sized
        } else if roll < 800 {
            536 + self.rng.below(64) as u16 // 576-byte legacy mode
        } else {
            1232 + self.rng.below(48) as u16 // IPv6 minimum-MTU mode
        }
    }

    /// A stable per-flow source: random global unicast.
    fn src_addr(&mut self) -> [u8; 16] {
        let mut octets = [0u8; 16];
        self.rng.fill_bytes(&mut octets);
        octets[0] = 0x20 | (octets[0] & 0x0f);
        octets
    }

    /// A Zipf-ish popular destination: the candidate span halves per coin
    /// flip, so low-index prefixes dominate; ~10% of flows miss the table
    /// entirely (an unrouted `4000::/4` address).
    fn destination(&mut self, routes: &[Route]) -> Ipv6Address {
        if routes.is_empty() || self.rng.below(1000) >= HIT_MILLE {
            let mut octets = [0u8; 16];
            self.rng.fill_bytes(&mut octets);
            octets[0] = 0x40 | (octets[0] & 0x0f);
            return Ipv6Address::new(octets);
        }
        let mut span = routes.len();
        while span > 1 && self.rng.below(2) == 0 {
            span = span.div_ceil(2);
        }
        let prefix = routes[self.rng.below(span as u64) as usize].prefix();
        let mut addr = prefix.addr();
        for bit in prefix.len()..128 {
            addr = addr.with_bit(bit, self.rng.below(2) == 0);
        }
        addr
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reference() -> FlowTrace {
        TraceGen::generate(7, 120, 48, 40)
    }

    #[test]
    fn generation_is_deterministic_and_sorted() {
        let a = reference();
        let b = reference();
        assert_eq!(a, b);
        assert_eq!(a.digest(), b.digest());
        assert!(!a.records().is_empty());
        assert!(a.records().windows(2).all(|w| w[0].tick <= w[1].tick));
        assert!(a.records().iter().all(|r| r.tick < a.ticks));
        let c = TraceGen::generate(8, 120, 48, 40);
        assert_ne!(a.digest(), c.digest(), "the seed drives the stream");
    }

    #[test]
    fn shapes_are_empirical() {
        let t = TraceGen::generate(3, 400, 256, 60);
        // Trimodal sizes: every mode is populated.
        let small = t.records().iter().filter(|r| r.payload_len < 128).count();
        let medium = t.records().iter().filter(|r| (128..=768).contains(&r.payload_len)).count();
        let large = t.records().iter().filter(|r| r.payload_len > 768).count();
        assert!(small > 0 && medium > 0 && large > 0, "{small}/{medium}/{large}");
        assert!(small > large, "small packets must dominate: {small} vs {large}");
        // Heavy tail: some flow is much longer than the median flow.
        let mut by_flow = std::collections::BTreeMap::new();
        for r in t.records() {
            *by_flow.entry(r.flow_id).or_insert(0u32) += 1;
        }
        let max = by_flow.values().copied().max().unwrap();
        let mut lens: Vec<u32> = by_flow.values().copied().collect();
        lens.sort_unstable();
        let median = lens[lens.len() / 2];
        assert!(max >= median * 8, "no elephants: max {max}, median {median}");
        // Prefix-local popularity: flows concentrate on the low-index
        // routes far beyond a uniform draw (~4 flows/route here).
        let routes = trace_table(3, 60);
        let mut flow_dst = std::collections::BTreeMap::new();
        for r in t.records() {
            flow_dst.entry(r.flow_id).or_insert(Ipv6Address::new(r.dst));
        }
        let mut per_route = vec![0u32; routes.len()];
        for dst in flow_dst.values() {
            if let Some(i) = routes.iter().position(|r| r.prefix().contains(dst)) {
                per_route[i] += 1;
            }
        }
        let top = per_route.iter().copied().max().unwrap();
        assert!(top >= 8, "no prefix popularity: top route saw only {top} flows");
    }

    #[test]
    fn binary_round_trip_preserves_everything() {
        let t = reference();
        let bytes = t.to_bytes();
        let back = FlowTrace::from_bytes(&bytes).expect("round trip");
        assert_eq!(back, t);
        assert_eq!(back.digest(), t.digest());
        assert_eq!(back.descriptor(), t.descriptor());
    }

    #[test]
    fn file_round_trip() {
        let t = reference();
        let dir = std::env::temp_dir().join("taco-trace-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.trace");
        t.write(&path).expect("write");
        let back = FlowTrace::read(&path).expect("read");
        std::fs::remove_file(&path).ok();
        assert_eq!(back, t);
    }

    #[test]
    fn truncated_body_is_rejected() {
        let bytes = reference().to_bytes();
        let cut = &bytes[..bytes.len() - 7];
        match FlowTrace::from_bytes(cut) {
            Err(TraceFormatError::Truncated { expected, found }) => {
                assert!(found < expected);
            }
            other => panic!("want Truncated, got {other:?}"),
        }
        // Trailing garbage is just as truncated (in the other direction).
        let mut long = bytes.clone();
        long.extend_from_slice(&[0u8; 3]);
        assert!(matches!(FlowTrace::from_bytes(&long), Err(TraceFormatError::Truncated { .. })));
    }

    #[test]
    fn corrupt_body_is_rejected() {
        let mut bytes = reference().to_bytes();
        let n = bytes.len();
        bytes[n - 1] ^= 0x40; // flip a bit deep in the body
        assert!(matches!(
            FlowTrace::from_bytes(&bytes),
            Err(TraceFormatError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn version_skew_and_missing_header_are_distinct() {
        let good = reference().to_bytes();
        let skew =
            String::from_utf8_lossy(&good).replacen("taco-flowtrace v1", "taco-flowtrace v9", 1);
        assert!(matches!(
            FlowTrace::from_bytes(skew.as_bytes()),
            Err(TraceFormatError::VersionSkew { .. })
        ));
        assert!(matches!(
            FlowTrace::from_bytes(b"not a trace at all\n"),
            Err(TraceFormatError::MissingHeader)
        ));
        assert!(matches!(FlowTrace::from_bytes(b""), Err(TraceFormatError::MissingHeader)));
    }

    #[test]
    fn bad_records_are_rejected_with_their_index() {
        let t = reference();
        // An out-of-range linecard.
        let mut records: Vec<TraceRecord> = t.records().to_vec();
        records[3].linecard = 200;
        match FlowTrace::from_records(t.seed, t.ticks, t.flows, t.entries, records) {
            Err(TraceFormatError::BadRecord { message, .. }) => {
                assert!(message.contains("linecard"), "{message}");
            }
            other => panic!("want BadRecord, got {other:?}"),
        }
        // A tick beyond the horizon.
        let mut records: Vec<TraceRecord> = t.records().to_vec();
        records[0].tick = t.ticks + 5;
        assert!(matches!(
            FlowTrace::from_records(t.seed, t.ticks, t.flows, t.entries, records),
            Err(TraceFormatError::BadRecord { .. })
        ));
        // A corrupt pad byte in the raw bytes.
        let mut bytes = t.to_bytes();
        let body_start = bytes.len() - t.records().len() * RECORD_BYTES;
        bytes[body_start + 5] = 1; // record 0's pad
                                   // Fix the checksum so the pad check (not the checksum) fires.
        let sum = trace_fnv1a64(&bytes[body_start..]);
        let header = String::from_utf8_lossy(&bytes[..body_start]).into_owned();
        let fixed = regex_free_checksum_swap(&header, sum);
        let mut patched = fixed.into_bytes();
        patched.extend_from_slice(&bytes[body_start..]);
        match FlowTrace::from_bytes(&patched) {
            Err(TraceFormatError::BadRecord { index, message }) => {
                assert_eq!(index, 0);
                assert!(message.contains("pad"), "{message}");
            }
            other => panic!("want BadRecord, got {other:?}"),
        }
    }

    /// Replaces the checksum line's value without a regex dependency.
    fn regex_free_checksum_swap(header: &str, sum: u64) -> String {
        let mut out = String::new();
        for line in header.lines() {
            if line.starts_with("checksum ") {
                out.push_str(&format!("checksum {sum:016x}"));
            } else {
                out.push_str(line);
            }
            out.push('\n');
        }
        out
    }

    #[test]
    fn from_records_round_trips_the_generator() {
        let t = reference();
        let rebuilt =
            FlowTrace::from_records(t.seed, t.ticks, t.flows, t.entries, t.records().to_vec())
                .expect("valid records");
        assert_eq!(rebuilt, t);
        assert_eq!(rebuilt.digest(), t.digest());
    }

    #[test]
    fn table_is_derived_from_the_header() {
        let t = reference();
        assert_eq!(t.table(), trace_table(t.seed, t.entries));
        assert_eq!(t.table().len(), t.entries as usize);
    }
}
