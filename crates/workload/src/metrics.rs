//! Scenario measurement records.
//!
//! Every field is an integer so that a [`ScenarioMetrics`] serialises to
//! byte-identical JSON on every run with the same seed — the determinism
//! contract the parallel-equivalence tests pin down.  Rates that would
//! naturally be fractional are carried in thousandths (`*_milli`).

use std::fmt::Write as _;

use taco_routing::TableKind;
use taco_sim::CoherenceStats;

/// Number of latency buckets: bucket 0 holds zero-tick latencies, bucket
/// `i ≥ 1` holds latencies in `[2^(i-1), 2^i)` ticks, and the last bucket
/// saturates.
pub const LATENCY_BUCKETS: usize = 16;

/// A fixed power-of-two-bucket latency histogram (latencies in ticks).
///
/// # Examples
///
/// ```
/// use taco_workload::LatencyHistogram;
///
/// let mut h = LatencyHistogram::new();
/// h.record(0);
/// h.record(3);
/// h.record(3);
/// assert_eq!(h.count(), 3);
/// assert_eq!(h.max(), 3);
/// assert_eq!(h.buckets()[0], 1); // the zero-latency sample
/// assert_eq!(h.buckets()[2], 2); // [2, 4)
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LatencyHistogram {
    buckets: [u64; LATENCY_BUCKETS],
    count: u64,
    total: u64,
    max: u64,
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reassembles a histogram from its serialised integer parts (the
    /// non-derived fields of the JSON record) — the wire layer's inverse
    /// of serialisation.  Percentiles and the mean are derived, so a
    /// reassembled histogram reproduces them exactly.
    pub fn from_parts(
        buckets: [u64; LATENCY_BUCKETS],
        count: u64,
        total_ticks: u64,
        max: u64,
    ) -> Self {
        LatencyHistogram { buckets, count, total: total_ticks, max }
    }

    /// Folds another histogram into this one, as if every sample of
    /// `other` had been recorded here — how per-thread load-generator
    /// histograms combine into one fleet-wide distribution without
    /// cross-thread locking on the record path.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += theirs;
        }
        self.count += other.count;
        self.total = self.total.saturating_add(other.total);
        self.max = self.max.max(other.max);
    }

    /// Records one sample of `ticks` latency.
    pub fn record(&mut self, ticks: u64) {
        let idx = match ticks {
            0 => 0,
            t => ((64 - t.leading_zeros()) as usize).min(LATENCY_BUCKETS - 1),
        };
        self.buckets[idx] += 1;
        self.count += 1;
        self.total = self.total.saturating_add(ticks);
        self.max = self.max.max(ticks);
    }

    /// Per-bucket counts.
    pub fn buckets(&self) -> &[u64; LATENCY_BUCKETS] {
        &self.buckets
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all sample latencies in ticks.
    pub fn total_ticks(&self) -> u64 {
        self.total
    }

    /// Largest sample seen.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean latency in milli-ticks (`total * 1000 / count`, 0 when empty).
    ///
    /// Computed in `u128` so a long fault-storm run whose tick total
    /// approaches `u64::MAX / 1000` cannot overflow (the old raw-`u64`
    /// multiply panicked in debug builds); a mean beyond `u64::MAX`
    /// saturates.
    pub fn mean_milli(&self) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let mean = u128::from(self.total) * 1000 / u128::from(self.count);
        u64::try_from(mean).unwrap_or(u64::MAX)
    }

    /// The `p`-th percentile as an all-integer upper bound: the smallest
    /// bucket boundary `B` such that at least `p`% of samples are ≤ `B`
    /// (capped at [`max`](Self::max), which the saturated last bucket and
    /// singleton buckets would otherwise overshoot).  Zero when empty.
    ///
    /// Bucket resolution is what a log2 histogram affords — the bound is
    /// exact to a factor of two, integer, and byte-stable, which is the
    /// trade the determinism contract wants.
    ///
    /// # Panics
    ///
    /// Panics if `p > 100`.
    pub fn percentile(&self, p: u64) -> u64 {
        assert!(p <= 100, "percentile {p} out of range");
        if self.count == 0 {
            return 0;
        }
        let need = (self.count * p).div_ceil(100);
        let mut cumulative = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            cumulative += b;
            if cumulative >= need {
                let bound = match i {
                    0 => 0,
                    // The saturated last bucket has no finite upper bound.
                    _ if i == LATENCY_BUCKETS - 1 => self.max,
                    _ => (1u64 << i) - 1,
                };
                return bound.min(self.max);
            }
        }
        self.max
    }

    /// Median latency bound ([`percentile`](Self::percentile) at 50).
    pub fn p50(&self) -> u64 {
        self.percentile(50)
    }

    /// 90th-percentile latency bound.
    pub fn p90(&self) -> u64 {
        self.percentile(90)
    }

    /// 99th-percentile latency bound.
    pub fn p99(&self) -> u64 {
        self.percentile(99)
    }

    pub(crate) fn to_json(self) -> String {
        let mut s = String::from("{\"buckets\":[");
        for (i, b) in self.buckets.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "{b}");
        }
        let _ = write!(
            s,
            "],\"count\":{},\"total_ticks\":{},\"max\":{},\
             \"p50\":{},\"p90\":{},\"p99\":{},\"mean_milli\":{}}}",
            self.count,
            self.total,
            self.max,
            self.p50(),
            self.p90(),
            self.p99(),
            self.mean_milli()
        );
        s
    }
}

/// The all-integer per-flow section a trace replay adds to its metrics:
/// how many flows the trace carried, how its packets split across the
/// trimodal size classes, and how large the biggest flow was.  Absent
/// (`None` in [`ScenarioMetrics::flows`]) for every non-trace workload,
/// so their JSON stays byte-identical to what it was before traces
/// existed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FlowStats {
    /// Distinct flow ids replayed.
    pub flows: u64,
    /// Trace records replayed (offered datagrams from the trace).
    pub packets: u64,
    /// Packets of the largest single flow.
    pub max_flow_len: u64,
    /// Packets with payload < 128 bytes (ack-sized mode).
    pub small: u64,
    /// Packets with payload in 128..=768 bytes (576-byte legacy mode).
    pub medium: u64,
    /// Packets with payload > 768 bytes (minimum-MTU mode).
    pub large: u64,
}

impl FlowStats {
    /// Stable JSON (integers only, fixed key order).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"flows\":{},\"packets\":{},\"max_flow_len\":{},\
             \"small\":{},\"medium\":{},\"large\":{}}}",
            self.flows, self.packets, self.max_flow_len, self.small, self.medium, self.large,
        )
    }
}

/// Everything one scenario run measured.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioMetrics {
    /// Scenario name (`steady-forward`, `burst-overload`, ...).
    pub scenario: &'static str,
    /// Routing-table organisation the router ran with.
    pub kind: TableKind,
    /// The seed that reproduces this run exactly.
    pub seed: u64,
    /// Measured ticks (warmup excluded).
    pub ticks: u64,
    /// Data datagrams generated at the line cards.
    pub offered: u64,
    /// Datagrams forwarded between line cards.
    pub forwarded: u64,
    /// Datagrams delivered to the control plane.
    pub delivered: u64,
    /// Datagrams dropped by the forwarding core (no route, hop limit, ...).
    pub dropped_no_route: u64,
    /// Arrivals tail-dropped at full line-card input buffers.
    pub dropped_overflow: u64,
    /// Deepest any single input buffer got, measured after each tick.
    pub max_queue_depth: u64,
    /// Datagrams still queued when the scenario ended.
    pub final_backlog: u64,
    /// Per-datagram service latency (arrival tick to service tick).
    pub latency: LatencyHistogram,
    /// RIPng table-carrying packets injected and serviced.
    pub table_updates: u64,
    /// Service latency of those table updates.
    pub update_latency: LatencyHistogram,
    /// RIPng packets the router itself transmitted.
    pub ripng_sent: u64,
    /// Forwarded datagrams per tick, in thousandths.
    pub throughput_milli: u64,
    /// Peak routing-table image footprint over the run, in 32-bit words
    /// ([`LpmTable::memory_words`](taco_routing::LpmTable::memory_words)
    /// sampled after every tick).  All-integer, so churny runs stay
    /// byte-deterministic; under insert/remove cycles this is the arena
    /// high-water mark, which the bounded-churn tests pin.
    pub table_memory_words: u64,
    /// Per-flow record — `None` unless the run replayed a flow trace, so
    /// non-trace JSON stays byte identical to what it was before traces
    /// existed.
    pub flows: Option<FlowStats>,
    /// Fault-injection record — `None` unless the run carried a
    /// [`FaultPlan`](crate::FaultPlan), so fault-free JSON stays byte
    /// identical to what it was before faults existed.
    pub faults: Option<crate::fault::FaultMetrics>,
    /// Cache-coherence record — `None` unless the run modelled a
    /// multi-core system (two or more cores), so single-core JSON stays
    /// byte identical to what it was before multicore existed.
    pub coherence: Option<CoherenceStats>,
}

/// Serialises a [`CoherenceStats`] record with a fixed key order (the
/// `coherence` section of the scenario JSON).
pub fn coherence_to_json(c: &CoherenceStats) -> String {
    format!(
        "{{\"reads\":{},\"writes\":{},\"hits\":{},\"misses\":{},\
         \"invalidations\":{},\"upgrade_stalls\":{},\"writebacks\":{},\
         \"stall_cycles\":{},\"transactions\":{},\"busy_cycles\":{}}}",
        c.reads,
        c.writes,
        c.hits,
        c.misses,
        c.invalidations,
        c.upgrade_stalls,
        c.writebacks,
        c.stall_cycles,
        c.transactions,
        c.busy_cycles,
    )
}

impl ScenarioMetrics {
    /// Serialises to a single-line JSON object with a fixed key order —
    /// byte-stable across runs, threads and platforms.
    pub fn to_json(&self) -> String {
        let mut s = format!(
            "{{\"scenario\":\"{}\",\"kind\":\"{}\",\"seed\":{},\"ticks\":{},\
             \"offered\":{},\"forwarded\":{},\"delivered\":{},\
             \"dropped_no_route\":{},\"dropped_overflow\":{},\
             \"max_queue_depth\":{},\"final_backlog\":{},\
             \"latency\":{},\"table_updates\":{},\"update_latency\":{},\
             \"ripng_sent\":{},\"throughput_milli\":{},\
             \"table_memory_words\":{}",
            self.scenario,
            self.kind,
            self.seed,
            self.ticks,
            self.offered,
            self.forwarded,
            self.delivered,
            self.dropped_no_route,
            self.dropped_overflow,
            self.max_queue_depth,
            self.final_backlog,
            self.latency.to_json(),
            self.table_updates,
            self.update_latency.to_json(),
            self.ripng_sent,
            self.throughput_milli,
            self.table_memory_words,
        );
        if let Some(fl) = &self.flows {
            let _ = write!(s, ",\"flows\":{}", fl.to_json());
        }
        if let Some(f) = &self.faults {
            let _ = write!(s, ",\"faults\":{}", f.to_json());
        }
        if let Some(c) = &self.coherence {
            let _ = write!(s, ",\"coherence\":{}", coherence_to_json(c));
        }
        s.push('}');
        s
    }

    /// Total drops from all causes.
    pub fn dropped(&self) -> u64 {
        self.dropped_no_route + self.dropped_overflow
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_bucket_boundaries() {
        let mut h = LatencyHistogram::new();
        for t in [0u64, 1, 2, 3, 4, 7, 8, 1 << 40] {
            h.record(t);
        }
        assert_eq!(h.buckets()[0], 1); // 0
        assert_eq!(h.buckets()[1], 1); // 1
        assert_eq!(h.buckets()[2], 2); // 2, 3
        assert_eq!(h.buckets()[3], 2); // 4, 7
        assert_eq!(h.buckets()[4], 1); // 8
        assert_eq!(h.buckets()[LATENCY_BUCKETS - 1], 1); // saturated
        assert_eq!(h.count(), 8);
        assert_eq!(h.max(), 1 << 40);
    }

    #[test]
    fn percentiles_are_integer_bucket_bounds() {
        let mut h = LatencyHistogram::new();
        for _ in 0..90 {
            h.record(1);
        }
        for _ in 0..9 {
            h.record(10); // bucket 4: [8, 16)
        }
        h.record(100); // bucket 7: [64, 128)
        assert_eq!(h.p50(), 1);
        assert_eq!(h.p90(), 1);
        assert_eq!(h.percentile(91), 15);
        assert_eq!(h.p99(), 15);
        assert_eq!(h.percentile(100), 100); // capped at max, not 127
        assert_eq!(h.max(), 100);
    }

    #[test]
    fn percentiles_of_empty_and_singleton() {
        assert_eq!(LatencyHistogram::new().p50(), 0);
        assert_eq!(LatencyHistogram::new().p99(), 0);
        let mut h = LatencyHistogram::new();
        h.record(5); // bucket 3: [4, 8), bound 7 capped at max 5
        assert_eq!(h.p50(), 5);
        assert_eq!(h.p99(), 5);
        let mut zeros = LatencyHistogram::new();
        zeros.record(0);
        assert_eq!(zeros.p50(), 0);
    }

    #[test]
    fn saturated_bucket_percentile_reports_max() {
        let mut h = LatencyHistogram::new();
        h.record(1 << 40);
        h.record(1 << 41);
        assert_eq!(h.p99(), 1 << 41);
    }

    #[test]
    fn merge_is_equivalent_to_recording_everything_in_one_histogram() {
        let samples_a = [0u64, 1, 5, 100, 1 << 40];
        let samples_b = [3u64, 8, 8, 1 << 41];
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut combined = LatencyHistogram::new();
        for t in samples_a {
            a.record(t);
            combined.record(t);
        }
        for t in samples_b {
            b.record(t);
            combined.record(t);
        }
        a.merge(&b);
        assert_eq!(a, combined);
        assert_eq!(a.p99(), combined.p99());

        // Merging an empty histogram is the identity, both ways.
        let mut empty = LatencyHistogram::new();
        empty.merge(&combined);
        assert_eq!(empty, combined);
        combined.merge(&LatencyHistogram::new());
        assert_eq!(empty, combined);
    }

    #[test]
    fn from_parts_inverts_the_serialised_fields() {
        let mut h = LatencyHistogram::new();
        for t in [0, 1, 5, 100, 1 << 40] {
            h.record(t);
        }
        let rebuilt =
            LatencyHistogram::from_parts(*h.buckets(), h.count(), h.total_ticks(), h.max());
        assert_eq!(rebuilt, h);
        assert_eq!(rebuilt.p99(), h.p99());
        assert_eq!(rebuilt.mean_milli(), h.mean_milli());
    }

    #[test]
    fn histogram_mean() {
        let mut h = LatencyHistogram::new();
        h.record(1);
        h.record(2);
        assert_eq!(h.mean_milli(), 1500);
        assert_eq!(LatencyHistogram::new().mean_milli(), 0);
    }

    #[test]
    fn histogram_mean_survives_huge_totals() {
        // A long fault-storm run can push the tick total past
        // u64::MAX / 1000; the mean must not overflow (regression for the
        // raw-u64 multiply that panicked in debug builds).
        let mut h = LatencyHistogram::new();
        h.record(u64::MAX / 1000 + 1);
        assert_eq!(h.count(), 1);
        assert_eq!(h.mean_milli(), u64::MAX); // saturates, does not panic
                                              // An exact large mean still computes precisely.
        let mut exact = LatencyHistogram::new();
        exact.record(1 << 40);
        assert_eq!(exact.mean_milli(), 1000 << 40);
        // And the total itself saturates rather than wrapping.
        let mut sat = LatencyHistogram::new();
        sat.record(u64::MAX);
        sat.record(u64::MAX);
        assert_eq!(sat.total_ticks(), u64::MAX);
        assert_eq!(sat.mean_milli(), u64::MAX);
    }

    #[test]
    fn json_is_single_line_and_stable() {
        let mut latency = LatencyHistogram::new();
        latency.record(2);
        let m = ScenarioMetrics {
            scenario: "steady-forward",
            kind: TableKind::Cam,
            seed: 7,
            ticks: 10,
            offered: 100,
            forwarded: 90,
            delivered: 2,
            dropped_no_route: 8,
            dropped_overflow: 0,
            max_queue_depth: 5,
            final_backlog: 0,
            latency,
            table_updates: 1,
            update_latency: LatencyHistogram::new(),
            ripng_sent: 4,
            throughput_milli: 9000,
            table_memory_words: 1040,
            flows: None,
            faults: None,
            coherence: None,
        };
        let j = m.to_json();
        assert!(!j.contains('\n'));
        assert!(j.starts_with("{\"scenario\":\"steady-forward\",\"kind\":\"cam\","));
        assert!(j.contains("\"throughput_milli\":9000"));
        assert!(j.contains("\"p50\":2,\"p90\":2,\"p99\":2"), "{j}");
        assert_eq!(j, m.clone().to_json());

        // Fault-free runs serialise without a faults key at all (byte
        // compatibility with pre-fault JSON); faulted runs append one.
        assert!(j.ends_with("\"throughput_milli\":9000,\"table_memory_words\":1040}"), "{j}");
        assert!(!j.contains("\"faults\""));
        let faulted = ScenarioMetrics {
            faults: Some(crate::fault::FaultMetrics {
                injected_malformed: 2,
                ..Default::default()
            }),
            ..m
        };
        let fj = faulted.to_json();
        assert!(fj.contains(",\"faults\":{\"injected_malformed\":2,"), "{fj}");
        assert!(fj.ends_with("}}"), "{fj}");
    }

    #[test]
    fn flows_section_appears_between_memory_and_faults() {
        let m = ScenarioMetrics {
            scenario: "trace-replay",
            kind: TableKind::Cam,
            seed: 7,
            ticks: 10,
            offered: 100,
            forwarded: 90,
            delivered: 2,
            dropped_no_route: 8,
            dropped_overflow: 0,
            max_queue_depth: 5,
            final_backlog: 0,
            latency: LatencyHistogram::new(),
            table_updates: 1,
            update_latency: LatencyHistogram::new(),
            ripng_sent: 4,
            throughput_milli: 9000,
            table_memory_words: 1040,
            flows: Some(FlowStats {
                flows: 12,
                packets: 100,
                max_flow_len: 40,
                small: 60,
                medium: 25,
                large: 15,
            }),
            faults: Some(crate::fault::FaultMetrics::default()),
            coherence: None,
        };
        let j = m.to_json();
        assert!(
            j.contains(
                "\"table_memory_words\":1040,\"flows\":{\"flows\":12,\"packets\":100,\
                 \"max_flow_len\":40,\"small\":60,\"medium\":25,\"large\":15},\"faults\":{"
            ),
            "{j}"
        );
        assert!(!j.contains('.'), "integers only: {j}");
    }

    #[test]
    fn coherence_section_appears_last_and_is_all_integer() {
        let m = ScenarioMetrics {
            scenario: "table-churn",
            kind: TableKind::Cam,
            seed: 7,
            ticks: 10,
            offered: 100,
            forwarded: 90,
            delivered: 2,
            dropped_no_route: 8,
            dropped_overflow: 0,
            max_queue_depth: 5,
            final_backlog: 0,
            latency: LatencyHistogram::new(),
            table_updates: 1,
            update_latency: LatencyHistogram::new(),
            ripng_sent: 4,
            throughput_milli: 9000,
            table_memory_words: 1040,
            flows: None,
            faults: None,
            coherence: Some(CoherenceStats {
                reads: 90,
                writes: 10,
                hits: 80,
                misses: 20,
                invalidations: 6,
                upgrade_stalls: 2,
                writebacks: 1,
                stall_cycles: 44,
                transactions: 22,
                busy_cycles: 44,
            }),
        };
        let j = m.to_json();
        assert!(
            j.ends_with(
                ",\"coherence\":{\"reads\":90,\"writes\":10,\"hits\":80,\"misses\":20,\
                 \"invalidations\":6,\"upgrade_stalls\":2,\"writebacks\":1,\
                 \"stall_cycles\":44,\"transactions\":22,\"busy_cycles\":44}}"
            ),
            "{j}"
        );
        assert!(!j.contains('.'), "integers only: {j}");
    }
}
