//! Deterministic fault-injection plans and their measurement records.
//!
//! A [`FaultPlan`] is an all-integer, hashable description of the faults to
//! inject into a scenario replay and/or a cycle-accurate measurement:
//! malformed or truncated datagrams, hop-limit-zero storms, routing-table
//! entry corruption with a bounded repair latency, per-linecard link flaps,
//! and transient bus/FU stalls inside the simulator.  Plans are seeded (the
//! same in-tree SplitMix64 discipline as [`crate::Workload`]) so a replay
//! under faults is reproducible bit for bit, composes with any workload,
//! and can key evaluation caches.
//!
//! What the plan *injects* is recorded in [`FaultMetrics`], alongside what
//! the router *detected* (RFC-correct drops) and how recovery went
//! (re-convergence latency histogram, unrecovered count).  All fields are
//! integers, preserving the byte-stable JSON contract of
//! [`crate::ScenarioMetrics`].

use crate::metrics::LatencyHistogram;

/// Default seed for fault plans (distinct from the workload default so a
/// plan never accidentally mirrors the traffic stream).
pub const DEFAULT_FAULT_SEED: u64 = 0xFA17_2003;

/// A deterministic fault-injection plan.
///
/// All rates are integers: per-tick injection rates are expressed in
/// *thousandths of a frame per tick* (`1500` ⇒ one frame every tick plus a
/// 50% chance of a second), periodic faults as a tick/cycle interval where
/// `0` disables that fault class entirely.  The zero value ([`FaultPlan::none`])
/// injects nothing and must leave every metric byte identical to a run
/// without a plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FaultPlan {
    /// Seed for the plan's private SplitMix64 stream (independent of the
    /// workload's traffic stream).
    pub seed: u64,
    /// Malformed/truncated frames injected per tick, in thousandths.
    pub malformed_per_tick_milli: u64,
    /// Hop-limit-zero/one datagrams injected per tick, in thousandths.
    pub hop_limit_zero_per_tick_milli: u64,
    /// Corrupt one installed routing-table entry every this many ticks
    /// (`0` = never).  The router detects and invalidates the entry, then
    /// re-resolves it after [`FaultPlan::repair_ticks`].
    pub corrupt_every: u32,
    /// Ticks between detecting a corrupted entry and issuing its repair
    /// re-advertisement (the bounded re-resolve latency).
    pub repair_ticks: u32,
    /// Retries granted to a repair whose advertisement is lost (tail drop
    /// or link down); each retry backs off by another `repair_ticks`.
    pub repair_retries: u32,
    /// A linecard link flap fires every this many ticks (`0` = never).
    pub flap_every: u32,
    /// Ticks a flapped link stays down before carrier returns.
    pub flap_down_ticks: u32,
    /// Inject a transient bus/FU stall every this many simulator cycles
    /// during cycle-accurate measurement (`0` = never).
    pub stall_every_cycles: u32,
    /// Length of each injected stall, in cycles.
    pub stall_cycles: u32,
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self::none()
    }
}

impl FaultPlan {
    /// The empty plan: injects nothing, perturbs nothing.
    pub const fn none() -> Self {
        FaultPlan {
            seed: DEFAULT_FAULT_SEED,
            malformed_per_tick_milli: 0,
            hop_limit_zero_per_tick_milli: 0,
            corrupt_every: 0,
            repair_ticks: 0,
            repair_retries: 0,
            flap_every: 0,
            flap_down_ticks: 0,
            stall_every_cycles: 0,
            stall_cycles: 0,
        }
    }

    /// Everything at once: the fixed storm used by EXPERIMENTS.md.
    pub const fn storm() -> Self {
        FaultPlan {
            seed: DEFAULT_FAULT_SEED,
            malformed_per_tick_milli: 2000,
            hop_limit_zero_per_tick_milli: 1000,
            corrupt_every: 20,
            repair_ticks: 5,
            repair_retries: 3,
            flap_every: 60,
            flap_down_ticks: 10,
            stall_every_cycles: 64,
            stall_cycles: 4,
        }
    }

    /// Header-anomaly traffic only: malformed frames and expiring hop
    /// limits, no control-plane disturbance.
    pub const fn malformed() -> Self {
        FaultPlan {
            malformed_per_tick_milli: 4000,
            hop_limit_zero_per_tick_milli: 2000,
            ..Self::none()
        }
    }

    /// Routing-table entry corruption with repair latency only.
    pub const fn corruption() -> Self {
        FaultPlan { corrupt_every: 10, repair_ticks: 5, repair_retries: 3, ..Self::none() }
    }

    /// Periodic per-linecard link flaps only.
    pub const fn flaps() -> Self {
        FaultPlan { flap_every: 40, flap_down_ticks: 8, ..Self::none() }
    }

    /// Transient simulator bus/FU stalls only.
    pub const fn stalls() -> Self {
        FaultPlan { stall_every_cycles: 32, stall_cycles: 4, ..Self::none() }
    }

    /// The named builtin plans, in presentation order (`dse --faults NAME`).
    pub fn builtin() -> Vec<(&'static str, FaultPlan)> {
        vec![
            ("storm", Self::storm()),
            ("malformed", Self::malformed()),
            ("corruption", Self::corruption()),
            ("flaps", Self::flaps()),
            ("stalls", Self::stalls()),
        ]
    }

    /// Looks up a builtin plan by name.
    pub fn by_name(name: &str) -> Option<FaultPlan> {
        Self::builtin().into_iter().find(|(n, _)| *n == name).map(|(_, p)| p)
    }

    /// The builtin name of this plan (seed aside), or `"custom"`.
    pub fn name(&self) -> &'static str {
        Self::builtin()
            .into_iter()
            .find(|(_, p)| p.with_seed(self.seed) == *self)
            .map(|(n, _)| n)
            .unwrap_or("custom")
    }

    /// The same plan under a different seed.
    pub fn with_seed(self, seed: u64) -> Self {
        FaultPlan { seed, ..self }
    }

    /// True when the plan injects nothing at all.
    pub fn is_none(&self) -> bool {
        self.malformed_per_tick_milli == 0
            && self.hop_limit_zero_per_tick_milli == 0
            && self.corrupt_every == 0
            && self.flap_every == 0
            && self.stall_every_cycles == 0
    }
}

/// What a faulted replay injected, what the router detected, and how
/// recovery went.  All-integer, so [`FaultMetrics::to_json`] is byte-stable
/// across platforms and thread counts.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultMetrics {
    /// Malformed/truncated frames injected at the linecards.
    pub injected_malformed: u64,
    /// Hop-limit-zero/one datagrams injected.
    pub injected_hop_limit: u64,
    /// Routing-table entries corrupted (then invalidated for repair).
    pub injected_corruptions: u64,
    /// Linecard link flaps injected.
    pub injected_flaps: u64,
    /// Malformed frames the forwarding core detected and dropped
    /// (RFC 2460 parse failures — no ICMP error is generated).
    pub detected_malformed: u64,
    /// Expiring datagrams the core dropped with an ICMPv6 time-exceeded.
    pub detected_hop_limit: u64,
    /// Frames refused by a linecard while its link was down.
    pub dropped_link_down: u64,
    /// Faults whose repair (re-advertisement serviced, link back up and
    /// re-converged) completed within the scenario.
    pub recovered: u64,
    /// Faults still outstanding when the scenario ended, or whose repair
    /// exhausted its retries.
    pub unrecovered: u64,
    /// Recovery latency in ticks, from fault injection to the repair
    /// advertisement being serviced by the routing core.
    pub recovery: LatencyHistogram,
}

impl FaultMetrics {
    /// Total faults injected across every class.
    pub fn injected(&self) -> u64 {
        self.injected_malformed
            + self.injected_hop_limit
            + self.injected_corruptions
            + self.injected_flaps
    }

    /// Stable JSON (integers only, fixed key order).
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"injected_malformed\":{},\"injected_hop_limit\":{},",
                "\"injected_corruptions\":{},\"injected_flaps\":{},",
                "\"detected_malformed\":{},\"detected_hop_limit\":{},",
                "\"dropped_link_down\":{},\"recovered\":{},\"unrecovered\":{},",
                "\"recovery\":{}}}"
            ),
            self.injected_malformed,
            self.injected_hop_limit,
            self.injected_corruptions,
            self.injected_flaps,
            self.detected_malformed,
            self.detected_hop_limit,
            self.dropped_link_down,
            self.recovered,
            self.unrecovered,
            self.recovery.to_json(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_plans_resolve_by_name() {
        for (name, plan) in FaultPlan::builtin() {
            assert_eq!(FaultPlan::by_name(name), Some(plan));
            assert!(!plan.is_none(), "{name} must inject something");
        }
        assert_eq!(FaultPlan::by_name("no-such-plan"), None);
    }

    #[test]
    fn the_empty_plan_is_none() {
        assert!(FaultPlan::none().is_none());
        assert!(FaultPlan::default().is_none());
        assert!(!FaultPlan::storm().is_none());
    }

    #[test]
    fn reseeding_preserves_the_rates() {
        let p = FaultPlan::storm().with_seed(42);
        assert_eq!(p.seed, 42);
        assert_eq!(p.malformed_per_tick_milli, FaultPlan::storm().malformed_per_tick_milli);
    }

    #[test]
    fn metrics_json_is_stable_and_integer() {
        let mut m = FaultMetrics { injected_malformed: 3, recovered: 1, ..Default::default() };
        m.recovery.record(7);
        let json = m.to_json();
        assert!(json.starts_with("{\"injected_malformed\":3,"));
        assert!(json.contains("\"recovered\":1"));
        assert!(json.contains("\"recovery\":{"));
        assert!(!json.contains('.'), "integers only: {json}");
    }
}
