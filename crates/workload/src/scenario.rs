//! The scenario engine: named, seeded workloads driving the behavioural
//! router.
//!
//! A [`Workload`] names a traffic pattern with all-integer parameters (so
//! workloads hash, compare and key caches); [`run_scenario`] replays it
//! against a [`Router`] built over any [`TableKind`] and returns a
//! [`ScenarioMetrics`].  The same `(workload, config)` pair always produces
//! the same metrics, byte for byte.
//!
//! Time advances in fixed 100 ms ticks.  Each tick the engine injects
//! arrivals at the line cards, lets the router service at most
//! [`ScenarioConfig::service_per_tick`] datagrams (the processor's speed,
//! which is what couples scenarios to architecture evaluation), and then
//! measures queue depths and per-datagram latency by pairing the cards'
//! service counters with recorded arrival ticks.

use std::collections::VecDeque;

use taco_ipv6::Ipv6Address;
use taco_router::router::Router;
use taco_router::traffic::{ripng_datagram, TrafficGen};
use taco_routing::ripng::InterfaceConfig;
use taco_routing::{LpmTable, PortId, Route, SimTime, TableKind};

use crate::metrics::{LatencyHistogram, ScenarioMetrics};

/// Router ports every scenario drives.
pub const PORTS: u16 = 4;

/// Simulated duration of one engine tick in milliseconds.
pub const TICK_MILLIS: u64 = 100;

/// Fraction of data destinations that hit the routing table (per mille).
const HIT_RATIO: f64 = 0.9;

/// Payload bytes per data datagram.
const PAYLOAD_BYTES: usize = 64;

/// RIPng entries per advertisement datagram (stays under the MTU).
const ADVERT_CHUNK: usize = 60;

/// Seed used by the built-in scenario set ([`Workload::builtin`]).
pub const DEFAULT_SEED: u64 = 0x7AC0_2003;

/// A named, seeded traffic pattern.
///
/// Every variant carries only integers so a workload can key the
/// evaluation cache (`Hash + Eq`) and serialise stably.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Workload {
    /// The paper's workload: a constant stream of forwarding datagrams
    /// over a fixed table — the cross-validation baseline.
    SteadyForward {
        /// RNG seed; same seed ⇒ identical run.
        seed: u64,
        /// Measured ticks.
        ticks: u32,
        /// Data datagrams injected per tick.
        packets_per_tick: u32,
        /// Routing-table size.
        entries: u32,
    },
    /// Poisson-ish arrivals whose bursts exceed the service rate,
    /// measuring drops and queue growth under overload.
    BurstOverload {
        /// RNG seed.
        seed: u64,
        /// Measured ticks.
        ticks: u32,
        /// Mean arrivals per tick, in thousandths (1500 ⇒ 1.5/tick).
        mean_per_tick_milli: u64,
        /// A burst window opens every this many ticks…
        burst_every: u32,
        /// …lasts this many ticks…
        burst_len: u32,
        /// …and multiplies the arrival rate by this factor.
        burst_multiplier: u32,
        /// Routing-table size.
        entries: u32,
    },
    /// RIPng response storms from several neighbours converge the table
    /// while forwarding traffic is already flowing — early datagrams drop,
    /// then the drop rate decays as routes install.
    RipngConvergence {
        /// RNG seed.
        seed: u64,
        /// Measured ticks.
        ticks: u32,
        /// Advertising neighbours (spread round-robin over the ports).
        neighbours: u32,
        /// Routes each neighbour advertises.
        routes_per_neighbour: u32,
        /// Data datagrams injected per tick.
        packets_per_tick: u32,
    },
    /// Routes are withdrawn and re-advertised in slices while packets fly;
    /// traffic to a withdrawn slice drops until it returns.
    TableChurn {
        /// RNG seed.
        seed: u64,
        /// Measured ticks.
        ticks: u32,
        /// Data datagrams injected per tick.
        packets_per_tick: u32,
        /// Routing-table size.
        entries: u32,
        /// A churn event fires every this many ticks…
        churn_every: u32,
        /// …withdrawing (then re-advertising) this many routes.
        churn_size: u32,
    },
}

impl Workload {
    /// The scenario's name (`steady-forward`, `burst-overload`,
    /// `ripng-convergence`, `table-churn`).
    pub fn name(&self) -> &'static str {
        match self {
            Workload::SteadyForward { .. } => "steady-forward",
            Workload::BurstOverload { .. } => "burst-overload",
            Workload::RipngConvergence { .. } => "ripng-convergence",
            Workload::TableChurn { .. } => "table-churn",
        }
    }

    /// The workload's RNG seed.
    pub fn seed(&self) -> u64 {
        match self {
            Workload::SteadyForward { seed, .. }
            | Workload::BurstOverload { seed, .. }
            | Workload::RipngConvergence { seed, .. }
            | Workload::TableChurn { seed, .. } => *seed,
        }
    }

    /// The same workload with a different seed.
    pub fn with_seed(mut self, new_seed: u64) -> Self {
        match &mut self {
            Workload::SteadyForward { seed, .. }
            | Workload::BurstOverload { seed, .. }
            | Workload::RipngConvergence { seed, .. }
            | Workload::TableChurn { seed, .. } => *seed = new_seed,
        }
        self
    }

    /// Measured ticks.
    pub fn ticks(&self) -> u32 {
        match self {
            Workload::SteadyForward { ticks, .. }
            | Workload::BurstOverload { ticks, .. }
            | Workload::RipngConvergence { ticks, .. }
            | Workload::TableChurn { ticks, .. } => *ticks,
        }
    }

    /// The built-in scenario set with default parameters and
    /// [`DEFAULT_SEED`], in documentation order.
    pub fn builtin() -> Vec<Workload> {
        vec![
            Workload::steady_forward(),
            Workload::burst_overload(),
            Workload::ripng_convergence(),
            Workload::table_churn(),
        ]
    }

    /// Looks a built-in scenario up by [`Workload::name`].
    pub fn by_name(name: &str) -> Option<Workload> {
        Workload::builtin().into_iter().find(|w| w.name() == name)
    }

    /// The default `steady-forward` scenario.
    pub fn steady_forward() -> Workload {
        Workload::SteadyForward {
            seed: DEFAULT_SEED,
            ticks: 400,
            packets_per_tick: 24,
            entries: 100,
        }
    }

    /// The default `burst-overload` scenario: mean load below the default
    /// service rate, bursts at 4× well above it.
    pub fn burst_overload() -> Workload {
        Workload::BurstOverload {
            seed: DEFAULT_SEED,
            ticks: 400,
            mean_per_tick_milli: 24_000,
            burst_every: 50,
            burst_len: 10,
            burst_multiplier: 4,
            entries: 100,
        }
    }

    /// The default `ripng-convergence` scenario.
    pub fn ripng_convergence() -> Workload {
        Workload::RipngConvergence {
            seed: DEFAULT_SEED,
            ticks: 300,
            neighbours: 4,
            routes_per_neighbour: 25,
            packets_per_tick: 16,
        }
    }

    /// The default `table-churn` scenario.
    pub fn table_churn() -> Workload {
        Workload::TableChurn {
            seed: DEFAULT_SEED,
            ticks: 400,
            packets_per_tick: 16,
            entries: 100,
            churn_every: 40,
            churn_size: 10,
        }
    }
}

/// How the router under test is provisioned.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ScenarioConfig {
    /// Routing-table organisation.
    pub kind: TableKind,
    /// Datagrams the forwarding core services per tick — the processor's
    /// speed expressed in the engine's time base.
    pub service_per_tick: u32,
    /// Input-buffer bound per line card, in datagrams.
    pub queue_capacity: u32,
}

impl ScenarioConfig {
    /// A config for `kind` with the default service rate (32/tick) and
    /// queue bound (64).
    pub fn new(kind: TableKind) -> Self {
        ScenarioConfig { kind, service_per_tick: 32, queue_capacity: 64 }
    }

    /// Sets the service rate.
    pub fn service_per_tick(mut self, rate: u32) -> Self {
        self.service_per_tick = rate;
        self
    }

    /// Sets the queue bound.
    pub fn queue_capacity(mut self, capacity: u32) -> Self {
        self.queue_capacity = capacity;
        self
    }
}

/// Arrival bookkeeping: `(arrival tick, is a table update)` per port, in
/// FIFO order — the same order the router services each card.
type ArrivalFifo = VecDeque<(u64, bool)>;

struct Harness {
    router: Router<Box<dyn LpmTable>>,
    gen: TrafficGen,
    fifos: Vec<ArrivalFifo>,
    last_polled: Vec<u64>,
    tick: u64,
    service: usize,
    overflow_baseline: u64,
    metrics: ScenarioMetrics,
}

impl Harness {
    fn new(w: &Workload, cfg: &ScenarioConfig) -> Self {
        let interfaces: Vec<InterfaceConfig> = (0..PORTS)
            .map(|i| {
                InterfaceConfig::new(
                    PortId(i),
                    format!("fe80::1:{i}").parse().expect("valid address"),
                    vec![format!("2001:db8:{i}::/48").parse().expect("valid prefix")],
                )
            })
            .collect();
        let mut router = Router::new(interfaces, cfg.kind.build(&[]));
        for i in 0..PORTS {
            router.card_mut(PortId(i)).set_capacity(cfg.queue_capacity as usize);
        }
        let metrics = ScenarioMetrics {
            scenario: w.name(),
            kind: cfg.kind,
            seed: w.seed(),
            ticks: u64::from(w.ticks()),
            offered: 0,
            forwarded: 0,
            delivered: 0,
            dropped_no_route: 0,
            dropped_overflow: 0,
            max_queue_depth: 0,
            final_backlog: 0,
            latency: LatencyHistogram::new(),
            table_updates: 0,
            update_latency: LatencyHistogram::new(),
            ripng_sent: 0,
            throughput_milli: 0,
        };
        Harness {
            router,
            gen: TrafficGen::new(w.seed(), PORTS),
            fifos: vec![ArrivalFifo::new(); usize::from(PORTS)],
            last_polled: vec![0; usize::from(PORTS)],
            tick: 0,
            service: cfg.service_per_tick as usize,
            overflow_baseline: 0,
            metrics,
        }
    }

    /// Zeros every measured counter (table seeding happens before the
    /// measured window; the scenario record must not include it).
    fn reset_measurement(&mut self) {
        let keep = &self.metrics;
        self.metrics = ScenarioMetrics {
            scenario: keep.scenario,
            kind: keep.kind,
            seed: keep.seed,
            ticks: keep.ticks,
            offered: 0,
            forwarded: 0,
            delivered: 0,
            dropped_no_route: 0,
            dropped_overflow: 0,
            max_queue_depth: 0,
            final_backlog: 0,
            latency: LatencyHistogram::new(),
            table_updates: 0,
            update_latency: LatencyHistogram::new(),
            ripng_sent: 0,
            throughput_milli: 0,
        };
        self.overflow_baseline = self.router.cards().iter().map(|c| c.dropped_overflow()).sum();
    }

    fn neighbour_addr(n: u32) -> Ipv6Address {
        format!("fe80::99:{:x}", n + 1).parse().expect("valid address")
    }

    /// Injects a RIPng response advertising (or withdrawing) `routes` from
    /// neighbour `n` on its port, split under the MTU.
    fn inject_update(&mut self, n: u32, routes: &[Route], withdraw: bool) {
        let port = PortId((n % u32::from(PORTS)) as u16);
        let from = Self::neighbour_addr(n);
        for chunk in routes.chunks(ADVERT_CHUNK) {
            let pkt = if withdraw {
                self.gen.ripng_withdrawal(chunk)
            } else {
                self.gen.ripng_response(chunk)
            };
            if self.router.card_mut(port).receive(ripng_datagram(from, &pkt)) {
                self.fifos[usize::from(port.0)].push_back((self.tick, true));
            }
        }
    }

    /// Injects `k` data datagrams over `routes` at random ports.
    fn inject_data(&mut self, routes: &[Route], k: usize) {
        for (port, datagram) in self.gen.forwarding_workload(routes, k, HIT_RATIO, PAYLOAD_BYTES) {
            self.metrics.offered += 1;
            if self.router.card_mut(port).receive(datagram) {
                self.fifos[usize::from(port.0)].push_back((self.tick, false));
            }
        }
    }

    /// Runs one budgeted router tick and folds the results into the
    /// metrics.
    fn service_tick(&mut self) {
        let now = SimTime::from_millis(self.tick * TICK_MILLIS);
        let report = self.router.tick_budgeted(now, self.service);
        self.metrics.forwarded += report.forwarded;
        self.metrics.delivered += report.delivered;
        self.metrics.dropped_no_route += report.dropped;
        self.metrics.ripng_sent += report.ripng_sent;
        for i in 0..usize::from(PORTS) {
            let card = self.router.card_mut(PortId(i as u16));
            let polled = card.polled();
            let depth = card.pending() as u64;
            card.drain_transmitted(); // keep memory bounded; output is not measured
            self.metrics.max_queue_depth = self.metrics.max_queue_depth.max(depth);
            for _ in self.last_polled[i]..polled {
                let Some((arrived, is_update)) = self.fifos[i].pop_front() else {
                    break;
                };
                let latency = self.tick - arrived;
                if is_update {
                    self.metrics.table_updates += 1;
                    self.metrics.update_latency.record(latency);
                } else {
                    self.metrics.latency.record(latency);
                }
            }
            self.last_polled[i] = polled;
        }
        self.tick += 1;
    }

    /// Drains everything already queued (used between seeding and
    /// measurement), unbudgeted.
    fn drain(&mut self) {
        while self.router.pending() > 0 {
            let before = self.service;
            self.service = usize::MAX;
            self.service_tick();
            self.service = before;
        }
        // One extra tick so startup requests and first periodic updates are
        // behind us before measurement starts.
        let before = self.service;
        self.service = usize::MAX;
        self.service_tick();
        self.service = before;
    }

    fn finish(mut self) -> ScenarioMetrics {
        let overflow: u64 = self.router.cards().iter().map(|c| c.dropped_overflow()).sum();
        self.metrics.dropped_overflow = overflow - self.overflow_baseline;
        self.metrics.final_backlog = self.router.pending() as u64;
        self.metrics.throughput_milli =
            (self.metrics.forwarded * 1000).checked_div(self.metrics.ticks).unwrap_or(0);
        self.metrics
    }
}

/// Replays `workload` against a router provisioned per `config`.
///
/// Deterministic: the metrics (including their JSON form) are identical
/// for identical inputs, on any thread count and platform.
///
/// # Examples
///
/// ```
/// use taco_routing::TableKind;
/// use taco_workload::{run_scenario, ScenarioConfig, Workload};
///
/// let w = Workload::steady_forward();
/// let m = run_scenario(&w, &ScenarioConfig::new(TableKind::Cam));
/// assert!(m.forwarded > 0);
/// assert_eq!(m, run_scenario(&w, &ScenarioConfig::new(TableKind::Cam)));
/// ```
pub fn run_scenario(workload: &Workload, config: &ScenarioConfig) -> ScenarioMetrics {
    let mut h = Harness::new(workload, config);
    match *workload {
        Workload::SteadyForward { ticks, packets_per_tick, entries, .. } => {
            let routes = h.gen.table(entries as usize, false);
            h.inject_update(0, &routes, false);
            h.drain();
            // Zero the seeding traffic out of the measured record.
            h.reset_measurement();
            for _ in 0..ticks {
                h.inject_data(&routes, packets_per_tick as usize);
                h.service_tick();
            }
        }
        Workload::BurstOverload {
            ticks,
            mean_per_tick_milli,
            burst_every,
            burst_len,
            burst_multiplier,
            entries,
            ..
        } => {
            let routes = h.gen.table(entries as usize, false);
            h.inject_update(0, &routes, false);
            h.drain();
            h.reset_measurement();
            for t in 0..ticks {
                let mut k = h.gen.arrivals(mean_per_tick_milli);
                if burst_every > 0 && t % burst_every < burst_len {
                    k *= u64::from(burst_multiplier.max(1));
                }
                h.inject_data(&routes, k as usize);
                h.service_tick();
            }
        }
        Workload::RipngConvergence {
            ticks,
            neighbours,
            routes_per_neighbour,
            packets_per_tick,
            ..
        } => {
            let tables: Vec<Vec<Route>> = (0..neighbours)
                .map(|_| h.gen.table(routes_per_neighbour as usize, false))
                .collect();
            let all: Vec<Route> = tables.iter().flatten().copied().collect();
            h.drain(); // settle startup requests only; the table starts cold
            h.reset_measurement();
            for t in 0..ticks {
                // Response storm at t=0 and periodic re-advertisement
                // afterwards (29 s keeps routes ahead of the 180 s timeout).
                if t == 0 || (t > 0 && t % 290 == 0) {
                    for (n, table) in tables.iter().enumerate() {
                        h.inject_update(n as u32, table, false);
                    }
                }
                h.inject_data(&all, packets_per_tick as usize);
                h.service_tick();
            }
        }
        Workload::TableChurn {
            ticks, packets_per_tick, entries, churn_every, churn_size, ..
        } => {
            let routes = h.gen.table(entries as usize, false);
            h.inject_update(0, &routes, false);
            h.drain();
            h.reset_measurement();
            let slice = (churn_size as usize).min(routes.len()).max(1);
            let mut cursor = 0usize;
            let mut withdrawn: Option<Vec<Route>> = None;
            for t in 0..ticks {
                if churn_every > 0 && t % churn_every == churn_every / 2 {
                    match withdrawn.take() {
                        // Alternate: re-advertise the slice pulled last
                        // event, or withdraw the next slice.
                        Some(back) => h.inject_update(0, &back, false),
                        None => {
                            let end = (cursor + slice).min(routes.len());
                            let out: Vec<Route> = routes[cursor..end].to_vec();
                            h.inject_update(0, &out, true);
                            cursor = if end >= routes.len() { 0 } else { end };
                            withdrawn = Some(out);
                        }
                    }
                }
                h.inject_data(&routes, packets_per_tick as usize);
                h.service_tick();
            }
        }
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_names_round_trip() {
        for w in Workload::builtin() {
            assert_eq!(Workload::by_name(w.name()), Some(w));
        }
        assert_eq!(Workload::by_name("nope"), None);
    }

    #[test]
    fn with_seed_changes_only_the_seed() {
        let w = Workload::steady_forward().with_seed(42);
        assert_eq!(w.seed(), 42);
        assert_eq!(w.name(), "steady-forward");
        assert_eq!(w.ticks(), Workload::steady_forward().ticks());
    }

    #[test]
    fn steady_forward_forwards_without_overflow() {
        let m = run_scenario(
            &Workload::SteadyForward { seed: 1, ticks: 60, packets_per_tick: 16, entries: 40 },
            &ScenarioConfig::new(TableKind::Sequential),
        );
        assert_eq!(m.offered, 60 * 16);
        assert!(m.forwarded > 0, "{}", m.to_json());
        assert_eq!(m.dropped_overflow, 0, "{}", m.to_json());
        // ~10% of destinations are deliberately unrouted.
        assert!(m.dropped_no_route > 0, "{}", m.to_json());
        assert!(m.latency.count() > 0);
    }

    #[test]
    fn burst_overload_drops_and_queues() {
        let m = run_scenario(
            &Workload::BurstOverload {
                seed: 2,
                ticks: 120,
                mean_per_tick_milli: 24_000,
                burst_every: 30,
                burst_len: 10,
                burst_multiplier: 6,
                entries: 40,
            },
            &ScenarioConfig::new(TableKind::BalancedTree).service_per_tick(24).queue_capacity(16),
        );
        assert!(m.dropped_overflow > 0, "bursts must overflow: {}", m.to_json());
        assert!(m.max_queue_depth >= 8, "{}", m.to_json());
        assert!(m.latency.max() >= 1, "queueing must show up in latency: {}", m.to_json());
    }

    #[test]
    fn convergence_installs_routes_and_measures_updates() {
        let m = run_scenario(
            &Workload::RipngConvergence {
                seed: 3,
                ticks: 80,
                neighbours: 4,
                routes_per_neighbour: 20,
                packets_per_tick: 12,
            },
            &ScenarioConfig::new(TableKind::Cam),
        );
        assert!(m.table_updates >= 4, "{}", m.to_json());
        assert!(m.forwarded > 0, "{}", m.to_json());
        assert!(m.ripng_sent > 0, "{}", m.to_json());
        // The cold start drops more than steady state would.
        assert!(m.dropped_no_route > 0, "{}", m.to_json());
    }

    #[test]
    fn churn_withdraws_cause_extra_drops() {
        let churned = run_scenario(
            &Workload::TableChurn {
                seed: 4,
                ticks: 200,
                packets_per_tick: 16,
                entries: 40,
                churn_every: 20,
                churn_size: 20,
            },
            &ScenarioConfig::new(TableKind::Sequential),
        );
        let calm = run_scenario(
            &Workload::TableChurn {
                seed: 4,
                ticks: 200,
                packets_per_tick: 16,
                entries: 40,
                churn_every: 0, // no churn events at all
                churn_size: 20,
            },
            &ScenarioConfig::new(TableKind::Sequential),
        );
        assert!(churned.table_updates > calm.table_updates);
        assert!(
            churned.dropped_no_route > calm.dropped_no_route,
            "withdrawing half the table must cost forwards: {} vs {}",
            churned.dropped_no_route,
            calm.dropped_no_route
        );
    }

    #[test]
    fn same_seed_same_metrics_across_kinds() {
        for kind in TableKind::PAPER_KINDS {
            let w =
                Workload::SteadyForward { seed: 9, ticks: 40, packets_per_tick: 8, entries: 20 };
            let a = run_scenario(&w, &ScenarioConfig::new(kind));
            let b = run_scenario(&w, &ScenarioConfig::new(kind));
            assert_eq!(a.to_json(), b.to_json(), "{kind}");
        }
    }

    #[test]
    fn different_seeds_differ() {
        let cfg = ScenarioConfig::new(TableKind::Sequential);
        let a = run_scenario(&Workload::steady_forward(), &cfg);
        let b = run_scenario(&Workload::steady_forward().with_seed(1), &cfg);
        assert_ne!(a.to_json(), b.to_json());
    }
}
