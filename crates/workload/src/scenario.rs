//! The scenario engine: named, seeded workloads driving the behavioural
//! router.
//!
//! A [`Workload`] names a traffic pattern with all-integer parameters (so
//! workloads hash, compare and key caches); [`run_scenario`] replays it
//! against a [`Router`] built over any [`TableKind`] and returns a
//! [`ScenarioMetrics`].  The same `(workload, config)` pair always produces
//! the same metrics, byte for byte.
//!
//! Time advances in fixed 100 ms ticks.  Each tick the engine injects
//! arrivals at the line cards, lets the router service at most
//! [`ScenarioConfig::service_per_tick`] datagrams (the processor's speed,
//! which is what couples scenarios to architecture evaluation), and then
//! measures queue depths and per-datagram latency by pairing the cards'
//! service counters with recorded arrival ticks.

use std::collections::VecDeque;

use taco_ipv6::{Datagram, Ipv6Address, NextHeader};
use taco_isa::SystemConfig;
use taco_router::router::Router;
use taco_router::traffic::{ripng_datagram, TrafficGen};
use taco_router::SplitMix64;
use taco_routing::ripng::InterfaceConfig;
use taco_routing::{LpmTable, PortId, Route, SimTime, TableKind};
use taco_sim::MulticoreSim;

use crate::fault::{FaultMetrics, FaultPlan};
use crate::metrics::{FlowStats, LatencyHistogram, ScenarioMetrics};
use crate::trace::{FlowTrace, TraceGen, TraceRecord};

/// Router ports every scenario drives.
pub const PORTS: u16 = 4;

/// Simulated duration of one engine tick in milliseconds.
pub const TICK_MILLIS: u64 = 100;

/// Fraction of data destinations that hit the routing table (per mille).
const HIT_RATIO: f64 = 0.9;

/// Payload bytes per data datagram.
const PAYLOAD_BYTES: usize = 64;

/// RIPng entries per advertisement datagram (stays under the MTU).
const ADVERT_CHUNK: usize = 60;

/// Seed used by the built-in scenario set ([`Workload::builtin`]).
pub const DEFAULT_SEED: u64 = 0x7AC0_2003;

/// A named, seeded traffic pattern.
///
/// Every variant carries only integers so a workload can key the
/// evaluation cache (`Hash + Eq`) and serialise stably.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Workload {
    /// The paper's workload: a constant stream of forwarding datagrams
    /// over a fixed table — the cross-validation baseline.
    SteadyForward {
        /// RNG seed; same seed ⇒ identical run.
        seed: u64,
        /// Measured ticks.
        ticks: u32,
        /// Data datagrams injected per tick.
        packets_per_tick: u32,
        /// Routing-table size.
        entries: u32,
    },
    /// Poisson-ish arrivals whose bursts exceed the service rate,
    /// measuring drops and queue growth under overload.
    BurstOverload {
        /// RNG seed.
        seed: u64,
        /// Measured ticks.
        ticks: u32,
        /// Mean arrivals per tick, in thousandths (1500 ⇒ 1.5/tick).
        mean_per_tick_milli: u64,
        /// A burst window opens every this many ticks…
        burst_every: u32,
        /// …lasts this many ticks…
        burst_len: u32,
        /// …and multiplies the arrival rate by this factor.
        burst_multiplier: u32,
        /// Routing-table size.
        entries: u32,
    },
    /// RIPng response storms from several neighbours converge the table
    /// while forwarding traffic is already flowing — early datagrams drop,
    /// then the drop rate decays as routes install.
    RipngConvergence {
        /// RNG seed.
        seed: u64,
        /// Measured ticks.
        ticks: u32,
        /// Advertising neighbours (spread round-robin over the ports).
        neighbours: u32,
        /// Routes each neighbour advertises.
        routes_per_neighbour: u32,
        /// Data datagrams injected per tick.
        packets_per_tick: u32,
    },
    /// Routes are withdrawn and re-advertised in slices while packets fly;
    /// traffic to a withdrawn slice drops until it returns.
    TableChurn {
        /// RNG seed.
        seed: u64,
        /// Measured ticks.
        ticks: u32,
        /// Data datagrams injected per tick.
        packets_per_tick: u32,
        /// Routing-table size.
        entries: u32,
        /// A churn event fires every this many ticks…
        churn_every: u32,
        /// …withdrawing (then re-advertising) this many routes.
        churn_size: u32,
    },
    /// Alternating control-heavy and data-heavy phases: RIPng withdrawal
    /// storms followed by re-advertisement while forwarding trickles,
    /// then forwarding bursts at a multiplied rate — the mixed
    /// control/data-plane load a real edge router carries.
    MixedPlane {
        /// RNG seed.
        seed: u64,
        /// Measured ticks.
        ticks: u32,
        /// Advertising neighbours (spread round-robin over the ports).
        neighbours: u32,
        /// Routes each neighbour advertises.
        routes_per_neighbour: u32,
        /// Data datagrams injected per tick in control phases.
        packets_per_tick: u32,
        /// Data-phase rate multiplier over `packets_per_tick`.
        burst_multiplier: u32,
        /// Length of each phase in ticks (control and data alternate).
        phase_len: u32,
    },
    /// Replays a [`FlowTrace`](crate::trace::FlowTrace) — empirically
    /// shaped, heavy-tailed flow traffic — regenerated deterministically
    /// from this compact descriptor by
    /// [`TraceGen`](crate::trace::TraceGen).  An externally supplied
    /// trace file replays through
    /// [`run_trace_replay`] instead.
    TraceReplay {
        /// Trace seed (also derives the routing table).
        seed: u64,
        /// Tick horizon of the trace.
        ticks: u32,
        /// Flows the trace carries.
        flows: u32,
        /// Routing-table size the destinations were drawn against.
        entries: u32,
    },
}

impl Workload {
    /// The scenario's name (`steady-forward`, `burst-overload`,
    /// `ripng-convergence`, `table-churn`, `mixed-plane`,
    /// `trace-replay`).
    pub fn name(&self) -> &'static str {
        match self {
            Workload::SteadyForward { .. } => "steady-forward",
            Workload::BurstOverload { .. } => "burst-overload",
            Workload::RipngConvergence { .. } => "ripng-convergence",
            Workload::TableChurn { .. } => "table-churn",
            Workload::MixedPlane { .. } => "mixed-plane",
            Workload::TraceReplay { .. } => "trace-replay",
        }
    }

    /// The workload's RNG seed.
    pub fn seed(&self) -> u64 {
        match self {
            Workload::SteadyForward { seed, .. }
            | Workload::BurstOverload { seed, .. }
            | Workload::RipngConvergence { seed, .. }
            | Workload::TableChurn { seed, .. }
            | Workload::MixedPlane { seed, .. }
            | Workload::TraceReplay { seed, .. } => *seed,
        }
    }

    /// The same workload with a different seed.
    pub fn with_seed(mut self, new_seed: u64) -> Self {
        match &mut self {
            Workload::SteadyForward { seed, .. }
            | Workload::BurstOverload { seed, .. }
            | Workload::RipngConvergence { seed, .. }
            | Workload::TableChurn { seed, .. }
            | Workload::MixedPlane { seed, .. }
            | Workload::TraceReplay { seed, .. } => *seed = new_seed,
        }
        self
    }

    /// Measured ticks.
    pub fn ticks(&self) -> u32 {
        match self {
            Workload::SteadyForward { ticks, .. }
            | Workload::BurstOverload { ticks, .. }
            | Workload::RipngConvergence { ticks, .. }
            | Workload::TableChurn { ticks, .. }
            | Workload::MixedPlane { ticks, .. }
            | Workload::TraceReplay { ticks, .. } => *ticks,
        }
    }

    /// The built-in scenario set with default parameters and
    /// [`DEFAULT_SEED`], in documentation order.
    pub fn builtin() -> Vec<Workload> {
        vec![
            Workload::steady_forward(),
            Workload::burst_overload(),
            Workload::ripng_convergence(),
            Workload::table_churn(),
            Workload::mixed_plane(),
            Workload::trace_replay(),
        ]
    }

    /// Looks a built-in scenario up by [`Workload::name`].
    pub fn by_name(name: &str) -> Option<Workload> {
        Workload::builtin().into_iter().find(|w| w.name() == name)
    }

    /// The default `steady-forward` scenario.
    pub fn steady_forward() -> Workload {
        Workload::SteadyForward {
            seed: DEFAULT_SEED,
            ticks: 400,
            packets_per_tick: 24,
            entries: 100,
        }
    }

    /// The default `burst-overload` scenario: mean load below the default
    /// service rate, bursts at 4× well above it.
    pub fn burst_overload() -> Workload {
        Workload::BurstOverload {
            seed: DEFAULT_SEED,
            ticks: 400,
            mean_per_tick_milli: 24_000,
            burst_every: 50,
            burst_len: 10,
            burst_multiplier: 4,
            entries: 100,
        }
    }

    /// The default `ripng-convergence` scenario.
    pub fn ripng_convergence() -> Workload {
        Workload::RipngConvergence {
            seed: DEFAULT_SEED,
            ticks: 300,
            neighbours: 4,
            routes_per_neighbour: 25,
            packets_per_tick: 16,
        }
    }

    /// The default `table-churn` scenario.
    pub fn table_churn() -> Workload {
        Workload::TableChurn {
            seed: DEFAULT_SEED,
            ticks: 400,
            packets_per_tick: 16,
            entries: 100,
            churn_every: 40,
            churn_size: 10,
        }
    }

    /// The default `mixed-plane` scenario: 30-tick control phases (a
    /// withdrawal storm, then re-advertisement) alternating with 30-tick
    /// forwarding bursts at 4× the base rate.
    pub fn mixed_plane() -> Workload {
        Workload::MixedPlane {
            seed: DEFAULT_SEED,
            ticks: 240,
            neighbours: 4,
            routes_per_neighbour: 25,
            packets_per_tick: 12,
            burst_multiplier: 4,
            phase_len: 30,
        }
    }

    /// The default `trace-replay` scenario: the reference empirical trace
    /// (heavy-tailed flows, trimodal sizes, popular prefixes) regenerated
    /// from [`DEFAULT_SEED`].
    pub fn trace_replay() -> Workload {
        Workload::TraceReplay { seed: DEFAULT_SEED, ticks: 240, flows: 64, entries: 100 }
    }
}

/// How the router under test is provisioned.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ScenarioConfig {
    /// Routing-table organisation.
    pub kind: TableKind,
    /// Datagrams *one* forwarding core services per tick — the
    /// processor's speed expressed in the engine's time base.  A
    /// multi-core [`ScenarioConfig::system`] multiplies this by its core
    /// count, minus whatever the coherence stalls cost.
    pub service_per_tick: u32,
    /// Input-buffer bound per line card, in datagrams.
    pub queue_capacity: u32,
    /// The multi-core system sharing the routing table.  Single-core
    /// (the default) runs byte-identically to the pre-multicore engine
    /// and carries no `coherence` section.
    pub system: SystemConfig,
}

impl ScenarioConfig {
    /// A config for `kind` with the default service rate (32/tick), queue
    /// bound (64) and a single core.
    pub fn new(kind: TableKind) -> Self {
        ScenarioConfig {
            kind,
            service_per_tick: 32,
            queue_capacity: 64,
            system: SystemConfig::default(),
        }
    }

    /// Sets the service rate.
    pub fn service_per_tick(mut self, rate: u32) -> Self {
        self.service_per_tick = rate;
        self
    }

    /// Sets the queue bound.
    pub fn queue_capacity(mut self, capacity: u32) -> Self {
        self.queue_capacity = capacity;
        self
    }

    /// Sets the multi-core system configuration.
    pub fn system(mut self, system: SystemConfig) -> Self {
        self.system = system;
        self
    }
}

/// Coherence stall cycles that cost one datagram of service budget (the
/// integer exchange rate between the coherence model's cycle domain and
/// the engine's datagrams-per-tick domain).
const STALL_CYCLES_PER_SLOT: u64 = 32;

/// Drives the [`MulticoreSim`] from the serviced traffic: every serviced
/// data datagram is a table lookup on the next core (round-robin fan-out
/// across the cores), every serviced table update is a table write by
/// core 0 (the control plane), and the accumulated stall cycles are paid
/// back as service-budget debt on subsequent ticks.
struct CoherenceDriver {
    sim: MulticoreSim,
    /// Seeded stream choosing which table line each access touches.
    rng: SplitMix64,
    next_core: u64,
    /// Stall cycles not yet charged against the service budget.
    debt: u64,
}

impl CoherenceDriver {
    fn new(system: SystemConfig, seed: u64) -> Self {
        CoherenceDriver {
            sim: MulticoreSim::new(system),
            rng: SplitMix64::new(seed ^ 0xC0DE_C0FE),
            next_core: 0,
            debt: 0,
        }
    }

    /// A serviced data datagram: one table-line read, fanned round-robin
    /// over the cores.  `words` is the current table footprint, bounding
    /// the line space the seeded stream draws from.
    fn data(&mut self, words: u64) {
        let core = (self.next_core % self.sim.cores() as u64) as usize;
        self.next_core += 1;
        let addr = self.rng.below(words.max(1));
        self.debt += self.sim.read(core, addr);
    }

    /// A serviced table update: one table-line write by core 0,
    /// invalidating whatever the other cores have cached of that line.
    fn update(&mut self, words: u64) {
        let addr = self.rng.below(words.max(1));
        self.debt += self.sim.write(0, addr);
    }

    /// The tick's service budget after paying down stall debt.  At least
    /// one datagram is always serviced, so debt can defer but never
    /// deadlock progress.
    fn budget(&mut self, base: usize) -> usize {
        let cap = base.saturating_sub(1) as u64;
        let penalty = (self.debt / STALL_CYCLES_PER_SLOT).min(cap);
        self.debt -= penalty * STALL_CYCLES_PER_SLOT;
        base - penalty as usize
    }
}

/// What a recorded arrival was, so servicing it lands in the right
/// histogram (or closes a recovery).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ArrivalKind {
    /// A data datagram — services into the latency histogram.
    Data,
    /// A RIPng table update — services into the update-latency histogram.
    Update,
    /// A fault-injected frame (malformed, expiring) — serviced and
    /// dropped by the core, but not a latency sample.
    FaultNoise,
    /// A repair re-advertisement; servicing it completes the recovery of
    /// the fault injected at `injected`.
    Repair {
        /// Tick the underlying fault was injected.
        injected: u64,
    },
}

/// Arrival bookkeeping: `(arrival tick, kind)` per port, in FIFO order —
/// the same order the router services each card.
type ArrivalFifo = VecDeque<(u64, ArrivalKind)>;

/// A repair re-advertisement waiting for its due tick (bounded re-resolve
/// with retry/backoff).
struct PendingRepair {
    due: u64,
    injected: u64,
    attempts_left: u32,
    neighbour: u32,
    routes: Vec<Route>,
}

/// A linecard whose carrier is down until `up_at`.
struct DownLink {
    port: u16,
    since: u64,
    up_at: u64,
}

/// Executes a [`FaultPlan`] tick by tick, with its own RNG streams so the
/// workload's traffic draw is untouched and the replay stays deterministic
/// regardless of thread count.
struct FaultDriver {
    plan: FaultPlan,
    rng: SplitMix64,
    fgen: TrafficGen,
    pending: Vec<PendingRepair>,
    downs: Vec<DownLink>,
    flap_cursor: u32,
    metrics: FaultMetrics,
}

impl FaultDriver {
    fn new(plan: &FaultPlan) -> Self {
        FaultDriver {
            plan: *plan,
            rng: SplitMix64::new(plan.seed),
            fgen: TrafficGen::new(plan.seed ^ 0x5EED_FA17, PORTS),
            pending: Vec::new(),
            downs: Vec::new(),
            flap_cursor: 0,
            metrics: FaultMetrics::default(),
        }
    }

    /// Integer-rate draw: `milli / 1000` frames plus a seeded chance of
    /// one more for the fractional part.
    fn count(&mut self, milli: u64) -> u64 {
        milli / 1000 + u64::from(self.rng.below(1000) < milli % 1000)
    }

    /// A routed-or-not destination for an injected frame.
    fn fault_dst(&mut self, routes: &[Route]) -> Ipv6Address {
        if routes.is_empty() {
            "9999::1".parse().expect("valid address")
        } else {
            let p = routes[self.rng.below(routes.len() as u64) as usize].prefix();
            self.fgen.addr_in(&p)
        }
    }
}

struct Harness {
    router: Router<Box<dyn LpmTable>>,
    gen: TrafficGen,
    fifos: Vec<ArrivalFifo>,
    last_polled: Vec<u64>,
    tick: u64,
    service: usize,
    overflow_baseline: u64,
    metrics: ScenarioMetrics,
    faults: Option<FaultDriver>,
    coherence: Option<CoherenceDriver>,
    /// Routes advertised per seeding batch ([`Harness::seed_table`]):
    /// half the card's queue in advertisement frames, so seeding never
    /// tail-drops no matter how large the table is.
    seed_batch: usize,
}

impl Harness {
    fn new(w: &Workload, cfg: &ScenarioConfig, faults: Option<&FaultPlan>) -> Self {
        let interfaces: Vec<InterfaceConfig> = (0..PORTS)
            .map(|i| {
                InterfaceConfig::new(
                    PortId(i),
                    format!("fe80::1:{i}").parse().expect("valid address"),
                    vec![format!("2001:db8:{i}::/48").parse().expect("valid prefix")],
                )
            })
            .collect();
        let mut router = Router::new(interfaces, cfg.kind.build(&[]));
        for i in 0..PORTS {
            router.card_mut(PortId(i)).set_capacity(cfg.queue_capacity as usize);
        }
        let metrics = ScenarioMetrics {
            scenario: w.name(),
            kind: cfg.kind,
            seed: w.seed(),
            ticks: u64::from(w.ticks()),
            offered: 0,
            forwarded: 0,
            delivered: 0,
            dropped_no_route: 0,
            dropped_overflow: 0,
            max_queue_depth: 0,
            final_backlog: 0,
            latency: LatencyHistogram::new(),
            table_updates: 0,
            update_latency: LatencyHistogram::new(),
            ripng_sent: 0,
            throughput_milli: 0,
            table_memory_words: 0,
            flows: None,
            faults: None,
            coherence: None,
        };
        // N cores service N datagrams where one serviced one; the
        // coherence stalls then claw some of that back as budget debt.
        let multicore = cfg.system.cores > 1;
        let service = if multicore {
            cfg.service_per_tick as usize * usize::from(cfg.system.cores)
        } else {
            cfg.service_per_tick as usize
        };
        Harness {
            router,
            gen: TrafficGen::new(w.seed(), PORTS),
            fifos: vec![ArrivalFifo::new(); usize::from(PORTS)],
            last_polled: vec![0; usize::from(PORTS)],
            tick: 0,
            service,
            overflow_baseline: 0,
            metrics,
            faults: faults.map(FaultDriver::new),
            coherence: multicore.then(|| CoherenceDriver::new(cfg.system, w.seed())),
            seed_batch: ADVERT_CHUNK * (cfg.queue_capacity as usize / 2).max(1),
        }
    }

    /// Seeds the routing table before the measured window.  A line card
    /// buffers only `queue_capacity` frames, so internet-size tables
    /// (100k+ prefixes ⇒ thousands of advertisement frames) are injected
    /// in card-sized batches with a drain between them; paper-scale
    /// tables fit one batch and behave exactly as a single advertisement.
    fn seed_table(&mut self, routes: &[Route]) {
        for batch in routes.chunks(self.seed_batch) {
            self.inject_update(0, batch, false);
            self.drain();
        }
        if routes.is_empty() {
            self.drain();
        }
    }

    /// Zeros every measured counter (table seeding happens before the
    /// measured window; the scenario record must not include it).
    fn reset_measurement(&mut self) {
        let keep = &self.metrics;
        self.metrics = ScenarioMetrics {
            scenario: keep.scenario,
            kind: keep.kind,
            seed: keep.seed,
            ticks: keep.ticks,
            offered: 0,
            forwarded: 0,
            delivered: 0,
            dropped_no_route: 0,
            dropped_overflow: 0,
            max_queue_depth: 0,
            final_backlog: 0,
            latency: LatencyHistogram::new(),
            table_updates: 0,
            update_latency: LatencyHistogram::new(),
            ripng_sent: 0,
            throughput_milli: 0,
            table_memory_words: 0,
            flows: None,
            faults: None,
            coherence: None,
        };
        // Seeding traffic warmed the caches; the measured record starts
        // from zeroed counters over that warm state.
        if let Some(c) = &mut self.coherence {
            c.sim.reset_stats();
            c.debt = 0;
        }
        self.overflow_baseline = self.router.cards().iter().map(|c| c.dropped_overflow()).sum();
    }

    fn neighbour_addr(n: u32) -> Ipv6Address {
        format!("fe80::99:{:x}", n + 1).parse().expect("valid address")
    }

    /// Injects a RIPng response advertising (or withdrawing) `routes` from
    /// neighbour `n` on its port, split under the MTU.
    fn inject_update(&mut self, n: u32, routes: &[Route], withdraw: bool) {
        let port = PortId((n % u32::from(PORTS)) as u16);
        let from = Self::neighbour_addr(n);
        for chunk in routes.chunks(ADVERT_CHUNK) {
            let pkt = if withdraw {
                self.gen.ripng_withdrawal(chunk)
            } else {
                self.gen.ripng_response(chunk)
            };
            if self.router.card_mut(port).receive(ripng_datagram(from, &pkt)) {
                self.fifos[usize::from(port.0)].push_back((self.tick, ArrivalKind::Update));
            }
        }
    }

    /// Injects a repair re-advertisement from neighbour `n`; the first
    /// accepted chunk is tagged so servicing it completes the recovery of
    /// the fault injected at `injected`.  Returns `false` when the whole
    /// advertisement was lost (tail drop or link down) and the repair must
    /// retry.
    fn inject_repair(&mut self, n: u32, routes: &[Route], injected: u64) -> bool {
        let port = PortId((n % u32::from(PORTS)) as u16);
        let from = Self::neighbour_addr(n);
        let mut tagged = false;
        for chunk in routes.chunks(ADVERT_CHUNK) {
            let pkt = self.gen.ripng_response(chunk);
            if self.router.card_mut(port).receive(ripng_datagram(from, &pkt)) {
                let kind =
                    if tagged { ArrivalKind::Update } else { ArrivalKind::Repair { injected } };
                tagged = true;
                self.fifos[usize::from(port.0)].push_back((self.tick, kind));
            }
        }
        tagged
    }

    /// Injects `k` data datagrams over `routes` at random ports.
    fn inject_data(&mut self, routes: &[Route], k: usize) {
        for (port, datagram) in self.gen.forwarding_workload(routes, k, HIT_RATIO, PAYLOAD_BYTES) {
            self.metrics.offered += 1;
            if self.router.card_mut(port).receive(datagram) {
                self.fifos[usize::from(port.0)].push_back((self.tick, ArrivalKind::Data));
            }
        }
    }

    /// Injects one recorded trace datagram verbatim — no RNG draw, so the
    /// replay is the trace and nothing else.
    fn inject_record(&mut self, r: &TraceRecord) {
        self.metrics.offered += 1;
        let datagram = Datagram::builder(Ipv6Address::new(r.src), Ipv6Address::new(r.dst))
            .hop_limit(64)
            .flow_label(r.flow_id & 0xf_ffff)
            .payload(NextHeader::Udp, vec![0u8; usize::from(r.payload_len)])
            .build();
        let port = PortId(u16::from(r.linecard) % PORTS);
        if self.router.card_mut(port).receive(datagram) {
            self.fifos[usize::from(port.0)].push_back((self.tick, ArrivalKind::Data));
        }
    }

    /// Replays `trace` through the measured window: seeds the derived
    /// routing table, injects each record at its tick, and accumulates
    /// the per-flow section.
    fn replay_trace(&mut self, trace: &FlowTrace) {
        let routes = trace.table();
        self.seed_table(&routes);
        self.reset_measurement();
        let mut per_flow: std::collections::BTreeMap<u32, u64> = std::collections::BTreeMap::new();
        let mut stats = FlowStats::default();
        let records = trace.records();
        let mut next = 0usize;
        // Seeding advanced the engine clock; record ticks are offsets from
        // the start of the measured window.
        let base = self.tick;
        for _ in 0..trace.ticks {
            self.fault_tick(&routes);
            while next < records.len() && u64::from(records[next].tick) + base <= self.tick {
                let r = &records[next];
                *per_flow.entry(r.flow_id).or_insert(0) += 1;
                stats.packets += 1;
                match r.payload_len {
                    0..=127 => stats.small += 1,
                    128..=768 => stats.medium += 1,
                    _ => stats.large += 1,
                }
                self.inject_record(r);
                next += 1;
            }
            self.service_tick();
        }
        stats.flows = per_flow.len() as u64;
        stats.max_flow_len = per_flow.values().copied().max().unwrap_or(0);
        self.metrics.flows = Some(stats);
    }

    /// One tick of the fault plan: links coming back up re-advertise, due
    /// repairs are issued (with retry/backoff), new flaps and table
    /// corruptions fire, and the tick's malformed and expiring frames are
    /// injected at the cards.  No-op when the run carries no plan.
    fn fault_tick(&mut self, routes: &[Route]) {
        let Some(mut f) = self.faults.take() else { return };
        let tick = self.tick;

        // Links whose down interval ended: carrier returns, and the
        // neighbour re-advertises the routes poisoned at flap time (RIPng
        // convergence under loss).  Recovery completes when that repair
        // advertisement is serviced by the routing core.
        let mut up = Vec::new();
        f.downs.retain(|d| {
            if d.up_at <= tick {
                up.push((d.port, d.since));
                false
            } else {
                true
            }
        });
        for (port, since) in up {
            self.router.card_mut(PortId(port)).set_link_up(true);
            let back: Vec<Route> =
                routes.iter().filter(|r| r.interface().0 == port).copied().collect();
            f.pending.push(PendingRepair {
                due: tick,
                injected: since,
                attempts_left: f.plan.repair_retries,
                neighbour: u32::from(port),
                routes: back,
            });
        }

        // Due repairs: re-advertise; a lost advertisement backs off and
        // retries until its attempts are exhausted, then counts as
        // unrecovered.
        let (due, rest): (Vec<_>, Vec<_>) = f.pending.drain(..).partition(|p| p.due <= tick);
        f.pending = rest;
        for mut p in due {
            if p.routes.is_empty() {
                // Nothing was routed behind the fault; carrier return alone
                // completes the recovery.
                f.metrics.recovered += 1;
                f.metrics.recovery.record(tick - p.injected);
            } else if self.inject_repair(p.neighbour, &p.routes, p.injected) {
                // Queued; the recovery closes when the advert is serviced.
            } else if p.attempts_left > 0 {
                p.attempts_left -= 1;
                p.due = tick + u64::from(f.plan.repair_ticks.max(1));
                f.pending.push(p);
            } else {
                f.metrics.unrecovered += 1;
            }
        }

        // A new link flap: the far-end neighbour poisons the routes behind
        // the port (metric-16 withdrawal), then the carrier drops and the
        // card refuses all input until the down interval ends.
        let fe = u64::from(f.plan.flap_every);
        if fe > 0 && tick % fe == fe / 2 {
            let port = (f.flap_cursor % u32::from(PORTS)) as u16;
            f.flap_cursor += 1;
            if !f.downs.iter().any(|d| d.port == port) {
                f.metrics.injected_flaps += 1;
                let out: Vec<Route> =
                    routes.iter().filter(|r| r.interface().0 == port).copied().collect();
                if !out.is_empty() {
                    self.inject_update(u32::from(port), &out, true);
                }
                self.router.card_mut(PortId(port)).set_link_up(false);
                f.downs.push(DownLink {
                    port,
                    since: tick,
                    up_at: tick + u64::from(f.plan.flap_down_ticks.max(1)),
                });
            }
        }

        // Routing-table entry corruption: a seeded victim entry is detected
        // and invalidated (withdrawn); its repair re-advertisement is
        // scheduled after the bounded re-resolve latency.
        let ce = u64::from(f.plan.corrupt_every);
        if ce > 0 && tick % ce == ce - 1 && !routes.is_empty() && f.pending.len() < 32 {
            f.metrics.injected_corruptions += 1;
            let victim = routes[f.rng.below(routes.len() as u64) as usize];
            self.inject_update(u32::from(victim.interface().0), &[victim], true);
            f.pending.push(PendingRepair {
                due: tick + u64::from(f.plan.repair_ticks.max(1)),
                injected: tick,
                attempts_left: f.plan.repair_retries,
                neighbour: u32::from(victim.interface().0),
                routes: vec![victim],
            });
        }

        // Malformed / truncated frames, straight onto the wire.
        let n_malformed = f.count(f.plan.malformed_per_tick_milli);
        for _ in 0..n_malformed {
            f.metrics.injected_malformed += 1;
            let port = PortId(f.rng.below(u64::from(PORTS)) as u16);
            let dst = f.fault_dst(routes);
            let mut bytes = f.fgen.datagram(dst, 8).to_bytes();
            if f.rng.below(2) == 0 {
                // Truncated below the 40-byte fixed header.
                bytes.truncate(f.rng.range_inclusive(1, 39) as usize);
            } else {
                // A version nibble that is not 6.
                let v = [0u8, 4, 5, 7][f.rng.below(4) as usize];
                bytes[0] = (bytes[0] & 0x0f) | (v << 4);
            }
            if self.router.card_mut(port).receive_raw(bytes) {
                self.fifos[usize::from(port.0)].push_back((tick, ArrivalKind::FaultNoise));
            }
        }

        // Hop-limit-zero storm: datagrams that expire at the first hop and
        // bounce an ICMPv6 time-exceeded.
        let src: Ipv6Address = "2001:db8:bad::1".parse().expect("valid address");
        let n_expiring = f.count(f.plan.hop_limit_zero_per_tick_milli);
        for _ in 0..n_expiring {
            f.metrics.injected_hop_limit += 1;
            let port = PortId(f.rng.below(u64::from(PORTS)) as u16);
            let dst = f.fault_dst(routes);
            let hl = f.rng.below(2) as u8; // 0 or 1: both expire here
            let d = Datagram::builder(src, dst)
                .hop_limit(hl)
                .payload(NextHeader::Udp, vec![0xfa])
                .build();
            if self.router.card_mut(port).receive(d) {
                self.fifos[usize::from(port.0)].push_back((tick, ArrivalKind::FaultNoise));
            }
        }

        self.faults = Some(f);
    }

    /// Runs one budgeted router tick and folds the results into the
    /// metrics.
    fn service_tick(&mut self) {
        let now = SimTime::from_millis(self.tick * TICK_MILLIS);
        // Coherence stalls from earlier ticks are paid here, as a reduced
        // service budget.
        let budget = match &mut self.coherence {
            Some(c) => c.budget(self.service),
            None => self.service,
        };
        let report = self.router.tick_budgeted(now, budget);
        // Footprint high-water mark: under churn the arena-backed engines
        // must stay bounded, and this is the metric that proves it.
        let table_words = self.router.core().table().memory_words() as u64;
        self.metrics.table_memory_words = self.metrics.table_memory_words.max(table_words);
        self.metrics.forwarded += report.forwarded;
        self.metrics.delivered += report.delivered;
        self.metrics.dropped_no_route += report.dropped;
        self.metrics.ripng_sent += report.ripng_sent;
        if let Some(f) = &mut self.faults {
            f.metrics.detected_malformed += report.dropped_malformed;
            f.metrics.detected_hop_limit += report.dropped_hop_limit;
        }
        for i in 0..usize::from(PORTS) {
            let card = self.router.card_mut(PortId(i as u16));
            let polled = card.polled();
            let depth = card.pending() as u64;
            card.drain_transmitted(); // keep memory bounded; output is not measured
            self.metrics.max_queue_depth = self.metrics.max_queue_depth.max(depth);
            for _ in self.last_polled[i]..polled {
                let Some((arrived, kind)) = self.fifos[i].pop_front() else {
                    break;
                };
                let latency = self.tick - arrived;
                match kind {
                    ArrivalKind::Data => {
                        self.metrics.latency.record(latency);
                        if let Some(c) = &mut self.coherence {
                            c.data(table_words);
                        }
                    }
                    ArrivalKind::Update => {
                        self.metrics.table_updates += 1;
                        self.metrics.update_latency.record(latency);
                        if let Some(c) = &mut self.coherence {
                            c.update(table_words);
                        }
                    }
                    // Injected noise is serviced (it costs budget) but is
                    // not a latency sample.  It still probes the table.
                    ArrivalKind::FaultNoise => {
                        if let Some(c) = &mut self.coherence {
                            c.data(table_words);
                        }
                    }
                    ArrivalKind::Repair { injected } => {
                        self.metrics.table_updates += 1;
                        self.metrics.update_latency.record(latency);
                        if let Some(c) = &mut self.coherence {
                            c.update(table_words);
                        }
                        if let Some(f) = &mut self.faults {
                            f.metrics.recovered += 1;
                            f.metrics.recovery.record(self.tick - injected);
                        }
                    }
                }
            }
            self.last_polled[i] = polled;
        }
        self.tick += 1;
    }

    /// Drains everything already queued (used between seeding and
    /// measurement), unbudgeted.
    fn drain(&mut self) {
        while self.router.pending() > 0 {
            let before = self.service;
            self.service = usize::MAX;
            self.service_tick();
            self.service = before;
        }
        // One extra tick so startup requests and first periodic updates are
        // behind us before measurement starts.
        let before = self.service;
        self.service = usize::MAX;
        self.service_tick();
        self.service = before;
    }

    fn finish(mut self) -> ScenarioMetrics {
        let overflow: u64 = self.router.cards().iter().map(|c| c.dropped_overflow()).sum();
        self.metrics.dropped_overflow = overflow - self.overflow_baseline;
        self.metrics.final_backlog = self.router.pending() as u64;
        self.metrics.throughput_milli =
            (self.metrics.forwarded * 1000).checked_div(self.metrics.ticks).unwrap_or(0);
        if let Some(f) = self.faults.take() {
            let mut m = f.metrics;
            // Whatever is still outstanding when the scenario ends never
            // recovered: repairs awaiting their due tick, repair adverts
            // queued but never serviced, and links still down.
            m.unrecovered += f.pending.len() as u64 + f.downs.len() as u64;
            for fifo in &self.fifos {
                m.unrecovered +=
                    fifo.iter().filter(|(_, k)| matches!(k, ArrivalKind::Repair { .. })).count()
                        as u64;
            }
            m.dropped_link_down = self.router.cards().iter().map(|c| c.dropped_link_down()).sum();
            self.metrics.faults = Some(m);
        }
        if let Some(c) = self.coherence.take() {
            self.metrics.coherence = Some(*c.sim.stats());
        }
        self.metrics
    }
}

/// Replays `workload` against a router provisioned per `config`.
///
/// Deterministic: the metrics (including their JSON form) are identical
/// for identical inputs, on any thread count and platform.
///
/// # Examples
///
/// ```
/// use taco_routing::TableKind;
/// use taco_workload::{run_scenario, ScenarioConfig, Workload};
///
/// let w = Workload::steady_forward();
/// let m = run_scenario(&w, &ScenarioConfig::new(TableKind::Cam));
/// assert!(m.forwarded > 0);
/// assert_eq!(m, run_scenario(&w, &ScenarioConfig::new(TableKind::Cam)));
/// ```
pub fn run_scenario(workload: &Workload, config: &ScenarioConfig) -> ScenarioMetrics {
    run_scenario_with_faults(workload, config, None)
}

/// [`run_scenario`] with an optional deterministic [`FaultPlan`] layered on
/// top: the plan's faults (malformed frames, expiring datagrams, table
/// corruption with bounded repair, link flaps) fire during the measured
/// window, and the metrics carry a [`FaultMetrics`] record.  Passing `None`
/// is byte-identical to [`run_scenario`].
pub fn run_scenario_with_faults(
    workload: &Workload,
    config: &ScenarioConfig,
    faults: Option<&FaultPlan>,
) -> ScenarioMetrics {
    let mut h = Harness::new(workload, config, faults);
    match *workload {
        Workload::SteadyForward { ticks, packets_per_tick, entries, .. } => {
            let routes = h.gen.table(entries as usize, false);
            h.seed_table(&routes);
            // Zero the seeding traffic out of the measured record.
            h.reset_measurement();
            for _ in 0..ticks {
                h.fault_tick(&routes);
                h.inject_data(&routes, packets_per_tick as usize);
                h.service_tick();
            }
        }
        Workload::BurstOverload {
            ticks,
            mean_per_tick_milli,
            burst_every,
            burst_len,
            burst_multiplier,
            entries,
            ..
        } => {
            let routes = h.gen.table(entries as usize, false);
            h.seed_table(&routes);
            h.reset_measurement();
            for t in 0..ticks {
                h.fault_tick(&routes);
                let mut k = h.gen.arrivals(mean_per_tick_milli);
                if burst_every > 0 && t % burst_every < burst_len {
                    k *= u64::from(burst_multiplier.max(1));
                }
                h.inject_data(&routes, k as usize);
                h.service_tick();
            }
        }
        Workload::RipngConvergence {
            ticks,
            neighbours,
            routes_per_neighbour,
            packets_per_tick,
            ..
        } => {
            let tables: Vec<Vec<Route>> = (0..neighbours)
                .map(|_| h.gen.table(routes_per_neighbour as usize, false))
                .collect();
            let all: Vec<Route> = tables.iter().flatten().copied().collect();
            h.drain(); // settle startup requests only; the table starts cold
            h.reset_measurement();
            for t in 0..ticks {
                // Response storm at t=0 and periodic re-advertisement
                // afterwards (29 s keeps routes ahead of the 180 s timeout).
                if t == 0 || (t > 0 && t % 290 == 0) {
                    for (n, table) in tables.iter().enumerate() {
                        h.inject_update(n as u32, table, false);
                    }
                }
                h.fault_tick(&all);
                h.inject_data(&all, packets_per_tick as usize);
                h.service_tick();
            }
        }
        Workload::TableChurn {
            ticks, packets_per_tick, entries, churn_every, churn_size, ..
        } => {
            // Churn runs on an internet-shaped table: BGP prefix-length
            // mass, provider aggregates with nested more-specifics —
            // the workload that stresses incremental insert/remove and
            // the arena engines' footprint bound at 10k–1M entries.
            let routes = h.gen.bgp_table(entries as usize, false);
            h.seed_table(&routes);
            h.reset_measurement();
            let slice = (churn_size as usize).min(routes.len()).max(1);
            let mut cursor = 0usize;
            let mut withdrawn: Option<Vec<Route>> = None;
            for t in 0..ticks {
                if churn_every > 0 && t % churn_every == churn_every / 2 {
                    match withdrawn.take() {
                        // Alternate: re-advertise the slice pulled last
                        // event, or withdraw the next slice.
                        Some(back) => h.inject_update(0, &back, false),
                        None => {
                            let end = (cursor + slice).min(routes.len());
                            let out: Vec<Route> = routes[cursor..end].to_vec();
                            h.inject_update(0, &out, true);
                            cursor = if end >= routes.len() { 0 } else { end };
                            withdrawn = Some(out);
                        }
                    }
                }
                h.fault_tick(&routes);
                h.inject_data(&routes, packets_per_tick as usize);
                h.service_tick();
            }
        }
        Workload::MixedPlane {
            ticks,
            neighbours,
            routes_per_neighbour,
            packets_per_tick,
            burst_multiplier,
            phase_len,
            ..
        } => {
            let tables: Vec<Vec<Route>> = (0..neighbours)
                .map(|_| h.gen.table(routes_per_neighbour as usize, false))
                .collect();
            let all: Vec<Route> = tables.iter().flatten().copied().collect();
            h.seed_table(&all);
            h.reset_measurement();
            let phase = phase_len.max(1);
            for t in 0..ticks {
                let in_control = (t / phase) % 2 == 0;
                if in_control {
                    // Control storm: each neighbour withdraws its table at
                    // the phase start, then re-advertises mid-phase — the
                    // RIPng convergence churn a flapping peer causes.
                    if t % phase == 0 {
                        for (n, table) in tables.iter().enumerate() {
                            h.inject_update(n as u32, table, true);
                        }
                    } else if t % phase == phase / 2 {
                        for (n, table) in tables.iter().enumerate() {
                            h.inject_update(n as u32, table, false);
                        }
                    }
                    h.inject_data(&all, packets_per_tick as usize);
                } else {
                    // Data burst: the forwarding plane floods while the
                    // control plane is quiet.
                    h.inject_data(&all, (packets_per_tick * burst_multiplier.max(1)) as usize);
                }
                h.fault_tick(&all);
                h.service_tick();
            }
        }
        Workload::TraceReplay { seed, ticks, flows, entries } => {
            let trace = TraceGen::generate(seed, ticks, flows, entries);
            h.replay_trace(&trace);
        }
    }
    h.finish()
}

/// Replays an explicit [`FlowTrace`] — typically one loaded from disk or
/// received over the wire — against a router provisioned per `config`,
/// with an optional [`FaultPlan`] layered on top.
///
/// For a trace regenerated from its own descriptor this is byte-identical
/// to [`run_scenario_with_faults`] on [`Workload::TraceReplay`]; for an
/// externally supplied trace the records are replayed verbatim while the
/// header's `(seed, entries)` still derive the routing table.
pub fn run_trace_replay(
    trace: &FlowTrace,
    config: &ScenarioConfig,
    faults: Option<&FaultPlan>,
) -> ScenarioMetrics {
    let descriptor = trace.descriptor();
    let mut h = Harness::new(&descriptor, config, faults);
    h.replay_trace(trace);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_names_round_trip() {
        for w in Workload::builtin() {
            assert_eq!(Workload::by_name(w.name()), Some(w));
        }
        assert_eq!(Workload::by_name("nope"), None);
    }

    #[test]
    fn with_seed_changes_only_the_seed() {
        let w = Workload::steady_forward().with_seed(42);
        assert_eq!(w.seed(), 42);
        assert_eq!(w.name(), "steady-forward");
        assert_eq!(w.ticks(), Workload::steady_forward().ticks());
    }

    #[test]
    fn steady_forward_forwards_without_overflow() {
        let m = run_scenario(
            &Workload::SteadyForward { seed: 1, ticks: 60, packets_per_tick: 16, entries: 40 },
            &ScenarioConfig::new(TableKind::Sequential),
        );
        assert_eq!(m.offered, 60 * 16);
        assert!(m.forwarded > 0, "{}", m.to_json());
        assert_eq!(m.dropped_overflow, 0, "{}", m.to_json());
        // ~10% of destinations are deliberately unrouted.
        assert!(m.dropped_no_route > 0, "{}", m.to_json());
        assert!(m.latency.count() > 0);
    }

    #[test]
    fn burst_overload_drops_and_queues() {
        let m = run_scenario(
            &Workload::BurstOverload {
                seed: 2,
                ticks: 120,
                mean_per_tick_milli: 24_000,
                burst_every: 30,
                burst_len: 10,
                burst_multiplier: 6,
                entries: 40,
            },
            &ScenarioConfig::new(TableKind::BalancedTree).service_per_tick(24).queue_capacity(16),
        );
        assert!(m.dropped_overflow > 0, "bursts must overflow: {}", m.to_json());
        assert!(m.max_queue_depth >= 8, "{}", m.to_json());
        assert!(m.latency.max() >= 1, "queueing must show up in latency: {}", m.to_json());
    }

    #[test]
    fn convergence_installs_routes_and_measures_updates() {
        let m = run_scenario(
            &Workload::RipngConvergence {
                seed: 3,
                ticks: 80,
                neighbours: 4,
                routes_per_neighbour: 20,
                packets_per_tick: 12,
            },
            &ScenarioConfig::new(TableKind::Cam),
        );
        assert!(m.table_updates >= 4, "{}", m.to_json());
        assert!(m.forwarded > 0, "{}", m.to_json());
        assert!(m.ripng_sent > 0, "{}", m.to_json());
        // The cold start drops more than steady state would.
        assert!(m.dropped_no_route > 0, "{}", m.to_json());
    }

    #[test]
    fn churn_withdraws_cause_extra_drops() {
        let churned = run_scenario(
            &Workload::TableChurn {
                seed: 4,
                ticks: 200,
                packets_per_tick: 16,
                entries: 40,
                churn_every: 20,
                churn_size: 20,
            },
            &ScenarioConfig::new(TableKind::Sequential),
        );
        let calm = run_scenario(
            &Workload::TableChurn {
                seed: 4,
                ticks: 200,
                packets_per_tick: 16,
                entries: 40,
                churn_every: 0, // no churn events at all
                churn_size: 20,
            },
            &ScenarioConfig::new(TableKind::Sequential),
        );
        assert!(churned.table_updates > calm.table_updates);
        assert!(
            churned.dropped_no_route > calm.dropped_no_route,
            "withdrawing half the table must cost forwards: {} vs {}",
            churned.dropped_no_route,
            calm.dropped_no_route
        );
    }

    #[test]
    fn same_seed_same_metrics_across_kinds() {
        for kind in TableKind::PAPER_KINDS {
            let w =
                Workload::SteadyForward { seed: 9, ticks: 40, packets_per_tick: 8, entries: 20 };
            let a = run_scenario(&w, &ScenarioConfig::new(kind));
            let b = run_scenario(&w, &ScenarioConfig::new(kind));
            assert_eq!(a.to_json(), b.to_json(), "{kind}");
        }
    }

    #[test]
    fn different_seeds_differ() {
        let cfg = ScenarioConfig::new(TableKind::Sequential);
        let a = run_scenario(&Workload::steady_forward(), &cfg);
        let b = run_scenario(&Workload::steady_forward().with_seed(1), &cfg);
        assert_ne!(a.to_json(), b.to_json());
    }

    fn small_steady() -> Workload {
        Workload::SteadyForward { seed: 11, ticks: 120, packets_per_tick: 8, entries: 24 }
    }

    #[test]
    fn no_plan_and_none_are_byte_identical() {
        let cfg = ScenarioConfig::new(TableKind::Cam);
        let plain = run_scenario(&small_steady(), &cfg);
        let explicit = run_scenario_with_faults(&small_steady(), &cfg, None);
        assert_eq!(plain.to_json(), explicit.to_json());
        assert!(plain.faults.is_none());
    }

    #[test]
    fn storm_injects_detects_and_recovers() {
        let cfg = ScenarioConfig::new(TableKind::Cam);
        let m = run_scenario_with_faults(&small_steady(), &cfg, Some(&FaultPlan::storm()));
        let f = m.faults.as_ref().expect("plan attached");
        assert!(f.injected_malformed > 0, "{}", m.to_json());
        assert!(f.injected_hop_limit > 0, "{}", m.to_json());
        assert!(f.injected_corruptions > 0, "{}", m.to_json());
        assert!(f.injected_flaps > 0, "{}", m.to_json());
        // Graceful degradation: every malformed frame the core serviced was
        // detected and dropped, never panicked on, and expiring datagrams
        // were classified as hop-limit drops.
        assert!(f.detected_malformed > 0, "{}", m.to_json());
        assert!(f.detected_hop_limit > 0, "{}", m.to_json());
        assert!(f.detected_malformed <= f.injected_malformed);
        // Repairs complete within the run (the CAM services fast enough).
        assert!(f.recovered > 0, "{}", m.to_json());
        assert_eq!(f.recovered, f.recovery.count());
        // Down links refused traffic.
        assert!(f.dropped_link_down > 0, "{}", m.to_json());
        // The data plane still made progress.
        assert!(m.forwarded > 0, "{}", m.to_json());
    }

    #[test]
    fn faulted_replay_is_deterministic_and_seeded() {
        let cfg = ScenarioConfig::new(TableKind::Sequential);
        let plan = FaultPlan::storm();
        let a = run_scenario_with_faults(&small_steady(), &cfg, Some(&plan));
        let b = run_scenario_with_faults(&small_steady(), &cfg, Some(&plan));
        assert_eq!(a.to_json(), b.to_json(), "same plan, same bytes");
        let c = run_scenario_with_faults(&small_steady(), &cfg, Some(&plan.with_seed(99)));
        assert_ne!(a.to_json(), c.to_json(), "the plan seed drives the injection stream");
    }

    #[test]
    fn impossible_repairs_count_as_unrecovered() {
        // Repairs scheduled far beyond the scenario horizon can never be
        // serviced; they must be reported, not lost.
        let plan = FaultPlan { corrupt_every: 10, repair_ticks: 100_000, ..FaultPlan::none() };
        let cfg = ScenarioConfig::new(TableKind::Cam);
        let m = run_scenario_with_faults(&small_steady(), &cfg, Some(&plan));
        let f = m.faults.as_ref().expect("plan attached");
        assert!(f.injected_corruptions > 0);
        assert_eq!(f.recovered, 0, "{}", m.to_json());
        assert!(f.unrecovered > 0, "{}", m.to_json());
    }

    #[test]
    fn mixed_plane_exercises_both_planes() {
        let m = run_scenario(&Workload::mixed_plane(), &ScenarioConfig::new(TableKind::Cam));
        assert!(m.forwarded > 0, "{}", m.to_json());
        assert!(m.table_updates > 0, "withdraw/re-advertise storms: {}", m.to_json());
        // Withdrawn slices must cost forwards while they are out.
        assert!(m.dropped_no_route > 0, "{}", m.to_json());
        assert!(m.flows.is_none(), "only trace replays carry a flow section");
        // Determinism.
        let again = run_scenario(&Workload::mixed_plane(), &ScenarioConfig::new(TableKind::Cam));
        assert_eq!(m.to_json(), again.to_json());
    }

    #[test]
    fn trace_replay_regenerates_from_the_descriptor() {
        let w = Workload::TraceReplay { seed: 5, ticks: 120, flows: 32, entries: 40 };
        let cfg = ScenarioConfig::new(TableKind::Cam);
        let m = run_scenario(&w, &cfg);
        let f = m.flows.expect("trace replays carry a flow section");
        assert!(f.flows > 0 && f.flows <= 32, "{}", m.to_json());
        assert_eq!(f.packets, m.offered, "{}", m.to_json());
        assert!(f.small > 0, "{}", m.to_json());
        assert!(m.forwarded > 0, "{}", m.to_json());
        assert_eq!(m.to_json(), run_scenario(&w, &cfg).to_json());
    }

    #[test]
    fn explicit_trace_matches_the_descriptor_replay() {
        let w = Workload::TraceReplay { seed: 5, ticks: 120, flows: 32, entries: 40 };
        let cfg = ScenarioConfig::new(TableKind::BalancedTree);
        let from_descriptor = run_scenario(&w, &cfg);
        let trace = TraceGen::generate(5, 120, 32, 40);
        let explicit = run_trace_replay(&trace, &cfg, None);
        assert_eq!(from_descriptor.to_json(), explicit.to_json());
        // And it composes with faults deterministically.
        let a = run_trace_replay(&trace, &cfg, Some(&FaultPlan::malformed()));
        let b = run_trace_replay(&trace, &cfg, Some(&FaultPlan::malformed()));
        assert_eq!(a.to_json(), b.to_json());
        assert!(a.faults.is_some() && a.flows.is_some());
    }

    #[test]
    fn explicit_single_core_system_is_byte_identical_to_the_default() {
        let base = ScenarioConfig::new(TableKind::Cam);
        let explicit = base.system(SystemConfig::with_cores(1));
        let a = run_scenario(&small_steady(), &base);
        let b = run_scenario(&small_steady(), &explicit);
        assert_eq!(a.to_json(), b.to_json());
        assert!(a.coherence.is_none(), "single-core runs carry no coherence section");
    }

    fn churny() -> Workload {
        Workload::TableChurn {
            seed: 4,
            ticks: 200,
            packets_per_tick: 16,
            entries: 40,
            churn_every: 20,
            churn_size: 20,
        }
    }

    #[test]
    fn multicore_churn_generates_coherence_traffic() {
        let cfg = ScenarioConfig::new(TableKind::Cam).system(SystemConfig::with_cores(4));
        let m = run_scenario(&churny(), &cfg);
        let c = m.coherence.expect("multicore runs carry a coherence section");
        assert!(c.reads > 0 && c.writes > 0, "{}", m.to_json());
        assert!(c.invalidations > 0, "table writes must invalidate: {}", m.to_json());
        assert!(c.stall_cycles > 0, "{}", m.to_json());
        assert_eq!(c.hits + c.misses, c.reads + c.writes);
        // Byte determinism, including the coherence section.
        assert_eq!(m.to_json(), run_scenario(&churny(), &cfg).to_json());
    }

    #[test]
    fn mesh_and_bus_interconnects_measure_differently() {
        use taco_isa::Topology;
        let bus = ScenarioConfig::new(TableKind::Cam).system(SystemConfig::with_cores(4));
        let mesh = ScenarioConfig::new(TableKind::Cam)
            .system(SystemConfig::with_cores(4).topology(Topology::Mesh));
        let a = run_scenario(&churny(), &bus);
        let b = run_scenario(&churny(), &mesh);
        let (ca, cb) = (a.coherence.unwrap(), b.coherence.unwrap());
        assert_ne!(
            (ca.stall_cycles, ca.busy_cycles),
            (cb.stall_cycles, cb.busy_cycles),
            "topology must shape the stall profile"
        );
    }

    #[test]
    fn mesi_never_pays_more_upgrades_than_msi() {
        use taco_isa::CoherenceProtocol;
        let mesi = ScenarioConfig::new(TableKind::Cam)
            .system(SystemConfig::with_cores(2).protocol(CoherenceProtocol::Mesi));
        let msi = ScenarioConfig::new(TableKind::Cam)
            .system(SystemConfig::with_cores(2).protocol(CoherenceProtocol::Msi));
        let a = run_scenario(&churny(), &mesi).coherence.unwrap();
        let b = run_scenario(&churny(), &msi).coherence.unwrap();
        assert!(
            a.upgrade_stalls <= b.upgrade_stalls,
            "{} vs {}",
            a.upgrade_stalls,
            b.upgrade_stalls
        );
    }

    #[test]
    fn mixed_plane_is_a_coherence_scenario() {
        let cfg = ScenarioConfig::new(TableKind::Cam).system(SystemConfig::with_cores(2));
        let m = run_scenario(&Workload::mixed_plane(), &cfg);
        let c = m.coherence.expect("coherence section");
        assert!(c.invalidations > 0, "withdraw/re-advertise storms invalidate: {}", m.to_json());
        assert!(m.forwarded > 0);
    }

    #[test]
    fn malformed_only_plan_leaves_the_control_plane_alone() {
        let cfg = ScenarioConfig::new(TableKind::BalancedTree);
        let m = run_scenario_with_faults(&small_steady(), &cfg, Some(&FaultPlan::malformed()));
        let f = m.faults.as_ref().expect("plan attached");
        assert!(f.injected_malformed > 0);
        assert_eq!(f.injected_flaps, 0);
        assert_eq!(f.injected_corruptions, 0);
        assert_eq!(f.unrecovered, 0, "nothing to repair: {}", m.to_json());
        assert_eq!(f.dropped_link_down, 0);
    }
}
