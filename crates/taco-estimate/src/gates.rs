//! Gate-count budgets for the TACO modules.
//!
//! The paper's physical model (Nurmi et al., NORCHIP 2000) characterised
//! each TACO module from layout data; that data is not public, so these are
//! order-of-magnitude NAND2-equivalent budgets for simple 32-bit datapath
//! units, chosen to keep the *relative* costs sensible (a barrel shifter
//! outweighs a comparator; sockets are cheap but numerous).  Everything
//! downstream treats them as calibration constants.

use taco_isa::{FuKind, MachineConfig};

/// NAND2-equivalent gate count of one instance of `kind` (excluding its
/// sockets, which are charged per port by [`interconnect_gates`]).
pub fn fu_gates(kind: FuKind) -> u32 {
    match kind {
        FuKind::Matcher => 1_200,    // two 32-bit operand regs + masked XOR tree
        FuKind::Comparator => 1_000, // operand reg + magnitude comparator
        FuKind::Counter => 1_500,    // 32-bit adder + count/stop regs
        FuKind::Checksum => 1_800,   // 16-bit one's complement adder tree + folding
        FuKind::Shifter => 2_500,    // 32-bit barrel shifter
        FuKind::Masker => 1_200,     // mask/value regs + mux tree
        FuKind::Mmu => 3_000,        // address path + memory controller FSM
        FuKind::Rtu => 2_000,        // key registers + external-chip interface
        FuKind::Liu => 500,          // small ROM + latch
        FuKind::Ippu => 2_500,       // scan FSM + pointer queue head
        FuKind::Oppu => 2_500,       // drain FSM + pointer queue head
        FuKind::Regs => 3_100,       // 16 × 32 flops + read/write muxing
        FuKind::Nc => 0,             // charged by interconnect_gates()
    }
}

/// Gates of the interconnection network: the network controller core, the
/// per-bus drivers/arbitration, and one socket per FU port instance.
pub fn interconnect_gates(config: &MachineConfig) -> u32 {
    const NC_BASE: u32 = 2_500;
    const PER_BUS: u32 = 1_500;
    const PER_SOCKET: u32 = 80;
    NC_BASE + PER_BUS * u32::from(config.buses()) + PER_SOCKET * config.total_sockets()
}

/// Total logic gates of a configuration (FUs + interconnect, no SRAM).
pub fn total_gates(config: &MachineConfig) -> u32 {
    let fus: u32 = config.fu_counts().map(|(kind, count)| fu_gates(kind) * u32::from(count)).sum();
    fus + interconnect_gates(config)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_datapath_unit_has_a_budget() {
        for kind in FuKind::ALL {
            if kind == FuKind::Nc {
                assert_eq!(fu_gates(kind), 0);
            } else {
                assert!(fu_gates(kind) > 0, "{kind}");
            }
        }
    }

    #[test]
    fn more_fus_cost_more_gates() {
        let small = total_gates(&MachineConfig::one_bus_one_fu());
        let wide = total_gates(&MachineConfig::three_bus_three_fu());
        assert!(wide > small);
        // The delta is exactly 2 extra each of CNT/CMP/M plus their sockets
        // and two extra buses.
        let expected_delta = 2
            * (fu_gates(FuKind::Counter)
                + fu_gates(FuKind::Comparator)
                + fu_gates(FuKind::Matcher))
            + 2 * 1_500
            + 80 * 2
                * (FuKind::Counter.ports().len()
                    + FuKind::Comparator.ports().len()
                    + FuKind::Matcher.ports().len()) as u32;
        assert_eq!(wide - small, expected_delta);
    }

    #[test]
    fn more_buses_cost_more_interconnect() {
        let one = interconnect_gates(&MachineConfig::new(1));
        let three = interconnect_gates(&MachineConfig::new(3));
        assert_eq!(three - one, 2 * 1_500);
    }

    #[test]
    fn totals_are_tens_of_thousands() {
        // Sanity: a TACO processor is a small core, not a CPU.
        let g = total_gates(&MachineConfig::one_bus_one_fu());
        assert!((20_000..60_000).contains(&g), "got {g}");
    }
}
