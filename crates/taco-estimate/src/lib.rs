#![warn(missing_docs)]

//! System-level physical estimation for TACO processors.
//!
//! The paper pairs its SystemC simulations with "a model for estimating
//! physical parameters (e.g. processor area and power consumption) at the
//! system level written in Matlab" (Nurmi et al.).  This crate is that
//! model's Rust equivalent: given an architecture instance
//! ([`MachineConfig`](taco_isa::MachineConfig)) and a target clock
//! frequency, it reports estimated silicon area, average power and — above
//! the technology's ceiling — infeasibility (the "NA" cells of Table 1).
//!
//! The model is first-order by design: per-module gate budgets
//! ([`gates`]), a standard-cell [`Technology`] profile (default: the
//! paper's 0.18 µm node with its ~1 GHz ceiling), a gate-sizing factor that
//! diverges as the clock approaches the ceiling, and the textbook dynamic
//! power relation `P = α·C·V²·f`.  All constants are calibration
//! parameters, documented where they are defined.
//!
//! # Examples
//!
//! ```
//! use taco_estimate::{Estimator, ExternalCam};
//! use taco_isa::MachineConfig;
//!
//! let est = Estimator::new().with_cam(ExternalCam::micron_harmony());
//! let e = est.estimate(&MachineConfig::three_bus_one_fu(), 40e6);
//! let e = e.feasible().expect("40 MHz is easy on 0.18um");
//! // The CAM chip, not the processor, dominates total power at 40 MHz.
//! assert!(e.total_power_w() > 10.0 * e.power_w);
//! ```

pub mod gates;
pub mod model;
pub mod tech;

pub use gates::{fu_gates, interconnect_gates, total_gates};
pub use model::{Estimate, Estimator, ExternalCam, PhysicalEstimate};
pub use tech::Technology;
