//! The estimation model: configuration + target frequency → area, power,
//! feasibility.

use std::fmt;

use taco_isa::MachineConfig;

use crate::gates::total_gates;
use crate::tech::Technology;

/// An external CAM + SRAM chip pair accompanying the processor (the paper's
/// third routing-table case).
///
/// The paper's Table 1 explicitly *excludes* the CAM chip from the
/// processor's area/power cells but discusses it in the text ("the Micron
/// Harmony 1 Mb CAM consumes the average power of 1.5 to 2 Watts"), so the
/// estimate carries it separately.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExternalCam {
    /// Average chip power, watts.
    pub avg_power_w: f64,
    /// Package footprint, mm² (board area, not die area).
    pub footprint_mm2: f64,
}

impl ExternalCam {
    /// The Micron Harmony-class part used in the paper.
    pub fn micron_harmony() -> Self {
        ExternalCam { avg_power_w: 1.75, footprint_mm2: 484.0 }
    }
}

/// A feasible physical estimate.
#[derive(Debug, Clone, PartialEq)]
pub struct PhysicalEstimate {
    /// The clock this estimate was made for, Hz.
    pub freq_hz: f64,
    /// Logic gates after sizing (NAND2 equivalents).
    pub sized_gates: f64,
    /// The sizing inflation applied (1.0 = minimum drive).
    pub sizing_factor: f64,
    /// Processor die area, mm² (logic + on-chip SRAM).
    pub area_mm2: f64,
    /// Average processor power, watts.
    pub power_w: f64,
    /// External CAM accompanying the processor, if any.
    pub cam: Option<ExternalCam>,
}

impl PhysicalEstimate {
    /// Processor power plus the external CAM's, the quantity behind the
    /// paper's remark that "the total power consumed when using a CAM …
    /// is approximately the same as when using only a TACO processor".
    pub fn total_power_w(&self) -> f64 {
        self.power_w + self.cam.map_or(0.0, |c| c.avg_power_w)
    }
}

impl fmt::Display for PhysicalEstimate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.0} MHz: {:.2} mm2, {:.3} W",
            self.freq_hz / 1e6,
            self.area_mm2,
            self.power_w
        )?;
        if let Some(cam) = self.cam {
            write!(f, " (+ CAM {:.2} W)", cam.avg_power_w)?;
        }
        Ok(())
    }
}

/// Result of asking for an estimate at a target frequency.
#[derive(Debug, Clone, PartialEq)]
pub enum Estimate {
    /// The frequency is achievable; here are the numbers.
    Feasible(PhysicalEstimate),
    /// The frequency exceeds the technology — Table 1's "NA".
    Infeasible {
        /// The requested clock, Hz.
        required_hz: f64,
        /// The node's ceiling, Hz.
        achievable_hz: f64,
    },
}

impl Estimate {
    /// The estimate if feasible.
    pub fn feasible(&self) -> Option<&PhysicalEstimate> {
        match self {
            Estimate::Feasible(e) => Some(e),
            Estimate::Infeasible { .. } => None,
        }
    }

    /// Returns `true` for [`Estimate::Feasible`].
    pub fn is_feasible(&self) -> bool {
        matches!(self, Estimate::Feasible(_))
    }
}

impl fmt::Display for Estimate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Estimate::Feasible(e) => e.fmt(f),
            Estimate::Infeasible { required_hz, achievable_hz } => write!(
                f,
                "NA ({:.0} MHz exceeds the {:.0} MHz ceiling)",
                required_hz / 1e6,
                achievable_hz / 1e6
            ),
        }
    }
}

/// The system-level physical estimator (the paper's Matlab model).
///
/// # Examples
///
/// ```
/// use taco_estimate::Estimator;
/// use taco_isa::MachineConfig;
///
/// let est = Estimator::new();
/// let config = MachineConfig::three_bus_three_fu();
/// // 250 MHz (the balanced-tree row): comfortably feasible.
/// let e = est.estimate(&config, 250e6);
/// assert!(e.is_feasible());
/// // 2 GHz (the sequential 3-bus row): NA on 0.18 µm.
/// assert!(!est.estimate(&config, 2e9).is_feasible());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Estimator {
    tech: Technology,
    /// On-chip buffer SRAM, KiB (the datagram memory of the paper's
    /// router).
    sram_kib: u32,
    /// Program-store image size in bits (0 = not modelled).
    program_bits: u64,
    cam: Option<ExternalCam>,
}

impl Estimator {
    /// An estimator for the paper's 0.18 µm node with a 32 KiB datagram
    /// buffer and no external CAM.
    pub fn new() -> Self {
        Estimator { tech: Technology::cmos_180nm(), sram_kib: 32, program_bits: 0, cam: None }
    }

    /// Replaces the technology profile.
    pub fn with_technology(mut self, tech: Technology) -> Self {
        self.tech = tech;
        self
    }

    /// Sets the on-chip SRAM budget in KiB.
    pub fn with_sram_kib(mut self, kib: u32) -> Self {
        self.sram_kib = kib;
        self
    }

    /// Sets the program-store image size in bits (from
    /// `taco_isa::encode`), adding its area to the estimate.
    pub fn with_program_bits(mut self, bits: u64) -> Self {
        self.program_bits = bits;
        self
    }

    /// Attaches an external CAM chip to the estimate.
    pub fn with_cam(mut self, cam: ExternalCam) -> Self {
        self.cam = Some(cam);
        self
    }

    /// The technology in use.
    pub fn technology(&self) -> &Technology {
        &self.tech
    }

    /// The highest clock this estimator will call feasible.
    pub fn max_frequency_hz(&self) -> f64 {
        self.tech.max_freq_hz
    }

    /// Estimates area and power for `config` clocked at `freq_hz`.
    ///
    /// Frequencies at or above the technology ceiling return
    /// [`Estimate::Infeasible`] — the paper's "NA (not available) indicates
    /// an architecture that was not estimated due to its high clock
    /// frequency requirement".
    pub fn estimate(&self, config: &MachineConfig, freq_hz: f64) -> Estimate {
        let Some(sizing) = self.tech.sizing_factor(freq_hz) else {
            return Estimate::Infeasible {
                required_hz: freq_hz,
                achievable_hz: self.tech.max_freq_hz,
            };
        };
        let gates = f64::from(total_gates(config));
        let sized_gates = gates * sizing;

        let logic_area = sized_gates * self.tech.gate_area_mm2;
        let sram_area = f64::from(self.sram_kib) * self.tech.sram_mm2_per_kib;
        let rom_area = self.program_bits as f64 / (8.0 * 1024.0) * self.tech.rom_mm2_per_kib;
        let area_mm2 = logic_area + sram_area + rom_area;

        let vdd2 = self.tech.vdd * self.tech.vdd;
        let logic_cap = sized_gates * self.tech.cap_per_gate_f * self.tech.activity;
        let sram_cap = f64::from(self.sram_kib) * self.tech.sram_cap_per_kib_f;
        let power_w = (logic_cap + sram_cap) * vdd2 * freq_hz;

        Estimate::Feasible(PhysicalEstimate {
            freq_hz,
            sized_gates,
            sizing_factor: sizing,
            area_mm2,
            power_w,
            cam: self.cam,
        })
    }
}

impl Default for Estimator {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> MachineConfig {
        MachineConfig::three_bus_three_fu()
    }

    #[test]
    fn na_pattern_matches_table1() {
        let est = Estimator::new();
        // The paper's NA cells.
        for f in [6.0e9, 2.0e9, 1.2e9] {
            assert!(!est.estimate(&config(), f).is_feasible(), "{f}");
        }
        // The estimated cells.
        for f in [1.0e9, 600e6, 250e6, 118e6, 40e6, 35e6] {
            assert!(est.estimate(&config(), f).is_feasible(), "{f}");
        }
    }

    #[test]
    fn power_grows_superlinearly_near_ceiling() {
        let est = Estimator::new();
        let p250 = est.estimate(&config(), 250e6).feasible().unwrap().power_w;
        let p1000 = est.estimate(&config(), 1000e6).feasible().unwrap().power_w;
        // 4× the clock must cost much more than 4× the power (gate sizing).
        assert!(p1000 > 8.0 * p250, "p250={p250} p1000={p1000}");
    }

    #[test]
    fn one_ghz_power_is_not_acceptable() {
        // The paper: at ~1 GHz "the average power consumed by the
        // architecture is not acceptable".  Our calibration should land in
        // whole watts there and tens of milliwatts for the CAM rows.
        let est = Estimator::new();
        let hot = est.estimate(&config(), 1.0e9).feasible().unwrap().power_w;
        let cool = est.estimate(&config(), 35e6).feasible().unwrap().power_w;
        assert!(hot > 1.0, "1 GHz should be in watts: {hot}");
        assert!(cool < 0.1, "35 MHz should be tens of mW: {cool}");
    }

    #[test]
    fn area_grows_with_fu_count_and_frequency() {
        let est = Estimator::new();
        let small =
            est.estimate(&MachineConfig::one_bus_one_fu(), 500e6).feasible().unwrap().area_mm2;
        let wide = est.estimate(&config(), 500e6).feasible().unwrap().area_mm2;
        assert!(wide > small);
        let fast = est.estimate(&config(), 1.0e9).feasible().unwrap().area_mm2;
        assert!(fast > wide);
    }

    #[test]
    fn cam_accounted_separately() {
        let est = Estimator::new().with_cam(ExternalCam::micron_harmony());
        let e = est.estimate(&config(), 35e6).feasible().unwrap().clone();
        assert_eq!(e.cam.unwrap(), ExternalCam::micron_harmony());
        // The CAM dominates total power at CAM-row clock speeds, which is
        // the paper's point about total power parity.
        assert!(e.total_power_w() > 1.5);
        assert!(e.power_w < 0.2);
    }

    #[test]
    fn estimate_display_forms() {
        let est = Estimator::new();
        assert!(est.estimate(&config(), 250e6).to_string().contains("mm2"));
        assert!(est.estimate(&config(), 6e9).to_string().contains("NA"));
    }

    #[test]
    fn program_store_adds_area() {
        let without = Estimator::new().estimate(&config(), 100e6);
        let with = Estimator::new().with_program_bits(64 * 1024 * 8).estimate(&config(), 100e6);
        let delta = with.feasible().unwrap().area_mm2 - without.feasible().unwrap().area_mm2;
        assert!((delta - 64.0 * 0.03).abs() < 1e-9, "{delta}");
    }

    #[test]
    fn sram_budget_affects_area() {
        let small = Estimator::new().with_sram_kib(8).estimate(&config(), 100e6);
        let big = Estimator::new().with_sram_kib(128).estimate(&config(), 100e6);
        assert!(big.feasible().unwrap().area_mm2 > small.feasible().unwrap().area_mm2);
    }

    // The proptest-based property suite for this model lives in the
    // workspace-excluded `crates/proptests` package
    // (`tests/estimate_properties.rs`): proptest is a registry dependency
    // and the workspace must build offline.

    #[test]
    fn newer_technology_unlocks_higher_clocks() {
        let old = Estimator::new();
        let new = Estimator::new().with_technology(Technology::cmos_130nm());
        assert!(!old.estimate(&config(), 1.2e9).is_feasible());
        assert!(new.estimate(&config(), 1.2e9).is_feasible());
    }
}
