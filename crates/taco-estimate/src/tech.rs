//! Technology profiles: the standard-cell parameters estimates scale with.
//!
//! The paper's estimates target "the 0.18 µm standard cell library that we
//! currently use", for which "the upper limit for TACO clock frequencies
//! ... is near 1 GHz".  [`Technology::cmos_180nm`] encodes that profile;
//! other nodes can be described for what-if exploration.

/// Parameters of one standard-cell technology.
///
/// All values are first-order calibration constants, not foundry data: the
/// goal is to reproduce the *behaviour* of the paper's estimation flow
/// (which frequencies are achievable, how power and area blow up near the
/// ceiling), not sign-off numbers.
#[derive(Debug, Clone, PartialEq)]
pub struct Technology {
    /// Human-readable node name (e.g. `"0.18um"`).
    pub name: &'static str,
    /// Highest achievable clock for a TACO-class datapath, Hz.
    pub max_freq_hz: f64,
    /// Area of one NAND2-equivalent gate at minimum drive, mm².
    pub gate_area_mm2: f64,
    /// Switched capacitance per gate, farads.
    pub cap_per_gate_f: f64,
    /// Supply voltage, volts.
    pub vdd: f64,
    /// Average switching activity factor (fraction of gates toggling per
    /// cycle).
    pub activity: f64,
    /// On-chip SRAM density, mm² per KiB.
    pub sram_mm2_per_kib: f64,
    /// Extra switched capacitance per KiB of SRAM, farads (models the
    /// bit-line energy of one access per cycle, amortised).
    pub sram_cap_per_kib_f: f64,
    /// Program-store density, mm² per KiB (instruction fetch is read-only
    /// and single-ported, so it packs denser than the data SRAM).
    pub rom_mm2_per_kib: f64,
}

impl Technology {
    /// The paper's 0.18 µm standard-cell profile: ceiling a little above
    /// 1 GHz (so the paper's "vicinity of 1 GHz" configuration is possible
    /// while 1.2 GHz and up report *not available*), 1.8 V supply.
    pub fn cmos_180nm() -> Self {
        Technology {
            name: "0.18um",
            max_freq_hz: 1.05e9,
            gate_area_mm2: 12.0e-6,
            cap_per_gate_f: 5.0e-15,
            vdd: 1.8,
            activity: 0.15,
            sram_mm2_per_kib: 0.05,
            sram_cap_per_kib_f: 60.0e-15,
            rom_mm2_per_kib: 0.03,
        }
    }

    /// A hypothetical 0.13 µm shrink, for exploration beyond the paper:
    /// ~1.6× the clock ceiling at ~55% of the area and 1.2 V supply.
    pub fn cmos_130nm() -> Self {
        Technology {
            name: "0.13um",
            max_freq_hz: 1.7e9,
            gate_area_mm2: 6.5e-6,
            cap_per_gate_f: 3.0e-15,
            vdd: 1.2,
            activity: 0.15,
            sram_mm2_per_kib: 0.028,
            sram_cap_per_kib_f: 40.0e-15,
            rom_mm2_per_kib: 0.017,
        }
    }

    /// The gate-sizing inflation factor needed to close timing at `freq_hz`.
    ///
    /// Approaching the node's ceiling requires progressively larger drive
    /// strengths; we model the blow-up as `1 / (1 - (f/f_max)²)`, which is 1
    /// at DC and diverges at the ceiling — reproducing the paper's
    /// observation that "larger gate sizes had to be used in order to reach
    /// the 1 GHz clock speed", with unacceptable power as the consequence.
    ///
    /// Returns `None` when `freq_hz` is at or above the ceiling (Table 1's
    /// "NA" entries).
    pub fn sizing_factor(&self, freq_hz: f64) -> Option<f64> {
        if !(0.0..self.max_freq_hz).contains(&freq_hz) {
            return None;
        }
        let x = freq_hz / self.max_freq_hz;
        Some(1.0 / (1.0 - x * x))
    }
}

impl Default for Technology {
    fn default() -> Self {
        Self::cmos_180nm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_node_ceiling() {
        let t = Technology::cmos_180nm();
        assert!(t.sizing_factor(1.0e9).is_some()); // "vicinity of 1 GHz": possible
        assert!(t.sizing_factor(1.2e9).is_none()); // balanced tree 1-bus: NA
        assert!(t.sizing_factor(2.0e9).is_none()); // sequential 3-bus: NA
        assert!(t.sizing_factor(6.0e9).is_none()); // sequential 1-bus: NA
    }

    #[test]
    fn sizing_grows_monotonically() {
        let t = Technology::cmos_180nm();
        let s100 = t.sizing_factor(100e6).unwrap();
        let s500 = t.sizing_factor(500e6).unwrap();
        let s1000 = t.sizing_factor(1000e6).unwrap();
        assert!(s100 < s500 && s500 < s1000);
        assert!(s100 < 1.02, "low frequencies cost almost nothing: {s100}");
        assert!(s1000 > 5.0, "near-ceiling sizing must hurt: {s1000}");
    }

    #[test]
    fn sizing_at_dc_is_one() {
        let t = Technology::default();
        assert!((t.sizing_factor(0.0).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn negative_and_ceiling_rejected() {
        let t = Technology::default();
        assert!(t.sizing_factor(-1.0).is_none());
        assert!(t.sizing_factor(t.max_freq_hz).is_none());
    }

    #[test]
    fn newer_node_is_faster_and_denser() {
        let old = Technology::cmos_180nm();
        let new = Technology::cmos_130nm();
        assert!(new.max_freq_hz > old.max_freq_hz);
        assert!(new.gate_area_mm2 < old.gate_area_mm2);
    }
}
