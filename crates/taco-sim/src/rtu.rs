//! The Routing Table Unit's pluggable lookup backend.
//!
//! The paper makes the routing table "a dedicated functional unit" whose
//! implementation (sequential cache, balanced tree, CAM + SRAM) is the
//! design variable of the whole study.  The simulator therefore treats the
//! RTU as a shell: key operands, one trigger, and a [`RtuBackend`] that
//! answers lookups plus a latency in cycles.  The CAM case uses a backend
//! over `taco-routing`'s [`CamTable`] (adapter in the `taco-router` crate)
//! with the 40 ns search time converted to cycles at the target clock; the
//! sequential and tree cases do their lookups *in microcode* instead and
//! leave the RTU idle.
//!
//! [`CamTable`]: https://docs.rs/taco-routing

use std::collections::BTreeMap;
use std::fmt;

/// A successful RTU lookup: the output interface and an opaque handle
/// (e.g. the index of the matched route, for the slow path to inspect).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RtuResult {
    /// Output interface identifier.
    pub iface: u32,
    /// Backend-defined handle for the matched entry.
    pub handle: u32,
}

/// A longest-prefix-match answering machine behind the RTU.
pub trait RtuBackend: fmt::Debug {
    /// Looks up a 128-bit key given as four big-endian 32-bit words.
    fn lookup(&self, key: [u32; 4]) -> Option<RtuResult>;
}

/// A backend that always misses — the power-on default.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullRtu;

impl RtuBackend for NullRtu {
    fn lookup(&self, _key: [u32; 4]) -> Option<RtuResult> {
        None
    }
}

/// An exact-match map backend for unit tests.
#[derive(Debug, Clone, Default)]
pub struct MapRtu {
    entries: BTreeMap<[u32; 4], RtuResult>,
}

impl MapRtu {
    /// Creates an empty map backend.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an exact-match entry.
    pub fn insert(&mut self, key: [u32; 4], result: RtuResult) {
        self.entries.insert(key, result);
    }
}

impl RtuBackend for MapRtu {
    fn lookup(&self, key: [u32; 4]) -> Option<RtuResult> {
        self.entries.get(&key).copied()
    }
}

/// The RTU's configuration: a backend plus its search latency in processor
/// cycles.
#[derive(Debug)]
pub struct RtuConfig {
    /// Search latency in cycles (≥ 1).  For the paper's CAM this is
    /// `ceil(40 ns × f_clk)`; reads of RTU results before the latency has
    /// elapsed stall the processor.
    pub latency: u32,
    /// The lookup engine.
    pub backend: Box<dyn RtuBackend>,
}

impl RtuConfig {
    /// A single-cycle RTU over `backend`.
    pub fn new(backend: Box<dyn RtuBackend>) -> Self {
        RtuConfig { latency: 1, backend }
    }

    /// Returns a copy of `self` with the given latency.
    ///
    /// # Panics
    ///
    /// Panics if `latency` is zero.
    pub fn with_latency(mut self, latency: u32) -> Self {
        assert!(latency >= 1, "rtu latency must be at least one cycle");
        self.latency = latency;
        self
    }
}

impl Default for RtuConfig {
    fn default() -> Self {
        Self::new(Box::new(NullRtu))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_backend_always_misses() {
        assert_eq!(NullRtu.lookup([1, 2, 3, 4]), None);
    }

    #[test]
    fn map_backend_exact_match() {
        let mut m = MapRtu::new();
        m.insert([1, 2, 3, 4], RtuResult { iface: 7, handle: 42 });
        assert_eq!(m.lookup([1, 2, 3, 4]), Some(RtuResult { iface: 7, handle: 42 }));
        assert_eq!(m.lookup([1, 2, 3, 5]), None);
    }

    #[test]
    fn config_latency() {
        let c = RtuConfig::default().with_latency(40);
        assert_eq!(c.latency, 40);
        assert_eq!(RtuConfig::default().latency, 1);
    }

    #[test]
    #[should_panic(expected = "at least one cycle")]
    fn zero_latency_rejected() {
        let _ = RtuConfig::default().with_latency(0);
    }
}
