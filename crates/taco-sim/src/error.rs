//! Simulation error types.

use std::error::Error;
use std::fmt;

use taco_isa::{FuRef, PortRef};

/// Error raised while constructing or running a simulation.
///
/// Construction errors ([`SimError::InvalidFuIndex`],
/// [`SimError::TooManySlots`], [`SimError::UnresolvedLabel`]) mean the
/// program does not fit the configured architecture; runtime errors mean the
/// program misbehaved.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// The program references an FU instance the configuration lacks.
    InvalidFuIndex {
        /// The offending reference.
        fu: FuRef,
        /// How many instances the configuration provides.
        available: u8,
    },
    /// An instruction carries more slots than the machine has buses.
    TooManySlots {
        /// Index of the offending instruction.
        instruction: usize,
        /// Slots in the instruction.
        slots: usize,
        /// Buses in the configuration.
        buses: u8,
    },
    /// A move still carries a label source; call
    /// [`Program::resolve_labels`](taco_isa::Program::resolve_labels) first.
    UnresolvedLabel(String),
    /// A move references a port its FU does not expose, or uses it against
    /// its direction (reading a trigger, writing a result) — malformed
    /// microcode that bypassed the assembler's checks.
    InvalidPort {
        /// The offending reference.
        port: PortRef,
        /// What was wrong with it.
        why: &'static str,
    },
    /// A guarded move names a guard signal its FU does not drive.
    InvalidGuard {
        /// The FU the guard samples.
        fu: FuRef,
        /// The unknown signal name.
        signal: &'static str,
    },
    /// A memory access fell outside data memory.
    MemoryOutOfBounds {
        /// Word address of the access.
        addr: u32,
        /// Memory size in words.
        size: u32,
    },
    /// Two moves wrote the same port in the same cycle.
    PortConflict {
        /// The doubly written port.
        port: PortRef,
        /// Cycle at which it happened.
        cycle: u64,
    },
    /// Two moves wrote the program counter in the same cycle.
    DoublePcWrite {
        /// Cycle at which it happened.
        cycle: u64,
    },
    /// A jump targeted an instruction index past the end of the program
    /// (other than exactly `len`, which halts).
    JumpOutOfRange {
        /// The target.
        target: u32,
        /// Program length.
        len: usize,
    },
    /// The cycle budget was exhausted before the program halted.
    Watchdog {
        /// The exhausted budget.
        budget: u64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidFuIndex { fu, available } => {
                write!(f, "program references {fu} but only {available} instance(s) exist")
            }
            SimError::TooManySlots { instruction, slots, buses } => write!(
                f,
                "instruction {instruction} carries {slots} moves but the machine has {buses} bus(es)"
            ),
            SimError::UnresolvedLabel(l) => write!(f, "unresolved label {l:?}"),
            SimError::InvalidPort { port, why } => {
                write!(f, "invalid port reference {}.{}: {why}", port.fu, port.port)
            }
            SimError::InvalidGuard { fu, signal } => {
                write!(f, "{fu} drives no guard signal {signal:?}")
            }
            SimError::MemoryOutOfBounds { addr, size } => {
                write!(f, "memory access at word {addr:#x} outside {size:#x}-word memory")
            }
            SimError::PortConflict { port, cycle } => {
                write!(f, "two moves wrote {port} in cycle {cycle}")
            }
            SimError::DoublePcWrite { cycle } => {
                write!(f, "two moves wrote the program counter in cycle {cycle}")
            }
            SimError::JumpOutOfRange { target, len } => {
                write!(f, "jump to {target} outside program of {len} instructions")
            }
            SimError::Watchdog { budget } => {
                write!(f, "program did not halt within {budget} cycles")
            }
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;
    use taco_isa::FuKind;

    #[test]
    fn display_variants() {
        let e = SimError::InvalidFuIndex { fu: FuRef::new(FuKind::Matcher, 2), available: 1 };
        assert!(e.to_string().contains("mtch2"));
        let e = SimError::Watchdog { budget: 100 };
        assert!(e.to_string().contains("100"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SimError>();
    }
}
