//! Behavioural models of the pure-datapath functional units.
//!
//! These are the units whose behaviour is a function of their own registers
//! only: Matcher, Comparator, Counter, Checksum, Shifter, Masker and the
//! Local Information Unit.  Units with external state (MMU → data memory,
//! RTU → routing table, iPPU/oPPU → line-card queues, the register file and
//! the network controller) are modelled directly in
//! [`processor`](crate::processor).
//!
//! All units follow the TACO contract: operands are plain registers, a write
//! to a trigger register performs the whole operation in one cycle, and the
//! result register plus any guard bits are readable from the next cycle on
//! (the simulator's read-then-write cycle structure enforces the timing).

/// State of one datapath FU instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DatapathFu {
    /// Bitstring match under a mask: `match` ⇔ `(t & mask) == (refv & mask)`.
    Matcher {
        /// Mask operand.
        mask: u32,
        /// Reference operand.
        refv: u32,
        /// Pass-through of the last triggered datum.
        r: u32,
        /// Guard bit latched at trigger.
        matched: bool,
    },
    /// Magnitude comparison of the triggered datum against `refv`.
    Comparator {
        /// Reference operand.
        refv: u32,
        /// Pass-through of the last triggered datum.
        r: u32,
        /// `t == refv`, latched at trigger.
        eq: bool,
        /// `t < refv` (unsigned), latched at trigger.
        lt: bool,
        /// `t > refv` (unsigned), latched at trigger.
        gt: bool,
    },
    /// Set / increment / decrement / add / subtract, with a `stop`
    /// comparand; `done` and `zero` track the current count combinationally
    /// (the paper's "counting … from a start value to a stop value").
    Counter {
        /// Stop comparand for the `done` guard.
        stop: u32,
        /// The count register.
        r: u32,
    },
    /// One's-complement Internet-checksum accumulator (RFC 1071), fed 32-bit
    /// words; `r` reads back the folded, complemented 16-bit checksum.
    Checksum {
        /// Unfolded running sum.
        sum: u32,
    },
    /// Logical shifter; `tshl` also serves as multiply-by-2ⁿ and `tshr` as
    /// divide-by-2ⁿ, as the paper notes.
    Shifter {
        /// Shift distance operand (mod 32).
        amount: u32,
        /// Result register.
        r: u32,
    },
    /// Bitfield insert: `r = (t & !mask) | (value & mask)`.
    Masker {
        /// Which bits to replace.
        mask: u32,
        /// Replacement bits.
        value: u32,
        /// Result register.
        r: u32,
    },
    /// Local Information Unit: a small ROM of router-local words (own
    /// addresses, port count, …) indexed by the trigger datum.
    Liu {
        /// The configured words.
        table: Vec<u32>,
        /// Result register.
        r: u32,
    },
}

impl DatapathFu {
    /// Fresh power-on state for a unit of the given kind-specific variant.
    pub fn new_matcher() -> Self {
        DatapathFu::Matcher { mask: 0, refv: 0, r: 0, matched: false }
    }

    /// Fresh comparator state.
    pub fn new_comparator() -> Self {
        DatapathFu::Comparator { refv: 0, r: 0, eq: false, lt: false, gt: false }
    }

    /// Fresh counter state.
    pub fn new_counter() -> Self {
        DatapathFu::Counter { stop: 0, r: 0 }
    }

    /// Fresh checksum state.
    pub fn new_checksum() -> Self {
        DatapathFu::Checksum { sum: 0 }
    }

    /// Fresh shifter state.
    pub fn new_shifter() -> Self {
        DatapathFu::Shifter { amount: 0, r: 0 }
    }

    /// Fresh masker state.
    pub fn new_masker() -> Self {
        DatapathFu::Masker { mask: 0, value: 0, r: 0 }
    }

    /// Fresh LIU state with the given contents.
    pub fn new_liu(table: Vec<u32>) -> Self {
        DatapathFu::Liu { table, r: 0 }
    }

    /// Writes an operand register.
    ///
    /// # Panics
    ///
    /// Panics on a port name the unit does not have — the processor
    /// validates programs before running, so this indicates an internal bug.
    pub fn write_operand(&mut self, port: &str, v: u32) {
        match (self, port) {
            (DatapathFu::Matcher { mask, .. }, "mask") => *mask = v,
            (DatapathFu::Matcher { refv, .. }, "refv") => *refv = v,
            (DatapathFu::Comparator { refv, .. }, "refv") => *refv = v,
            (DatapathFu::Counter { stop, .. }, "stop") => *stop = v,
            (DatapathFu::Shifter { amount, .. }, "amount") => *amount = v,
            (DatapathFu::Masker { mask, .. }, "mask") => *mask = v,
            (DatapathFu::Masker { value, .. }, "value") => *value = v,
            (fu, port) => panic!("no operand port {port:?} on {fu:?}"),
        }
    }

    /// Fires a trigger port with datum `v`, performing the operation.
    ///
    /// # Panics
    ///
    /// Panics on a port name the unit does not have (see
    /// [`DatapathFu::write_operand`]).
    pub fn trigger(&mut self, port: &str, v: u32) {
        match (self, port) {
            (DatapathFu::Matcher { mask, refv, r, matched }, "t") => {
                *r = v;
                *matched = (v & *mask) == (*refv & *mask);
            }
            (DatapathFu::Comparator { refv, r, eq, lt, gt }, "t") => {
                *r = v;
                *eq = v == *refv;
                *lt = v < *refv;
                *gt = v > *refv;
            }
            (DatapathFu::Counter { r, .. }, trig) => match trig {
                "tset" => *r = v,
                "tinc" => *r = r.wrapping_add(1),
                "tdec" => *r = r.wrapping_sub(1),
                "tadd" => *r = r.wrapping_add(v),
                "tsub" => *r = r.wrapping_sub(v),
                other => panic!("no trigger port {other:?} on a counter"),
            },
            (DatapathFu::Checksum { sum }, "tclr") => *sum = 0,
            (DatapathFu::Checksum { sum }, "tadd") => {
                *sum += (v >> 16) + (v & 0xffff);
            }
            (DatapathFu::Shifter { amount, r }, "tshl") => *r = v << (*amount & 31),
            (DatapathFu::Shifter { amount, r }, "tshr") => *r = v >> (*amount & 31),
            (DatapathFu::Masker { mask, value, r }, "t") => {
                *r = (v & !*mask) | (*value & *mask);
            }
            (DatapathFu::Liu { table, r }, "t") => {
                *r = table.get(v as usize).copied().unwrap_or(0);
            }
            (fu, port) => panic!("no trigger port {port:?} on {fu:?}"),
        }
    }

    /// Reads a result register.
    ///
    /// # Panics
    ///
    /// Panics on a port name the unit does not have (see
    /// [`DatapathFu::write_operand`]).
    pub fn read_result(&self, port: &str) -> u32 {
        match (self, port) {
            (DatapathFu::Matcher { r, .. }, "r")
            | (DatapathFu::Comparator { r, .. }, "r")
            | (DatapathFu::Counter { r, .. }, "r")
            | (DatapathFu::Shifter { r, .. }, "r")
            | (DatapathFu::Masker { r, .. }, "r")
            | (DatapathFu::Liu { r, .. }, "r") => *r,
            (DatapathFu::Checksum { sum }, "r") => {
                let mut s = *sum;
                while s > 0xffff {
                    s = (s & 0xffff) + (s >> 16);
                }
                !s & 0xffff
            }
            (fu, port) => panic!("no result port {port:?} on {fu:?}"),
        }
    }

    /// Samples a guard signal.
    ///
    /// # Panics
    ///
    /// Panics on a signal the unit does not drive (see
    /// [`DatapathFu::write_operand`]).
    pub fn guard(&self, signal: &str) -> bool {
        match (self, signal) {
            (DatapathFu::Matcher { matched, .. }, "match") => *matched,
            (DatapathFu::Comparator { eq, .. }, "eq") => *eq,
            (DatapathFu::Comparator { lt, .. }, "lt") => *lt,
            (DatapathFu::Comparator { gt, .. }, "gt") => *gt,
            (DatapathFu::Counter { r, stop }, "done") => r == stop,
            (DatapathFu::Counter { r, .. }, "zero") => *r == 0,
            (fu, signal) => panic!("no guard signal {signal:?} on {fu:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matcher_respects_mask() {
        let mut m = DatapathFu::new_matcher();
        m.write_operand("mask", 0xffff_0000);
        m.write_operand("refv", 0x2001_0db8);
        m.trigger("t", 0x2001_ffff);
        assert!(m.guard("match")); // only upper half compared
        assert_eq!(m.read_result("r"), 0x2001_ffff);
        m.trigger("t", 0x2002_0db8);
        assert!(!m.guard("match"));
    }

    #[test]
    fn comparator_latches_relations() {
        let mut c = DatapathFu::new_comparator();
        c.write_operand("refv", 100);
        c.trigger("t", 100);
        assert!(c.guard("eq") && !c.guard("lt") && !c.guard("gt"));
        c.trigger("t", 99);
        assert!(!c.guard("eq") && c.guard("lt"));
        c.trigger("t", 101);
        assert!(c.guard("gt"));
        // Rewriting refv does not change latched guards.
        c.write_operand("refv", 0);
        assert!(c.guard("gt"));
    }

    #[test]
    fn counter_operations_and_guards() {
        let mut c = DatapathFu::new_counter();
        c.write_operand("stop", 3);
        c.trigger("tset", 0);
        assert!(c.guard("zero") && !c.guard("done"));
        c.trigger("tinc", 0);
        c.trigger("tinc", 0);
        c.trigger("tinc", 0);
        assert!(c.guard("done"));
        assert_eq!(c.read_result("r"), 3);
        c.trigger("tadd", 10);
        assert_eq!(c.read_result("r"), 13);
        c.trigger("tsub", 13);
        assert!(c.guard("zero"));
        c.trigger("tdec", 0);
        assert_eq!(c.read_result("r"), u32::MAX); // wrapping
    }

    #[test]
    fn checksum_matches_reference_implementation() {
        let mut c = DatapathFu::new_checksum();
        c.trigger("tclr", 0);
        c.trigger("tadd", 0x0001_f203);
        c.trigger("tadd", 0xf4f5_f6f7);
        // RFC 1071 worked example folds to 0xddf2 before complement.
        assert_eq!(c.read_result("r"), (!0xddf2u16) as u32);
        c.trigger("tclr", 0);
        assert_eq!(c.read_result("r"), 0xffff);
    }

    #[test]
    fn shifter_multiplies_and_divides() {
        let mut s = DatapathFu::new_shifter();
        s.write_operand("amount", 1);
        s.trigger("tshl", 21);
        assert_eq!(s.read_result("r"), 42);
        s.write_operand("amount", 2);
        s.trigger("tshr", 44);
        assert_eq!(s.read_result("r"), 11);
        // Shift distances wrap at 32.
        s.write_operand("amount", 33);
        s.trigger("tshl", 1);
        assert_eq!(s.read_result("r"), 2);
    }

    #[test]
    fn masker_inserts_bitfield() {
        let mut m = DatapathFu::new_masker();
        m.write_operand("mask", 0x0000_ff00);
        m.write_operand("value", 0x0000_4200);
        m.trigger("t", 0x1234_5678);
        assert_eq!(m.read_result("r"), 0x1234_4278);
    }

    #[test]
    fn liu_reads_table() {
        let mut l = DatapathFu::new_liu(vec![0xaaaa, 0xbbbb]);
        l.trigger("t", 1);
        assert_eq!(l.read_result("r"), 0xbbbb);
        l.trigger("t", 99); // out of range reads zero
        assert_eq!(l.read_result("r"), 0);
    }

    #[test]
    #[should_panic(expected = "no trigger port")]
    fn wrong_trigger_panics() {
        DatapathFu::new_checksum().trigger("t", 0);
    }

    #[test]
    #[should_panic(expected = "no guard signal")]
    fn wrong_guard_panics() {
        let _ = DatapathFu::new_shifter().guard("match");
    }
}
