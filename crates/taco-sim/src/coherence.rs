//! Cache-coherence protocol machinery: line states, the MESI/MSI
//! transition function, and the all-integer statistics record.
//!
//! The protocol is a *snooping* one: every miss and every upgrade becomes
//! a transaction on the system interconnect, observed by every other
//! core's cache.  The transition function here is pure — it computes the
//! next state of the requesting line and says which remote copies must be
//! invalidated or downgraded — while the interconnect cost model lives in
//! [`multicore`](crate::multicore).
//!
//! Everything is integer arithmetic over closed enums, so a replay of the
//! same access stream produces the same statistics byte for byte on any
//! platform.

use taco_isa::CoherenceProtocol;

/// State of one cached table line, per core.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum LineState {
    /// Not present (or invalidated by a remote write).
    #[default]
    Invalid,
    /// Clean, possibly held by other cores too.
    Shared,
    /// Clean and provably the only copy (MESI only): the next local write
    /// upgrades silently, with no bus transaction.
    Exclusive,
    /// Dirty sole copy.
    Modified,
}

impl LineState {
    /// Whether a local read hits in this state.
    pub fn readable(&self) -> bool {
        !matches!(self, LineState::Invalid)
    }

    /// Whether a local write hits in this state without an upgrade
    /// transaction.
    pub fn writable(&self) -> bool {
        matches!(self, LineState::Modified | LineState::Exclusive)
    }
}

/// What a coherence transaction asked the rest of the system to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnoopEffect {
    /// Remote copies (if any) downgrade to [`LineState::Shared`]; a
    /// remote [`LineState::Modified`] copy writes back first.
    Downgrade,
    /// Remote copies invalidate; a remote [`LineState::Modified`] copy
    /// writes back first.
    Invalidate,
}

/// The state a read miss fills into, given whether any other core holds
/// the line: MESI grants Exclusive on a sole copy, MSI never does.
pub fn read_fill_state(protocol: CoherenceProtocol, shared_elsewhere: bool) -> LineState {
    match (protocol, shared_elsewhere) {
        (_, true) => LineState::Shared,
        (CoherenceProtocol::Mesi, false) => LineState::Exclusive,
        (CoherenceProtocol::Msi, false) => LineState::Shared,
    }
}

/// All-integer coherence and interconnect counters.
///
/// Serialised into the `coherence` section of a scenario record; every
/// field is a plain `u64` so the JSON form is byte-stable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct CoherenceStats {
    /// Table-line reads issued by the cores.
    pub reads: u64,
    /// Table-line writes issued by the cores.
    pub writes: u64,
    /// Accesses served from the local cache with no transaction.
    pub hits: u64,
    /// Accesses that missed and filled over the interconnect.
    pub misses: u64,
    /// Remote copies invalidated by writes.
    pub invalidations: u64,
    /// Shared→Modified upgrades that required an interconnect transaction
    /// (the write-hit-on-Shared case MESI's Exclusive state avoids).
    pub upgrade_stalls: u64,
    /// Dirty remote copies written back before a fill or invalidate.
    pub writebacks: u64,
    /// Total cycles the cores spent stalled on coherence (arbitration
    /// waits plus transfer latency).
    pub stall_cycles: u64,
    /// Transactions placed on the interconnect.
    pub transactions: u64,
    /// Cycles the interconnect was occupied carrying those transactions.
    pub busy_cycles: u64,
}

impl CoherenceStats {
    /// Total accesses (reads + writes).
    pub fn accesses(&self) -> u64 {
        self.reads + self.writes
    }

    /// Hit rate in per-mille (integer; 0 when no accesses were made).
    pub fn hit_rate_milli(&self) -> u64 {
        (self.hits * 1000).checked_div(self.accesses()).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fill_states_follow_the_protocol() {
        assert_eq!(read_fill_state(CoherenceProtocol::Mesi, false), LineState::Exclusive);
        assert_eq!(read_fill_state(CoherenceProtocol::Mesi, true), LineState::Shared);
        assert_eq!(read_fill_state(CoherenceProtocol::Msi, false), LineState::Shared);
        assert_eq!(read_fill_state(CoherenceProtocol::Msi, true), LineState::Shared);
    }

    #[test]
    fn state_predicates() {
        assert!(!LineState::Invalid.readable());
        assert!(LineState::Shared.readable());
        assert!(!LineState::Shared.writable());
        assert!(LineState::Exclusive.writable());
        assert!(LineState::Modified.writable());
    }

    #[test]
    fn hit_rate_is_integer_per_mille() {
        let mut s = CoherenceStats::default();
        assert_eq!(s.hit_rate_milli(), 0);
        s.reads = 3;
        s.hits = 2;
        assert_eq!(s.accesses(), 3);
        assert_eq!(s.hit_rate_milli(), 666);
    }
}
