//! N-core system simulation: private per-core table caches kept coherent
//! over a modelled interconnect.
//!
//! [`MulticoreSim`] replays a stream of per-core table-line accesses
//! (reads from forwarding lookups, writes from routing-table updates)
//! through N direct-mapped private caches running the
//! [`CoherenceProtocol`](taco_isa::CoherenceProtocol) of the system
//! configuration.  Every miss, upgrade and invalidation becomes a
//! transaction on the configured interconnect:
//!
//! * [`Topology::SharedBus`] — one snooping bus.  A transaction occupies
//!   the bus for `latency` cycles, and a core whose transaction finds the
//!   bus busy stalls until it frees (arbitration is in request order,
//!   which is the replay order — deterministic by construction).
//! * [`Topology::Mesh`] — a switched 2D mesh laid out on a near-square
//!   grid.  A transaction pays Manhattan-distance hop latency to its
//!   supplier (another core's cache, or the memory controller at node 0)
//!   and never serialises against other traffic.
//!
//! The model is all-integer: the same access stream produces the same
//! [`CoherenceStats`] byte for byte on every platform and thread count.
//!
//! # Examples
//!
//! ```
//! use taco_isa::SystemConfig;
//! use taco_sim::MulticoreSim;
//!
//! let mut sim = MulticoreSim::new(SystemConfig::with_cores(2));
//! sim.read(0, 100); // core 0 fills the line
//! sim.read(1, 100); // core 1 fills it Shared
//! let stall = sim.write(0, 100); // invalidates core 1's copy
//! assert!(stall > 0);
//! assert_eq!(sim.stats().invalidations, 1);
//! ```

use taco_isa::{SystemConfig, Topology};

use crate::coherence::{read_fill_state, CoherenceStats, LineState};

/// One direct-mapped cache slot: which line it holds, in which state.
#[derive(Debug, Clone, Copy, Default)]
struct CacheEntry {
    tag: u64,
    state: LineState,
}

/// Where a fill was supplied from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Supplier {
    /// The shared table memory (attached at mesh node 0).
    Memory,
    /// Another core's cache.
    Core(usize),
}

/// The N-core coherence simulator.
#[derive(Debug, Clone)]
pub struct MulticoreSim {
    system: SystemConfig,
    /// `caches[core][set]`.
    caches: Vec<Vec<CacheEntry>>,
    /// Logical clock: advances one cycle per access, so bus occupancy
    /// windows overlap when transactions arrive back to back.
    now: u64,
    /// First cycle the shared bus is free again.
    bus_free_at: u64,
    /// Mesh grid width (near-square layout).
    mesh_cols: u64,
    stats: CoherenceStats,
}

impl MulticoreSim {
    /// Builds the system: every cache starts cold (all lines Invalid).
    pub fn new(system: SystemConfig) -> Self {
        let cores = usize::from(system.cores.max(1));
        let sets = usize::from(system.cache.lines.max(1));
        let mut cols = 1u64;
        while cols * cols < cores as u64 {
            cols += 1;
        }
        MulticoreSim {
            system,
            caches: vec![vec![CacheEntry::default(); sets]; cores],
            now: 0,
            bus_free_at: 0,
            mesh_cols: cols,
            stats: CoherenceStats::default(),
        }
    }

    /// The system configuration this simulator models.
    pub fn system(&self) -> &SystemConfig {
        &self.system
    }

    /// Core count.
    pub fn cores(&self) -> usize {
        self.caches.len()
    }

    /// The statistics accumulated so far.
    pub fn stats(&self) -> &CoherenceStats {
        &self.stats
    }

    /// Zeroes the statistics without touching the cache contents (used to
    /// exclude warm-up traffic from a measured window).
    pub fn reset_stats(&mut self) {
        self.stats = CoherenceStats::default();
    }

    fn line_of(&self, word_addr: u64) -> u64 {
        word_addr / u64::from(self.system.cache.line_words.max(1))
    }

    fn set_of(&self, line: u64) -> usize {
        (line % self.caches[0].len() as u64) as usize
    }

    /// Manhattan distance between two mesh nodes (node = core index;
    /// memory sits at node 0).
    fn hops(&self, a: u64, b: u64) -> u64 {
        let (ax, ay) = (a % self.mesh_cols, a / self.mesh_cols);
        let (bx, by) = (b % self.mesh_cols, b / self.mesh_cols);
        ax.abs_diff(bx) + ay.abs_diff(by)
    }

    /// Places one transaction on the interconnect and returns the cycles
    /// the requesting core stalls for it.  `reach` is the farthest party
    /// the transaction must touch (supplier or invalidation target).
    fn transact(&mut self, core: usize, reach: Supplier) -> u64 {
        self.stats.transactions += 1;
        let latency = u64::from(self.system.interconnect.latency.max(1));
        match self.system.interconnect.topology {
            Topology::SharedBus => {
                let wait = self.bus_free_at.saturating_sub(self.now);
                self.bus_free_at = self.bus_free_at.max(self.now) + latency;
                self.stats.busy_cycles += latency;
                wait + latency
            }
            Topology::Mesh => {
                let dest = match reach {
                    Supplier::Memory => 0,
                    Supplier::Core(c) => c as u64,
                };
                // +1: entering the network costs one hop even to an
                // adjacent node (or the local memory port at node 0).
                let cost = latency * (self.hops(core as u64, dest) + 1);
                self.stats.busy_cycles += cost;
                cost
            }
        }
    }

    /// Remote cores currently holding `line`, with their states.
    fn holders(&self, core: usize, line: u64) -> Vec<(usize, LineState)> {
        let set = self.set_of(line);
        self.caches
            .iter()
            .enumerate()
            .filter(|(c, _)| *c != core)
            .filter_map(|(c, cache)| {
                let e = cache[set];
                (e.state.readable() && e.tag == line).then_some((c, e.state))
            })
            .collect()
    }

    /// The farthest party among `holders` (mesh broadcast completes when
    /// the farthest acknowledgement returns); memory when none hold it.
    fn farthest(&self, core: usize, holders: &[(usize, LineState)]) -> Supplier {
        holders
            .iter()
            .max_by_key(|(c, _)| self.hops(core as u64, *c as u64))
            .map(|(c, _)| Supplier::Core(*c))
            .unwrap_or(Supplier::Memory)
    }

    /// A table-line read by `core` at word address `addr`.  Returns the
    /// stall cycles the access cost (0 on a hit).
    pub fn read(&mut self, core: usize, addr: u64) -> u64 {
        self.now += 1;
        self.stats.reads += 1;
        let line = self.line_of(addr);
        let set = self.set_of(line);
        let entry = self.caches[core][set];
        if entry.state.readable() && entry.tag == line {
            self.stats.hits += 1;
            return 0;
        }
        self.stats.misses += 1;
        let holders = self.holders(core, line);
        // A dirty remote copy writes back, then every holder downgrades
        // to Shared.
        let mut extra = 0;
        for &(c, state) in &holders {
            if state == LineState::Modified {
                self.stats.writebacks += 1;
                extra += self.transact(c, Supplier::Memory);
            }
            self.caches[c][set].state = LineState::Shared;
        }
        let supplier = self.farthest(core, &holders);
        let stall = extra + self.transact(core, supplier);
        let fill = read_fill_state(self.system.protocol, !holders.is_empty());
        self.caches[core][set] = CacheEntry { tag: line, state: fill };
        self.stats.stall_cycles += stall;
        stall
    }

    /// A table-line write by `core` at word address `addr` (a routing
    /// update landing in the shared table).  Returns the stall cycles.
    pub fn write(&mut self, core: usize, addr: u64) -> u64 {
        self.now += 1;
        self.stats.writes += 1;
        let line = self.line_of(addr);
        let set = self.set_of(line);
        let entry = self.caches[core][set];
        let local_hit = entry.state.readable() && entry.tag == line;
        if local_hit && entry.state.writable() {
            // Modified stays Modified; Exclusive upgrades silently (the
            // MESI payoff — MSI never reaches this state from a fill).
            self.stats.hits += 1;
            self.caches[core][set].state = LineState::Modified;
            return 0;
        }
        let holders = self.holders(core, line);
        let mut extra = 0;
        for &(c, state) in &holders {
            if state == LineState::Modified {
                self.stats.writebacks += 1;
                extra += self.transact(c, Supplier::Memory);
            }
            self.caches[c][set].state = LineState::Invalid;
            self.stats.invalidations += 1;
        }
        let reach = self.farthest(core, &holders);
        let stall = if local_hit {
            // Shared → Modified: data is present, but the upgrade must
            // still broadcast an invalidate.
            self.stats.hits += 1;
            self.stats.upgrade_stalls += 1;
            extra + self.transact(core, reach)
        } else {
            self.stats.misses += 1;
            extra + self.transact(core, reach)
        };
        self.caches[core][set] = CacheEntry { tag: line, state: LineState::Modified };
        self.stats.stall_cycles += stall;
        stall
    }
}

#[cfg(test)]
mod tests {
    use taco_isa::CoherenceProtocol;

    use super::*;

    fn sys(cores: u8) -> SystemConfig {
        SystemConfig::with_cores(cores)
    }

    #[test]
    fn cold_read_misses_then_hits() {
        let mut sim = MulticoreSim::new(sys(2));
        assert!(sim.read(0, 8) > 0, "cold miss stalls");
        assert_eq!(sim.read(0, 9), 0, "same line hits");
        let s = sim.stats();
        assert_eq!((s.reads, s.hits, s.misses), (2, 1, 1));
    }

    #[test]
    fn hits_plus_misses_equals_accesses() {
        let mut sim = MulticoreSim::new(sys(4));
        for i in 0..200u64 {
            let core = (i % 4) as usize;
            if i % 7 == 0 {
                sim.write(core, i * 3 % 64);
            } else {
                sim.read(core, i * 5 % 64);
            }
        }
        let s = sim.stats();
        assert_eq!(s.hits + s.misses, s.accesses());
    }

    #[test]
    fn mesi_grants_exclusive_and_upgrades_silently() {
        let mut sim = MulticoreSim::new(sys(2).protocol(CoherenceProtocol::Mesi));
        sim.read(0, 4); // sole copy → Exclusive
        assert_eq!(sim.write(0, 4), 0, "E→M is silent");
        assert_eq!(sim.stats().upgrade_stalls, 0);
    }

    #[test]
    fn msi_pays_the_upgrade_mesi_avoids() {
        let mut sim = MulticoreSim::new(sys(2).protocol(CoherenceProtocol::Msi));
        sim.read(0, 4); // MSI fills Shared even as sole copy
        assert!(sim.write(0, 4) > 0, "S→M needs an upgrade transaction");
        assert_eq!(sim.stats().upgrade_stalls, 1);
    }

    #[test]
    fn writes_invalidate_remote_copies() {
        let mut sim = MulticoreSim::new(sys(4));
        for c in 0..4 {
            sim.read(c, 16);
        }
        sim.write(0, 16);
        assert_eq!(sim.stats().invalidations, 3);
        // The invalidated cores must miss again.
        assert!(sim.read(1, 16) > 0);
    }

    #[test]
    fn dirty_lines_write_back_before_remote_reads() {
        let mut sim = MulticoreSim::new(sys(2));
        sim.read(0, 4);
        sim.write(0, 4); // Modified on core 0
        sim.read(1, 4); // forces writeback + downgrade
        assert_eq!(sim.stats().writebacks, 1);
        // Core 0 still hits (Shared now).
        assert_eq!(sim.read(0, 4), 0);
    }

    #[test]
    fn shared_bus_arbitration_queues_back_to_back_misses() {
        let mut sim = MulticoreSim::new(sys(4)); // bus latency 2, clock +1/access
        let a = sim.read(0, 0);
        let b = sim.read(1, 64); // different line, still queues on the bus
        assert!(b > a, "second transaction waits for the bus: {a} vs {b}");
    }

    #[test]
    fn mesh_does_not_serialise_independent_misses() {
        let mesh = sys(4).topology(Topology::Mesh);
        let mut sim = MulticoreSim::new(mesh);
        let a = sim.read(0, 0);
        let b = sim.read(0, 64);
        assert_eq!(a, b, "independent mesh fills cost the same");
    }

    #[test]
    fn mesh_cost_grows_with_distance() {
        let mesh = sys(4).topology(Topology::Mesh);
        let mut sim = MulticoreSim::new(mesh);
        // Memory sits at node 0: node 3 (diagonal on the 2x2 grid) pays
        // more hops than node 1.
        let near = sim.read(1, 0);
        let far = sim.read(2, 128);
        let _ = (near, far);
        let diag = sim.read(3, 256);
        assert!(diag > near, "{diag} vs {near}");
    }

    #[test]
    fn replay_is_deterministic() {
        let run = || {
            let mut sim = MulticoreSim::new(sys(4).topology(Topology::Mesh));
            for i in 0..500u64 {
                let core = (i % 4) as usize;
                if i % 11 == 0 {
                    sim.write(core, i % 97);
                } else {
                    sim.read(core, (i * 13) % 97);
                }
            }
            *sim.stats()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn reset_stats_keeps_the_warm_cache() {
        let mut sim = MulticoreSim::new(sys(2));
        sim.read(0, 4);
        sim.reset_stats();
        assert_eq!(sim.stats().accesses(), 0);
        assert_eq!(sim.read(0, 4), 0, "cache stayed warm across the reset");
    }
}
