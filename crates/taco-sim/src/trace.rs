//! Cycle-level event tracing.
//!
//! The paper reads *module utilization* and bus occupancy out of its
//! SystemC model; [`SimStats`] keeps the end-of-run aggregates, but some
//! questions need the time axis back: *when* was a bus busy, which FU
//! stalled a datagram, how long did one datagram sit in flight?  A
//! [`Tracer`] answers those by observing every scheduling event the
//! [`Processor`](crate::Processor) makes, at cycle granularity.
//!
//! Tracing follows Reshadi & Dutt's rule for generated cycle-accurate
//! simulators: instrumentation must vanish from the hot path when it is
//! off.  The processor's step loop is generic over the tracer, so the
//! [`NullTracer`] monomorphises to empty inlined calls and the untraced
//! simulation compiles to exactly the code it had before tracing existed;
//! dynamic dispatch is paid only on the explicitly traced entry points.
//!
//! Three tracers ship:
//!
//! * [`NullTracer`] — the zero-cost default;
//! * [`RingTracer`] — a bounded in-memory ring of [`TraceEvent`]s, for
//!   tests and ASCII rendering (and the [`TraceCounters`] reconciliation
//!   with [`SimStats`]);
//! * [`ChromeTracer`] — streams the run as Chrome `about://tracing` JSON,
//!   one "thread" per bus and per FU instance, loadable in Perfetto.

use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::fmt::Write as _;

use taco_isa::FuRef;

use crate::stats::SimStats;

/// One cycle-level scheduling event.
///
/// Cycles are the simulator's own counter ([`Processor::cycles`]); bus
/// indices are instruction slot positions (`0..buses`).
///
/// [`Processor::cycles`]: crate::Processor::cycles
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// A move's guard passed (or it had none) and its transport executed
    /// on `bus`.
    MoveExecuted {
        /// Cycle the move executed in.
        cycle: u64,
        /// Bus (instruction slot) the move occupied.
        bus: u8,
        /// Program counter of the executing instruction.
        pc: u32,
    },
    /// A move's guard failed; it occupied `bus` but transported nothing.
    MoveSquashed {
        /// Cycle the move was squashed in.
        cycle: u64,
        /// Bus (instruction slot) the move occupied.
        bus: u8,
        /// Program counter of the executing instruction.
        pc: u32,
    },
    /// An FU trigger port was written: the unit starts its operation.
    FuTriggered {
        /// Cycle of the trigger write.
        cycle: u64,
        /// The triggered unit instance.
        fu: FuRef,
    },
    /// The unit's result becomes architecturally visible (the cycle a
    /// read of its result port would first observe the new value — one
    /// cycle after the trigger for the single-cycle datapath FUs, the
    /// RTU's configured latency later for lookups).
    FuRetired {
        /// First cycle the result is visible.
        cycle: u64,
        /// The retiring unit instance.
        fu: FuRef,
    },
    /// The processor entered an RTU-interlock stall.
    StallBegin {
        /// First stalled cycle.
        cycle: u64,
    },
    /// The stall released: `cycle` is the first cycle that executed
    /// again, so `cycle - begin` is the stalled-cycle count.
    StallEnd {
        /// First executing cycle after the stall.
        cycle: u64,
    },
    /// An injected transient fault started stealing cycles (see
    /// [`FaultInjector`](crate::FaultInjector)).
    FaultStallBegin {
        /// First stolen cycle.
        cycle: u64,
    },
    /// The injected fault released: `cycle` is the first cycle that
    /// executed again, so `cycle - begin` is the stolen-cycle count.
    FaultStallEnd {
        /// First executing cycle after the fault.
        cycle: u64,
    },
    /// The iPPU handed the processor a datagram: its in-flight span opens.
    DatagramBegin {
        /// Cycle the iPPU pop landed.
        cycle: u64,
        /// Memory pointer of the datagram buffer.
        ptr: u32,
        /// Input interface the datagram arrived on.
        iface: u32,
    },
    /// The oPPU emitted a datagram: its in-flight span closes.
    DatagramEnd {
        /// Cycle of the oPPU emission.
        cycle: u64,
        /// Memory pointer of the datagram buffer.
        ptr: u32,
        /// Output interface the datagram leaves on.
        iface: u32,
    },
}

impl TraceEvent {
    /// The cycle this event is stamped with.
    pub fn cycle(&self) -> u64 {
        match *self {
            TraceEvent::MoveExecuted { cycle, .. }
            | TraceEvent::MoveSquashed { cycle, .. }
            | TraceEvent::FuTriggered { cycle, .. }
            | TraceEvent::FuRetired { cycle, .. }
            | TraceEvent::StallBegin { cycle }
            | TraceEvent::StallEnd { cycle }
            | TraceEvent::FaultStallBegin { cycle }
            | TraceEvent::FaultStallEnd { cycle }
            | TraceEvent::DatagramBegin { cycle, .. }
            | TraceEvent::DatagramEnd { cycle, .. } => cycle,
        }
    }
}

/// Observes cycle-level events from a running processor.
///
/// Implementations should be cheap: the processor calls [`Tracer::event`]
/// from its innermost loop, several times per cycle.
pub trait Tracer {
    /// Receives one event.  Events arrive in non-decreasing cycle order,
    /// except [`TraceEvent::FuRetired`], which is stamped with the future
    /// cycle its result becomes visible and delivered at trigger time.
    fn event(&mut self, event: &TraceEvent);
}

/// The zero-cost default: ignores everything.
///
/// The processor's untraced entry points run with a `NullTracer`
/// monomorphised into the step loop, so the disabled path carries no
/// branches, no virtual calls and no event construction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullTracer;

impl Tracer for NullTracer {
    #[inline(always)]
    fn event(&mut self, _event: &TraceEvent) {}
}

/// A bounded in-memory event ring: keeps the most recent `capacity`
/// events, counting (rather than keeping) anything older.
///
/// # Examples
///
/// ```
/// use taco_sim::trace::{RingTracer, Tracer, TraceEvent};
///
/// let mut ring = RingTracer::new(2);
/// for cycle in 0..3 {
///     ring.event(&TraceEvent::StallBegin { cycle });
/// }
/// assert_eq!(ring.events().len(), 2);
/// assert_eq!(ring.dropped(), 1);
/// assert_eq!(ring.events()[0].cycle(), 1); // oldest kept
/// ```
#[derive(Debug, Clone, Default)]
pub struct RingTracer {
    capacity: usize,
    events: VecDeque<TraceEvent>,
    dropped: u64,
}

impl RingTracer {
    /// A ring keeping at most `capacity` events.
    pub fn new(capacity: usize) -> Self {
        RingTracer { capacity, events: VecDeque::new(), dropped: 0 }
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> &VecDeque<TraceEvent> {
        &self.events
    }

    /// Events evicted because the ring was full.  Zero means the capture
    /// is complete and [`TraceCounters::from_events`] reconciles exactly
    /// with the run's [`SimStats`].
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// `true` if nothing was evicted.
    pub fn is_complete(&self) -> bool {
        self.dropped == 0
    }
}

impl Tracer for RingTracer {
    fn event(&mut self, event: &TraceEvent) {
        if self.capacity == 0 {
            self.dropped += 1;
            return;
        }
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(*event);
    }
}

/// The counter projection a trace can be replayed into — exactly the
/// [`SimStats`] fields an event stream determines.
///
/// This is the reconciliation contract the property tests pin down: for a
/// complete capture (no ring evictions), replaying the events reproduces
/// the simulator's own aggregate counters bit for bit.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceCounters {
    /// Moves whose guard passed.
    pub moves_executed: u64,
    /// Moves whose guard failed.
    pub moves_squashed: u64,
    /// Cycles spent in RTU-interlock stalls (closed begin/end pairs; an
    /// open stall at capture end — a watchdog-killed run — contributes
    /// nothing).
    pub stall_cycles: u64,
    /// Cycles stolen by injected faults (closed begin/end pairs, same
    /// accounting as [`TraceCounters::stall_cycles`]; zero in fault-free
    /// runs, keeping the reconciliation exact).
    pub injected_stall_cycles: u64,
    /// Trigger counts per FU instance.
    pub fu_instance_triggers: BTreeMap<FuRef, u64>,
}

impl TraceCounters {
    /// Replays an event stream into counters.
    pub fn from_events<'a>(events: impl IntoIterator<Item = &'a TraceEvent>) -> Self {
        let mut counters = TraceCounters::default();
        let mut open_stall: Option<u64> = None;
        let mut open_fault: Option<u64> = None;
        for event in events {
            match *event {
                TraceEvent::MoveExecuted { .. } => counters.moves_executed += 1,
                TraceEvent::MoveSquashed { .. } => counters.moves_squashed += 1,
                TraceEvent::FuTriggered { fu, .. } => {
                    *counters.fu_instance_triggers.entry(fu).or_insert(0) += 1;
                }
                TraceEvent::StallBegin { cycle } => open_stall = Some(cycle),
                TraceEvent::StallEnd { cycle } => {
                    if let Some(begin) = open_stall.take() {
                        counters.stall_cycles += cycle.saturating_sub(begin);
                    }
                }
                TraceEvent::FaultStallBegin { cycle } => open_fault = Some(cycle),
                TraceEvent::FaultStallEnd { cycle } => {
                    if let Some(begin) = open_fault.take() {
                        counters.injected_stall_cycles += cycle.saturating_sub(begin);
                    }
                }
                TraceEvent::FuRetired { .. }
                | TraceEvent::DatagramBegin { .. }
                | TraceEvent::DatagramEnd { .. } => {}
            }
        }
        counters
    }

    /// Projects the same counters out of a [`SimStats`], for comparison.
    pub fn from_stats(stats: &SimStats) -> Self {
        TraceCounters {
            moves_executed: stats.moves_executed,
            moves_squashed: stats.moves_squashed,
            stall_cycles: stats.stall_cycles,
            injected_stall_cycles: stats.injected_stall_cycles,
            fu_instance_triggers: stats.fu_instance_triggers.clone(),
        }
    }
}

/// Streams the run as Chrome trace-event JSON.
///
/// Load the output of [`ChromeTracer::finish`] in Perfetto or
/// `chrome://tracing`: each bus is a named "thread" carrying 1-cycle
/// move/squash slices, each FU instance a thread carrying trigger→retire
/// operation slices, with RTU stalls and datagram lifetimes on their own
/// rows.  Timestamps are cycles (the viewer displays them as µs — read
/// the axis as cycles).
#[derive(Debug, Clone)]
pub struct ChromeTracer {
    buses: u8,
    body: String,
    first: bool,
    fu_tids: Vec<(FuRef, u64)>,
    open_fu: Vec<(FuRef, u64, u64)>,
    open_stall: Option<u64>,
    open_fault: Option<u64>,
    open_dgrams: Vec<(u32, u64, u32)>,
}

/// Process id used for every emitted event (the trace models one
/// processor).
const CHROME_PID: u32 = 1;

impl ChromeTracer {
    /// A tracer for a machine with `buses` buses.
    pub fn new(buses: u8) -> Self {
        let mut tracer = ChromeTracer {
            buses,
            body: String::with_capacity(4096),
            first: true,
            fu_tids: Vec::new(),
            open_fu: Vec::new(),
            open_stall: None,
            open_fault: None,
            open_dgrams: Vec::new(),
        };
        for bus in 0..buses {
            tracer.thread_name(u64::from(bus), &format!("bus{bus}"));
        }
        tracer.thread_name(tracer.stall_tid(), "rtu-stall");
        tracer.thread_name(tracer.dgram_tid(), "datagrams");
        tracer.thread_name(tracer.fault_tid(), "fault-stall");
        tracer
    }

    fn stall_tid(&self) -> u64 {
        u64::from(self.buses)
    }

    fn dgram_tid(&self) -> u64 {
        u64::from(self.buses) + 1
    }

    fn fault_tid(&self) -> u64 {
        u64::from(self.buses) + 2
    }

    fn fu_tid(&mut self, fu: FuRef) -> u64 {
        if let Some(&(_, tid)) = self.fu_tids.iter().find(|(f, _)| *f == fu) {
            return tid;
        }
        let tid = u64::from(self.buses) + 3 + self.fu_tids.len() as u64;
        self.fu_tids.push((fu, tid));
        self.thread_name(tid, &fu.to_string());
        tid
    }

    fn push_raw(&mut self, record: &str) {
        if !self.first {
            self.body.push(',');
        }
        self.first = false;
        self.body.push('\n');
        self.body.push_str(record);
    }

    fn thread_name(&mut self, tid: u64, name: &str) {
        let record = format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{CHROME_PID},\"tid\":{tid},\
             \"args\":{{\"name\":\"{name}\"}}}}"
        );
        self.push_raw(&record);
    }

    /// Emits a complete ("X") slice.  `args` must be empty or a complete
    /// JSON object body (`"k":v,...`).
    fn slice(&mut self, name: &str, tid: u64, start: u64, dur: u64, args: &str) {
        let mut record = format!(
            "{{\"name\":\"{name}\",\"ph\":\"X\",\"pid\":{CHROME_PID},\"tid\":{tid},\
             \"ts\":{start},\"dur\":{dur}"
        );
        if !args.is_empty() {
            let _ = write!(record, ",\"args\":{{{args}}}");
        }
        record.push('}');
        self.push_raw(&record);
    }

    /// Closes any spans still open at `cycle` and returns the finished
    /// JSON document (an object with a `traceEvents` array, the format
    /// Perfetto and `chrome://tracing` both load).
    pub fn finish(mut self, end_cycle: u64) -> String {
        if let Some(begin) = self.open_stall.take() {
            self.slice("rtu stall", self.stall_tid(), begin, end_cycle.saturating_sub(begin), "");
        }
        if let Some(begin) = self.open_fault.take() {
            self.slice(
                "injected fault",
                self.fault_tid(),
                begin,
                end_cycle.saturating_sub(begin),
                "",
            );
        }
        let open_fu = std::mem::take(&mut self.open_fu);
        for (fu, trigger, retire) in open_fu {
            let tid = self.fu_tid(fu);
            self.slice(&fu.to_string(), tid, trigger, retire.saturating_sub(trigger), "");
        }
        let open_dgrams = std::mem::take(&mut self.open_dgrams);
        for (ptr, begin, iface) in open_dgrams {
            self.slice(
                "datagram (in flight at end)",
                self.dgram_tid(),
                begin,
                end_cycle.saturating_sub(begin),
                &format!("\"ptr\":{ptr},\"in_iface\":{iface}"),
            );
        }
        format!("{{\"traceEvents\":[{}\n],\"displayTimeUnit\":\"ms\"}}\n", self.body)
    }
}

impl Tracer for ChromeTracer {
    fn event(&mut self, event: &TraceEvent) {
        match *event {
            TraceEvent::MoveExecuted { cycle, bus, pc } => {
                self.slice("move", u64::from(bus), cycle, 1, &format!("\"pc\":{pc}"));
            }
            TraceEvent::MoveSquashed { cycle, bus, pc } => {
                self.slice("squashed", u64::from(bus), cycle, 1, &format!("\"pc\":{pc}"));
            }
            TraceEvent::FuTriggered { cycle, fu } => {
                // Retire arrives as its own event (stamped with the visible
                // cycle); remember the trigger until then.
                self.open_fu.push((fu, cycle, cycle + 1));
            }
            TraceEvent::FuRetired { cycle, fu } => {
                if let Some(i) = self.open_fu.iter().position(|(f, _, _)| *f == fu) {
                    let (_, trigger, _) = self.open_fu.remove(i);
                    let tid = self.fu_tid(fu);
                    self.slice(
                        &fu.to_string(),
                        tid,
                        trigger,
                        cycle.saturating_sub(trigger).max(1),
                        "",
                    );
                }
            }
            TraceEvent::StallBegin { cycle } => self.open_stall = Some(cycle),
            TraceEvent::StallEnd { cycle } => {
                if let Some(begin) = self.open_stall.take() {
                    self.slice(
                        "rtu stall",
                        self.stall_tid(),
                        begin,
                        cycle.saturating_sub(begin),
                        "",
                    );
                }
            }
            TraceEvent::FaultStallBegin { cycle } => self.open_fault = Some(cycle),
            TraceEvent::FaultStallEnd { cycle } => {
                if let Some(begin) = self.open_fault.take() {
                    self.slice(
                        "injected fault",
                        self.fault_tid(),
                        begin,
                        cycle.saturating_sub(begin),
                        "",
                    );
                }
            }
            TraceEvent::DatagramBegin { cycle, ptr, iface } => {
                self.open_dgrams.push((ptr, cycle, iface));
            }
            TraceEvent::DatagramEnd { cycle, ptr, iface } => {
                if let Some(i) = self.open_dgrams.iter().position(|(p, _, _)| *p == ptr) {
                    let (_, begin, in_iface) = self.open_dgrams.remove(i);
                    let tid = self.dgram_tid();
                    self.slice(
                        "datagram",
                        tid,
                        begin,
                        cycle.saturating_sub(begin).max(1),
                        &format!("\"ptr\":{ptr},\"in_iface\":{in_iface},\"out_iface\":{iface}"),
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taco_isa::FuKind;

    fn fu(i: u8) -> FuRef {
        FuRef::new(FuKind::Counter, i)
    }

    #[test]
    fn ring_keeps_the_newest_events() {
        let mut ring = RingTracer::new(3);
        for cycle in 0..5 {
            ring.event(&TraceEvent::StallBegin { cycle });
        }
        assert_eq!(ring.dropped(), 2);
        assert!(!ring.is_complete());
        let cycles: Vec<u64> = ring.events().iter().map(|e| e.cycle()).collect();
        assert_eq!(cycles, vec![2, 3, 4]);
    }

    #[test]
    fn zero_capacity_ring_only_counts() {
        let mut ring = RingTracer::new(0);
        ring.event(&TraceEvent::StallBegin { cycle: 1 });
        assert!(ring.events().is_empty());
        assert_eq!(ring.dropped(), 1);
    }

    #[test]
    fn replay_counts_moves_triggers_and_stalls() {
        let events = [
            TraceEvent::MoveExecuted { cycle: 0, bus: 0, pc: 0 },
            TraceEvent::MoveSquashed { cycle: 0, bus: 1, pc: 0 },
            TraceEvent::FuTriggered { cycle: 0, fu: fu(0) },
            TraceEvent::FuRetired { cycle: 1, fu: fu(0) },
            TraceEvent::StallBegin { cycle: 1 },
            TraceEvent::StallEnd { cycle: 4 },
            TraceEvent::MoveExecuted { cycle: 4, bus: 0, pc: 1 },
            TraceEvent::FuTriggered { cycle: 4, fu: fu(0) },
        ];
        let counters = TraceCounters::from_events(&events);
        assert_eq!(counters.moves_executed, 2);
        assert_eq!(counters.moves_squashed, 1);
        assert_eq!(counters.stall_cycles, 3);
        assert_eq!(counters.fu_instance_triggers.get(&fu(0)), Some(&2));
    }

    #[test]
    fn replay_ignores_an_open_stall() {
        let events = [TraceEvent::StallBegin { cycle: 7 }];
        assert_eq!(TraceCounters::from_events(&events).stall_cycles, 0);
    }

    #[test]
    fn stats_projection_round_trips() {
        let mut stats = SimStats { moves_executed: 3, moves_squashed: 1, ..SimStats::default() };
        stats.stall_cycles = 4;
        stats.fu_instance_triggers.insert(fu(1), 9);
        let projected = TraceCounters::from_stats(&stats);
        assert_eq!(projected.moves_executed, 3);
        assert_eq!(projected.fu_instance_triggers.get(&fu(1)), Some(&9));
    }

    #[test]
    fn chrome_trace_is_valid_shape() {
        let mut chrome = ChromeTracer::new(2);
        chrome.event(&TraceEvent::MoveExecuted { cycle: 0, bus: 0, pc: 0 });
        chrome.event(&TraceEvent::MoveSquashed { cycle: 0, bus: 1, pc: 0 });
        chrome.event(&TraceEvent::FuTriggered { cycle: 0, fu: fu(0) });
        chrome.event(&TraceEvent::FuRetired { cycle: 1, fu: fu(0) });
        chrome.event(&TraceEvent::StallBegin { cycle: 2 });
        chrome.event(&TraceEvent::StallEnd { cycle: 5 });
        chrome.event(&TraceEvent::DatagramBegin { cycle: 0, ptr: 64, iface: 1 });
        chrome.event(&TraceEvent::DatagramEnd { cycle: 6, ptr: 64, iface: 3 });
        let json = chrome.finish(6);
        assert!(json.starts_with("{\"traceEvents\":["), "{json}");
        assert!(json.trim_end().ends_with('}'), "{json}");
        assert!(json.contains("\"thread_name\""), "{json}");
        assert!(json.contains("\"name\":\"bus0\""), "{json}");
        assert!(json.contains("\"name\":\"cnt0\""), "{json}");
        assert!(json.contains("\"name\":\"rtu stall\""), "{json}");
        assert!(json.contains("\"dur\":3"), "stall span is 3 cycles: {json}");
        assert!(json.contains("\"out_iface\":3"), "{json}");
        // Balanced braces/brackets — the cheap structural check; full JSON
        // validation happens in the stats_json integration suite.
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes, "{json}");
    }

    #[test]
    fn chrome_finish_closes_open_spans() {
        let mut chrome = ChromeTracer::new(1);
        chrome.event(&TraceEvent::StallBegin { cycle: 3 });
        chrome.event(&TraceEvent::DatagramBegin { cycle: 1, ptr: 8, iface: 0 });
        chrome.event(&TraceEvent::FaultStallBegin { cycle: 5 });
        let json = chrome.finish(10);
        assert!(json.contains("rtu stall"), "{json}");
        assert!(json.contains("in flight at end"), "{json}");
        assert!(json.contains("injected fault"), "{json}");
    }

    #[test]
    fn fault_spans_land_on_their_own_row() {
        let mut chrome = ChromeTracer::new(2);
        chrome.event(&TraceEvent::FaultStallBegin { cycle: 4 });
        chrome.event(&TraceEvent::FaultStallEnd { cycle: 6 });
        let json = chrome.finish(6);
        assert!(json.contains("\"name\":\"fault-stall\""), "{json}");
        assert!(json.contains("\"name\":\"injected fault\",\"ph\":\"X\""), "{json}");
        // 2 buses → fault row is tid 4 (after rtu-stall and datagrams).
        assert!(json.contains("\"tid\":4,\"ts\":4,\"dur\":2"), "{json}");
    }

    #[test]
    fn fault_replay_counts_stolen_cycles() {
        let events = [
            TraceEvent::FaultStallBegin { cycle: 2 },
            TraceEvent::FaultStallEnd { cycle: 5 },
            TraceEvent::FaultStallBegin { cycle: 9 }, // never closed
        ];
        let counters = TraceCounters::from_events(&events);
        assert_eq!(counters.injected_stall_cycles, 3);
        assert_eq!(counters.stall_cycles, 0);
    }
}
