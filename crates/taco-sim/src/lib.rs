#![warn(missing_docs)]

//! Cycle-accurate simulator for TACO transport-triggered protocol
//! processors.
//!
//! This crate is the Rust equivalent of the paper's SystemC simulation
//! model: it executes a scheduled TTA [`Program`](taco_isa::Program) on an
//! architecture instance ([`MachineConfig`](taco_isa::MachineConfig)) and
//! reports "functional correctness information as well as the total cycle
//! count of the application running on the particular architecture
//! instance" — plus the bus-utilisation figures of the paper's Table 1.
//!
//! * [`Processor`] — the machine: interconnection network controller with
//!   guard bits, data buses, the FU library of Fig. 2 (Matcher, Comparator,
//!   Counter, Checksum, Shifter, Masker, MMU, Routing Table Unit, Local
//!   Info Unit, iPPU, oPPU, register file) and word-addressed data memory;
//! * [`DataMemory`] — the main memory datagrams are copied into;
//! * [`rtu`] — the pluggable Routing Table Unit backend (the CAM model
//!   plugs in here);
//! * [`SimStats`] — cycle counts, stall counts, per-FU trigger counts and
//!   dynamic bus utilisation.
//!
//! # Examples
//!
//! ```
//! use taco_isa::{asm, MachineConfig};
//! use taco_sim::Processor;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Sum 10+20+30 with the Counter FU.
//! let mut prog = asm::parse(
//!     "0 -> cnt0.tset\n\
//!      10 -> cnt0.tadd\n\
//!      20 -> cnt0.tadd\n\
//!      30 -> cnt0.tadd\n\
//!      cnt0.r -> regs0.r0\n",
//! )?;
//! prog.resolve_labels().map_err(|l| format!("undefined label {l}"))?;
//! let mut cpu = Processor::new(MachineConfig::one_bus_one_fu(), prog)?;
//! cpu.run(100)?;
//! assert_eq!(cpu.reg(0), 60);
//! # Ok(())
//! # }
//! ```

pub mod coherence;
pub mod error;
pub mod memory;
pub mod multicore;
pub mod processor;
pub mod rtu;
pub mod sched;
pub mod stats;
pub mod trace;
pub mod units;

pub use coherence::{CoherenceStats, LineState};
pub use error::SimError;
pub use memory::DataMemory;
pub use multicore::MulticoreSim;
pub use processor::{
    FaultInjector, NoFaults, PeriodicStall, Processor, StepOutcome, Trace, DEFAULT_MEMORY_WORDS,
};
pub use rtu::{MapRtu, NullRtu, RtuBackend, RtuConfig, RtuResult};
pub use sched::StepMode;
pub use stats::SimStats;
pub use trace::{ChromeTracer, NullTracer, RingTracer, TraceCounters, TraceEvent, Tracer};
