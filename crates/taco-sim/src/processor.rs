//! The cycle-accurate TACO processor model.
//!
//! [`Processor`] executes a scheduled [`Program`] against a
//! [`MachineConfig`] exactly one instruction word per cycle:
//!
//! 1. **read phase** — every occupied bus slot evaluates its guard against
//!    the FU state at the start of the cycle and, if it passes, samples its
//!    source (results latched in earlier cycles, register values, or an
//!    immediate);
//! 2. **write phase** — operand and register writes land, then triggers
//!    fire (each TACO FU completes its operation within the cycle, so its
//!    result and guard bits are visible from the next cycle on);
//! 3. **PC update** — a move into `nc0.pc` redirects control; otherwise the
//!    PC advances.  Falling off the end of the program (or jumping exactly
//!    to `len`) halts cleanly.
//!
//! The only multi-cycle citizen is the Routing Table Unit: its backend (a
//! CAM in the paper's third case) answers after a configurable latency, and
//! any read of an RTU result or guard before the latency has elapsed stalls
//! the whole processor — the hardware interlock that lets the same
//! microcode run at any clock/CAM-latency ratio.

use std::collections::VecDeque;
use std::sync::Arc;

use taco_isa::{FuKind, FuRef, Instruction, MachineConfig, PortDir, PortRef, Program, Source};

use crate::error::SimError;
use crate::memory::DataMemory;
use crate::rtu::{RtuConfig, RtuResult};
use crate::sched::{self, DDst, DGuard, DSrc, DTrig, DecodedProgram, StepMode};
use crate::stats::SimStats;
use crate::trace::{NullTracer, TraceEvent, Tracer};
use crate::units::DatapathFu;

/// Outcome of a single [`Processor::step`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// An instruction executed.
    Executed,
    /// The processor stalled waiting for the RTU.
    Stalled,
    /// The program has halted; no state changed.
    Halted,
}

/// Decides, cycle by cycle, whether a transient hardware fault steals the
/// cycle — modelling bus glitches or FU brown-outs that freeze the
/// interconnection network for a beat without corrupting state.
///
/// The injector is consulted *before* the instruction issues; a stolen
/// cycle behaves exactly like an RTU interlock stall (PC and architectural
/// state untouched) but is accounted separately in
/// [`SimStats::injected_stall_cycles`](crate::SimStats).  Injectors must be
/// deterministic functions of the cycle number for replays to reproduce.
pub trait FaultInjector {
    /// Cheap gate the hot loop checks first; [`NoFaults`] returns `false`
    /// so the entire fault path folds away.
    fn active(&self) -> bool {
        true
    }

    /// Returns `true` if the fault steals `cycle`.
    fn steals_cycle(&mut self, cycle: u64) -> bool;
}

/// The no-fault injector: never steals a cycle.  Monomorphising the step
/// loop with this (as [`Processor::step`] and [`Processor::run`] do) keeps
/// the fault-free path as fast as before the fault subsystem existed —
/// the same discipline [`NullTracer`] applies to tracing.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoFaults;

impl FaultInjector for NoFaults {
    #[inline(always)]
    fn active(&self) -> bool {
        false
    }

    #[inline(always)]
    fn steals_cycle(&mut self, _cycle: u64) -> bool {
        false
    }
}

/// A deterministic periodic stall: steals the first `len` cycles of every
/// `every`-cycle window.  `len` is clamped below `every` so the processor
/// always makes forward progress.
#[derive(Debug, Clone, Copy)]
pub struct PeriodicStall {
    every: u64,
    len: u64,
}

impl PeriodicStall {
    /// Creates a stall pattern stealing `len` of every `every` cycles.
    ///
    /// # Panics
    ///
    /// Panics if `every` is zero.
    pub fn new(every: u64, len: u64) -> Self {
        assert!(every > 0, "stall period must be positive");
        PeriodicStall { every, len: len.min(every - 1) }
    }
}

impl FaultInjector for PeriodicStall {
    fn steals_cycle(&mut self, cycle: u64) -> bool {
        cycle % self.every < self.len
    }
}

#[derive(Debug, Default)]
struct MmuState {
    addr: u32,
    r: u32,
}

#[derive(Debug, Default)]
struct RtuState {
    k: [u32; 3],
    iface: u32,
    nh: u32,
    hit: bool,
    ready_at: u64,
    config: RtuConfig,
}

/// A simulated TACO processor.
///
/// # Examples
///
/// Assemble and run a loop that counts to five:
///
/// ```
/// use taco_isa::{asm, MachineConfig};
/// use taco_sim::Processor;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut prog = asm::parse(
///     "        0 -> cnt0.tset | 5 -> cnt0.stop\n\
///      loop:   1 -> cnt0.tinc\n\
///              !cnt0.done @loop -> nc0.pc\n",
/// )?;
/// prog.resolve_labels().map_err(|l| format!("undefined label {l}"))?;
/// let mut cpu = Processor::new(MachineConfig::three_bus_one_fu(), prog)?;
/// let stats = cpu.run(1_000)?;
/// assert_eq!(cpu.fu_result(taco_isa::FuKind::Counter, 0, "r")?, 5);
/// assert!(stats.cycles > 5);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Processor {
    config: MachineConfig,
    program: Arc<Program>,
    decoded: Arc<DecodedProgram>,
    step_mode: StepMode,
    trigger_counts: Vec<u64>,
    pc: usize,
    halted: bool,
    cycle: u64,
    datapath: Vec<(FuRef, DatapathFu)>,
    regs: [u32; 16],
    mem: DataMemory,
    mmus: Vec<MmuState>,
    rtu: RtuState,
    ippu_queue: VecDeque<(u32, u32)>,
    ippu_ptr: u32,
    ippu_iface: u32,
    oppu_iface: u32,
    oppu_out: Vec<(u32, u32)>,
    liu_table: Vec<u32>,
    stats: SimStats,
    trace: Option<Trace>,
    stall_open: bool,
    fault_open: bool,
}

/// A bounded execution trace (see [`Processor::enable_trace`]).
#[derive(Debug, Clone, Default)]
pub struct Trace {
    limit: usize,
    lines: Vec<String>,
    truncated: bool,
}

impl Trace {
    /// The recorded lines, one per executed (or stalled) cycle, oldest
    /// first.
    pub fn lines(&self) -> &[String] {
        &self.lines
    }

    /// Returns `true` if the run outlived the trace buffer.
    pub fn is_truncated(&self) -> bool {
        self.truncated
    }

    fn record(&mut self, line: String) {
        if self.lines.len() < self.limit {
            self.lines.push(line);
        } else {
            self.truncated = true;
        }
    }
}

/// Default data memory size in 32-bit words (256 KiB).
pub const DEFAULT_MEMORY_WORDS: u32 = 65_536;

impl Processor {
    /// Builds a processor for `config` loaded with `program`, with
    /// [`DEFAULT_MEMORY_WORDS`] of data memory.
    ///
    /// # Errors
    ///
    /// * [`SimError::UnresolvedLabel`] if the program still contains label
    ///   sources;
    /// * [`SimError::TooManySlots`] if an instruction is wider than the bus
    ///   count;
    /// * [`SimError::InvalidFuIndex`] if the program references FU instances
    ///   the configuration lacks.
    pub fn new(config: MachineConfig, program: Program) -> Result<Self, SimError> {
        Self::with_memory_shared(config, Arc::new(program), DEFAULT_MEMORY_WORDS)
    }

    /// Like [`Processor::new`] with an explicit memory size in words.
    ///
    /// # Errors
    ///
    /// See [`Processor::new`].
    pub fn with_memory(
        config: MachineConfig,
        program: Program,
        memory_words: u32,
    ) -> Result<Self, SimError> {
        Self::with_memory_shared(config, Arc::new(program), memory_words)
    }

    /// Like [`Processor::new`] but sharing an already-built program, so
    /// many processors instantiated from the same microcode (the
    /// cycle-router program cache, the CAM latency fixed point) skip the
    /// per-instance clone.
    ///
    /// # Errors
    ///
    /// See [`Processor::new`].
    pub fn new_shared(config: MachineConfig, program: Arc<Program>) -> Result<Self, SimError> {
        Self::with_memory_shared(config, program, DEFAULT_MEMORY_WORDS)
    }

    /// [`Processor::new_shared`] with an explicit memory size in words.
    ///
    /// # Errors
    ///
    /// See [`Processor::new`].
    pub fn with_memory_shared(
        config: MachineConfig,
        program: Arc<Program>,
        memory_words: u32,
    ) -> Result<Self, SimError> {
        validate(&config, &program)?;
        let config_mmu_ports = config.fu_count(FuKind::Mmu);
        let mut datapath = Vec::new();
        for kind in FuKind::ALL {
            let make: Option<fn() -> DatapathFu> = match kind {
                FuKind::Matcher => Some(DatapathFu::new_matcher),
                FuKind::Comparator => Some(DatapathFu::new_comparator),
                FuKind::Counter => Some(DatapathFu::new_counter),
                FuKind::Checksum => Some(DatapathFu::new_checksum),
                FuKind::Shifter => Some(DatapathFu::new_shifter),
                FuKind::Masker => Some(DatapathFu::new_masker),
                _ => None,
            };
            if let Some(make) = make {
                for i in 0..config.fu_count(kind) {
                    datapath.push((FuRef::new(kind, i), make()));
                }
            }
        }
        datapath.push((FuRef::new(FuKind::Liu, 0), DatapathFu::new_liu(Vec::new())));
        let stats = SimStats { buses: config.buses(), ..SimStats::default() };
        let decoded = Arc::new(sched::decode(&config, &program, &datapath)?);
        let trigger_counts = vec![0; decoded.trigger_fus.len()];
        Ok(Processor {
            config,
            program,
            decoded,
            step_mode: StepMode::default(),
            trigger_counts,
            pc: 0,
            halted: false,
            cycle: 0,
            datapath,
            regs: [0; 16],
            mem: DataMemory::new(memory_words),
            mmus: (0..config_mmu_ports).map(|_| MmuState::default()).collect(),
            rtu: RtuState::default(),
            ippu_queue: VecDeque::new(),
            ippu_ptr: 0,
            ippu_iface: 0,
            oppu_iface: 0,
            oppu_out: Vec::new(),
            liu_table: Vec::new(),
            stats,
            trace: None,
            stall_open: false,
            fault_open: false,
        })
    }

    /// The architecture this processor instantiates.
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    /// The loaded program.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Which step loop [`Processor::run`] and friends use (see
    /// [`StepMode`]); defaults to [`StepMode::env_default`].
    pub fn step_mode(&self) -> StepMode {
        self.step_mode
    }

    /// Selects the step loop for subsequent runs.  Both modes execute the
    /// same cycle semantics — this is a perf/debug switch, not a
    /// behavioural one.
    pub fn set_step_mode(&mut self, mode: StepMode) {
        self.step_mode = mode;
    }

    /// The instantiated datapath FU layout, in decode order (used by the
    /// pre-decoder's tests).
    #[cfg(test)]
    pub(crate) fn datapath_layout(&self) -> &[(FuRef, DatapathFu)] {
        &self.datapath
    }

    /// Data memory (read side).
    pub fn memory(&self) -> &DataMemory {
        &self.mem
    }

    /// Data memory (write side) — for loading datagrams and tables before a
    /// run, as the paper's iPPU does.
    pub fn memory_mut(&mut self) -> &mut DataMemory {
        &mut self.mem
    }

    /// Installs the Routing Table Unit's backend and latency.
    pub fn set_rtu(&mut self, config: RtuConfig) {
        self.rtu.config = config;
    }

    /// Sets the Local Information Unit contents (the router's own
    /// addresses, port count, …).
    pub fn set_local_info(&mut self, table: Vec<u32>) {
        self.liu_table = table.clone();
        if let Ok(DatapathFu::Liu { table: t, .. }) = self.datapath_mut(FuRef::new(FuKind::Liu, 0))
        {
            *t = table;
        }
    }

    /// Queues a pending datagram `(memory pointer, input interface)` at the
    /// iPPU, as a line card would.
    pub fn push_input(&mut self, ptr: u32, iface: u32) {
        self.ippu_queue.push_back((ptr, iface));
    }

    /// Number of datagrams still waiting at the iPPU.
    pub fn pending_inputs(&self) -> usize {
        self.ippu_queue.len()
    }

    /// Datagrams emitted through the oPPU as `(memory pointer, output
    /// interface)` pairs, in emission order.
    pub fn outputs(&self) -> &[(u32, u32)] {
        &self.oppu_out
    }

    /// Removes and returns all oPPU output.
    pub fn drain_outputs(&mut self) -> Vec<(u32, u32)> {
        std::mem::take(&mut self.oppu_out)
    }

    /// Current value of general-purpose register `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= 16`.
    pub fn reg(&self, i: u8) -> u32 {
        self.regs[usize::from(i)]
    }

    /// Sets general-purpose register `i` (test and setup convenience).
    ///
    /// # Panics
    ///
    /// Panics if `i >= 16`.
    pub fn set_reg(&mut self, i: u8, v: u32) {
        self.regs[usize::from(i)] = v;
    }

    /// Reads an FU result register by kind/instance/port, for assertions.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidFuIndex`] for instances the configuration
    /// lacks.
    pub fn fu_result(&self, kind: FuKind, index: u8, port: &str) -> Result<u32, SimError> {
        let fu = FuRef::new(kind, index);
        match kind {
            FuKind::Mmu => Ok(self.mmus[usize::from(index)].r),
            FuKind::Rtu => Ok(match port {
                "iface" => self.rtu.iface,
                _ => self.rtu.nh,
            }),
            FuKind::Ippu => Ok(match port {
                "ptr" => self.ippu_ptr,
                _ => self.ippu_iface,
            }),
            _ => self
                .datapath_ref(fu)
                .map(|d| d.read_result(port))
                .ok_or(SimError::InvalidFuIndex { fu, available: self.config.fu_count(kind) }),
        }
    }

    /// Samples a guard signal, for assertions.
    pub fn guard_value(&self, kind: FuKind, index: u8, signal: &str) -> bool {
        self.guard_bit(FuRef::new(kind, index), signal)
    }

    /// Elapsed cycles.
    pub fn cycles(&self) -> u64 {
        self.cycle
    }

    /// Current program counter.
    pub fn pc(&self) -> usize {
        self.pc
    }

    /// Returns `true` once the program has halted.
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// Statistics collected so far.
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// Turns on execution tracing: every subsequent cycle appends one line
    /// (`c<cycle> pc=<pc>: <executed moves>` with `~` marking squashed
    /// guards and `<stall>` marking RTU stalls), up to `limit` lines.
    pub fn enable_trace(&mut self, limit: usize) {
        self.trace = Some(Trace { limit, ..Trace::default() });
    }

    /// The trace recorded so far, if tracing is enabled.
    pub fn trace(&self) -> Option<&Trace> {
        self.trace.as_ref()
    }

    fn datapath_ref(&self, fu: FuRef) -> Option<&DatapathFu> {
        self.datapath.iter().find(|(f, _)| *f == fu).map(|(_, d)| d)
    }

    fn datapath_mut(&mut self, fu: FuRef) -> Result<&mut DatapathFu, SimError> {
        let available = self.config.fu_count(fu.kind);
        self.datapath
            .iter_mut()
            .find(|(f, _)| *f == fu)
            .map(|(_, d)| d)
            .ok_or(SimError::InvalidFuIndex { fu, available })
    }

    fn guard_bit(&self, fu: FuRef, signal: &str) -> bool {
        match fu.kind {
            FuKind::Rtu => self.rtu.hit,
            FuKind::Ippu => !self.ippu_queue.is_empty(),
            _ => self.datapath_ref(fu).map(|d| d.guard(signal)).unwrap_or(false),
        }
    }

    fn read_port(&self, p: PortRef) -> Result<u32, SimError> {
        match p.fu.kind {
            FuKind::Regs => Ok(self.regs[register_index(p)?]),
            FuKind::Mmu => Ok(self.mmus[usize::from(p.fu.index)].r),
            FuKind::Rtu => Ok(match p.port {
                "iface" => self.rtu.iface,
                _ => self.rtu.nh,
            }),
            FuKind::Ippu => Ok(match p.port {
                "ptr" => self.ippu_ptr,
                _ => self.ippu_iface,
            }),
            FuKind::Liu => Ok(self.datapath_ref(p.fu).map(|d| d.read_result(p.port)).unwrap_or(0)),
            _ => self.datapath_ref(p.fu).map(|d| d.read_result(p.port)).ok_or(
                SimError::InvalidFuIndex { fu: p.fu, available: self.config.fu_count(p.fu.kind) },
            ),
        }
    }

    /// Returns `true` if the instruction must stall for the RTU this cycle.
    fn must_stall(&self, ins: &Instruction) -> bool {
        if self.cycle >= self.rtu.ready_at {
            return false;
        }
        ins.moves().any(|m| {
            let reads_rtu = matches!(&m.src, Source::Port(p) if p.fu.kind == FuKind::Rtu);
            let guards_rtu = m.guard.as_ref().is_some_and(|g| g.fu.kind == FuKind::Rtu);
            reads_rtu || guards_rtu
        })
    }

    /// Executes one cycle.
    ///
    /// # Errors
    ///
    /// Propagates memory faults, port/PC write conflicts and out-of-range
    /// jumps.
    pub fn step(&mut self) -> Result<StepOutcome, SimError> {
        self.step_with(&mut NullTracer)
    }

    /// Executes one cycle, reporting cycle-level events to `tracer`.
    ///
    /// # Errors
    ///
    /// See [`Processor::step`].
    pub fn step_traced(&mut self, tracer: &mut dyn Tracer) -> Result<StepOutcome, SimError> {
        self.step_with(tracer)
    }

    /// The real step loop, generic over the tracer so the untraced entry
    /// points ([`Processor::step`], [`Processor::run`]) monomorphise with
    /// [`NullTracer`] and pay nothing for instrumentation.
    fn step_with<T: Tracer + ?Sized>(&mut self, tracer: &mut T) -> Result<StepOutcome, SimError> {
        self.step_with_faults(tracer, &mut NoFaults)
    }

    /// [`Processor::step_with`] with a fault injector consulted first; the
    /// fault-free entry points monomorphise with [`NoFaults`], whose
    /// `active()` is a constant `false`, so the injected branch disappears
    /// from the hot loop.
    fn step_with_faults<T: Tracer + ?Sized, F: FaultInjector + ?Sized>(
        &mut self,
        tracer: &mut T,
        faults: &mut F,
    ) -> Result<StepOutcome, SimError> {
        if self.halted {
            return Ok(StepOutcome::Halted);
        }
        if self.pc >= self.program.instructions.len() {
            self.halted = true;
            return Ok(StepOutcome::Halted);
        }
        if faults.active() {
            if faults.steals_cycle(self.cycle) {
                if !self.fault_open {
                    self.fault_open = true;
                    tracer.event(&TraceEvent::FaultStallBegin { cycle: self.cycle });
                }
                if let Some(t) = &mut self.trace {
                    t.record(format!("c{:04} pc={:03}: <stall: fault>", self.cycle, self.pc));
                }
                self.cycle += 1;
                self.stats.cycles += 1;
                self.stats.injected_stall_cycles += 1;
                return Ok(StepOutcome::Stalled);
            }
            if self.fault_open {
                self.fault_open = false;
                tracer.event(&TraceEvent::FaultStallEnd { cycle: self.cycle });
            }
        }
        let ins = self.program.instructions[self.pc].clone();

        if self.must_stall(&ins) {
            if !self.stall_open {
                self.stall_open = true;
                tracer.event(&TraceEvent::StallBegin { cycle: self.cycle });
            }
            if let Some(t) = &mut self.trace {
                t.record(format!("c{:04} pc={:03}: <stall: rtu busy>", self.cycle, self.pc));
            }
            self.cycle += 1;
            self.stats.cycles += 1;
            self.stats.stall_cycles += 1;
            return Ok(StepOutcome::Stalled);
        }
        if self.stall_open {
            self.stall_open = false;
            tracer.event(&TraceEvent::StallEnd { cycle: self.cycle });
        }

        // --- read phase ---------------------------------------------------
        struct PendingWrite {
            dst: PortRef,
            value: u32,
        }
        let mut trace_line =
            self.trace.as_ref().map(|_| format!("c{:04} pc={:03}:", self.cycle, self.pc));
        let mut writes: Vec<PendingWrite> = Vec::new();
        for (bus, mv) in ins.slots.iter().enumerate().filter_map(|(b, s)| Some((b, s.as_ref()?))) {
            let pass = match &mv.guard {
                None => true,
                Some(g) => self.guard_bit(g.fu, g.signal) != g.negate,
            };
            if let Some(line) = &mut trace_line {
                line.push_str(&format!(" {}{}{}", if pass { "" } else { "~" }, mv, ";"));
            }
            if !pass {
                self.stats.moves_squashed += 1;
                tracer.event(&TraceEvent::MoveSquashed {
                    cycle: self.cycle,
                    bus: bus as u8,
                    pc: self.pc as u32,
                });
                continue;
            }
            let value = match &mv.src {
                Source::Imm(v) => *v,
                Source::Port(p) => self.read_port(*p)?,
                Source::Label(l) => return Err(SimError::UnresolvedLabel(l.clone())),
            };
            self.stats.moves_executed += 1;
            tracer.event(&TraceEvent::MoveExecuted {
                cycle: self.cycle,
                bus: bus as u8,
                pc: self.pc as u32,
            });
            writes.push(PendingWrite { dst: mv.dst, value });
        }

        // Conflict detection.
        for (i, w) in writes.iter().enumerate() {
            if writes[..i].iter().any(|e| e.dst == w.dst) {
                return Err(if w.dst.fu.kind == FuKind::Nc {
                    SimError::DoublePcWrite { cycle: self.cycle }
                } else {
                    SimError::PortConflict { port: w.dst, cycle: self.cycle }
                });
            }
        }

        // --- write phase: operands and registers first, then triggers -----
        let mut jump: Option<u32> = None;
        for w in writes.iter().filter(|w| !w.dst.is_trigger()) {
            self.write_plain(w.dst, w.value)?;
        }
        for w in writes.iter().filter(|w| w.dst.is_trigger()) {
            if w.dst.fu.kind == FuKind::Nc {
                jump = Some(w.value);
            } else {
                tracer.event(&TraceEvent::FuTriggered { cycle: self.cycle, fu: w.dst.fu });
                self.fire_trigger(w.dst, w.value, tracer)?;
                // Results become architecturally visible the next cycle —
                // except RTU lookups, which retire when the interlock opens.
                let retire = if w.dst.fu.kind == FuKind::Rtu {
                    self.rtu.ready_at.max(self.cycle + 1)
                } else {
                    self.cycle + 1
                };
                tracer.event(&TraceEvent::FuRetired { cycle: retire, fu: w.dst.fu });
                *self.stats.fu_triggers.entry(w.dst.fu.kind).or_insert(0) += 1;
                *self.stats.fu_instance_triggers.entry(w.dst.fu).or_insert(0) += 1;
            }
        }

        if let (Some(t), Some(line)) = (&mut self.trace, trace_line) {
            t.record(line);
        }

        // --- PC update -----------------------------------------------------
        self.cycle += 1;
        self.stats.cycles += 1;
        let len = self.program.instructions.len();
        match jump {
            Some(t) if (t as usize) < len => self.pc = t as usize,
            Some(t) if t as usize == len => self.halted = true,
            Some(t) => return Err(SimError::JumpOutOfRange { target: t, len }),
            None => {
                self.pc += 1;
                if self.pc >= len {
                    self.halted = true;
                }
            }
        }
        Ok(StepOutcome::Executed)
    }

    fn write_plain(&mut self, dst: PortRef, value: u32) -> Result<(), SimError> {
        match dst.fu.kind {
            FuKind::Regs => self.regs[register_index(dst)?] = value,
            FuKind::Mmu => self.mmus[usize::from(dst.fu.index)].addr = value,
            FuKind::Rtu => {
                let i = match dst.port {
                    "k0" => 0,
                    "k1" => 1,
                    _ => 2,
                };
                self.rtu.k[i] = value;
            }
            FuKind::Oppu => self.oppu_iface = value,
            _ => self.datapath_mut(dst.fu)?.write_operand(dst.port, value),
        }
        Ok(())
    }

    fn fire_trigger<T: Tracer + ?Sized>(
        &mut self,
        dst: PortRef,
        value: u32,
        tracer: &mut T,
    ) -> Result<(), SimError> {
        match dst.fu.kind {
            FuKind::Mmu => {
                let port_index = usize::from(dst.fu.index);
                let addr = self.mmus[port_index].addr;
                match dst.port {
                    "tread" => {
                        self.mmus[port_index].r = self.mem.read(addr)?;
                    }
                    _ => {
                        self.mem.write(addr, value)?;
                    }
                }
            }
            FuKind::Rtu => {
                let key = [self.rtu.k[0], self.rtu.k[1], self.rtu.k[2], value];
                match self.rtu.config.backend.lookup(key) {
                    Some(RtuResult { iface, handle }) => {
                        self.rtu.iface = iface;
                        self.rtu.nh = handle;
                        self.rtu.hit = true;
                    }
                    None => {
                        self.rtu.iface = u32::MAX;
                        self.rtu.nh = 0;
                        self.rtu.hit = false;
                    }
                }
                self.rtu.ready_at = self.cycle + u64::from(self.rtu.config.latency);
            }
            FuKind::Ippu => {
                if let Some((ptr, iface)) = self.ippu_queue.pop_front() {
                    self.ippu_ptr = ptr;
                    self.ippu_iface = iface;
                    tracer.event(&TraceEvent::DatagramBegin { cycle: self.cycle, ptr, iface });
                }
            }
            FuKind::Oppu => {
                tracer.event(&TraceEvent::DatagramEnd {
                    cycle: self.cycle,
                    ptr: value,
                    iface: self.oppu_iface,
                });
                self.oppu_out.push((value, self.oppu_iface));
            }
            _ => self.datapath_mut(dst.fu)?.trigger(dst.port, value),
        }
        Ok(())
    }

    /// Runs until the program halts.
    ///
    /// # Errors
    ///
    /// Everything [`Processor::step`] can raise, plus
    /// [`SimError::Watchdog`] if the program has not halted within `budget`
    /// cycles.
    pub fn run(&mut self, budget: u64) -> Result<SimStats, SimError> {
        self.run_with(budget, &mut NullTracer)
    }

    /// Runs until the program halts, reporting cycle-level events to
    /// `tracer`.
    ///
    /// # Errors
    ///
    /// See [`Processor::run`].
    pub fn run_traced(
        &mut self,
        budget: u64,
        tracer: &mut dyn Tracer,
    ) -> Result<SimStats, SimError> {
        self.run_with(budget, tracer)
    }

    fn run_with<T: Tracer + ?Sized>(
        &mut self,
        budget: u64,
        tracer: &mut T,
    ) -> Result<SimStats, SimError> {
        self.run_with_faults(budget, tracer, &mut NoFaults)
    }

    fn run_with_faults<T: Tracer + ?Sized, F: FaultInjector + ?Sized>(
        &mut self,
        budget: u64,
        tracer: &mut T,
        faults: &mut F,
    ) -> Result<SimStats, SimError> {
        // The text trace formats each instruction word per cycle, which
        // only the interpretive loop can do; everything else (tracers,
        // fault injectors) runs compiled.
        if self.step_mode == StepMode::Compiled && self.trace.is_none() {
            return self.run_compiled_with(budget, tracer, faults);
        }
        let start = self.cycle;
        while !self.halted {
            if self.cycle - start >= budget {
                return Err(SimError::Watchdog { budget });
            }
            self.step_with_faults(tracer, faults)?;
        }
        Ok(self.stats.clone())
    }

    /// Runs the pre-decoded schedule to completion, then folds the flat
    /// per-slot trigger counters into the `BTreeMap` statistics — on every
    /// exit path, so stats agree with the interpretive loop even when the
    /// run errors out mid-cycle.
    fn run_compiled_with<T: Tracer + ?Sized, F: FaultInjector + ?Sized>(
        &mut self,
        budget: u64,
        tracer: &mut T,
        faults: &mut F,
    ) -> Result<SimStats, SimError> {
        let result = self.compiled_loop(budget, tracer, faults);
        self.fold_trigger_counts();
        result?;
        Ok(self.stats.clone())
    }

    fn fold_trigger_counts(&mut self) {
        let decoded = Arc::clone(&self.decoded);
        for (slot, fu) in decoded.trigger_fus.iter().enumerate() {
            let n = std::mem::take(&mut self.trigger_counts[slot]);
            if n > 0 {
                *self.stats.fu_triggers.entry(fu.kind).or_insert(0) += n;
                *self.stats.fu_instance_triggers.entry(*fu).or_insert(0) += n;
            }
        }
    }

    /// The compiled step loop: a walk over the flat [`DecodedProgram`]
    /// built at construction.  Replays the interpretive loop
    /// ([`Processor::step_with_faults`]) phase for phase — same stall and
    /// fault bookkeeping, same read/conflict/write ordering, same trace
    /// events in the same order — with all decoding already done.
    fn compiled_loop<T: Tracer + ?Sized, F: FaultInjector + ?Sized>(
        &mut self,
        budget: u64,
        tracer: &mut T,
        faults: &mut F,
    ) -> Result<(), SimError> {
        let decoded = Arc::clone(&self.decoded);
        let start = self.cycle;
        let len = self.program.instructions.len();
        let mut writes: Vec<(DDst, u32, u8)> = Vec::with_capacity(usize::from(self.config.buses()));
        while !self.halted {
            if self.cycle - start >= budget {
                return Err(SimError::Watchdog { budget });
            }
            if self.pc >= len {
                self.halted = true;
                break;
            }
            if faults.active() {
                if faults.steals_cycle(self.cycle) {
                    if !self.fault_open {
                        self.fault_open = true;
                        tracer.event(&TraceEvent::FaultStallBegin { cycle: self.cycle });
                    }
                    self.cycle += 1;
                    self.stats.cycles += 1;
                    self.stats.injected_stall_cycles += 1;
                    continue;
                }
                if self.fault_open {
                    self.fault_open = false;
                    tracer.event(&TraceEvent::FaultStallEnd { cycle: self.cycle });
                }
            }
            let meta = decoded.ins[self.pc];

            if meta.rtu_sensitive && self.cycle < self.rtu.ready_at {
                if !self.stall_open {
                    self.stall_open = true;
                    tracer.event(&TraceEvent::StallBegin { cycle: self.cycle });
                }
                self.cycle += 1;
                self.stats.cycles += 1;
                self.stats.stall_cycles += 1;
                continue;
            }
            if self.stall_open {
                self.stall_open = false;
                tracer.event(&TraceEvent::StallEnd { cycle: self.cycle });
            }

            // --- read phase -----------------------------------------------
            writes.clear();
            for mv in &decoded.moves[meta.start as usize..meta.end as usize] {
                let pass = match mv.guard {
                    DGuard::Always => true,
                    DGuard::Rtu { negate } => self.rtu.hit != negate,
                    DGuard::IppuPending { negate } => self.ippu_queue.is_empty() == negate,
                    DGuard::Datapath { index, signal, negate } => {
                        self.datapath[usize::from(index)].1.guard(signal) != negate
                    }
                };
                if !pass {
                    self.stats.moves_squashed += 1;
                    tracer.event(&TraceEvent::MoveSquashed {
                        cycle: self.cycle,
                        bus: mv.bus,
                        pc: self.pc as u32,
                    });
                    continue;
                }
                let value = match mv.src {
                    DSrc::Imm(v) => v,
                    DSrc::Reg(i) => self.regs[usize::from(i)],
                    DSrc::MmuResult(i) => self.mmus[usize::from(i)].r,
                    DSrc::RtuIface => self.rtu.iface,
                    DSrc::RtuNh => self.rtu.nh,
                    DSrc::IppuPtr => self.ippu_ptr,
                    DSrc::IppuIface => self.ippu_iface,
                    DSrc::Datapath(i, port) => self.datapath[usize::from(i)].1.read_result(port),
                };
                self.stats.moves_executed += 1;
                tracer.event(&TraceEvent::MoveExecuted {
                    cycle: self.cycle,
                    bus: mv.bus,
                    pc: self.pc as u32,
                });
                writes.push((mv.dst, value, mv.bus));
            }

            // Conflict detection — only instructions with statically
            // aliased destinations can conflict dynamically, so the scan is
            // skipped for the (vast) conflict-free majority.
            if meta.may_conflict {
                for (i, w) in writes.iter().enumerate() {
                    if writes[..i].iter().any(|e| e.0 == w.0) {
                        return Err(if matches!(w.0, DDst::Jump(_)) {
                            SimError::DoublePcWrite { cycle: self.cycle }
                        } else {
                            // Recover the original PortRef for the error
                            // from the instruction word (cold path).
                            let port = self.program.instructions[self.pc].slots[usize::from(w.2)]
                                .as_ref()
                                .expect("decoded move maps to an occupied slot")
                                .dst;
                            SimError::PortConflict { port, cycle: self.cycle }
                        });
                    }
                }
            }

            // --- write phase: operands and registers first, then triggers -
            let mut jump: Option<u32> = None;
            for &(dst, value, _) in writes.iter().filter(|w| !w.0.is_trigger()) {
                match dst {
                    DDst::Reg { idx, .. } => self.regs[usize::from(idx)] = value,
                    DDst::MmuAddr(i) => self.mmus[usize::from(i)].addr = value,
                    DDst::RtuKey { k, .. } => self.rtu.k[usize::from(k)] = value,
                    DDst::OppuIface(_) => self.oppu_iface = value,
                    DDst::DatapathOperand(i, port) => {
                        self.datapath[usize::from(i)].1.write_operand(port, value);
                    }
                    DDst::Jump(_) | DDst::Trigger { .. } => unreachable!(),
                }
            }
            for &(dst, value, _) in writes.iter().filter(|w| w.0.is_trigger()) {
                let (kind, slot) = match dst {
                    DDst::Jump(_) => {
                        jump = Some(value);
                        continue;
                    }
                    DDst::Trigger { kind, slot } => (kind, usize::from(slot)),
                    _ => unreachable!(),
                };
                let fu = decoded.trigger_fus[slot];
                tracer.event(&TraceEvent::FuTriggered { cycle: self.cycle, fu });
                match kind {
                    DTrig::MmuRead(i) => {
                        let addr = self.mmus[usize::from(i)].addr;
                        self.mmus[usize::from(i)].r = self.mem.read(addr)?;
                    }
                    DTrig::MmuWrite(i) => {
                        let addr = self.mmus[usize::from(i)].addr;
                        self.mem.write(addr, value)?;
                    }
                    DTrig::Rtu(_) => {
                        let key = [self.rtu.k[0], self.rtu.k[1], self.rtu.k[2], value];
                        match self.rtu.config.backend.lookup(key) {
                            Some(RtuResult { iface, handle }) => {
                                self.rtu.iface = iface;
                                self.rtu.nh = handle;
                                self.rtu.hit = true;
                            }
                            None => {
                                self.rtu.iface = u32::MAX;
                                self.rtu.nh = 0;
                                self.rtu.hit = false;
                            }
                        }
                        self.rtu.ready_at = self.cycle + u64::from(self.rtu.config.latency);
                    }
                    DTrig::IppuPop(_) => {
                        if let Some((ptr, iface)) = self.ippu_queue.pop_front() {
                            self.ippu_ptr = ptr;
                            self.ippu_iface = iface;
                            tracer.event(&TraceEvent::DatagramBegin {
                                cycle: self.cycle,
                                ptr,
                                iface,
                            });
                        }
                    }
                    DTrig::OppuEmit(_) => {
                        tracer.event(&TraceEvent::DatagramEnd {
                            cycle: self.cycle,
                            ptr: value,
                            iface: self.oppu_iface,
                        });
                        self.oppu_out.push((value, self.oppu_iface));
                    }
                    DTrig::Datapath(i, port) => {
                        self.datapath[usize::from(i)].1.trigger(port, value);
                    }
                }
                let retire = if matches!(kind, DTrig::Rtu(_)) {
                    self.rtu.ready_at.max(self.cycle + 1)
                } else {
                    self.cycle + 1
                };
                tracer.event(&TraceEvent::FuRetired { cycle: retire, fu });
                self.trigger_counts[slot] += 1;
            }

            // --- PC update -------------------------------------------------
            self.cycle += 1;
            self.stats.cycles += 1;
            match jump {
                Some(t) if (t as usize) < len => self.pc = t as usize,
                Some(t) if t as usize == len => self.halted = true,
                Some(t) => return Err(SimError::JumpOutOfRange { target: t, len }),
                None => {
                    self.pc += 1;
                    if self.pc >= len {
                        self.halted = true;
                    }
                }
            }
        }
        Ok(())
    }

    /// Runs until the program halts, with `faults` injecting transient
    /// stall cycles (see [`FaultInjector`]).
    ///
    /// # Errors
    ///
    /// See [`Processor::run`].
    pub fn run_fault_injected(
        &mut self,
        budget: u64,
        faults: &mut dyn FaultInjector,
    ) -> Result<SimStats, SimError> {
        self.run_with_faults(budget, &mut NullTracer, faults)
    }

    /// [`Processor::run_fault_injected`] with a tracer attached, so fault
    /// spans appear alongside the normal cycle-level events.
    ///
    /// # Errors
    ///
    /// See [`Processor::run`].
    pub fn run_fault_traced(
        &mut self,
        budget: u64,
        faults: &mut dyn FaultInjector,
        tracer: &mut dyn Tracer,
    ) -> Result<SimStats, SimError> {
        self.run_with_faults(budget, tracer, faults)
    }
}

/// Maps a register-file port (`r0`..`r15`) to its index.
///
/// `PortRef::new` canonicalises against the register vocabulary, so this
/// can only fail for struct-literal `PortRef`s carrying a bogus name —
/// exactly the malformed-microcode case [`validate`] screens for.
pub(crate) fn register_index(p: PortRef) -> Result<usize, SimError> {
    p.port
        .strip_prefix('r')
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|&i| i < 16)
        .ok_or(SimError::InvalidPort { port: p, why: "not a register r0..r15" })
}

/// Validates `program` against `config` (slot widths, FU instance indices,
/// resolved labels, port vocabulary and directions, guard signals).
///
/// Screening every port and guard here is what lets the execution core
/// return structured [`SimError`]s instead of panicking: microcode built by
/// hand (bypassing the assembler and `PortRef::new`) is rejected at
/// construction with [`SimError::InvalidPort`] / [`SimError::InvalidGuard`].
fn validate(config: &MachineConfig, program: &Program) -> Result<(), SimError> {
    for (idx, ins) in program.instructions.iter().enumerate() {
        if ins.slots.len() > usize::from(config.buses()) {
            return Err(SimError::TooManySlots {
                instruction: idx,
                slots: ins.slots.len(),
                buses: config.buses(),
            });
        }
        for mv in ins.moves() {
            let check = |fu: FuRef| -> Result<(), SimError> {
                let available = config.fu_count(fu.kind);
                if fu.index >= available {
                    return Err(SimError::InvalidFuIndex { fu, available });
                }
                Ok(())
            };
            check(mv.dst.fu)?;
            match mv.dst.fu.kind.find_port(mv.dst.port) {
                None => {
                    return Err(SimError::InvalidPort {
                        port: mv.dst,
                        why: "no such port on this FU",
                    });
                }
                Some(spec) if spec.dir == PortDir::Result => {
                    return Err(SimError::InvalidPort {
                        port: mv.dst,
                        why: "result ports cannot be written",
                    });
                }
                Some(_) => {}
            }
            if let Source::Port(p) = &mv.src {
                check(p.fu)?;
                match p.fu.kind.find_port(p.port) {
                    None => {
                        return Err(SimError::InvalidPort {
                            port: *p,
                            why: "no such port on this FU",
                        });
                    }
                    Some(spec) if spec.dir == PortDir::Operand || spec.dir == PortDir::Trigger => {
                        return Err(SimError::InvalidPort {
                            port: *p,
                            why: "operand/trigger ports cannot be read",
                        });
                    }
                    Some(_) => {}
                }
            }
            if let Some(g) = &mv.guard {
                check(g.fu)?;
                if !g.fu.kind.has_guard(g.signal) {
                    return Err(SimError::InvalidGuard { fu: g.fu, signal: g.signal });
                }
            }
            if let Source::Label(l) = &mv.src {
                return Err(SimError::UnresolvedLabel(l.clone()));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use taco_isa::asm;

    fn load(text: &str, config: MachineConfig) -> Processor {
        let mut prog = asm::parse(text).unwrap();
        prog.resolve_labels().unwrap();
        Processor::new(config, prog).unwrap()
    }

    #[test]
    fn straight_line_immediates() {
        let mut p = load("7 -> regs0.r0\n9 -> regs0.r1\n", MachineConfig::new(1));
        p.run(10).unwrap();
        assert_eq!((p.reg(0), p.reg(1)), (7, 9));
        assert_eq!(p.cycles(), 2);
        assert!(p.is_halted());
    }

    #[test]
    fn counting_loop_terminates() {
        let mut p = load(
            "0 -> cnt0.tset | 5 -> cnt0.stop\nloop: 1 -> cnt0.tinc\n!cnt0.done @loop -> nc0.pc\n",
            MachineConfig::new(3),
        );
        let stats = p.run(100).unwrap();
        assert_eq!(p.fu_result(FuKind::Counter, 0, "r").unwrap(), 5);
        // 1 setup + 5 × (inc + branch) cycles.
        assert_eq!(stats.cycles, 11);
        assert_eq!(stats.triggers(FuKind::Counter), 6);
    }

    #[test]
    fn result_visible_next_cycle_not_same() {
        // Trigger and read packed into one instruction on different buses:
        // the read sees the *old* result.
        let mut p = load("9 -> cnt0.tset | cnt0.r -> regs0.r0\n", MachineConfig::new(2));
        p.run(10).unwrap();
        assert_eq!(p.reg(0), 0); // old value
        assert_eq!(p.fu_result(FuKind::Counter, 0, "r").unwrap(), 9);
    }

    #[test]
    fn guard_sees_state_from_cycle_start() {
        // cnt set to stop value and guarded move in the same cycle: the
        // guard must not see the new count yet.
        let mut p = load(
            "3 -> cnt0.stop\n3 -> cnt0.tset | ?cnt0.done 1 -> regs0.r0\n?cnt0.done 2 -> regs0.r1\n",
            MachineConfig::new(2),
        );
        p.run(10).unwrap();
        assert_eq!(p.reg(0), 0); // squashed: done was still false
        assert_eq!(p.reg(1), 2); // one cycle later it is true
        assert_eq!(p.stats().moves_squashed, 1);
    }

    #[test]
    fn memory_read_write_via_mmu() {
        let mut p = load(
            "16 -> mmu0.addr\n77 -> mmu0.twrite\n16 -> mmu0.addr\n0 -> mmu0.tread\nmmu0.r -> regs0.r2\n",
            MachineConfig::new(1),
        );
        p.run(10).unwrap();
        assert_eq!(p.reg(2), 77);
        assert_eq!(p.memory().read(16).unwrap(), 77);
    }

    #[test]
    fn memory_fault_surfaces() {
        let mut prog = asm::parse("0 -> mmu0.tread\n").unwrap();
        prog.resolve_labels().unwrap();
        let mut p = Processor::with_memory(MachineConfig::new(1), prog, 0).unwrap();
        assert!(matches!(p.run(10), Err(SimError::MemoryOutOfBounds { .. })));
    }

    #[test]
    fn ippu_and_oppu_flow() {
        let mut p = load(
            "0 -> ippu0.tpop\nippu0.iface -> oppu0.iface\nippu0.ptr -> oppu0.t\n",
            MachineConfig::new(1),
        );
        p.push_input(0x100, 2);
        assert_eq!(p.pending_inputs(), 1);
        p.run(10).unwrap();
        assert_eq!(p.outputs(), &[(0x100, 2)]);
        assert_eq!(p.pending_inputs(), 0);
    }

    #[test]
    fn ippu_pending_guard() {
        let mut p = load(
            "?ippu0.pending 1 -> regs0.r0\n0 -> ippu0.tpop\n?ippu0.pending 1 -> regs0.r1\n",
            MachineConfig::new(1),
        );
        p.push_input(0x40, 0);
        p.run(10).unwrap();
        assert_eq!(p.reg(0), 1); // something was pending
        assert_eq!(p.reg(1), 0); // queue drained
    }

    #[test]
    fn rtu_lookup_with_stall() {
        use crate::rtu::{MapRtu, RtuResult};
        let mut backend = MapRtu::new();
        backend.insert([1, 2, 3, 4], RtuResult { iface: 9, handle: 1 });
        let mut p = load(
            "1 -> rtu0.k0\n2 -> rtu0.k1\n3 -> rtu0.k2\n4 -> rtu0.t\nrtu0.iface -> regs0.r0\n",
            MachineConfig::new(1),
        );
        p.set_rtu(RtuConfig::new(Box::new(backend)).with_latency(5));
        let stats = p.run(100).unwrap();
        assert_eq!(p.reg(0), 9);
        assert!(p.guard_value(FuKind::Rtu, 0, "hit"));
        // Trigger at cycle 3 (0-based), ready at 3+5=8; the read would have
        // been cycle 4, so it stalls 4 cycles.
        assert_eq!(stats.stall_cycles, 4);
    }

    #[test]
    fn rtu_miss_clears_hit() {
        let mut p = load("4 -> rtu0.t\n?rtu0.hit 1 -> regs0.r0\n", MachineConfig::new(1));
        p.run(10).unwrap();
        assert_eq!(p.reg(0), 0);
        assert_eq!(p.fu_result(FuKind::Rtu, 0, "iface").unwrap(), u32::MAX);
    }

    #[test]
    fn liu_serves_local_info() {
        let mut p = load("1 -> liu0.t\nliu0.r -> regs0.r0\n", MachineConfig::new(1));
        p.set_local_info(vec![0x11, 0x22, 0x33]);
        p.run(10).unwrap();
        assert_eq!(p.reg(0), 0x22);
    }

    #[test]
    fn jump_to_len_halts_cleanly() {
        let mut p = load("2 -> nc0.pc\n1 -> regs0.r0\n", MachineConfig::new(1));
        p.run(10).unwrap();
        assert_eq!(p.reg(0), 0); // skipped
        assert!(p.is_halted());
    }

    #[test]
    fn jump_past_len_is_error() {
        let mut p = load("3 -> nc0.pc\n", MachineConfig::new(1));
        assert!(matches!(p.run(10), Err(SimError::JumpOutOfRange { target: 3, len: 1 })));
    }

    #[test]
    fn watchdog_fires_on_infinite_loop() {
        let mut p = load("loop: @loop -> nc0.pc\n", MachineConfig::new(1));
        assert_eq!(p.run(50), Err(SimError::Watchdog { budget: 50 }));
    }

    #[test]
    fn port_conflict_detected() {
        let mut p = load("1 -> regs0.r0 | 2 -> regs0.r0\n", MachineConfig::new(2));
        assert!(matches!(p.run(10), Err(SimError::PortConflict { .. })));
    }

    #[test]
    fn double_pc_write_detected() {
        let mut p = load("0 -> nc0.pc | 0 -> nc0.pc\n", MachineConfig::new(2));
        assert!(matches!(p.run(10), Err(SimError::DoublePcWrite { .. })));
    }

    #[test]
    fn validation_rejects_missing_fu() {
        let prog = asm::parse("1 -> mtch2.t\n").unwrap();
        assert!(matches!(
            Processor::new(MachineConfig::new(1), prog),
            Err(SimError::InvalidFuIndex { .. })
        ));
    }

    #[test]
    fn validation_rejects_wide_instruction() {
        let prog = asm::parse("1 -> regs0.r0 | 2 -> regs0.r1\n").unwrap();
        assert!(matches!(
            Processor::new(MachineConfig::new(1), prog),
            Err(SimError::TooManySlots { .. })
        ));
    }

    #[test]
    fn validation_rejects_unresolved_labels() {
        let prog = asm::parse("@nowhere -> nc0.pc\n").unwrap();
        assert!(matches!(
            Processor::new(MachineConfig::new(1), prog),
            Err(SimError::UnresolvedLabel(_))
        ));
    }

    // Malformed microcode built by hand, bypassing the assembler's (and
    // `PortRef::new`'s) vocabulary checks: construction must answer with a
    // structured error, never a panic.
    fn raw_program(mv: taco_isa::Move) -> Program {
        Program { instructions: vec![Instruction::single(mv, 1)], labels: Default::default() }
    }

    #[test]
    fn validation_rejects_unknown_destination_port() {
        let bogus = PortRef { fu: FuRef::new(FuKind::Matcher, 0), port: "bogus" };
        let prog = raw_program(taco_isa::Move::new(1u32, bogus));
        assert_eq!(
            Processor::new(MachineConfig::new(1), prog).err(),
            Some(SimError::InvalidPort { port: bogus, why: "no such port on this FU" })
        );
    }

    #[test]
    fn validation_rejects_writing_a_result_port() {
        let result = PortRef { fu: FuRef::new(FuKind::Matcher, 0), port: "r" };
        let prog = raw_program(taco_isa::Move::new(1u32, result));
        assert_eq!(
            Processor::new(MachineConfig::new(1), prog).err(),
            Some(SimError::InvalidPort { port: result, why: "result ports cannot be written" })
        );
    }

    #[test]
    fn validation_rejects_reading_a_trigger_port() {
        let trigger = PortRef { fu: FuRef::new(FuKind::Matcher, 0), port: "t" };
        let dst = PortRef::new(FuKind::Regs, 0, "r0");
        let prog = raw_program(taco_isa::Move::new(Source::Port(trigger), dst));
        assert_eq!(
            Processor::new(MachineConfig::new(1), prog).err(),
            Some(SimError::InvalidPort {
                port: trigger,
                why: "operand/trigger ports cannot be read"
            })
        );
    }

    #[test]
    fn validation_rejects_unknown_guard_signal() {
        let dst = PortRef::new(FuKind::Regs, 0, "r0");
        let guard =
            taco_isa::Guard { fu: FuRef::new(FuKind::Checksum, 0), signal: "done", negate: false };
        let prog = raw_program(taco_isa::Move::new(1u32, dst).with_guard(guard));
        assert_eq!(
            Processor::new(MachineConfig::new(1), prog).err(),
            Some(SimError::InvalidGuard { fu: FuRef::new(FuKind::Checksum, 0), signal: "done" })
        );
    }

    #[test]
    fn bus_utilization_reported() {
        let mut p = load("1 -> regs0.r0 | 2 -> regs0.r1\n3 -> regs0.r2\n", MachineConfig::new(2));
        let stats = p.run(10).unwrap();
        // 3 moves over 2 cycles × 2 buses.
        assert!((stats.bus_utilization() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn checksum_unit_through_program() {
        let mut p = load(
            "0 -> csum0.tclr\n0x00010203 -> csum0.tadd\ncsum0.r -> regs0.r0\n",
            MachineConfig::new(1),
        );
        p.run(10).unwrap();
        assert_eq!(p.reg(0), (!(0x0001u32 + 0x0203) & 0xffff));
    }
}

#[cfg(test)]
mod multiport_memory_tests {
    use super::*;
    use taco_isa::asm;

    #[test]
    fn two_memory_ports_share_one_array() {
        let mut prog = asm::parse(
            "16 -> mmu0.addr | 17 -> mmu1.addr
             7 -> mmu0.twrite | 9 -> mmu1.twrite
             17 -> mmu0.addr | 16 -> mmu1.addr
             0 -> mmu0.tread | 0 -> mmu1.tread
             mmu0.r -> regs0.r0 | mmu1.r -> regs0.r1
",
        )
        .unwrap();
        prog.resolve_labels().unwrap();
        let config = MachineConfig::new(2).with_fu_count(FuKind::Mmu, 2);
        let mut p = Processor::new(config, prog).unwrap();
        p.run(100).unwrap();
        // Cross-read: each port sees what the other wrote.
        assert_eq!(p.reg(0), 9);
        assert_eq!(p.reg(1), 7);
        assert_eq!(p.memory().read(16).unwrap(), 7);
        assert_eq!(p.memory().read(17).unwrap(), 9);
    }

    #[test]
    fn second_port_requires_configuration() {
        let prog = asm::parse(
            "1 -> mmu1.addr
",
        )
        .unwrap();
        assert!(matches!(
            Processor::new(MachineConfig::new(1), prog),
            Err(SimError::InvalidFuIndex { .. })
        ));
    }
}

#[cfg(test)]
mod determinism_tests {
    use super::*;
    use taco_isa::asm;

    #[test]
    fn identical_runs_produce_identical_state_and_stats() {
        let text = "0 -> cnt0.tset | 9 -> cnt0.stop
                    loop: 1 -> cnt0.tinc | cnt0.r -> regs0.r1
                    !cnt0.done @loop -> nc0.pc
                    cnt0.r -> regs0.r0
";
        let run = || {
            let mut prog = asm::parse(text).unwrap();
            prog.resolve_labels().unwrap();
            let mut p = Processor::new(MachineConfig::new(3), prog).unwrap();
            p.push_input(0x99, 1);
            p.run(1_000).unwrap();
            (p.stats().clone(), p.reg(0), p.reg(1), p.pending_inputs())
        };
        assert_eq!(run(), run());
    }
}

#[cfg(test)]
mod trace_tests {
    use super::*;
    use taco_isa::asm;

    #[test]
    fn trace_records_moves_squashes_and_stalls() {
        let mut prog = asm::parse(
            "1 -> rtu0.t\n\
             ?rtu0.hit 1 -> regs0.r0 | !rtu0.hit 2 -> regs0.r1\n",
        )
        .unwrap();
        prog.resolve_labels().unwrap();
        let mut p = Processor::new(MachineConfig::new(2), prog).unwrap();
        p.set_rtu(crate::rtu::RtuConfig::default().with_latency(3));
        p.enable_trace(100);
        p.run(100).unwrap();
        let trace = p.trace().unwrap();
        let text = trace.lines().join("\n");
        assert!(text.contains("rtu0.t"), "{text}");
        assert!(text.contains("<stall"), "{text}");
        assert!(text.contains("~?rtu0.hit"), "{text}"); // squashed hit-guarded move
        assert!(!trace.is_truncated());
    }

    #[test]
    fn trace_respects_its_limit() {
        let mut prog = asm::parse("loop: 1 -> cnt0.tinc\n@loop -> nc0.pc\n").unwrap();
        prog.resolve_labels().unwrap();
        let mut p = Processor::new(MachineConfig::new(1), prog).unwrap();
        p.enable_trace(5);
        assert!(matches!(p.run(50), Err(SimError::Watchdog { .. })));
        let trace = p.trace().unwrap();
        assert_eq!(trace.lines().len(), 5);
        assert!(trace.is_truncated());
    }

    #[test]
    fn tracing_off_by_default() {
        let mut prog = asm::parse("1 -> regs0.r0\n").unwrap();
        prog.resolve_labels().unwrap();
        let p = Processor::new(MachineConfig::new(1), prog).unwrap();
        assert!(p.trace().is_none());
    }
}

#[cfg(test)]
mod fault_tests {
    use super::*;
    use crate::trace::{RingTracer, TraceEvent};
    use taco_isa::asm;

    const LOOP: &str = "0 -> cnt0.tset | 9 -> cnt0.stop
                        loop: 1 -> cnt0.tinc
                        !cnt0.done @loop -> nc0.pc
                        cnt0.r -> regs0.r0
";

    fn load(text: &str) -> Processor {
        let mut prog = asm::parse(text).unwrap();
        prog.resolve_labels().unwrap();
        Processor::new(MachineConfig::new(3), prog).unwrap()
    }

    #[test]
    fn injected_stalls_cost_cycles_but_not_correctness() {
        let mut clean = load(LOOP);
        let clean_stats = clean.run(1_000).unwrap();
        let mut faulty = load(LOOP);
        let mut plan = PeriodicStall::new(4, 1);
        let faulty_stats = faulty.run_fault_injected(1_000, &mut plan).unwrap();
        assert_eq!(clean.reg(0), faulty.reg(0)); // same architectural result
        assert!(faulty_stats.injected_stall_cycles > 0);
        assert_eq!(clean_stats.injected_stall_cycles, 0);
        assert_eq!(faulty_stats.cycles, clean_stats.cycles + faulty_stats.injected_stall_cycles);
        assert_eq!(faulty_stats.moves_executed, clean_stats.moves_executed);
    }

    #[test]
    fn periodic_stall_always_makes_progress() {
        let mut p = load(LOOP);
        // len >= every would freeze forever; the clamp must prevent that.
        let mut plan = PeriodicStall::new(3, 99);
        p.run_fault_injected(10_000, &mut plan).unwrap();
        assert!(p.is_halted());
    }

    #[test]
    fn fault_spans_are_balanced_in_the_trace() {
        let mut p = load(LOOP);
        let mut plan = PeriodicStall::new(5, 2);
        let mut ring = RingTracer::new(4096);
        let stats = p.run_fault_traced(1_000, &mut plan, &mut ring).unwrap();
        let begins = ring
            .events()
            .iter()
            .filter(|e| matches!(e, TraceEvent::FaultStallBegin { .. }))
            .count();
        let ends =
            ring.events().iter().filter(|e| matches!(e, TraceEvent::FaultStallEnd { .. })).count();
        assert!(begins > 0);
        // Every opened span closes: the program outlives each 2-cycle stall.
        assert_eq!(begins, ends);
        assert!(stats.injected_stall_cycles >= 2 * begins as u64 - 1);
    }

    #[test]
    fn fault_replay_is_deterministic() {
        let run = || {
            let mut p = load(LOOP);
            let mut plan = PeriodicStall::new(7, 3);
            let stats = p.run_fault_injected(1_000, &mut plan).unwrap();
            (stats, p.reg(0))
        };
        assert_eq!(run(), run());
    }
}

#[cfg(test)]
mod step_mode_tests {
    use super::*;
    use crate::rtu::{MapRtu, RtuResult};
    use crate::trace::RingTracer;
    use taco_isa::asm;

    /// Builds the same processor twice — one per step mode — from `text`.
    fn pair(text: &str, config: MachineConfig) -> (Processor, Processor) {
        let mut prog = asm::parse(text).unwrap();
        prog.resolve_labels().unwrap();
        let prog = Arc::new(prog);
        let mut compiled = Processor::new_shared(config.clone(), Arc::clone(&prog)).unwrap();
        compiled.set_step_mode(StepMode::Compiled);
        let mut interp = Processor::new_shared(config, prog).unwrap();
        interp.set_step_mode(StepMode::Interpretive);
        (compiled, interp)
    }

    fn routed_rtu() -> RtuConfig {
        let mut backend = MapRtu::new();
        backend.insert([1, 2, 3, 4], RtuResult { iface: 9, handle: 1 });
        RtuConfig::new(Box::new(backend)).with_latency(5)
    }

    /// Programs covering every decoded source/destination/guard shape,
    /// including RTU stalls, guard squashes and PPU datagram flow.
    const PROGRAMS: &[&str] = &[
        "0 -> cnt0.tset | 9 -> cnt0.stop
         loop: 1 -> cnt0.tinc | cnt0.r -> regs0.r1
         !cnt0.done @loop -> nc0.pc
         cnt0.r -> regs0.r0
",
        "1 -> rtu0.k0 | ?rtu0.hit 1 -> regs0.r1
         2 -> rtu0.k1
         3 -> rtu0.k2
         4 -> rtu0.t
         rtu0.iface -> regs0.r0 | !rtu0.hit 7 -> regs0.r2
",
        "0 -> ippu0.tpop
         ippu0.iface -> oppu0.iface
         ippu0.ptr -> oppu0.t
         ?ippu0.pending 1 -> regs0.r0
",
        "16 -> mmu0.addr
         77 -> mmu0.twrite
         0 -> mmu0.tread
         mmu0.r -> regs0.r2 | 1 -> liu0.t
         liu0.r -> regs0.r3
         0 -> csum0.tclr
         0x00010203 -> csum0.tadd
         csum0.r -> regs0.r4
",
    ];

    fn prep(p: &mut Processor) {
        p.set_rtu(routed_rtu());
        p.set_local_info(vec![0x11, 0x22]);
        p.push_input(0x100, 2);
        p.push_input(0x140, 3);
    }

    #[test]
    fn both_modes_agree_on_state_stats_and_events() {
        for text in PROGRAMS {
            let (mut compiled, mut interp) = pair(text, MachineConfig::new(2));
            prep(&mut compiled);
            prep(&mut interp);
            let mut ring_c = RingTracer::new(65_536);
            let mut ring_i = RingTracer::new(65_536);
            let stats_c = compiled.run_traced(10_000, &mut ring_c).unwrap();
            let stats_i = interp.run_traced(10_000, &mut ring_i).unwrap();
            assert_eq!(stats_c, stats_i, "stats diverged for {text:?}");
            assert_eq!(compiled.cycles(), interp.cycles());
            assert_eq!(compiled.pc(), interp.pc());
            for r in 0..16 {
                assert_eq!(compiled.reg(r), interp.reg(r), "r{r} diverged for {text:?}");
            }
            assert_eq!(compiled.outputs(), interp.outputs());
            assert_eq!(compiled.pending_inputs(), interp.pending_inputs());
            assert_eq!(ring_c.events(), ring_i.events(), "trace events diverged for {text:?}");
        }
    }

    #[test]
    fn both_modes_agree_under_fault_injection() {
        for text in PROGRAMS {
            let (mut compiled, mut interp) = pair(text, MachineConfig::new(2));
            prep(&mut compiled);
            prep(&mut interp);
            let mut ring_c = RingTracer::new(65_536);
            let mut ring_i = RingTracer::new(65_536);
            let stats_c = compiled
                .run_fault_traced(10_000, &mut PeriodicStall::new(5, 2), &mut ring_c)
                .unwrap();
            let stats_i = interp
                .run_fault_traced(10_000, &mut PeriodicStall::new(5, 2), &mut ring_i)
                .unwrap();
            assert_eq!(stats_c, stats_i, "fault-injected stats diverged for {text:?}");
            assert!(stats_c.injected_stall_cycles > 0);
            assert_eq!(ring_c.events(), ring_i.events());
            assert_eq!(compiled.outputs(), interp.outputs());
        }
    }

    #[test]
    fn both_modes_agree_on_errors() {
        let cases: &[(&str, u64)] = &[
            ("1 -> regs0.r0 | 2 -> regs0.r0\n", 10), // port conflict
            ("0 -> nc0.pc | 0 -> nc0.pc\n", 10),     // double PC write
            ("3 -> nc0.pc\n", 10),                   // jump out of range
            ("loop: @loop -> nc0.pc\n", 50),         // watchdog
        ];
        for &(text, budget) in cases {
            let (mut compiled, mut interp) = pair(text, MachineConfig::new(2));
            let err_c = compiled.run(budget).unwrap_err();
            let err_i = interp.run(budget).unwrap_err();
            assert_eq!(err_c, err_i, "errors diverged for {text:?}");
            assert_eq!(compiled.stats(), interp.stats());
        }
    }

    #[test]
    fn memory_fault_leaves_identical_stats_in_both_modes() {
        let text = "1 -> cnt0.tinc\n9999999 -> mmu0.addr\n0 -> mmu0.tread\n";
        let build = |mode: StepMode| {
            let mut prog = asm::parse(text).unwrap();
            prog.resolve_labels().unwrap();
            let mut p = Processor::with_memory(MachineConfig::new(1), prog, 16).unwrap();
            p.set_step_mode(mode);
            p
        };
        let mut compiled = build(StepMode::Compiled);
        let mut interp = build(StepMode::Interpretive);
        let err_c = compiled.run(10).unwrap_err();
        let err_i = interp.run(10).unwrap_err();
        assert_eq!(err_c, err_i);
        // The counter trigger before the fault must be folded into the
        // compiled stats too.
        assert_eq!(compiled.stats(), interp.stats());
        assert_eq!(compiled.stats().triggers(FuKind::Counter), 1);
    }

    #[test]
    fn compiled_runs_resume_across_run_calls() {
        let text = "0 -> ippu0.tpop\nippu0.iface -> oppu0.iface\nippu0.ptr -> oppu0.t\n";
        let (mut compiled, mut interp) = pair(text, MachineConfig::new(1));
        for p in [&mut compiled, &mut interp] {
            p.push_input(0xa, 1);
            p.run(1_000).unwrap();
            // A second run on the halted processor is a clean no-op in
            // both modes.
            p.run(1_000).unwrap();
        }
        assert_eq!(compiled.stats(), interp.stats());
        assert_eq!(compiled.drain_outputs(), interp.drain_outputs());
    }
}

#[cfg(test)]
mod event_trace_tests {
    use super::*;
    use crate::trace::{RingTracer, TraceCounters, TraceEvent};
    use taco_isa::asm;

    fn load(text: &str, config: MachineConfig) -> Processor {
        let mut prog = asm::parse(text).unwrap();
        prog.resolve_labels().unwrap();
        Processor::new(config, prog).unwrap()
    }

    #[test]
    fn ring_replay_reconciles_with_stats() {
        use crate::rtu::{MapRtu, RtuResult};
        let mut backend = MapRtu::new();
        backend.insert([1, 2, 3, 4], RtuResult { iface: 9, handle: 1 });
        let mut p = load(
            "1 -> rtu0.k0 | ?rtu0.hit 1 -> regs0.r1\n\
             2 -> rtu0.k1\n3 -> rtu0.k2\n4 -> rtu0.t\nrtu0.iface -> regs0.r0\n",
            MachineConfig::new(2),
        );
        p.set_rtu(RtuConfig::new(Box::new(backend)).with_latency(5));
        let mut ring = RingTracer::new(4096);
        let stats = p.run_traced(100, &mut ring).unwrap();
        assert!(ring.is_complete());
        assert!(stats.stall_cycles > 0);
        assert!(stats.moves_squashed > 0);
        let replayed = TraceCounters::from_events(ring.events());
        assert_eq!(replayed, TraceCounters::from_stats(&stats));
    }

    #[test]
    fn datagram_events_bracket_ppu_flow() {
        let mut p = load(
            "0 -> ippu0.tpop\nippu0.iface -> oppu0.iface\nippu0.ptr -> oppu0.t\n",
            MachineConfig::new(1),
        );
        p.push_input(0x100, 2);
        let mut ring = RingTracer::new(64);
        p.run_traced(10, &mut ring).unwrap();
        let begins: Vec<_> = ring
            .events()
            .iter()
            .filter(|e| matches!(e, TraceEvent::DatagramBegin { .. }))
            .collect();
        let ends: Vec<_> =
            ring.events().iter().filter(|e| matches!(e, TraceEvent::DatagramEnd { .. })).collect();
        assert_eq!(begins.len(), 1);
        assert_eq!(ends.len(), 1);
        assert!(matches!(begins[0], TraceEvent::DatagramBegin { ptr: 0x100, iface: 2, .. }));
        assert!(matches!(ends[0], TraceEvent::DatagramEnd { ptr: 0x100, iface: 2, .. }));
        assert!(begins[0].cycle() < ends[0].cycle());
    }

    #[test]
    fn traced_and_untraced_runs_agree_exactly() {
        let text = "0 -> cnt0.tset | 9 -> cnt0.stop
                    loop: 1 -> cnt0.tinc | cnt0.r -> regs0.r1
                    !cnt0.done @loop -> nc0.pc
                    cnt0.r -> regs0.r0
";
        let mut plain = load(text, MachineConfig::new(3));
        let plain_stats = plain.run(1_000).unwrap();
        let mut traced = load(text, MachineConfig::new(3));
        let mut ring = RingTracer::new(4096);
        let traced_stats = traced.run_traced(1_000, &mut ring).unwrap();
        assert_eq!(plain_stats, traced_stats);
        assert_eq!(plain.reg(0), traced.reg(0));
        assert_eq!(
            TraceCounters::from_events(ring.events()),
            TraceCounters::from_stats(&traced_stats)
        );
    }
}
