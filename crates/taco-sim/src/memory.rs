//! Word-addressed data memory.
//!
//! The paper's router transfers *entire datagrams* into the processor's main
//! memory; this module is that memory.  TACO has a 32-bit datapath, so the
//! memory is an array of 32-bit words addressed by word index.

use crate::error::SimError;

/// Data memory: a flat array of 32-bit words.
///
/// # Examples
///
/// ```
/// use taco_sim::DataMemory;
///
/// # fn main() -> Result<(), taco_sim::SimError> {
/// let mut mem = DataMemory::new(1024);
/// mem.write(0x10, 0xdead_beef)?;
/// assert_eq!(mem.read(0x10)?, 0xdead_beef);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DataMemory {
    words: Vec<u32>,
}

impl DataMemory {
    /// Creates a zeroed memory of `size` words.
    pub fn new(size: u32) -> Self {
        DataMemory { words: vec![0; size as usize] }
    }

    /// Memory size in words.
    pub fn size(&self) -> u32 {
        self.words.len() as u32
    }

    /// Reads the word at `addr`.
    ///
    /// # Errors
    ///
    /// [`SimError::MemoryOutOfBounds`] if `addr` is outside memory.
    pub fn read(&self, addr: u32) -> Result<u32, SimError> {
        self.words
            .get(addr as usize)
            .copied()
            .ok_or(SimError::MemoryOutOfBounds { addr, size: self.size() })
    }

    /// Writes `value` at `addr`.
    ///
    /// # Errors
    ///
    /// [`SimError::MemoryOutOfBounds`] if `addr` is outside memory.
    pub fn write(&mut self, addr: u32, value: u32) -> Result<(), SimError> {
        let size = self.size();
        match self.words.get_mut(addr as usize) {
            Some(w) => {
                *w = value;
                Ok(())
            }
            None => Err(SimError::MemoryOutOfBounds { addr, size }),
        }
    }

    /// Copies `data` into memory starting at `addr`.
    ///
    /// # Errors
    ///
    /// [`SimError::MemoryOutOfBounds`] if the block does not fit.
    pub fn load(&mut self, addr: u32, data: &[u32]) -> Result<(), SimError> {
        let start = addr as usize;
        let end = start.checked_add(data.len());
        match end {
            Some(end) if end <= self.words.len() => {
                self.words[start..end].copy_from_slice(data);
                Ok(())
            }
            _ => Err(SimError::MemoryOutOfBounds {
                addr: addr.saturating_add(data.len() as u32),
                size: self.size(),
            }),
        }
    }

    /// Reads `len` words starting at `addr`.
    ///
    /// # Errors
    ///
    /// [`SimError::MemoryOutOfBounds`] if the block does not fit.
    pub fn read_block(&self, addr: u32, len: u32) -> Result<&[u32], SimError> {
        let start = addr as usize;
        let end = start.checked_add(len as usize);
        match end {
            Some(end) if end <= self.words.len() => Ok(&self.words[start..end]),
            _ => Err(SimError::MemoryOutOfBounds {
                addr: addr.saturating_add(len),
                size: self.size(),
            }),
        }
    }

    /// A view of the whole memory.
    pub fn as_slice(&self) -> &[u32] {
        &self.words
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_round_trip() {
        let mut m = DataMemory::new(16);
        m.write(3, 77).unwrap();
        assert_eq!(m.read(3).unwrap(), 77);
        assert_eq!(m.read(4).unwrap(), 0);
    }

    #[test]
    fn out_of_bounds_rejected() {
        let mut m = DataMemory::new(4);
        assert!(matches!(m.read(4), Err(SimError::MemoryOutOfBounds { addr: 4, size: 4 })));
        assert!(m.write(100, 0).is_err());
    }

    #[test]
    fn block_load_and_read() {
        let mut m = DataMemory::new(8);
        m.load(2, &[1, 2, 3]).unwrap();
        assert_eq!(m.read_block(2, 3).unwrap(), &[1, 2, 3]);
        assert!(m.load(6, &[1, 2, 3]).is_err());
        assert!(m.read_block(7, 2).is_err());
    }

    #[test]
    fn overflowing_block_does_not_panic() {
        let mut m = DataMemory::new(8);
        assert!(m.load(u32::MAX, &[1]).is_err());
        assert!(m.read_block(u32::MAX, 2).is_err());
    }

    #[test]
    fn size_and_slice() {
        let m = DataMemory::new(32);
        assert_eq!(m.size(), 32);
        assert_eq!(m.as_slice().len(), 32);
    }
}
