//! Execution statistics.
//!
//! "From the high level simulations we obtain performance data such as
//! clock cycle requirements and module utilization."  [`SimStats`] is that
//! performance data: total cycles, per-kind trigger counts and dynamic bus
//! utilisation (a Table 1 column).

use std::collections::BTreeMap;
use std::fmt;

use taco_isa::{FuKind, FuRef};

/// Counters collected over one simulation run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Total elapsed cycles, including stalls.
    pub cycles: u64,
    /// Cycles spent stalled waiting for the Routing Table Unit.
    pub stall_cycles: u64,
    /// Cycles stolen by an injected transient fault (zero unless a
    /// [`FaultInjector`](crate::FaultInjector) was attached to the run).
    pub injected_stall_cycles: u64,
    /// Moves whose guard passed (or that had no guard).
    pub moves_executed: u64,
    /// Moves whose guard failed (they still occupied their bus).
    pub moves_squashed: u64,
    /// FU triggers fired, per kind.
    pub fu_triggers: BTreeMap<FuKind, u64>,
    /// FU triggers fired, per instance — the paper's "module utilization"
    /// data.
    pub fu_instance_triggers: BTreeMap<FuRef, u64>,
    /// Number of buses in the simulated configuration.
    pub buses: u8,
}

impl SimStats {
    /// Occupied bus slots: every move occupies its bus whether or not its
    /// guard passed.
    pub fn bus_slots_occupied(&self) -> u64 {
        self.moves_executed.saturating_add(self.moves_squashed)
    }

    /// Dynamic bus utilisation in `0.0..=1.0`: occupied slots over total
    /// slot capacity (`cycles × buses`).  Stall cycles count as idle.
    pub fn bus_utilization(&self) -> f64 {
        let capacity = self.cycles.saturating_mul(u64::from(self.buses));
        if capacity == 0 {
            return 0.0;
        }
        self.bus_slots_occupied() as f64 / capacity as f64
    }

    /// Triggers fired by instances of `kind`.
    pub fn triggers(&self, kind: FuKind) -> u64 {
        self.fu_triggers.get(&kind).copied().unwrap_or(0)
    }

    /// Fraction of cycles in which the given FU instance fired (0..=1) —
    /// the per-module utilization the paper's simulations report.
    pub fn module_utilization(&self, fu: FuRef) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.fu_instance_triggers.get(&fu).copied().unwrap_or(0) as f64 / self.cycles as f64
    }

    /// Serialises the counters as one line of JSON (hand-rolled — the
    /// workspace builds offline and carries no serde dependency).
    ///
    /// Trigger maps are emitted in `BTreeMap` order, so the output is
    /// byte-stable for a given run.  This is the record format the sweep
    /// observer (`taco-core`) attaches to every evaluated design point.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;

        // JSON has no NaN/Infinity literals; a non-finite utilization (only
        // reachable through counter corruption) must degrade to a valid
        // record, not a line no parser accepts.
        let utilization = self.bus_utilization();
        let utilization = if utilization.is_finite() { utilization } else { 0.0 };
        let mut out = String::with_capacity(256);
        let _ = write!(
            out,
            "{{\"cycles\":{},\"stall_cycles\":{},\"injected_stall_cycles\":{},\
             \"moves_executed\":{},\
             \"moves_squashed\":{},\"buses\":{},\"bus_utilization\":{utilization:.6}",
            self.cycles,
            self.stall_cycles,
            self.injected_stall_cycles,
            self.moves_executed,
            self.moves_squashed,
            self.buses,
        );
        out.push_str(",\"fu_triggers\":{");
        for (i, (kind, n)) in self.fu_triggers.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{kind}\":{n}");
        }
        out.push_str("},\"fu_instance_triggers\":{");
        for (i, (fu, n)) in self.fu_instance_triggers.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{fu}\":{n}");
        }
        out.push_str("}}");
        out
    }
}

impl fmt::Display for SimStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} cycles ({} stalled), {} moves ({} squashed), bus util {:.1}%",
            self.cycles,
            self.stall_cycles,
            self.moves_executed,
            self.moves_squashed,
            self.bus_utilization() * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utilization_math() {
        let s = SimStats {
            cycles: 10,
            stall_cycles: 2,
            moves_executed: 12,
            moves_squashed: 3,
            buses: 3,
            ..SimStats::default()
        };
        assert_eq!(s.bus_slots_occupied(), 15);
        assert!((s.bus_utilization() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_run_is_zero_utilization() {
        assert_eq!(SimStats::default().bus_utilization(), 0.0);
    }

    #[test]
    fn trigger_lookup_defaults_to_zero() {
        let mut s = SimStats::default();
        assert_eq!(s.triggers(FuKind::Matcher), 0);
        s.fu_triggers.insert(FuKind::Matcher, 5);
        assert_eq!(s.triggers(FuKind::Matcher), 5);
    }

    #[test]
    fn module_utilization_per_instance() {
        let mut s = SimStats { cycles: 10, ..SimStats::default() };
        let m0 = FuRef::new(FuKind::Matcher, 0);
        let m1 = FuRef::new(FuKind::Matcher, 1);
        s.fu_instance_triggers.insert(m0, 5);
        assert!((s.module_utilization(m0) - 0.5).abs() < 1e-12);
        assert_eq!(s.module_utilization(m1), 0.0);
        assert_eq!(SimStats::default().module_utilization(m0), 0.0);
    }

    #[test]
    fn display_mentions_cycles() {
        let s = SimStats { cycles: 7, buses: 1, ..SimStats::default() };
        assert!(s.to_string().contains("7 cycles"));
    }

    #[test]
    fn json_is_stable_and_complete() {
        let mut s = SimStats {
            cycles: 10,
            stall_cycles: 2,
            moves_executed: 12,
            moves_squashed: 3,
            buses: 3,
            ..SimStats::default()
        };
        s.fu_triggers.insert(FuKind::Matcher, 5);
        s.fu_instance_triggers.insert(FuRef::new(FuKind::Matcher, 0), 5);
        let json = s.to_json();
        assert_eq!(json, s.clone().to_json(), "stable");
        assert!(json.starts_with('{') && json.ends_with('}'), "{json}");
        assert!(json.contains("\"cycles\":10"), "{json}");
        assert!(json.contains("\"injected_stall_cycles\":0"), "{json}");
        assert!(json.contains("\"bus_utilization\":0.500000"), "{json}");
        assert!(json.contains("\"fu_triggers\":{\"Matcher\":5}"), "{json}");
        assert!(json.contains(":5}"), "{json}");
        // No pretty-printing: the record must stay a single line.
        assert!(!json.contains('\n'));
    }

    #[test]
    fn empty_stats_serialise_to_empty_maps() {
        let json = SimStats::default().to_json();
        assert!(json.contains("\"fu_triggers\":{}"), "{json}");
        assert!(json.contains("\"fu_instance_triggers\":{}"), "{json}");
    }

    /// A strict RFC 8259 subset parser (objects, strings, numbers), enough
    /// to reject unquoted keys, `NaN`, `Infinity`, trailing commas and
    /// truncated records.  Hand-rolled because the workspace carries no
    /// serde; returns the byte offset that failed.
    fn validate_json(s: &str) -> Result<(), usize> {
        let b = s.as_bytes();
        let mut i = 0usize;

        fn skip_ws(b: &[u8], i: &mut usize) {
            while *i < b.len() && matches!(b[*i], b' ' | b'\t' | b'\n' | b'\r') {
                *i += 1;
            }
        }
        fn string(b: &[u8], i: &mut usize) -> Result<(), usize> {
            if b.get(*i) != Some(&b'"') {
                return Err(*i);
            }
            *i += 1;
            while let Some(&c) = b.get(*i) {
                match c {
                    b'"' => {
                        *i += 1;
                        return Ok(());
                    }
                    b'\\' => *i += 2, // any escape shape is fine for this subset
                    0x00..=0x1f => return Err(*i),
                    _ => *i += 1,
                }
            }
            Err(*i)
        }
        fn number(b: &[u8], i: &mut usize) -> Result<(), usize> {
            let start = *i;
            if b.get(*i) == Some(&b'-') {
                *i += 1;
            }
            let digits = |b: &[u8], i: &mut usize| {
                let from = *i;
                while b.get(*i).is_some_and(u8::is_ascii_digit) {
                    *i += 1;
                }
                *i > from
            };
            if !digits(b, i) {
                return Err(start);
            }
            if b.get(*i) == Some(&b'.') {
                *i += 1;
                if !digits(b, i) {
                    return Err(*i);
                }
            }
            if matches!(b.get(*i), Some(b'e' | b'E')) {
                *i += 1;
                if matches!(b.get(*i), Some(b'+' | b'-')) {
                    *i += 1;
                }
                if !digits(b, i) {
                    return Err(*i);
                }
            }
            Ok(())
        }
        fn value(b: &[u8], i: &mut usize) -> Result<(), usize> {
            skip_ws(b, i);
            match b.get(*i) {
                Some(b'{') => {
                    *i += 1;
                    skip_ws(b, i);
                    if b.get(*i) == Some(&b'}') {
                        *i += 1;
                        return Ok(());
                    }
                    loop {
                        skip_ws(b, i);
                        string(b, i)?;
                        skip_ws(b, i);
                        if b.get(*i) != Some(&b':') {
                            return Err(*i);
                        }
                        *i += 1;
                        value(b, i)?;
                        skip_ws(b, i);
                        match b.get(*i) {
                            Some(b',') => *i += 1,
                            Some(b'}') => {
                                *i += 1;
                                return Ok(());
                            }
                            _ => return Err(*i),
                        }
                    }
                }
                Some(b'[') => {
                    *i += 1;
                    skip_ws(b, i);
                    if b.get(*i) == Some(&b']') {
                        *i += 1;
                        return Ok(());
                    }
                    loop {
                        value(b, i)?;
                        skip_ws(b, i);
                        match b.get(*i) {
                            Some(b',') => *i += 1,
                            Some(b']') => {
                                *i += 1;
                                return Ok(());
                            }
                            _ => return Err(*i),
                        }
                    }
                }
                Some(b'"') => string(b, i),
                Some(b't') if b[*i..].starts_with(b"true") => {
                    *i += 4;
                    Ok(())
                }
                Some(b'f') if b[*i..].starts_with(b"false") => {
                    *i += 5;
                    Ok(())
                }
                Some(b'n') if b[*i..].starts_with(b"null") => {
                    *i += 4;
                    Ok(())
                }
                _ => number(b, i),
            }
        }

        value(b, &mut i)?;
        skip_ws(b, &mut i);
        if i == b.len() {
            Ok(())
        } else {
            Err(i)
        }
    }

    #[test]
    fn the_validator_itself_rejects_garbage() {
        assert!(validate_json("{\"a\":1}").is_ok());
        assert!(validate_json("{\"a\":[1,2.5,-3e4],\"b\":{}}").is_ok());
        for bad in
            ["{a:1}", "{\"a\":NaN}", "{\"a\":inf}", "{\"a\":1,}", "{\"a\":1", "{\"a\":01x}", ""]
        {
            assert!(validate_json(bad).is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn every_stats_record_parses_as_strict_json() {
        let mut populated = SimStats {
            cycles: 12345,
            stall_cycles: 67,
            moves_executed: 89,
            moves_squashed: 10,
            buses: 3,
            ..SimStats::default()
        };
        for (i, kind) in FuKind::ALL.iter().enumerate() {
            populated.fu_triggers.insert(*kind, i as u64);
            populated.fu_instance_triggers.insert(FuRef::new(*kind, 0), i as u64);
            populated.fu_instance_triggers.insert(FuRef::new(*kind, 1), i as u64 + 1);
        }
        let extreme = SimStats {
            cycles: u64::MAX,
            stall_cycles: u64::MAX,
            moves_executed: u64::MAX,
            moves_squashed: u64::MAX,
            buses: u8::MAX,
            ..SimStats::default()
        };
        for stats in [SimStats::default(), populated, extreme] {
            let json = stats.to_json();
            if let Err(at) = validate_json(&json) {
                panic!("invalid JSON at byte {at}: {}", &json[at.saturating_sub(20)..]);
            }
            // Value position only — "LocalInfoUnit" legitimately contains
            // "Inf" as key text.
            for poison in [":NaN", ":inf", ":Inf", ":-inf", ":-Inf"] {
                assert!(!json.contains(poison), "{poison} in {json}");
            }
        }
    }

    #[test]
    fn non_finite_utilization_degrades_to_zero_in_json() {
        // No counter combination reaches this through the public API, but
        // the serialiser must never emit a literal no parser accepts.
        let s = SimStats { cycles: 10, buses: 3, ..SimStats::default() };
        assert!(s.bus_utilization().is_finite());
        let json = s.to_json();
        assert!(validate_json(&json).is_ok());
        assert!(json.contains("\"bus_utilization\":0.000000"), "{json}");
    }
}
