//! Pre-decoded move schedules — the compiled simulation path.
//!
//! The interpretive step loop re-decodes every occupied bus slot each
//! cycle: it clones the instruction word, matches on the source and
//! destination port vocabulary, linearly searches the datapath for the
//! addressed FU instance and re-parses `"rN"` register names.  None of
//! that depends on machine state, so [`DecodedProgram`] hoists it all to
//! [`Processor`](crate::Processor) construction time: every move becomes a
//! flat [`DMove`] whose guard, source and destination are dense indices
//! into the processor's state arrays, every trigger gets a pre-assigned
//! statistics slot, and every instruction carries precomputed RTU-stall
//! and conflict flags.  The per-cycle work left for the compiled loop is
//! an array walk (see `Processor::run_compiled_with`), which is what makes
//! the uncached Table 1 smoke several times faster — the "compile, don't
//! interpret" result of the cycle-accurate-simulator-generation
//! literature, applied to TTA move schedules.
//!
//! Decoding is semantics-preserving by construction: conflict detection
//! compares decoded destinations with exactly the equality [`PortRef`]
//! has (instance indices are kept even where the architectural state is
//! shared), and the compiled loop replays the interpretive loop's phase
//! structure and trace-event order move for move.  The differential test
//! tiers pin the two paths cycle-for-cycle.

use std::sync::OnceLock;

use taco_isa::{FuKind, FuRef, MachineConfig, Program, Source};

use crate::error::SimError;
use crate::units::DatapathFu;

/// Which step loop a [`Processor`](crate::Processor) runs.
///
/// Both paths execute the same cycle semantics and produce identical
/// statistics, trace events and architectural state; `Compiled` walks the
/// pre-decoded schedule, `Interpretive` re-decodes each instruction word
/// every cycle.  The interpretive path is kept as the executable
/// specification — force it with `TACO_STEP_MODE=interpretive` when
/// debugging a suspected compiled-path divergence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StepMode {
    /// Walk the pre-decoded move schedule (the fast path, the default).
    Compiled,
    /// Re-decode every instruction word each cycle (the reference path).
    Interpretive,
}

impl StepMode {
    /// The process-wide default: `TACO_STEP_MODE` if set (`compiled` or
    /// `interpretive`), otherwise [`StepMode::Compiled`].  Read once and
    /// latched for the life of the process.
    ///
    /// # Panics
    ///
    /// Panics on any other value — a misspelt mode silently running the
    /// wrong path would invalidate every measurement, so it is a loud
    /// startup error (the same policy the CLIs apply to unknown flags).
    pub fn env_default() -> StepMode {
        static MODE: OnceLock<StepMode> = OnceLock::new();
        *MODE.get_or_init(|| match std::env::var("TACO_STEP_MODE") {
            Err(_) => StepMode::Compiled,
            Ok(v) => match v.trim() {
                "" | "compiled" => StepMode::Compiled,
                "interpretive" => StepMode::Interpretive,
                other => panic!(
                    "invalid TACO_STEP_MODE {other:?}: expected \"compiled\" or \"interpretive\""
                ),
            },
        })
    }
}

impl Default for StepMode {
    fn default() -> Self {
        StepMode::env_default()
    }
}

/// A decoded move source: everything resolved to a direct state access.
#[derive(Debug, Clone, Copy)]
pub(crate) enum DSrc {
    /// A folded immediate (resolved labels included).
    Imm(u32),
    /// General-purpose register, index pre-parsed from the `"rN"` name.
    Reg(u8),
    /// MMU port result register.
    MmuResult(u8),
    /// `rtu0.iface`.
    RtuIface,
    /// `rtu0.nh`.
    RtuNh,
    /// `ippu0.ptr`.
    IppuPtr,
    /// `ippu0.iface`.
    IppuIface,
    /// Result port of a datapath FU, by dense datapath index.
    Datapath(u16, &'static str),
}

/// A decoded guard condition.
#[derive(Debug, Clone, Copy)]
pub(crate) enum DGuard {
    /// Unguarded move.
    Always,
    /// `rtu.hit` (possibly negated).
    Rtu { negate: bool },
    /// `ippu.pending` (possibly negated).
    IppuPending { negate: bool },
    /// A datapath FU guard signal, by dense datapath index.
    Datapath { index: u16, signal: &'static str, negate: bool },
}

/// A decoded trigger destination.  Instance indices are carried even where
/// the architectural state is shared (RTU, iPPU, oPPU are singletons) so
/// that [`DDst`] equality coincides with [`taco_isa::PortRef`] equality —
/// the relation the interpretive conflict check uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum DTrig {
    /// `mmuN.tread`.
    MmuRead(u8),
    /// `mmuN.twrite`.
    MmuWrite(u8),
    /// `rtuN.t`.
    Rtu(u8),
    /// `ippuN.tpop`.
    IppuPop(u8),
    /// `oppuN.t`.
    OppuEmit(u8),
    /// Trigger port of a datapath FU, by dense datapath index.
    Datapath(u16, &'static str),
}

/// A decoded move destination (see [`DTrig`] on instance indices).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum DDst {
    /// General-purpose register (instance kept for conflict equality only).
    Reg { inst: u8, idx: u8 },
    /// `mmuN.addr`.
    MmuAddr(u8),
    /// `rtuN.k{0,1,2}`.
    RtuKey { inst: u8, k: u8 },
    /// `oppuN.iface`.
    OppuIface(u8),
    /// Operand port of a datapath FU, by dense datapath index.
    DatapathOperand(u16, &'static str),
    /// `ncN.pc` — the jump "trigger".
    Jump(u8),
    /// A real FU trigger; `slot` indexes [`DecodedProgram::trigger_fus`].
    Trigger { kind: DTrig, slot: u16 },
}

impl DDst {
    /// Mirrors [`taco_isa::PortRef::is_trigger`] for the write-phase
    /// ordering: operand and register writes land before triggers fire.
    pub(crate) fn is_trigger(self) -> bool {
        matches!(self, DDst::Jump(_) | DDst::Trigger { .. })
    }
}

/// One decoded move: `bus` is kept for trace events and for recovering the
/// original [`taco_isa::PortRef`] on the cold conflict-error path.
#[derive(Debug, Clone, Copy)]
pub(crate) struct DMove {
    pub bus: u8,
    pub guard: DGuard,
    pub src: DSrc,
    pub dst: DDst,
}

/// Per-instruction metadata precomputed at decode time.
#[derive(Debug, Clone, Copy)]
pub(crate) struct InsMeta {
    /// Range of this instruction's moves in [`DecodedProgram::moves`].
    pub start: u32,
    pub end: u32,
    /// Any move reads an RTU result or evaluates an RTU guard — the only
    /// condition under which the interlock can stall this instruction.
    pub rtu_sensitive: bool,
    /// Two moves share a destination port, so the dynamic conflict check
    /// must run; statically-conflict-free instructions (the vast majority)
    /// skip it.
    pub may_conflict: bool,
}

/// A program pre-decoded against a machine configuration and its datapath
/// layout.  Immutable once built; the processor shares it behind an `Arc`
/// so the hot loop can walk it while mutating machine state.
#[derive(Debug)]
pub(crate) struct DecodedProgram {
    pub moves: Vec<DMove>,
    pub ins: Vec<InsMeta>,
    /// Trigger statistics slots: one entry per distinct triggered [`FuRef`],
    /// indexed by the `slot` field of [`DDst::Trigger`].  The compiled loop
    /// bumps a flat counter per slot and folds into the `BTreeMap` stats
    /// only on exit.
    pub trigger_fus: Vec<FuRef>,
}

/// Decodes `program` (already validated against `config`) into a flat
/// schedule over the given datapath layout.
///
/// # Errors
///
/// Decoding re-surfaces the same structural errors
/// [`Processor`](crate::Processor) construction screens for; after a
/// successful `validate()` none of them are reachable.
pub(crate) fn decode(
    config: &MachineConfig,
    program: &Program,
    datapath: &[(FuRef, DatapathFu)],
) -> Result<DecodedProgram, SimError> {
    let dp_index = |fu: FuRef| -> Result<u16, SimError> {
        datapath
            .iter()
            .position(|(f, _)| *f == fu)
            .map(|i| i as u16)
            .ok_or(SimError::InvalidFuIndex { fu, available: config.fu_count(fu.kind) })
    };
    let mut moves = Vec::new();
    let mut ins = Vec::with_capacity(program.instructions.len());
    let mut trigger_fus: Vec<FuRef> = Vec::new();

    for instruction in &program.instructions {
        let start = moves.len() as u32;
        let mut rtu_sensitive = false;
        for (bus, mv) in
            instruction.slots.iter().enumerate().filter_map(|(b, s)| Some((b, s.as_ref()?)))
        {
            let guard = match &mv.guard {
                None => DGuard::Always,
                Some(g) => match g.fu.kind {
                    FuKind::Rtu => {
                        rtu_sensitive = true;
                        DGuard::Rtu { negate: g.negate }
                    }
                    FuKind::Ippu => DGuard::IppuPending { negate: g.negate },
                    _ => DGuard::Datapath {
                        index: dp_index(g.fu)?,
                        signal: g.signal,
                        negate: g.negate,
                    },
                },
            };
            let src = match &mv.src {
                Source::Imm(v) => DSrc::Imm(*v),
                Source::Label(l) => return Err(SimError::UnresolvedLabel(l.clone())),
                Source::Port(p) => match p.fu.kind {
                    FuKind::Regs => DSrc::Reg(crate::processor::register_index(*p)? as u8),
                    FuKind::Mmu => DSrc::MmuResult(p.fu.index),
                    FuKind::Rtu => {
                        rtu_sensitive = true;
                        if p.port == "iface" {
                            DSrc::RtuIface
                        } else {
                            DSrc::RtuNh
                        }
                    }
                    FuKind::Ippu => {
                        if p.port == "ptr" {
                            DSrc::IppuPtr
                        } else {
                            DSrc::IppuIface
                        }
                    }
                    _ => DSrc::Datapath(dp_index(p.fu)?, p.port),
                },
            };
            let d = mv.dst;
            let dst = if d.is_trigger() {
                if d.fu.kind == FuKind::Nc {
                    DDst::Jump(d.fu.index)
                } else {
                    let kind = match d.fu.kind {
                        FuKind::Mmu => {
                            if d.port == "tread" {
                                DTrig::MmuRead(d.fu.index)
                            } else {
                                DTrig::MmuWrite(d.fu.index)
                            }
                        }
                        FuKind::Rtu => DTrig::Rtu(d.fu.index),
                        FuKind::Ippu => DTrig::IppuPop(d.fu.index),
                        FuKind::Oppu => DTrig::OppuEmit(d.fu.index),
                        _ => DTrig::Datapath(dp_index(d.fu)?, d.port),
                    };
                    let slot = match trigger_fus.iter().position(|f| *f == d.fu) {
                        Some(i) => i as u16,
                        None => {
                            trigger_fus.push(d.fu);
                            (trigger_fus.len() - 1) as u16
                        }
                    };
                    DDst::Trigger { kind, slot }
                }
            } else {
                match d.fu.kind {
                    FuKind::Regs => DDst::Reg {
                        inst: d.fu.index,
                        idx: crate::processor::register_index(d)? as u8,
                    },
                    FuKind::Mmu => DDst::MmuAddr(d.fu.index),
                    FuKind::Rtu => {
                        let k = match d.port {
                            "k0" => 0,
                            "k1" => 1,
                            _ => 2,
                        };
                        DDst::RtuKey { inst: d.fu.index, k }
                    }
                    FuKind::Oppu => DDst::OppuIface(d.fu.index),
                    _ => DDst::DatapathOperand(dp_index(d.fu)?, d.port),
                }
            };
            moves.push(DMove { bus: bus as u8, guard, src, dst });
        }
        let end = moves.len() as u32;
        let slice = &moves[start as usize..end as usize];
        let may_conflict =
            slice.iter().enumerate().any(|(i, m)| slice[..i].iter().any(|e| e.dst == m.dst));
        ins.push(InsMeta { start, end, rtu_sensitive, may_conflict });
    }
    Ok(DecodedProgram { moves, ins, trigger_fus })
}

#[cfg(test)]
mod tests {
    use super::*;
    use taco_isa::asm;

    fn decoded(text: &str, config: MachineConfig) -> (DecodedProgram, Program) {
        let mut prog = asm::parse(text).unwrap();
        prog.resolve_labels().unwrap();
        let cpu = crate::Processor::new(config.clone(), prog.clone()).unwrap();
        let dp = decode(&config, &prog, cpu.datapath_layout()).unwrap();
        (dp, prog)
    }

    #[test]
    fn register_names_fold_to_indices() {
        let (dp, _) = decoded("7 -> regs0.r13\nregs0.r13 -> regs0.r2\n", MachineConfig::new(1));
        assert!(matches!(dp.moves[0].dst, DDst::Reg { idx: 13, .. }));
        assert!(matches!(dp.moves[1].src, DSrc::Reg(13)));
        assert!(matches!(dp.moves[1].dst, DDst::Reg { idx: 2, .. }));
    }

    #[test]
    fn rtu_sensitivity_is_per_instruction() {
        let (dp, _) = decoded(
            "1 -> rtu0.t\nrtu0.iface -> regs0.r0\n?rtu0.hit 1 -> regs0.r1\n2 -> regs0.r2\n",
            MachineConfig::new(1),
        );
        // Triggering the RTU does not stall; reading or guarding on it does.
        assert!(!dp.ins[0].rtu_sensitive);
        assert!(dp.ins[1].rtu_sensitive);
        assert!(dp.ins[2].rtu_sensitive);
        assert!(!dp.ins[3].rtu_sensitive);
    }

    #[test]
    fn static_conflicts_are_flagged() {
        let (dp, _) = decoded("1 -> regs0.r0 | 2 -> regs0.r1\n1 -> regs0.r3 | 2 -> regs0.r3\n", {
            MachineConfig::new(2)
        });
        assert!(!dp.ins[0].may_conflict);
        assert!(dp.ins[1].may_conflict);
    }

    #[test]
    fn trigger_slots_are_per_fu_instance() {
        let (dp, _) =
            decoded("1 -> cnt0.tinc\n2 -> cnt0.tadd\n0 -> csum0.tclr\n", MachineConfig::new(1));
        // Two distinct FUs triggered -> two slots; the counter's two
        // trigger ports share its slot.
        assert_eq!(dp.trigger_fus.len(), 2);
        assert_eq!(dp.trigger_fus[0], FuRef::new(FuKind::Counter, 0));
        assert_eq!(dp.trigger_fus[1], FuRef::new(FuKind::Checksum, 0));
    }

    #[test]
    fn env_default_is_compiled_when_unset() {
        // The test harness does not set TACO_STEP_MODE.
        assert_eq!(StepMode::default(), StepMode::Compiled);
    }
}
