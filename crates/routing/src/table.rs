//! The longest-prefix-match table abstraction shared by every engine.

use std::fmt;

use taco_ipv6::{Ipv6Address, Ipv6Prefix};

use crate::route::Route;

/// Which routing-table organisation an engine implements.
///
/// These are the three alternatives of the paper's Table 1 plus the two
/// trie organisations: the unibit baseline used for cross-checking and the
/// path-compressed PATRICIA engine that scales to internet-size tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TableKind {
    /// Entries laid out sequentially in a cache memory; linear scan.
    Sequential,
    /// Balanced search tree over prefix ranges; logarithmic search.
    BalancedTree,
    /// Content-addressable memory + SRAM; constant-time search.
    Cam,
    /// Bitwise binary trie (reference baseline, not in the paper's table).
    Trie,
    /// Path-compressed binary radix trie (PATRICIA); one node per
    /// branching bit, internet-scale.
    Patricia,
}

impl TableKind {
    /// All kinds evaluated in the paper's Table 1, in row order.
    pub const PAPER_KINDS: [TableKind; 3] =
        [TableKind::Sequential, TableKind::BalancedTree, TableKind::Cam];

    /// Every organisation the repo implements, paper rows first — the
    /// enumeration the differential oracles and the wire schema iterate.
    pub const ALL_KINDS: [TableKind; 5] = [
        TableKind::Sequential,
        TableKind::BalancedTree,
        TableKind::Cam,
        TableKind::Trie,
        TableKind::Patricia,
    ];

    /// Builds an engine of this organisation, seeded with `routes` — the
    /// one construction path shared by the evaluation pipeline, the
    /// behavioural router and the scenario engine.
    ///
    /// The CAM model's paper-default capacity (8192 rows) is widened when
    /// the seed exceeds it, so internet-size differential tables build on
    /// every organisation.
    pub fn build(&self, routes: &[Route]) -> Box<dyn LpmTable> {
        let n = routes.len();
        let routes = routes.iter().copied();
        match self {
            TableKind::Sequential => Box::new(crate::SequentialTable::from_routes(routes)),
            TableKind::BalancedTree => Box::new(crate::BalancedTreeTable::from_routes(routes)),
            TableKind::Cam => {
                let spec = crate::CamSpec::paper_default();
                let mut cam = if n > spec.capacity {
                    crate::CamTable::with_spec(crate::CamSpec {
                        capacity: n.next_power_of_two(),
                        ..spec
                    })
                } else {
                    crate::CamTable::new()
                };
                for r in routes {
                    cam.insert(r);
                }
                Box::new(cam)
            }
            TableKind::Trie => Box::new(crate::TrieTable::from_routes(routes)),
            TableKind::Patricia => Box::new(crate::PatriciaTable::from_routes(routes)),
        }
    }
}

impl fmt::Display for TableKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TableKind::Sequential => write!(f, "sequential"),
            TableKind::BalancedTree => write!(f, "balanced-tree"),
            TableKind::Cam => write!(f, "cam"),
            TableKind::Trie => write!(f, "trie"),
            TableKind::Patricia => write!(f, "patricia"),
        }
    }
}

/// The outcome of one lookup: the matched route (if any) and how many
/// elementary probes the engine made to find it.
///
/// "Probes" are the engine's natural unit of work — entries scanned for the
/// sequential table, nodes visited for trees and tries, always 1 for the
/// CAM.  The cycle-accurate router multiplies probes by a per-kind cycle
/// cost, which is what turns table organisation into required clock
/// frequency in the paper's Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lookup {
    route: Option<Route>,
    steps: u32,
}

impl Lookup {
    /// A lookup that found `route` after `steps` probes.
    pub fn hit(route: Route, steps: u32) -> Self {
        Lookup { route: Some(route), steps }
    }

    /// A lookup that found nothing after `steps` probes.
    pub fn miss(steps: u32) -> Self {
        Lookup { route: None, steps }
    }

    /// The matched route, or `None` if no prefix covers the address.
    pub fn route(&self) -> Option<&Route> {
        self.route.as_ref()
    }

    /// Consumes the lookup, returning the matched route.
    pub fn into_route(self) -> Option<Route> {
        self.route
    }

    /// Number of elementary probes performed.
    pub fn steps(&self) -> u32 {
        self.steps
    }

    /// Returns `true` if a route was found.
    pub fn is_hit(&self) -> bool {
        self.route.is_some()
    }
}

/// A longest-prefix-match forwarding table.
///
/// Inserting a route whose prefix is already present replaces it (and
/// returns the previous route).  Lookups return the route with the longest
/// prefix containing the address.
pub trait LpmTable {
    /// The organisation this engine implements.
    fn kind(&self) -> TableKind;

    /// Inserts `route`, returning the route it replaced if its prefix was
    /// already present.
    fn insert(&mut self, route: Route) -> Option<Route>;

    /// Removes the route for exactly `prefix`, returning it if present.
    fn remove(&mut self, prefix: &Ipv6Prefix) -> Option<Route>;

    /// Longest-prefix-match lookup.
    fn lookup(&self, addr: &Ipv6Address) -> Lookup;

    /// Returns the route stored for exactly `prefix`, if any.
    fn get(&self, prefix: &Ipv6Prefix) -> Option<Route>;

    /// Number of routes in the table.
    fn len(&self) -> usize;

    /// Returns `true` if the table holds no routes.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All routes, in an engine-defined order.
    fn routes(&self) -> Vec<Route>;

    /// Removes every route.
    fn clear(&mut self);

    /// The table's memory footprint in 32-bit words, under the same
    /// serialised formats the cycle router loads into processor memory
    /// (entry/node word counts mirror `taco-router`'s layout constants).
    /// All-integer, so scenario metrics stay byte-stable; under churn the
    /// arena-backed engines report their bounded high-water mark.
    fn memory_words(&self) -> usize;
}

impl LpmTable for Box<dyn LpmTable> {
    fn kind(&self) -> TableKind {
        (**self).kind()
    }

    fn insert(&mut self, route: Route) -> Option<Route> {
        (**self).insert(route)
    }

    fn remove(&mut self, prefix: &Ipv6Prefix) -> Option<Route> {
        (**self).remove(prefix)
    }

    fn lookup(&self, addr: &Ipv6Address) -> Lookup {
        (**self).lookup(addr)
    }

    fn get(&self, prefix: &Ipv6Prefix) -> Option<Route> {
        (**self).get(prefix)
    }

    fn len(&self) -> usize {
        (**self).len()
    }

    fn routes(&self) -> Vec<Route> {
        (**self).routes()
    }

    fn clear(&mut self) {
        (**self).clear()
    }

    fn memory_words(&self) -> usize {
        (**self).memory_words()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::route::PortId;

    #[test]
    fn lookup_constructors() {
        let r =
            Route::new("2001:db8::/32".parse().unwrap(), "fe80::1".parse().unwrap(), PortId(0), 1);
        let hit = Lookup::hit(r, 5);
        assert!(hit.is_hit());
        assert_eq!(hit.steps(), 5);
        assert_eq!(hit.into_route(), Some(r));

        let miss = Lookup::miss(100);
        assert!(!miss.is_hit());
        assert_eq!(miss.route(), None);
        assert_eq!(miss.steps(), 100);
    }

    #[test]
    fn kind_display() {
        assert_eq!(TableKind::Sequential.to_string(), "sequential");
        assert_eq!(TableKind::BalancedTree.to_string(), "balanced-tree");
        assert_eq!(TableKind::Cam.to_string(), "cam");
        assert_eq!(TableKind::Trie.to_string(), "trie");
        assert_eq!(TableKind::Patricia.to_string(), "patricia");
    }

    #[test]
    fn paper_kinds_order() {
        assert_eq!(
            TableKind::PAPER_KINDS,
            [TableKind::Sequential, TableKind::BalancedTree, TableKind::Cam]
        );
        assert_eq!(&TableKind::ALL_KINDS[..3], &TableKind::PAPER_KINDS);
        assert_eq!(TableKind::ALL_KINDS.len(), 5);
    }

    #[test]
    fn factory_builds_every_kind_with_identical_answers() {
        let routes = vec![
            Route::new("2001:db8::/32".parse().unwrap(), "fe80::1".parse().unwrap(), PortId(1), 1),
            Route::new(
                "2001:db8:aa::/48".parse().unwrap(),
                "fe80::2".parse().unwrap(),
                PortId(2),
                1,
            ),
        ];
        let addr = "2001:db8:aa::5".parse().unwrap();
        for kind in TableKind::ALL_KINDS {
            let table = kind.build(&routes);
            assert_eq!(table.kind(), kind);
            assert_eq!(table.len(), 2);
            let hit = table.lookup(&addr);
            assert_eq!(hit.route().unwrap().interface(), PortId(2), "{kind}");
            assert!(table.memory_words() > 0, "{kind}: footprint is never zero-for-free");
        }
    }

    #[test]
    fn factory_widens_the_cam_past_its_paper_capacity() {
        // 10k+ differential tables must build on the CAM organisation too;
        // the paper-default 8192-row spec would panic on insert.
        let routes: Vec<Route> = (0..9000u32)
            .map(|i| {
                let addr = taco_ipv6::Ipv6Address::from_words([0x2001_0000 | i, 0, 0, 0]);
                Route::new(
                    Ipv6Prefix::new(addr, 32).unwrap(),
                    "fe80::1".parse().unwrap(),
                    PortId((i % 4) as u16),
                    1,
                )
            })
            .collect();
        let cam = TableKind::Cam.build(&routes);
        assert_eq!(cam.len(), 9000);
        assert!(cam.lookup(&"2001:1234::1".parse().unwrap()).is_hit());
    }

    #[test]
    fn boxed_table_is_an_lpm_table() {
        // The blanket impl lets `Box<dyn LpmTable>` flow anywhere a
        // concrete engine does (e.g. `Router<Box<dyn LpmTable>>`).
        let mut boxed: Box<dyn LpmTable> = TableKind::Sequential.build(&[]);
        let route =
            Route::new("2001:db8::/32".parse().unwrap(), "fe80::1".parse().unwrap(), PortId(3), 1);
        assert!(LpmTable::insert(&mut boxed, route).is_none());
        assert_eq!(LpmTable::len(&boxed), 1);
        assert!(LpmTable::lookup(&boxed, &"2001:db8::9".parse().unwrap()).is_hit());
        assert_eq!(LpmTable::remove(&mut boxed, &route.prefix()), Some(route));
        assert!(LpmTable::is_empty(&boxed));
    }
}
