//! The routed objects: forwarding entries and interface identifiers.

use std::fmt;

use taco_ipv6::{Ipv6Address, Ipv6Prefix};

/// Identifier of a router port / line card.
///
/// The paper's generic router (Fig. 1) has four line cards; nothing in the
/// framework depends on that number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PortId(pub u16);

impl fmt::Display for PortId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "port{}", self.0)
    }
}

/// A forwarding-table entry: prefix → (next hop, output interface), plus the
/// RIPng bookkeeping fields (metric, route tag).
///
/// # Examples
///
/// ```
/// use taco_routing::{PortId, Route};
///
/// # fn main() -> Result<(), taco_ipv6::ParseError> {
/// let r = Route::new("2001:db8::/32".parse()?, "fe80::1".parse()?, PortId(3), 2);
/// assert_eq!(r.metric(), 2);
/// assert_eq!(r.to_string(), "2001:db8::/32 via fe80::1 dev port3 metric 2");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Route {
    prefix: Ipv6Prefix,
    next_hop: Ipv6Address,
    interface: PortId,
    metric: u8,
    route_tag: u16,
}

impl Route {
    /// Creates a route with route tag 0.
    pub fn new(prefix: Ipv6Prefix, next_hop: Ipv6Address, interface: PortId, metric: u8) -> Self {
        Route { prefix, next_hop, interface, metric, route_tag: 0 }
    }

    /// Creates a directly connected route (next hop unspecified, metric 1).
    pub fn connected(prefix: Ipv6Prefix, interface: PortId) -> Self {
        Route { prefix, next_hop: Ipv6Address::UNSPECIFIED, interface, metric: 1, route_tag: 0 }
    }

    /// Returns a copy with the given route tag.
    pub fn with_route_tag(mut self, tag: u16) -> Self {
        self.route_tag = tag;
        self
    }

    /// Returns a copy with the given metric.
    pub fn with_metric(mut self, metric: u8) -> Self {
        self.metric = metric;
        self
    }

    /// The destination prefix.
    pub fn prefix(&self) -> Ipv6Prefix {
        self.prefix
    }

    /// The next-hop address ([`Ipv6Address::UNSPECIFIED`] for directly
    /// connected networks).
    pub fn next_hop(&self) -> Ipv6Address {
        self.next_hop
    }

    /// The output interface.
    pub fn interface(&self) -> PortId {
        self.interface
    }

    /// The RIPng metric (hop count).
    pub fn metric(&self) -> u8 {
        self.metric
    }

    /// The RIPng route tag.
    pub fn route_tag(&self) -> u16 {
        self.route_tag
    }

    /// Returns `true` for directly connected routes.
    pub fn is_connected(&self) -> bool {
        self.next_hop.is_unspecified()
    }
}

impl fmt::Display for Route {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_connected() {
            write!(f, "{} dev {} metric {}", self.prefix, self.interface, self.metric)
        } else {
            write!(
                f,
                "{} via {} dev {} metric {}",
                self.prefix, self.next_hop, self.interface, self.metric
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Route {
        Route::new("2001:db8::/32".parse().unwrap(), "fe80::1".parse().unwrap(), PortId(1), 4)
    }

    #[test]
    fn accessors() {
        let r = sample().with_route_tag(99);
        assert_eq!(r.prefix().len(), 32);
        assert_eq!(r.metric(), 4);
        assert_eq!(r.route_tag(), 99);
        assert_eq!(r.interface(), PortId(1));
        assert!(!r.is_connected());
    }

    #[test]
    fn connected_route() {
        let c = Route::connected("2001:db8:1::/48".parse().unwrap(), PortId(0));
        assert!(c.is_connected());
        assert_eq!(c.metric(), 1);
        assert_eq!(c.to_string(), "2001:db8:1::/48 dev port0 metric 1");
    }

    #[test]
    fn with_metric_replaces() {
        assert_eq!(sample().with_metric(9).metric(), 9);
    }
}
