//! The sequential routing table: the paper's first case.
//!
//! "As the first case we implemented the routing table using a cache memory
//! in which the entries are organized sequentially."  Search time is linear
//! in the number of entries, which is why this organisation demands a 6 GHz
//! clock in the single-bus configuration of Table 1.

use taco_ipv6::{Ipv6Address, Ipv6Prefix};

use crate::route::Route;
use crate::table::{Lookup, LpmTable, TableKind};

/// A linear-scan longest-prefix-match table.
///
/// Entries are kept sorted by descending prefix length (ties broken by
/// prefix order), so the *first* matching entry during a scan is the longest
/// match and the scan can stop there — exactly the strategy the router
/// microcode uses when it walks the table in data memory with the Counter /
/// Masker / Matcher functional units.
///
/// # Examples
///
/// ```
/// use taco_routing::{LpmTable, PortId, Route, SequentialTable};
///
/// # fn main() -> Result<(), taco_ipv6::ParseError> {
/// let mut t = SequentialTable::new();
/// t.insert(Route::new("::/0".parse()?, "fe80::9".parse()?, PortId(9), 15));
/// t.insert(Route::new("2001:db8::/32".parse()?, "fe80::1".parse()?, PortId(1), 1));
///
/// // The /32 is scanned before the default route.
/// let hit = t.lookup(&"2001:db8::5".parse()?);
/// assert_eq!(hit.steps(), 1);
/// let miss_to_default = t.lookup(&"9999::1".parse()?);
/// assert_eq!(miss_to_default.route().unwrap().interface(), PortId(9));
/// assert_eq!(miss_to_default.steps(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SequentialTable {
    /// Sorted by descending prefix length, then by prefix.
    entries: Vec<Route>,
}

impl SequentialTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a table from an iterator of routes (later duplicates replace
    /// earlier ones, as with repeated [`LpmTable::insert`] calls).
    pub fn from_routes<I: IntoIterator<Item = Route>>(routes: I) -> Self {
        let mut t = Self::new();
        for r in routes {
            t.insert(r);
        }
        t
    }

    /// The entries in scan order (longest prefixes first) — the order in
    /// which the router lays the table out in data memory.
    pub fn entries(&self) -> &[Route] {
        &self.entries
    }

    fn position(&self, prefix: &Ipv6Prefix) -> Result<usize, usize> {
        self.entries.binary_search_by(|r| {
            // Descending length, then ascending prefix.
            prefix.len().cmp(&r.prefix().len()).then_with(|| r.prefix().cmp(prefix))
        })
    }
}

impl LpmTable for SequentialTable {
    fn kind(&self) -> TableKind {
        TableKind::Sequential
    }

    fn insert(&mut self, route: Route) -> Option<Route> {
        match self.position(&route.prefix()) {
            Ok(i) => Some(std::mem::replace(&mut self.entries[i], route)),
            Err(i) => {
                self.entries.insert(i, route);
                None
            }
        }
    }

    fn remove(&mut self, prefix: &Ipv6Prefix) -> Option<Route> {
        match self.position(prefix) {
            Ok(i) => Some(self.entries.remove(i)),
            Err(_) => None,
        }
    }

    fn lookup(&self, addr: &Ipv6Address) -> Lookup {
        for (i, r) in self.entries.iter().enumerate() {
            if r.prefix().contains(addr) {
                return Lookup::hit(*r, (i + 1) as u32);
            }
        }
        Lookup::miss(self.entries.len() as u32)
    }

    fn get(&self, prefix: &Ipv6Prefix) -> Option<Route> {
        self.position(prefix).ok().map(|i| self.entries[i])
    }

    fn len(&self) -> usize {
        self.entries.len()
    }

    fn routes(&self) -> Vec<Route> {
        self.entries.clone()
    }

    fn clear(&mut self) {
        self.entries.clear();
    }

    fn memory_words(&self) -> usize {
        // 12 words per serialised entry (`SEQ_ENTRY_WORDS`): interleaved
        // mask/prefix pairs plus interface, handle and padding.
        12 * self.entries.len()
    }
}

impl FromIterator<Route> for SequentialTable {
    fn from_iter<I: IntoIterator<Item = Route>>(iter: I) -> Self {
        Self::from_routes(iter)
    }
}

impl Extend<Route> for SequentialTable {
    fn extend<I: IntoIterator<Item = Route>>(&mut self, iter: I) {
        for r in iter {
            self.insert(r);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::route::PortId;

    fn r(p: &str, port: u16) -> Route {
        Route::new(p.parse().unwrap(), "fe80::1".parse().unwrap(), PortId(port), 1)
    }

    fn a(s: &str) -> Ipv6Address {
        s.parse().unwrap()
    }

    #[test]
    fn empty_table_misses_with_zero_steps() {
        let t = SequentialTable::new();
        let l = t.lookup(&a("::1"));
        assert!(!l.is_hit());
        assert_eq!(l.steps(), 0);
    }

    #[test]
    fn longest_match_wins_regardless_of_insert_order() {
        let mut t = SequentialTable::new();
        t.insert(r("2001:db8::/32", 1));
        t.insert(r("2001:db8:1::/48", 2));
        t.insert(r("::/0", 0));
        assert_eq!(t.lookup(&a("2001:db8:1::9")).route().unwrap().interface(), PortId(2));
        assert_eq!(t.lookup(&a("2001:db8:2::9")).route().unwrap().interface(), PortId(1));
        assert_eq!(t.lookup(&a("abcd::1")).route().unwrap().interface(), PortId(0));
    }

    #[test]
    fn steps_count_scanned_entries() {
        let t =
            SequentialTable::from_routes((0..10).map(|i| r(&format!("2001:db8:{i:x}::/48"), i)));
        // All /48s: scan order is prefix order, so 2001:db8:0:: is first.
        assert_eq!(t.lookup(&a("2001:db8:0::1")).steps(), 1);
        assert_eq!(t.lookup(&a("2001:db8:9::1")).steps(), 10);
        assert_eq!(t.lookup(&a("ffff::1")).steps(), 10); // miss scans all
    }

    #[test]
    fn insert_replaces_same_prefix() {
        let mut t = SequentialTable::new();
        assert_eq!(t.insert(r("2001:db8::/32", 1)), None);
        let old = t.insert(r("2001:db8::/32", 7));
        assert_eq!(old.unwrap().interface(), PortId(1));
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(&"2001:db8::/32".parse().unwrap()).unwrap().interface(), PortId(7));
    }

    #[test]
    fn remove_and_clear() {
        let mut t = SequentialTable::from_routes([r("2001:db8::/32", 1), r("::/0", 0)]);
        assert_eq!(t.remove(&"2001:db8::/32".parse().unwrap()).unwrap().interface(), PortId(1));
        assert_eq!(t.remove(&"2001:db8::/32".parse().unwrap()), None);
        assert_eq!(t.len(), 1);
        t.clear();
        assert!(t.is_empty());
    }

    #[test]
    fn scan_order_is_longest_first() {
        let t = SequentialTable::from_routes([
            r("::/0", 0),
            r("2001:db8::/32", 1),
            r("2001:db8:1::/48", 2),
        ]);
        let lens: Vec<u8> = t.entries().iter().map(|e| e.prefix().len()).collect();
        assert_eq!(lens, vec![48, 32, 0]);
    }

    #[test]
    fn kind_and_collect() {
        let t: SequentialTable = [r("::/0", 0)].into_iter().collect();
        assert_eq!(t.kind(), TableKind::Sequential);
        assert_eq!(t.routes().len(), 1);
    }
}
