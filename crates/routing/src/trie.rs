//! A bitwise binary trie — the reference longest-prefix-match baseline.
//!
//! The paper's Table 1 evaluates sequential, balanced-tree and CAM
//! organisations; the trie is the textbook software alternative ("software
//! based algorithms" in the paper's related-work discussion) and serves two
//! purposes here: a cross-check oracle for the other engines, and a fourth
//! data point for the scaling ablation (its probe count is bounded by the
//! longest stored prefix length, not by the table size).

use taco_ipv6::{Ipv6Address, Ipv6Prefix};

use crate::arena::Arena;
use crate::route::Route;
use crate::table::{Lookup, LpmTable, TableKind};

#[derive(Debug, Clone, Default)]
struct Node {
    children: [Option<usize>; 2],
    route: Option<Route>,
}

/// A binary (unibit) trie over prefix bits.
///
/// Nodes live in an arena; child pointers are indices.  Removal prunes
/// now-empty branches bottom-up and returns their nodes to a free list that
/// [`insert`](LpmTable::insert) draws from before growing the arena, so a
/// churning table (route flaps, link flaps) keeps a bounded arena instead
/// of leaking one node per prefix bit per cycle.
///
/// # Examples
///
/// ```
/// use taco_routing::{LpmTable, PortId, Route, TrieTable};
///
/// # fn main() -> Result<(), taco_ipv6::ParseError> {
/// let mut t = TrieTable::new();
/// t.insert(Route::new("2001:db8::/32".parse()?, "fe80::1".parse()?, PortId(1), 1));
/// let l = t.lookup(&"2001:db8::42".parse()?);
/// assert!(l.is_hit());
/// assert_eq!(l.steps(), 33); // root + one node per prefix bit
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct TrieTable {
    nodes: Arena<Node>,
    len: usize,
}

impl Default for TrieTable {
    fn default() -> Self {
        TrieTable { nodes: Arena::with_root(Node::default()), len: 0 }
    }
}

impl TrieTable {
    /// Creates an empty trie.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a trie from an iterator of routes.
    pub fn from_routes<I: IntoIterator<Item = Route>>(routes: I) -> Self {
        let mut t = Self::new();
        for r in routes {
            t.insert(r);
        }
        t
    }

    /// Total number of arena slots, including free-listed ones (a size
    /// metric for the scaling ablation; under churn this stays bounded
    /// because pruned nodes are reused).
    pub fn node_count(&self) -> usize {
        self.nodes.slot_count()
    }

    /// Arena slots currently sitting on the free list, awaiting reuse.
    pub fn free_count(&self) -> usize {
        self.nodes.free_count()
    }

    /// Flattened view of the node arena for serialisation into processor
    /// memory: `(left child, right child, route)` per node, indexed by
    /// arena position (the root is node 0).
    pub fn flat_nodes(
        &self,
    ) -> impl Iterator<Item = (Option<usize>, Option<usize>, Option<&Route>)> {
        self.nodes.iter().map(|n| (n.children[0], n.children[1], n.route.as_ref()))
    }

    fn walk(&self, prefix: &Ipv6Prefix) -> Option<usize> {
        let mut idx = 0usize;
        for bit in 0..prefix.len() {
            let b = prefix.addr().bit(bit) as usize;
            idx = self.nodes[idx].children[b]?;
        }
        Some(idx)
    }
}

impl LpmTable for TrieTable {
    fn kind(&self) -> TableKind {
        TableKind::Trie
    }

    fn insert(&mut self, route: Route) -> Option<Route> {
        let prefix = route.prefix();
        let mut idx = 0usize;
        for bit in 0..prefix.len() {
            let b = prefix.addr().bit(bit) as usize;
            idx = match self.nodes[idx].children[b] {
                Some(c) => c,
                None => {
                    let c = self.nodes.alloc(Node::default());
                    self.nodes[idx].children[b] = Some(c);
                    c
                }
            };
        }
        let old = self.nodes[idx].route.replace(route);
        if old.is_none() {
            self.len += 1;
        }
        old
    }

    fn remove(&mut self, prefix: &Ipv6Prefix) -> Option<Route> {
        let mut path = Vec::with_capacity(usize::from(prefix.len()));
        let mut idx = 0usize;
        for bit in 0..prefix.len() {
            let b = prefix.addr().bit(bit) as usize;
            let child = self.nodes[idx].children[b]?;
            path.push((idx, b));
            idx = child;
        }
        let old = self.nodes[idx].route.take()?;
        self.len -= 1;
        // Prune the now-dead tail of the walk: every node left with no
        // route and no children goes back to the free list.  Stops at the
        // first node another prefix still needs (the root is never on the
        // path, so it is never freed).
        let mut cur = idx;
        for (parent, b) in path.into_iter().rev() {
            let node = &self.nodes[cur];
            if node.route.is_some() || node.children.iter().any(Option::is_some) {
                break;
            }
            self.nodes[parent].children[b] = None;
            self.nodes.release(cur);
            cur = parent;
        }
        Some(old)
    }

    fn lookup(&self, addr: &Ipv6Address) -> Lookup {
        let mut idx = 0usize;
        let mut steps = 1u32; // the root is probed too
        let mut best = self.nodes[0].route;
        for bit in 0..128u8 {
            let b = addr.bit(bit) as usize;
            match self.nodes[idx].children[b] {
                Some(c) => {
                    idx = c;
                    steps += 1;
                    if self.nodes[idx].route.is_some() {
                        best = self.nodes[idx].route;
                    }
                }
                None => break,
            }
        }
        match best {
            Some(r) => Lookup::hit(r, steps),
            None => Lookup::miss(steps),
        }
    }

    fn get(&self, prefix: &Ipv6Prefix) -> Option<Route> {
        self.walk(prefix).and_then(|i| self.nodes[i].route)
    }

    fn len(&self) -> usize {
        self.len
    }

    fn routes(&self) -> Vec<Route> {
        self.nodes.iter().filter_map(|n| n.route).collect()
    }

    fn clear(&mut self) {
        self.nodes.reset(Node::default());
        self.len = 0;
    }

    fn memory_words(&self) -> usize {
        // 4 words per arena slot (`TRIE_NODE_WORDS`): left, right,
        // interface, handle.  Counts free-listed slots too — the churn
        // high-water mark is exactly what the footprint metric watches.
        4 * self.node_count()
    }
}

impl FromIterator<Route> for TrieTable {
    fn from_iter<I: IntoIterator<Item = Route>>(iter: I) -> Self {
        Self::from_routes(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::route::PortId;

    fn r(p: &str, port: u16) -> Route {
        Route::new(p.parse().unwrap(), "fe80::1".parse().unwrap(), PortId(port), 1)
    }

    fn a(s: &str) -> Ipv6Address {
        s.parse().unwrap()
    }

    #[test]
    fn empty_misses() {
        let t = TrieTable::new();
        let l = t.lookup(&a("::1"));
        assert!(!l.is_hit());
        assert_eq!(l.steps(), 1);
    }

    #[test]
    fn longest_match() {
        let t =
            TrieTable::from_routes([r("::/0", 0), r("2001:db8::/32", 1), r("2001:db8:1::/48", 2)]);
        assert_eq!(t.lookup(&a("2001:db8:1::9")).route().unwrap().interface(), PortId(2));
        assert_eq!(t.lookup(&a("2001:db8:2::9")).route().unwrap().interface(), PortId(1));
        assert_eq!(t.lookup(&a("abcd::")).route().unwrap().interface(), PortId(0));
    }

    #[test]
    fn default_route_at_root() {
        let t = TrieTable::from_routes([r("::/0", 3)]);
        let l = t.lookup(&a("1234::1"));
        assert_eq!(l.route().unwrap().interface(), PortId(3));
        assert_eq!(l.steps(), 1);
    }

    #[test]
    fn steps_bounded_by_prefix_depth() {
        let t = TrieTable::from_routes([r("2001:db8::/32", 1)]);
        let l = t.lookup(&a("2001:db8::1"));
        // Walks 32 prefix bits then stops (no deeper children).
        assert_eq!(l.steps(), 33);
    }

    #[test]
    fn insert_replace_remove() {
        let mut t = TrieTable::new();
        assert!(t.insert(r("2001:db8::/32", 1)).is_none());
        assert_eq!(t.len(), 1);
        assert_eq!(t.insert(r("2001:db8::/32", 2)).unwrap().interface(), PortId(1));
        assert_eq!(t.len(), 1);
        assert_eq!(t.remove(&"2001:db8::/32".parse().unwrap()).unwrap().interface(), PortId(2));
        assert_eq!(t.len(), 0);
        assert!(t.remove(&"2001:db8::/32".parse().unwrap()).is_none());
        assert!(!t.lookup(&a("2001:db8::1")).is_hit());
    }

    #[test]
    fn get_exact_only() {
        let t = TrieTable::from_routes([r("2001:db8::/32", 1)]);
        assert!(t.get(&"2001:db8::/32".parse().unwrap()).is_some());
        assert!(t.get(&"2001:db8::/33".parse().unwrap()).is_none());
        assert!(t.get(&"2001:db8::/31".parse().unwrap()).is_none());
    }

    #[test]
    fn node_count_grows_with_prefix_bits() {
        let mut t = TrieTable::new();
        assert_eq!(t.node_count(), 1);
        t.insert(r("8000::/1", 1));
        assert_eq!(t.node_count(), 2);
        t.insert(r("8000::/2", 2)); // shares the first branch
        assert_eq!(t.node_count(), 3);
    }

    #[test]
    fn routes_collects_all() {
        let t = TrieTable::from_routes([r("::/0", 0), r("8000::/1", 1)]);
        assert_eq!(t.routes().len(), 2);
    }

    #[test]
    fn removal_prunes_the_dead_branch() {
        let mut t = TrieTable::new();
        t.insert(r("2001:db8::/32", 1));
        let grown = t.node_count();
        assert_eq!(grown, 33); // root + 32 prefix bits
        t.remove(&"2001:db8::/32".parse().unwrap());
        assert_eq!(t.free_count(), 32, "every non-root node of the branch is reclaimed");
        // The freed slots satisfy the next insert without growing the arena.
        t.insert(r("fe80::/10", 2));
        assert_eq!(t.node_count(), grown);
        assert_eq!(t.lookup(&a("fe80::9")).route().unwrap().interface(), PortId(2));
    }

    #[test]
    fn pruning_stops_at_shared_branches() {
        let mut t = TrieTable::new();
        t.insert(r("2001:db8::/32", 1));
        t.insert(r("2001:db8::/48", 2)); // extends the /32 walk by 16 nodes
        t.remove(&"2001:db8::/48".parse().unwrap());
        assert_eq!(t.free_count(), 16, "only the /48 tail is pruned");
        assert_eq!(t.lookup(&a("2001:db8::1")).route().unwrap().interface(), PortId(1));
        // Removing a prefix that still has descendants frees nothing.
        let mut t = TrieTable::from_routes([r("2001:db8::/32", 1), r("2001:db8::/48", 2)]);
        t.remove(&"2001:db8::/32".parse().unwrap());
        assert_eq!(t.free_count(), 0);
        assert_eq!(t.lookup(&a("2001:db8::1")).route().unwrap().interface(), PortId(2));
    }

    #[test]
    fn churn_keeps_the_arena_bounded() {
        // A flapping route used to leak ~#prefix-bits arena nodes per
        // insert/remove cycle; with the free list the arena must stay at
        // its high-water mark.
        let mut t = TrieTable::from_routes([r("::/0", 0), r("2001:db8::/32", 1)]);
        let high_water = {
            t.insert(r("2001:db8:aaaa::/48", 7));
            t.node_count()
        };
        t.remove(&"2001:db8:aaaa::/48".parse().unwrap());
        for flap in 0..1_000u16 {
            let route = r("2001:db8:aaaa::/48", flap);
            t.insert(route);
            assert_eq!(t.remove(&route.prefix()).unwrap().interface(), PortId(flap));
            assert!(
                t.node_count() <= high_water,
                "arena leaked: {} nodes after {} flaps (high water {})",
                t.node_count(),
                flap + 1,
                high_water
            );
        }
        assert_eq!(t.len(), 2);
        assert_eq!(t.lookup(&a("2001:db8::1")).route().unwrap().interface(), PortId(1));
    }

    #[test]
    fn clear_resets_the_free_list() {
        let mut t = TrieTable::from_routes([r("2001:db8::/32", 1)]);
        t.remove(&"2001:db8::/32".parse().unwrap());
        assert!(t.free_count() > 0);
        t.clear();
        assert_eq!((t.node_count(), t.free_count(), t.len()), (1, 0, 0));
        t.insert(r("8000::/1", 4));
        assert_eq!(t.lookup(&a("9000::1")).route().unwrap().interface(), PortId(4));
    }
}
