//! The balanced-tree routing table: the paper's second case.
//!
//! "In order to get a faster search time we implemented a balanced tree
//! structure, that offers logarithmic complexity of searching time.
//! However, the insertion and deletion operations become much more complex."
//!
//! The classic way to get a *balanced binary search tree* to answer
//! longest-prefix-match queries is to search over **prefix ranges**
//! (Lampson/Srinivasan/Varghese): every prefix covers a contiguous interval
//! of the 128-bit address space, CIDR intervals nest perfectly, so cutting
//! the space at every interval boundary yields segments with a unique most
//! specific prefix each.  A balanced tree over the segment start points
//! answers a lookup in one root-to-leaf descent.
//!
//! The price is exactly the one the paper calls out: inserting or deleting a
//! prefix changes the segment structure, so mutations rebuild the search
//! tree.  The paper argues this is acceptable because "routing table updates
//! appear once in 2 minutes" once a topology stabilises.

use std::collections::BTreeMap;

use taco_ipv6::{Ipv6Address, Ipv6Prefix};

use crate::route::Route;
use crate::table::{Lookup, LpmTable, TableKind};

fn addr_to_u128(a: &Ipv6Address) -> u128 {
    u128::from_be_bytes(a.octets())
}

fn prefix_interval(p: &Ipv6Prefix) -> (u128, u128) {
    let lo = addr_to_u128(&p.addr());
    let host_bits = 128 - u32::from(p.len());
    let hi = if host_bits == 128 { u128::MAX } else { lo | ((1u128 << host_bits) - 1) };
    (lo, hi)
}

/// One segment of the address space with a homogeneous longest match.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Segment {
    start: u128,
    route: Option<Route>,
}

/// A balanced-search-tree longest-prefix-match table.
///
/// Lookups descend a perfectly balanced binary tree over address-space
/// segments; [`Lookup::steps`] counts the tree levels visited, which is the
/// quantity the router microcode turns into memory probes and compares.
/// For the paper's 100-entry table the depth is ⌈log₂(2·100+1)⌉ = 8.
///
/// # Examples
///
/// ```
/// use taco_routing::{BalancedTreeTable, LpmTable, PortId, Route};
///
/// # fn main() -> Result<(), taco_ipv6::ParseError> {
/// let mut t = BalancedTreeTable::new();
/// for i in 0..100u16 {
///     let p = format!("2001:db8:{i:x}::/48").parse()?;
///     t.insert(Route::new(p, "fe80::1".parse()?, PortId(i), 1));
/// }
/// let l = t.lookup(&"2001:db8:63::1".parse()?);
/// assert_eq!(l.route().unwrap().interface(), PortId(0x63));
/// assert!(l.steps() <= 8); // logarithmic, not linear
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct BalancedTreeTable {
    /// Authoritative route set, keyed by prefix.
    routes: BTreeMap<Ipv6Prefix, Route>,
    /// Segments sorted by start address; an implicit perfectly balanced BST.
    segments: Vec<Segment>,
}

impl BalancedTreeTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a table from an iterator of routes.
    pub fn from_routes<I: IntoIterator<Item = Route>>(routes: I) -> Self {
        let mut t = Self::new();
        for r in routes {
            t.routes.insert(r.prefix(), r);
        }
        t.rebuild();
        t
    }

    /// Number of segments in the search structure (`2n+1` worst case for
    /// `n` prefixes).
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// Depth of the balanced search tree — the worst-case number of probes
    /// per lookup.
    pub fn depth(&self) -> u32 {
        (usize::BITS - self.segments.len().leading_zeros()).max(1)
    }

    /// The segments as `(start, route)` pairs in address order — the layout
    /// the router serialises into data memory for the microcoded tree walk.
    pub fn segments(&self) -> impl Iterator<Item = (Ipv6Address, Option<&Route>)> {
        self.segments.iter().map(|s| (Ipv6Address::new(s.start.to_be_bytes()), s.route.as_ref()))
    }

    /// Recomputes the segment structure from the authoritative route set.
    ///
    /// This is the "much more complex" mutation cost of the paper.  Prefix
    /// intervals form a laminar family (two prefixes either nest or are
    /// disjoint), so a single sweep with a nesting stack yields every
    /// segment's longest covering prefix in O(n log n) — fast enough that
    /// scenario engines can stream routes in one at a time.
    fn rebuild(&mut self) {
        let mut points: Vec<u128> = vec![0];
        for p in self.routes.keys() {
            let (lo, hi) = prefix_interval(p);
            points.push(lo);
            if hi != u128::MAX {
                points.push(hi + 1);
            }
        }
        points.sort_unstable();
        points.dedup();

        // Intervals ordered by start, outer (larger) before the inner ones
        // sharing it: sweeping in this order keeps the innermost active
        // prefix — the longest match — on top of the stack.
        let mut ordered: Vec<(u128, u128, Route)> = self
            .routes
            .iter()
            .map(|(p, r)| {
                let (lo, hi) = prefix_interval(p);
                (lo, hi, *r)
            })
            .collect();
        ordered.sort_unstable_by(|a, b| a.0.cmp(&b.0).then(b.1.cmp(&a.1)));

        let mut active: Vec<(u128, Route)> = Vec::new(); // (end, route), innermost last
        let mut next = 0usize;
        self.segments = points
            .into_iter()
            .map(|start| {
                while active.last().is_some_and(|&(end, _)| end < start) {
                    active.pop();
                }
                while next < ordered.len() && ordered[next].0 <= start {
                    let (_, end, route) = ordered[next];
                    next += 1;
                    if end >= start {
                        active.push((end, route));
                    }
                }
                Segment { start, route: active.last().map(|&(_, r)| r) }
            })
            .collect();
    }
}

impl LpmTable for BalancedTreeTable {
    fn kind(&self) -> TableKind {
        TableKind::BalancedTree
    }

    fn insert(&mut self, route: Route) -> Option<Route> {
        let old = self.routes.insert(route.prefix(), route);
        self.rebuild();
        old
    }

    fn remove(&mut self, prefix: &Ipv6Prefix) -> Option<Route> {
        let old = self.routes.remove(prefix);
        if old.is_some() {
            self.rebuild();
        }
        old
    }

    fn lookup(&self, addr: &Ipv6Address) -> Lookup {
        if self.segments.is_empty() {
            return Lookup::miss(0);
        }
        let key = addr_to_u128(addr);
        // Descend the implicit balanced BST: classic binary search for the
        // rightmost segment start <= key, counting visited nodes.
        let mut lo = 0usize;
        let mut hi = self.segments.len();
        let mut steps = 0u32;
        let mut best = 0usize; // segments[0].start == 0 <= key always
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            steps += 1;
            if self.segments[mid].start <= key {
                best = mid;
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        match self.segments[best].route {
            Some(r) => Lookup::hit(r, steps),
            None => Lookup::miss(steps),
        }
    }

    fn get(&self, prefix: &Ipv6Prefix) -> Option<Route> {
        self.routes.get(prefix).copied()
    }

    fn len(&self) -> usize {
        self.routes.len()
    }

    fn routes(&self) -> Vec<Route> {
        self.routes.values().copied().collect()
    }

    fn clear(&mut self) {
        self.routes.clear();
        self.segments.clear();
    }

    fn memory_words(&self) -> usize {
        // 8 words per serialised tree node (`TREE_NODE_WORDS`), one node
        // per range segment (up to `2n + 1` segments for `n` routes).
        8 * self.segment_count()
    }
}

impl FromIterator<Route> for BalancedTreeTable {
    fn from_iter<I: IntoIterator<Item = Route>>(iter: I) -> Self {
        Self::from_routes(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::route::PortId;

    fn r(p: &str, port: u16) -> Route {
        Route::new(p.parse().unwrap(), "fe80::1".parse().unwrap(), PortId(port), 1)
    }

    fn a(s: &str) -> Ipv6Address {
        s.parse().unwrap()
    }

    #[test]
    fn empty_misses() {
        let t = BalancedTreeTable::new();
        assert!(!t.lookup(&a("::1")).is_hit());
    }

    #[test]
    fn nested_prefixes_resolve_to_longest() {
        let t = BalancedTreeTable::from_routes([
            r("::/0", 0),
            r("2001:db8::/32", 1),
            r("2001:db8:1::/48", 2),
            r("2001:db8:1:1::/64", 3),
        ]);
        assert_eq!(t.lookup(&a("2001:db8:1:1::5")).route().unwrap().interface(), PortId(3));
        assert_eq!(t.lookup(&a("2001:db8:1:2::5")).route().unwrap().interface(), PortId(2));
        assert_eq!(t.lookup(&a("2001:db8:9::5")).route().unwrap().interface(), PortId(1));
        assert_eq!(t.lookup(&a("9::")).route().unwrap().interface(), PortId(0));
    }

    #[test]
    fn address_after_interval_end_misses() {
        let t = BalancedTreeTable::from_routes([r("2001:db8::/32", 1)]);
        assert!(!t.lookup(&a("2001:db9::1")).is_hit());
        assert!(!t.lookup(&a("::1")).is_hit());
        assert!(!t.lookup(&a("ffff:ffff:ffff:ffff:ffff:ffff:ffff:ffff")).is_hit());
    }

    #[test]
    fn full_space_prefix_interval() {
        // ::/0 covers the whole space including the last address.
        let t = BalancedTreeTable::from_routes([r("::/0", 7)]);
        assert!(t.lookup(&a("ffff:ffff:ffff:ffff:ffff:ffff:ffff:ffff")).is_hit());
        assert!(t.lookup(&a("::")).is_hit());
    }

    #[test]
    fn steps_are_logarithmic() {
        let t = BalancedTreeTable::from_routes(
            (0..100u16).map(|i| r(&format!("2001:db8:{i:x}::/48"), i)),
        );
        let l = t.lookup(&a("2001:db8:40::1"));
        assert!(l.is_hit());
        assert!(l.steps() <= t.depth());
        assert!(t.depth() <= 8, "depth {} for 100 entries", t.depth());
    }

    #[test]
    fn segment_count_bound() {
        let t = BalancedTreeTable::from_routes(
            (0..50u16).map(|i| r(&format!("2001:db8:{i:x}::/48"), i)),
        );
        assert!(t.segment_count() <= 2 * 50 + 1);
        assert!(t.segment_count() > 50);
    }

    #[test]
    fn mutation_rebuilds() {
        let mut t = BalancedTreeTable::new();
        t.insert(r("2001:db8::/32", 1));
        assert_eq!(t.lookup(&a("2001:db8::1")).route().unwrap().interface(), PortId(1));
        t.insert(r("2001:db8::/48", 2));
        assert_eq!(t.lookup(&a("2001:db8::1")).route().unwrap().interface(), PortId(2));
        t.remove(&"2001:db8::/48".parse().unwrap());
        assert_eq!(t.lookup(&a("2001:db8::1")).route().unwrap().interface(), PortId(1));
        t.remove(&"2001:db8::/32".parse().unwrap());
        assert!(!t.lookup(&a("2001:db8::1")).is_hit());
    }

    #[test]
    fn insert_replaces() {
        let mut t = BalancedTreeTable::new();
        assert!(t.insert(r("2001:db8::/32", 1)).is_none());
        assert_eq!(t.insert(r("2001:db8::/32", 9)).unwrap().interface(), PortId(1));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn host_route() {
        let t = BalancedTreeTable::from_routes([r("2001:db8::7/128", 5), r("::/0", 0)]);
        assert_eq!(t.lookup(&a("2001:db8::7")).route().unwrap().interface(), PortId(5));
        assert_eq!(t.lookup(&a("2001:db8::8")).route().unwrap().interface(), PortId(0));
    }

    #[test]
    fn segments_iterate_in_order() {
        let t = BalancedTreeTable::from_routes([r("8000::/1", 1)]);
        let starts: Vec<_> = t.segments().map(|(s, _)| s).collect();
        assert_eq!(starts, vec![a("::"), a("8000::")]);
    }
}
