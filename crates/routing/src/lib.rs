#![warn(missing_docs)]

//! Routing-table substrate for the TACO IPv6 router.
//!
//! The paper's central design question is *how to implement the routing
//! table*, because "the Routing Table implementation is the most important
//! aspect of a router's performance".  Three organisations are evaluated:
//!
//! * [`SequentialTable`] — entries organised sequentially in a cache memory;
//!   linear search time (the paper's first case);
//! * [`BalancedTreeTable`] — a balanced search tree over prefix ranges;
//!   logarithmic search time at the price of "much more complex" insertion
//!   and deletion (the paper's second case);
//! * [`CamTable`] — a 136-bit-wide content-addressable memory paired with an
//!   SRAM, searching in a fixed ~40 ns regardless of table size (the paper's
//!   third case);
//!
//! plus two trie organisations: the unibit [`TrieTable`] baseline for
//! cross-checking, and the path-compressed [`PatriciaTable`] that scales
//! longest-prefix match to internet-size (BGP, ~200k-prefix) tables.  Every
//! engine must produce identical longest-prefix-match answers; the
//! pointer-based engines share the [`arena::Arena`] free-list node store so
//! route churn keeps their memory bounded.
//!
//! All engines implement [`LpmTable`] and report the number of elementary
//! probes each lookup performed ([`Lookup::steps`]); the cycle-accurate
//! router charges processor cycles per probe, which is where Table 1's
//! frequency requirements come from.
//!
//! The crate also contains the [`ripng`] routing engine (RFC 2080): timers,
//! split horizon with poisoned reverse, triggered updates — the control
//! plane that populates the tables.
//!
//! # Examples
//!
//! ```
//! use taco_routing::{LpmTable, PortId, Route, SequentialTable};
//!
//! # fn main() -> Result<(), taco_ipv6::ParseError> {
//! let mut table = SequentialTable::new();
//! table.insert(Route::new("2001:db8::/32".parse()?, "fe80::1".parse()?, PortId(1), 1));
//! table.insert(Route::new("2001:db8:aa::/48".parse()?, "fe80::2".parse()?, PortId(2), 1));
//!
//! let hit = table.lookup(&"2001:db8:aa::77".parse()?);
//! assert_eq!(hit.route().unwrap().interface(), PortId(2)); // longest match wins
//! # Ok(())
//! # }
//! ```

pub mod arena;
pub mod cam;
pub mod clock;
pub mod patricia;
pub mod ripng;
pub mod route;
pub mod sequential;
pub mod table;
pub mod tree;
pub mod trie;

pub use arena::Arena;
pub use cam::{CamSpec, CamTable};
pub use clock::SimTime;
pub use patricia::PatriciaTable;
pub use route::{PortId, Route};
pub use sequential::SequentialTable;
pub use table::{Lookup, LpmTable, TableKind};
pub use tree::BalancedTreeTable;
pub use trie::TrieTable;
