//! A path-compressed (PATRICIA) binary radix trie — internet-scale LPM.
//!
//! The unibit [`TrieTable`](crate::TrieTable) spends one node per prefix
//! *bit*; at BGP size (~200k prefixes, most of them /32–/64) that is tens
//! of nodes per route and a pointer chase per bit on every lookup.  The
//! PATRICIA organisation — per Click's `BSDIP6Lookup` exemplar, "fast
//! database updates, O(W) lookups" — collapses every non-branching chain
//! into a single node carrying the full prefix, so the node count is
//! bounded by `2n − 1` for `n` routes and a lookup probes at most one node
//! per *branching* bit.
//!
//! Each node stores a covering prefix, an optional route (internal nodes
//! may carry routes: aliased and nested prefixes land on the same spine),
//! and two children keyed by the address bit just past the node's prefix
//! length.  Descent tests one bit per node but must verify the *whole*
//! node prefix against the address — the skipped bits are not implied by
//! the path — and the deepest verified route wins.  Nodes live in the
//! shared [`Arena`]: removal prunes empty leaves and splices out
//! routeless one-child interior nodes, returning slots to the free list
//! so churn keeps the arena bounded.

use taco_ipv6::{Ipv6Address, Ipv6Prefix};

use crate::arena::Arena;
use crate::route::Route;
use crate::table::{Lookup, LpmTable, TableKind};

#[derive(Debug, Clone, Default)]
struct Node {
    /// The full covering prefix — `len()` is the branch bit.
    prefix: Ipv6Prefix,
    route: Option<Route>,
    children: [Option<usize>; 2],
}

/// A path-compressed binary radix trie over IPv6 prefixes.
///
/// # Examples
///
/// ```
/// use taco_routing::{LpmTable, PatriciaTable, PortId, Route};
///
/// # fn main() -> Result<(), taco_ipv6::ParseError> {
/// let mut t = PatriciaTable::new();
/// t.insert(Route::new("2001:db8::/32".parse()?, "fe80::1".parse()?, PortId(1), 1));
/// let l = t.lookup(&"2001:db8::42".parse()?);
/// assert!(l.is_hit());
/// assert_eq!(l.steps(), 2); // root + one path-compressed node for all 32 bits
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct PatriciaTable {
    /// Slot 0 is the `::/0` root, present even when empty.
    nodes: Arena<Node>,
    len: usize,
}

impl Default for PatriciaTable {
    fn default() -> Self {
        PatriciaTable { nodes: Arena::with_root(Node::default()), len: 0 }
    }
}

impl PatriciaTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a table from an iterator of routes.
    pub fn from_routes<I: IntoIterator<Item = Route>>(routes: I) -> Self {
        let mut t = Self::new();
        for r in routes {
            t.insert(r);
        }
        t
    }

    /// Total number of arena slots, including free-listed ones.  Bounded
    /// by `2n − 1` live nodes for `n` routes (plus the root), and bounded
    /// under churn because pruned slots are reused.
    pub fn node_count(&self) -> usize {
        self.nodes.slot_count()
    }

    /// Arena slots currently sitting on the free list, awaiting reuse.
    pub fn free_count(&self) -> usize {
        self.nodes.free_count()
    }

    /// Flattened view of the node arena for serialisation into processor
    /// memory: `(prefix, route, left child, right child)` per slot,
    /// indexed by arena position (the root is node 0; free-listed slots
    /// read as empty `::/0` nodes with no children).
    pub fn flat_nodes(
        &self,
    ) -> impl Iterator<Item = (Ipv6Prefix, Option<&Route>, Option<usize>, Option<usize>)> {
        self.nodes.iter().map(|n| (n.prefix, n.route.as_ref(), n.children[0], n.children[1]))
    }

    /// Descends to the node holding exactly `prefix`, if present.
    fn find_exact(&self, prefix: &Ipv6Prefix) -> Option<usize> {
        let mut idx = 0usize;
        while self.nodes[idx].prefix.len() < prefix.len() {
            let b = prefix.addr().bit(self.nodes[idx].prefix.len()) as usize;
            let c = self.nodes[idx].children[b]?;
            if !self.nodes[c].prefix.covers(prefix) {
                return None;
            }
            idx = c;
        }
        // Descent maintains "node covers prefix", so equal length ⇒ equal.
        (self.nodes[idx].prefix.len() == prefix.len()).then_some(idx)
    }

    /// Prunes upward from `idx` after a route removal.  `path` is the
    /// root-to-parent walk as `(parent, child slot)` pairs.  A routeless
    /// childless node is released; a routeless one-child interior node is
    /// spliced out (its only child inherits the parent link) — both keep
    /// the `2n − 1` bound an accumulation of dead branch nodes would break.
    fn prune(&mut self, idx: usize, mut path: Vec<(usize, usize)>) {
        let mut cur = idx;
        while cur != 0 {
            let node = &self.nodes[cur];
            if node.route.is_some() {
                break;
            }
            let kids: Vec<usize> = node.children.iter().flatten().copied().collect();
            let Some((parent, b)) = path.pop() else { break };
            match kids[..] {
                [] => {
                    self.nodes[parent].children[b] = None;
                    self.nodes.release(cur);
                    cur = parent;
                }
                [only] => {
                    self.nodes[parent].children[b] = Some(only);
                    self.nodes.release(cur);
                    break;
                }
                _ => break,
            }
        }
    }
}

impl LpmTable for PatriciaTable {
    fn kind(&self) -> TableKind {
        TableKind::Patricia
    }

    fn insert(&mut self, route: Route) -> Option<Route> {
        let prefix = route.prefix();
        let mut idx = 0usize;
        // Invariant: `nodes[idx].prefix` covers `prefix`.
        loop {
            let node_len = self.nodes[idx].prefix.len();
            if node_len == prefix.len() {
                let old = self.nodes[idx].route.replace(route);
                if old.is_none() {
                    self.len += 1;
                }
                return old;
            }
            let b = prefix.addr().bit(node_len) as usize;
            let Some(c) = self.nodes[idx].children[b] else {
                let leaf =
                    self.nodes.alloc(Node { prefix, route: Some(route), children: [None, None] });
                self.nodes[idx].children[b] = Some(leaf);
                self.len += 1;
                return None;
            };
            let child = self.nodes[c].prefix;
            let common =
                child.addr().common_prefix_len(&prefix.addr()).min(child.len()).min(prefix.len());
            if common == child.len() {
                // The child covers the new prefix — keep descending.
                idx = c;
            } else if common == prefix.len() {
                // The new prefix covers the child — interpose a route node.
                let down = child.addr().bit(prefix.len()) as usize;
                let mut children = [None, None];
                children[down] = Some(c);
                let mid = self.nodes.alloc(Node { prefix, route: Some(route), children });
                self.nodes[idx].children[b] = Some(mid);
                self.len += 1;
                return None;
            } else {
                // Divergence below both: a routeless branch node at the
                // first disagreeing bit, with the old child and a new leaf
                // on opposite sides.
                let fork =
                    Ipv6Prefix::new(prefix.addr().truncated(common), common).expect("common ≤ 128");
                let leaf =
                    self.nodes.alloc(Node { prefix, route: Some(route), children: [None, None] });
                let mut children = [None, None];
                children[child.addr().bit(common) as usize] = Some(c);
                children[prefix.addr().bit(common) as usize] = Some(leaf);
                let branch = self.nodes.alloc(Node { prefix: fork, route: None, children });
                self.nodes[idx].children[b] = Some(branch);
                self.len += 1;
                return None;
            }
        }
    }

    fn remove(&mut self, prefix: &Ipv6Prefix) -> Option<Route> {
        let mut path = Vec::new();
        let mut idx = 0usize;
        while self.nodes[idx].prefix.len() < prefix.len() {
            let b = prefix.addr().bit(self.nodes[idx].prefix.len()) as usize;
            let c = self.nodes[idx].children[b]?;
            if !self.nodes[c].prefix.covers(prefix) {
                return None;
            }
            path.push((idx, b));
            idx = c;
        }
        if self.nodes[idx].prefix.len() != prefix.len() {
            return None;
        }
        let old = self.nodes[idx].route.take()?;
        self.len -= 1;
        self.prune(idx, path);
        Some(old)
    }

    fn lookup(&self, addr: &Ipv6Address) -> Lookup {
        let mut idx = 0usize;
        let mut steps = 1u32; // the root is probed too
        let mut best = self.nodes[0].route;
        loop {
            let node_len = self.nodes[idx].prefix.len();
            if node_len >= 128 {
                break; // a /128 host node is always a leaf
            }
            let b = addr.bit(node_len) as usize;
            let Some(c) = self.nodes[idx].children[b] else { break };
            steps += 1;
            // The branch bit chose the child, but the compressed bits in
            // between are not implied by the path — verify the whole child
            // prefix.  On mismatch no descendant can match either (their
            // prefixes all extend this one), so the walk stops.
            if !self.nodes[c].prefix.contains(addr) {
                break;
            }
            if self.nodes[c].route.is_some() {
                best = self.nodes[c].route;
            }
            idx = c;
        }
        match best {
            Some(r) => Lookup::hit(r, steps),
            None => Lookup::miss(steps),
        }
    }

    fn get(&self, prefix: &Ipv6Prefix) -> Option<Route> {
        self.find_exact(prefix).and_then(|i| self.nodes[i].route)
    }

    fn len(&self) -> usize {
        self.len
    }

    fn routes(&self) -> Vec<Route> {
        self.nodes.iter().filter_map(|n| n.route).collect()
    }

    fn clear(&mut self) {
        self.nodes.reset(Node::default());
        self.len = 0;
    }

    fn memory_words(&self) -> usize {
        // 16 words per arena slot (`PAT_NODE_WORDS`): children, result,
        // branch-bit descriptor and the four interleaved mask/prefix word
        // pairs the verify step walks.  Counts free-listed slots too — the
        // churn high-water mark is exactly what the footprint metric
        // watches.
        16 * self.node_count()
    }
}

impl FromIterator<Route> for PatriciaTable {
    fn from_iter<I: IntoIterator<Item = Route>>(iter: I) -> Self {
        Self::from_routes(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::route::PortId;
    use crate::trie::TrieTable;

    fn r(p: &str, port: u16) -> Route {
        Route::new(p.parse().unwrap(), "fe80::1".parse().unwrap(), PortId(port), 1)
    }

    fn a(s: &str) -> Ipv6Address {
        s.parse().unwrap()
    }

    #[test]
    fn empty_misses() {
        let t = PatriciaTable::new();
        let l = t.lookup(&a("::1"));
        assert!(!l.is_hit());
        assert_eq!(l.steps(), 1);
    }

    #[test]
    fn longest_match_with_nesting_and_default() {
        let t = PatriciaTable::from_routes([
            r("::/0", 0),
            r("2001:db8::/32", 1),
            r("2001:db8:1::/48", 2),
        ]);
        assert_eq!(t.lookup(&a("2001:db8:1::9")).route().unwrap().interface(), PortId(2));
        assert_eq!(t.lookup(&a("2001:db8:2::9")).route().unwrap().interface(), PortId(1));
        assert_eq!(t.lookup(&a("abcd::")).route().unwrap().interface(), PortId(0));
    }

    #[test]
    fn path_compression_bounds_nodes_and_steps() {
        // One /32 route is a single node, not 32 — and the lookup probes
        // root + leaf only.
        let t = PatriciaTable::from_routes([r("2001:db8::/32", 1)]);
        assert_eq!(t.node_count(), 2);
        assert_eq!(t.lookup(&a("2001:db8::1")).steps(), 2);
        // n routes never need more than 2n − 1 nodes plus the root.
        let routes: Vec<Route> =
            (0..64u16).map(|i| r(&format!("2001:db8:{i:x}::/48"), i)).collect();
        let n = routes.len();
        let t = PatriciaTable::from_routes(routes);
        assert_eq!(t.len(), n);
        assert!(t.node_count() <= 2 * n, "{} nodes for {n} routes", t.node_count());
    }

    #[test]
    fn skipped_bits_are_verified_not_assumed() {
        // 2001:db8::/32 and 3001:db8::/32 first disagree at bit 2, so the
        // fork is near the top and each leaf compresses ~30 bits.  An
        // address agreeing on the *branch* bits but not the compressed
        // ones must miss.
        let t = PatriciaTable::from_routes([r("2001:db8::/32", 1), r("3001:db8::/32", 2)]);
        assert_eq!(t.lookup(&a("2001:db8::1")).route().unwrap().interface(), PortId(1));
        assert_eq!(t.lookup(&a("3001:db8::1")).route().unwrap().interface(), PortId(2));
        assert!(!t.lookup(&a("2001:db9::1")).is_hit(), "compressed bits must be checked");
        assert!(!t.lookup(&a("2101:db8::1")).is_hit());
    }

    #[test]
    fn interposed_covering_prefix_lands_between() {
        // Insert the more-specific first, then a covering /16: the /16
        // must be interposed on the spine, not lost.
        let mut t = PatriciaTable::new();
        t.insert(r("2001:db8::/32", 1));
        t.insert(r("2001::/16", 2));
        assert_eq!(t.lookup(&a("2001:db8::1")).route().unwrap().interface(), PortId(1));
        assert_eq!(t.lookup(&a("2001:ffff::1")).route().unwrap().interface(), PortId(2));
        assert!(!t.lookup(&a("2002::1")).is_hit());
        assert_eq!(t.node_count(), 3);
    }

    #[test]
    fn insert_replace_remove() {
        let mut t = PatriciaTable::new();
        assert!(t.insert(r("2001:db8::/32", 1)).is_none());
        assert_eq!(t.len(), 1);
        assert_eq!(t.insert(r("2001:db8::/32", 2)).unwrap().interface(), PortId(1));
        assert_eq!(t.len(), 1);
        assert_eq!(t.remove(&"2001:db8::/32".parse().unwrap()).unwrap().interface(), PortId(2));
        assert_eq!(t.len(), 0);
        assert!(t.remove(&"2001:db8::/32".parse().unwrap()).is_none());
        assert!(!t.lookup(&a("2001:db8::1")).is_hit());
    }

    #[test]
    fn get_exact_only() {
        let t = PatriciaTable::from_routes([r("2001:db8::/32", 1)]);
        assert!(t.get(&"2001:db8::/32".parse().unwrap()).is_some());
        assert!(t.get(&"2001:db8::/33".parse().unwrap()).is_none());
        assert!(t.get(&"2001:db8::/31".parse().unwrap()).is_none());
        assert!(t.get(&"2001:db9::/32".parse().unwrap()).is_none());
    }

    #[test]
    fn default_route_lives_at_the_root() {
        let t = PatriciaTable::from_routes([r("::/0", 3)]);
        let l = t.lookup(&a("1234::1"));
        assert_eq!(l.route().unwrap().interface(), PortId(3));
        assert_eq!(l.steps(), 1);
        assert_eq!(t.node_count(), 1, "the default route reuses the root node");
    }

    #[test]
    fn removal_releases_leaves_and_splices_dead_branches() {
        let mut t = PatriciaTable::new();
        t.insert(r("2001:db8:aaaa::/48", 1));
        t.insert(r("2001:db8:aaab::/48", 2));
        // Two leaves under one routeless fork node.
        assert_eq!(t.node_count(), 4);
        t.remove(&"2001:db8:aaab::/48".parse().unwrap());
        // The leaf goes, and the now one-child routeless fork is spliced out.
        assert_eq!(t.free_count(), 2, "leaf and dead fork both reclaimed");
        assert_eq!(t.lookup(&a("2001:db8:aaaa::1")).route().unwrap().interface(), PortId(1));
        // The freed slots are drained before the arena grows: the next two
        // routes need three nodes (a fork and two leaves) but only one
        // fresh slot.
        t.insert(r("fe80::/10", 3));
        t.insert(r("fec0::/10", 4));
        assert_eq!((t.node_count(), t.free_count()), (5, 0));
        assert_eq!(t.lookup(&a("fec0::9")).route().unwrap().interface(), PortId(4));
    }

    #[test]
    fn pruning_stops_at_route_carrying_interior_nodes() {
        let mut t = PatriciaTable::new();
        t.insert(r("2001:db8::/32", 1));
        t.insert(r("2001:db8::/48", 2));
        t.remove(&"2001:db8::/48".parse().unwrap());
        assert_eq!(t.free_count(), 1, "only the /48 leaf is pruned");
        assert_eq!(t.lookup(&a("2001:db8::1")).route().unwrap().interface(), PortId(1));
        // Removing an interior route keeps the node while children need it.
        let mut t = PatriciaTable::from_routes([r("2001:db8::/32", 1), r("2001:db8::/48", 2)]);
        t.remove(&"2001:db8::/32".parse().unwrap());
        assert_eq!(t.lookup(&a("2001:db8::1")).route().unwrap().interface(), PortId(2));
        assert!(!t.lookup(&a("2001:db8:ffff::1")).is_hit(), "/32 is really gone");
    }

    #[test]
    fn churn_keeps_the_arena_bounded() {
        // Mirrors the TrieTable free-list regression: a flapping route must
        // not grow the arena past its high-water mark.
        let mut t = PatriciaTable::from_routes([r("::/0", 0), r("2001:db8::/32", 1)]);
        let high_water = {
            t.insert(r("2001:db8:aaaa::/48", 7));
            t.node_count()
        };
        t.remove(&"2001:db8:aaaa::/48".parse().unwrap());
        for flap in 0..1_000u16 {
            let route = r("2001:db8:aaaa::/48", flap);
            t.insert(route);
            assert_eq!(t.remove(&route.prefix()).unwrap().interface(), PortId(flap));
            assert!(
                t.node_count() <= high_water,
                "arena leaked: {} nodes after {} flaps (high water {})",
                t.node_count(),
                flap + 1,
                high_water
            );
        }
        assert_eq!(t.len(), 2);
        assert_eq!(t.lookup(&a("2001:db8::1")).route().unwrap().interface(), PortId(1));
    }

    #[test]
    fn churn_agrees_with_the_trie_oracle_at_every_step() {
        // Seeded pseudo-random insert/remove history; after every step the
        // patricia table and the unibit trie oracle agree on a probe batch.
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            state
        };
        let mut pat = PatriciaTable::new();
        let mut trie = TrieTable::new();
        let mut live: Vec<Route> = Vec::new();
        for step in 0..400 {
            let x = next();
            if x % 3 != 0 || live.is_empty() {
                let len = [0u8, 16, 29, 32, 48, 64, 128][(x >> 8) as usize % 7];
                let addr = Ipv6Address::from_words([
                    0x2001_0000 | (x >> 16) as u32 & 0xffff,
                    (x >> 32) as u32,
                    (x >> 24) as u32,
                    x as u32,
                ])
                .truncated(len);
                let route = Route::new(
                    Ipv6Prefix::new(addr, len).unwrap(),
                    Ipv6Address::LOOPBACK,
                    PortId((x % 7) as u16),
                    1,
                );
                assert_eq!(pat.insert(route).map(|r| r.interface()), {
                    let old = trie.insert(route).map(|r| r.interface());
                    if old.is_none() {
                        live.push(route);
                    }
                    old
                });
            } else {
                let victim = live.swap_remove((x >> 16) as usize % live.len());
                assert_eq!(
                    pat.remove(&victim.prefix()).map(|r| r.interface()),
                    trie.remove(&victim.prefix()).map(|r| r.interface()),
                    "step {step}: removal of {} diverged",
                    victim.prefix()
                );
            }
            assert_eq!(pat.len(), trie.len(), "step {step}");
            for probe in 0..8u64 {
                let y = next() ^ probe;
                let addr = Ipv6Address::from_words([
                    0x2001_0000 | (y >> 16) as u32 & 0xffff,
                    (y >> 32) as u32,
                    (y >> 24) as u32,
                    y as u32,
                ]);
                assert_eq!(
                    pat.lookup(&addr).route().map(|r| (r.prefix(), r.interface())),
                    trie.lookup(&addr).route().map(|r| (r.prefix(), r.interface())),
                    "step {step}: lookup {addr} diverged"
                );
            }
        }
    }

    #[test]
    fn clear_resets_the_free_list() {
        let mut t = PatriciaTable::from_routes([r("2001:db8::/32", 1), r("2001:db9::/32", 2)]);
        t.remove(&"2001:db8::/32".parse().unwrap());
        assert!(t.free_count() > 0);
        t.clear();
        assert_eq!((t.node_count(), t.free_count(), t.len()), (1, 0, 0));
        t.insert(r("8000::/1", 4));
        assert_eq!(t.lookup(&a("9000::1")).route().unwrap().interface(), PortId(4));
    }
}
