//! The RIPng routing engine (RFC 2080).
//!
//! The paper's router "builds up the Routing Table by listening for specific
//! datagrams broadcasted by the adjacent routers" and "at regular intervals,
//! the routing table information is broadcasted to the adjacent routers".
//! This module is that control plane: a deterministic distance-vector engine
//! driven entirely by [`SimTime`], producing the RIPng packets to emit and
//! keeping a routing information base (RIB) that can be synchronised into
//! any [`LpmTable`] forwarding table.
//!
//! Implemented behaviours (RFC 2080 §2.3–§2.5):
//!
//! * metric arithmetic with infinity = 16;
//! * route timeout (180 s) and garbage-collection (120 s) timers;
//! * periodic full updates every 30 s (no jitter — simulations must be
//!   reproducible);
//! * triggered updates when routes change;
//! * split horizon with poisoned reverse;
//! * whole-table and per-prefix request handling.

use std::collections::BTreeMap;

use taco_ipv6::ripng::{Command, RipngPacket, RouteEntry, INFINITY_METRIC};
use taco_ipv6::{Ipv6Address, Ipv6Prefix};

use crate::clock::SimTime;
use crate::route::{PortId, Route};
use crate::table::LpmTable;

/// Static configuration of one router interface.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InterfaceConfig {
    /// The line card this interface lives on.
    pub port: PortId,
    /// Link-local source address used for RIPng packets on this interface.
    pub address: Ipv6Address,
    /// Prefixes directly connected to this interface (advertised with
    /// metric 1 and never expired).
    pub connected: Vec<Ipv6Prefix>,
    /// Cost added to routes learned over this interface (normally 1).
    pub cost: u8,
}

impl InterfaceConfig {
    /// Creates an interface with the default cost of 1.
    pub fn new(port: PortId, address: Ipv6Address, connected: Vec<Ipv6Prefix>) -> Self {
        InterfaceConfig { port, address, connected, cost: 1 }
    }
}

/// Why a route is in the RIB.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Origin {
    /// Directly connected network — never expires.
    Connected,
    /// Learned from a RIPng response.
    Rip { learned_from: Ipv6Address },
}

#[derive(Debug, Clone)]
struct RibRoute {
    route: Route,
    origin: Origin,
    /// When the route times out (metric forced to infinity). `None` for
    /// connected routes.
    expires_at: Option<SimTime>,
    /// When a dead route is finally removed from the RIB.
    gc_at: Option<SimTime>,
    /// Set when the route changed since the last (triggered or periodic)
    /// update.
    changed: bool,
}

/// Counters describing what the engine has done — handy in tests and in the
/// router's statistics output.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RipngStats {
    /// Full periodic updates sent (per interface).
    pub periodic_updates_sent: u64,
    /// Triggered updates sent (per interface).
    pub triggered_updates_sent: u64,
    /// Response packets processed.
    pub responses_received: u64,
    /// Request packets processed.
    pub requests_received: u64,
    /// Routes that hit the 180 s timeout.
    pub routes_expired: u64,
    /// Routes garbage-collected out of the RIB.
    pub routes_deleted: u64,
}

/// The RIPng protocol engine.
///
/// Drive it by calling [`RipngEngine::handle_response`] /
/// [`RipngEngine::handle_request`] for every received packet and
/// [`RipngEngine::tick`] whenever simulated time advances; both return the
/// packets to transmit as `(interface, packet)` pairs (the caller wraps them
/// in UDP/IPv6 addressed to `ff02::9` port 521).
///
/// # Examples
///
/// ```
/// use taco_ipv6::ripng::{Command, RipngPacket, RouteEntry};
/// use taco_routing::ripng::{InterfaceConfig, RipngEngine};
/// use taco_routing::{PortId, SimTime};
///
/// # fn main() -> Result<(), taco_ipv6::ParseError> {
/// let mut engine = RipngEngine::new(vec![InterfaceConfig::new(
///     PortId(0),
///     "fe80::1".parse()?,
///     vec!["2001:db8:a::/48".parse()?],
/// )]);
///
/// // A neighbour advertises a prefix...
/// let adv = RipngPacket {
///     command: Command::Response,
///     entries: vec![RouteEntry::new("2001:db8:b::/48".parse()?, 0, 1)],
/// };
/// engine.handle_response(PortId(0), "fe80::2".parse()?, &adv, SimTime::ZERO);
/// assert_eq!(engine.routes().count(), 2); // connected + learned
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct RipngEngine {
    interfaces: Vec<InterfaceConfig>,
    rib: BTreeMap<Ipv6Prefix, RibRoute>,
    next_periodic: SimTime,
    stats: RipngStats,
    /// Timer constants, overridable for accelerated tests.
    update_interval: SimTime,
    route_timeout: SimTime,
    gc_interval: SimTime,
}

impl RipngEngine {
    /// Creates an engine with the RFC 2080 default timers (30 s updates,
    /// 180 s timeout, 120 s garbage collection) and installs the connected
    /// routes of `interfaces`.
    pub fn new(interfaces: Vec<InterfaceConfig>) -> Self {
        let mut engine = RipngEngine {
            interfaces,
            rib: BTreeMap::new(),
            next_periodic: SimTime::ZERO,
            stats: RipngStats::default(),
            update_interval: SimTime::from_secs(30),
            route_timeout: SimTime::from_secs(180),
            gc_interval: SimTime::from_secs(120),
        };
        for iface in engine.interfaces.clone() {
            for prefix in &iface.connected {
                engine.rib.insert(
                    *prefix,
                    RibRoute {
                        route: Route::connected(*prefix, iface.port),
                        origin: Origin::Connected,
                        expires_at: None,
                        gc_at: None,
                        changed: true,
                    },
                );
            }
        }
        engine
    }

    /// Replaces the protocol timers — useful for accelerated tests.
    pub fn with_timers(
        mut self,
        update_interval: SimTime,
        route_timeout: SimTime,
        gc_interval: SimTime,
    ) -> Self {
        self.update_interval = update_interval;
        self.route_timeout = route_timeout;
        self.gc_interval = gc_interval;
        self
    }

    /// The configured interfaces.
    pub fn interfaces(&self) -> &[InterfaceConfig] {
        &self.interfaces
    }

    /// Activity counters.
    pub fn stats(&self) -> RipngStats {
        self.stats
    }

    /// Iterates over the live routes in the RIB (dead routes awaiting
    /// garbage collection are skipped).
    pub fn routes(&self) -> impl Iterator<Item = &Route> {
        self.rib.values().filter(|r| r.route.metric() < INFINITY_METRIC).map(|r| &r.route)
    }

    /// Writes the live routes into a forwarding table, replacing its
    /// contents.
    pub fn sync_fib<T: LpmTable + ?Sized>(&self, fib: &mut T) {
        fib.clear();
        for r in self.routes() {
            fib.insert(*r);
        }
    }

    /// The whole-table requests a router broadcasts when it first comes up
    /// (RFC 2080 §2.5.1), one per interface.  Neighbours answer with their
    /// full tables, cutting initial convergence from a 30 s periodic-update
    /// wait to one round trip.
    pub fn startup_requests(&self) -> Vec<(PortId, RipngPacket)> {
        self.interfaces.iter().map(|i| (i.port, RipngPacket::whole_table_request())).collect()
    }

    /// Processes a received response (advertisement).
    ///
    /// Returns any triggered-update packets that should be transmitted
    /// immediately.
    pub fn handle_response(
        &mut self,
        iface: PortId,
        from: Ipv6Address,
        packet: &RipngPacket,
        now: SimTime,
    ) -> Vec<(PortId, RipngPacket)> {
        if packet.command != Command::Response {
            return Vec::new();
        }
        self.stats.responses_received += 1;
        let Some(cfg) = self.interfaces.iter().find(|i| i.port == iface).cloned() else {
            return Vec::new();
        };
        // RFC 2080 §2.4.2: responses must come from a link-local address.
        if !from.is_link_local() {
            return Vec::new();
        }

        let mut next_hop = from;
        let mut any_changed = false;
        for rte in &packet.entries {
            if rte.is_next_hop() {
                let nh = rte.prefix.addr();
                next_hop = if nh.is_unspecified() { from } else { nh };
                continue;
            }
            let metric = rte.metric.saturating_add(cfg.cost).min(INFINITY_METRIC);
            let candidate =
                Route::new(rte.prefix, next_hop, iface, metric).with_route_tag(rte.route_tag);
            any_changed |= self.consider(candidate, from, now);
        }

        if any_changed {
            self.triggered_updates(now)
        } else {
            Vec::new()
        }
    }

    /// Applies the RFC 2080 §2.4.2 route-update rules for one candidate.
    /// Returns `true` if the RIB changed.
    fn consider(&mut self, candidate: Route, from: Ipv6Address, now: SimTime) -> bool {
        let prefix = candidate.prefix();
        match self.rib.get_mut(&prefix) {
            None => {
                if candidate.metric() >= INFINITY_METRIC {
                    return false; // don't install dead routes
                }
                self.rib.insert(
                    prefix,
                    RibRoute {
                        route: candidate,
                        origin: Origin::Rip { learned_from: from },
                        expires_at: Some(now + self.route_timeout),
                        gc_at: None,
                        changed: true,
                    },
                );
                true
            }
            Some(existing) => {
                if existing.origin == Origin::Connected {
                    return false; // connected routes always win
                }
                let same_gateway =
                    matches!(existing.origin, Origin::Rip { learned_from } if learned_from == from);
                if same_gateway {
                    // Same gateway: refresh, adopt whatever metric it says.
                    existing.expires_at = Some(now + self.route_timeout);
                    if candidate.metric() != existing.route.metric() {
                        let went_dead = candidate.metric() >= INFINITY_METRIC;
                        existing.route = candidate;
                        existing.changed = true;
                        if went_dead {
                            self.stats.routes_expired += 1;
                            existing.expires_at = None;
                            existing.gc_at = Some(now + self.gc_interval);
                        }
                        return true;
                    }
                    false
                } else if candidate.metric() < existing.route.metric() {
                    // Different gateway, strictly better metric: switch.
                    existing.route = candidate;
                    existing.origin = Origin::Rip { learned_from: from };
                    existing.expires_at = Some(now + self.route_timeout);
                    existing.gc_at = None;
                    existing.changed = true;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Processes a received request, returning the response to unicast back
    /// (if any).
    pub fn handle_request(
        &mut self,
        iface: PortId,
        packet: &RipngPacket,
        _now: SimTime,
    ) -> Option<RipngPacket> {
        if packet.command != Command::Request {
            return None;
        }
        self.stats.requests_received += 1;
        if packet.is_whole_table_request() {
            // Whole-table request from a router: apply split horizon.
            return Some(RipngPacket {
                command: Command::Response,
                entries: self.advertisement_for(iface, false),
            });
        }
        // Specific-prefix request (diagnostic): answer exactly what was
        // asked, with infinity for unknown prefixes, no split horizon.
        let entries = packet
            .entries
            .iter()
            .map(|rte| {
                let metric =
                    self.rib.get(&rte.prefix).map(|r| r.route.metric()).unwrap_or(INFINITY_METRIC);
                RouteEntry::new(rte.prefix, rte.route_tag, metric.max(1))
            })
            .collect();
        Some(RipngPacket { command: Command::Response, entries })
    }

    /// Advances time: expires routes, garbage-collects, and emits periodic
    /// plus triggered updates that fall due at `now`.
    pub fn tick(&mut self, now: SimTime) -> Vec<(PortId, RipngPacket)> {
        // 1. Timeout: mark overdue routes dead.
        for rib_route in self.rib.values_mut() {
            if let Some(t) = rib_route.expires_at {
                if now >= t {
                    rib_route.route = rib_route.route.with_metric(INFINITY_METRIC);
                    rib_route.expires_at = None;
                    rib_route.gc_at = Some(now + self.gc_interval);
                    rib_route.changed = true;
                    self.stats.routes_expired += 1;
                }
            }
        }
        // 2. Garbage collection: drop long-dead routes.
        let before = self.rib.len();
        self.rib.retain(|_, r| r.gc_at.map_or(true, |t| now < t));
        self.stats.routes_deleted += (before - self.rib.len()) as u64;

        // 3. Periodic update.
        let mut out = Vec::new();
        if now >= self.next_periodic {
            self.next_periodic = now + self.update_interval;
            for iface in &self.interfaces {
                let entries = self.advertisement_for(iface.port, true);
                if !entries.is_empty() {
                    out.push((iface.port, RipngPacket { command: Command::Response, entries }));
                    self.stats.periodic_updates_sent += 1;
                }
            }
            for r in self.rib.values_mut() {
                r.changed = false;
            }
        } else {
            // 4. Triggered updates for changed routes.
            out.extend(self.triggered_updates(now));
        }
        out
    }

    /// Builds triggered updates (changed routes only) and clears the change
    /// flags.
    fn triggered_updates(&mut self, _now: SimTime) -> Vec<(PortId, RipngPacket)> {
        let mut out = Vec::new();
        for iface in self.interfaces.clone() {
            let entries: Vec<RouteEntry> = self
                .rib
                .values()
                .filter(|r| r.changed)
                .map(|r| self.rte_for(&r.route, iface.port))
                .collect();
            if !entries.is_empty() {
                out.push((iface.port, RipngPacket { command: Command::Response, entries }));
                self.stats.triggered_updates_sent += 1;
            }
        }
        for r in self.rib.values_mut() {
            r.changed = false;
        }
        out
    }

    /// All routes as RTEs for an update on `iface`, with split horizon and
    /// poisoned reverse. `include_dead` controls whether garbage-collecting
    /// routes are advertised (they are in periodic updates, with infinity).
    fn advertisement_for(&self, iface: PortId, include_dead: bool) -> Vec<RouteEntry> {
        self.rib
            .values()
            .filter(|r| include_dead || r.route.metric() < INFINITY_METRIC)
            .map(|r| self.rte_for(&r.route, iface))
            .collect()
    }

    /// Encodes one route for advertisement on `iface`, poisoning it if it
    /// was learned on that same interface (split horizon with poisoned
    /// reverse).
    fn rte_for(&self, route: &Route, iface: PortId) -> RouteEntry {
        let metric = if route.interface() == iface && !route.is_connected() {
            INFINITY_METRIC
        } else {
            route.metric().min(INFINITY_METRIC)
        };
        RouteEntry::new(route.prefix(), route.route_tag(), metric.max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sequential::SequentialTable;

    fn engine_two_ports() -> RipngEngine {
        RipngEngine::new(vec![
            InterfaceConfig::new(
                PortId(0),
                "fe80::a".parse().unwrap(),
                vec!["2001:db8:a::/48".parse().unwrap()],
            ),
            InterfaceConfig::new(
                PortId(1),
                "fe80::b".parse().unwrap(),
                vec!["2001:db8:b::/48".parse().unwrap()],
            ),
        ])
    }

    fn response(entries: Vec<RouteEntry>) -> RipngPacket {
        RipngPacket { command: Command::Response, entries }
    }

    fn p(s: &str) -> Ipv6Prefix {
        s.parse().unwrap()
    }

    fn ll(s: &str) -> Ipv6Address {
        s.parse().unwrap()
    }

    #[test]
    fn connected_routes_installed_at_start() {
        let e = engine_two_ports();
        let routes: Vec<_> = e.routes().collect();
        assert_eq!(routes.len(), 2);
        assert!(routes.iter().all(|r| r.is_connected()));
    }

    #[test]
    fn learns_route_with_incremented_metric() {
        let mut e = engine_two_ports();
        e.handle_response(
            PortId(0),
            ll("fe80::2"),
            &response(vec![RouteEntry::new(p("2001:db8:c::/48"), 0, 3)]),
            SimTime::ZERO,
        );
        let r = e.routes().find(|r| r.prefix() == p("2001:db8:c::/48")).unwrap();
        assert_eq!(r.metric(), 4);
        assert_eq!(r.next_hop(), ll("fe80::2"));
        assert_eq!(r.interface(), PortId(0));
    }

    #[test]
    fn ignores_non_link_local_source() {
        let mut e = engine_two_ports();
        e.handle_response(
            PortId(0),
            ll("2001:db8::2"), // global, not link-local
            &response(vec![RouteEntry::new(p("2001:db8:c::/48"), 0, 3)]),
            SimTime::ZERO,
        );
        assert!(e.routes().all(|r| r.prefix() != p("2001:db8:c::/48")));
    }

    #[test]
    fn better_metric_from_other_gateway_wins() {
        let mut e = engine_two_ports();
        let t = SimTime::ZERO;
        e.handle_response(
            PortId(0),
            ll("fe80::2"),
            &response(vec![RouteEntry::new(p("2001:db8:c::/48"), 0, 5)]),
            t,
        );
        e.handle_response(
            PortId(1),
            ll("fe80::3"),
            &response(vec![RouteEntry::new(p("2001:db8:c::/48"), 0, 2)]),
            t,
        );
        let r = e.routes().find(|r| r.prefix() == p("2001:db8:c::/48")).unwrap();
        assert_eq!(r.metric(), 3);
        assert_eq!(r.interface(), PortId(1));

        // Worse offer from a third gateway is ignored.
        e.handle_response(
            PortId(0),
            ll("fe80::4"),
            &response(vec![RouteEntry::new(p("2001:db8:c::/48"), 0, 9)]),
            t,
        );
        let r = e.routes().find(|r| r.prefix() == p("2001:db8:c::/48")).unwrap();
        assert_eq!(r.metric(), 3);
    }

    #[test]
    fn same_gateway_metric_increase_is_adopted() {
        let mut e = engine_two_ports();
        let t = SimTime::ZERO;
        e.handle_response(
            PortId(0),
            ll("fe80::2"),
            &response(vec![RouteEntry::new(p("2001:db8:c::/48"), 0, 2)]),
            t,
        );
        e.handle_response(
            PortId(0),
            ll("fe80::2"),
            &response(vec![RouteEntry::new(p("2001:db8:c::/48"), 0, 7)]),
            t,
        );
        let r = e.routes().find(|r| r.prefix() == p("2001:db8:c::/48")).unwrap();
        assert_eq!(r.metric(), 8);
    }

    #[test]
    fn infinity_from_gateway_kills_route() {
        let mut e = engine_two_ports();
        let t = SimTime::ZERO;
        e.handle_response(
            PortId(0),
            ll("fe80::2"),
            &response(vec![RouteEntry::new(p("2001:db8:c::/48"), 0, 2)]),
            t,
        );
        assert!(e.routes().any(|r| r.prefix() == p("2001:db8:c::/48")));
        e.handle_response(
            PortId(0),
            ll("fe80::2"),
            &response(vec![RouteEntry::new(p("2001:db8:c::/48"), 0, INFINITY_METRIC)]),
            t,
        );
        assert!(e.routes().all(|r| r.prefix() != p("2001:db8:c::/48")));
    }

    #[test]
    fn connected_routes_never_overridden() {
        let mut e = engine_two_ports();
        e.handle_response(
            PortId(1),
            ll("fe80::9"),
            &response(vec![RouteEntry::new(p("2001:db8:a::/48"), 0, 1)]),
            SimTime::ZERO,
        );
        let r = e.routes().find(|r| r.prefix() == p("2001:db8:a::/48")).unwrap();
        assert!(r.is_connected());
        assert_eq!(r.interface(), PortId(0));
    }

    #[test]
    fn next_hop_rte_applies_to_following_entries() {
        let mut e = engine_two_ports();
        let pkt = response(vec![
            RouteEntry::new(p("2001:db8:c::/48"), 0, 1), // before next-hop RTE
            RouteEntry::next_hop(ll("fe80::beef")),
            RouteEntry::new(p("2001:db8:d::/48"), 0, 1), // after
        ]);
        e.handle_response(PortId(0), ll("fe80::2"), &pkt, SimTime::ZERO);
        let c = e.routes().find(|r| r.prefix() == p("2001:db8:c::/48")).unwrap();
        let d = e.routes().find(|r| r.prefix() == p("2001:db8:d::/48")).unwrap();
        assert_eq!(c.next_hop(), ll("fe80::2"));
        assert_eq!(d.next_hop(), ll("fe80::beef"));
    }

    #[test]
    fn route_timeout_and_garbage_collection() {
        let mut e = engine_two_ports().with_timers(
            SimTime::from_secs(30),
            SimTime::from_secs(180),
            SimTime::from_secs(120),
        );
        e.handle_response(
            PortId(0),
            ll("fe80::2"),
            &response(vec![RouteEntry::new(p("2001:db8:c::/48"), 0, 1)]),
            SimTime::ZERO,
        );
        // Not yet expired.
        e.tick(SimTime::from_secs(179));
        assert!(e.routes().any(|r| r.prefix() == p("2001:db8:c::/48")));
        // Expired: route leaves the live set but stays in RIB for GC.
        e.tick(SimTime::from_secs(181));
        assert!(e.routes().all(|r| r.prefix() != p("2001:db8:c::/48")));
        assert_eq!(e.stats().routes_expired, 1);
        // After the GC interval it is deleted entirely.
        e.tick(SimTime::from_secs(181 + 121));
        assert_eq!(e.stats().routes_deleted, 1);
    }

    #[test]
    fn periodic_updates_every_interval() {
        let mut e = engine_two_ports();
        let first = e.tick(SimTime::ZERO);
        assert_eq!(first.len(), 2); // one per interface
        assert!(e.tick(SimTime::from_secs(10)).is_empty());
        let second = e.tick(SimTime::from_secs(30));
        assert_eq!(second.len(), 2);
        assert_eq!(e.stats().periodic_updates_sent, 4);
    }

    #[test]
    fn split_horizon_poisons_reverse() {
        let mut e = engine_two_ports();
        e.handle_response(
            PortId(0),
            ll("fe80::2"),
            &response(vec![RouteEntry::new(p("2001:db8:c::/48"), 0, 1)]),
            SimTime::ZERO,
        );
        let updates = e.tick(SimTime::ZERO);
        let on_port0 = &updates.iter().find(|(pt, _)| *pt == PortId(0)).unwrap().1;
        let on_port1 = &updates.iter().find(|(pt, _)| *pt == PortId(1)).unwrap().1;
        let m0 = on_port0.entries.iter().find(|r| r.prefix == p("2001:db8:c::/48")).unwrap().metric;
        let m1 = on_port1.entries.iter().find(|r| r.prefix == p("2001:db8:c::/48")).unwrap().metric;
        assert_eq!(m0, INFINITY_METRIC); // poisoned back toward its source
        assert_eq!(m1, 2); // advertised normally elsewhere
    }

    #[test]
    fn triggered_update_on_change() {
        let mut e = engine_two_ports();
        e.tick(SimTime::ZERO); // flush initial periodic
        let out = e.handle_response(
            PortId(0),
            ll("fe80::2"),
            &response(vec![RouteEntry::new(p("2001:db8:c::/48"), 0, 1)]),
            SimTime::from_secs(1),
        );
        assert!(!out.is_empty());
        assert!(e.stats().triggered_updates_sent > 0);
        // No further triggered updates without further changes.
        assert!(e.tick(SimTime::from_secs(2)).is_empty());
    }

    #[test]
    fn whole_table_request_answered() {
        let mut e = engine_two_ports();
        let resp = e
            .handle_request(PortId(0), &RipngPacket::whole_table_request(), SimTime::ZERO)
            .unwrap();
        assert_eq!(resp.command, Command::Response);
        assert_eq!(resp.entries.len(), 2);
    }

    #[test]
    fn specific_request_answered_without_split_horizon() {
        let mut e = engine_two_ports();
        let req = RipngPacket {
            command: Command::Request,
            entries: vec![
                RouteEntry::new(p("2001:db8:a::/48"), 0, INFINITY_METRIC),
                RouteEntry::new(p("dead::/16"), 0, INFINITY_METRIC),
            ],
        };
        let resp = e.handle_request(PortId(0), &req, SimTime::ZERO).unwrap();
        assert_eq!(resp.entries[0].metric, 1); // known
        assert_eq!(resp.entries[1].metric, INFINITY_METRIC); // unknown
    }

    #[test]
    fn sync_fib_mirrors_live_routes() {
        let mut e = engine_two_ports();
        e.handle_response(
            PortId(0),
            ll("fe80::2"),
            &response(vec![RouteEntry::new(p("2001:db8:c::/48"), 0, 1)]),
            SimTime::ZERO,
        );
        let mut fib = SequentialTable::new();
        e.sync_fib(&mut fib);
        assert_eq!(fib.len(), 3);
        use crate::table::LpmTable;
        assert!(fib.lookup(&"2001:db8:c::1".parse().unwrap()).is_hit());
    }

    #[test]
    fn startup_requests_cover_every_interface() {
        let e = engine_two_ports();
        let reqs = e.startup_requests();
        assert_eq!(reqs.len(), 2);
        assert!(reqs.iter().all(|(_, p)| p.is_whole_table_request()));
        let ports: Vec<u16> = reqs.iter().map(|(p, _)| p.0).collect();
        assert_eq!(ports, vec![0, 1]);
    }

    #[test]
    fn response_with_request_command_ignored() {
        let mut e = engine_two_ports();
        let pkt = RipngPacket {
            command: Command::Request,
            entries: vec![RouteEntry::new(p("2001:db8:c::/48"), 0, 1)],
        };
        e.handle_response(PortId(0), ll("fe80::2"), &pkt, SimTime::ZERO);
        assert!(e.routes().all(|r| r.prefix() != p("2001:db8:c::/48")));
        assert!(e.handle_request(PortId(0), &response(vec![]), SimTime::ZERO).is_none());
    }
}
