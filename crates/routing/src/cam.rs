//! The CAM-based routing table: the paper's third case.
//!
//! "Finally we evaluated a hardware-based solution for the routing table.
//! We used a 136-bit wide content addressable memory (CAM) and a
//! commercially available SRAM chip.  By combining these two circuits we
//! calculated that the routing table searching time would be 40 ns."
//!
//! [`CamTable`] models the pair: a ternary CAM holds `(prefix, mask)` rows
//! in priority order and returns the index of the highest-priority (longest)
//! match in a single fixed-latency search; the SRAM holds the associated
//! forwarding data (next hop, interface).  The TACO Routing Table Unit wraps
//! this model so the whole lookup costs a constant number of processor
//! cycles — which is why Table 1's CAM rows need only tens of MHz.

use std::fmt;

use taco_ipv6::{Ipv6Address, Ipv6Prefix};

use crate::route::Route;
use crate::table::{Lookup, LpmTable, TableKind};

/// Datasheet-style parameters of the CAM + SRAM pair.
///
/// Defaults follow the paper: a 136-bit-wide CAM (128 address bits plus
/// control bits) with a 40 ns search, and the Micron Harmony 1 Mb CAM's
/// 1.5–2 W average power at 133 MHz (we use the midpoint).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CamSpec {
    /// Row width in bits.
    pub width_bits: u32,
    /// Number of rows the chip can hold.
    pub capacity: usize,
    /// Fixed search latency, nanoseconds (CAM match + SRAM read).
    pub search_time_ns: f64,
    /// Average chip power in watts at `reference_freq_hz`.
    pub avg_power_w: f64,
    /// Operating frequency at which `avg_power_w` is specified.
    pub reference_freq_hz: f64,
}

impl CamSpec {
    /// The configuration used in the paper's evaluation.
    pub fn paper_default() -> Self {
        CamSpec {
            width_bits: 136,
            capacity: 8192, // 1 Mb / 136-bit rows, rounded to a power of two
            search_time_ns: 40.0,
            avg_power_w: 1.75,
            reference_freq_hz: 133e6,
        }
    }

    /// Search latency expressed in processor clock cycles at `freq_hz`
    /// (rounded up — the processor must wait out the full latency).
    pub fn search_cycles(&self, freq_hz: f64) -> u64 {
        (self.search_time_ns * 1e-9 * freq_hz).ceil().max(1.0) as u64
    }
}

impl Default for CamSpec {
    fn default() -> Self {
        Self::paper_default()
    }
}

impl fmt::Display for CamSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}-bit x {} CAM, {} ns search, {} W avg",
            self.width_bits, self.capacity, self.search_time_ns, self.avg_power_w
        )
    }
}

/// A ternary-CAM + SRAM longest-prefix-match table.
///
/// Every lookup costs exactly one probe ([`Lookup::steps`] == 1): all rows
/// are compared in parallel in hardware.  Rows are maintained in descending
/// prefix-length order so the first (highest-priority) match is the longest,
/// mirroring how real TCAM route tables are managed.
///
/// # Examples
///
/// ```
/// use taco_routing::{CamTable, LpmTable, PortId, Route};
///
/// # fn main() -> Result<(), taco_ipv6::ParseError> {
/// let mut t = CamTable::new();
/// for i in 0..100u16 {
///     t.insert(Route::new(format!("2001:db8:{i:x}::/48").parse()?,
///                         "fe80::1".parse()?, PortId(i), 1));
/// }
/// let l = t.lookup(&"2001:db8:7::1".parse()?);
/// assert_eq!(l.steps(), 1); // constant regardless of table size
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct CamTable {
    spec: CamSpec,
    /// Rows in priority order: descending prefix length, then prefix order.
    rows: Vec<Route>,
}

impl CamTable {
    /// Creates an empty table with the paper's default chip parameters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty table with explicit chip parameters.
    pub fn with_spec(spec: CamSpec) -> Self {
        CamTable { spec, rows: Vec::new() }
    }

    /// Creates a table from an iterator of routes.
    pub fn from_routes<I: IntoIterator<Item = Route>>(routes: I) -> Self {
        let mut t = Self::new();
        for r in routes {
            t.insert(r);
        }
        t
    }

    /// The chip parameters.
    pub fn spec(&self) -> &CamSpec {
        &self.spec
    }

    /// Remaining free rows.
    pub fn free_rows(&self) -> usize {
        self.spec.capacity.saturating_sub(self.rows.len())
    }

    /// The rows in CAM priority order — the image the router would program
    /// into the chip.
    pub fn rows(&self) -> &[Route] {
        &self.rows
    }

    fn position(&self, prefix: &Ipv6Prefix) -> Result<usize, usize> {
        self.rows.binary_search_by(|r| {
            prefix.len().cmp(&r.prefix().len()).then_with(|| r.prefix().cmp(prefix))
        })
    }
}

impl LpmTable for CamTable {
    fn kind(&self) -> TableKind {
        TableKind::Cam
    }

    /// Inserts a route.
    ///
    /// # Panics
    ///
    /// Panics if the CAM is full — the paper's router provisions the chip
    /// for the whole table (100 entries against 8 K rows), so overflow is a
    /// configuration bug, not a runtime condition.
    fn insert(&mut self, route: Route) -> Option<Route> {
        match self.position(&route.prefix()) {
            Ok(i) => Some(std::mem::replace(&mut self.rows[i], route)),
            Err(i) => {
                assert!(
                    self.rows.len() < self.spec.capacity,
                    "cam capacity {} exceeded",
                    self.spec.capacity
                );
                self.rows.insert(i, route);
                None
            }
        }
    }

    fn remove(&mut self, prefix: &Ipv6Prefix) -> Option<Route> {
        match self.position(prefix) {
            Ok(i) => Some(self.rows.remove(i)),
            Err(_) => None,
        }
    }

    fn lookup(&self, addr: &Ipv6Address) -> Lookup {
        // Hardware compares every row in parallel; priority encoder picks
        // the first match.  Cost: one probe.
        match self.rows.iter().find(|r| r.prefix().contains(addr)) {
            Some(r) => Lookup::hit(*r, 1),
            None => Lookup::miss(1),
        }
    }

    fn get(&self, prefix: &Ipv6Prefix) -> Option<Route> {
        self.position(prefix).ok().map(|i| self.rows[i])
    }

    fn len(&self) -> usize {
        self.rows.len()
    }

    fn routes(&self) -> Vec<Route> {
        self.rows.clone()
    }

    fn clear(&mut self) {
        self.rows.clear();
    }

    fn memory_words(&self) -> usize {
        // 10 words per occupied row: the 136-bit match plane (4 value +
        // 4 mask words) plus the result SRAM (interface, handle).
        10 * self.rows.len()
    }
}

impl FromIterator<Route> for CamTable {
    fn from_iter<I: IntoIterator<Item = Route>>(iter: I) -> Self {
        Self::from_routes(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::route::PortId;

    fn r(p: &str, port: u16) -> Route {
        Route::new(p.parse().unwrap(), "fe80::1".parse().unwrap(), PortId(port), 1)
    }

    fn a(s: &str) -> Ipv6Address {
        s.parse().unwrap()
    }

    #[test]
    fn constant_step_cost() {
        let mut t = CamTable::new();
        assert_eq!(t.lookup(&a("::1")).steps(), 1);
        for i in 0..200u16 {
            t.insert(r(&format!("2001:db8:{i:x}::/48"), i));
        }
        assert_eq!(t.lookup(&a("2001:db8:5::1")).steps(), 1);
        assert_eq!(t.lookup(&a("ffff::1")).steps(), 1); // miss is also 1 probe
    }

    #[test]
    fn longest_match_by_priority_order() {
        let t = CamTable::from_routes([r("::/0", 0), r("2001:db8::/32", 1), r("2001:db8::/64", 2)]);
        assert_eq!(t.lookup(&a("2001:db8::1")).route().unwrap().interface(), PortId(2));
        assert_eq!(t.lookup(&a("2001:db8:1::1")).route().unwrap().interface(), PortId(1));
        let lens: Vec<u8> = t.rows().iter().map(|x| x.prefix().len()).collect();
        assert_eq!(lens, vec![64, 32, 0]);
    }

    #[test]
    fn replace_and_remove() {
        let mut t = CamTable::new();
        t.insert(r("2001:db8::/32", 1));
        assert_eq!(t.insert(r("2001:db8::/32", 5)).unwrap().interface(), PortId(1));
        assert_eq!(t.remove(&"2001:db8::/32".parse().unwrap()).unwrap().interface(), PortId(5));
        assert!(t.is_empty());
    }

    #[test]
    #[should_panic(expected = "cam capacity")]
    fn capacity_overflow_panics() {
        let mut t = CamTable::with_spec(CamSpec { capacity: 2, ..CamSpec::paper_default() });
        t.insert(r("2001:db8:1::/48", 1));
        t.insert(r("2001:db8:2::/48", 2));
        t.insert(r("2001:db8:3::/48", 3));
    }

    #[test]
    fn search_cycles_at_various_clocks() {
        let spec = CamSpec::paper_default();
        // 40 ns at 1 GHz = 40 cycles; at 25 MHz it fits in one cycle.
        assert_eq!(spec.search_cycles(1e9), 40);
        assert_eq!(spec.search_cycles(25e6), 1);
        assert_eq!(spec.search_cycles(100e6), 4);
        assert_eq!(spec.search_cycles(1.0), 1); // never less than one cycle
    }

    #[test]
    fn spec_display_and_free_rows() {
        let t = CamTable::new();
        assert!(t.spec().to_string().contains("136-bit"));
        assert_eq!(t.free_rows(), t.spec().capacity);
    }
}
