//! Shared arena + free-list node storage for the pointer-based LPM engines.
//!
//! Both tries ([`TrieTable`](crate::TrieTable) and
//! [`PatriciaTable`](crate::PatriciaTable)) store their nodes in a flat
//! `Vec` and link them by index; removal returns pruned slots to a free
//! list that the next inserts draw from before growing the vector.  Under
//! churn (route flaps, link flaps) the arena therefore stays at its
//! high-water mark instead of leaking one slot per pruned node — the
//! invariant the table-churn scenario and the bounded-arena regression
//! tests pin.
//!
//! Slot 0 is the root and is never released; released slots are reset to
//! `T::default()` so serialisation views over the raw slots never observe
//! stale routes.

use std::ops::{Index, IndexMut};

/// A flat node store with index links and slot reuse.
#[derive(Debug, Clone)]
pub struct Arena<T> {
    slots: Vec<T>,
    /// Indices of released slots, reused by the next allocations.
    free: Vec<usize>,
}

impl<T: Default> Arena<T> {
    /// Creates an arena whose root (slot 0) is `root`.
    pub fn with_root(root: T) -> Self {
        Arena { slots: vec![root], free: Vec::new() }
    }

    /// Stores `value`, reusing a released slot when one is available, and
    /// returns its index.
    pub fn alloc(&mut self, value: T) -> usize {
        match self.free.pop() {
            Some(slot) => {
                self.slots[slot] = value;
                slot
            }
            None => {
                self.slots.push(value);
                self.slots.len() - 1
            }
        }
    }

    /// Returns `idx` to the free list, resetting the slot so stale data
    /// cannot leak into serialisation views.  The root is never released.
    pub fn release(&mut self, idx: usize) {
        debug_assert!(idx != 0, "the root slot is never released");
        self.slots[idx] = T::default();
        self.free.push(idx);
    }

    /// Total number of slots, including free-listed ones — the size metric
    /// the scaling ablation and the memory-footprint model report.  Under
    /// churn this stays bounded because released slots are reused.
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// Slots currently sitting on the free list, awaiting reuse.
    pub fn free_count(&self) -> usize {
        self.free.len()
    }

    /// Iterates every slot (live and released) in index order — released
    /// slots read as `T::default()`.
    pub fn iter(&self) -> std::slice::Iter<'_, T> {
        self.slots.iter()
    }

    /// Drops every node and the free list, reinstalling `root` at slot 0.
    pub fn reset(&mut self, root: T) {
        self.slots.clear();
        self.slots.push(root);
        self.free.clear();
    }
}

impl<T> Index<usize> for Arena<T> {
    type Output = T;

    fn index(&self, idx: usize) -> &T {
        &self.slots[idx]
    }
}

impl<T> IndexMut<usize> for Arena<T> {
    fn index_mut(&mut self, idx: usize) -> &mut T {
        &mut self.slots[idx]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_reuses_released_slots() {
        let mut a: Arena<u32> = Arena::with_root(0);
        let x = a.alloc(10);
        let y = a.alloc(20);
        assert_eq!((x, y), (1, 2));
        a.release(x);
        assert_eq!(a.free_count(), 1);
        assert_eq!(a[x], 0, "released slots are reset to default");
        assert_eq!(a.alloc(30), x, "the free slot is reused before growing");
        assert_eq!((a.slot_count(), a.free_count()), (3, 0));
        assert_eq!((a[0], a[1], a[2]), (0, 30, 20));
    }

    #[test]
    fn reset_reinstalls_the_root() {
        let mut a: Arena<u32> = Arena::with_root(7);
        a.alloc(1);
        a.release(1);
        a.reset(9);
        assert_eq!((a.slot_count(), a.free_count(), a[0]), (1, 0, 9));
    }
}
