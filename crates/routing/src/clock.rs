//! A deterministic simulated clock.
//!
//! All protocol timers in the framework run on [`SimTime`] rather than wall
//! time: simulations must be reproducible, and the paper's traffic analysis
//! ("routing table updates appear once in 2 minutes") is about simulated
//! network time, not host time.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, with millisecond resolution.
///
/// # Examples
///
/// ```
/// use taco_routing::SimTime;
///
/// let t = SimTime::from_secs(30);
/// assert_eq!(t + SimTime::from_millis(500), SimTime::from_millis(30_500));
/// assert_eq!(t.as_secs(), 30);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// Time zero — the start of the simulation.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates a time `ms` milliseconds after the start.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms)
    }

    /// Creates a time `s` seconds after the start.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1000)
    }

    /// Milliseconds since the start of the simulation.
    pub const fn as_millis(&self) -> u64 {
        self.0
    }

    /// Whole seconds since the start of the simulation.
    pub const fn as_secs(&self) -> u64 {
        self.0 / 1000
    }

    /// Saturating difference `self - earlier`.
    pub fn since(&self, earlier: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(earlier.0))
    }
}

impl Add for SimTime {
    type Output = SimTime;

    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;

    /// Saturating subtraction: times never go negative.
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{:03}s", self.0 / 1000, self.0 % 1000)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        assert_eq!(SimTime::from_secs(2).as_millis(), 2000);
        assert_eq!(SimTime::from_millis(2500).as_secs(), 2);
        assert_eq!(SimTime::ZERO.as_millis(), 0);
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_millis(250);
        assert_eq!(a + b, SimTime::from_millis(1250));
        assert_eq!(a - b, SimTime::from_millis(750));
        assert_eq!(b - a, SimTime::ZERO); // saturates
        let mut c = a;
        c += b;
        assert_eq!(c, SimTime::from_millis(1250));
    }

    #[test]
    fn since_saturates() {
        let early = SimTime::from_secs(1);
        let late = SimTime::from_secs(5);
        assert_eq!(late.since(early), SimTime::from_secs(4));
        assert_eq!(early.since(late), SimTime::ZERO);
    }

    #[test]
    fn display_format() {
        assert_eq!(SimTime::from_millis(30_500).to_string(), "30.500s");
        assert_eq!(SimTime::ZERO.to_string(), "0.000s");
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_secs(1) < SimTime::from_secs(2));
        assert!(SimTime::from_millis(999) < SimTime::from_secs(1));
    }
}
