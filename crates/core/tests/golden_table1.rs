//! Golden snapshot of the extended Table 1.
//!
//! Pins the twelve cells' (the paper's nine plus the PATRICIA rows)
//! `min_freq`, `bus_utilization`, `area` and `power`
//! as a byte-stable JSON fixture in `tests/golden/table1.json`.  Any
//! change to the simulator, microcode generator, scheduler or estimator
//! that moves a Table 1 number shows up here as a diff against the
//! fixture — the point is that such moves must be *deliberate*.
//!
//! To regenerate after an intentional change:
//!
//! ```text
//! BLESS=1 cargo test -p taco-core --test golden_table1
//! ```
//!
//! then review the fixture diff like any other code change.  Floats are
//! serialised with Rust's shortest-round-trip `Display`, which is
//! platform-independent for the arithmetic this pipeline does; infeasible
//! cells carry `null` area/power (the paper's "NA").

use std::path::PathBuf;

use taco_core::api::table1_cell_json;
use taco_core::{table1, LineRate};

fn fixture_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/table1.json")
}

fn snapshot() -> String {
    let reports = table1(LineRate::TEN_GBE, 100);
    let mut out = String::new();
    for report in &reports {
        assert!(report.sim_error.is_none(), "cell failed to simulate: {report}");
        out.push_str(&table1_cell_json(report));
        out.push('\n');
    }
    out
}

#[test]
fn table1_matches_golden_fixture() {
    let current = snapshot();
    let path = fixture_path();
    if std::env::var_os("BLESS").is_some() {
        std::fs::write(&path, &current).expect("write fixture");
        eprintln!("blessed {} ({} cells)", path.display(), current.lines().count());
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing fixture {} ({e}); regenerate with \
             BLESS=1 cargo test -p taco-core --test golden_table1",
            path.display()
        )
    });
    assert_eq!(
        current, golden,
        "Table 1 drifted from the golden fixture; if the change is \
         intentional, regenerate with BLESS=1 and review the diff"
    );
}

#[test]
fn golden_fixture_shape() {
    // Independent of the simulation: the checked-in fixture itself must be
    // twelve one-line JSON objects with the four pinned keys, the last
    // three of them the PATRICIA rows.
    let golden = std::fs::read_to_string(fixture_path()).expect("fixture present");
    let lines: Vec<&str> = golden.lines().collect();
    assert_eq!(lines.len(), 12, "one line per Table 1 cell");
    for line in &lines {
        assert!(line.starts_with("{\"label\":\""), "{line}");
        assert!(line.ends_with('}'), "{line}");
        for key in ["\"min_freq_hz\":", "\"bus_utilization\":", "\"area_mm2\":", "\"power_w\":"] {
            assert!(line.contains(key), "{key} missing from {line}");
        }
    }
    for line in &lines[9..] {
        assert!(line.starts_with("{\"label\":\"patricia "), "{line}");
    }
}
