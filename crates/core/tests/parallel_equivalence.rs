//! The tentpole contracts of the parallel explorer:
//!
//! 1. the parallel, cached sweep over the **full default `SweepSpec`** is
//!    equal to the serial reference implementation (deterministic result
//!    ordering: results land by sweep index, not completion order);
//! 2. a repeated sweep is answered from the evaluation cache, observable
//!    through the `SweepObserver` records;
//! 3. a cached `EvalReport` is indistinguishable from a fresh
//!    `evaluate()` for every point in the default grid.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use taco_core::{
    explore_serial, explore_with, grid, scaling_sweep_with, ArchConfig, Constraints, EvalCache,
    EvalRequest, ExploreOptions, LineRate, PointRecord, RoutingTableKind, Silent, SweepObserver,
    SweepSpec, SweepSummary,
};

/// Captures everything the explorer reports, for assertions.
#[derive(Default)]
struct Recorder {
    points: AtomicUsize,
    cache_hits: AtomicUsize,
    summaries: Mutex<Vec<SweepSummary>>,
}

impl SweepObserver for Recorder {
    fn on_point(&self, record: &PointRecord<'_>) {
        self.points.fetch_add(1, Ordering::Relaxed);
        if record.cache_hit {
            self.cache_hits.fetch_add(1, Ordering::Relaxed);
        }
        assert!(record.index < record.total);
        assert!(record.stats_json.contains("\"cycles\":"), "{}", record.stats_json);
    }

    fn on_summary(&self, summary: &SweepSummary) {
        self.summaries.lock().unwrap().push(summary.clone());
    }
}

#[test]
fn parallel_matches_serial_on_the_full_default_sweep() {
    let spec = SweepSpec::default();
    let constraints = Constraints::default();

    let serial = explore_serial(&spec, LineRate::TEN_GBE, &constraints);

    let cache = EvalCache::new();
    let parallel = explore_with(
        &spec,
        LineRate::TEN_GBE,
        &constraints,
        &ExploreOptions { threads: 4, cache: Some(&cache), observer: &Silent },
    );

    assert_eq!(serial, parallel, "parallel sweep must be byte-identical to the serial one");
    assert_eq!(parallel.all.len(), grid(&spec).len());
    // Sweep order is the grid order.
    for (report, config) in parallel.all.iter().zip(grid(&spec)) {
        assert_eq!(report.config, config);
    }
}

#[test]
fn repeated_sweep_hits_the_cache_and_reports_it() {
    let spec = SweepSpec {
        buses: vec![1, 3],
        replication: vec![1, 2],
        kinds: vec![RoutingTableKind::Cam, RoutingTableKind::BalancedTree],
        entries: 8,
        workload: None,
        faults: None,
        trace: None,
        ..SweepSpec::default()
    };
    let constraints = Constraints::default();
    let cache = EvalCache::new();
    let recorder = Recorder::default();
    let opts = ExploreOptions { threads: 2, cache: Some(&cache), observer: &recorder };

    let first = explore_with(&spec, LineRate::TEN_GBE, &constraints, &opts);
    assert_eq!(recorder.cache_hits.load(Ordering::Relaxed), 0, "cold cache");

    let second = explore_with(&spec, LineRate::TEN_GBE, &constraints, &opts);
    assert_eq!(first, second);
    assert_eq!(recorder.points.load(Ordering::Relaxed), 16, "8 points per sweep, observed");
    assert_eq!(
        recorder.cache_hits.load(Ordering::Relaxed),
        8,
        "every point of the repeat answered from cache"
    );
    assert_eq!(cache.hits(), 8);
    assert_eq!(cache.misses(), 8);

    let summaries = recorder.summaries.lock().unwrap();
    assert_eq!(summaries.len(), 2);
    assert_eq!(summaries[0].cache_hits, 0);
    assert_eq!(summaries[1].cache_hits, 8);
    assert_eq!(summaries[1].points, 8);
    assert_eq!(summaries[1].admitted, second.admitted.len());
}

#[test]
fn cached_report_equals_fresh_evaluate_for_every_default_grid_point() {
    // Property-style (but proptest-free): over the whole default grid, the
    // memoised result is the fresh result — the cache is semantically
    // invisible.
    let spec = SweepSpec::default();
    let cache = EvalCache::new();
    let points = grid(&spec);
    let request = |config: &ArchConfig| {
        EvalRequest::new(config.clone()).rate(LineRate::TEN_GBE).entries(spec.entries)
    };
    for config in &points {
        cache.evaluate(&request(config));
    }
    assert_eq!(cache.misses(), points.len() as u64);
    for config in &points {
        let (cached, hit) = cache.evaluate_recorded(&request(config));
        assert!(hit, "second pass must hit: {config}");
        let fresh = request(config).run();
        assert_eq!(cached, fresh, "cached report must equal a fresh evaluation: {config}");
    }
    assert_eq!(cache.hits(), points.len() as u64);
}

#[test]
fn scaling_sweep_parallel_cached_equals_uncached_serial() {
    let config = ArchConfig::three_bus_one_fu(RoutingTableKind::Cam);
    let sizes = [4usize, 8, 16, 32];
    let cache = EvalCache::new();
    let serial = scaling_sweep_with(
        &config,
        &sizes,
        &ExploreOptions { threads: 1, cache: None, observer: &Silent },
    );
    let parallel = scaling_sweep_with(
        &config,
        &sizes,
        &ExploreOptions { threads: 4, cache: Some(&cache), observer: &Silent },
    );
    assert_eq!(serial, parallel);
    // Repeat is all hits.
    let again = scaling_sweep_with(
        &config,
        &sizes,
        &ExploreOptions { threads: 4, cache: Some(&cache), observer: &Silent },
    );
    assert_eq!(serial, again);
    assert_eq!(cache.hits(), sizes.len() as u64);
}

#[test]
fn multicore_sweep_is_byte_identical_across_threads_and_step_modes() {
    use taco_core::api::report_to_json;
    use taco_core::StepMode;
    use taco_isa::{CoherenceProtocol, Topology};
    use taco_workload::Workload;

    // A multicore grid with coherence traffic to measure: churn writes on
    // 1-, 2- and 4-core systems over both interconnects.
    let spec = SweepSpec {
        buses: vec![3],
        replication: vec![1],
        kinds: vec![RoutingTableKind::Cam],
        entries: 8,
        workload: Some(Workload::table_churn()),
        faults: None,
        trace: None,
        cores: vec![1, 2, 4],
        topologies: vec![Topology::SharedBus, Topology::Mesh],
        protocols: vec![CoherenceProtocol::Mesi],
    };
    let constraints = Constraints::default();
    let serial = explore_serial(&spec, LineRate::TEN_GBE, &constraints);
    assert_eq!(serial.all.len(), 5, "1 collapsed + 2x2 multicore points");
    let parallel = explore_with(
        &spec,
        LineRate::TEN_GBE,
        &constraints,
        &ExploreOptions { threads: 4, cache: Some(&EvalCache::new()), observer: &Silent },
    );
    assert_eq!(serial, parallel, "multicore sweep must not depend on worker count");

    // Byte-identity through the wire serialisation, and against the
    // interpretive reference loop, for every multicore point.
    for (report, config) in serial.all.iter().zip(grid(&spec)) {
        let json = report_to_json(report);
        let fresh = EvalRequest::new(config.clone())
            .entries(spec.entries)
            .workload(Workload::table_churn())
            .run();
        assert_eq!(report_to_json(&fresh), json, "{config}");
        let interpretive = EvalRequest::new(config.clone())
            .entries(spec.entries)
            .workload(Workload::table_churn())
            .step_mode(StepMode::Interpretive)
            .run();
        assert_eq!(
            interpretive.scenario, fresh.scenario,
            "coherence metrics must not depend on the step loop: {config}"
        );
        assert_eq!(
            interpretive.cycles_per_datagram, fresh.cycles_per_datagram,
            "measured cycles must not depend on the step loop: {config}"
        );
        if !report.config.system.is_single_core() {
            let scenario = report.scenario.as_ref().expect("workload attached");
            let c = scenario.coherence.expect("multicore points measure coherence");
            assert!(json.contains("\"coherence\":{\"reads\":"), "{json}");
            assert!(c.reads > 0, "{json}");
        }
    }
}

#[test]
fn equal_power_ties_rank_deterministically() {
    // Duplicate grid axes produce duplicate (hence equal-power) points;
    // the (power, area, index) total order must keep them in sweep order.
    let spec = SweepSpec {
        buses: vec![3, 3],
        replication: vec![1, 1],
        kinds: vec![RoutingTableKind::Cam],
        entries: 8,
        workload: None,
        faults: None,
        trace: None,
        ..SweepSpec::default()
    };
    let constraints = Constraints::default();
    let cache = EvalCache::new();
    let opts = ExploreOptions { threads: 2, cache: Some(&cache), observer: &Silent };
    let ex = explore_with(&spec, LineRate::TEN_GBE, &constraints, &opts);
    assert_eq!(ex.all.len(), 4);
    assert!(!ex.admitted.is_empty());
    // All four points are the same configuration: power ties everywhere,
    // so admitted order must be exactly ascending sweep index.
    let sorted: Vec<usize> = {
        let mut v = ex.admitted.clone();
        v.sort_unstable();
        v
    };
    assert_eq!(ex.admitted, sorted);
}
