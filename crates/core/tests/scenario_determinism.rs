//! Determinism contract of the scenario-aware explorer, mirroring
//! `parallel_equivalence.rs`: a workload-carrying sweep must produce
//! byte-identical `ScenarioMetrics` JSON no matter how many worker
//! threads evaluate it, and re-running the same seed must reproduce the
//! run exactly.

use std::sync::Arc;

use taco_core::{
    explore_with, Constraints, EvalCache, EvalRequest, ExploreOptions, LineRate, RoutingTableKind,
    Silent, SweepSpec, Workload,
};
use taco_workload::TraceGen;

fn scenario_spec() -> SweepSpec {
    SweepSpec {
        buses: vec![1, 3],
        replication: vec![1],
        kinds: vec![RoutingTableKind::Cam, RoutingTableKind::BalancedTree],
        entries: 8,
        workload: Some(Workload::burst_overload()),
        faults: None,
        trace: None,
        ..SweepSpec::default()
    }
}

fn trace_spec() -> SweepSpec {
    SweepSpec {
        trace: Some(Arc::new(TraceGen::generate(33, 60, 10, 8))),
        workload: None,
        ..scenario_spec()
    }
}

fn spec_jsons(spec: &SweepSpec, threads: usize) -> Vec<String> {
    let cache = EvalCache::new();
    let ex = explore_with(
        spec,
        LineRate::TEN_GBE,
        &Constraints::default(),
        &ExploreOptions { threads, cache: Some(&cache), observer: &Silent },
    );
    ex.all
        .iter()
        .map(|r| r.scenario.as_ref().expect("workload attached to every point").to_json())
        .collect()
}

fn scenario_jsons(threads: usize) -> Vec<String> {
    spec_jsons(&scenario_spec(), threads)
}

#[test]
fn scenario_metrics_are_byte_identical_across_thread_counts() {
    let serial = scenario_jsons(1);
    let parallel = scenario_jsons(4);
    assert_eq!(serial.len(), 4);
    assert_eq!(serial, parallel, "scenario JSON must not depend on the worker count");
}

#[test]
fn trace_replay_metrics_are_byte_identical_across_thread_counts() {
    let serial = spec_jsons(&trace_spec(), 1);
    let parallel = spec_jsons(&trace_spec(), 4);
    assert_eq!(serial.len(), 4);
    assert_eq!(serial, parallel, "trace-replay JSON must not depend on the worker count");
    for json in &serial {
        assert!(json.contains("\"scenario\":\"trace-replay\""), "{json}");
        assert!(json.contains("\"flows\":{"), "per-flow section must be present: {json}");
    }
}

#[test]
fn trace_replay_cache_hits_round_trip_bytes() {
    let cache = EvalCache::new();
    let spec = trace_spec();
    let opts = ExploreOptions { threads: 2, cache: Some(&cache), observer: &Silent };
    let cold = explore_with(&spec, LineRate::TEN_GBE, &Constraints::default(), &opts);
    let warm = explore_with(&spec, LineRate::TEN_GBE, &Constraints::default(), &opts);
    assert_eq!(cache.hits(), 4, "the repeat trace sweep is answered from the cache");
    for (a, b) in cold.all.iter().zip(&warm.all) {
        assert_eq!(a.scenario.as_ref().unwrap().to_json(), b.scenario.as_ref().unwrap().to_json());
    }
}

#[test]
fn latency_percentiles_are_integers_in_stable_json() {
    // The percentile fields must be plain integers (no '.' anywhere in
    // their values) and byte-stable across thread counts — they ride the
    // same JSON the previous test compares, but pin the fields explicitly.
    for json in scenario_jsons(2) {
        for key in ["\"p50\":", "\"p90\":", "\"p99\":", "\"max\":"] {
            let at = json.find(key).unwrap_or_else(|| panic!("{key} missing from {json}"));
            let value: String =
                json[at + key.len()..].chars().take_while(|c| c.is_ascii_digit()).collect();
            assert!(!value.is_empty(), "{key} carries no integer in {json}");
            let next = json[at + key.len() + value.len()..].chars().next();
            assert!(
                matches!(next, Some(',') | Some('}')),
                "{key} value is not a bare integer in {json}"
            );
        }
    }
}

#[test]
fn percentiles_are_ordered_and_bounded_by_max() {
    let request = EvalRequest::new(taco_core::ArchConfig::three_bus_one_fu(RoutingTableKind::Cam))
        .entries(8)
        .workload(Workload::burst_overload());
    let report = request.run();
    let metrics = report.scenario.as_ref().expect("workload attached");
    let h = &metrics.latency;
    assert!(h.count() > 0, "burst-overload must service datagrams: {}", metrics.to_json());
    assert!(h.p50() <= h.p90());
    assert!(h.p90() <= h.p99());
    assert!(h.p99() <= h.max());
}

#[test]
fn same_seed_reproduces_the_run_and_a_new_seed_does_not() {
    let base = Workload::burst_overload();
    let request = |w: Workload| {
        EvalRequest::new(taco_core::ArchConfig::three_bus_one_fu(RoutingTableKind::Cam))
            .entries(8)
            .workload(w)
    };
    let a = request(base).run();
    let b = request(base).run();
    assert_eq!(
        a.scenario.as_ref().unwrap().to_json(),
        b.scenario.as_ref().unwrap().to_json(),
        "same seed, same bytes"
    );

    let reseeded = request(base.with_seed(base.seed() ^ 1)).run();
    assert_ne!(
        a.scenario.as_ref().unwrap().to_json(),
        reseeded.scenario.as_ref().unwrap().to_json(),
        "a different seed must change the arrival pattern"
    );
}

#[test]
fn cached_scenario_points_round_trip_bytes() {
    // The cache stores the report with its metrics embedded; a hit must
    // return the identical JSON, not a re-run.
    let cache = EvalCache::new();
    let spec = scenario_spec();
    let opts = ExploreOptions { threads: 2, cache: Some(&cache), observer: &Silent };
    let first = explore_with(&spec, LineRate::TEN_GBE, &Constraints::default(), &opts);
    let second = explore_with(&spec, LineRate::TEN_GBE, &Constraints::default(), &opts);
    assert_eq!(cache.hits(), 4, "the repeat sweep is answered from the cache");
    for (a, b) in first.all.iter().zip(&second.all) {
        assert_eq!(a.scenario.as_ref().unwrap().to_json(), b.scenario.as_ref().unwrap().to_json());
    }
}
