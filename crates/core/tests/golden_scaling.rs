//! Golden snapshot of the engines' internet-scale behaviour: probe counts
//! and memory footprint over a 10k-prefix BGP-shaped table.
//!
//! Table 1 stops at 100 entries; this fixture pins what each organisation
//! *becomes* at BGP size — all-integer, so the snapshot is byte-stable on
//! every platform.  For each of the five table kinds it records, over the
//! same seeded table and 1000-probe mix:
//!
//! * `max_probes` / `total_probes` — the engine's search cost signature
//!   (constant CAM, logarithmic tree, bounded-depth tries, linear scan);
//! * `memory_words` — the serialised footprint of the built table;
//! * `hits` — identical for every kind by the LPM oracle, pinned once.
//!
//! Regenerate after an intentional change:
//!
//! ```text
//! BLESS=1 cargo test -p taco-core --test golden_scaling
//! ```

use std::fmt::Write as _;
use std::path::PathBuf;

use taco_router::TrafficGen;
use taco_routing::TableKind;

const ENTRIES: usize = 10_000;
const PROBES: usize = 1_000;
const SEED: u64 = 0x5_CA1E_10C0;

fn fixture_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/scaling10k.json")
}

fn snapshot() -> String {
    let mut gen = TrafficGen::new(SEED, 8);
    let routes = gen.bgp_table(ENTRIES, false);
    // Mostly-hitting probe mix: two of three addresses inside some route.
    let probes: Vec<_> = (0..PROBES)
        .map(|i| {
            if i % 3 == 0 {
                gen.addr_in(&"2000::/3".parse().unwrap())
            } else {
                let r = routes[(i * 2654435761) % routes.len()];
                gen.addr_in(&r.prefix())
            }
        })
        .collect();
    let mut out = String::new();
    let mut hits_by_kind = Vec::new();
    for kind in TableKind::ALL_KINDS {
        let table = kind.build(&routes);
        let mut max_probes = 0u64;
        let mut total_probes = 0u64;
        let mut hits = 0u64;
        for dst in &probes {
            let lookup = table.lookup(dst);
            max_probes = max_probes.max(u64::from(lookup.steps()));
            total_probes += u64::from(lookup.steps());
            hits += u64::from(lookup.route().is_some());
        }
        hits_by_kind.push(hits);
        let _ = writeln!(
            out,
            "{{\"kind\":\"{kind}\",\"entries\":{ENTRIES},\"probes\":{PROBES},\
             \"max_probes\":{max_probes},\"total_probes\":{total_probes},\
             \"memory_words\":{},\"hits\":{hits}}}",
            table.memory_words(),
        );
    }
    // The fixture would silently pin a divergence bug as golden if the
    // engines disagreed; refuse to snapshot that.
    assert!(
        hits_by_kind.windows(2).all(|w| w[0] == w[1]),
        "engines disagree on hit counts: {hits_by_kind:?}"
    );
    out
}

#[test]
fn scaling_at_10k_prefixes_matches_golden_fixture() {
    let current = snapshot();
    let path = fixture_path();
    if std::env::var_os("BLESS").is_some() {
        std::fs::write(&path, &current).expect("write fixture");
        eprintln!("blessed {} ({} kinds)", path.display(), current.lines().count());
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing fixture {} ({e}); regenerate with \
             BLESS=1 cargo test -p taco-core --test golden_scaling",
            path.display()
        )
    });
    assert_eq!(
        current, golden,
        "10k-prefix scaling drifted from the golden fixture; if the change \
         is intentional, regenerate with BLESS=1 and review the diff"
    );
}

#[test]
fn golden_scaling_fixture_shape() {
    let golden = std::fs::read_to_string(fixture_path()).expect("fixture present");
    let lines: Vec<&str> = golden.lines().collect();
    assert_eq!(lines.len(), TableKind::ALL_KINDS.len(), "one line per organisation");
    for (line, kind) in lines.iter().zip(TableKind::ALL_KINDS) {
        assert!(line.starts_with(&format!("{{\"kind\":\"{kind}\"")), "{line}");
        for key in ["\"max_probes\":", "\"total_probes\":", "\"memory_words\":", "\"hits\":"] {
            assert!(line.contains(key), "{key} missing from {line}");
        }
    }
}
