//! Compiled-vs-interpretive differential suite.
//!
//! The compiled step path (pre-decoded move schedules, `taco_sim::sched`)
//! must be an *invisible* optimisation: every workload × table organisation
//! × fault preset has to produce byte-identical scenario metrics and
//! simulator counters under both step modes, and the compiled results must
//! not depend on how many pool workers evaluated them.  Any divergence here
//! means the compiled loop drifted from the interpretive reference.

use taco_core::pool::ordered_map;
use taco_core::{
    evaluate_request, ArchConfig, EvalRequest, FaultPlan, ScenarioMetrics, StepMode, Workload,
};
use taco_routing::TableKind;

const TABLE_KINDS: [TableKind; 5] = TableKind::ALL_KINDS;

/// Small enough to keep 100+ evaluations fast in debug builds, large
/// enough that every organisation takes its characteristic search path.
const ENTRIES: usize = 10;

fn fault_presets() -> Vec<(&'static str, Option<FaultPlan>)> {
    let mut presets = vec![("none", None)];
    presets.extend(FaultPlan::builtin().into_iter().map(|(name, plan)| (name, Some(plan))));
    presets
}

/// Every builtin workload × table kind × fault preset (5 × 6 × 6 = 180),
/// labelled for failure messages.  The builtin list includes the
/// `mixed-plane` and `trace-replay` workloads, so both new scenarios ride
/// the full differential matrix.
fn matrix() -> Vec<(String, EvalRequest)> {
    let mut requests = Vec::new();
    for kind in TABLE_KINDS {
        for workload in Workload::builtin() {
            for (fault_name, plan) in fault_presets() {
                let label = format!("{kind:?}/{}/{fault_name}", workload.name());
                let mut request = EvalRequest::new(ArchConfig::three_bus_one_fu(kind))
                    .entries(ENTRIES)
                    .workload(workload);
                if let Some(plan) = plan {
                    request = request.faults(plan);
                }
                requests.push((label, request));
            }
        }
    }
    requests
}

/// The byte-exact observable surface of one evaluation: scenario metrics
/// JSON plus simulator counter JSON.
fn fingerprint(request: &EvalRequest) -> (String, String) {
    let report = evaluate_request(request);
    assert!(report.sim_error.is_none(), "{request:?} failed: {report}");
    let scenario = report.scenario.as_ref().map_or_else(String::new, ScenarioMetrics::to_json);
    (scenario, report.stats.to_json())
}

#[test]
fn every_cell_is_byte_identical_across_step_modes() {
    let cells = matrix();
    let compiled = ordered_map(&cells, 4, |_, (_, request)| {
        fingerprint(&request.clone().step_mode(StepMode::Compiled))
    });
    let interpretive = ordered_map(&cells, 4, |_, (_, request)| {
        fingerprint(&request.clone().step_mode(StepMode::Interpretive))
    });
    for (((label, _), fast), reference) in cells.iter().zip(&compiled).zip(&interpretive) {
        assert_eq!(fast.0, reference.0, "{label}: scenario metrics diverged");
        assert_eq!(fast.1, reference.1, "{label}: simulator counters diverged");
    }
}

#[test]
fn compiled_full_reports_match_interpretive() {
    // Byte-identical JSON is the wire contract; full-report equality also
    // pins the derived floats (cycles/datagram, utilisation, clock) that
    // never reach the JSON surface at full precision.  A sparser sample —
    // one workload per kind, faulted and not — keeps this affordable.
    for kind in TABLE_KINDS {
        for plan in [None, Some(FaultPlan::stalls())] {
            let mut request = EvalRequest::new(ArchConfig::three_bus_one_fu(kind))
                .entries(ENTRIES)
                .workload(Workload::steady_forward());
            if let Some(plan) = plan {
                request = request.faults(plan);
            }
            let compiled = evaluate_request(&request.clone().step_mode(StepMode::Compiled));
            let interpretive = evaluate_request(&request.step_mode(StepMode::Interpretive));
            assert_eq!(compiled, interpretive, "{kind:?} report diverged across step modes");
        }
    }
}

#[test]
fn explicit_flow_traces_are_byte_identical_across_step_modes() {
    // The matrix above replays traces regenerated from their descriptor;
    // this pins the other entry point — an explicit in-memory trace
    // attached to the request — across both step modes and a fault plan.
    let trace = std::sync::Arc::new(taco_workload::TraceGen::generate(77, 50, 9, ENTRIES as u32));
    for kind in TABLE_KINDS {
        for plan in [None, Some(FaultPlan::stalls())] {
            let mut request = EvalRequest::new(ArchConfig::three_bus_one_fu(kind))
                .entries(ENTRIES)
                .flow_trace(std::sync::Arc::clone(&trace));
            if let Some(plan) = plan {
                request = request.faults(plan);
            }
            let compiled = fingerprint(&request.clone().step_mode(StepMode::Compiled));
            let interpretive = fingerprint(&request.step_mode(StepMode::Interpretive));
            assert_eq!(compiled, interpretive, "{kind:?}: explicit trace diverged");
        }
    }
}

#[test]
fn compiled_results_are_thread_count_invariant() {
    // A stratified sample (every 5th cell walks all kinds, workloads and
    // fault presets across the run) keeps the debug-build cost down; the
    // full matrix already ran in the step-mode test above.
    let cells: Vec<_> = matrix().into_iter().step_by(5).collect();
    let serial = ordered_map(&cells, 1, |_, (_, request)| {
        fingerprint(&request.clone().step_mode(StepMode::Compiled))
    });
    let parallel = ordered_map(&cells, 4, |_, (_, request)| {
        fingerprint(&request.clone().step_mode(StepMode::Compiled))
    });
    for (((label, _), one), four) in cells.iter().zip(&serial).zip(&parallel) {
        assert_eq!(one, four, "{label}: compiled result depends on worker count");
    }
}
