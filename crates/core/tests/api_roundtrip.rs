//! Exhaustive wire round-trip of the `v1` API over every builtin
//! combination.
//!
//! The wire schema's core contract is *identity*: `to_json` followed by
//! `from_json` must reproduce the request exactly, and re-serialising the
//! parse must reproduce the original bytes (the byte-stability the daemon
//! tests pin golden fixtures against).  This suite enumerates the whole
//! builtin cross product — every routing-table organisation × machine
//! shape × workload × fault plan × line rate — rather than sampling it;
//! the grid is a few thousand encode/parse pairs and no simulation, so it
//! stays cheap.  (The `crates/proptests` package runs the same property
//! over *randomised* specs, registry-gated.)

use taco_core::api::{ApiRequest, ConfigSpec, EvalSpec, MachineSpec, SweepShard, WireRequest};
use taco_core::{
    Constraints, FaultPlan, LineRate, RoutingTableKind, StepMode, SweepSpec, Workload,
};
use taco_isa::{CacheConfig, CoherenceProtocol, SystemConfig, Topology, MAX_CORES};

const KINDS: [RoutingTableKind; 5] = [
    RoutingTableKind::Sequential,
    RoutingTableKind::BalancedTree,
    RoutingTableKind::Cam,
    RoutingTableKind::Trie,
    RoutingTableKind::Patricia,
];

/// The machine shapes of Table 1 plus an asymmetric-ish corner (4 buses,
/// 2× replication) the paper never builds.
const SHAPES: [(u8, u8); 4] = [(1, 1), (3, 1), (3, 3), (4, 2)];

const RATES: [LineRate; 3] = [LineRate::TEN_GBE, LineRate::GIGE, LineRate::TEN_GBE_MIN_FRAMES];

fn workload_options() -> Vec<Option<Workload>> {
    let mut options = vec![None];
    options.extend(Workload::builtin().into_iter().map(Some));
    options
}

fn fault_options() -> Vec<Option<FaultPlan>> {
    let mut options = vec![None];
    options.extend(FaultPlan::builtin().into_iter().map(|(_, plan)| Some(plan)));
    options
}

/// One encode→parse→re-encode cycle, asserting identity both ways.
fn assert_round_trip(request: &ApiRequest) {
    let line = request.to_json();
    let parsed = ApiRequest::from_json(&line)
        .unwrap_or_else(|e| panic!("own serialisation must parse: {e}\n{line}"));
    assert_eq!(&parsed, request, "{line}");
    assert_eq!(parsed.to_json(), line, "re-serialisation must be byte-identical");
}

#[test]
fn every_builtin_eval_combination_round_trips() {
    let workloads = workload_options();
    let faults = fault_options();
    let mut combinations = 0usize;
    for kind in KINDS {
        for (buses, replication) in SHAPES {
            for rate in RATES {
                for workload in &workloads {
                    for fault in &faults {
                        let mut spec = EvalSpec::new(ConfigSpec::new(kind, buses, replication));
                        spec.rate = rate;
                        spec.entries = 32;
                        spec.workload = *workload;
                        spec.faults = *fault;
                        assert_round_trip(&ApiRequest::Eval(spec));
                        combinations += 1;
                    }
                }
            }
        }
    }
    // 5 kinds × 4 shapes × 3 rates × (1 + builtins) × (1 + plans): the
    // count pins the enumeration itself so a shrinking builtin list
    // cannot silently hollow the test out.
    let expected = KINDS.len()
        * SHAPES.len()
        * RATES.len()
        * (1 + Workload::builtin().len())
        * (1 + FaultPlan::builtin().len());
    assert_eq!(combinations, expected);
    assert!(combinations >= 5 * 4 * 3 * 5 * 6, "builtin lists shrank: {combinations}");
}

#[test]
fn every_machine_spec_combination_round_trips() {
    // The full multicore cross product: every core count the schema
    // accepts × topology × protocol × table kind × Table-1 shape, each
    // through MachineSpec → JSON → MachineSpec and a full eval request
    // cycle.  Non-default cache geometry rides one corner of the grid so
    // the optional "cache" member is exercised without squaring the size.
    let mut combinations = 0usize;
    for cores in 1..=MAX_CORES {
        for topology in Topology::ALL {
            for protocol in CoherenceProtocol::ALL {
                for kind in KINDS {
                    for (buses, replication) in SHAPES {
                        let mut system =
                            SystemConfig::with_cores(cores).topology(topology).protocol(protocol);
                        if cores == MAX_CORES {
                            system.cache = CacheConfig { lines: 128, line_words: 8 };
                            system.interconnect.latency = 5;
                        }
                        let spec = MachineSpec::new(ConfigSpec::new(kind, buses, replication))
                            .with_system(system);
                        // Spec-level identity: encode → parse → re-encode.
                        let json = spec.to_json();
                        let parsed = MachineSpec::from_json(&json)
                            .unwrap_or_else(|e| panic!("own form must validate: {e}\n{json}"));
                        assert_eq!(parsed, spec, "{json}");
                        assert_eq!(parsed.to_json(), json, "re-encode must be byte-identical");
                        // Request-level identity: the spec embedded in a
                        // full eval line survives the wire unchanged.
                        let mut eval = EvalSpec::new(spec);
                        eval.entries = 32;
                        assert_round_trip(&ApiRequest::Eval(eval));
                        combinations += 1;
                    }
                }
            }
        }
    }
    let expected = usize::from(MAX_CORES)
        * Topology::ALL.len()
        * CoherenceProtocol::ALL.len()
        * KINDS.len()
        * SHAPES.len();
    assert_eq!(combinations, expected);
    assert!(combinations >= 8 * 2 * 2 * 5 * 4, "the spec grid shrank: {combinations}");
}

#[test]
fn single_core_machine_specs_keep_the_flat_wire_form() {
    // N=1 equivalence: a single-core MachineSpec must serialise to the
    // exact flat ConfigSpec bytes the pre-multicore schema wrote, so every
    // v1/v2 golden fixture (and every cache key derived from request
    // bytes) is untouched by the redesign.
    for kind in KINDS {
        for (buses, replication) in SHAPES {
            let core = ConfigSpec::new(kind, buses, replication);
            let flat = MachineSpec::new(core);
            assert_eq!(flat.to_json(), core.to_json(), "single-core must stay flat");
            assert!(!flat.to_json().contains("\"core\""), "{}", flat.to_json());
            // An explicit single-core system is the same machine, bytes
            // included.
            let explicit = MachineSpec::new(core).with_system(SystemConfig::single_core());
            assert_eq!(explicit.to_json(), core.to_json());
            // And the eval request around it writes the pre-multicore
            // line verbatim.
            let mut old = EvalSpec::new(core);
            old.entries = 32;
            let mut new = EvalSpec::new(MachineSpec::new(core));
            new.entries = 32;
            assert_eq!(ApiRequest::Eval(new).to_json(), ApiRequest::Eval(old.clone()).to_json());
            assert_round_trip(&ApiRequest::Eval(old));
        }
    }
}

#[test]
fn every_builtin_sweep_combination_round_trips() {
    let constraint_corners = [
        Constraints::default(),
        Constraints { max_scenario_drops: Some(0), ..Constraints::default() },
        Constraints {
            max_power_w: 0.5,
            max_area_mm2: 12.25,
            max_scenario_drops: Some(1000),
            max_unrecovered_faults: Some(3),
        },
    ];
    for workload in workload_options() {
        for fault in fault_options() {
            for constraints in constraint_corners {
                for rate in RATES {
                    let spec = SweepSpec { workload, faults: fault, ..SweepSpec::default() };
                    assert_round_trip(&ApiRequest::Sweep { spec, rate, constraints, shard: None });
                }
            }
        }
    }
}

#[test]
fn control_requests_round_trip() {
    assert_round_trip(&ApiRequest::Status);
    assert_round_trip(&ApiRequest::Shutdown);
}

/// One encode→parse→re-encode cycle under the v2 envelope, asserting
/// identity of the request, the id, and the bytes.
fn assert_round_trip_v2(request: &ApiRequest, id: u64) {
    let line = request.to_json_v2(id);
    let wire = WireRequest::from_json(&line)
        .unwrap_or_else(|e| panic!("own v2 serialisation must parse: {e}\n{line}"));
    assert_eq!(wire.id, Some(id), "{line}");
    assert_eq!(&wire.request, request, "{line}");
    assert_eq!(wire.request.to_json_v2(id), line, "re-serialisation must be byte-identical");
}

/// The v2-only wire surface: session ids on every kind, sweep shards,
/// explicit step modes, and the cache-exchange kinds.
#[test]
fn v2_session_kinds_round_trip() {
    let mut interpretive = EvalSpec::new(ConfigSpec::new(RoutingTableKind::Cam, 3, 1));
    interpretive.step_mode = StepMode::Interpretive;
    assert_round_trip(&ApiRequest::Eval(interpretive.clone()));
    let sharded = ApiRequest::Sweep {
        spec: SweepSpec::default(),
        rate: LineRate::TEN_GBE,
        constraints: Constraints::default(),
        shard: Some(SweepShard { offset: 2, stride: 3 }),
    };
    for (id, request) in [
        (0u64, ApiRequest::Eval(interpretive)),
        (7, sharded),
        (u64::MAX, ApiRequest::CacheExport),
        (31, ApiRequest::CacheImport { body: "snapshot\ntext\n".into() }),
        (1, ApiRequest::Status),
        (2, ApiRequest::Shutdown),
    ] {
        assert_round_trip_v2(&request, id);
    }
}
