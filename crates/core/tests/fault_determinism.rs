//! Determinism contract of fault injection, mirroring
//! `scenario_determinism.rs`: the same seed and plan must produce
//! byte-identical `ScenarioMetrics` JSON (fault section included) no
//! matter how many worker threads evaluate the sweep, cache hits must
//! round-trip the same bytes, and the fault-free path must be entirely
//! unperturbed by the subsystem's existence.

use taco_core::{
    explore_with, ArchConfig, Constraints, EvalCache, EvalRequest, ExploreOptions, FaultPlan,
    LineRate, RoutingTableKind, Silent, SweepSpec, Workload,
};

fn small_workload() -> Workload {
    Workload::SteadyForward { seed: 11, ticks: 120, packets_per_tick: 8, entries: 24 }
}

fn faulted_spec() -> SweepSpec {
    SweepSpec {
        buses: vec![1, 3],
        replication: vec![1],
        kinds: vec![RoutingTableKind::Cam, RoutingTableKind::BalancedTree],
        entries: 8,
        workload: Some(small_workload()),
        faults: Some(FaultPlan::storm()),
        trace: None,
        ..SweepSpec::default()
    }
}

fn faulted_jsons(threads: usize) -> Vec<String> {
    let cache = EvalCache::new();
    let ex = explore_with(
        &faulted_spec(),
        LineRate::TEN_GBE,
        &Constraints::default(),
        &ExploreOptions { threads, cache: Some(&cache), observer: &Silent },
    );
    ex.all
        .iter()
        .map(|r| r.scenario.as_ref().expect("workload attached to every point").to_json())
        .collect()
}

#[test]
fn faulted_metrics_are_byte_identical_across_thread_counts() {
    let serial = faulted_jsons(1);
    let parallel = faulted_jsons(4);
    assert_eq!(serial.len(), 4);
    assert_eq!(serial, parallel, "faulted scenario JSON must not depend on the worker count");
    for json in &serial {
        assert!(json.contains("\"faults\":{"), "fault section missing from {json}");
    }
}

#[test]
fn cached_faulted_points_round_trip_bytes() {
    let cache = EvalCache::new();
    let spec = faulted_spec();
    let opts = ExploreOptions { threads: 2, cache: Some(&cache), observer: &Silent };
    let first = explore_with(&spec, LineRate::TEN_GBE, &Constraints::default(), &opts);
    let second = explore_with(&spec, LineRate::TEN_GBE, &Constraints::default(), &opts);
    assert_eq!(cache.hits(), 4, "the repeat sweep is answered from the cache");
    for (a, b) in first.all.iter().zip(&second.all) {
        assert_eq!(a.scenario.as_ref().unwrap().to_json(), b.scenario.as_ref().unwrap().to_json());
    }
}

#[test]
fn storm_injects_and_the_metrics_say_so() {
    let report = EvalRequest::new(ArchConfig::three_bus_one_fu(RoutingTableKind::Cam))
        .entries(8)
        .workload(small_workload())
        .faults(FaultPlan::storm())
        .run();
    let metrics = report.scenario.as_ref().expect("workload attached");
    let faults = metrics.faults.as_ref().expect("fault plan attached");
    assert!(faults.injected() > 0, "storm must inject: {}", metrics.to_json());
    assert!(faults.injected_malformed > 0);
    assert!(faults.injected_corruptions > 0);
    assert!(faults.injected_flaps > 0);
    assert!(faults.detected_malformed > 0, "malformed frames must be detected and dropped");
    assert!(faults.recovered > 0, "bounded repairs must complete within the horizon");
    // The storm also steals simulator cycles during measurement.
    assert!(report.stats.injected_stall_cycles > 0);
}

#[test]
fn fault_free_requests_carry_no_fault_section() {
    let report = EvalRequest::new(ArchConfig::three_bus_one_fu(RoutingTableKind::Cam))
        .entries(8)
        .workload(small_workload())
        .run();
    let metrics = report.scenario.as_ref().expect("workload attached");
    assert!(metrics.faults.is_none());
    assert!(!metrics.to_json().contains("\"faults\""));
    assert_eq!(report.stats.injected_stall_cycles, 0);
}

#[test]
fn same_plan_reproduces_and_a_new_seed_does_not() {
    let request = |plan: FaultPlan| {
        EvalRequest::new(ArchConfig::three_bus_one_fu(RoutingTableKind::Cam))
            .entries(8)
            .workload(small_workload())
            .faults(plan)
    };
    let a = request(FaultPlan::storm()).run();
    let b = request(FaultPlan::storm()).run();
    assert_eq!(
        a.scenario.as_ref().unwrap().to_json(),
        b.scenario.as_ref().unwrap().to_json(),
        "same seed, same plan, same bytes"
    );
    let reseeded = request(FaultPlan::storm().with_seed(0xDEAD)).run();
    assert_ne!(
        a.scenario.as_ref().unwrap().to_json(),
        reseeded.scenario.as_ref().unwrap().to_json(),
        "a different fault seed must change the injection pattern"
    );
}

#[test]
fn injected_stalls_lengthen_the_measured_run() {
    let base = EvalRequest::new(ArchConfig::three_bus_one_fu(RoutingTableKind::Cam)).entries(8);
    let clean = base.clone().run();
    let stalled = base.faults(FaultPlan::stalls()).run();
    assert!(stalled.stats.injected_stall_cycles > 0);
    assert_eq!(
        stalled.stats.cycles,
        clean.stats.cycles + stalled.stats.injected_stall_cycles,
        "every stolen cycle is accounted for, nothing else changes"
    );
    assert!(stalled.cycles_per_datagram > clean.cycles_per_datagram);
}

#[test]
fn unrecovered_fault_bound_culls_points() {
    // Corruptions whose repair latency exceeds the scenario horizon can
    // never recover; a zero-tolerance bound must reject every point while
    // the unbounded constraint admits them.
    let hopeless = FaultPlan {
        corrupt_every: 10,
        repair_ticks: 10_000,
        repair_retries: 0,
        ..FaultPlan::none()
    };
    let spec = SweepSpec { faults: Some(hopeless), ..faulted_spec() };
    let cache = EvalCache::new();
    let opts = ExploreOptions { threads: 2, cache: Some(&cache), observer: &Silent };

    let lenient = explore_with(&spec, LineRate::TEN_GBE, &Constraints::default(), &opts);
    assert!(!lenient.admitted.is_empty(), "no bound: unrecovered faults do not disqualify");
    for i in &lenient.admitted {
        let faults = lenient.all[*i].scenario.as_ref().unwrap().faults.as_ref().unwrap();
        assert!(faults.unrecovered > 0, "the hopeless plan must leave faults unrecovered");
    }

    let strict = Constraints { max_unrecovered_faults: Some(0), ..Constraints::default() };
    let culled = explore_with(&spec, LineRate::TEN_GBE, &strict, &opts);
    assert!(culled.admitted.is_empty(), "zero tolerance must reject every point");

    // A bound at the worst observed count admits the same set as no bound.
    let worst = lenient
        .all
        .iter()
        .filter_map(|r| Some(r.scenario.as_ref()?.faults.as_ref()?.unrecovered))
        .max()
        .expect("every point carries fault metrics");
    let tolerant = Constraints { max_unrecovered_faults: Some(worst), ..Constraints::default() };
    let kept = explore_with(&spec, LineRate::TEN_GBE, &tolerant, &opts);
    assert_eq!(kept.admitted, lenient.admitted, "a bound at the maximum culls nothing");
}

#[test]
fn fault_bound_without_a_workload_does_not_panic_or_cull() {
    // A constraint referencing data that was never produced must be
    // ignored, not crash the sweep or disqualify everything.
    let spec = SweepSpec { workload: None, faults: None, ..faulted_spec() };
    let strict = Constraints {
        max_scenario_drops: Some(0),
        max_unrecovered_faults: Some(0),
        ..Constraints::default()
    };
    let ex = explore_with(
        &spec,
        LineRate::TEN_GBE,
        &strict,
        &ExploreOptions { threads: 2, cache: None, observer: &Silent },
    );
    assert!(!ex.admitted.is_empty(), "absent scenario data must not disqualify feasible points");
}
