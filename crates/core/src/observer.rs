//! Sweep observability.
//!
//! The explorer reports per-point progress through the [`SweepObserver`]
//! trait: library callers get the silent default, the bench binaries wire
//! in [`StderrProgress`] so long sweeps show what they are doing (and what
//! the evaluation cache is saving) without polluting the stdout tables.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use crate::evaluate::EvalReport;
use crate::table1::format_frequency;

/// Everything known about one evaluated design point, delivered to
/// [`SweepObserver::on_point`] as soon as the point finishes (completion
/// order — the *results* are index-ordered, notifications are not).
#[derive(Debug)]
pub struct PointRecord<'a> {
    /// Sweep index of this point (position in `Exploration::all`).
    pub index: usize,
    /// Total points in the sweep.
    pub total: usize,
    /// The co-analysis result.
    pub report: &'a EvalReport,
    /// `true` if the result came from the evaluation cache.
    pub cache_hit: bool,
    /// Wall time spent obtaining the result (lookup time for hits,
    /// simulation time for misses).
    pub wall: Duration,
    /// The raw simulator counters, serialised as one line of JSON
    /// ([`taco_sim::SimStats::to_json`]).
    pub stats_json: String,
}

/// End-of-sweep totals, delivered to [`SweepObserver::on_summary`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepSummary {
    /// Points evaluated (grid size).
    pub points: usize,
    /// How many of them were answered from the cache.
    pub cache_hits: usize,
    /// How many survived the designer's constraints.
    pub admitted: usize,
    /// Total sweep wall time in milliseconds.
    pub wall_ms: u128,
}

/// Receives sweep progress.  Implementations must be `Sync`: points are
/// reported concurrently from the worker pool.
pub trait SweepObserver: Sync {
    /// Called once per evaluated point, in completion order.
    fn on_point(&self, _record: &PointRecord<'_>) {}

    /// Called once after ranking, with the sweep totals.
    fn on_summary(&self, _summary: &SweepSummary) {}
}

/// The library default: observes nothing.
#[derive(Debug, Default, Clone, Copy)]
pub struct Silent;

impl SweepObserver for Silent {}

/// A progress reporter for interactive/bench use, writing one line per
/// point (and a closing summary) to **stderr**:
///
/// ```text
/// [ 7/36] cam 3BUS/1FU                  41 MHz  miss   312.4 ms
/// [ 8/36] cam 3BUS/1FU                  41 MHz  hit      0.0 ms
/// sweep: 36 points (12 cache hits), 5 admitted, 3.21 s
/// ```
///
/// Pass `verbose = true` to append each point's simulator counters as JSON
/// (the `SimStats` record) after the timing column.
#[derive(Debug, Default)]
pub struct StderrProgress {
    /// Also print the per-point `SimStats` JSON record.
    pub verbose: bool,
    points_seen: AtomicU64,
}

impl StderrProgress {
    /// A quiet per-point reporter (no JSON column).
    pub fn new() -> Self {
        StderrProgress::default()
    }

    /// A reporter that appends the `SimStats` JSON record to every line.
    pub fn verbose() -> Self {
        StderrProgress { verbose: true, points_seen: AtomicU64::new(0) }
    }

    /// Points reported so far (monotone; used by tests).
    pub fn points_seen(&self) -> u64 {
        self.points_seen.load(Ordering::Relaxed)
    }
}

impl SweepObserver for StderrProgress {
    fn on_point(&self, record: &PointRecord<'_>) {
        self.points_seen.fetch_add(1, Ordering::Relaxed);
        let wall_ms = record.wall.as_secs_f64() * 1e3;
        let outcome = if record.cache_hit { "hit " } else { "miss" };
        let width = record.total.to_string().len();
        let mut line = format!(
            "[{:>width$}/{}] {:<30} {:>10} {} {:>8.1} ms",
            record.index + 1,
            record.total,
            record.report.config.label(),
            format_frequency(record.report.required_frequency_hz),
            outcome,
            wall_ms,
        );
        if self.verbose {
            line.push_str("  ");
            line.push_str(&record.stats_json);
        }
        eprintln!("{line}");
    }

    fn on_summary(&self, summary: &SweepSummary) {
        eprintln!(
            "sweep: {} points ({} cache hits), {} admitted, {:.2} s",
            summary.points,
            summary.cache_hits,
            summary.admitted,
            summary.wall_ms as f64 / 1e3,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::ArchConfig;
    use crate::request::EvalRequest;
    use taco_routing::TableKind;

    #[test]
    fn stderr_progress_counts_points() {
        let report =
            EvalRequest::new(ArchConfig::three_bus_one_fu(TableKind::Cam)).entries(8).run();
        let obs = StderrProgress::verbose();
        let record = PointRecord {
            index: 0,
            total: 1,
            report: &report,
            cache_hit: false,
            wall: Duration::from_millis(5),
            stats_json: report.stats.to_json(),
        };
        obs.on_point(&record);
        obs.on_summary(&SweepSummary { points: 1, cache_hits: 0, admitted: 1, wall_ms: 5 });
        assert_eq!(obs.points_seen(), 1);
    }

    #[test]
    fn silent_observer_is_a_no_op() {
        // Nothing to assert beyond "it compiles and runs": the default
        // methods must not panic on an empty summary.
        Silent.on_summary(&SweepSummary { points: 0, cache_hits: 0, admitted: 0, wall_ms: 0 });
    }
}
