//! Automated design-space exploration.
//!
//! "Our future work includes … a tool that automates the design space
//! exploration phase, which based on some heuristics will suggest good
//! solutions, with respect to performance requirements and physical
//! constraints."  This module implements that tool: sweep an architecture
//! grid, evaluate every instance with the same simulate-then-estimate
//! pipeline, filter by the designer's constraints, and rank what survives.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use taco_isa::{CoherenceProtocol, SystemConfig, Topology};
use taco_routing::TableKind;
use taco_workload::{FaultPlan, FlowTrace, Workload};

use crate::arch::ArchConfig;
use crate::cache::EvalCache;
use crate::evaluate::{cycles_per_datagram, evaluate_request, EvalReport};
use crate::observer::{PointRecord, Silent, SweepObserver, SweepSummary};
use crate::pool;
use crate::rate::LineRate;
use crate::request::EvalRequest;

/// Designer-imposed physical constraints.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Constraints {
    /// Maximum processor power, watts (the external CAM is budgeted
    /// separately, as in the paper).
    pub max_power_w: f64,
    /// Maximum processor area, mm².
    pub max_area_mm2: f64,
    /// Maximum total datagram drops the attached scenario may record
    /// (ignored when `None` or when the sweep carries no workload) — the
    /// behavioural counterpart of the clock-feasibility check: an
    /// instance that melts under the traffic it was sized for does not
    /// survive the sweep, however cheap its silicon.
    pub max_scenario_drops: Option<u64>,
    /// Maximum faults the attached scenario may leave unrecovered (ignored
    /// when `None` or when the sweep injects no faults) — the resilience
    /// counterpart of the drop bound: an instance too slow to re-converge
    /// inside the fault plan's repair window is disqualified.
    pub max_unrecovered_faults: Option<u64>,
}

impl Default for Constraints {
    /// A 0.18 µm-era embedded budget: 2 W, 50 mm², no drop or fault bound.
    fn default() -> Self {
        Constraints {
            max_power_w: 2.0,
            max_area_mm2: 50.0,
            max_scenario_drops: None,
            max_unrecovered_faults: None,
        }
    }
}

impl Constraints {
    /// Returns `true` if `report` fits the constraints (infeasible clocks
    /// never fit, and scenario drops beyond the bound disqualify).
    pub fn admits(&self, report: &EvalReport) -> bool {
        let physical = match report.estimate.feasible() {
            Some(e) => e.power_w <= self.max_power_w && e.area_mm2 <= self.max_area_mm2,
            None => false,
        };
        if !physical {
            return false;
        }
        if let (Some(max_drops), Some(scenario)) = (self.max_scenario_drops, &report.scenario) {
            if scenario.dropped() > max_drops {
                return false;
            }
        }
        match (
            self.max_unrecovered_faults,
            report.scenario.as_ref().and_then(|s| s.faults.as_ref()),
        ) {
            (Some(max_unrecovered), Some(faults)) => faults.unrecovered <= max_unrecovered,
            _ => true,
        }
    }
}

/// The exploration grid.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepSpec {
    /// Bus counts to try.
    pub buses: Vec<u8>,
    /// Replication factors for the replicable units (CNT/CMP/M together).
    pub replication: Vec<u8>,
    /// Table organisations to try.
    pub kinds: Vec<TableKind>,
    /// Routing-table size.
    pub entries: usize,
    /// Behavioural scenario every grid point replays (rankable via
    /// [`Constraints::max_scenario_drops`]); `None` sweeps the
    /// cycle-accurate measurement alone, as the paper does.
    pub workload: Option<Workload>,
    /// Deterministic fault plan every grid point is evaluated under
    /// (rankable via [`Constraints::max_unrecovered_faults`]); `None`
    /// sweeps fault-free.
    pub faults: Option<FaultPlan>,
    /// Explicit flow trace every grid point replays verbatim (attaching it
    /// also sets each point's workload to the trace's descriptor); `None`
    /// replays `workload` as named.  One `Arc` is shared by every point —
    /// the grid never clones the records.
    pub trace: Option<Arc<FlowTrace>>,
    /// Core counts to try (default `[1]`, the paper's single-core space).
    /// For `1` the topology and protocol axes collapse to one default
    /// point — a single core generates no coherence traffic, so sweeping
    /// interconnects under it would evaluate the same machine repeatedly.
    pub cores: Vec<u8>,
    /// Interconnect topologies to try for each multi-core count (default
    /// `[SharedBus]`).
    pub topologies: Vec<Topology>,
    /// Coherence protocols to try for each multi-core count (default
    /// `[Mesi]`).
    pub protocols: Vec<CoherenceProtocol>,
}

impl Default for SweepSpec {
    /// The paper's neighbourhood: 1–4 buses, 1–3× replication, all three
    /// table organisations, 100 entries, no scenario.
    fn default() -> Self {
        SweepSpec {
            buses: vec![1, 2, 3, 4],
            replication: vec![1, 2, 3],
            kinds: TableKind::PAPER_KINDS.to_vec(),
            entries: 100,
            workload: None,
            faults: None,
            trace: None,
            cores: vec![1],
            topologies: vec![Topology::SharedBus],
            protocols: vec![CoherenceProtocol::Mesi],
        }
    }
}

impl SweepSpec {
    /// The [`EvalRequest`] this sweep issues for one grid point.
    fn request(&self, config: &ArchConfig, line_rate: LineRate) -> EvalRequest {
        let mut request = EvalRequest::new(config.clone()).rate(line_rate).entries(self.entries);
        if let Some(workload) = self.workload {
            request = request.workload(workload);
        }
        if let Some(faults) = self.faults {
            request = request.faults(faults);
        }
        if let Some(trace) = &self.trace {
            request = request.flow_trace(Arc::clone(trace));
        }
        request
    }
}

/// The ranked outcome of a sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct Exploration {
    /// Every evaluated instance, in sweep order.
    pub all: Vec<EvalReport>,
    /// Indices (into `all`) of the instances admitted by the constraints,
    /// sorted by ascending processor power (the paper's tie-breaker after
    /// feasibility), then ascending area, then sweep index — a total
    /// order, so equal-power configurations rank reproducibly across runs
    /// and platforms.
    pub admitted: Vec<usize>,
}

impl Exploration {
    /// The best admitted instance, if any survived.
    pub fn best(&self) -> Option<&EvalReport> {
        self.admitted.first().map(|&i| &self.all[i])
    }
}

/// Knobs for a sweep run: parallelism, memoisation and observability.
///
/// The [`Default`] is what the public entry points use — all cores (or
/// `TACO_THREADS`), the process-global [`EvalCache`], no output.
#[derive(Clone, Copy)]
pub struct ExploreOptions<'a> {
    /// Worker threads for the grid fan-out (`1` = serial, inline).
    pub threads: usize,
    /// Evaluation memo to consult and fill; `None` evaluates every point
    /// from scratch.
    pub cache: Option<&'a EvalCache>,
    /// Progress sink (per point + summary).
    pub observer: &'a dyn SweepObserver,
}

impl Default for ExploreOptions<'_> {
    fn default() -> Self {
        ExploreOptions {
            threads: pool::default_threads(),
            cache: Some(EvalCache::global()),
            observer: &Silent,
        }
    }
}

/// The sweep grid of `spec`, in sweep order (kinds × buses × replication
/// × cores × topologies × protocols, innermost last) — the order
/// `Exploration::all` is laid out in.  A single-core count collapses the
/// topology and protocol axes to one default-system point, so the default
/// `cores: [1]` spec generates exactly the pre-multicore grid.
pub fn grid(spec: &SweepSpec) -> Vec<ArchConfig> {
    let mut configs =
        Vec::with_capacity(spec.kinds.len() * spec.buses.len() * spec.replication.len());
    for &kind in &spec.kinds {
        for &buses in &spec.buses {
            for &repl in &spec.replication {
                let base = ArchConfig::with_replication(kind, buses, repl);
                for &cores in &spec.cores {
                    if cores == 1 {
                        configs.push(base.clone());
                        continue;
                    }
                    for &topology in &spec.topologies {
                        for &protocol in &spec.protocols {
                            configs.push(
                                base.clone().with_system(
                                    SystemConfig::with_cores(cores)
                                        .topology(topology)
                                        .protocol(protocol),
                                ),
                            );
                        }
                    }
                }
            }
        }
    }
    configs
}

/// Filters and ranks: admitted indices ordered by (power, area, sweep
/// index) — a deterministic total order.
///
/// Public so a sharding coordinator can merge stripe results from several
/// workers back into sweep order and rank the union exactly as a local
/// [`explore`] would have.
pub fn rank_reports(all: &[EvalReport], constraints: &Constraints) -> Vec<usize> {
    let mut admitted: Vec<usize> =
        (0..all.len()).filter(|&i| constraints.admits(&all[i])).collect();
    // `admits` only passes feasible estimates today, but ranking must not
    // be able to panic if that invariant ever loosens: an infeasible point
    // that slips through sorts last instead of crashing the sweep.
    let sort_key = |i: usize| {
        all[i]
            .estimate
            .feasible()
            .map(|e| (e.power_w, e.area_mm2))
            .unwrap_or((f64::INFINITY, f64::INFINITY))
    };
    admitted.sort_unstable_by(|&a, &b| {
        let (pa, aa) = sort_key(a);
        let (pb, ab) = sort_key(b);
        pa.total_cmp(&pb).then(aa.total_cmp(&ab)).then(a.cmp(&b))
    });
    admitted
}

/// Runs the sweep: evaluate every grid point, filter, rank.
///
/// Points are fanned out across all cores (override with the
/// `TACO_THREADS` environment variable) and answered from the
/// process-global [`EvalCache`] where possible; results land by sweep
/// index, so the outcome is identical to the serial sweep — see
/// [`explore_serial`] and the `parallel_matches_serial` equivalence test.
pub fn explore(spec: &SweepSpec, line_rate: LineRate, constraints: &Constraints) -> Exploration {
    explore_with(spec, line_rate, constraints, &ExploreOptions::default())
}

/// [`explore`] with explicit [`ExploreOptions`].
pub fn explore_with(
    spec: &SweepSpec,
    line_rate: LineRate,
    constraints: &Constraints,
    opts: &ExploreOptions<'_>,
) -> Exploration {
    let started = Instant::now();
    let configs = grid(spec);
    let total = configs.len();
    let sweep_hits = AtomicUsize::new(0);

    let all: Vec<EvalReport> = pool::ordered_map(&configs, opts.threads, |index, config| {
        let point_started = Instant::now();
        let request = spec.request(config, line_rate);
        let (report, cache_hit) = match opts.cache {
            Some(cache) => cache.evaluate_recorded(&request),
            None => (evaluate_request(&request), false),
        };
        if cache_hit {
            sweep_hits.fetch_add(1, Ordering::Relaxed);
        }
        opts.observer.on_point(&PointRecord {
            index,
            total,
            report: &report,
            cache_hit,
            wall: point_started.elapsed(),
            stats_json: report.stats.to_json(),
        });
        report
    });

    let admitted = rank_reports(&all, constraints);
    opts.observer.on_summary(&SweepSummary {
        points: total,
        cache_hits: sweep_hits.load(Ordering::Relaxed),
        admitted: admitted.len(),
        wall_ms: started.elapsed().as_millis(),
    });
    Exploration { all, admitted }
}

/// The reference implementation: one thread, no cache, no observer — the
/// loop the parallel sweep must be byte-identical to.
pub fn explore_serial(
    spec: &SweepSpec,
    line_rate: LineRate,
    constraints: &Constraints,
) -> Exploration {
    let all: Vec<EvalReport> = grid(spec)
        .iter()
        .map(|config| evaluate_request(&spec.request(config, line_rate)))
        .collect();
    let admitted = rank_reports(&all, constraints);
    Exploration { all, admitted }
}

/// The scaling ablation behind Table 1: cycles per datagram as a function
/// of routing-table size, for one configuration.  Returns `(size, cycles)`
/// pairs.
///
/// Sizes are measured in parallel and memoised in the global [`EvalCache`]
/// (the measurement is line-rate independent, so it is keyed on
/// configuration × size only).
pub fn scaling_sweep(config: &ArchConfig, sizes: &[usize]) -> Vec<(usize, f64)> {
    scaling_sweep_with(config, sizes, &ExploreOptions::default())
}

/// [`scaling_sweep`] with explicit threads/cache (the observer is unused:
/// cycles-only points carry no [`EvalReport`] to record).
pub fn scaling_sweep_with(
    config: &ArchConfig,
    sizes: &[usize],
    opts: &ExploreOptions<'_>,
) -> Vec<(usize, f64)> {
    pool::ordered_map(sizes, opts.threads, |_, &n| {
        let cycles = match opts.cache {
            Some(cache) => cache.cycles_recorded(config, n).0,
            None => cycles_per_datagram(config, n),
        };
        (n, cycles)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use taco_isa::MachineConfig;

    fn small_spec() -> SweepSpec {
        SweepSpec {
            buses: vec![1, 3],
            replication: vec![1],
            kinds: vec![TableKind::Cam, TableKind::BalancedTree],
            entries: 8,
            workload: None,
            faults: None,
            trace: None,
            ..SweepSpec::default()
        }
    }

    #[test]
    fn grid_expands_multicore_axes_and_collapses_single_core() {
        let spec = SweepSpec {
            buses: vec![3],
            replication: vec![1],
            kinds: vec![TableKind::Cam],
            cores: vec![1, 2],
            topologies: vec![Topology::SharedBus, Topology::Mesh],
            protocols: vec![CoherenceProtocol::Msi, CoherenceProtocol::Mesi],
            ..SweepSpec::default()
        };
        let configs = grid(&spec);
        // cores=1 collapses the 2×2 interconnect axes to one default
        // point; cores=2 expands them fully: 1 + 4 = 5 grid points.
        assert_eq!(configs.len(), 5);
        assert!(configs[0].system.is_default());
        let labels: Vec<String> = configs[1..].iter().map(|c| c.label()).collect();
        assert_eq!(
            labels,
            [
                "cam 3BUS/1FU 2c-shared-bus-msi",
                "cam 3BUS/1FU 2c-shared-bus-mesi",
                "cam 3BUS/1FU 2c-mesh-msi",
                "cam 3BUS/1FU 2c-mesh-mesi",
            ]
        );
        // The default spec's multicore axes are the identity: exactly the
        // pre-multicore grid, byte for byte.
        let default_grid = grid(&SweepSpec::default());
        assert!(default_grid.iter().all(|c| c.system.is_default()));
        assert_eq!(default_grid.len(), 3 * 4 * 3);
    }

    #[test]
    fn explore_ranks_by_power() {
        let ex = explore(&small_spec(), LineRate::TEN_GBE, &Constraints::default());
        assert_eq!(ex.all.len(), 4);
        assert!(!ex.admitted.is_empty(), "something must fit a 2 W budget");
        let powers: Vec<f64> =
            ex.admitted.iter().map(|&i| ex.all[i].estimate.feasible().unwrap().power_w).collect();
        assert!(powers.windows(2).all(|w| w[0] <= w[1]), "{powers:?}");
        assert!(ex.best().is_some());
    }

    #[test]
    fn impossible_constraints_admit_nothing() {
        let constraints =
            Constraints { max_power_w: 1e-9, max_area_mm2: 1e-9, ..Constraints::default() };
        let ex = explore(&small_spec(), LineRate::TEN_GBE, &constraints);
        assert!(ex.admitted.is_empty());
        assert!(ex.best().is_none());
    }

    #[test]
    fn scenario_sweep_attaches_metrics_and_filters_droppers() {
        use taco_workload::Workload;
        // Heavy enough that every organisation's service budget saturates,
        // so total drops order by measured speed rather than noise.
        let workload =
            Workload::SteadyForward { seed: 7, ticks: 200, packets_per_tick: 500, entries: 64 };
        let spec = SweepSpec {
            buses: vec![3],
            replication: vec![1],
            kinds: vec![TableKind::Sequential, TableKind::Cam],
            entries: 8,
            workload: Some(workload),
            faults: None,
            trace: None,
            ..SweepSpec::default()
        };
        // A generous physical budget so only the drop bound discriminates;
        // 10 GbE would mark the sequential row NA before drops matter.
        let lenient =
            Constraints { max_power_w: 100.0, max_area_mm2: 1000.0, ..Constraints::default() };
        let ex = explore(&spec, LineRate::GIGE, &lenient);
        assert!(ex.all.iter().all(|r| r.scenario.is_some()), "every point replays the scenario");
        assert_eq!(ex.admitted.len(), 2, "without a drop bound both survive");

        // The CAM's constant-time lookup earns it a far larger per-tick
        // service budget, so it drops far less under the same traffic.
        let drops = |i: usize| ex.all[i].scenario.as_ref().unwrap().dropped();
        let seq_drops = drops(0);
        let cam_drops = drops(1);
        assert!(cam_drops < seq_drops, "cam {cam_drops} vs sequential {seq_drops}");

        let strict = Constraints { max_scenario_drops: Some(cam_drops), ..lenient };
        let filtered = explore(&spec, LineRate::GIGE, &strict);
        let survivors: Vec<TableKind> =
            filtered.admitted.iter().map(|&i| filtered.all[i].config.table).collect();
        assert_eq!(survivors, vec![TableKind::Cam], "the drop bound culls the sequential scan");
    }

    #[test]
    fn trace_sweep_replays_the_same_records_at_every_point() {
        use taco_workload::TraceGen;
        let trace = Arc::new(TraceGen::generate(5, 30, 6, 8));
        let spec = SweepSpec {
            buses: vec![3],
            replication: vec![1],
            kinds: vec![TableKind::Cam, TableKind::BalancedTree],
            entries: 8,
            workload: None,
            faults: None,
            trace: Some(Arc::clone(&trace)),
            ..SweepSpec::default()
        };
        let ex = explore(&spec, LineRate::GIGE, &Constraints::default());
        assert_eq!(ex.all.len(), 2);
        for r in &ex.all {
            let sc = r.scenario.as_ref().expect("trace sweep replays at every point");
            assert_eq!(sc.scenario, "trace-replay");
            let flows = sc.flows.as_ref().expect("trace replay reports per-flow stats");
            assert_eq!(flows.packets, sc.offered, "every offered datagram came from the trace");
        }
    }

    #[test]
    fn scaling_sweep_is_monotonic_for_sequential() {
        let config = ArchConfig::new(MachineConfig::one_bus_one_fu(), TableKind::Sequential);
        let points = scaling_sweep(&config, &[8, 32]);
        assert_eq!(points.len(), 2);
        assert!(points[1].1 > points[0].1 * 2.0, "{points:?}");
    }

    #[test]
    fn scaling_sweep_is_flat_for_cam() {
        let config = ArchConfig::new(MachineConfig::three_bus_one_fu(), TableKind::Cam);
        let points = scaling_sweep(&config, &[8, 64]);
        let ratio = points[1].1 / points[0].1;
        assert!(ratio < 1.2, "cam cost must not scale with table size: {points:?}");
    }

    #[test]
    fn constraints_reject_infeasible() {
        let report = EvalRequest::new(ArchConfig::one_bus_one_fu(TableKind::Sequential))
            .rate(LineRate::TEN_GBE_MIN_FRAMES)
            .entries(64)
            .run();
        assert!(!report.is_feasible());
        assert!(!Constraints::default().admits(&report));
    }
}
