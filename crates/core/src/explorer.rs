//! Automated design-space exploration.
//!
//! "Our future work includes … a tool that automates the design space
//! exploration phase, which based on some heuristics will suggest good
//! solutions, with respect to performance requirements and physical
//! constraints."  This module implements that tool: sweep an architecture
//! grid, evaluate every instance with the same simulate-then-estimate
//! pipeline, filter by the designer's constraints, and rank what survives.

use taco_routing::TableKind;

use crate::arch::ArchConfig;
use crate::evaluate::{cycles_per_datagram, evaluate, EvalReport};
use crate::rate::LineRate;

/// Designer-imposed physical constraints.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Constraints {
    /// Maximum processor power, watts (the external CAM is budgeted
    /// separately, as in the paper).
    pub max_power_w: f64,
    /// Maximum processor area, mm².
    pub max_area_mm2: f64,
}

impl Default for Constraints {
    /// A 0.18 µm-era embedded budget: 2 W, 50 mm².
    fn default() -> Self {
        Constraints { max_power_w: 2.0, max_area_mm2: 50.0 }
    }
}

impl Constraints {
    /// Returns `true` if `report` fits the constraints (infeasible clocks
    /// never fit).
    pub fn admits(&self, report: &EvalReport) -> bool {
        match report.estimate.feasible() {
            Some(e) => e.power_w <= self.max_power_w && e.area_mm2 <= self.max_area_mm2,
            None => false,
        }
    }
}

/// The exploration grid.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepSpec {
    /// Bus counts to try.
    pub buses: Vec<u8>,
    /// Replication factors for the replicable units (CNT/CMP/M together).
    pub replication: Vec<u8>,
    /// Table organisations to try.
    pub kinds: Vec<TableKind>,
    /// Routing-table size.
    pub entries: usize,
}

impl Default for SweepSpec {
    /// The paper's neighbourhood: 1–4 buses, 1–3× replication, all three
    /// table organisations, 100 entries.
    fn default() -> Self {
        SweepSpec {
            buses: vec![1, 2, 3, 4],
            replication: vec![1, 2, 3],
            kinds: TableKind::PAPER_KINDS.to_vec(),
            entries: 100,
        }
    }
}

/// The ranked outcome of a sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct Exploration {
    /// Every evaluated instance, in sweep order.
    pub all: Vec<EvalReport>,
    /// Indices (into `all`) of the instances admitted by the constraints,
    /// sorted by ascending processor power (the paper's tie-breaker after
    /// feasibility).
    pub admitted: Vec<usize>,
}

impl Exploration {
    /// The best admitted instance, if any survived.
    pub fn best(&self) -> Option<&EvalReport> {
        self.admitted.first().map(|&i| &self.all[i])
    }
}

/// Runs the sweep: evaluate every grid point, filter, rank.
pub fn explore(spec: &SweepSpec, line_rate: LineRate, constraints: &Constraints) -> Exploration {
    let mut all = Vec::new();
    for &kind in &spec.kinds {
        for &buses in &spec.buses {
            for &repl in &spec.replication {
                let config = ArchConfig::with_replication(kind, buses, repl);
                all.push(evaluate(&config, line_rate, spec.entries));
            }
        }
    }
    let mut admitted: Vec<usize> =
        (0..all.len()).filter(|&i| constraints.admits(&all[i])).collect();
    admitted.sort_by(|&a, &b| {
        let pa = all[a].estimate.feasible().expect("admitted implies feasible").power_w;
        let pb = all[b].estimate.feasible().expect("admitted implies feasible").power_w;
        pa.partial_cmp(&pb).expect("power is finite")
    });
    Exploration { all, admitted }
}

/// The scaling ablation behind Table 1: cycles per datagram as a function
/// of routing-table size, for one configuration.  Returns `(size, cycles)`
/// pairs.
pub fn scaling_sweep(config: &ArchConfig, sizes: &[usize]) -> Vec<(usize, f64)> {
    sizes.iter().map(|&n| (n, cycles_per_datagram(config, n))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use taco_isa::MachineConfig;

    fn small_spec() -> SweepSpec {
        SweepSpec {
            buses: vec![1, 3],
            replication: vec![1],
            kinds: vec![TableKind::Cam, TableKind::BalancedTree],
            entries: 8,
        }
    }

    #[test]
    fn explore_ranks_by_power() {
        let ex = explore(&small_spec(), LineRate::TEN_GBE, &Constraints::default());
        assert_eq!(ex.all.len(), 4);
        assert!(!ex.admitted.is_empty(), "something must fit a 2 W budget");
        let powers: Vec<f64> = ex
            .admitted
            .iter()
            .map(|&i| ex.all[i].estimate.feasible().unwrap().power_w)
            .collect();
        assert!(powers.windows(2).all(|w| w[0] <= w[1]), "{powers:?}");
        assert!(ex.best().is_some());
    }

    #[test]
    fn impossible_constraints_admit_nothing() {
        let constraints = Constraints { max_power_w: 1e-9, max_area_mm2: 1e-9 };
        let ex = explore(&small_spec(), LineRate::TEN_GBE, &constraints);
        assert!(ex.admitted.is_empty());
        assert!(ex.best().is_none());
    }

    #[test]
    fn scaling_sweep_is_monotonic_for_sequential() {
        let config = ArchConfig::new(MachineConfig::one_bus_one_fu(), TableKind::Sequential);
        let points = scaling_sweep(&config, &[8, 32]);
        assert_eq!(points.len(), 2);
        assert!(points[1].1 > points[0].1 * 2.0, "{points:?}");
    }

    #[test]
    fn scaling_sweep_is_flat_for_cam() {
        let config = ArchConfig::new(MachineConfig::three_bus_one_fu(), TableKind::Cam);
        let points = scaling_sweep(&config, &[8, 64]);
        let ratio = points[1].1 / points[0].1;
        assert!(ratio < 1.2, "cam cost must not scale with table size: {points:?}");
    }

    #[test]
    fn constraints_reject_infeasible() {
        let report = evaluate(
            &ArchConfig::one_bus_one_fu(TableKind::Sequential),
            LineRate::TEN_GBE_MIN_FRAMES,
            64,
        );
        assert!(!report.is_feasible());
        assert!(!Constraints::default().admits(&report));
    }
}
