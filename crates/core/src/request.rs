//! The evaluation request — the single front door to the pipeline.
//!
//! Early versions of this crate exposed a positional
//! `evaluate(&config, line_rate, entries)` function; every new knob
//! (packet size, scenario workloads) threatened another positional
//! parameter at every call site.  [`EvalRequest`] replaces that with a
//! builder: name the architecture instance, override what differs from
//! the paper's defaults, and [`run`](EvalRequest::run) it.
//!
//! # Examples
//!
//! ```
//! use taco_core::{ArchConfig, EvalRequest, LineRate, RoutingTableKind, Workload};
//!
//! // The paper's defaults (10 GbE, 100 entries) need no overrides.
//! let cam = EvalRequest::new(ArchConfig::three_bus_one_fu(RoutingTableKind::Cam)).run();
//! assert!(cam.is_feasible());
//!
//! // A custom point: gigabit line rate, small table, with a behavioural
//! // burst scenario replayed on the instance.
//! let report = EvalRequest::new(ArchConfig::three_bus_one_fu(RoutingTableKind::Cam))
//!     .rate(LineRate::GIGE)
//!     .entries(16)
//!     .workload(Workload::burst_overload())
//!     .run();
//! assert!(report.scenario.is_some());
//! ```

use std::path::PathBuf;
use std::sync::Arc;

use taco_isa::{CoherenceProtocol, InterconnectConfig, Topology, MAX_CORES};
use taco_sim::StepMode;
use taco_workload::{FaultPlan, FlowTrace, Workload};

use crate::arch::ArchConfig;
use crate::evaluate::{evaluate_request, EvalReport};
use crate::rate::LineRate;

/// Everything one architecture evaluation needs, assembled by a builder.
///
/// Defaults mirror the paper's headline cell: [`LineRate::TEN_GBE`] and a
/// 100-entry routing table ("a maximum size of 100 entries"), with no
/// behavioural workload attached.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalRequest {
    /// The architecture instance to evaluate.
    pub config: ArchConfig,
    /// The line-rate target the required clock is computed against.
    pub line_rate: LineRate,
    /// Routing-table size used for the measurement.
    pub entries: usize,
    /// Optional behavioural scenario to replay on the instance; its
    /// metrics land in [`EvalReport::scenario`] and feed the explorer's
    /// drop constraint.
    pub workload: Option<Workload>,
    /// Optional deterministic fault plan: injects malformed datagrams,
    /// hop-limit storms, table corruption, link flaps (scenario replay) and
    /// transient stalls (cycle-accurate measurement).  Part of the cache
    /// key — a faulted evaluation is a different result.
    pub faults: Option<FaultPlan>,
    /// Optional path a Chrome-trace JSON of the measurement run is written
    /// to (see [`taco_sim::ChromeTracer`]).  Deliberately **not** part of
    /// the evaluation cache key: the trace is a side effect, not a result,
    /// so a cache hit skips it — trace through an uncached
    /// [`run`](EvalRequest::run) when the file matters.
    pub trace: Option<PathBuf>,
    /// Optional explicit flow trace to replay.  When present (and the
    /// workload is a trace replay), the scenario replays these records
    /// verbatim instead of regenerating from the descriptor; the trace
    /// digest **is** part of the cache key.  `Arc` keeps the request cheap
    /// to clone even for large traces.
    pub flow_trace: Option<Arc<FlowTrace>>,
    /// Which simulator step loop the measurement uses (see
    /// [`taco_sim::StepMode`]).  Both loops produce identical metrics —
    /// the interpretive path exists as the executable reference for
    /// debugging — so only [`StepMode::Compiled`] results are memoized in
    /// the evaluation cache.
    pub step_mode: StepMode,
}

impl EvalRequest {
    /// The paper-default table size (its "maximum size of 100 entries").
    pub const DEFAULT_ENTRIES: usize = 100;

    /// A request for `config` with the paper's defaults: 10 GbE,
    /// [`Self::DEFAULT_ENTRIES`] routing-table entries, no workload.
    pub fn new(config: ArchConfig) -> Self {
        EvalRequest {
            config,
            line_rate: LineRate::TEN_GBE,
            entries: Self::DEFAULT_ENTRIES,
            workload: None,
            faults: None,
            trace: None,
            flow_trace: None,
            step_mode: StepMode::default(),
        }
    }

    /// Overrides the line-rate target.
    pub fn rate(mut self, line_rate: LineRate) -> Self {
        self.line_rate = line_rate;
        self
    }

    /// Overrides the routing-table size.
    pub fn entries(mut self, entries: usize) -> Self {
        self.entries = entries;
        self
    }

    /// Attaches a behavioural workload scenario: after the cycle-accurate
    /// measurement, the scenario is replayed on a behavioural router whose
    /// per-tick service budget is derived from the measured
    /// cycles-per-datagram at the technology-ceiling clock.
    pub fn workload(mut self, workload: Workload) -> Self {
        self.workload = Some(workload);
        self
    }

    /// Attaches a deterministic fault plan (see
    /// [`FaultPlan`](taco_workload::FaultPlan)).  Composes with any
    /// workload: the scenario replay injects the plan's traffic and
    /// control-plane faults, and the cycle-accurate measurement suffers its
    /// transient stalls.
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Requests a Chrome-trace capture of the measurement run (the final
    /// fixed-point iteration), written to `path` as `about://tracing` /
    /// Perfetto-loadable JSON.  IO failures surface as a structured
    /// [`EvalReport::trace_error`], never a panic — a missing trace must
    /// not change the evaluation's numbers.
    pub fn trace(mut self, path: impl Into<PathBuf>) -> Self {
        self.trace = Some(path.into());
        self
    }

    /// Attaches an explicit flow trace and sets the workload to its
    /// descriptor, so the replay uses these records verbatim while the
    /// report still names the trace's parameters.
    pub fn flow_trace(mut self, trace: Arc<FlowTrace>) -> Self {
        self.workload = Some(trace.descriptor());
        self.flow_trace = Some(trace);
        self
    }

    /// Scales the evaluated system to `cores` cores (private coherent
    /// table caches over the configured interconnect); `1` restores the
    /// single-core default, whose evaluation is byte-identical to the
    /// pre-multicore path.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is zero or above [`MAX_CORES`] — wire callers are
    /// range-checked before this builder runs.
    pub fn cores(mut self, cores: u8) -> Self {
        assert!((1..=MAX_CORES).contains(&cores), "cores must be 1..={MAX_CORES}");
        self.config.system.cores = cores;
        self
    }

    /// Overrides the on-chip interconnect: `topology` plus the cycles per
    /// bus transaction ([`Topology::SharedBus`]) or per hop
    /// ([`Topology::Mesh`]).
    pub fn interconnect(mut self, topology: Topology, latency: u8) -> Self {
        self.config.system.interconnect = InterconnectConfig { topology, latency };
        self
    }

    /// Overrides the cache-coherence protocol run by the per-core table
    /// caches.
    pub fn coherence(mut self, protocol: CoherenceProtocol) -> Self {
        self.config.system.protocol = protocol;
        self
    }

    /// Overrides the simulator step loop ([`StepMode::Interpretive`] forces
    /// the reference path; useful when bisecting a suspected compiled-path
    /// divergence).
    pub fn step_mode(mut self, mode: StepMode) -> Self {
        self.step_mode = mode;
        self
    }

    /// Runs the full co-analysis pipeline for this request.
    pub fn run(&self) -> EvalReport {
        evaluate_request(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taco_routing::TableKind;

    #[test]
    fn builder_defaults_match_the_paper() {
        let r = EvalRequest::new(ArchConfig::three_bus_one_fu(TableKind::Cam));
        assert_eq!(r.line_rate, LineRate::TEN_GBE);
        assert_eq!(r.entries, 100);
        assert!(r.workload.is_none());
        assert!(r.faults.is_none());
        assert!(r.trace.is_none());
        assert!(r.flow_trace.is_none());
        assert_eq!(r.step_mode, StepMode::Compiled);
    }

    #[test]
    fn trace_writes_a_chrome_timeline() {
        let path = std::env::temp_dir().join("taco-request-trace-test.json");
        let _ = std::fs::remove_file(&path);
        let traced = EvalRequest::new(ArchConfig::three_bus_one_fu(TableKind::Cam))
            .entries(8)
            .trace(&path)
            .run();
        let plain = EvalRequest::new(ArchConfig::three_bus_one_fu(TableKind::Cam)).entries(8).run();
        // The trace must be a pure side effect: the report is unchanged.
        assert_eq!(traced, plain);
        let json = std::fs::read_to_string(&path).expect("trace file written");
        assert!(json.starts_with("{\"traceEvents\":["), "{json}");
        assert!(json.contains("\"thread_name\""), "{json}");
        assert!(json.contains("\"ph\":\"X\""), "{json}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn builder_overrides_stick() {
        let r = EvalRequest::new(ArchConfig::one_bus_one_fu(TableKind::Sequential))
            .rate(LineRate::GIGE)
            .entries(7)
            .workload(Workload::steady_forward());
        assert_eq!(r.line_rate, LineRate::GIGE);
        assert_eq!(r.entries, 7);
        assert_eq!(r.workload, Some(Workload::steady_forward()));
    }

    #[test]
    fn multicore_builders_shape_the_system() {
        let r = EvalRequest::new(ArchConfig::three_bus_one_fu(TableKind::Cam))
            .cores(4)
            .interconnect(Topology::Mesh, 3)
            .coherence(CoherenceProtocol::Msi);
        assert_eq!(r.config.system.cores, 4);
        assert_eq!(r.config.system.interconnect.topology, Topology::Mesh);
        assert_eq!(r.config.system.interconnect.latency, 3);
        assert_eq!(r.config.system.protocol, CoherenceProtocol::Msi);
        assert_eq!(r.config.label(), "cam 3BUS/1FU 4c-mesh-msi");
        // `.cores(1)` with otherwise-default system fields restores the
        // byte-identical single-core evaluation path.
        let single = EvalRequest::new(ArchConfig::three_bus_one_fu(TableKind::Cam)).cores(1);
        assert!(single.config.system.is_default());
    }

    #[test]
    #[should_panic(expected = "cores must be")]
    fn out_of_range_cores_panic_in_the_builder() {
        let _ = EvalRequest::new(ArchConfig::three_bus_one_fu(TableKind::Cam)).cores(0);
    }

    #[test]
    fn run_agrees_with_the_pipeline() {
        let request = EvalRequest::new(ArchConfig::three_bus_one_fu(TableKind::Cam)).entries(8);
        let report = request.run();
        assert_eq!(report.table_entries, 8);
        assert!(report.is_feasible());
        assert!(report.scenario.is_none());
        assert!(report.sim_error.is_none());
    }
}
