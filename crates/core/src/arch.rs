//! Architecture instances under evaluation: a machine configuration paired
//! with a routing-table implementation.

use std::fmt;

use taco_isa::{FuKind, MachineConfig, SystemConfig};
use taco_routing::TableKind;

/// Re-export of the routing-table organisation enum under the name the
/// evaluation API uses.
pub type RoutingTableKind = TableKind;

/// One row-by-column cell of the paper's design space: *how the routing
/// table is implemented* × *how much interconnect and datapath the
/// processor has*.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ArchConfig {
    /// The TTA resources of one core.
    pub machine: MachineConfig,
    /// The routing-table organisation.
    pub table: RoutingTableKind,
    /// The system built from the cores: count, private table caches,
    /// interconnect and coherence protocol.  Defaults to a single core,
    /// which evaluates byte-identically to the pre-multicore path.
    pub system: SystemConfig,
}

impl ArchConfig {
    /// Creates a single-core architecture instance.
    pub fn new(machine: MachineConfig, table: RoutingTableKind) -> Self {
        ArchConfig { machine, table, system: SystemConfig::default() }
    }

    /// The paper's `1BUS/1FU` column for the given table organisation.
    pub fn one_bus_one_fu(table: RoutingTableKind) -> Self {
        Self::new(MachineConfig::one_bus_one_fu(), table)
    }

    /// The paper's `3BUS/1FU` column.
    pub fn three_bus_one_fu(table: RoutingTableKind) -> Self {
        Self::new(MachineConfig::three_bus_one_fu(), table)
    }

    /// The paper's `3bus/3CNT,3CMP,3M` column.
    pub fn three_bus_three_fu(table: RoutingTableKind) -> Self {
        Self::new(MachineConfig::three_bus_three_fu(), table)
    }

    /// All twelve cells of the extended Table 1, in the paper's row-major
    /// order: the paper's nine (sequential, balanced tree, CAM × the three
    /// configurations) plus a path-compressed PATRICIA row — the
    /// organisation that keeps both the probe count and the memory
    /// footprint bounded at internet-size tables.
    pub fn table1_cells() -> Vec<ArchConfig> {
        let mut cells = Vec::with_capacity(12);
        for kind in
            [TableKind::Sequential, TableKind::BalancedTree, TableKind::Cam, TableKind::Patricia]
        {
            cells.push(Self::one_bus_one_fu(kind));
            cells.push(Self::three_bus_one_fu(kind));
            cells.push(Self::three_bus_three_fu(kind));
        }
        cells
    }

    /// A generic configuration: `buses` buses and `replication` instances
    /// of each replicable datapath unit (Counter, Comparator, Matcher).
    ///
    /// # Panics
    ///
    /// Panics if `buses` or `replication` is zero.
    pub fn with_replication(table: RoutingTableKind, buses: u8, replication: u8) -> Self {
        let mut machine = MachineConfig::new(buses);
        if replication > 1 {
            for kind in FuKind::REPLICABLE {
                machine = machine.with_fu_count(kind, replication);
            }
        }
        Self::new(machine, table)
    }

    /// Returns a copy with an `n`-ported data memory (replicated MMU) — the
    /// ablation probing whether the paper's FU-scaling gains assumed memory
    /// bandwidth beyond one word per cycle.
    ///
    /// # Panics
    ///
    /// Panics if `ports` is zero.
    pub fn with_memory_ports(mut self, ports: u8) -> Self {
        self.machine = self.machine.with_fu_count(FuKind::Mmu, ports);
        self
    }

    /// Returns a copy with the given multi-core [`SystemConfig`].
    pub fn with_system(mut self, system: SystemConfig) -> Self {
        self.system = system;
        self
    }

    /// A Table 1 style row label, e.g. `cam 3BUS/1FU`; multi-core systems
    /// append a suffix such as `4c-mesh-mesi`.
    pub fn label(&self) -> String {
        format!("{} {}{}", self.table, self.machine.label(), self.system.label_suffix())
    }
}

impl fmt::Display for ArchConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_twelve_cells_in_paper_order() {
        let cells = ArchConfig::table1_cells();
        assert_eq!(cells.len(), 12);
        assert_eq!(cells[0].table, TableKind::Sequential);
        assert_eq!(cells[0].machine.buses(), 1);
        assert_eq!(cells[8].table, TableKind::Cam);
        assert_eq!(cells[8].machine.fu_count(FuKind::Matcher), 3);
        // The PATRICIA column rides below the paper's nine cells, so the
        // original rows keep their indices.
        assert_eq!(cells[9].table, TableKind::Patricia);
        assert_eq!(cells[11].machine.fu_count(FuKind::Counter), 3);
    }

    #[test]
    fn replication_builder() {
        let a = ArchConfig::with_replication(TableKind::Sequential, 4, 2);
        assert_eq!(a.machine.buses(), 4);
        assert_eq!(a.machine.fu_count(FuKind::Counter), 2);
        assert_eq!(a.machine.fu_count(FuKind::Checksum), 1);
        let b = ArchConfig::with_replication(TableKind::Cam, 2, 1);
        assert_eq!(b.machine.fu_count(FuKind::Matcher), 1);
    }

    #[test]
    fn labels_follow_the_paper() {
        assert_eq!(
            ArchConfig::three_bus_three_fu(TableKind::BalancedTree).label(),
            "balanced-tree 3bus/3CNT,3CMP,3M"
        );
        assert_eq!(ArchConfig::one_bus_one_fu(TableKind::Cam).to_string(), "cam 1BUS/1FU");
    }

    #[test]
    fn multicore_labels_append_the_system_suffix() {
        let quad = ArchConfig::three_bus_one_fu(TableKind::Cam)
            .with_system(SystemConfig::with_cores(4).topology(taco_isa::Topology::Mesh));
        assert_eq!(quad.label(), "cam 3BUS/1FU 4c-mesh-mesi");
        // Single-core labels are untouched, whatever the other system
        // fields say only when they stay default.
        assert_eq!(ArchConfig::three_bus_one_fu(TableKind::Cam).label(), "cam 3BUS/1FU");
    }
}
