//! A `std`-only scoped worker pool with deterministic result ordering.
//!
//! The design-space explorer fans independent grid points out across
//! cores.  Two properties matter more than raw speed:
//!
//! * **no external dependencies** — the workspace must build in an
//!   offline environment, so this is `std::thread::scope` plus two
//!   atomics, not rayon;
//! * **deterministic output order** — results land by *input index*, not
//!   completion order, so a parallel sweep is byte-identical to the
//!   serial one and `Exploration::all` keeps the sweep-order contract.
//!
//! Work is distributed dynamically (an atomic cursor), which keeps cores
//! busy even though grid points vary wildly in cost (a 1-bus sequential
//! scan simulates ~50× longer than a 3-bus CAM lookup).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Environment variable overriding the worker count.  Must be a positive
/// integer when set; anything else (including `0`) aborts at startup —
/// a user who typed `TACO_THREADS=1O` wants an error, not a silent sweep
/// at some other parallelism.
pub const THREADS_ENV: &str = "TACO_THREADS";

/// The worker count used by the high-level sweep entry points: the
/// `TACO_THREADS` environment variable if set to a positive integer,
/// otherwise [`std::thread::available_parallelism`].
///
/// # Panics
///
/// Panics with an explanatory message when `TACO_THREADS` is set but is
/// not a positive integer.
pub fn default_threads() -> usize {
    resolve_threads(std::env::var(THREADS_ENV).ok().as_deref())
}

/// [`default_threads`] with the environment read factored out; panics on
/// invalid values, naming the variable.
fn resolve_threads(var: Option<&str>) -> usize {
    match threads_from(var) {
        Ok(n) => n,
        Err(why) => panic!("{THREADS_ENV}: {why}"),
    }
}

/// Pure core of [`default_threads`], separated for testing.  `None` and
/// whitespace-only values mean "not configured" and autodetect; anything
/// else must parse as an integer `>= 1`.
fn threads_from(var: Option<&str>) -> Result<usize, String> {
    let Some(raw) = var.map(str::trim).filter(|v| !v.is_empty()) else {
        return Ok(std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1));
    };
    match raw.parse::<usize>() {
        Ok(0) => Err(format!("must be a positive worker count, got {raw:?}")),
        Ok(n) => Ok(n),
        Err(_) => Err(format!(
            "must be a positive worker count, got {raw:?} (unset it to autodetect parallelism)"
        )),
    }
}

/// Applies `f` to every item on up to `threads` worker threads and returns
/// the results **in input order**.
///
/// `f` receives `(index, &item)`.  With `threads <= 1` (or fewer than two
/// items) the items are processed inline on the caller's thread — the
/// degenerate case is exactly the serial loop, with no thread spawned.
///
/// Panics in `f` propagate to the caller once all workers have joined
/// (the guarantee `std::thread::scope` provides).
pub fn ordered_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let threads = threads.max(1).min(items.len());
    if threads <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }

    let cursor = AtomicUsize::new(0);
    let collected: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(items.len()));
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                let mut local: Vec<(usize, R)> = Vec::new();
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() {
                        break;
                    }
                    local.push((i, f(i, &items[i])));
                }
                collected.lock().expect("no worker panics while holding").append(&mut local);
            });
        }
    });

    let mut tagged = collected.into_inner().expect("workers joined");
    debug_assert_eq!(tagged.len(), items.len());
    tagged.sort_unstable_by_key(|&(i, _)| i);
    tagged.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_land_in_input_order() {
        let items: Vec<usize> = (0..97).collect();
        // Uneven per-item cost: make late items finish first.
        let out = ordered_map(&items, 8, |i, &x| {
            if i % 7 == 0 {
                std::thread::yield_now();
            }
            x * 2
        });
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_equals_serial() {
        let items: Vec<u64> = (0..64).collect();
        let serial = ordered_map(&items, 1, |i, &x| x.wrapping_mul(i as u64 + 1));
        let parallel = ordered_map(&items, 6, |i, &x| x.wrapping_mul(i as u64 + 1));
        assert_eq!(serial, parallel);
    }

    #[test]
    fn degenerate_inputs() {
        let empty: Vec<u8> = vec![];
        assert!(ordered_map(&empty, 4, |_, &x| x).is_empty());
        assert_eq!(ordered_map(&[42], 4, |_, &x| x), vec![42]);
        assert_eq!(ordered_map(&[1, 2, 3], 0, |_, &x| x), vec![1, 2, 3]);
    }

    #[test]
    fn more_threads_than_items() {
        let out = ordered_map(&[10, 20], 16, |i, &x| x + i);
        assert_eq!(out, vec![10, 21]);
    }

    #[test]
    fn env_override_parsing() {
        assert_eq!(threads_from(Some("3")), Ok(3));
        assert_eq!(threads_from(Some(" 12 ")), Ok(12));
        // Unset (or set-but-blank) autodetects.
        assert!(threads_from(None).unwrap() >= 1);
        assert!(threads_from(Some("  ")).unwrap() >= 1);
        // Anything else set is a configuration error, loudly: a silent
        // fallback used to turn a typo into a full-width parallel sweep.
        for bad in ["0", "not-a-number", "-2", "1O", "3.5", "+"] {
            let err = threads_from(Some(bad)).unwrap_err();
            assert!(err.contains("positive worker count"), "{bad}: {err}");
            assert!(err.contains(&format!("{:?}", bad.trim())), "{bad}: {err}");
        }
    }

    #[test]
    fn valid_override_resolves() {
        assert_eq!(resolve_threads(Some("4")), 4);
        assert!(resolve_threads(None) >= 1);
    }

    #[test]
    #[should_panic(expected = "TACO_THREADS: must be a positive worker count, got \"abc\"")]
    fn invalid_override_aborts_loudly() {
        resolve_threads(Some("abc"));
    }

    #[test]
    #[should_panic(expected = "TACO_THREADS: must be a positive worker count, got \"0\"")]
    fn zero_override_aborts_loudly() {
        resolve_threads(Some("0"));
    }

    #[test]
    fn captures_state_by_reference() {
        let table: Vec<u64> = (0..32).map(|i| i * i).collect();
        let out = ordered_map(&table, 4, |i, _| table[i] + 1);
        assert_eq!(out[31], 31 * 31 + 1);
    }
}
