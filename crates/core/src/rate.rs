//! Line-rate arithmetic.
//!
//! Table 1's "required speed" column is `cycles-per-datagram ×
//! datagrams-per-second`; this module supplies the second factor.  The
//! paper states the 10 Gbps target but not its traffic assumption, so the
//! packet size is an explicit, documented parameter — the *ratios* between
//! configurations are independent of it.

use std::fmt;

/// A line-rate target: bit rate plus the per-packet wire footprint used to
/// convert it into a packet rate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LineRate {
    /// Offered load in bits per second.
    pub bits_per_second: f64,
    /// Average bytes one packet occupies on the wire, including link-layer
    /// framing overhead.
    pub packet_bytes: u32,
}

impl LineRate {
    /// The paper's target: 10 Gbps Ethernet, assuming ~1 KiB average
    /// packets (1000 B IPv6 datagram + Ethernet framing).  The paper does
    /// not state a packet size; see `EXPERIMENTS.md` for the sensitivity
    /// discussion.
    pub const TEN_GBE: LineRate = LineRate { bits_per_second: 10e9, packet_bytes: 1040 };

    /// 1 Gbps Ethernet with the same packet assumption.
    pub const GIGE: LineRate = LineRate { bits_per_second: 1e9, packet_bytes: 1040 };

    /// 10 GbE at minimum-size frames (84 bytes on the wire = 14.88 Mpps) —
    /// the adversarial worst case.
    pub const TEN_GBE_MIN_FRAMES: LineRate = LineRate { bits_per_second: 10e9, packet_bytes: 84 };

    /// Creates a custom line rate.
    ///
    /// # Panics
    ///
    /// Panics if `packet_bytes` is zero, or if `bits_per_second` is not a
    /// positive *normal* float — `NaN`, infinities and subnormals all pass
    /// a bare `> 0.0` test (`NaN` by making it false, the others by making
    /// it true) and would poison every downstream frequency figure.
    pub fn new(bits_per_second: f64, packet_bytes: u32) -> Self {
        assert!(
            bits_per_second.is_normal() && bits_per_second > 0.0,
            "rate must be positive and finite"
        );
        assert!(packet_bytes > 0, "packet size must be positive");
        LineRate { bits_per_second, packet_bytes }
    }

    /// Packets per second at this rate.
    pub fn packets_per_second(&self) -> f64 {
        self.bits_per_second / (8.0 * f64::from(self.packet_bytes))
    }

    /// The clock frequency needed to spend `cycles_per_packet` on every
    /// packet at line rate.
    pub fn required_frequency_hz(&self, cycles_per_packet: f64) -> f64 {
        cycles_per_packet * self.packets_per_second()
    }
}

impl fmt::Display for LineRate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.1} Gbps @ {} B/pkt ({:.2} Mpps)",
            self.bits_per_second / 1e9,
            self.packet_bytes,
            self.packets_per_second() / 1e6
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ten_gbe_packet_rate() {
        let pps = LineRate::TEN_GBE.packets_per_second();
        assert!((pps - 1.202e6).abs() < 1e4, "{pps}");
        let min = LineRate::TEN_GBE_MIN_FRAMES.packets_per_second();
        assert!((min - 14.88e6).abs() < 0.01e6, "{min}");
    }

    #[test]
    fn required_frequency_scales_linearly() {
        let r = LineRate::TEN_GBE;
        let f1 = r.required_frequency_hz(100.0);
        let f2 = r.required_frequency_hz(200.0);
        assert!((f2 / f1 - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_rate_rejected() {
        let _ = LineRate::new(0.0, 100);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn infinite_rate_rejected() {
        // Regression: `INFINITY > 0.0` is true, so the old check admitted
        // an infinite rate and every derived frequency became infinite.
        let _ = LineRate::new(f64::INFINITY, 100);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn nan_rate_rejected() {
        let _ = LineRate::new(f64::NAN, 100);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn subnormal_rate_rejected() {
        // Subnormals are > 0.0 but carry almost no precision; reject them
        // with the rest of the degenerate floats.
        let _ = LineRate::new(f64::MIN_POSITIVE / 2.0, 100);
    }

    #[test]
    fn ordinary_rates_still_accepted() {
        let r = LineRate::new(10e9, 1040);
        assert_eq!(r, LineRate::TEN_GBE);
    }

    #[test]
    fn display_mentions_mpps() {
        assert!(LineRate::TEN_GBE.to_string().contains("Mpps"));
    }
}
