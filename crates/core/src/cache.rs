//! Memoisation of architecture evaluations.
//!
//! One [`EvalRequest::run`] call runs a cycle-accurate simulation, so
//! sweep throughput — not single-run accuracy — is what limits
//! design-space exploration at scale.  Every evaluation is a pure
//! function of its [`EvalRequest`]: the benchmark routes, the measurement
//! traffic, the simulator and the scenario engine are all deterministic.
//! That makes the result safely memoisable, and repeated points across
//! [`explore()`](crate::explorer::explore),
//! [`scaling_sweep()`](crate::explorer::scaling_sweep) and the bench
//! binaries evaluate exactly once per process.
//!
//! The cache is a mutexed map, not a lock-free structure: the lock is held
//! only for lookups and inserts (microseconds), never across a simulation
//! (milliseconds to seconds), so contention is negligible next to the work
//! being saved.  Two threads racing on the *same* missing key may both
//! simulate it — the loser's insert simply overwrites with an identical
//! value, which is benign and keeps the hot path lock-free during compute.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

use taco_workload::{FaultPlan, Workload};

use crate::arch::ArchConfig;
use crate::evaluate::{cycles_per_datagram, evaluate_request, EvalReport};
use crate::request::EvalRequest;

/// Full evaluation key: the architecture instance, the routing-table size,
/// the line-rate target, the attached workload and the fault plan, if any.
/// The rate's `f64` component is keyed by bit pattern — line rates are
/// constructed from literals, not arithmetic, so bitwise equality is the
/// right notion here; workloads and fault plans are all-integer by design,
/// so they hash directly.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct EvalKey {
    config: ArchConfig,
    entries: usize,
    rate_bits: u64,
    packet_bytes: u32,
    workload: Option<Workload>,
    faults: Option<FaultPlan>,
}

impl EvalKey {
    fn new(request: &EvalRequest) -> Self {
        EvalKey {
            config: request.config.clone(),
            entries: request.entries,
            rate_bits: request.line_rate.bits_per_second.to_bits(),
            packet_bytes: request.line_rate.packet_bytes,
            workload: request.workload,
            faults: request.faults,
        }
    }
}

/// A keyed memo of evaluation results, shareable across threads.
///
/// Most callers want [`EvalCache::global()`] — the process-wide instance
/// the sweep entry points use — but a fresh [`EvalCache::new()`] gives
/// tests and long-running services an isolated lifetime they control.
#[derive(Debug, Default)]
pub struct EvalCache {
    reports: Mutex<HashMap<EvalKey, EvalReport>>,
    cycles: Mutex<HashMap<(ArchConfig, usize), f64>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl EvalCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        EvalCache::default()
    }

    /// The process-wide cache shared by [`explore()`](crate::explorer::explore),
    /// [`scaling_sweep()`](crate::explorer::scaling_sweep),
    /// [`table1()`](crate::table1::table1) and the bench binaries.
    pub fn global() -> &'static EvalCache {
        static GLOBAL: OnceLock<EvalCache> = OnceLock::new();
        GLOBAL.get_or_init(EvalCache::new)
    }

    /// Memoised [`EvalRequest::run`]: returns the cached report for this
    /// exact request if one exists, otherwise evaluates (without holding
    /// the lock) and stores the result.
    pub fn evaluate(&self, request: &EvalRequest) -> EvalReport {
        self.evaluate_recorded(request).0
    }

    /// [`EvalCache::evaluate`], also reporting whether the result came from
    /// the cache (`true` = hit) — the flag sweep observers record.
    pub fn evaluate_recorded(&self, request: &EvalRequest) -> (EvalReport, bool) {
        let key = EvalKey::new(request);
        if let Some(report) = self.reports.lock().expect("cache lock").get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return (report.clone(), true);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let report = evaluate_request(request);
        self.reports.lock().expect("cache lock").insert(key, report.clone());
        (report, false)
    }

    /// Memoised [`cycles_per_datagram()`] (the scaling ablation's
    /// rate-independent measurement), with the same hit flag.
    pub fn cycles_recorded(&self, config: &ArchConfig, entries: usize) -> (f64, bool) {
        let key = (config.clone(), entries);
        if let Some(&cycles) = self.cycles.lock().expect("cache lock").get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return (cycles, true);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let cycles = cycles_per_datagram(config, entries);
        self.cycles.lock().expect("cache lock").insert(key, cycles);
        (cycles, false)
    }

    /// Lookups answered from the map since creation (or [`Self::reset_counters`]).
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that had to simulate.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of distinct points stored (full reports + cycles-only).
    pub fn len(&self) -> usize {
        self.reports.lock().expect("cache lock").len()
            + self.cycles.lock().expect("cache lock").len()
    }

    /// `true` if nothing has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every stored result (counters are kept; pair with
    /// [`Self::reset_counters`] for a full reset).
    pub fn clear(&self) {
        self.reports.lock().expect("cache lock").clear();
        self.cycles.lock().expect("cache lock").clear();
    }

    /// Zeroes the hit/miss counters.
    pub fn reset_counters(&self) {
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rate::LineRate;
    use taco_routing::TableKind;

    fn request(config: ArchConfig, line_rate: LineRate, entries: usize) -> EvalRequest {
        EvalRequest::new(config).rate(line_rate).entries(entries)
    }

    #[test]
    fn hit_and_miss_counting() {
        let cache = EvalCache::new();
        let req = request(ArchConfig::three_bus_one_fu(TableKind::Cam), LineRate::TEN_GBE, 8);
        assert!(cache.is_empty());

        let (first, hit1) = cache.evaluate_recorded(&req);
        assert!(!hit1);
        assert_eq!((cache.hits(), cache.misses()), (0, 1));

        let (second, hit2) = cache.evaluate_recorded(&req);
        assert!(hit2);
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert_eq!(first, second);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn distinct_keys_do_not_collide() {
        let cache = EvalCache::new();
        let cam = ArchConfig::three_bus_one_fu(TableKind::Cam);
        let tree = ArchConfig::three_bus_one_fu(TableKind::BalancedTree);

        let a = cache.evaluate(&request(cam.clone(), LineRate::TEN_GBE, 8));
        let b = cache.evaluate(&request(tree, LineRate::TEN_GBE, 8));
        let c = cache.evaluate(&request(cam.clone(), LineRate::GIGE, 8));
        let d = cache.evaluate(&request(cam, LineRate::TEN_GBE, 16));
        assert_eq!(cache.misses(), 4, "four distinct points");
        assert_ne!(a.config, b.config);
        assert_ne!(a.line_rate, c.line_rate);
        assert_ne!(a.table_entries, d.table_entries);
    }

    #[test]
    fn workload_is_part_of_the_key() {
        use taco_workload::Workload;
        let cache = EvalCache::new();
        let base = request(ArchConfig::three_bus_one_fu(TableKind::Cam), LineRate::TEN_GBE, 8);
        let with_scenario = base.clone().workload(Workload::steady_forward());

        let plain = cache.evaluate(&base);
        let (scenario, hit) = cache.evaluate_recorded(&with_scenario);
        assert!(!hit, "a workload-carrying request is a distinct point");
        assert!(plain.scenario.is_none());
        assert!(scenario.scenario.is_some());
        assert_eq!(cache.misses(), 2);

        // Same workload again: now a hit.
        let (_, hit2) = cache.evaluate_recorded(&with_scenario);
        assert!(hit2);
    }

    #[test]
    fn fault_plan_is_part_of_the_key() {
        use taco_workload::{FaultPlan, Workload};
        let cache = EvalCache::new();
        let base = request(ArchConfig::three_bus_one_fu(TableKind::Cam), LineRate::TEN_GBE, 8)
            .workload(Workload::steady_forward());
        let faulted = base.clone().faults(FaultPlan::malformed());

        cache.evaluate(&base);
        let (report, hit) = cache.evaluate_recorded(&faulted);
        assert!(!hit, "a faulted request is a distinct point");
        assert!(report.scenario.and_then(|s| s.faults).is_some());
        assert_eq!(cache.misses(), 2);

        // A different seed is yet another point; the same plan hits.
        let reseeded = base.clone().faults(FaultPlan::malformed().with_seed(77));
        let (_, hit_reseeded) = cache.evaluate_recorded(&reseeded);
        assert!(!hit_reseeded);
        let (_, hit_same) = cache.evaluate_recorded(&faulted);
        assert!(hit_same);
    }

    #[test]
    fn cycles_cache_is_separate_and_hit_counted() {
        let cache = EvalCache::new();
        let config = ArchConfig::three_bus_one_fu(TableKind::Cam);
        let (cy1, hit1) = cache.cycles_recorded(&config, 8);
        let (cy2, hit2) = cache.cycles_recorded(&config, 8);
        assert!(!hit1);
        assert!(hit2);
        assert_eq!(cy1, cy2);
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
    }

    #[test]
    fn clear_and_reset() {
        let cache = EvalCache::new();
        let req = request(ArchConfig::three_bus_one_fu(TableKind::Cam), LineRate::TEN_GBE, 8);
        cache.evaluate(&req);
        cache.clear();
        assert!(cache.is_empty());
        cache.reset_counters();
        assert_eq!((cache.hits(), cache.misses()), (0, 0));
        // After clearing, the same point misses again.
        let (_, hit) = cache.evaluate_recorded(&req);
        assert!(!hit);
    }

    #[test]
    fn global_cache_is_one_instance() {
        let a = EvalCache::global() as *const EvalCache;
        let b = EvalCache::global() as *const EvalCache;
        assert_eq!(a, b);
    }
}
