//! Memoisation of architecture evaluations.
//!
//! One [`EvalRequest::run`] call runs a cycle-accurate simulation, so
//! sweep throughput — not single-run accuracy — is what limits
//! design-space exploration at scale.  Every evaluation is a pure
//! function of its [`EvalRequest`]: the benchmark routes, the measurement
//! traffic, the simulator and the scenario engine are all deterministic.
//! That makes the result safely memoisable, and repeated points across
//! [`explore()`](crate::explorer::explore),
//! [`scaling_sweep()`](crate::explorer::scaling_sweep) and the bench
//! binaries evaluate exactly once per process.
//!
//! The cache is a mutexed map, not a lock-free structure: the lock is held
//! only for lookups and inserts (microseconds), never across a simulation
//! (milliseconds to seconds), so contention is negligible next to the work
//! being saved.  Two threads racing on the *same* missing key may both
//! simulate it — the loser's insert simply overwrites with an identical
//! value, which is benign and keeps the hot path lock-free during compute.

use std::collections::HashMap;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

use taco_sim::StepMode;
use taco_workload::{FaultPlan, Workload};

use crate::arch::ArchConfig;
use crate::evaluate::{cycles_per_datagram, evaluate_request, EvalReport};
use crate::rate::LineRate;
use crate::request::EvalRequest;

/// Full evaluation key: the architecture instance, the routing-table size,
/// the line-rate target, the attached workload and the fault plan, if any.
/// The rate's `f64` component is keyed by bit pattern — line rates are
/// constructed from literals, not arithmetic, so bitwise equality is the
/// right notion here; workloads and fault plans are all-integer by design,
/// so they hash directly.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct EvalKey {
    config: ArchConfig,
    entries: usize,
    rate_bits: u64,
    packet_bytes: u32,
    workload: Option<Workload>,
    faults: Option<FaultPlan>,
    /// Checksum of an attached flow trace's record body, `0` when the
    /// request carries none.  An explicit trace and the descriptor-driven
    /// regeneration of the *same* records hash differently here only if
    /// the bytes differ — which is exactly when the results may differ.
    trace_digest: u64,
}

impl EvalKey {
    fn new(request: &EvalRequest) -> Self {
        EvalKey {
            config: request.config.clone(),
            entries: request.entries,
            rate_bits: request.line_rate.bits_per_second.to_bits(),
            packet_bytes: request.line_rate.packet_bytes,
            workload: request.workload,
            faults: request.faults,
            trace_digest: request.flow_trace.as_ref().map_or(0, |t| t.digest()),
        }
    }

    /// Rebuilds the request this key was derived from (the key is a
    /// lossless projection of every field but the cache-excluded trace
    /// path and step mode) — what snapshot persistence serialises.  Only
    /// compiled-mode results enter the cache, so the rebuilt request is
    /// pinned to [`StepMode::Compiled`] regardless of the process default.
    fn to_request(&self) -> EvalRequest {
        EvalRequest {
            config: self.config.clone(),
            line_rate: LineRate {
                bits_per_second: f64::from_bits(self.rate_bits),
                packet_bytes: self.packet_bytes,
            },
            entries: self.entries,
            workload: self.workload,
            faults: self.faults,
            trace: None,
            flow_trace: None,
            step_mode: StepMode::Compiled,
        }
    }
}

/// The snapshot format identifier (first header token).
const SNAPSHOT_MAGIC: &str = "taco-evalcache-snapshot";

/// The snapshot format version (second header token); bump on any change
/// to the entry schema so stale snapshots are discarded, not misread.
const SNAPSHOT_VERSION: &str = "v1";

/// FNV-1a 64-bit over the snapshot body — cheap, std-only corruption
/// detection (truncated writes, hand edits), not cryptographic integrity.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

/// Why a cache snapshot could not be written or read back.
#[derive(Debug)]
pub enum SnapshotError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// The file does not carry the snapshot header.
    MissingHeader,
    /// The snapshot was written by a different format version.
    VersionSkew {
        /// The version token the file carries.
        found: String,
    },
    /// The body does not match the recorded checksum (truncation,
    /// corruption, hand edit).
    ChecksumMismatch,
    /// One body entry failed to parse.
    Entry {
        /// 1-based line number in the snapshot file.
        line: usize,
        /// The parse failure.
        message: String,
    },
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot io error: {e}"),
            SnapshotError::MissingHeader => {
                write!(f, "not a {SNAPSHOT_MAGIC} file (missing header)")
            }
            SnapshotError::VersionSkew { found } => {
                write!(f, "snapshot version {found:?} is not the supported {SNAPSHOT_VERSION:?}")
            }
            SnapshotError::ChecksumMismatch => write!(f, "snapshot body fails its checksum"),
            SnapshotError::Entry { line, message } => {
                write!(f, "snapshot line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

/// What one [`EvalCache::save_snapshot`] call wrote.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnapshotStats {
    /// Report entries written to the file.
    pub persisted: u64,
    /// Cached reports with no wire form, skipped: reports carrying a
    /// [`sim_error`](EvalReport::sim_error) (one-way by design), machine
    /// configurations outside the wire-expressible family, and entries
    /// keyed to an explicit flow trace (the records are not persisted).
    pub skipped: u64,
}

/// A keyed memo of evaluation results, shareable across threads.
///
/// Most callers want [`EvalCache::global()`] — the process-wide instance
/// the sweep entry points use — but a fresh [`EvalCache::new()`] gives
/// tests and long-running services an isolated lifetime they control.
#[derive(Debug, Default)]
pub struct EvalCache {
    reports: Mutex<HashMap<EvalKey, EvalReport>>,
    cycles: Mutex<HashMap<(ArchConfig, usize), f64>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl EvalCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        EvalCache::default()
    }

    /// The process-wide cache shared by [`explore()`](crate::explorer::explore),
    /// [`scaling_sweep()`](crate::explorer::scaling_sweep),
    /// [`table1()`](crate::table1::table1) and the bench binaries.
    pub fn global() -> &'static EvalCache {
        static GLOBAL: OnceLock<EvalCache> = OnceLock::new();
        GLOBAL.get_or_init(EvalCache::new)
    }

    /// Memoised [`EvalRequest::run`]: returns the cached report for this
    /// exact request if one exists, otherwise evaluates (without holding
    /// the lock) and stores the result.
    pub fn evaluate(&self, request: &EvalRequest) -> EvalReport {
        self.evaluate_recorded(request).0
    }

    /// The cached report for this exact request, if present — the
    /// serving-layer fast path, answerable without occupying a worker.
    ///
    /// A hit increments the hit counter exactly as
    /// [`EvalCache::evaluate_recorded`] would; a miss counts nothing,
    /// because the caller is expected to follow up with
    /// `evaluate_recorded`, which records the miss when the simulation
    /// actually runs — so the counters add up identically whichever path
    /// answered.  Interpretive requests always return `None` without
    /// touching the counters: they bypass the memo by design.
    pub fn lookup_recorded(&self, request: &EvalRequest) -> Option<EvalReport> {
        if request.step_mode != StepMode::Compiled {
            return None;
        }
        let key = EvalKey::new(request);
        let report = self.reports.lock().expect("cache lock").get(&key).cloned()?;
        self.hits.fetch_add(1, Ordering::Relaxed);
        Some(report)
    }

    /// [`EvalCache::evaluate`], also reporting whether the result came from
    /// the cache (`true` = hit) — the flag sweep observers record.
    pub fn evaluate_recorded(&self, request: &EvalRequest) -> (EvalReport, bool) {
        // Interpretive-mode runs exist to double-check the compiled path;
        // memoizing them (or answering them from compiled-mode entries)
        // would defeat that purpose, so they bypass the cache entirely.
        if request.step_mode != StepMode::Compiled {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return (evaluate_request(request), false);
        }
        let key = EvalKey::new(request);
        if let Some(report) = self.reports.lock().expect("cache lock").get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return (report.clone(), true);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let report = evaluate_request(request);
        self.reports.lock().expect("cache lock").insert(key, report.clone());
        (report, false)
    }

    /// Memoised [`cycles_per_datagram()`] (the scaling ablation's
    /// rate-independent measurement), with the same hit flag.
    pub fn cycles_recorded(&self, config: &ArchConfig, entries: usize) -> (f64, bool) {
        let key = (config.clone(), entries);
        if let Some(&cycles) = self.cycles.lock().expect("cache lock").get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return (cycles, true);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let cycles = cycles_per_datagram(config, entries);
        self.cycles.lock().expect("cache lock").insert(key, cycles);
        (cycles, false)
    }

    /// Lookups answered from the map since creation (or [`Self::reset_counters`]).
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that had to simulate.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of distinct points stored (full reports + cycles-only).
    pub fn len(&self) -> usize {
        self.reports.lock().expect("cache lock").len()
            + self.cycles.lock().expect("cache lock").len()
    }

    /// `true` if nothing has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every stored result (counters are kept; pair with
    /// [`Self::reset_counters`] for a full reset).
    pub fn clear(&self) {
        self.reports.lock().expect("cache lock").clear();
        self.cycles.lock().expect("cache lock").clear();
    }

    /// Zeroes the hit/miss counters.
    pub fn reset_counters(&self) {
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
    }

    /// Writes every cached report to `path` as a versioned, checksummed
    /// snapshot the daemon reloads on boot.
    ///
    /// Format: a `taco-evalcache-snapshot v1` header line, a
    /// `checksum <fnv1a64-hex>` line over the body, then one
    /// `{"request":…,"report":…}` JSON line per entry (the wire codecs
    /// from [`crate::api`]), sorted so the file is byte-stable for a given
    /// cache content.  Reports with no wire form are skipped and counted
    /// (see [`SnapshotStats`]); the rate-independent cycles memo is *not*
    /// persisted — it backs only the in-process scaling ablation.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Io`] if the file cannot be written.
    pub fn save_snapshot(&self, path: &Path) -> Result<SnapshotStats, SnapshotError> {
        let (content, stats) = self.to_snapshot_string();
        std::fs::write(path, content)?;
        Ok(stats)
    }

    /// Serialises the cache in the [`EvalCache::save_snapshot`] format
    /// without touching the filesystem — what the daemon's `cache_export`
    /// request ships over the wire so a sweep coordinator can pool what
    /// each shard learned.  Byte-stable for a given cache content.
    pub fn to_snapshot_string(&self) -> (String, SnapshotStats) {
        let mut lines = Vec::new();
        let mut skipped = 0u64;
        {
            let reports = self.reports.lock().expect("cache lock");
            for (key, report) in reports.iter() {
                // Entries keyed to an explicit flow trace cannot be rebuilt
                // from the key alone (the records live outside the cache),
                // so they are process-local: skipped on export, recounted.
                let spec = if report.sim_error.is_none() && key.trace_digest == 0 {
                    crate::api::EvalSpec::from_request(&key.to_request())
                } else {
                    None
                };
                match spec {
                    Some(spec) => lines.push(format!(
                        "{{\"request\":{},\"report\":{}}}",
                        spec.to_json(),
                        crate::api::report_to_json(report)
                    )),
                    None => skipped += 1,
                }
            }
        }
        lines.sort_unstable();
        let mut body = String::new();
        for line in &lines {
            body.push_str(line);
            body.push('\n');
        }
        let content = format!(
            "{SNAPSHOT_MAGIC} {SNAPSHOT_VERSION}\nchecksum {:016x}\n{body}",
            fnv1a64(body.as_bytes())
        );
        (content, SnapshotStats { persisted: lines.len() as u64, skipped })
    }

    /// Loads a snapshot written by [`EvalCache::save_snapshot`], inserting
    /// its reports into this cache, and returns how many entries were
    /// loaded.
    ///
    /// Strict by design: a corrupt, truncated or version-skewed snapshot
    /// is rejected as a whole (the structured error says why) and the
    /// cache is left exactly as it was — callers warn and start cold, they
    /// never panic and never trust a half-read file.
    ///
    /// # Errors
    ///
    /// Every [`SnapshotError`] variant is reachable: IO failure, a foreign
    /// file, a version bump, a checksum mismatch, or an entry that fails
    /// the strict wire parse.
    pub fn load_snapshot(&self, path: &Path) -> Result<u64, SnapshotError> {
        let text = std::fs::read_to_string(path)?;
        self.load_snapshot_str(&text)
    }

    /// [`EvalCache::load_snapshot`] from an in-memory string — the receive
    /// side of [`EvalCache::to_snapshot_string`], used by the daemon's
    /// `cache_import` request.  Same all-or-nothing strictness.
    ///
    /// # Errors
    ///
    /// Every non-IO [`SnapshotError`] variant.
    pub fn load_snapshot_str(&self, text: &str) -> Result<u64, SnapshotError> {
        let Some((header, rest)) = text.split_once('\n') else {
            return Err(SnapshotError::MissingHeader);
        };
        let Some((magic, version)) = header.split_once(' ') else {
            return Err(SnapshotError::MissingHeader);
        };
        if magic != SNAPSHOT_MAGIC {
            return Err(SnapshotError::MissingHeader);
        }
        if version != SNAPSHOT_VERSION {
            return Err(SnapshotError::VersionSkew { found: version.to_owned() });
        }
        let Some((checksum_line, body)) = rest.split_once('\n') else {
            return Err(SnapshotError::MissingHeader);
        };
        let recorded = checksum_line
            .strip_prefix("checksum ")
            .and_then(|hex| u64::from_str_radix(hex, 16).ok())
            .ok_or(SnapshotError::MissingHeader)?;
        if fnv1a64(body.as_bytes()) != recorded {
            return Err(SnapshotError::ChecksumMismatch);
        }
        // Parse the whole body before touching the cache: a bad entry must
        // not leave a half-loaded state behind.
        let mut entries = Vec::new();
        for (i, line) in body.lines().enumerate() {
            let file_line = i + 3;
            let entry = (|| -> Result<(EvalKey, EvalReport), crate::api::ApiError> {
                let value = crate::api::json::Json::parse(line)
                    .map_err(|e| crate::api::ApiError::bad_request(e.to_string()))?;
                let mut f = crate::api::Fields::new("snapshot entry", &value)?;
                let spec = crate::api::EvalSpec::from_value(f.req("request")?)?;
                let report = crate::api::report_from_value(f.req("report")?)?;
                f.finish()?;
                let request = spec.to_request()?;
                Ok((EvalKey::new(&request), report))
            })()
            .map_err(|e| SnapshotError::Entry { line: file_line, message: e.to_string() })?;
            entries.push(entry);
        }
        let count = entries.len() as u64;
        let mut reports = self.reports.lock().expect("cache lock");
        for (key, report) in entries {
            reports.insert(key, report);
        }
        Ok(count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rate::LineRate;
    use taco_routing::TableKind;

    fn request(config: ArchConfig, line_rate: LineRate, entries: usize) -> EvalRequest {
        EvalRequest::new(config).rate(line_rate).entries(entries)
    }

    #[test]
    fn hit_and_miss_counting() {
        let cache = EvalCache::new();
        let req = request(ArchConfig::three_bus_one_fu(TableKind::Cam), LineRate::TEN_GBE, 8);
        assert!(cache.is_empty());

        let (first, hit1) = cache.evaluate_recorded(&req);
        assert!(!hit1);
        assert_eq!((cache.hits(), cache.misses()), (0, 1));

        let (second, hit2) = cache.evaluate_recorded(&req);
        assert!(hit2);
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert_eq!(first, second);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn interpretive_requests_bypass_the_memo() {
        let cache = EvalCache::new();
        let compiled = request(ArchConfig::three_bus_one_fu(TableKind::Cam), LineRate::TEN_GBE, 8);
        let interpretive = compiled.clone().step_mode(StepMode::Interpretive);

        let (reference, hit) = cache.evaluate_recorded(&interpretive);
        assert!(!hit);
        assert!(cache.is_empty(), "interpretive runs must not populate the cache");

        // A second interpretive run re-evaluates rather than hitting.
        let (again, hit2) = cache.evaluate_recorded(&interpretive);
        assert!(!hit2);
        assert_eq!(reference, again);

        // The compiled twin misses (nothing was cached for it), lands in the
        // cache, and agrees with the interpretive reference.
        let (fast, hit3) = cache.evaluate_recorded(&compiled);
        assert!(!hit3);
        assert_eq!(cache.len(), 1);
        assert_eq!(fast, reference, "both step modes must report identically");
    }

    #[test]
    fn distinct_keys_do_not_collide() {
        let cache = EvalCache::new();
        let cam = ArchConfig::three_bus_one_fu(TableKind::Cam);
        let tree = ArchConfig::three_bus_one_fu(TableKind::BalancedTree);

        let a = cache.evaluate(&request(cam.clone(), LineRate::TEN_GBE, 8));
        let b = cache.evaluate(&request(tree, LineRate::TEN_GBE, 8));
        let c = cache.evaluate(&request(cam.clone(), LineRate::GIGE, 8));
        let d = cache.evaluate(&request(cam, LineRate::TEN_GBE, 16));
        assert_eq!(cache.misses(), 4, "four distinct points");
        assert_ne!(a.config, b.config);
        assert_ne!(a.line_rate, c.line_rate);
        assert_ne!(a.table_entries, d.table_entries);
    }

    #[test]
    fn workload_is_part_of_the_key() {
        use taco_workload::Workload;
        let cache = EvalCache::new();
        let base = request(ArchConfig::three_bus_one_fu(TableKind::Cam), LineRate::TEN_GBE, 8);
        let with_scenario = base.clone().workload(Workload::steady_forward());

        let plain = cache.evaluate(&base);
        let (scenario, hit) = cache.evaluate_recorded(&with_scenario);
        assert!(!hit, "a workload-carrying request is a distinct point");
        assert!(plain.scenario.is_none());
        assert!(scenario.scenario.is_some());
        assert_eq!(cache.misses(), 2);

        // Same workload again: now a hit.
        let (_, hit2) = cache.evaluate_recorded(&with_scenario);
        assert!(hit2);
    }

    #[test]
    fn fault_plan_is_part_of_the_key() {
        use taco_workload::{FaultPlan, Workload};
        let cache = EvalCache::new();
        let base = request(ArchConfig::three_bus_one_fu(TableKind::Cam), LineRate::TEN_GBE, 8)
            .workload(Workload::steady_forward());
        let faulted = base.clone().faults(FaultPlan::malformed());

        cache.evaluate(&base);
        let (report, hit) = cache.evaluate_recorded(&faulted);
        assert!(!hit, "a faulted request is a distinct point");
        assert!(report.scenario.and_then(|s| s.faults).is_some());
        assert_eq!(cache.misses(), 2);

        // A different seed is yet another point; the same plan hits.
        let reseeded = base.clone().faults(FaultPlan::malformed().with_seed(77));
        let (_, hit_reseeded) = cache.evaluate_recorded(&reseeded);
        assert!(!hit_reseeded);
        let (_, hit_same) = cache.evaluate_recorded(&faulted);
        assert!(hit_same);
    }

    #[test]
    fn trace_digest_is_part_of_the_key_and_snapshots_skip_it() {
        use std::sync::Arc;
        use taco_workload::TraceGen;
        let cache = EvalCache::new();
        let trace = Arc::new(TraceGen::generate(11, 20, 6, 8));
        let descriptor =
            request(ArchConfig::three_bus_one_fu(TableKind::Cam), LineRate::TEN_GBE, 8)
                .workload(trace.descriptor());
        let explicit = descriptor.clone().flow_trace(Arc::clone(&trace));

        // Same descriptor, but the explicit trace is keyed separately.
        cache.evaluate(&descriptor);
        let (_, hit) = cache.evaluate_recorded(&explicit);
        assert!(!hit, "an explicit trace is a distinct cache point");
        let (_, hit2) = cache.evaluate_recorded(&explicit);
        assert!(hit2, "the same trace digest hits");

        // Export skips the trace-keyed entry: its records cannot be rebuilt
        // from the key, so only the descriptor entry has a wire form.
        let (body, stats) = cache.to_snapshot_string();
        assert_eq!(stats, SnapshotStats { persisted: 1, skipped: 1 });
        let warm = EvalCache::new();
        assert_eq!(warm.load_snapshot_str(&body).expect("load"), 1);
        let (_, desc_hit) = warm.evaluate_recorded(&descriptor);
        assert!(desc_hit);
    }

    #[test]
    fn cycles_cache_is_separate_and_hit_counted() {
        let cache = EvalCache::new();
        let config = ArchConfig::three_bus_one_fu(TableKind::Cam);
        let (cy1, hit1) = cache.cycles_recorded(&config, 8);
        let (cy2, hit2) = cache.cycles_recorded(&config, 8);
        assert!(!hit1);
        assert!(hit2);
        assert_eq!(cy1, cy2);
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
    }

    #[test]
    fn clear_and_reset() {
        let cache = EvalCache::new();
        let req = request(ArchConfig::three_bus_one_fu(TableKind::Cam), LineRate::TEN_GBE, 8);
        cache.evaluate(&req);
        cache.clear();
        assert!(cache.is_empty());
        cache.reset_counters();
        assert_eq!((cache.hits(), cache.misses()), (0, 0));
        // After clearing, the same point misses again.
        let (_, hit) = cache.evaluate_recorded(&req);
        assert!(!hit);
    }

    #[test]
    fn global_cache_is_one_instance() {
        let a = EvalCache::global() as *const EvalCache;
        let b = EvalCache::global() as *const EvalCache;
        assert_eq!(a, b);
    }

    #[test]
    fn lookup_counts_hits_but_never_misses() {
        let cache = EvalCache::new();
        let req = request(ArchConfig::three_bus_one_fu(TableKind::Cam), LineRate::TEN_GBE, 8);

        assert_eq!(cache.lookup_recorded(&req), None);
        assert_eq!((cache.hits(), cache.misses()), (0, 0), "a lookup miss counts nothing");

        let (stored, _) = cache.evaluate_recorded(&req);
        assert_eq!((cache.hits(), cache.misses()), (0, 1));
        assert_eq!(cache.lookup_recorded(&req), Some(stored));
        assert_eq!((cache.hits(), cache.misses()), (1, 1), "a lookup hit counts as a hit");

        // Interpretive requests never consult the memo, even when the
        // compiled twin is cached.
        let interpretive = req.step_mode(StepMode::Interpretive);
        assert_eq!(cache.lookup_recorded(&interpretive), None);
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
    }

    #[test]
    fn snapshot_string_round_trips_without_the_filesystem() {
        let cache = EvalCache::new();
        let req = request(ArchConfig::three_bus_one_fu(TableKind::Cam), LineRate::TEN_GBE, 8);
        cache.evaluate(&req);

        let (body, stats) = cache.to_snapshot_string();
        assert_eq!(stats, SnapshotStats { persisted: 1, skipped: 0 });
        let warm = EvalCache::new();
        assert_eq!(warm.load_snapshot_str(&body).expect("load"), 1);
        let (_, hit) = warm.evaluate_recorded(&req);
        assert!(hit);

        // Merging is idempotent and additive.
        assert_eq!(warm.load_snapshot_str(&body).expect("reload"), 1);
        assert_eq!(warm.len(), 1);
        assert!(matches!(
            EvalCache::new().load_snapshot_str("junk"),
            Err(SnapshotError::MissingHeader)
        ));
    }

    fn temp_snapshot(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("taco-cache-test-{name}-{}.snap", std::process::id()))
    }

    #[test]
    fn snapshot_round_trips_and_is_byte_stable() {
        use taco_workload::Workload;
        let cache = EvalCache::new();
        let cam = request(ArchConfig::three_bus_one_fu(TableKind::Cam), LineRate::TEN_GBE, 8);
        let tree =
            request(ArchConfig::three_bus_one_fu(TableKind::BalancedTree), LineRate::GIGE, 8)
                .workload(Workload::steady_forward());
        cache.evaluate(&cam);
        cache.evaluate(&tree);

        let path = temp_snapshot("roundtrip");
        let stats = cache.save_snapshot(&path).expect("save");
        assert_eq!(stats, SnapshotStats { persisted: 2, skipped: 0 });
        let first = std::fs::read(&path).expect("read");
        cache.save_snapshot(&path).expect("save again");
        assert_eq!(first, std::fs::read(&path).expect("read"), "byte-stable");

        let warm = EvalCache::new();
        assert_eq!(warm.load_snapshot(&path).expect("load"), 2);
        let (report, hit) = warm.evaluate_recorded(&cam);
        assert!(hit, "loaded snapshot must answer the exact request");
        assert_eq!(report, cache.evaluate(&cam));
        let (_, hit) = warm.evaluate_recorded(&tree);
        assert!(hit);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corrupt_and_skewed_snapshots_are_structured_errors() {
        let cache = EvalCache::new();
        cache.evaluate(&request(
            ArchConfig::three_bus_one_fu(TableKind::Cam),
            LineRate::TEN_GBE,
            8,
        ));
        let path = temp_snapshot("corrupt");
        cache.save_snapshot(&path).expect("save");
        let good = std::fs::read_to_string(&path).expect("read");

        // Flip a body byte: checksum mismatch.
        std::fs::write(&path, good.replace("\"entries\":8", "\"entries\":9")).unwrap();
        assert!(matches!(
            EvalCache::new().load_snapshot(&path),
            Err(SnapshotError::ChecksumMismatch)
        ));

        // Bump the version: skew, reported with the found token.
        std::fs::write(&path, good.replace("snapshot v1", "snapshot v9")).unwrap();
        match EvalCache::new().load_snapshot(&path) {
            Err(SnapshotError::VersionSkew { found }) => assert_eq!(found, "v9"),
            other => panic!("expected version skew, got {other:?}"),
        }

        // A foreign file: missing header.
        std::fs::write(&path, "not a snapshot at all\n").unwrap();
        assert!(matches!(EvalCache::new().load_snapshot(&path), Err(SnapshotError::MissingHeader)));

        // A missing file: IO.
        let _ = std::fs::remove_file(&path);
        assert!(matches!(EvalCache::new().load_snapshot(&path), Err(SnapshotError::Io(_))));
    }

    #[test]
    fn bad_entries_reject_the_whole_snapshot() {
        let cache = EvalCache::new();
        cache.evaluate(&request(
            ArchConfig::three_bus_one_fu(TableKind::Cam),
            LineRate::TEN_GBE,
            8,
        ));
        let path = temp_snapshot("badentry");
        cache.save_snapshot(&path).expect("save");
        let good = std::fs::read_to_string(&path).expect("read");
        // Re-checksum a body whose entry is valid JSON but fails the strict
        // parse (unknown field) — the load must fail atomically.
        let (header_and_sum, body) = good.split_once("\n").unwrap();
        let (_sum, body) = body.split_once('\n').unwrap();
        let bad_body = body.replacen("{\"request\":", "{\"zzz\":1,\"request\":", 1);
        let content = format!(
            "{header_and_sum}\nchecksum {:016x}\n{bad_body}",
            super::fnv1a64(bad_body.as_bytes())
        );
        std::fs::write(&path, content).unwrap();
        let warm = EvalCache::new();
        match warm.load_snapshot(&path) {
            Err(SnapshotError::Entry { line, message }) => {
                assert_eq!(line, 3);
                assert!(message.contains("zzz"), "{message}");
            }
            other => panic!("expected entry error, got {other:?}"),
        }
        assert!(warm.is_empty(), "a rejected snapshot must not half-load");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn unrepresentable_reports_are_skipped_with_a_count() {
        use taco_isa::{FuKind, MachineConfig};
        let cache = EvalCache::new();
        cache.evaluate(&request(
            ArchConfig::three_bus_one_fu(TableKind::Cam),
            LineRate::TEN_GBE,
            8,
        ));
        // An asymmetric machine outside the wire-expressible family: its
        // report is skipped whether it simulated or died with a sim_error.
        let odd = ArchConfig::new(
            MachineConfig::three_bus_one_fu().with_fu_count(FuKind::Matcher, 2),
            TableKind::Cam,
        );
        cache.evaluate(&request(odd, LineRate::TEN_GBE, 8));

        let path = temp_snapshot("skips");
        let stats = cache.save_snapshot(&path).expect("save");
        assert_eq!(stats, SnapshotStats { persisted: 1, skipped: 1 });
        let warm = EvalCache::new();
        assert_eq!(warm.load_snapshot(&path).expect("load"), 1);
        let _ = std::fs::remove_file(&path);
    }
}
