#![warn(missing_docs)]

//! Fast evaluation of protocol processor architectures — the paper's
//! primary contribution.
//!
//! "By simulating and estimating different architectural configurations at
//! the system-level we obtained a fast turn-around time for finding
//! well-suited configurations to match the target application and its
//! constraints."  This crate is that methodology, end to end:
//!
//! 1. [`ArchConfig`] names an architecture instance: a TTA machine
//!    configuration × a routing-table organisation;
//! 2. [`EvalRequest::run`] (backed by [`evaluate_request()`]) runs the
//!    cycle-accurate router for the instance (`taco-router` + `taco-sim`),
//!    converts measured cycles-per-datagram into the minimum clock for a
//!    [`LineRate`] target, and feeds that clock to the physical estimator
//!    (`taco-estimate`) — producing an [`EvalReport`] with required speed,
//!    bus utilisation, area, power and feasibility;
//! 3. [`table1()`](table1()) evaluates the paper's nine cells and [`table1::render`]
//!    prints them in the paper's layout;
//! 4. [`explore`] automates the design-space sweep the paper lists as
//!    future work: grid × constraints → ranked surviving configurations;
//! 5. [`api`] is the versioned JSON wire form of all of the above — the
//!    schema the `taco-served` daemon speaks and the shared validation
//!    path behind the CLI flags.
//!
//! # Examples
//!
//! ```
//! use taco_core::{ArchConfig, EvalRequest, RoutingTableKind};
//!
//! // The paper's headline finding, reproduced in four lines: a CAM-backed
//! // routing table turns an impossible clock requirement into tens of MHz.
//! // (The request defaults are the paper's: 10 GbE, 100 table entries.)
//! let seq = EvalRequest::new(ArchConfig::one_bus_one_fu(RoutingTableKind::Sequential)).run();
//! let cam = EvalRequest::new(ArchConfig::three_bus_one_fu(RoutingTableKind::Cam)).run();
//! assert!(!seq.is_feasible());
//! assert!(cam.is_feasible());
//! assert!(cam.required_frequency_hz < seq.required_frequency_hz / 10.0);
//! ```

pub mod api;
pub mod arch;
pub mod cache;
pub mod evaluate;
pub mod explorer;
pub mod observer;
pub mod pool;
pub mod rate;
pub mod request;
pub mod table1;

pub use api::{
    parse_machine_spec, parse_step_mode, salvage_request_id, step_mode_name,
    supported_features_json, ApiError, ApiErrorCode, ApiRequest, ApiResponse, ConfigSpec, EvalSpec,
    MachineSpec, StatusInfo, SweepShard, TraceRef, WireRequest, WireResponse,
};
pub use arch::{ArchConfig, RoutingTableKind};
pub use cache::{EvalCache, SnapshotError, SnapshotStats};
pub use evaluate::{
    benchmark_routes, cycles_per_datagram, evaluate_request, max_sustainable_rate_bps,
    trace_request, EvalReport, TraceError,
};
pub use explorer::{
    explore, explore_serial, explore_with, grid, rank_reports, scaling_sweep, scaling_sweep_with,
    Constraints, Exploration, ExploreOptions, SweepSpec,
};
pub use observer::{PointRecord, Silent, StderrProgress, SweepObserver, SweepSummary};
pub use rate::LineRate;
pub use request::EvalRequest;
pub use table1::table1;
pub use taco_sim::StepMode;
pub use taco_workload::{
    FaultMetrics, FaultPlan, FlowStats, FlowTrace, ScenarioMetrics, TraceFormatError, TraceGen,
    Workload, DEFAULT_FAULT_SEED,
};
