//! A strict, serde-free JSON value: the parsing half of the wire layer.
//!
//! The workspace builds offline and carries no serde, so everything that
//! *emits* JSON hand-rolls byte-stable strings ([`SimStats::to_json`],
//! [`ScenarioMetrics::to_json`], the golden Table 1 fixture).  The wire API
//! needs the other direction too; [`Json`] supplies it as a strict RFC 8259
//! subset parser — no `NaN`/`Infinity` literals, no trailing commas, no
//! unquoted keys, no duplicate keys, no trailing garbage.
//!
//! Numbers are kept as their *raw literal text* rather than eagerly
//! converted to `f64`: a `u64` seed like `18446744073709551615` does not
//! survive a round-trip through `f64`, and the byte-identity contract of
//! the wire layer ("same value in, same bytes out") demands exactness for
//! integers of any magnitude.  [`Json::as_u64`] parses the raw text as an
//! integer; [`Json::as_f64`] parses it as a float (Rust's `FromStr` is the
//! exact inverse of its shortest-round-trip `Display`, so finite floats are
//! bit-exact too).
//!
//! [`SimStats::to_json`]: taco_sim::SimStats::to_json
//! [`ScenarioMetrics::to_json`]: taco_workload::ScenarioMetrics::to_json

use std::fmt::Write as _;

/// A parsed JSON value.
///
/// Objects preserve member order (a `Vec`, not a map): the wire layer's
/// responses have a documented key order, and order-preserving parses make
/// that testable.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, kept as its raw literal text (always a valid RFC 8259
    /// number — the parser guarantees it, and the constructors only emit
    /// valid literals).
    Num(String),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, members in source order.  The strict parser rejects
    /// duplicate keys.
    Obj(Vec<(String, Json)>),
}

/// Where and why a parse failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonParseError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What was expected there.
    pub message: &'static str,
}

impl std::fmt::Display for JsonParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.at, self.message)
    }
}

impl Json {
    /// A number value from a `u64` (exact).
    pub fn u64(v: u64) -> Json {
        Json::Num(v.to_string())
    }

    /// A number value from an `f64` using the shortest-round-trip
    /// `Display`; non-finite values become [`Json::Null`] (JSON has no
    /// `Infinity`/`NaN` literals — the wire layer's documented convention).
    pub fn f64(v: f64) -> Json {
        if v.is_finite() {
            Json::Num(format!("{v}"))
        } else {
            Json::Null
        }
    }

    /// A string value.
    pub fn str(v: impl Into<String>) -> Json {
        Json::Str(v.into())
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The number as an exact unsigned integer (rejects fractions,
    /// exponents, signs and anything beyond `u64::MAX`).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The number as an `f64` (exact for every finite shortest-round-trip
    /// literal).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The members in source order, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(members) => Some(members),
            _ => None,
        }
    }

    /// `true` for [`Json::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }

    /// Serialises compactly (no whitespace), object members in stored
    /// order.  Parsing the result yields the value back.
    pub fn encode(&self) -> String {
        let mut out = String::new();
        self.encode_into(&mut out);
        out
    }

    fn encode_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(raw) => out.push_str(raw),
            Json::Str(s) => encode_str(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.encode_into(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (key, value)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    encode_str(key, out);
                    out.push(':');
                    value.encode_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses one JSON document; trailing non-whitespace is an error.
    pub fn parse(text: &str) -> Result<Json, JsonParseError> {
        let mut p = Parser { bytes: text.as_bytes(), at: 0 };
        let value = p.value()?;
        p.skip_ws();
        if p.at != p.bytes.len() {
            return Err(p.err("end of document"));
        }
        Ok(value)
    }
}

/// Serialises a string with the minimal escape set (quotes, backslash,
/// control characters).
fn encode_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &'static str) -> JsonParseError {
        JsonParseError { at: self.at, message }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.at).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.at += 1;
        }
    }

    fn expect(&mut self, b: u8, message: &'static str) -> Result<(), JsonParseError> {
        if self.peek() == Some(b) {
            self.at += 1;
            Ok(())
        } else {
            Err(self.err(message))
        }
    }

    fn literal(&mut self, text: &'static str, value: Json) -> Result<Json, JsonParseError> {
        if self.bytes[self.at..].starts_with(text.as_bytes()) {
            self.at += text.len();
            Ok(value)
        } else {
            Err(self.err("a JSON value"))
        }
    }

    fn value(&mut self) -> Result<Json, JsonParseError> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonParseError> {
        self.expect(b'{', "'{'")?;
        let mut members: Vec<(String, Json)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.at += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            if members.iter().any(|(k, _)| *k == key) {
                return Err(self.err("unique object keys"));
            }
            self.skip_ws();
            self.expect(b':', "':'")?;
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b'}') => {
                    self.at += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonParseError> {
        self.expect(b'[', "'['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.at += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b']') => {
                    self.at += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonParseError> {
        self.expect(b'"', "'\"'")?;
        let mut out = String::new();
        loop {
            let start = self.at;
            // Fast path: a run of plain UTF-8 up to the next quote/escape.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.at += 1;
            }
            if self.at > start {
                // The document is valid UTF-8 (it is a &str) and the run
                // stops on ASCII delimiters, so the slice is char-aligned.
                out.push_str(std::str::from_utf8(&self.bytes[start..self.at]).expect("utf-8"));
            }
            match self.peek() {
                Some(b'"') => {
                    self.at += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.at += 1;
                    out.push(self.escape()?);
                }
                _ => return Err(self.err("'\"' (unterminated or control char in string)")),
            }
        }
    }

    fn escape(&mut self) -> Result<char, JsonParseError> {
        let c = self.peek().ok_or_else(|| self.err("an escape character"))?;
        self.at += 1;
        Ok(match c {
            b'"' => '"',
            b'\\' => '\\',
            b'/' => '/',
            b'b' => '\u{8}',
            b'f' => '\u{c}',
            b'n' => '\n',
            b'r' => '\r',
            b't' => '\t',
            b'u' => {
                let first = self.hex4()?;
                if (0xD800..0xDC00).contains(&first) {
                    // High surrogate: require the paired low surrogate.
                    if self.peek() != Some(b'\\') {
                        return Err(self.err("a low surrogate"));
                    }
                    self.at += 1;
                    if self.peek() != Some(b'u') {
                        return Err(self.err("a low surrogate"));
                    }
                    self.at += 1;
                    let second = self.hex4()?;
                    if !(0xDC00..0xE000).contains(&second) {
                        return Err(self.err("a low surrogate"));
                    }
                    let cp = 0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00);
                    char::from_u32(cp).ok_or_else(|| self.err("a valid code point"))?
                } else {
                    char::from_u32(first).ok_or_else(|| self.err("a valid code point"))?
                }
            }
            _ => return Err(self.err("a valid escape")),
        })
    }

    fn hex4(&mut self) -> Result<u32, JsonParseError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let d = self.peek().and_then(|b| (b as char).to_digit(16));
            match d {
                Some(d) => {
                    v = v * 16 + d;
                    self.at += 1;
                }
                None => return Err(self.err("four hex digits")),
            }
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonParseError> {
        let start = self.at;
        if self.peek() == Some(b'-') {
            self.at += 1;
        }
        // Integer part: `0` alone, or a nonzero-led digit run (RFC 8259
        // forbids leading zeros).
        match self.peek() {
            Some(b'0') => self.at += 1,
            Some(b'1'..=b'9') => {
                while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                    self.at += 1;
                }
            }
            _ => return Err(self.err("a digit")),
        }
        if self.peek() == Some(b'.') {
            self.at += 1;
            if !self.digits() {
                return Err(self.err("a fraction digit"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.at += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.at += 1;
            }
            if !self.digits() {
                return Err(self.err("an exponent digit"));
            }
        }
        let raw = std::str::from_utf8(&self.bytes[start..self.at]).expect("ascii number");
        Ok(Json::Num(raw.to_owned()))
    }

    fn digits(&mut self) -> bool {
        let from = self.at;
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.at += 1;
        }
        self.at > from
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars_and_structures() {
        for text in [
            "null",
            "true",
            "false",
            "0",
            "-1",
            "18446744073709551615",
            "1.5",
            "3.0000000000000004",
            "[1,2,[3]]",
            "{\"a\":1,\"b\":{\"c\":[true,null]}}",
            "{}",
            "[]",
            "\"hi\"",
        ] {
            let v = Json::parse(text).unwrap_or_else(|e| panic!("{text}: {e}"));
            assert_eq!(v.encode(), text, "byte round-trip of {text}");
        }
    }

    #[test]
    fn numbers_keep_exact_text() {
        let v = Json::parse("18446744073709551615").unwrap();
        assert_eq!(v.as_u64(), Some(u64::MAX));
        assert_eq!(v.encode(), "18446744073709551615");
        // The same literal through f64 would have been lossy.
        assert_ne!(format!("{}", u64::MAX as f64), "18446744073709551615");
    }

    #[test]
    fn floats_round_trip_exactly() {
        for x in [0.1, 1.0 / 3.0, 32602163.461538464, 1e-300, 123456789.12345679] {
            let v = Json::f64(x);
            let back = Json::parse(&v.encode()).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x}");
        }
        assert!(Json::f64(f64::INFINITY).is_null());
        assert!(Json::f64(f64::NAN).is_null());
    }

    #[test]
    fn strings_escape_and_unescape() {
        let v = Json::str("a\"b\\c\nd\te\u{1}f");
        let enc = v.encode();
        assert_eq!(enc, "\"a\\\"b\\\\c\\nd\\te\\u0001f\"");
        assert_eq!(Json::parse(&enc).unwrap(), v);
        // Unicode escapes, including a surrogate pair.
        assert_eq!(Json::parse("\"\\u00e9\"").unwrap(), Json::str("é"));
        assert_eq!(Json::parse("\"\\ud83d\\ude00\"").unwrap(), Json::str("😀"));
        assert!(Json::parse("\"\\ud83d\"").is_err(), "lone high surrogate");
    }

    #[test]
    fn strict_rejections() {
        for bad in [
            "",
            "{a:1}",
            "{\"a\":NaN}",
            "{\"a\":Infinity}",
            "{\"a\":1,}",
            "[1,]",
            "{\"a\":1} extra",
            "{\"a\":1,\"a\":2}",
            "01",
            "1.",
            ".5",
            "+1",
            "\"unterminated",
            "{\"a\"}",
            "nul",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn object_order_is_preserved() {
        let v = Json::parse("{\"z\":1,\"a\":2}").unwrap();
        let members = v.as_object().unwrap();
        assert_eq!(members[0].0, "z");
        assert_eq!(members[1].0, "a");
        assert_eq!(v.encode(), "{\"z\":1,\"a\":2}");
    }

    #[test]
    fn accessors_are_typed() {
        let v = Json::parse("{\"n\":3,\"s\":\"x\",\"b\":true,\"l\":[1],\"z\":null}").unwrap();
        let get = |k: &str| {
            v.as_object().unwrap().iter().find(|(key, _)| key == k).map(|(_, v)| v).unwrap()
        };
        assert_eq!(get("n").as_u64(), Some(3));
        assert_eq!(get("n").as_f64(), Some(3.0));
        assert_eq!(get("s").as_str(), Some("x"));
        assert_eq!(get("b").as_bool(), Some(true));
        assert_eq!(get("l").as_array().map(<[Json]>::len), Some(1));
        assert!(get("z").is_null());
        assert_eq!(get("s").as_u64(), None);
        // Fractions and negatives are not u64s.
        assert_eq!(Json::parse("1.5").unwrap().as_u64(), None);
        assert_eq!(Json::parse("-1").unwrap().as_u64(), None);
    }
}
