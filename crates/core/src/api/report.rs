//! Wire form of [`EvalReport`]: byte-stable serialisation plus the strict
//! inverse parse.
//!
//! Serialisation embeds the existing all-integer `to_json()` records
//! ([`SimStats::to_json`], [`ScenarioMetrics::to_json`]) wholesale, so a
//! report on the wire is byte-identical to what the sweep observers have
//! always logged.  Parsing reconstructs the full report, consuming —
//! without re-deriving — the derived fields those records carry
//! (`bus_utilization` inside stats, percentile bounds inside histograms);
//! re-serialising a parsed report regenerates them from the same integers,
//! so the round trip is the identity.
//!
//! One asymmetry is deliberate: a report carrying a
//! [`sim_error`](EvalReport::sim_error) serialises (sweeps must be able to
//! say why a point died) but does **not** parse back — the error type owns
//! simulator internals (FU references, port names) that have no wire
//! schema, so such reports are one-way.

use std::collections::BTreeMap;

use taco_estimate::{Estimate, ExternalCam, PhysicalEstimate};
use taco_isa::{FuKind, FuRef};
use taco_sim::SimStats;
use taco_workload::{
    CoherenceStats, FaultMetrics, FlowStats, LatencyHistogram, ScenarioMetrics, Workload,
    LATENCY_BUCKETS,
};

use super::json::Json;
use super::{
    f64_json, parse_table_kind, rate_from_value, rate_to_json, ApiError, ConfigSpec, Fields,
    MachineSpec,
};
use crate::evaluate::{EvalReport, TraceError};

/// One golden-fixture cell line for `report` — exactly the format pinned
/// by `crates/core/tests/golden/table1.json` (label, min frequency, bus
/// utilisation, area and power; `null` area/power for infeasible cells).
///
/// This is the same serialisation the golden test has always used, hoisted
/// into the API so the daemon's `eval_result` responses can be compared
/// byte-for-byte against the fixture.
pub fn table1_cell_json(report: &EvalReport) -> String {
    let mut line = format!(
        "{{\"label\":\"{}\",\"min_freq_hz\":{},\"bus_utilization\":{}",
        report.config.label(),
        f64_json(report.required_frequency_hz),
        f64_json(report.bus_utilization),
    );
    match report.estimate.feasible() {
        Some(e) => {
            line.push_str(&format!(
                ",\"area_mm2\":{},\"power_w\":{}}}",
                f64_json(e.area_mm2),
                f64_json(e.power_w)
            ));
        }
        None => line.push_str(",\"area_mm2\":null,\"power_w\":null}"),
    }
    line
}

fn estimate_to_json(estimate: &Estimate) -> String {
    match estimate {
        Estimate::Feasible(e) => {
            let cam = match &e.cam {
                Some(c) => format!(
                    "{{\"avg_power_w\":{},\"footprint_mm2\":{}}}",
                    f64_json(c.avg_power_w),
                    f64_json(c.footprint_mm2)
                ),
                None => "null".to_owned(),
            };
            format!(
                "{{\"feasible\":true,\"freq_hz\":{},\"sized_gates\":{},\"sizing_factor\":{},\
                 \"area_mm2\":{},\"power_w\":{},\"cam\":{cam}}}",
                f64_json(e.freq_hz),
                f64_json(e.sized_gates),
                f64_json(e.sizing_factor),
                f64_json(e.area_mm2),
                f64_json(e.power_w),
            )
        }
        Estimate::Infeasible { required_hz, achievable_hz } => format!(
            "{{\"feasible\":false,\"required_hz\":{},\"achievable_hz\":{}}}",
            f64_json(*required_hz),
            f64_json(*achievable_hz),
        ),
    }
}

fn estimate_from_value(value: &Json) -> Result<Estimate, ApiError> {
    let mut f = Fields::new("estimate", value)?;
    let estimate = if f.req_bool("feasible")? {
        let cam = f
            .get_non_null("cam")
            .map(|v| {
                let mut c = Fields::new("estimate cam", v)?;
                let cam = ExternalCam {
                    avg_power_w: c.req_finite_f64("avg_power_w")?,
                    footprint_mm2: c.req_finite_f64("footprint_mm2")?,
                };
                c.finish()?;
                Ok::<_, ApiError>(cam)
            })
            .transpose()?;
        Estimate::Feasible(PhysicalEstimate {
            freq_hz: f.req_finite_f64("freq_hz")?,
            sized_gates: f.req_finite_f64("sized_gates")?,
            sizing_factor: f.req_finite_f64("sizing_factor")?,
            area_mm2: f.req_finite_f64("area_mm2")?,
            power_w: f.req_finite_f64("power_w")?,
            cam,
        })
    } else {
        Estimate::Infeasible {
            required_hz: f.req_f64_or_infinity("required_hz")?,
            achievable_hz: f.req_finite_f64("achievable_hz")?,
        }
    };
    f.finish()?;
    Ok(estimate)
}

fn fu_kind_by_name(name: &str) -> Result<FuKind, ApiError> {
    FuKind::ALL
        .into_iter()
        .find(|k| format!("{k}") == name)
        .ok_or_else(|| ApiError::bad_request(format!("stats: unknown FU kind {name:?}")))
}

fn fu_ref_by_name(name: &str) -> Result<FuRef, ApiError> {
    // Instance keys are `<asm_prefix><index>`; prefixes contain no digits.
    let split = name.find(|c: char| c.is_ascii_digit()).unwrap_or(name.len());
    let (prefix, index) = name.split_at(split);
    let kind = FuKind::from_asm_prefix(prefix)
        .ok_or_else(|| ApiError::bad_request(format!("stats: unknown FU instance {name:?}")))?;
    let index: u8 = index
        .parse()
        .map_err(|_| ApiError::bad_request(format!("stats: bad FU instance index {name:?}")))?;
    Ok(FuRef::new(kind, index))
}

fn stats_from_value(value: &Json) -> Result<SimStats, ApiError> {
    let mut f = Fields::new("stats", value)?;
    let mut stats = SimStats {
        cycles: f.req_u64("cycles")?,
        stall_cycles: f.req_u64("stall_cycles")?,
        injected_stall_cycles: f.req_u64("injected_stall_cycles")?,
        moves_executed: f.req_u64("moves_executed")?,
        moves_squashed: f.req_u64("moves_squashed")?,
        buses: f.req_u8("buses")?,
        ..SimStats::default()
    };
    // Derived from the counters above; consumed so the strict parse
    // accepts the record, regenerated on re-serialisation.
    f.req_finite_f64("bus_utilization")?;
    let mut triggers = BTreeMap::new();
    for (key, n) in f
        .req("fu_triggers")?
        .as_object()
        .ok_or_else(|| ApiError::bad_request("stats: \"fu_triggers\" must be an object"))?
    {
        let count = n
            .as_u64()
            .ok_or_else(|| ApiError::bad_request("stats: trigger counts must be integers"))?;
        triggers.insert(fu_kind_by_name(key)?, count);
    }
    stats.fu_triggers = triggers;
    let mut instances = BTreeMap::new();
    for (key, n) in f
        .req("fu_instance_triggers")?
        .as_object()
        .ok_or_else(|| ApiError::bad_request("stats: \"fu_instance_triggers\" must be an object"))?
    {
        let count = n
            .as_u64()
            .ok_or_else(|| ApiError::bad_request("stats: trigger counts must be integers"))?;
        instances.insert(fu_ref_by_name(key)?, count);
    }
    stats.fu_instance_triggers = instances;
    f.finish()?;
    Ok(stats)
}

fn histogram_from_value(ctx: &'static str, value: &Json) -> Result<LatencyHistogram, ApiError> {
    let mut f = Fields::new(ctx, value)?;
    let bucket_values = f
        .req("buckets")?
        .as_array()
        .ok_or_else(|| ApiError::bad_request(format!("{ctx}: \"buckets\" must be an array")))?;
    if bucket_values.len() != LATENCY_BUCKETS {
        return Err(ApiError::bad_request(format!(
            "{ctx}: expected {LATENCY_BUCKETS} buckets, got {}",
            bucket_values.len()
        )));
    }
    let mut buckets = [0u64; LATENCY_BUCKETS];
    for (slot, v) in buckets.iter_mut().zip(bucket_values) {
        *slot = v
            .as_u64()
            .ok_or_else(|| ApiError::bad_request(format!("{ctx}: buckets must be integers")))?;
    }
    let count = f.req_u64("count")?;
    let total_ticks = f.req_u64("total_ticks")?;
    let max = f.req_u64("max")?;
    // Derived percentile bounds and mean: consumed, regenerated on
    // re-serialisation.
    for derived in ["p50", "p90", "p99", "mean_milli"] {
        f.req_u64(derived)?;
    }
    f.finish()?;
    Ok(LatencyHistogram::from_parts(buckets, count, total_ticks, max))
}

fn flow_stats_from_value(value: &Json) -> Result<FlowStats, ApiError> {
    let mut f = Fields::new("flow stats", value)?;
    let stats = FlowStats {
        flows: f.req_u64("flows")?,
        packets: f.req_u64("packets")?,
        max_flow_len: f.req_u64("max_flow_len")?,
        small: f.req_u64("small")?,
        medium: f.req_u64("medium")?,
        large: f.req_u64("large")?,
    };
    f.finish()?;
    Ok(stats)
}

fn fault_metrics_from_value(value: &Json) -> Result<FaultMetrics, ApiError> {
    let mut f = Fields::new("fault metrics", value)?;
    let metrics = FaultMetrics {
        injected_malformed: f.req_u64("injected_malformed")?,
        injected_hop_limit: f.req_u64("injected_hop_limit")?,
        injected_corruptions: f.req_u64("injected_corruptions")?,
        injected_flaps: f.req_u64("injected_flaps")?,
        detected_malformed: f.req_u64("detected_malformed")?,
        detected_hop_limit: f.req_u64("detected_hop_limit")?,
        dropped_link_down: f.req_u64("dropped_link_down")?,
        recovered: f.req_u64("recovered")?,
        unrecovered: f.req_u64("unrecovered")?,
        recovery: histogram_from_value("recovery histogram", f.req("recovery")?)?,
    };
    f.finish()?;
    Ok(metrics)
}

fn coherence_from_value(value: &Json) -> Result<CoherenceStats, ApiError> {
    let mut f = Fields::new("coherence metrics", value)?;
    let stats = CoherenceStats {
        reads: f.req_u64("reads")?,
        writes: f.req_u64("writes")?,
        hits: f.req_u64("hits")?,
        misses: f.req_u64("misses")?,
        invalidations: f.req_u64("invalidations")?,
        upgrade_stalls: f.req_u64("upgrade_stalls")?,
        writebacks: f.req_u64("writebacks")?,
        stall_cycles: f.req_u64("stall_cycles")?,
        transactions: f.req_u64("transactions")?,
        busy_cycles: f.req_u64("busy_cycles")?,
    };
    f.finish()?;
    Ok(stats)
}

/// Scenario names are `&'static str` on [`ScenarioMetrics`]; resolve a
/// parsed name back to the builtin's static string.
fn static_scenario_name(name: &str) -> Result<&'static str, ApiError> {
    Workload::builtin()
        .iter()
        .map(|w| w.name())
        .find(|n| *n == name)
        .ok_or_else(|| ApiError::bad_request(format!("scenario: unknown name {name:?}")))
}

fn scenario_from_value(value: &Json) -> Result<ScenarioMetrics, ApiError> {
    let mut f = Fields::new("scenario", value)?;
    let metrics = ScenarioMetrics {
        scenario: static_scenario_name(f.req_str("scenario")?)?,
        kind: parse_table_kind(f.req_str("kind")?).map_err(ApiError::bad_request)?,
        seed: f.req_u64("seed")?,
        ticks: f.req_u64("ticks")?,
        offered: f.req_u64("offered")?,
        forwarded: f.req_u64("forwarded")?,
        delivered: f.req_u64("delivered")?,
        dropped_no_route: f.req_u64("dropped_no_route")?,
        dropped_overflow: f.req_u64("dropped_overflow")?,
        max_queue_depth: f.req_u64("max_queue_depth")?,
        final_backlog: f.req_u64("final_backlog")?,
        latency: histogram_from_value("latency histogram", f.req("latency")?)?,
        table_updates: f.req_u64("table_updates")?,
        update_latency: histogram_from_value("update latency histogram", f.req("update_latency")?)?,
        ripng_sent: f.req_u64("ripng_sent")?,
        throughput_milli: f.req_u64("throughput_milli")?,
        table_memory_words: f.req_u64("table_memory_words")?,
        flows: f.get_non_null("flows").map(flow_stats_from_value).transpose()?,
        faults: f.get_non_null("faults").map(fault_metrics_from_value).transpose()?,
        coherence: f.get_non_null("coherence").map(coherence_from_value).transpose()?,
    };
    f.finish()?;
    Ok(metrics)
}

/// Serialises a full report as one line of JSON with a fixed key order.
///
/// `scenario`, `sim_error` and `trace_error` are omitted when absent, so
/// plain reports stay byte-identical as features accrete.  The machine
/// configuration is emitted as its [`MachineSpec`] wire form (flat for
/// single-core systems, nested for multi-core); for the
/// (in-tree-unreachable) case of a hand-built machine outside that family,
/// the nearest spec is emitted and the round trip is lossy.
pub fn report_to_json(report: &EvalReport) -> String {
    let config_spec = MachineSpec::from_config(&report.config).unwrap_or(MachineSpec {
        core: ConfigSpec {
            table: report.config.table,
            buses: report.config.machine.buses(),
            replication: report.config.machine.fu_count(FuKind::Matcher),
            memory_ports: report.config.machine.fu_count(FuKind::Mmu),
        },
        system: report.config.system,
    });
    let mut s = format!(
        "{{\"label\":{},\"config\":{},\"rate\":{},\"entries\":{},\
         \"cycles_per_datagram\":{},\"bus_utilization\":{},\"required_frequency_hz\":{},\
         \"rtu_latency_cycles\":{},\"program_bits\":{},\"estimate\":{},\"stats\":{}",
        Json::str(report.config.label()).encode(),
        config_spec.to_json(),
        rate_to_json(&report.line_rate),
        report.table_entries,
        f64_json(report.cycles_per_datagram),
        f64_json(report.bus_utilization),
        f64_json(report.required_frequency_hz),
        report.rtu_latency_cycles,
        report.program_bits,
        estimate_to_json(&report.estimate),
        report.stats.to_json(),
    );
    if let Some(scenario) = &report.scenario {
        s.push_str(",\"scenario\":");
        s.push_str(&scenario.to_json());
    }
    if let Some(error) = &report.sim_error {
        s.push_str(",\"sim_error\":");
        s.push_str(&Json::str(error.to_string()).encode());
    }
    if let Some(error) = &report.trace_error {
        s.push_str(",\"trace_error\":{\"path\":");
        s.push_str(&Json::str(error.path.clone()).encode());
        s.push_str(",\"message\":");
        s.push_str(&Json::str(error.message.clone()).encode());
        s.push('}');
    }
    s.push('}');
    s
}

pub(crate) fn report_from_value(value: &Json) -> Result<EvalReport, ApiError> {
    let mut f = Fields::new("report", value)?;
    if f.get_non_null("sim_error").is_some() {
        return Err(ApiError::bad_request(
            "report: reports carrying a sim_error are one-way (the simulator error type has \
             no wire schema)",
        ));
    }
    let label = f.req_str("label")?;
    let config_spec = MachineSpec::from_value(f.req("config")?)?;
    let config = config_spec.to_config()?;
    if config.label() != label {
        return Err(ApiError::bad_request(format!(
            "report: label {label:?} does not match config {:?}",
            config.label()
        )));
    }
    let trace_error = f
        .get_non_null("trace_error")
        .map(|v| {
            let mut t = Fields::new("trace error", v)?;
            let error = TraceError {
                path: t.req_str("path")?.to_owned(),
                message: t.req_str("message")?.to_owned(),
            };
            t.finish()?;
            Ok::<_, ApiError>(error)
        })
        .transpose()?;
    let report = EvalReport {
        config,
        line_rate: rate_from_value(f.req("rate")?)?,
        table_entries: f.req_usize("entries")?,
        cycles_per_datagram: f.req_f64_or_infinity("cycles_per_datagram")?,
        bus_utilization: f.req_finite_f64("bus_utilization")?,
        required_frequency_hz: f.req_f64_or_infinity("required_frequency_hz")?,
        rtu_latency_cycles: f.req_u32("rtu_latency_cycles")?,
        program_bits: f.req_u64("program_bits")?,
        estimate: estimate_from_value(f.req("estimate")?)?,
        stats: stats_from_value(f.req("stats")?)?,
        scenario: f.get_non_null("scenario").map(scenario_from_value).transpose()?,
        sim_error: None,
        trace_error,
    };
    f.finish()?;
    Ok(report)
}

/// Parses a report line produced by [`report_to_json`] back into an
/// [`EvalReport`].
///
/// # Errors
///
/// A structured [`ApiError`] for malformed JSON, unknown or missing
/// fields, or a report carrying a `sim_error` (one-way, see the module
/// docs).
pub fn report_from_json(text: &str) -> Result<EvalReport, ApiError> {
    let value = Json::parse(text).map_err(|e| ApiError::bad_request(e.to_string()))?;
    report_from_value(&value)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::ArchConfig;
    use crate::request::EvalRequest;
    use taco_routing::TableKind;
    use taco_workload::FaultPlan;

    fn roundtrip(report: &EvalReport) {
        let line = report_to_json(report);
        assert!(!line.contains('\n'), "single line: {line}");
        let parsed = report_from_json(&line).unwrap_or_else(|e| panic!("{e}: {line}"));
        assert_eq!(&parsed, report);
        assert_eq!(report_to_json(&parsed), line, "serialisation is a fixed point");
    }

    #[test]
    fn plain_report_round_trips() {
        let report =
            EvalRequest::new(ArchConfig::three_bus_one_fu(TableKind::Cam)).entries(8).run();
        roundtrip(&report);
    }

    #[test]
    fn infeasible_report_round_trips() {
        let report =
            EvalRequest::new(ArchConfig::one_bus_one_fu(TableKind::Sequential)).entries(64).run();
        assert!(!report.is_feasible());
        roundtrip(&report);
    }

    #[test]
    fn scenario_and_fault_report_round_trips() {
        let report = EvalRequest::new(ArchConfig::three_bus_one_fu(TableKind::BalancedTree))
            .entries(8)
            .workload(Workload::burst_overload())
            .faults(FaultPlan::storm())
            .run();
        assert!(report.scenario.as_ref().is_some_and(|s| s.faults.is_some()));
        roundtrip(&report);
    }

    #[test]
    fn multicore_report_round_trips_with_a_nested_config() {
        let config = ArchConfig::three_bus_one_fu(TableKind::Cam)
            .with_system(taco_isa::SystemConfig::with_cores(4).topology(taco_isa::Topology::Mesh));
        let report = EvalRequest::new(config).entries(8).workload(Workload::table_churn()).run();
        let line = report_to_json(&report);
        assert!(line.contains("\"label\":\"cam 3BUS/1FU 4c-mesh-mesi\""), "{line}");
        assert!(line.contains("\"config\":{\"core\":{"), "{line}");
        assert!(line.contains("\"coherence\":{\"reads\":"), "{line}");
        roundtrip(&report);
    }

    #[test]
    fn trace_error_round_trips() {
        let mut report =
            EvalRequest::new(ArchConfig::three_bus_one_fu(TableKind::Cam)).entries(8).run();
        report.trace_error = Some(TraceError {
            path: "/no/such/dir/trace.json".into(),
            message: "No such file or directory (os error 2)".into(),
        });
        roundtrip(&report);
    }

    #[test]
    fn sim_error_reports_are_one_way() {
        let request = EvalRequest::new(ArchConfig::three_bus_one_fu(TableKind::Cam));
        let report = crate::evaluate::evaluate_request(&EvalRequest {
            config: ArchConfig::new(
                taco_isa::MachineConfig::new(1), // too little datapath: microcode cannot fit
                TableKind::Cam,
            ),
            ..request
        });
        // Either the instance simulates (fine) or it carries a sim_error;
        // exercise the one-way path with a synthetic error if needed.
        let mut report = report;
        if report.sim_error.is_none() {
            report.sim_error = Some(taco_sim::SimError::UnresolvedLabel("loop".into()));
        }
        let line = report_to_json(&report);
        assert!(line.contains("\"sim_error\":"), "{line}");
        let err = report_from_json(&line).unwrap_err();
        assert!(err.message.contains("one-way"), "{err}");
    }

    #[test]
    fn cell_json_matches_the_golden_shape() {
        let report =
            EvalRequest::new(ArchConfig::three_bus_one_fu(TableKind::Cam)).entries(8).run();
        let cell = table1_cell_json(&report);
        assert!(cell.starts_with("{\"label\":\"cam 3BUS/1FU\""), "{cell}");
        for key in ["\"min_freq_hz\":", "\"bus_utilization\":", "\"area_mm2\":", "\"power_w\":"] {
            assert!(cell.contains(key), "{key} missing from {cell}");
        }
        assert!(Json::parse(&cell).is_ok(), "{cell}");

        let na =
            EvalRequest::new(ArchConfig::one_bus_one_fu(TableKind::Sequential)).entries(64).run();
        let cell = table1_cell_json(&na);
        assert!(cell.ends_with("\"area_mm2\":null,\"power_w\":null}"), "{cell}");
    }

    #[test]
    fn label_config_mismatch_is_rejected() {
        let report =
            EvalRequest::new(ArchConfig::three_bus_one_fu(TableKind::Cam)).entries(8).run();
        let line = report_to_json(&report).replace("\"table\":\"cam\"", "\"table\":\"trie\"");
        let err = report_from_json(&line).unwrap_err();
        assert!(err.message.contains("label"), "{err}");
    }

    #[test]
    fn unknown_report_fields_are_rejected() {
        let report =
            EvalRequest::new(ArchConfig::three_bus_one_fu(TableKind::Cam)).entries(8).run();
        let line = report_to_json(&report).replacen("{\"label\"", "{\"zzz\":1,\"label\"", 1);
        let err = report_from_json(&line).unwrap_err();
        assert!(err.message.contains("zzz"), "{err}");
    }
}
