//! The versioned JSON wire API: one schema shared by the daemon, the CLI
//! flags and the builder pipeline.
//!
//! Everything that crosses a process boundary — a `taco-served` request, a
//! cache snapshot entry, a client response — is one line of strict JSON
//! with an explicit `"api_version"` field.  Two schema versions coexist:
//!
//! * [`API_VERSION`] (`"v1"`) is the original one-shot dialect — one
//!   request per connection, responses in submission order, no request
//!   identity.  [`ApiRequest::from_json`]/[`ApiResponse::from_json`] speak
//!   it and reject everything else, which is what keeps the golden daemon
//!   fixtures byte-stable.
//! * [`API_VERSION_V2`] (`"v2"`) is the multiplexed session dialect: every
//!   request carries a client-chosen `"id"` echoed on all of its response
//!   lines, so many requests can be in flight on one persistent connection
//!   and their (possibly interleaved) streams can be told apart.  The v2
//!   envelope also admits the sweep-sharding fields (`"shard"`) and the
//!   cache-exchange operations (`cache_export`/`cache_import`) that the
//!   coordinator uses to split one sweep across worker daemons.
//!   [`WireRequest`]/[`WireResponse`] sniff the version and parse either
//!   dialect.
//!
//! The
//! same types also back the in-process entry points: [`EvalSpec`] is the
//! validated construction path for [`EvalRequest`], and the name-based
//! parsers ([`parse_table_kind`], [`parse_workload_name`],
//! [`parse_fault_plan_name`], [`parse_machine_spec`]) are the single
//! source of truth the `dse`/`trace` binaries and the wire layer share, so
//! a workload name means the same thing on a command line and on a socket.
//!
//! Machine configurations cross the wire as a [`MachineSpec`]: the
//! per-core [`ConfigSpec`] plus the multi-core [`SystemConfig`] built
//! from it.  The codec is form-sniffed — a default single-core system
//! keeps the original flat `{"table":...,"buses":...}` spelling (so every
//! pre-multicore request line and golden fixture keeps its bytes), and a
//! non-default system nests the core under a `"core"` member alongside
//! `"cores"`, `"cache"`, `"interconnect"` and `"coherence"`.
//!
//! Parsing is *strict*: unknown fields are rejected (a typo'd option must
//! not be silently ignored), version mismatches are reported as
//! [`ApiErrorCode::VersionMismatch`], and every failure is a structured
//! [`ApiError`] rather than a panic.  Serialisation follows the workspace's
//! byte-stability discipline: fixed key order, integers verbatim, floats
//! via the shortest-round-trip `Display` (exact under re-parse), and
//! non-finite floats as `null` (JSON has no `Infinity` literal; the only
//! producers are infeasible cells, where `null` mirrors the paper's "NA").

pub mod json;
mod report;

pub(crate) use report::report_from_value;
pub use report::{report_from_json, report_to_json, table1_cell_json};

use std::sync::Arc;

use taco_isa::{
    CacheConfig, CoherenceProtocol, InterconnectConfig, SystemConfig, Topology, MAX_CORES,
};
use taco_routing::TableKind;
use taco_sim::StepMode;
use taco_workload::{FaultPlan, FlowTrace, Workload};

use crate::arch::ArchConfig;
use crate::evaluate::EvalReport;
use crate::explorer::{Constraints, SweepSpec};
use crate::rate::LineRate;
use crate::request::EvalRequest;
use json::Json;

/// The one-shot wire schema version (one request per connection).
pub const API_VERSION: &str = "v1";

/// The multiplexed session schema version (persistent connections, every
/// request id-tagged, sweep sharding and cache exchange available).
pub const API_VERSION_V2: &str = "v2";

/// Machine-readable failure classes, the `"code"` field of an error
/// response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ApiErrorCode {
    /// The request was malformed: bad JSON, a missing or unknown field, an
    /// out-of-range value.
    BadRequest,
    /// The request named a schema version this server does not speak.
    VersionMismatch,
    /// The daemon's job queue is at `max_pending` capacity — the
    /// 429-equivalent; retry after drain.
    Busy,
    /// The daemon is draining for shutdown and admits no new work.
    ShuttingDown,
    /// The server failed internally (snapshot IO, a poisoned lock, ...).
    Internal,
}

impl ApiErrorCode {
    /// Every machine code, in wire-spelling order — the single exhaustive
    /// list the server, `taco-cli` and the round-trip tests share, so a
    /// new code cannot exist without a wire spelling and a parse.
    pub const ALL: [ApiErrorCode; 5] = [
        ApiErrorCode::BadRequest,
        ApiErrorCode::VersionMismatch,
        ApiErrorCode::Busy,
        ApiErrorCode::ShuttingDown,
        ApiErrorCode::Internal,
    ];

    /// `true` for the codes a client may retry verbatim after a delay (the
    /// daemon was healthy but temporarily unable to admit the request).
    pub fn is_retryable(self) -> bool {
        matches!(self, ApiErrorCode::Busy)
    }

    /// The wire spelling of the code.
    pub fn as_str(self) -> &'static str {
        match self {
            ApiErrorCode::BadRequest => "bad_request",
            ApiErrorCode::VersionMismatch => "version_mismatch",
            ApiErrorCode::Busy => "busy",
            ApiErrorCode::ShuttingDown => "shutting_down",
            ApiErrorCode::Internal => "internal",
        }
    }

    /// Parses a wire spelling back to a code.
    pub fn from_str_opt(s: &str) -> Option<ApiErrorCode> {
        Some(match s {
            "bad_request" => ApiErrorCode::BadRequest,
            "version_mismatch" => ApiErrorCode::VersionMismatch,
            "busy" => ApiErrorCode::Busy,
            "shutting_down" => ApiErrorCode::ShuttingDown,
            "internal" => ApiErrorCode::Internal,
            _ => return None,
        })
    }
}

/// A structured wire-layer failure: a machine-readable code plus a
/// human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ApiError {
    /// The failure class.
    pub code: ApiErrorCode,
    /// What went wrong, for humans.
    pub message: String,
}

impl ApiError {
    /// A [`ApiErrorCode::BadRequest`] error.
    pub fn bad_request(message: impl Into<String>) -> Self {
        ApiError { code: ApiErrorCode::BadRequest, message: message.into() }
    }

    /// A [`ApiErrorCode::VersionMismatch`] error naming the found version
    /// and the supported ones.
    pub fn version_mismatch(found: &str) -> Self {
        ApiError {
            code: ApiErrorCode::VersionMismatch,
            message: format!(
                "api_version {found:?} is not supported; this server speaks {API_VERSION:?} \
                 and {API_VERSION_V2:?}"
            ),
        }
    }

    /// A [`ApiErrorCode::Busy`] rejection.
    pub fn busy(message: impl Into<String>) -> Self {
        ApiError { code: ApiErrorCode::Busy, message: message.into() }
    }

    /// A [`ApiErrorCode::ShuttingDown`] rejection.
    pub fn shutting_down() -> Self {
        ApiError {
            code: ApiErrorCode::ShuttingDown,
            message: "server is draining for shutdown".into(),
        }
    }

    /// An [`ApiErrorCode::Internal`] error.
    pub fn internal(message: impl Into<String>) -> Self {
        ApiError { code: ApiErrorCode::Internal, message: message.into() }
    }
}

impl std::fmt::Display for ApiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.code.as_str(), self.message)
    }
}

impl std::error::Error for ApiError {}

/// Strict field access over one JSON object: every member must be consumed
/// by the time [`Fields::finish`] runs, which is what rejects unknown
/// fields with a structured error instead of ignoring them.
pub(crate) struct Fields<'a> {
    ctx: &'static str,
    members: &'a [(String, Json)],
    used: Vec<bool>,
}

impl<'a> Fields<'a> {
    pub(crate) fn new(ctx: &'static str, value: &'a Json) -> Result<Self, ApiError> {
        let members = value
            .as_object()
            .ok_or_else(|| ApiError::bad_request(format!("{ctx} must be a JSON object")))?;
        Ok(Fields { ctx, members, used: vec![false; members.len()] })
    }

    /// The member named `name`, marking it consumed; `None` when absent.
    pub(crate) fn get(&mut self, name: &str) -> Option<&'a Json> {
        let i = self.members.iter().position(|(k, _)| k == name)?;
        self.used[i] = true;
        Some(&self.members[i].1)
    }

    /// Like [`Fields::get`], but a `null` value also reads as absent.
    pub(crate) fn get_non_null(&mut self, name: &str) -> Option<&'a Json> {
        self.get(name).filter(|v| !v.is_null())
    }

    /// The member named `name`, or a structured missing-field error.
    pub(crate) fn req(&mut self, name: &str) -> Result<&'a Json, ApiError> {
        let ctx = self.ctx;
        self.get(name)
            .ok_or_else(|| ApiError::bad_request(format!("{ctx}: missing field {name:?}")))
    }

    pub(crate) fn req_str(&mut self, name: &str) -> Result<&'a str, ApiError> {
        let ctx = self.ctx;
        self.req(name)?
            .as_str()
            .ok_or_else(|| ApiError::bad_request(format!("{ctx}: {name:?} must be a string")))
    }

    pub(crate) fn req_u64(&mut self, name: &str) -> Result<u64, ApiError> {
        let ctx = self.ctx;
        self.req(name)?.as_u64().ok_or_else(|| {
            ApiError::bad_request(format!("{ctx}: {name:?} must be an unsigned integer"))
        })
    }

    pub(crate) fn req_u32(&mut self, name: &str) -> Result<u32, ApiError> {
        let ctx = self.ctx;
        let v = self.req_u64(name)?;
        u32::try_from(v)
            .map_err(|_| ApiError::bad_request(format!("{ctx}: {name:?} must fit in 32 bits")))
    }

    pub(crate) fn req_u16(&mut self, name: &str) -> Result<u16, ApiError> {
        let ctx = self.ctx;
        let v = self.req_u64(name)?;
        u16::try_from(v)
            .map_err(|_| ApiError::bad_request(format!("{ctx}: {name:?} must fit in 16 bits")))
    }

    pub(crate) fn req_u8(&mut self, name: &str) -> Result<u8, ApiError> {
        let ctx = self.ctx;
        let v = self.req_u64(name)?;
        u8::try_from(v)
            .map_err(|_| ApiError::bad_request(format!("{ctx}: {name:?} must fit in 8 bits")))
    }

    pub(crate) fn req_usize(&mut self, name: &str) -> Result<usize, ApiError> {
        let ctx = self.ctx;
        let v = self.req_u64(name)?;
        usize::try_from(v)
            .map_err(|_| ApiError::bad_request(format!("{ctx}: {name:?} is out of range")))
    }

    pub(crate) fn req_bool(&mut self, name: &str) -> Result<bool, ApiError> {
        let ctx = self.ctx;
        self.req(name)?
            .as_bool()
            .ok_or_else(|| ApiError::bad_request(format!("{ctx}: {name:?} must be a boolean")))
    }

    /// A required finite float.
    pub(crate) fn req_finite_f64(&mut self, name: &str) -> Result<f64, ApiError> {
        let ctx = self.ctx;
        self.req(name)?.as_f64().ok_or_else(|| {
            ApiError::bad_request(format!("{ctx}: {name:?} must be a finite number"))
        })
    }

    /// A required float under the non-finite convention: `null` decodes as
    /// `f64::INFINITY` (the wire spelling of an infeasible requirement).
    pub(crate) fn req_f64_or_infinity(&mut self, name: &str) -> Result<f64, ApiError> {
        let ctx = self.ctx;
        let v = self.req(name)?;
        if v.is_null() {
            return Ok(f64::INFINITY);
        }
        v.as_f64().ok_or_else(|| {
            ApiError::bad_request(format!("{ctx}: {name:?} must be a number or null"))
        })
    }

    /// Errors on the first unconsumed member — the strict-parse guarantee.
    pub(crate) fn finish(self) -> Result<(), ApiError> {
        for (i, (key, _)) in self.members.iter().enumerate() {
            if !self.used[i] {
                return Err(ApiError::bad_request(format!("{}: unknown field {key:?}", self.ctx)));
            }
        }
        Ok(())
    }
}

/// Encodes a float for the wire: shortest-round-trip `Display` for finite
/// values, `null` otherwise.
pub(crate) fn f64_json(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_owned()
    }
}

// ---------------------------------------------------------------------------
// Name-based parsers: the single validation path shared by CLI and wire.
// ---------------------------------------------------------------------------

/// Parses a routing-table organisation by its display name (`sequential`,
/// `balanced-tree`, `cam`, `trie`, `patricia`; aliases `seq`, `tree`,
/// `pat`).  The error message lists the accepted names — shared verbatim
/// by the `trace` binary and the wire schema (both v1 and v2 dialects
/// funnel through here, so an unknown kind is a structured `bad_request`
/// on every path).
pub fn parse_table_kind(name: &str) -> Result<TableKind, String> {
    match name {
        "sequential" | "seq" => Ok(TableKind::Sequential),
        "balanced-tree" | "tree" => Ok(TableKind::BalancedTree),
        "cam" => Ok(TableKind::Cam),
        "trie" => Ok(TableKind::Trie),
        "patricia" | "pat" => Ok(TableKind::Patricia),
        other => Err(format!(
            "unknown table kind {other:?}; expected sequential, balanced-tree, cam, trie or \
             patricia (aliases: seq, tree, pat)"
        )),
    }
}

/// Every accepted machine-shape spelling: the canonical
/// `<buses>x<replication>` shape first, then its documented aliases (the
/// paper's Table 1 column labels).  [`parse_machine_spec`] matches against
/// this table **and** generates its error message from it, so the list of
/// spellings an error names cannot drift from what the parser accepts.
const MACHINE_SPELLINGS: &[(&[&str], u8, u8)] = &[
    (&["1x1", "1BUS/1FU"], 1, 1),
    (&["3x1", "3BUS/1FU"], 3, 1),
    (&["3x3", "3bus/3CNT,3CMP,3M"], 3, 3),
];

/// Parses a machine shape (`1x1`, `3x1`, `3x3`, or the Table 1 label
/// aliases `1BUS/1FU`, `3BUS/1FU`, `3bus/3CNT,3CMP,3M`) into a
/// single-core [`MachineSpec`] over `kind` — the one shape parser the
/// wire schema, `taco-cli` and the bench binaries share.  Compose with
/// [`MachineSpec::with_system`] to scale the parsed shape to a multi-core
/// system.  The error message lists every accepted spelling, generated
/// from the same table the parser matches against.
pub fn parse_machine_spec(kind: TableKind, shape: &str) -> Result<MachineSpec, String> {
    for &(names, buses, replication) in MACHINE_SPELLINGS {
        if names.contains(&shape) {
            return Ok(MachineSpec::new(ConfigSpec::new(kind, buses, replication)));
        }
    }
    let accepted: Vec<&str> =
        MACHINE_SPELLINGS.iter().flat_map(|&(names, _, _)| names.iter().copied()).collect();
    Err(format!("unknown machine config {shape:?}; expected one of: {}", accepted.join(", ")))
}

/// Parses a machine shape into an architecture instance over `kind`.
#[deprecated(
    note = "use parse_machine_spec, which returns the wire-level MachineSpec and accepts \
            every documented alias"
)]
pub fn parse_machine_shape(kind: TableKind, shape: &str) -> Result<ArchConfig, String> {
    parse_machine_spec(kind, shape)
        .map(|spec| spec.to_config().expect("builtin shapes construct valid machines"))
}

/// Looks a builtin workload up by name; the error lists the valid names
/// (the single source the `dse --scenario` flag and the wire share).
pub fn parse_workload_name(name: &str) -> Result<Workload, String> {
    Workload::by_name(name).ok_or_else(|| {
        let names: Vec<&str> = Workload::builtin().iter().map(|w| w.name()).collect();
        format!("unknown scenario {name:?}; expected one of: {}", names.join(", "))
    })
}

/// Looks a builtin fault plan up by name; the error lists the valid names
/// (shared by `dse --faults` and the wire).
pub fn parse_fault_plan_name(name: &str) -> Result<FaultPlan, String> {
    FaultPlan::by_name(name).ok_or_else(|| {
        let names: Vec<&str> = FaultPlan::builtin().iter().map(|(n, _)| *n).collect();
        format!("unknown fault plan {name:?}; expected one of: {}", names.join(", "))
    })
}

/// Parses a simulator step mode by its wire spelling (`compiled`,
/// `interpretive`) — the single source the wire schema and the CLI flags
/// share, mirroring `TACO_STEP_MODE`'s accepted values.
pub fn parse_step_mode(name: &str) -> Result<StepMode, String> {
    match name {
        "compiled" => Ok(StepMode::Compiled),
        "interpretive" => Ok(StepMode::Interpretive),
        other => Err(format!("unknown step mode {other:?}; expected compiled or interpretive")),
    }
}

/// The wire spelling of a step mode ([`parse_step_mode`]'s inverse).
pub fn step_mode_name(mode: StepMode) -> &'static str {
    match mode {
        StepMode::Compiled => "compiled",
        StepMode::Interpretive => "interpretive",
    }
}

/// Validates a line rate the way [`LineRate::new`] does, as a `Result`
/// instead of a panic — the construction path wire requests and CLI flags
/// share.
pub fn validated_rate(bits_per_second: f64, packet_bytes: u32) -> Result<LineRate, String> {
    if !(bits_per_second.is_normal() && bits_per_second > 0.0) {
        return Err(format!("rate must be a positive finite number, got {bits_per_second}"));
    }
    if packet_bytes == 0 {
        return Err("packet size must be positive".to_owned());
    }
    Ok(LineRate { bits_per_second, packet_bytes })
}

// ---------------------------------------------------------------------------
// Leaf codecs: config, rate, workload, fault plan.
// ---------------------------------------------------------------------------

/// The wire shape of an architecture instance: routing-table organisation,
/// bus count, datapath replication and memory ports.
///
/// This spans every configuration the in-tree generators produce
/// ([`ArchConfig::with_replication`] composed with
/// [`ArchConfig::with_memory_ports`]); a hand-built [`MachineConfig`] with
/// *asymmetric* replication has no wire spelling and
/// [`ConfigSpec::from_config`] returns `None` for it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConfigSpec {
    /// Routing-table organisation.
    pub table: TableKind,
    /// Data buses (≥ 1).
    pub buses: u8,
    /// Instances of each replicable datapath unit (Counter, Comparator,
    /// Matcher together; ≥ 1).
    pub replication: u8,
    /// Data-memory ports (replicated MMU; ≥ 1).
    pub memory_ports: u8,
}

impl ConfigSpec {
    /// A spec with one memory port (the default everywhere but the
    /// memory-port ablation).
    pub fn new(table: TableKind, buses: u8, replication: u8) -> Self {
        ConfigSpec { table, buses, replication, memory_ports: 1 }
    }

    /// Builds the architecture instance, validating ranges (a zero bus or
    /// unit count is a structured error here, where the panicking
    /// constructors would abort a server).
    pub fn to_config(&self) -> Result<ArchConfig, ApiError> {
        if self.buses == 0 || self.replication == 0 || self.memory_ports == 0 {
            return Err(ApiError::bad_request(
                "config: buses, replication and memory_ports must all be >= 1",
            ));
        }
        let mut config = ArchConfig::with_replication(self.table, self.buses, self.replication);
        if self.memory_ports > 1 {
            config = config.with_memory_ports(self.memory_ports);
        }
        Ok(config)
    }

    /// The wire spelling of `config`, or `None` when the machine is not
    /// expressible (asymmetric replication).
    pub fn from_config(config: &ArchConfig) -> Option<ConfigSpec> {
        let machine = &config.machine;
        let replication = machine.fu_count(taco_isa::FuKind::Matcher);
        let spec = ConfigSpec {
            table: config.table,
            buses: machine.buses(),
            replication,
            memory_ports: machine.fu_count(taco_isa::FuKind::Mmu),
        };
        // Round-trip check: only machines the spec regenerates exactly are
        // expressible (this is what catches asymmetric replication).
        match spec.to_config() {
            Ok(rebuilt) if rebuilt == *config => Some(spec),
            _ => None,
        }
    }

    /// One-line JSON body (fixed key order).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"table\":\"{}\",\"buses\":{},\"replication\":{},\"memory_ports\":{}}}",
            self.table, self.buses, self.replication, self.memory_ports
        )
    }

    pub(crate) fn from_value(value: &Json) -> Result<ConfigSpec, ApiError> {
        let mut f = Fields::new("config", value)?;
        let table = parse_table_kind(f.req_str("table")?).map_err(ApiError::bad_request)?;
        let spec = ConfigSpec {
            table,
            buses: f.req_u8("buses")?,
            replication: f.req_u8("replication")?,
            memory_ports: f.get_non_null("memory_ports").map_or(Ok(1), |v| {
                v.as_u64().and_then(|n| u8::try_from(n).ok()).ok_or_else(|| {
                    ApiError::bad_request("config: \"memory_ports\" must fit in 8 bits")
                })
            })?,
        };
        f.finish()?;
        spec.to_config()?; // validate ranges eagerly
        Ok(spec)
    }
}

/// The structured wire shape of a whole machine: one per-core
/// [`ConfigSpec`] plus the multi-core [`SystemConfig`] built from it.
///
/// The codec is **form-sniffed** for compatibility.  A default
/// (single-core) system serialises as the flat [`ConfigSpec`] form —
/// byte-identical to the pre-multicore schema, which is what keeps every
/// v1/v2 golden fixture passing unmodified.  A non-default system nests
/// the per-core spec under a `"core"` member:
///
/// ```json
/// {"core":{"table":"cam","buses":3,"replication":1,"memory_ports":1},
///  "cores":4,"cache":{"lines":64,"line_words":4},
///  "interconnect":{"topology":"mesh","latency":2},"coherence":"mesi"}
/// ```
///
/// [`MachineSpec::from_value`] sniffs on the presence of `"core"` and
/// accepts either form; in the nested form `"cores"`, `"cache"`,
/// `"interconnect"` and `"coherence"` may each be omitted and default to
/// the single-core system's values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MachineSpec {
    /// The per-core machine: table organisation, buses, replication and
    /// memory ports.
    pub core: ConfigSpec,
    /// The system built from the cores: count, private table caches,
    /// interconnect and coherence protocol.
    pub system: SystemConfig,
}

impl From<ConfigSpec> for MachineSpec {
    fn from(core: ConfigSpec) -> Self {
        MachineSpec::new(core)
    }
}

impl MachineSpec {
    /// A single-core (default-system) spec over `core`.
    pub fn new(core: ConfigSpec) -> Self {
        MachineSpec { core, system: SystemConfig::default() }
    }

    /// Returns a copy with the given multi-core system.
    pub fn with_system(mut self, system: SystemConfig) -> Self {
        self.system = system;
        self
    }

    /// Builds the architecture instance, validating every range (core
    /// counts, cache geometry and interconnect latency are structured
    /// errors here, where the panicking constructors would abort a
    /// server).
    pub fn to_config(&self) -> Result<ArchConfig, ApiError> {
        if self.system.cores == 0 || self.system.cores > MAX_CORES {
            return Err(ApiError::bad_request(format!(
                "config: \"cores\" must be 1..={MAX_CORES}, got {}",
                self.system.cores
            )));
        }
        if self.system.cache.lines == 0 || self.system.cache.line_words == 0 {
            return Err(ApiError::bad_request(
                "config: cache \"lines\" and \"line_words\" must both be >= 1",
            ));
        }
        if self.system.interconnect.latency == 0 {
            return Err(ApiError::bad_request("config: interconnect \"latency\" must be >= 1"));
        }
        Ok(self.core.to_config()?.with_system(self.system))
    }

    /// The wire spelling of `config`, or `None` when the per-core machine
    /// is not expressible (asymmetric replication).
    pub fn from_config(config: &ArchConfig) -> Option<MachineSpec> {
        let mut single = config.clone();
        single.system = SystemConfig::single_core();
        Some(MachineSpec { core: ConfigSpec::from_config(&single)?, system: config.system })
    }

    /// One-line JSON body: the flat [`ConfigSpec`] form for a default
    /// system (pre-multicore bytes preserved), the nested `"core"`-keyed
    /// form otherwise (fixed key order, every member explicit).
    pub fn to_json(&self) -> String {
        if self.system.is_default() {
            return self.core.to_json();
        }
        format!(
            "{{\"core\":{},\"cores\":{},\"cache\":{{\"lines\":{},\"line_words\":{}}},\
             \"interconnect\":{{\"topology\":\"{}\",\"latency\":{}}},\"coherence\":\"{}\"}}",
            self.core.to_json(),
            self.system.cores,
            self.system.cache.lines,
            self.system.cache.line_words,
            self.system.interconnect.topology,
            self.system.interconnect.latency,
            self.system.protocol,
        )
    }

    /// Parses either wire form back into a spec: the flat [`ConfigSpec`]
    /// object, or the nested `"core"`-keyed multicore form (the inverse of
    /// [`MachineSpec::to_json`]).  Unknown fields and out-of-range values
    /// are structured `bad_request` errors naming the field.
    pub fn from_json(json: &str) -> Result<MachineSpec, ApiError> {
        let value = Json::parse(json)
            .map_err(|e| ApiError::bad_request(format!("config: invalid JSON: {e}")))?;
        MachineSpec::from_value(&value)
    }

    pub(crate) fn from_value(value: &Json) -> Result<MachineSpec, ApiError> {
        let nested = value.as_object().is_some_and(|m| m.iter().any(|(k, _)| k == "core"));
        if !nested {
            return Ok(MachineSpec::new(ConfigSpec::from_value(value)?));
        }
        let mut f = Fields::new("config", value)?;
        let core = ConfigSpec::from_value(f.req("core")?)?;
        let mut system = SystemConfig::single_core();
        if let Some(v) = f.get_non_null("cores") {
            system.cores = v
                .as_u64()
                .and_then(|n| u8::try_from(n).ok())
                .ok_or_else(|| ApiError::bad_request("config: \"cores\" must fit in 8 bits"))?;
        }
        if let Some(v) = f.get_non_null("cache") {
            let mut c = Fields::new("config cache", v)?;
            system.cache =
                CacheConfig { lines: c.req_u16("lines")?, line_words: c.req_u8("line_words")? };
            c.finish()?;
        }
        if let Some(v) = f.get_non_null("interconnect") {
            let mut i = Fields::new("config interconnect", v)?;
            let name = i.req_str("topology")?;
            system.interconnect = InterconnectConfig {
                topology: Topology::by_name(name).ok_or_else(|| unknown_topology(name))?,
                latency: i.req_u8("latency")?,
            };
            i.finish()?;
        }
        if let Some(v) = f.get_non_null("coherence") {
            let name = v
                .as_str()
                .ok_or_else(|| ApiError::bad_request("config: \"coherence\" must be a string"))?;
            system.protocol =
                CoherenceProtocol::by_name(name).ok_or_else(|| unknown_protocol(name))?;
        }
        f.finish()?;
        let spec = MachineSpec { core, system };
        spec.to_config()?; // validate ranges eagerly
        Ok(spec)
    }
}

/// The structured error for an unknown interconnect topology, listing the
/// accepted names (generated from [`Topology::ALL`], so it cannot drift).
fn unknown_topology(name: &str) -> ApiError {
    let names: Vec<&str> = Topology::ALL.iter().map(|t| t.name()).collect();
    ApiError::bad_request(format!(
        "config: unknown topology {name:?}; expected one of: {} (alias: bus)",
        names.join(", ")
    ))
}

/// The structured error for an unknown coherence protocol, listing the
/// accepted names (generated from [`CoherenceProtocol::ALL`]).
fn unknown_protocol(name: &str) -> ApiError {
    let names: Vec<&str> = CoherenceProtocol::ALL.iter().map(|p| p.name()).collect();
    ApiError::bad_request(format!(
        "config: unknown coherence protocol {name:?}; expected one of: {}",
        names.join(", ")
    ))
}

/// The spec features this build supports — the `"features"` member every
/// `status_result` carries: the core-count ceiling and the known
/// interconnect topologies and coherence protocols, generated from the
/// same constants the [`MachineSpec`] parser accepts.
pub fn supported_features_json() -> String {
    let quoted =
        |xs: Vec<&str>| xs.iter().map(|n| format!("\"{n}\"")).collect::<Vec<_>>().join(",");
    format!(
        "{{\"max_cores\":{MAX_CORES},\"topologies\":[{}],\"protocols\":[{}]}}",
        quoted(Topology::ALL.iter().map(|t| t.name()).collect()),
        quoted(CoherenceProtocol::ALL.iter().map(|p| p.name()).collect()),
    )
}

pub(crate) fn rate_to_json(rate: &LineRate) -> String {
    format!(
        "{{\"bits_per_second\":{},\"packet_bytes\":{}}}",
        f64_json(rate.bits_per_second),
        rate.packet_bytes
    )
}

pub(crate) fn rate_from_value(value: &Json) -> Result<LineRate, ApiError> {
    let mut f = Fields::new("rate", value)?;
    let bits = f.req_finite_f64("bits_per_second")?;
    let packet_bytes = f.req_u32("packet_bytes")?;
    f.finish()?;
    validated_rate(bits, packet_bytes).map_err(|e| ApiError::bad_request(format!("rate: {e}")))
}

pub(crate) fn workload_to_json(w: &Workload) -> String {
    match *w {
        Workload::SteadyForward { seed, ticks, packets_per_tick, entries } => format!(
            "{{\"name\":\"steady-forward\",\"seed\":{seed},\"ticks\":{ticks},\
             \"packets_per_tick\":{packets_per_tick},\"entries\":{entries}}}"
        ),
        Workload::BurstOverload {
            seed,
            ticks,
            mean_per_tick_milli,
            burst_every,
            burst_len,
            burst_multiplier,
            entries,
        } => format!(
            "{{\"name\":\"burst-overload\",\"seed\":{seed},\"ticks\":{ticks},\
             \"mean_per_tick_milli\":{mean_per_tick_milli},\"burst_every\":{burst_every},\
             \"burst_len\":{burst_len},\"burst_multiplier\":{burst_multiplier},\
             \"entries\":{entries}}}"
        ),
        Workload::RipngConvergence {
            seed,
            ticks,
            neighbours,
            routes_per_neighbour,
            packets_per_tick,
        } => {
            format!(
                "{{\"name\":\"ripng-convergence\",\"seed\":{seed},\"ticks\":{ticks},\
                 \"neighbours\":{neighbours},\"routes_per_neighbour\":{routes_per_neighbour},\
                 \"packets_per_tick\":{packets_per_tick}}}"
            )
        }
        Workload::TableChurn {
            seed,
            ticks,
            packets_per_tick,
            entries,
            churn_every,
            churn_size,
        } => {
            format!(
                "{{\"name\":\"table-churn\",\"seed\":{seed},\"ticks\":{ticks},\
                 \"packets_per_tick\":{packets_per_tick},\"entries\":{entries},\
                 \"churn_every\":{churn_every},\"churn_size\":{churn_size}}}"
            )
        }
        Workload::MixedPlane {
            seed,
            ticks,
            neighbours,
            routes_per_neighbour,
            packets_per_tick,
            burst_multiplier,
            phase_len,
        } => format!(
            "{{\"name\":\"mixed-plane\",\"seed\":{seed},\"ticks\":{ticks},\
             \"neighbours\":{neighbours},\"routes_per_neighbour\":{routes_per_neighbour},\
             \"packets_per_tick\":{packets_per_tick},\"burst_multiplier\":{burst_multiplier},\
             \"phase_len\":{phase_len}}}"
        ),
        Workload::TraceReplay { seed, ticks, flows, entries } => format!(
            "{{\"name\":\"trace-replay\",\"seed\":{seed},\"ticks\":{ticks},\
             \"flows\":{flows},\"entries\":{entries}}}"
        ),
    }
}

pub(crate) fn workload_from_value(value: &Json) -> Result<Workload, ApiError> {
    let mut f = Fields::new("workload", value)?;
    let name = f.req_str("name")?;
    let workload = match name {
        "steady-forward" => Workload::SteadyForward {
            seed: f.req_u64("seed")?,
            ticks: f.req_u32("ticks")?,
            packets_per_tick: f.req_u32("packets_per_tick")?,
            entries: f.req_u32("entries")?,
        },
        "burst-overload" => Workload::BurstOverload {
            seed: f.req_u64("seed")?,
            ticks: f.req_u32("ticks")?,
            mean_per_tick_milli: f.req_u64("mean_per_tick_milli")?,
            burst_every: f.req_u32("burst_every")?,
            burst_len: f.req_u32("burst_len")?,
            burst_multiplier: f.req_u32("burst_multiplier")?,
            entries: f.req_u32("entries")?,
        },
        "ripng-convergence" => Workload::RipngConvergence {
            seed: f.req_u64("seed")?,
            ticks: f.req_u32("ticks")?,
            neighbours: f.req_u32("neighbours")?,
            routes_per_neighbour: f.req_u32("routes_per_neighbour")?,
            packets_per_tick: f.req_u32("packets_per_tick")?,
        },
        "table-churn" => Workload::TableChurn {
            seed: f.req_u64("seed")?,
            ticks: f.req_u32("ticks")?,
            packets_per_tick: f.req_u32("packets_per_tick")?,
            entries: f.req_u32("entries")?,
            churn_every: f.req_u32("churn_every")?,
            churn_size: f.req_u32("churn_size")?,
        },
        "mixed-plane" => Workload::MixedPlane {
            seed: f.req_u64("seed")?,
            ticks: f.req_u32("ticks")?,
            neighbours: f.req_u32("neighbours")?,
            routes_per_neighbour: f.req_u32("routes_per_neighbour")?,
            packets_per_tick: f.req_u32("packets_per_tick")?,
            burst_multiplier: f.req_u32("burst_multiplier")?,
            phase_len: f.req_u32("phase_len")?,
        },
        "trace-replay" => Workload::TraceReplay {
            seed: f.req_u64("seed")?,
            ticks: f.req_u32("ticks")?,
            flows: f.req_u32("flows")?,
            entries: f.req_u32("entries")?,
        },
        other => {
            return Err(ApiError::bad_request(
                parse_workload_name(other).expect_err("name did not match a builtin"),
            ))
        }
    };
    f.finish()?;
    Ok(workload)
}

pub(crate) fn fault_plan_to_json(p: &FaultPlan) -> String {
    format!(
        "{{\"seed\":{},\"malformed_per_tick_milli\":{},\"hop_limit_zero_per_tick_milli\":{},\
         \"corrupt_every\":{},\"repair_ticks\":{},\"repair_retries\":{},\"flap_every\":{},\
         \"flap_down_ticks\":{},\"stall_every_cycles\":{},\"stall_cycles\":{}}}",
        p.seed,
        p.malformed_per_tick_milli,
        p.hop_limit_zero_per_tick_milli,
        p.corrupt_every,
        p.repair_ticks,
        p.repair_retries,
        p.flap_every,
        p.flap_down_ticks,
        p.stall_every_cycles,
        p.stall_cycles,
    )
}

pub(crate) fn fault_plan_from_value(value: &Json) -> Result<FaultPlan, ApiError> {
    let mut f = Fields::new("faults", value)?;
    let plan = FaultPlan {
        seed: f.req_u64("seed")?,
        malformed_per_tick_milli: f.req_u64("malformed_per_tick_milli")?,
        hop_limit_zero_per_tick_milli: f.req_u64("hop_limit_zero_per_tick_milli")?,
        corrupt_every: f.req_u32("corrupt_every")?,
        repair_ticks: f.req_u32("repair_ticks")?,
        repair_retries: f.req_u32("repair_retries")?,
        flap_every: f.req_u32("flap_every")?,
        flap_down_ticks: f.req_u32("flap_down_ticks")?,
        stall_every_cycles: f.req_u32("stall_every_cycles")?,
        stall_cycles: f.req_u32("stall_cycles")?,
    };
    f.finish()?;
    Ok(plan)
}

/// Lowercase hex of `bytes` — the wire encoding of an inline flow trace
/// (hex rather than base64: std-only, trivially greppable, and the traces
/// small enough to ship inline are small enough to double in size).
pub(crate) fn hex_encode(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for &b in bytes {
        s.push(char::from_digit(u32::from(b >> 4), 16).expect("nibble"));
        s.push(char::from_digit(u32::from(b & 0xf), 16).expect("nibble"));
    }
    s
}

/// Decodes [`hex_encode`] output (either nibble case accepted).
pub(crate) fn hex_decode(s: &str) -> Result<Vec<u8>, String> {
    if s.len() % 2 != 0 {
        return Err(format!("hex body has odd length {}", s.len()));
    }
    s.as_bytes()
        .chunks_exact(2)
        .map(|pair| {
            let nibble = |c: u8| (c as char).to_digit(16).map(|d| d as u8);
            match (nibble(pair[0]), nibble(pair[1])) {
                (Some(hi), Some(lo)) => Ok(hi << 4 | lo),
                _ => Err(format!(
                    "hex body contains a non-hex byte pair {:?}",
                    String::from_utf8_lossy(pair)
                )),
            }
        })
        .collect()
}

/// A flow trace in wire form: the full binary body shipped inline
/// (hex-encoded), or a path on the **server's** filesystem for traces too
/// large to inline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceRef {
    /// The [`FlowTrace::to_bytes`] body, hex-encoded.
    Inline(String),
    /// A trace file path resolved server-side at evaluation time.
    Path(String),
}

impl TraceRef {
    /// The inline wire form of `trace`.
    pub fn inline(trace: &FlowTrace) -> TraceRef {
        TraceRef::Inline(hex_encode(&trace.to_bytes()))
    }

    /// Decodes or loads the referenced trace; every failure (bad hex, IO,
    /// a corrupt or version-skewed file) is a structured bad request.
    pub fn resolve(&self) -> Result<FlowTrace, ApiError> {
        match self {
            TraceRef::Inline(hex) => {
                let bytes =
                    hex_decode(hex).map_err(|e| ApiError::bad_request(format!("trace: {e}")))?;
                FlowTrace::from_bytes(&bytes)
                    .map_err(|e| ApiError::bad_request(format!("trace: {e}")))
            }
            TraceRef::Path(path) => FlowTrace::read(std::path::Path::new(path))
                .map_err(|e| ApiError::bad_request(format!("trace {path:?}: {e}"))),
        }
    }

    fn to_json(&self) -> String {
        match self {
            // Hex is [0-9a-f] only: no JSON escaping needed.
            TraceRef::Inline(hex) => format!("{{\"inline\":\"{hex}\"}}"),
            TraceRef::Path(path) => format!("{{\"path\":{}}}", Json::str(path.clone()).encode()),
        }
    }

    fn from_value(value: &Json) -> Result<TraceRef, ApiError> {
        let mut f = Fields::new("trace", value)?;
        let inline = f.get_non_null("inline").map(|v| {
            v.as_str()
                .map(str::to_owned)
                .ok_or_else(|| ApiError::bad_request("trace: \"inline\" must be a hex string"))
        });
        let path = f.get_non_null("path").map(|v| {
            v.as_str()
                .map(str::to_owned)
                .ok_or_else(|| ApiError::bad_request("trace: \"path\" must be a string"))
        });
        f.finish()?;
        match (inline, path) {
            (Some(hex), None) => Ok(TraceRef::Inline(hex?)),
            (None, Some(p)) => Ok(TraceRef::Path(p?)),
            _ => Err(ApiError::bad_request(
                "trace: exactly one of \"inline\" or \"path\" is required",
            )),
        }
    }
}

// ---------------------------------------------------------------------------
// EvalSpec: the validated construction path for one evaluation.
// ---------------------------------------------------------------------------

/// One evaluation, in wire form: the validated front door that the JSON
/// schema, the CLI and programmatic callers share before an
/// [`EvalRequest`] is built.
///
/// The builder's Chrome-timeline side channel ([`EvalRequest::trace`]) is
/// deliberately absent: it names an output file on the *server's*
/// filesystem and is not part of the result.  The `trace` member here is
/// different — it is an **input** flow trace ([`TraceRef`]) the scenario
/// replays verbatim.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalSpec {
    /// The machine under evaluation: per-core shape plus the multi-core
    /// system built from it.
    pub config: MachineSpec,
    /// Line-rate target.
    pub rate: LineRate,
    /// Routing-table size (≥ 1).
    pub entries: usize,
    /// Optional behavioural workload.
    pub workload: Option<Workload>,
    /// Optional deterministic fault plan.
    pub faults: Option<FaultPlan>,
    /// Optional explicit flow trace (inline body or server-side path),
    /// replayed verbatim instead of regenerating from the workload
    /// descriptor.  When both `workload` and `trace` are present the
    /// workload must equal the trace's descriptor — a mismatch is a
    /// structured bad request, not a silent override.
    pub trace: Option<TraceRef>,
    /// Which simulator step loop runs the measurement (wire spelling
    /// `"step_mode"`, omitted when [`StepMode::Compiled`] — the default —
    /// so pre-existing request lines keep their bytes).  Interpretive
    /// requests deliberately bypass the [`EvalCache`](crate::EvalCache)
    /// memo end to end: a reference double-check answered from cache would
    /// check nothing.
    pub step_mode: StepMode,
}

impl EvalSpec {
    /// A spec for `config` with the paper's defaults (10 GbE, 100 entries,
    /// no workload, no faults, compiled step loop).  Accepts a bare
    /// [`ConfigSpec`] (single-core) or a full [`MachineSpec`].
    pub fn new(config: impl Into<MachineSpec>) -> Self {
        EvalSpec {
            config: config.into(),
            rate: LineRate::TEN_GBE,
            entries: EvalRequest::DEFAULT_ENTRIES,
            workload: None,
            faults: None,
            trace: None,
            step_mode: StepMode::Compiled,
        }
    }

    /// Builds the validated [`EvalRequest`], resolving any flow-trace
    /// reference (an inline body decodes here; a path reads the server's
    /// filesystem here, so a missing or corrupt file rejects the request
    /// before any simulation runs).
    pub fn to_request(&self) -> Result<EvalRequest, ApiError> {
        if self.entries == 0 {
            return Err(ApiError::bad_request("entries must be >= 1"));
        }
        let mut request =
            EvalRequest::new(self.config.to_config()?).rate(self.rate).entries(self.entries);
        if let Some(workload) = self.workload {
            request = request.workload(workload);
        }
        if let Some(faults) = self.faults {
            request = request.faults(faults);
        }
        if let Some(trace_ref) = &self.trace {
            let trace = trace_ref.resolve()?;
            if let Some(workload) = self.workload {
                if workload != trace.descriptor() {
                    return Err(ApiError::bad_request(
                        "trace: the request's workload does not match the attached trace's \
                         descriptor",
                    ));
                }
            }
            request = request.flow_trace(Arc::new(trace));
        }
        Ok(request.step_mode(self.step_mode))
    }

    /// The wire spelling of `request` (Chrome-timeline path dropped — it
    /// is not part of the schema; an attached flow trace becomes an inline
    /// [`TraceRef`]), or `None` when the machine configuration is not
    /// expressible on the wire.
    pub fn from_request(request: &EvalRequest) -> Option<EvalSpec> {
        Some(EvalSpec {
            config: MachineSpec::from_config(&request.config)?,
            rate: request.line_rate,
            entries: request.entries,
            workload: request.workload,
            faults: request.faults,
            trace: request.flow_trace.as_ref().map(|t| TraceRef::inline(t)),
            step_mode: request.step_mode,
        })
    }

    /// The spec's JSON members (no surrounding braces) — reused by the
    /// request envelope so `eval` requests stay flat.
    fn to_json_fields(&self) -> String {
        let mut s = format!(
            "\"config\":{},\"rate\":{},\"entries\":{}",
            self.config.to_json(),
            rate_to_json(&self.rate),
            self.entries
        );
        if let Some(w) = &self.workload {
            s.push_str(",\"workload\":");
            s.push_str(&workload_to_json(w));
        }
        if let Some(p) = &self.faults {
            s.push_str(",\"faults\":");
            s.push_str(&fault_plan_to_json(p));
        }
        if let Some(t) = &self.trace {
            s.push_str(",\"trace\":");
            s.push_str(&t.to_json());
        }
        if self.step_mode != StepMode::Compiled {
            s.push_str(",\"step_mode\":\"");
            s.push_str(step_mode_name(self.step_mode));
            s.push('"');
        }
        s
    }

    /// One-line JSON body (fixed key order; `workload`/`faults` omitted
    /// when absent).
    pub fn to_json(&self) -> String {
        format!("{{{}}}", self.to_json_fields())
    }

    /// Parses a JSON body produced by [`EvalSpec::to_json`].
    pub fn from_json(text: &str) -> Result<EvalSpec, ApiError> {
        let value = Json::parse(text).map_err(|e| ApiError::bad_request(e.to_string()))?;
        Self::from_value(&value)
    }

    pub(crate) fn from_value(value: &Json) -> Result<EvalSpec, ApiError> {
        let mut f = Fields::new("eval spec", value)?;
        let spec = Self::from_fields(&mut f)?;
        f.finish()?;
        Ok(spec)
    }

    fn from_fields(f: &mut Fields<'_>) -> Result<EvalSpec, ApiError> {
        let spec = EvalSpec {
            config: MachineSpec::from_value(f.req("config")?)?,
            rate: rate_from_value(f.req("rate")?)?,
            entries: f.req_usize("entries")?,
            workload: f.get_non_null("workload").map(workload_from_value).transpose()?,
            faults: f.get_non_null("faults").map(fault_plan_from_value).transpose()?,
            trace: f.get_non_null("trace").map(TraceRef::from_value).transpose()?,
            step_mode: match f.get_non_null("step_mode") {
                None => StepMode::Compiled,
                Some(v) => {
                    let name = v.as_str().ok_or_else(|| {
                        ApiError::bad_request("eval spec: \"step_mode\" must be a string")
                    })?;
                    parse_step_mode(name).map_err(ApiError::bad_request)?
                }
            },
        };
        if spec.entries == 0 {
            return Err(ApiError::bad_request("entries must be >= 1"));
        }
        spec.config.to_config()?;
        Ok(spec)
    }
}

// ---------------------------------------------------------------------------
// Sweep codecs.
// ---------------------------------------------------------------------------

pub(crate) fn sweep_spec_to_json(spec: &SweepSpec) -> String {
    let ints = |xs: &[u8]| xs.iter().map(u8::to_string).collect::<Vec<_>>().join(",");
    let kinds = spec.kinds.iter().map(|k| format!("\"{k}\"")).collect::<Vec<_>>().join(",");
    let mut s = format!(
        "{{\"buses\":[{}],\"replication\":[{}],\"kinds\":[{}],\"entries\":{}",
        ints(&spec.buses),
        ints(&spec.replication),
        kinds,
        spec.entries
    );
    // The multicore axes are omitted at their single-core defaults so
    // pre-multicore sweep requests keep their exact bytes (and their
    // cache keys).
    if spec.cores != [1] {
        s.push_str(&format!(",\"cores\":[{}]", ints(&spec.cores)));
    }
    if spec.topologies != [Topology::SharedBus] {
        let names =
            spec.topologies.iter().map(|t| format!("\"{t}\"")).collect::<Vec<_>>().join(",");
        s.push_str(&format!(",\"topologies\":[{names}]"));
    }
    if spec.protocols != [CoherenceProtocol::Mesi] {
        let names = spec.protocols.iter().map(|p| format!("\"{p}\"")).collect::<Vec<_>>().join(",");
        s.push_str(&format!(",\"protocols\":[{names}]"));
    }
    if let Some(w) = &spec.workload {
        s.push_str(",\"workload\":");
        s.push_str(&workload_to_json(w));
    }
    if let Some(p) = &spec.faults {
        s.push_str(",\"faults\":");
        s.push_str(&fault_plan_to_json(p));
    }
    if let Some(t) = &spec.trace {
        // Always inline: a sharded sweep's workers must receive the records
        // themselves, not a path on the coordinator's filesystem.
        s.push_str(",\"trace\":");
        s.push_str(&TraceRef::inline(t).to_json());
    }
    s.push('}');
    s
}

fn u8_list(ctx: &'static str, name: &str, value: &Json) -> Result<Vec<u8>, ApiError> {
    let items = value
        .as_array()
        .ok_or_else(|| ApiError::bad_request(format!("{ctx}: {name:?} must be an array")))?;
    items
        .iter()
        .map(|v| {
            v.as_u64().and_then(|n| u8::try_from(n).ok()).filter(|&n| n >= 1).ok_or_else(|| {
                ApiError::bad_request(format!(
                    "{ctx}: {name:?} entries must be integers in 1..=255"
                ))
            })
        })
        .collect()
}

pub(crate) fn sweep_spec_from_value(value: &Json) -> Result<SweepSpec, ApiError> {
    let mut f = Fields::new("sweep spec", value)?;
    let kinds_value = f.req("kinds")?;
    let kinds = kinds_value
        .as_array()
        .ok_or_else(|| ApiError::bad_request("sweep spec: \"kinds\" must be an array"))?
        .iter()
        .map(|v| {
            v.as_str()
                .ok_or_else(|| ApiError::bad_request("sweep spec: kinds must be strings"))
                .and_then(|s| parse_table_kind(s).map_err(ApiError::bad_request))
        })
        .collect::<Result<Vec<_>, _>>()?;
    // The multicore axes are optional (absent = the single-core default
    // grid).  Core counts are range-checked here, at the wire boundary:
    // `grid()` feeds them to `SystemConfig::with_cores`, which panics on
    // out-of-range values, so a bad request must die as a structured
    // error long before it can reach the sweep.
    let cores = match f.get_non_null("cores") {
        None => vec![1],
        Some(v) => {
            let cores = u8_list("sweep spec", "cores", v)?;
            if let Some(&bad) = cores.iter().find(|&&n| n > MAX_CORES) {
                return Err(ApiError::bad_request(format!(
                    "sweep spec: \"cores\" entries must be 1..={MAX_CORES}, got {bad}"
                )));
            }
            cores
        }
    };
    let name_list = |name: &'static str, value: &Json| -> Result<Vec<String>, ApiError> {
        value
            .as_array()
            .ok_or_else(|| ApiError::bad_request(format!("sweep spec: {name:?} must be an array")))?
            .iter()
            .map(|v| {
                v.as_str().map(str::to_owned).ok_or_else(|| {
                    ApiError::bad_request(format!("sweep spec: {name} entries must be strings"))
                })
            })
            .collect()
    };
    let topologies = match f.get_non_null("topologies") {
        None => vec![Topology::SharedBus],
        Some(v) => name_list("topologies", v)?
            .iter()
            .map(|name| Topology::by_name(name).ok_or_else(|| unknown_topology(name)))
            .collect::<Result<Vec<_>, _>>()?,
    };
    let protocols = match f.get_non_null("protocols") {
        None => vec![CoherenceProtocol::Mesi],
        Some(v) => name_list("protocols", v)?
            .iter()
            .map(|name| CoherenceProtocol::by_name(name).ok_or_else(|| unknown_protocol(name)))
            .collect::<Result<Vec<_>, _>>()?,
    };
    let spec = SweepSpec {
        buses: u8_list("sweep spec", "buses", f.req("buses")?)?,
        replication: u8_list("sweep spec", "replication", f.req("replication")?)?,
        kinds,
        entries: f.req_usize("entries")?,
        workload: f.get_non_null("workload").map(workload_from_value).transpose()?,
        faults: f.get_non_null("faults").map(fault_plan_from_value).transpose()?,
        trace: f
            .get_non_null("trace")
            .map(|v| TraceRef::from_value(v)?.resolve().map(Arc::new))
            .transpose()?,
        cores,
        topologies,
        protocols,
    };
    if spec.entries == 0 {
        return Err(ApiError::bad_request("sweep spec: entries must be >= 1"));
    }
    f.finish()?;
    Ok(spec)
}

pub(crate) fn constraints_to_json(c: &Constraints) -> String {
    let opt = |v: Option<u64>| v.map_or("null".to_owned(), |n| n.to_string());
    format!(
        "{{\"max_power_w\":{},\"max_area_mm2\":{},\"max_scenario_drops\":{},\
         \"max_unrecovered_faults\":{}}}",
        f64_json(c.max_power_w),
        f64_json(c.max_area_mm2),
        opt(c.max_scenario_drops),
        opt(c.max_unrecovered_faults),
    )
}

pub(crate) fn constraints_from_value(value: &Json) -> Result<Constraints, ApiError> {
    let mut f = Fields::new("constraints", value)?;
    let defaults = Constraints::default();
    let finite_or = |v: Option<&Json>, name: &str, default: f64| match v {
        None => Ok(default),
        Some(v) => v.as_f64().ok_or_else(|| {
            ApiError::bad_request(format!("constraints: {name:?} must be a finite number"))
        }),
    };
    let opt_u64 = |v: Option<&Json>, name: &str| match v {
        None => Ok(None),
        Some(v) => v.as_u64().map(Some).ok_or_else(|| {
            ApiError::bad_request(format!("constraints: {name:?} must be an unsigned integer"))
        }),
    };
    let constraints = Constraints {
        max_power_w: finite_or(f.get_non_null("max_power_w"), "max_power_w", defaults.max_power_w)?,
        max_area_mm2: finite_or(
            f.get_non_null("max_area_mm2"),
            "max_area_mm2",
            defaults.max_area_mm2,
        )?,
        max_scenario_drops: opt_u64(f.get_non_null("max_scenario_drops"), "max_scenario_drops")?,
        max_unrecovered_faults: opt_u64(
            f.get_non_null("max_unrecovered_faults"),
            "max_unrecovered_faults",
        )?,
    };
    f.finish()?;
    Ok(constraints)
}

// ---------------------------------------------------------------------------
// Requests.
// ---------------------------------------------------------------------------

/// One worker's slice of a sharded sweep: the grid points whose sweep
/// index `i` satisfies `i % stride == offset`.
///
/// The coordinator sends the *same* [`SweepSpec`] to every worker with a
/// distinct offset, so each worker derives the identical global grid and
/// evaluates a disjoint round-robin stripe of it — indices stay global,
/// which is what lets the coordinator merge results back into sweep order
/// without a translation table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepShard {
    /// This worker's stripe (`0 <= offset < stride`).
    pub offset: u32,
    /// Total number of workers the sweep is split across (≥ 1).
    pub stride: u32,
}

impl SweepShard {
    fn to_json(self) -> String {
        format!("{{\"offset\":{},\"stride\":{}}}", self.offset, self.stride)
    }

    fn from_value(value: &Json) -> Result<SweepShard, ApiError> {
        let mut f = Fields::new("shard", value)?;
        let shard = SweepShard { offset: f.req_u32("offset")?, stride: f.req_u32("stride")? };
        f.finish()?;
        if shard.stride == 0 {
            return Err(ApiError::bad_request("shard: \"stride\" must be >= 1"));
        }
        if shard.offset >= shard.stride {
            return Err(ApiError::bad_request(format!(
                "shard: \"offset\" ({}) must be < \"stride\" ({})",
                shard.offset, shard.stride
            )));
        }
        Ok(shard)
    }
}

/// One client request, the unit of the wire protocol (one JSON line each).
#[derive(Debug, Clone, PartialEq)]
pub enum ApiRequest {
    /// Evaluate a single architecture instance.
    Eval(EvalSpec),
    /// Run a whole sweep — or, with `shard` set (v2 sessions only), one
    /// round-robin stripe of it — as one batch job.
    Sweep {
        /// The exploration grid.
        spec: SweepSpec,
        /// Line-rate target for every grid point.
        rate: LineRate,
        /// Admission constraints for the ranking.
        constraints: Constraints,
        /// `Some` when this daemon evaluates only its stripe of the grid
        /// and answers with a [`ApiResponse::ShardResult`] for the
        /// coordinator to merge.  Requires the v2 envelope.
        shard: Option<SweepShard>,
    },
    /// Ask the daemon for queue and cache statistics.
    Status,
    /// Ask the daemon to drain, persist its cache and exit — the
    /// SIGTERM-equivalent shutdown byte.
    Shutdown,
    /// Ask the daemon for its evaluation cache as a snapshot string
    /// (answered with [`ApiResponse::CacheSnapshot`]) — how a coordinator
    /// collects what each shard learned.  Requires the v2 envelope.
    CacheExport,
    /// Merge a snapshot string (the [`ApiResponse::CacheSnapshot`] body)
    /// into the daemon's evaluation cache — how a coordinator shares the
    /// merged cache back to every shard.  Requires the v2 envelope.
    CacheImport {
        /// The snapshot text, exactly as `cache_export` returned it.
        body: String,
    },
}

impl ApiRequest {
    /// The request's JSON members after the envelope (no braces, starting
    /// at `"kind"`) — shared by the v1 and v2 serialisers.
    fn body_fields(&self) -> String {
        match self {
            ApiRequest::Eval(spec) => format!("\"kind\":\"eval\",{}", spec.to_json_fields()),
            ApiRequest::Sweep { spec, rate, constraints, shard } => {
                let mut s = format!(
                    "\"kind\":\"sweep\",\"spec\":{},\"rate\":{},\"constraints\":{}",
                    sweep_spec_to_json(spec),
                    rate_to_json(rate),
                    constraints_to_json(constraints),
                );
                if let Some(shard) = shard {
                    s.push_str(",\"shard\":");
                    s.push_str(&shard.to_json());
                }
                s
            }
            ApiRequest::Status => "\"kind\":\"status\"".to_owned(),
            ApiRequest::Shutdown => "\"kind\":\"shutdown\"".to_owned(),
            ApiRequest::CacheExport => "\"kind\":\"cache_export\"".to_owned(),
            ApiRequest::CacheImport { body } => {
                format!("\"kind\":\"cache_import\",\"body\":{}", Json::str(body.clone()).encode())
            }
        }
    }

    /// Serialises the request as one v1 JSON line (fixed key order,
    /// explicit `"api_version"`).  The v2-only requests (`cache_export`,
    /// `cache_import`, sharded sweeps) have no valid v1 spelling — send
    /// them through [`ApiRequest::to_json_v2`].
    pub fn to_json(&self) -> String {
        format!("{{\"api_version\":\"{API_VERSION}\",{}}}", self.body_fields())
    }

    /// Serialises the request as one v2 JSON line carrying the
    /// client-chosen `id` that every response line for this request will
    /// echo.
    pub fn to_json_v2(&self, id: u64) -> String {
        format!("{{\"api_version\":\"{API_VERSION_V2}\",\"id\":{id},{}}}", self.body_fields())
    }

    /// Parses the fields after the envelope.  `v2` gates the
    /// session-dialect extensions: sweep sharding and the cache-exchange
    /// kinds are structured `bad_request` errors in a v1 line.
    fn from_fields(mut f: Fields<'_>, v2: bool) -> Result<ApiRequest, ApiError> {
        let request = match f.req_str("kind")? {
            "eval" => ApiRequest::Eval(EvalSpec::from_fields(&mut f)?),
            "sweep" => {
                let shard = f.get_non_null("shard").map(SweepShard::from_value).transpose()?;
                if shard.is_some() && !v2 {
                    return Err(ApiError::bad_request(format!(
                        "sweep: \"shard\" requires api_version {API_VERSION_V2:?}"
                    )));
                }
                ApiRequest::Sweep {
                    spec: sweep_spec_from_value(f.req("spec")?)?,
                    rate: rate_from_value(f.req("rate")?)?,
                    constraints: f
                        .get_non_null("constraints")
                        .map(constraints_from_value)
                        .transpose()?
                        .unwrap_or_default(),
                    shard,
                }
            }
            "status" => ApiRequest::Status,
            "shutdown" => ApiRequest::Shutdown,
            kind @ ("cache_export" | "cache_import") if !v2 => {
                return Err(ApiError::bad_request(format!(
                    "{kind} requires api_version {API_VERSION_V2:?}"
                )))
            }
            "cache_export" => ApiRequest::CacheExport,
            "cache_import" => ApiRequest::CacheImport { body: f.req_str("body")?.to_owned() },
            other => {
                return Err(ApiError::bad_request(format!(
                    "unknown request kind {other:?}; expected eval, sweep, status, shutdown, \
                     cache_export or cache_import"
                )))
            }
        };
        f.finish()?;
        Ok(request)
    }

    /// Strictly parses one **v1** request line: bad JSON, missing/unknown
    /// fields and out-of-range values are [`ApiErrorCode::BadRequest`]; a
    /// wrong `"api_version"` (including `"v2"`) is
    /// [`ApiErrorCode::VersionMismatch`].  Session-aware servers parse
    /// through [`WireRequest::from_json`] instead.
    pub fn from_json(line: &str) -> Result<ApiRequest, ApiError> {
        let value = Json::parse(line).map_err(|e| ApiError::bad_request(e.to_string()))?;
        let mut f = Fields::new("request", &value)?;
        let version = f.req_str("api_version")?;
        if version != API_VERSION {
            return Err(ApiError::version_mismatch(version));
        }
        ApiRequest::from_fields(f, false)
    }
}

/// A version-sniffed request envelope: the parse every `taco-served`
/// connection runs on each frame, accepting both dialects.
///
/// `id` is `None` for a v1 line (the one-shot dialect has no request
/// identity) and `Some` for a v2 line (where `"id"` is mandatory) — so
/// the envelope itself tells the server which session semantics the
/// client expects.
#[derive(Debug, Clone, PartialEq)]
pub struct WireRequest {
    /// The client-chosen request id (v2), or `None` (v1).
    pub id: Option<u64>,
    /// The request proper.
    pub request: ApiRequest,
}

impl WireRequest {
    /// Serialises with the dialect implied by `id`.
    pub fn to_json(&self) -> String {
        match self.id {
            Some(id) => self.request.to_json_v2(id),
            None => self.request.to_json(),
        }
    }

    /// Strictly parses one request line of either dialect.
    pub fn from_json(line: &str) -> Result<WireRequest, ApiError> {
        let value = Json::parse(line).map_err(|e| ApiError::bad_request(e.to_string()))?;
        let mut f = Fields::new("request", &value)?;
        match f.req_str("api_version")? {
            v if v == API_VERSION => {
                if f.get("id").is_some() {
                    return Err(ApiError::bad_request(format!(
                        "\"id\" requires api_version {API_VERSION_V2:?}"
                    )));
                }
                Ok(WireRequest { id: None, request: ApiRequest::from_fields(f, false)? })
            }
            v if v == API_VERSION_V2 => {
                let id = f.req_u64("id")?;
                Ok(WireRequest { id: Some(id), request: ApiRequest::from_fields(f, true)? })
            }
            other => Err(ApiError::version_mismatch(other)),
        }
    }
}

/// Best-effort extraction of the `"id"` member from a line that failed
/// the strict parse, so a v2 error response can still be correlated with
/// the request that caused it (`None` when even that much is unreadable —
/// the server then answers with `"id":null`).
pub fn salvage_request_id(line: &str) -> Option<u64> {
    let value = Json::parse(line).ok()?;
    value.as_object()?.iter().find(|(k, _)| k == "id")?.1.as_u64()
}

// ---------------------------------------------------------------------------
// Responses.
// ---------------------------------------------------------------------------

/// Daemon queue and cache statistics, the payload of a `status` response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StatusInfo {
    /// Jobs admitted and not yet fully answered.
    pub in_flight: u64,
    /// Admitted jobs still waiting for a runner thread — the current
    /// queue depth, which together with the cache counters distinguishes
    /// a cold cache from a saturated queue when diagnosing slow clients.
    pub queued: u64,
    /// The admission bound ([`ApiErrorCode::Busy`] beyond it).
    pub max_pending: u64,
    /// `true` once a shutdown has been requested.
    pub draining: bool,
    /// Evaluations stored in the cache.
    pub cache_entries: u64,
    /// Cache lookups answered from the map.
    pub cache_hits: u64,
    /// Cache lookups that had to simulate.
    pub cache_misses: u64,
}

/// One server response line.
///
/// Result payloads are **byte-stable**: an `eval_result` for a given
/// request is identical whether it was simulated or answered from the
/// cache (cache statistics live in the `status` response instead), which
/// is what lets the daemon integration tests pin responses against the
/// golden Table 1 fixture across restarts.
#[derive(Debug, Clone, PartialEq)]
pub enum ApiResponse {
    /// The result of one `eval` request: the golden-fixture cell line plus
    /// the full report.
    EvalResult(Box<EvalReport>),
    /// Streamed per-point progress of a running sweep (delivered before
    /// the final [`ApiResponse::SweepResult`]; completion order, not index
    /// order).
    SweepPoint {
        /// Sweep index of the finished point.
        index: usize,
        /// Total points in the sweep.
        total: usize,
        /// The point's Table 1 style label.
        label: String,
        /// Whether the evaluation cache answered it.
        cache_hit: bool,
        /// Whether the point is physically feasible.
        feasible: bool,
    },
    /// The final result of a `sweep` request.
    SweepResult {
        /// Indices into `reports` admitted by the constraints, best first.
        admitted: Vec<usize>,
        /// Every evaluated point, in sweep order.
        reports: Vec<EvalReport>,
    },
    /// Queue and cache statistics.
    Status(StatusInfo),
    /// Shutdown acknowledged: the cache snapshot was written (`persisted`
    /// entries), or `None` when no snapshot path is configured / the write
    /// failed.
    ShutdownAck {
        /// Evaluations persisted to the snapshot.
        persisted: Option<u64>,
    },
    /// The final result of a sharded `sweep` request: this worker's stripe
    /// only, with **global** sweep indices so the coordinator can merge
    /// stripes back into sweep order.  Ranking against constraints happens
    /// at the coordinator, over the merged set.
    ShardResult {
        /// Total points in the full (unsharded) grid.
        total: usize,
        /// Global sweep index of each report, in stripe order (ascending).
        indices: Vec<usize>,
        /// The stripe's evaluated points, parallel to `indices`.
        reports: Vec<EvalReport>,
    },
    /// The daemon's evaluation cache, serialised with
    /// [`crate::EvalCache::to_snapshot_string`].
    CacheSnapshot {
        /// The snapshot text (embeds its own checksum).
        body: String,
    },
    /// Acknowledges a `cache_import`: the cache now holds `entries`
    /// evaluations.
    CacheLoaded {
        /// Cache size after the merge.
        entries: u64,
    },
    /// A structured failure.
    Error(ApiError),
}

impl ApiResponse {
    /// The response's JSON members after the envelope (no braces, starting
    /// at `"kind"`) — shared by the v1 and v2 serialisers.
    fn body_fields(&self) -> String {
        match self {
            ApiResponse::EvalResult(report) => format!(
                "\"kind\":\"eval_result\",\"cell\":{},\"report\":{}",
                table1_cell_json(report),
                report_to_json(report),
            ),
            ApiResponse::SweepPoint { index, total, label, cache_hit, feasible } => format!(
                "\"kind\":\"sweep_point\",\"index\":{index},\"total\":{total},\
                 \"label\":{},\"cache_hit\":{cache_hit},\"feasible\":{feasible}",
                Json::str(label.clone()).encode(),
            ),
            ApiResponse::SweepResult { admitted, reports } => {
                let indices = admitted.iter().map(usize::to_string).collect::<Vec<_>>().join(",");
                let best = admitted
                    .first()
                    .and_then(|&i| reports.get(i))
                    .map_or("null".to_owned(), |r| Json::str(r.config.label()).encode());
                let body = reports.iter().map(report_to_json).collect::<Vec<_>>().join(",");
                format!(
                    "\"kind\":\"sweep_result\",\"points\":{},\"admitted\":[{indices}],\
                     \"best\":{best},\"reports\":[{body}]",
                    reports.len(),
                )
            }
            ApiResponse::Status(s) => format!(
                "\"kind\":\"status_result\",\"in_flight\":{},\"queued\":{},\"max_pending\":{},\
                 \"draining\":{},\"cache\":{{\"entries\":{},\"hits\":{},\"misses\":{}}},\
                 \"features\":{}",
                s.in_flight,
                s.queued,
                s.max_pending,
                s.draining,
                s.cache_entries,
                s.cache_hits,
                s.cache_misses,
                supported_features_json(),
            ),
            ApiResponse::ShutdownAck { persisted } => format!(
                "\"kind\":\"shutdown_ack\",\"persisted\":{}",
                persisted.map_or("null".to_owned(), |n| n.to_string()),
            ),
            ApiResponse::ShardResult { total, indices, reports } => {
                let idx = indices.iter().map(usize::to_string).collect::<Vec<_>>().join(",");
                let body = reports.iter().map(report_to_json).collect::<Vec<_>>().join(",");
                format!(
                    "\"kind\":\"shard_result\",\"total\":{total},\"indices\":[{idx}],\
                     \"reports\":[{body}]"
                )
            }
            ApiResponse::CacheSnapshot { body } => {
                format!("\"kind\":\"cache_snapshot\",\"body\":{}", Json::str(body.clone()).encode())
            }
            ApiResponse::CacheLoaded { entries } => {
                format!("\"kind\":\"cache_loaded\",\"entries\":{entries}")
            }
            ApiResponse::Error(e) => format!(
                "\"kind\":\"error\",\"code\":\"{}\",\"message\":{}",
                e.code.as_str(),
                Json::str(e.message.clone()).encode(),
            ),
        }
    }

    /// The response's JSON members after the envelope, as
    /// [`ApiResponse::to_json`] / [`ApiResponse::to_json_v2`] would emit
    /// them (no braces, starting at `"kind"`).  Front ends that memoise a
    /// serialised response body and splice version/id envelopes around it
    /// (the daemon's inline cache-hit fast path) use this instead of
    /// re-serialising per request.
    pub fn body_json(&self) -> String {
        self.body_fields()
    }

    /// Serialises the response as one v1 JSON line.
    pub fn to_json(&self) -> String {
        format!("{{\"api_version\":\"{API_VERSION}\",{}}}", self.body_fields())
    }

    /// Serialises the response as one v2 JSON line echoing the request's
    /// `id` (`None` → `"id":null`, for errors on frames too broken to
    /// carry one).
    pub fn to_json_v2(&self, id: Option<u64>) -> String {
        let id = id.map_or("null".to_owned(), |n| n.to_string());
        format!("{{\"api_version\":\"{API_VERSION_V2}\",\"id\":{id},{}}}", self.body_fields())
    }

    /// Parses the fields after the envelope.
    fn from_fields(mut f: Fields<'_>) -> Result<ApiResponse, ApiError> {
        let response = match f.req_str("kind")? {
            "eval_result" => {
                let _cell = f.req("cell")?; // derived from the report; consumed, not re-checked
                let report = report::report_from_value(f.req("report")?)?;
                ApiResponse::EvalResult(Box::new(report))
            }
            "sweep_point" => ApiResponse::SweepPoint {
                index: f.req_usize("index")?,
                total: f.req_usize("total")?,
                label: f.req_str("label")?.to_owned(),
                cache_hit: f.req_bool("cache_hit")?,
                feasible: f.req_bool("feasible")?,
            },
            "sweep_result" => {
                let points = f.req_usize("points")?;
                let admitted = f
                    .req("admitted")?
                    .as_array()
                    .ok_or_else(|| {
                        ApiError::bad_request("response: \"admitted\" must be an array")
                    })?
                    .iter()
                    .map(|v| {
                        v.as_u64().and_then(|n| usize::try_from(n).ok()).ok_or_else(|| {
                            ApiError::bad_request("response: admitted indices must be integers")
                        })
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                let _best = f.req("best")?; // derived; consumed, not re-checked
                let reports = f
                    .req("reports")?
                    .as_array()
                    .ok_or_else(|| ApiError::bad_request("response: \"reports\" must be an array"))?
                    .iter()
                    .map(report::report_from_value)
                    .collect::<Result<Vec<_>, _>>()?;
                if reports.len() != points {
                    return Err(ApiError::bad_request(format!(
                        "response: {points} points declared but {} reports present",
                        reports.len()
                    )));
                }
                ApiResponse::SweepResult { admitted, reports }
            }
            "status_result" => {
                let in_flight = f.req_u64("in_flight")?;
                let queued = f.req_u64("queued")?;
                let max_pending = f.req_u64("max_pending")?;
                let draining = f.req_bool("draining")?;
                let mut cache = Fields::new("status cache", f.req("cache")?)?;
                let info = StatusInfo {
                    in_flight,
                    queued,
                    max_pending,
                    draining,
                    cache_entries: cache.req_u64("entries")?,
                    cache_hits: cache.req_u64("hits")?,
                    cache_misses: cache.req_u64("misses")?,
                };
                cache.finish()?;
                // The feature record is advisory (what specs this build
                // accepts); it is regenerated on re-serialisation, so the
                // strict parse validates and consumes it without storing
                // it.  Absent in pre-multicore lines — still accepted.
                if let Some(v) = f.get_non_null("features") {
                    let mut feat = Fields::new("status features", v)?;
                    feat.req_u64("max_cores")?;
                    for list in ["topologies", "protocols"] {
                        let items = feat.req(list)?.as_array().ok_or_else(|| {
                            ApiError::bad_request(format!(
                                "status features: {list:?} must be an array"
                            ))
                        })?;
                        for item in items {
                            item.as_str().ok_or_else(|| {
                                ApiError::bad_request(format!(
                                    "status features: {list:?} entries must be strings"
                                ))
                            })?;
                        }
                    }
                    feat.finish()?;
                }
                ApiResponse::Status(info)
            }
            "shutdown_ack" => ApiResponse::ShutdownAck {
                persisted: f
                    .get_non_null("persisted")
                    .map(|v| {
                        v.as_u64().ok_or_else(|| {
                            ApiError::bad_request(
                                "response: \"persisted\" must be an integer or null",
                            )
                        })
                    })
                    .transpose()?,
            },
            "shard_result" => {
                let total = f.req_usize("total")?;
                let indices = f
                    .req("indices")?
                    .as_array()
                    .ok_or_else(|| ApiError::bad_request("response: \"indices\" must be an array"))?
                    .iter()
                    .map(|v| {
                        v.as_u64().and_then(|n| usize::try_from(n).ok()).ok_or_else(|| {
                            ApiError::bad_request("response: shard indices must be integers")
                        })
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                let reports = f
                    .req("reports")?
                    .as_array()
                    .ok_or_else(|| ApiError::bad_request("response: \"reports\" must be an array"))?
                    .iter()
                    .map(report::report_from_value)
                    .collect::<Result<Vec<_>, _>>()?;
                if indices.len() != reports.len() {
                    return Err(ApiError::bad_request(format!(
                        "response: {} shard indices but {} reports present",
                        indices.len(),
                        reports.len()
                    )));
                }
                ApiResponse::ShardResult { total, indices, reports }
            }
            "cache_snapshot" => ApiResponse::CacheSnapshot { body: f.req_str("body")?.to_owned() },
            "cache_loaded" => ApiResponse::CacheLoaded { entries: f.req_u64("entries")? },
            "error" => {
                let code_str = f.req_str("code")?;
                let code = ApiErrorCode::from_str_opt(code_str).ok_or_else(|| {
                    ApiError::bad_request(format!("response: unknown error code {code_str:?}"))
                })?;
                ApiResponse::Error(ApiError { code, message: f.req_str("message")?.to_owned() })
            }
            other => return Err(ApiError::bad_request(format!("unknown response kind {other:?}"))),
        };
        f.finish()?;
        Ok(response)
    }

    /// Strictly parses one **v1** response line.
    ///
    /// `eval_result`/`sweep_result` payloads are only parseable when their
    /// reports are (reports carrying a `sim_error` are one-way, see
    /// [`report_from_json`]).  Session-aware clients parse through
    /// [`WireResponse::from_json`] instead.
    pub fn from_json(line: &str) -> Result<ApiResponse, ApiError> {
        let value = Json::parse(line).map_err(|e| ApiError::bad_request(e.to_string()))?;
        let mut f = Fields::new("response", &value)?;
        let version = f.req_str("api_version")?;
        if version != API_VERSION {
            return Err(ApiError::version_mismatch(version));
        }
        ApiResponse::from_fields(f)
    }
}

/// A version-sniffed response envelope, the receive side of a
/// [`WireRequest`] exchange.
#[derive(Debug, Clone, PartialEq)]
pub struct WireResponse {
    /// `true` when the line used the v2 envelope (which always carries an
    /// `"id"` member, possibly `null`).
    pub v2: bool,
    /// The echoed request id: `None` for a v1 line, or for a v2 error
    /// whose offending frame carried no salvageable id (`"id":null`).
    pub id: Option<u64>,
    /// The response proper.
    pub response: ApiResponse,
}

impl WireResponse {
    /// Serialises with the dialect selected by `v2`.
    pub fn to_json(&self) -> String {
        if self.v2 {
            self.response.to_json_v2(self.id)
        } else {
            self.response.to_json()
        }
    }

    /// Strictly parses one response line of either dialect.
    pub fn from_json(line: &str) -> Result<WireResponse, ApiError> {
        let value = Json::parse(line).map_err(|e| ApiError::bad_request(e.to_string()))?;
        let mut f = Fields::new("response", &value)?;
        match f.req_str("api_version")? {
            v if v == API_VERSION => {
                Ok(WireResponse { v2: false, id: None, response: ApiResponse::from_fields(f)? })
            }
            v if v == API_VERSION_V2 => {
                let id = match f.req("id")? {
                    v if v.is_null() => None,
                    v => Some(v.as_u64().ok_or_else(|| {
                        ApiError::bad_request("response: \"id\" must be an integer or null")
                    })?),
                };
                Ok(WireResponse { v2: true, id, response: ApiResponse::from_fields(f)? })
            }
            other => Err(ApiError::version_mismatch(other)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taco_isa::MachineConfig;

    fn cam_spec() -> EvalSpec {
        EvalSpec::new(ConfigSpec::new(TableKind::Cam, 3, 1))
    }

    #[test]
    fn eval_request_round_trips() {
        let mut spec = cam_spec();
        spec.entries = 16;
        spec.workload = Some(Workload::burst_overload());
        spec.faults = Some(FaultPlan::storm());
        let request = ApiRequest::Eval(spec);
        let line = request.to_json();
        assert!(line.starts_with("{\"api_version\":\"v1\",\"kind\":\"eval\","), "{line}");
        assert_eq!(ApiRequest::from_json(&line).unwrap(), request);
        // And the serialisation itself is a fixed point.
        assert_eq!(ApiRequest::from_json(&line).unwrap().to_json(), line);
    }

    #[test]
    fn sweep_request_round_trips() {
        let request = ApiRequest::Sweep {
            spec: SweepSpec {
                buses: vec![1, 3],
                replication: vec![1, 2],
                kinds: vec![TableKind::Cam, TableKind::BalancedTree],
                entries: 8,
                workload: Some(Workload::steady_forward()),
                faults: None,
                trace: None,
                ..SweepSpec::default()
            },
            rate: LineRate::GIGE,
            constraints: Constraints {
                max_power_w: 3.5,
                max_area_mm2: 60.0,
                max_scenario_drops: Some(10),
                max_unrecovered_faults: None,
            },
            shard: None,
        };
        let line = request.to_json();
        assert!(!line.contains("shard"), "unsharded sweeps keep their v1 bytes: {line}");
        assert_eq!(ApiRequest::from_json(&line).unwrap(), request);
        assert_eq!(ApiRequest::from_json(&line).unwrap().to_json(), line);
    }

    #[test]
    fn multicore_sweep_requests_round_trip_and_default_axes_stay_silent() {
        // Default multicore axes leave the wire bytes exactly as v1 wrote
        // them — no "cores"/"topologies"/"protocols" members appear.
        let default_axes = ApiRequest::Sweep {
            spec: SweepSpec { entries: 8, ..SweepSpec::default() },
            rate: LineRate::TEN_GBE,
            constraints: Constraints::default(),
            shard: None,
        };
        let line = default_axes.to_json();
        for silent in ["\"cores\"", "\"topologies\"", "\"protocols\""] {
            assert!(!line.contains(silent), "{silent} must be omitted at default: {line}");
        }
        assert_eq!(ApiRequest::from_json(&line).unwrap(), default_axes);

        // Non-default axes round-trip as a fixed point.
        let request = ApiRequest::Sweep {
            spec: SweepSpec {
                buses: vec![3],
                replication: vec![1],
                kinds: vec![TableKind::Cam],
                entries: 8,
                cores: vec![1, 2, 4],
                topologies: vec![Topology::Mesh, Topology::SharedBus],
                protocols: vec![CoherenceProtocol::Msi],
                ..SweepSpec::default()
            },
            rate: LineRate::TEN_GBE,
            constraints: Constraints::default(),
            shard: None,
        };
        let line = request.to_json();
        assert!(
            line.contains(
                "\"cores\":[1,2,4],\"topologies\":[\"mesh\",\"shared-bus\"],\
                 \"protocols\":[\"msi\"]"
            ),
            "{line}"
        );
        assert_eq!(ApiRequest::from_json(&line).unwrap(), request);
        assert_eq!(ApiRequest::from_json(&line).unwrap().to_json(), line);
    }

    #[test]
    fn sweep_multicore_axes_reject_bad_values_structurally() {
        let sweep = |axes: &str| {
            let json = format!(
                "{{\"api_version\":\"v1\",\"kind\":\"sweep\",\"spec\":{{\"buses\":[3],\
                 \"replication\":[1],\"kinds\":[\"cam\"],\"entries\":8{axes}}},\
                 \"rate\":{{\"bits_per_second\":10000000000,\"packet_bytes\":1500}}}}"
            );
            ApiRequest::from_json(&json)
        };
        // A core count past the ceiling must be a structured bad_request
        // naming the field — never the `with_cores` panic inside `grid()`.
        let err = sweep(",\"cores\":[2,9]").expect_err("9 cores must be rejected");
        assert_eq!(err.code, ApiErrorCode::BadRequest);
        assert!(err.message.contains("\"cores\""), "{}", err.message);
        assert!(err.message.contains("got 9"), "{}", err.message);
        let err = sweep(",\"cores\":[0]").expect_err("0 cores must be rejected");
        assert_eq!(err.code, ApiErrorCode::BadRequest);
        // Unknown topology and protocol names list the accepted spellings.
        let err = sweep(",\"topologies\":[\"ring\"]").expect_err("ring must be rejected");
        assert!(err.message.contains("shared-bus, mesh"), "{}", err.message);
        let err = sweep(",\"protocols\":[\"moesi\"]").expect_err("moesi must be rejected");
        assert!(err.message.contains("msi, mesi"), "{}", err.message);
    }

    #[test]
    fn trace_eval_requests_round_trip_inline_and_path() {
        let trace = taco_workload::TraceGen::generate(9, 30, 5, 8);
        let mut spec = cam_spec();
        spec.entries = 8;
        for trace_ref in [TraceRef::inline(&trace), TraceRef::Path("traces/reference.trace".into())]
        {
            spec.trace = Some(trace_ref);
            let request = ApiRequest::Eval(spec.clone());
            let line = request.to_json();
            assert!(line.contains("\"trace\":{"), "{line}");
            assert_eq!(ApiRequest::from_json(&line).unwrap(), request);
            assert_eq!(ApiRequest::from_json(&line).unwrap().to_json(), line);
        }
    }

    #[test]
    fn trace_sweep_requests_round_trip_with_resolved_records() {
        let trace = taco_workload::TraceGen::generate(9, 30, 5, 8);
        let request = ApiRequest::Sweep {
            spec: SweepSpec {
                buses: vec![1, 3],
                replication: vec![1],
                kinds: vec![TableKind::Cam],
                entries: 8,
                workload: None,
                faults: None,
                trace: Some(std::sync::Arc::new(trace)),
                ..SweepSpec::default()
            },
            rate: LineRate::TEN_GBE,
            constraints: Constraints::default(),
            shard: None,
        };
        let line = request.to_json();
        // Sweep traces always ship inline — a sharded worker needs the
        // records, not a path on the coordinator's filesystem.
        assert!(line.contains("\"trace\":{\"inline\":\""), "{line}");
        assert_eq!(ApiRequest::from_json(&line).unwrap(), request);
        assert_eq!(ApiRequest::from_json(&line).unwrap().to_json(), line);
    }

    #[test]
    fn trace_refs_require_exactly_one_of_inline_or_path() {
        let parse = |json: &str| TraceRef::from_value(&Json::parse(json).unwrap());
        for bad in
            ["{}", "{\"inline\":\"00\",\"path\":\"x\"}", "{\"inline\":1}", "{\"other\":true}"]
        {
            let err = parse(bad).expect_err(bad);
            assert_eq!(err.code, ApiErrorCode::BadRequest, "{bad}");
        }
        assert_eq!(parse("{\"inline\":\"00ff\"}").unwrap(), TraceRef::Inline("00ff".into()));
        assert_eq!(parse("{\"path\":\"t.bin\"}").unwrap(), TraceRef::Path("t.bin".into()));
    }

    #[test]
    fn trace_workload_mismatch_is_a_structured_bad_request() {
        let trace = taco_workload::TraceGen::generate(9, 30, 5, 8);
        let mut spec = cam_spec();
        spec.entries = 8;
        spec.trace = Some(TraceRef::inline(&trace));

        // A workload equal to the trace's descriptor is accepted...
        spec.workload = Some(trace.descriptor());
        assert!(spec.to_request().is_ok());

        // ...any other workload is rejected, not silently overridden.
        spec.workload = Some(Workload::burst_overload());
        let err = spec.to_request().expect_err("mismatched workload must be rejected");
        assert_eq!(err.code, ApiErrorCode::BadRequest);
        assert!(err.message.contains("descriptor"), "{}", err.message);
    }

    #[test]
    fn status_and_shutdown_round_trip() {
        for request in [ApiRequest::Status, ApiRequest::Shutdown] {
            let line = request.to_json();
            assert_eq!(ApiRequest::from_json(&line).unwrap(), request);
        }
    }

    #[test]
    fn unknown_fields_are_rejected() {
        let line = ApiRequest::Status.to_json().replace('}', ",\"bogus\":1}");
        let err = ApiRequest::from_json(&line).unwrap_err();
        assert_eq!(err.code, ApiErrorCode::BadRequest);
        assert!(err.message.contains("bogus"), "{err}");
    }

    #[test]
    fn version_mismatch_is_structured() {
        let line = ApiRequest::Status.to_json().replace("\"v1\"", "\"v0\"");
        let err = ApiRequest::from_json(&line).unwrap_err();
        assert_eq!(err.code, ApiErrorCode::VersionMismatch);
        assert!(err.message.contains("v0"), "{err}");
        // Missing version entirely is a bad request.
        let err = ApiRequest::from_json("{\"kind\":\"status\"}").unwrap_err();
        assert_eq!(err.code, ApiErrorCode::BadRequest);
    }

    #[test]
    fn garbage_and_wrong_shapes_are_bad_requests() {
        for bad in ["", "not json", "[]", "42", "{\"api_version\":\"v1\"}"] {
            let err = ApiRequest::from_json(bad).unwrap_err();
            assert_eq!(err.code, ApiErrorCode::BadRequest, "{bad:?}");
        }
        let err =
            ApiRequest::from_json("{\"api_version\":\"v1\",\"kind\":\"teapot\"}").unwrap_err();
        assert!(err.message.contains("teapot"), "{err}");
    }

    #[test]
    fn zero_entries_and_zero_buses_are_rejected_not_panics() {
        let mut spec = cam_spec();
        spec.entries = 0;
        let err = ApiRequest::from_json(&ApiRequest::Eval(spec).to_json()).unwrap_err();
        assert!(err.message.contains("entries"), "{err}");

        let line = ApiRequest::Eval(cam_spec()).to_json().replace("\"buses\":3", "\"buses\":0");
        let err = ApiRequest::from_json(&line).unwrap_err();
        assert_eq!(err.code, ApiErrorCode::BadRequest);
    }

    #[test]
    fn rate_validation_matches_line_rate_new() {
        assert!(validated_rate(10e9, 1040).is_ok());
        for bad in [0.0, -1.0, f64::INFINITY, f64::NAN, f64::MIN_POSITIVE / 2.0] {
            assert!(validated_rate(bad, 1040).is_err(), "{bad}");
        }
        assert!(validated_rate(10e9, 0).is_err());
    }

    #[test]
    fn config_spec_inverts_every_in_tree_shape() {
        let mut shapes = ArchConfig::table1_cells();
        shapes.push(ArchConfig::with_replication(TableKind::Trie, 4, 2));
        shapes.push(ArchConfig::with_replication(TableKind::Cam, 2, 1).with_memory_ports(3));
        for config in shapes {
            let spec = ConfigSpec::from_config(&config)
                .unwrap_or_else(|| panic!("{} must be expressible", config.label()));
            assert_eq!(spec.to_config().unwrap(), config);
        }
        // Asymmetric replication has no wire spelling.
        let machine = MachineConfig::new(2).with_fu_count(taco_isa::FuKind::Matcher, 2);
        let odd = ArchConfig::new(machine, TableKind::Cam);
        assert_eq!(ConfigSpec::from_config(&odd), None);
    }

    #[test]
    fn name_parsers_list_alternatives() {
        assert_eq!(parse_table_kind("tree"), Ok(TableKind::BalancedTree));
        assert_eq!(parse_table_kind("patricia"), Ok(TableKind::Patricia));
        assert_eq!(parse_table_kind("pat"), Ok(TableKind::Patricia));
        assert!(parse_table_kind("btree").unwrap_err().contains("balanced-tree"));
        assert!(parse_table_kind("btree").unwrap_err().contains("patricia"));
        // Every display name must round-trip through the parser — the wire
        // serialises kinds by `Display`, so a kind the parser rejects
        // could be emitted but never read back.
        for kind in TableKind::ALL_KINDS {
            assert_eq!(parse_table_kind(&kind.to_string()), Ok(kind));
        }
        assert!(parse_workload_name("nope").unwrap_err().contains("steady-forward"));
        assert!(parse_fault_plan_name("nope").unwrap_err().contains("storm"));
        assert_eq!(parse_workload_name("table-churn"), Ok(Workload::table_churn()));
        assert_eq!(parse_fault_plan_name("storm"), Ok(FaultPlan::storm()));
        // Every documented machine spelling parses to the shape it names,
        // and the error message lists all of them (generated from the
        // spelling table, so it cannot drift from the parser).
        for (spelling, expected) in [
            ("1x1", ArchConfig::one_bus_one_fu(TableKind::Cam)),
            ("1BUS/1FU", ArchConfig::one_bus_one_fu(TableKind::Cam)),
            ("3x1", ArchConfig::three_bus_one_fu(TableKind::Cam)),
            ("3BUS/1FU", ArchConfig::three_bus_one_fu(TableKind::Cam)),
            ("3x3", ArchConfig::three_bus_three_fu(TableKind::Cam)),
            ("3bus/3CNT,3CMP,3M", ArchConfig::three_bus_three_fu(TableKind::Cam)),
        ] {
            let spec = parse_machine_spec(TableKind::Cam, spelling)
                .unwrap_or_else(|e| panic!("{spelling}: {e}"));
            assert_eq!(spec.to_config().unwrap(), expected, "{spelling}");
        }
        let err = parse_machine_spec(TableKind::Cam, "9x9").unwrap_err();
        for &(names, _, _) in MACHINE_SPELLINGS {
            for name in names {
                assert!(err.contains(name), "{name} missing from {err}");
            }
        }
        // The deprecated wrapper keeps working (the trace binary's old
        // callers) and funnels through the same table.
        #[allow(deprecated)]
        {
            assert!(parse_machine_shape(TableKind::Cam, "3x1").is_ok());
            let err = parse_machine_shape(TableKind::Cam, "9x9").unwrap_err();
            assert!(err.contains("3bus/3CNT,3CMP,3M"), "{err}");
        }
    }

    #[test]
    fn machine_spec_keeps_flat_bytes_for_default_systems() {
        let spec = MachineSpec::new(ConfigSpec::new(TableKind::Cam, 3, 1));
        assert_eq!(
            spec.to_json(),
            "{\"table\":\"cam\",\"buses\":3,\"replication\":1,\"memory_ports\":1}"
        );
        // The flat form parses back through the sniffing entry point.
        let parsed = MachineSpec::from_value(&Json::parse(&spec.to_json()).unwrap()).unwrap();
        assert_eq!(parsed, spec);
    }

    #[test]
    fn machine_spec_nested_form_round_trips() {
        let spec = MachineSpec::new(ConfigSpec::new(TableKind::Trie, 2, 2)).with_system(
            SystemConfig::with_cores(4)
                .topology(taco_isa::Topology::Mesh)
                .protocol(CoherenceProtocol::Msi)
                .cache(128, 8),
        );
        let line = spec.to_json();
        assert!(line.starts_with("{\"core\":{\"table\":\"trie\""), "{line}");
        assert!(line.contains("\"cores\":4"), "{line}");
        assert!(line.contains("\"topology\":\"mesh\""), "{line}");
        assert!(line.contains("\"coherence\":\"msi\""), "{line}");
        let parsed = MachineSpec::from_value(&Json::parse(&line).unwrap()).unwrap();
        assert_eq!(parsed, spec);
        assert_eq!(parsed.to_json(), line, "serialisation is a fixed point");
        // And the built ArchConfig carries the system through.
        assert_eq!(parsed.to_config().unwrap().system, spec.system);
    }

    #[test]
    fn machine_spec_nested_members_default_when_omitted() {
        let line = "{\"core\":{\"table\":\"cam\",\"buses\":3,\"replication\":1},\"cores\":2}";
        let spec = MachineSpec::from_value(&Json::parse(line).unwrap()).unwrap();
        assert_eq!(spec.system.cores, 2);
        assert_eq!(spec.system.cache, taco_isa::CacheConfig::default());
        assert_eq!(spec.system.interconnect, taco_isa::InterconnectConfig::default());
        assert_eq!(spec.system.protocol, CoherenceProtocol::Mesi);
    }

    #[test]
    fn machine_spec_rejections_name_the_field() {
        let parse = |json: &str| MachineSpec::from_value(&Json::parse(json).unwrap());
        let core = "\"core\":{\"table\":\"cam\",\"buses\":3,\"replication\":1}";
        for (bad, needle) in [
            (format!("{{{core},\"cores\":0}}"), "cores"),
            (format!("{{{core},\"cores\":9}}"), "cores"),
            (
                format!("{{{core},\"interconnect\":{{\"topology\":\"ring\",\"latency\":2}}}}"),
                "ring",
            ),
            (format!("{{{core},\"coherence\":\"moesi\"}}"), "moesi"),
            (format!("{{{core},\"cache\":{{\"lines\":0,\"line_words\":4}}}}"), "lines"),
            (
                format!("{{{core},\"interconnect\":{{\"topology\":\"mesh\",\"latency\":0}}}}"),
                "latency",
            ),
            (format!("{{{core},\"warp\":1}}"), "warp"),
        ] {
            let err = parse(&bad).expect_err(&bad);
            assert_eq!(err.code, ApiErrorCode::BadRequest, "{bad}");
            assert!(err.message.contains(needle), "{needle} missing from {err}");
        }
        // Unknown topologies and protocols list the accepted names.
        let err =
            parse(&format!("{{{core},\"interconnect\":{{\"topology\":\"ring\",\"latency\":2}}}}"))
                .unwrap_err();
        assert!(err.message.contains("shared-bus") && err.message.contains("mesh"), "{err}");
        let err = parse(&format!("{{{core},\"coherence\":\"moesi\"}}")).unwrap_err();
        assert!(err.message.contains("msi") && err.message.contains("mesi"), "{err}");
    }

    #[test]
    fn multicore_eval_requests_round_trip() {
        let mut spec = cam_spec();
        spec.config =
            spec.config.with_system(SystemConfig::with_cores(2).topology(taco_isa::Topology::Mesh));
        spec.entries = 8;
        let request = ApiRequest::Eval(spec);
        let line = request.to_json();
        assert!(line.contains("\"config\":{\"core\":{"), "{line}");
        assert_eq!(ApiRequest::from_json(&line).unwrap(), request);
        assert_eq!(ApiRequest::from_json(&line).unwrap().to_json(), line);
    }

    #[test]
    fn status_reports_the_supported_spec_features() {
        let response = ApiResponse::Status(StatusInfo {
            in_flight: 0,
            queued: 0,
            max_pending: 4,
            draining: false,
            cache_entries: 0,
            cache_hits: 0,
            cache_misses: 0,
        });
        let line = response.to_json();
        assert!(
            line.contains(
                "\"features\":{\"max_cores\":8,\"topologies\":[\"shared-bus\",\"mesh\"],\
                 \"protocols\":[\"msi\",\"mesi\"]}"
            ),
            "{line}"
        );
        assert_eq!(ApiResponse::from_json(&line).unwrap(), response);
        // Pre-multicore status lines (no features member) still parse.
        let old = line.replace(
            ",\"features\":{\"max_cores\":8,\"topologies\":[\"shared-bus\",\"mesh\"],\
             \"protocols\":[\"msi\",\"mesi\"]}",
            "",
        );
        assert_ne!(old, line);
        assert_eq!(ApiResponse::from_json(&old).unwrap(), response);
    }

    #[test]
    fn error_response_round_trips() {
        let response = ApiResponse::Error(ApiError::busy("queue full (4 in flight)"));
        let line = response.to_json();
        assert!(line.contains("\"code\":\"busy\""), "{line}");
        assert_eq!(ApiResponse::from_json(&line).unwrap(), response);
    }

    #[test]
    fn status_response_round_trips() {
        let response = ApiResponse::Status(StatusInfo {
            in_flight: 2,
            queued: 1,
            max_pending: 8,
            draining: false,
            cache_entries: 11,
            cache_hits: 40,
            cache_misses: 11,
        });
        let line = response.to_json();
        assert_eq!(ApiResponse::from_json(&line).unwrap(), response);
        assert_eq!(ApiResponse::from_json(&line).unwrap().to_json(), line);
    }

    #[test]
    fn shutdown_ack_round_trips_with_and_without_snapshot() {
        for persisted in [Some(9), None] {
            let line = ApiResponse::ShutdownAck { persisted }.to_json();
            assert_eq!(
                ApiResponse::from_json(&line).unwrap(),
                ApiResponse::ShutdownAck { persisted }
            );
        }
    }

    #[test]
    fn step_mode_is_omitted_at_default_and_round_trips_otherwise() {
        // Compiled (the default) must not change pre-existing v1 bytes.
        let line = ApiRequest::Eval(cam_spec()).to_json();
        assert!(!line.contains("step_mode"), "{line}");

        let mut spec = cam_spec();
        spec.step_mode = StepMode::Interpretive;
        let request = ApiRequest::Eval(spec);
        let line = request.to_json();
        assert!(line.contains("\"step_mode\":\"interpretive\""), "{line}");
        assert_eq!(ApiRequest::from_json(&line).unwrap(), request);
        assert_eq!(ApiRequest::from_json(&line).unwrap().to_json(), line);

        // Unknown modes are structured bad requests naming the options.
        let bad = line.replace("interpretive", "warp-speed");
        let err = ApiRequest::from_json(&bad).unwrap_err();
        assert_eq!(err.code, ApiErrorCode::BadRequest);
        assert!(err.message.contains("warp-speed"), "{err}");
        assert!(err.message.contains("compiled"), "{err}");
    }

    #[test]
    fn step_mode_survives_the_request_round_trip() {
        let mut spec = cam_spec();
        spec.step_mode = StepMode::Interpretive;
        let request = spec.to_request().unwrap();
        assert_eq!(request.step_mode, StepMode::Interpretive);
        assert_eq!(EvalSpec::from_request(&request).unwrap().step_mode, StepMode::Interpretive);
    }

    #[test]
    fn v2_envelope_round_trips_and_requires_an_id() {
        let wire = WireRequest { id: Some(7), request: ApiRequest::Status };
        let line = wire.to_json();
        assert!(line.starts_with("{\"api_version\":\"v2\",\"id\":7,"), "{line}");
        assert_eq!(WireRequest::from_json(&line).unwrap(), wire);
        assert_eq!(WireRequest::from_json(&line).unwrap().to_json(), line);

        // A v1 line sniffs as id-less through the same entry point.
        let v1 = WireRequest { id: None, request: ApiRequest::Status };
        assert_eq!(WireRequest::from_json(&v1.to_json()).unwrap(), v1);

        // v2 without an id, and v1 with one, are both structured errors.
        let err =
            WireRequest::from_json("{\"api_version\":\"v2\",\"kind\":\"status\"}").unwrap_err();
        assert_eq!(err.code, ApiErrorCode::BadRequest);
        let err = WireRequest::from_json("{\"api_version\":\"v1\",\"id\":1,\"kind\":\"status\"}")
            .unwrap_err();
        assert_eq!(err.code, ApiErrorCode::BadRequest);
        assert!(err.message.contains("v2"), "{err}");

        // Unknown versions stay a version mismatch naming both dialects.
        let err =
            WireRequest::from_json("{\"api_version\":\"v3\",\"kind\":\"status\"}").unwrap_err();
        assert_eq!(err.code, ApiErrorCode::VersionMismatch);
        assert!(err.message.contains("v1") && err.message.contains("v2"), "{err}");
    }

    #[test]
    fn sharded_sweeps_are_v2_only_and_validated() {
        let shard = |offset, stride| ApiRequest::Sweep {
            spec: SweepSpec::default(),
            rate: LineRate::GIGE,
            constraints: Constraints::default(),
            shard: Some(SweepShard { offset, stride }),
        };
        let line = shard(1, 3).to_json_v2(42);
        let wire = WireRequest::from_json(&line).unwrap();
        assert_eq!(wire.id, Some(42));
        assert_eq!(wire.request, shard(1, 3));
        assert_eq!(wire.to_json(), line);

        // The same body under a v1 envelope is rejected, not ignored.
        let err = WireRequest::from_json(&shard(1, 3).to_json()).unwrap_err();
        assert_eq!(err.code, ApiErrorCode::BadRequest);
        assert!(err.message.contains("v2"), "{err}");

        // Out-of-range stripes are structured errors.
        for (offset, stride) in [(0, 0), (3, 3), (5, 2)] {
            let err = WireRequest::from_json(&shard(offset, stride).to_json_v2(1)).unwrap_err();
            assert_eq!(err.code, ApiErrorCode::BadRequest, "{offset}/{stride}");
        }
    }

    #[test]
    fn cache_exchange_round_trips_and_is_v2_only() {
        for request in
            [ApiRequest::CacheExport, ApiRequest::CacheImport { body: "snap\nline\n".into() }]
        {
            let line = request.to_json_v2(9);
            let wire = WireRequest::from_json(&line).unwrap();
            assert_eq!(wire.request, request);
            assert_eq!(wire.to_json(), line);

            let err = ApiRequest::from_json(&request.to_json()).unwrap_err();
            assert_eq!(err.code, ApiErrorCode::BadRequest);
            assert!(err.message.contains("v2"), "{err}");
        }
        let responses = [
            ApiResponse::CacheSnapshot { body: "snap \"quoted\"\n".into() },
            ApiResponse::CacheLoaded { entries: 17 },
        ];
        for response in responses {
            let line = response.to_json_v2(Some(9));
            let wire = WireResponse::from_json(&line).unwrap();
            assert_eq!(wire.id, Some(9));
            assert_eq!(wire.response, response);
            assert_eq!(wire.to_json(), line);
        }
    }

    #[test]
    fn v2_error_lines_carry_a_null_id_when_unsalvageable() {
        let response = ApiResponse::Error(ApiError::bad_request("unparseable frame"));
        let line = response.to_json_v2(None);
        assert!(line.starts_with("{\"api_version\":\"v2\",\"id\":null,"), "{line}");
        let wire = WireResponse::from_json(&line).unwrap();
        assert!(wire.v2 && wire.id.is_none());
        assert_eq!(wire.response, response);

        assert_eq!(salvage_request_id("{\"id\":31,\"kind\":\"nope\""), None);
        assert_eq!(salvage_request_id("{\"id\":31,\"bogus\":{}}"), Some(31));
        assert_eq!(salvage_request_id("{\"id\":\"nope\"}"), None);
        assert_eq!(salvage_request_id("garbage"), None);
    }

    #[test]
    fn error_codes_enumerate_exhaustively() {
        for code in ApiErrorCode::ALL {
            assert_eq!(ApiErrorCode::from_str_opt(code.as_str()), Some(code));
        }
        assert!(ApiErrorCode::Busy.is_retryable());
        let transient: Vec<_> =
            ApiErrorCode::ALL.iter().copied().filter(|c| c.is_retryable()).collect();
        assert_eq!(transient, [ApiErrorCode::Busy]);
    }
}
