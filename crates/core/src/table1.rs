//! Regeneration of the paper's Table 1.

use std::fmt::Write as _;

use taco_estimate::Estimate;

use crate::arch::ArchConfig;
use crate::cache::EvalCache;
use crate::evaluate::EvalReport;
use crate::rate::LineRate;
use crate::request::EvalRequest;

/// Evaluates all twelve cells of the extended Table 1 (the paper's three
/// routing-table implementations plus the path-compressed PATRICIA
/// organisation, × three architecture configurations) and returns the
/// reports in the paper's row order — the paper's nine cells first.
///
/// `entries` is the routing-table size (the paper's constraint is "a
/// maximum size of 100 entries").
///
/// Cells are answered from the process-global [`EvalCache`]: the paper's
/// nine Table 1 points are a subset of the default exploration grid, so a
/// sweep that already ran in this process makes most of this call
/// (nearly) free.
pub fn table1(line_rate: LineRate, entries: usize) -> Vec<EvalReport> {
    let cache = EvalCache::global();
    ArchConfig::table1_cells()
        .iter()
        .map(|c| cache.evaluate(&EvalRequest::new(c.clone()).rate(line_rate).entries(entries)))
        .collect()
}

/// Renders reports in the layout of the paper's Table 1.
///
/// ```text
/// Routing Table   Architecture          Required   Bus util.   Area    Avg. Power
/// Implementation  configuration         speed      [%]         [mm2]   [W]
/// sequential      1BUS/1FU              2.23 GHz   100         NA      NA
/// ...
/// ```
pub fn render(reports: &[EvalReport]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<15} {:<20} {:>12} {:>10} {:>9} {:>12}",
        "Routing Table", "Architecture", "Required", "Bus util.", "Area", "Avg. Power"
    );
    let _ = writeln!(
        out,
        "{:<15} {:<20} {:>12} {:>10} {:>9} {:>12}",
        "Implementation", "configuration", "speed", "[%]", "[mm2]", "[W]"
    );
    let mut last_kind = None;
    for r in reports {
        let kind = if last_kind == Some(r.config.table) {
            String::new()
        } else {
            last_kind = Some(r.config.table);
            r.config.table.to_string()
        };
        let speed = format_frequency(r.required_frequency_hz);
        let machine = format!("{}{}", r.config.machine.label(), r.config.system.label_suffix());
        let (area, power) = match &r.estimate {
            Estimate::Feasible(e) => (format!("{:.2}", e.area_mm2), format!("{:.3}", e.power_w)),
            Estimate::Infeasible { .. } => ("NA".to_string(), "NA".to_string()),
        };
        let _ = writeln!(
            out,
            "{:<15} {:<20} {:>12} {:>10.0} {:>9} {:>12}",
            kind,
            machine,
            speed,
            r.bus_utilization * 100.0,
            area,
            power
        );
    }
    out
}

/// Renders reports as CSV (one row per cell) for plotting, with raw SI
/// values rather than the display formatting of [`render`].
pub fn to_csv(reports: &[EvalReport]) -> String {
    let mut out = String::from(
        "table,config,cycles_per_datagram,bus_utilization,required_hz,feasible,area_mm2,power_w
",
    );
    for r in reports {
        let machine = format!("{}{}", r.config.machine.label(), r.config.system.label_suffix());
        let (feasible, area, power) = match &r.estimate {
            Estimate::Feasible(e) => (true, e.area_mm2.to_string(), e.power_w.to_string()),
            Estimate::Infeasible { .. } => (false, String::new(), String::new()),
        };
        let _ = writeln!(
            out,
            "{},{},{},{},{},{},{},{}",
            r.config.table,
            machine,
            r.cycles_per_datagram,
            r.bus_utilization,
            r.required_frequency_hz,
            feasible,
            area,
            power
        );
    }
    out
}

/// Formats a frequency the way the paper writes them (`6 GHz`, `600 MHz`).
pub fn format_frequency(hz: f64) -> String {
    if hz >= 1e9 {
        format!("{:.2} GHz", hz / 1e9)
    } else {
        format!("{:.0} MHz", hz / 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taco_routing::TableKind;

    #[test]
    fn frequency_formatting() {
        assert_eq!(format_frequency(6e9), "6.00 GHz");
        assert_eq!(format_frequency(600e6), "600 MHz");
        assert_eq!(format_frequency(35e6), "35 MHz");
    }

    #[test]
    fn csv_export_has_one_row_per_cell() {
        let reports = table1(LineRate::TEN_GBE_MIN_FRAMES, 2);
        let csv = to_csv(&reports);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 13); // header + 12 cells
        assert!(lines[0].starts_with("table,config,"));
        assert!(lines[1].starts_with("sequential,"));
        assert!(lines[10].starts_with("patricia,"));
        // Infeasible rows leave the physical columns empty.
        assert!(csv.contains(",false,,"));
    }

    #[test]
    fn render_shapes_na_cells() {
        // A fast end-to-end check on a tiny table (3 entries) so the CI
        // cost stays low; the full 100-entry table is exercised by the
        // table1 bench binary and the integration tests.
        let reports = table1(LineRate::TEN_GBE_MIN_FRAMES, 3);
        assert_eq!(reports.len(), 12);
        let text = render(&reports);
        assert!(text.contains("NA"), "min-frame 10GbE must overwhelm something:\n{text}");
        assert!(text.contains("sequential"));
        assert!(text.contains("balanced-tree"));
        assert!(text.contains("cam"));
        assert!(text.contains("patricia"));
        // Row order matches the paper, with the PATRICIA column appended.
        assert_eq!(reports[0].config.table, TableKind::Sequential);
        assert_eq!(reports[3].config.table, TableKind::BalancedTree);
        assert_eq!(reports[6].config.table, TableKind::Cam);
        assert_eq!(reports[9].config.table, TableKind::Patricia);
    }
}
