//! The fast-evaluation pipeline: simulate, derive the required clock,
//! estimate physics — the paper's co-analysis of the SystemC and Matlab
//! models.

use taco_estimate::{Estimate, Estimator, ExternalCam};
use taco_ipv6::{Datagram, NextHeader};
use taco_router::cycle::CycleRouter;
use taco_router::microcode::MicrocodeOptions;
use taco_router::traffic::TrafficGen;
use taco_routing::cam::CamSpec;
use taco_routing::{BalancedTreeTable, CamTable, PortId, Route, SequentialTable, TableKind};
use taco_sim::SimStats;

use crate::arch::ArchConfig;
use crate::rate::LineRate;

/// Number of measurement datagrams per evaluation (amortises the once-off
/// envelope of a batch run).
const MEASURE_DATAGRAMS: usize = 8;

/// Simulation watchdog per evaluation.
const CYCLE_BUDGET: u64 = 50_000_000;

/// The co-analysis result for one architecture instance — one cell of
/// Table 1.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalReport {
    /// The evaluated instance.
    pub config: ArchConfig,
    /// The line-rate target the requirement was computed against.
    pub line_rate: LineRate,
    /// Routing-table size used for the measurement.
    pub table_entries: usize,
    /// Measured cycles per forwarded datagram (worst-case-biased workload).
    pub cycles_per_datagram: f64,
    /// Dynamic bus utilisation observed during the measurement (Table 1's
    /// "Bus util." column).
    pub bus_utilization: f64,
    /// Minimum clock frequency to sustain the line rate.
    pub required_frequency_hz: f64,
    /// RTU (CAM) search latency in cycles at that frequency (1 for the
    /// microcoded table organisations, which do not use the RTU).
    pub rtu_latency_cycles: u32,
    /// Encoded program-image size in bits (instruction store + literal
    /// pool), as charged to the area estimate.
    pub program_bits: u64,
    /// Physical estimate at the required frequency ("NA" above the
    /// technology ceiling).
    pub estimate: Estimate,
    /// Raw simulator counters from the measurement run (the final
    /// fixed-point iteration for the CAM organisation) — the "performance
    /// data" the paper reads off its SystemC model, kept so sweep
    /// observers can serialise it per design point.
    pub stats: SimStats,
}

impl EvalReport {
    /// `true` when the required clock is achievable in the technology.
    pub fn is_feasible(&self) -> bool {
        self.estimate.is_feasible()
    }
}

impl std::fmt::Display for EvalReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: {:.0} cycles/datagram, bus util {:.0}%, needs {} for {} -> {}",
            self.config,
            self.cycles_per_datagram,
            self.bus_utilization * 100.0,
            crate::table1::format_frequency(self.required_frequency_hz),
            self.line_rate,
            self.estimate
        )
    }
}

/// Builds the deterministic benchmark routing table used by every
/// evaluation: `entries` prefixes of mixed length under a shared global
/// prefix (which is what makes the sequential screen pass earn its keep),
/// with no default route so misses are possible.
pub fn benchmark_routes(entries: usize) -> Vec<Route> {
    let mut gen = TrafficGen::new(0x7AC0, 4);
    gen.table(entries, false)
}

/// The measurement workload: every datagram's destination matches the entry
/// the sequential scan reaches *last*, so each organisation is charged its
/// worst case — the "required speed" of Table 1 must *guarantee* line rate,
/// not merely sustain it on friendly traffic.
fn measurement_datagrams(routes: &[Route]) -> Vec<Datagram> {
    let mut gen = TrafficGen::new(0x0DA7A, 4);
    let table = SequentialTable::from_routes(routes.iter().copied());
    let deepest = *table.entries().last().expect("non-empty table");
    (0..MEASURE_DATAGRAMS)
        .map(|_| {
            let dst = gen.addr_in(&deepest.prefix());
            Datagram::builder("2001:db8:ffff::1".parse().expect("valid"), dst)
                .hop_limit(64)
                .payload(NextHeader::Udp, vec![0u8; 32])
                .build()
        })
        .collect()
}

/// Builds the cycle router for `config` over `routes`, with `rtu_latency`
/// for the CAM case.
fn build_router(config: &ArchConfig, routes: &[Route], rtu_latency: u32) -> CycleRouter {
    let opts = MicrocodeOptions::default();
    match config.table {
        TableKind::Sequential => {
            let table = SequentialTable::from_routes(routes.iter().copied());
            CycleRouter::sequential(&config.machine, &table, &opts)
        }
        TableKind::BalancedTree => {
            let table = BalancedTreeTable::from_routes(routes.iter().copied());
            CycleRouter::tree(&config.machine, &table, &opts)
        }
        TableKind::Trie => {
            let table = taco_routing::TrieTable::from_routes(routes.iter().copied());
            CycleRouter::trie(&config.machine, &table, &opts)
        }
        TableKind::Cam => {
            let table = CamTable::from_routes(routes.iter().copied());
            CycleRouter::cam(&config.machine, table, rtu_latency, &opts)
        }
    }
    .expect("generated microcode always validates")
}

/// Measures cycles per datagram and bus utilisation for one configuration,
/// returning the raw simulator counters alongside.
fn measure(config: &ArchConfig, routes: &[Route], rtu_latency: u32) -> (f64, f64, SimStats) {
    let mut router = build_router(config, routes, rtu_latency);
    for d in measurement_datagrams(routes) {
        router.enqueue(PortId(0), &d).expect("measurement datagrams fit the buffer");
    }
    let stats = router.run(CYCLE_BUDGET).expect("measurement run completes");
    let n = router.forwarded().len().max(1);
    (stats.cycles as f64 / n as f64, stats.bus_utilization(), stats)
}

/// Evaluates one architecture instance against a line-rate target — the
/// paper's per-cell methodology.
///
/// For the CAM organisation the RTU latency depends on the clock and the
/// clock depends on the measured cycles (which include RTU stalls), so the
/// evaluation iterates the pair to a fixed point; it converges in a few
/// rounds because the latency is quantised to whole cycles.
///
/// # Examples
///
/// ```
/// use taco_core::{evaluate, ArchConfig, LineRate, RoutingTableKind};
///
/// let report = evaluate(
///     &ArchConfig::three_bus_one_fu(RoutingTableKind::Cam),
///     LineRate::TEN_GBE,
///     100,
/// );
/// assert!(report.is_feasible());
/// assert!(report.required_frequency_hz < 200e6); // tens of MHz, as in the paper
/// ```
pub fn evaluate(config: &ArchConfig, line_rate: LineRate, table_entries: usize) -> EvalReport {
    let routes = benchmark_routes(table_entries);
    let cam_spec = CamSpec::paper_default();

    let mut rtu_latency = 1u32;
    let (cycles, util, freq, stats) = loop {
        let (cycles, util, stats) = measure(config, &routes, rtu_latency);
        let freq = line_rate.required_frequency_hz(cycles);
        if config.table != TableKind::Cam {
            break (cycles, util, freq, stats);
        }
        let next = cam_spec.search_cycles(freq) as u32;
        if next == rtu_latency {
            break (cycles, util, freq, stats);
        }
        rtu_latency = next;
    };

    // Charge the program store for the actual microcode image.
    let router = build_router(config, &routes, rtu_latency);
    let program_bits = taco_isa::encode(router.processor().program(), &config.machine)
        .map(|e| e.total_bits())
        .unwrap_or(0);

    let mut estimator = Estimator::new().with_program_bits(program_bits);
    if config.table == TableKind::Cam {
        estimator = estimator.with_cam(ExternalCam::micron_harmony());
    }
    let estimate = estimator.estimate(&config.machine, freq);

    EvalReport {
        config: config.clone(),
        line_rate,
        table_entries,
        cycles_per_datagram: cycles,
        bus_utilization: util,
        required_frequency_hz: freq,
        rtu_latency_cycles: rtu_latency,
        program_bits,
        estimate,
        stats,
    }
}

/// Measures only the cycles-per-datagram of a configuration at a given
/// table size (used by the scaling ablation, where no line-rate conversion
/// is wanted).
pub fn cycles_per_datagram(config: &ArchConfig, table_entries: usize) -> f64 {
    let routes = benchmark_routes(table_entries);
    measure(config, &routes, 2).0
}

#[cfg(test)]
mod stats_field_tests {
    use super::*;

    #[test]
    fn report_carries_the_measurement_counters() {
        let r = evaluate(&ArchConfig::three_bus_one_fu(TableKind::Cam), LineRate::TEN_GBE, 8);
        assert!(r.stats.cycles > 0);
        assert!((r.stats.bus_utilization() - r.bus_utilization).abs() < 1e-12);
        let json = r.stats.to_json();
        assert!(json.contains("\"cycles\":"), "{json}");
    }
}

/// The inverse analysis: the highest line rate (bits per second) this
/// configuration can guarantee when clocked at the technology ceiling,
/// assuming `packet_bytes` per packet on the wire.
///
/// This answers the designer's converse question — "the clock is whatever
/// the library gives me; what wire speed does that buy?" — and locates the
/// crossovers of the paper's Table 1 from the other side.
pub fn max_sustainable_rate_bps(
    config: &ArchConfig,
    table_entries: usize,
    packet_bytes: u32,
) -> f64 {
    let routes = benchmark_routes(table_entries);
    let f_max = Estimator::new().max_frequency_hz() * 0.999; // just under NA
    let rtu_latency = CamSpec::paper_default().search_cycles(f_max) as u32;
    let (cycles, _, _) = measure(config, &routes, rtu_latency);
    (f_max / cycles) * 8.0 * f64::from(packet_bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_routes_deterministic_and_sized() {
        let a = benchmark_routes(50);
        let b = benchmark_routes(50);
        assert_eq!(a, b);
        assert_eq!(a.len(), 50);
    }

    #[test]
    fn report_display_reads_as_a_sentence() {
        let r = evaluate(&ArchConfig::three_bus_one_fu(TableKind::Cam), LineRate::TEN_GBE, 8);
        let text = r.to_string();
        assert!(text.contains("cam 3BUS/1FU"), "{text}");
        assert!(text.contains("cycles/datagram"), "{text}");
        assert!(text.contains("mm2"), "{text}");
    }

    #[test]
    fn sequential_needs_infeasible_clock_at_10g() {
        let r = evaluate(
            &ArchConfig::one_bus_one_fu(TableKind::Sequential),
            LineRate::TEN_GBE,
            100,
        );
        assert!(!r.is_feasible(), "sequential 1-bus must be NA: {}", r.required_frequency_hz);
        assert!(r.required_frequency_hz > 1.5e9);
    }

    #[test]
    fn tree_is_roughly_logarithmic_and_feasible() {
        let r = evaluate(
            &ArchConfig::three_bus_one_fu(TableKind::BalancedTree),
            LineRate::TEN_GBE,
            100,
        );
        assert!(r.is_feasible(), "tree 3-bus should fit 0.18um: {}", r.required_frequency_hz);
        assert!(r.required_frequency_hz < 1e9);
    }

    #[test]
    fn cam_needs_only_tens_of_mhz() {
        let r = evaluate(&ArchConfig::three_bus_one_fu(TableKind::Cam), LineRate::TEN_GBE, 100);
        assert!(r.is_feasible());
        assert!(r.required_frequency_hz < 150e6, "{}", r.required_frequency_hz);
        assert!(r.rtu_latency_cycles >= 1);
        // The external CAM is attached to the estimate.
        let est = r.estimate.feasible().unwrap();
        assert!(est.cam.is_some());
        assert!(est.total_power_w() > est.power_w);
    }

    #[test]
    fn inverse_analysis_agrees_with_forward_analysis() {
        // A configuration whose required clock is feasible must sustain at
        // least the target rate when clocked at the ceiling, and vice versa.
        let config = ArchConfig::three_bus_one_fu(TableKind::Cam);
        let fwd = evaluate(&config, LineRate::TEN_GBE, 64);
        let max_rate = max_sustainable_rate_bps(&config, 64, LineRate::TEN_GBE.packet_bytes);
        assert!(fwd.is_feasible());
        assert!(max_rate > LineRate::TEN_GBE.bits_per_second, "{max_rate}");

        let slow = ArchConfig::one_bus_one_fu(TableKind::Sequential);
        let slow_max = max_sustainable_rate_bps(&slow, 64, 84);
        assert!(
            slow_max < LineRate::TEN_GBE_MIN_FRAMES.bits_per_second,
            "sequential cannot do min-frame 10G: {slow_max}"
        );
    }

    #[test]
    fn buses_lower_the_required_clock() {
        let one = evaluate(&ArchConfig::one_bus_one_fu(TableKind::Cam), LineRate::TEN_GBE, 100);
        let three = evaluate(&ArchConfig::three_bus_one_fu(TableKind::Cam), LineRate::TEN_GBE, 100);
        assert!(
            three.required_frequency_hz < 0.7 * one.required_frequency_hz,
            "3 buses should cut the clock substantially: {} vs {}",
            one.required_frequency_hz,
            three.required_frequency_hz
        );
    }

    #[test]
    fn ordering_matches_the_paper() {
        // For every machine configuration: sequential > tree > cam.
        let seq = evaluate(&ArchConfig::three_bus_one_fu(TableKind::Sequential), LineRate::TEN_GBE, 100);
        let tree = evaluate(&ArchConfig::three_bus_one_fu(TableKind::BalancedTree), LineRate::TEN_GBE, 100);
        let cam = evaluate(&ArchConfig::three_bus_one_fu(TableKind::Cam), LineRate::TEN_GBE, 100);
        assert!(seq.required_frequency_hz > tree.required_frequency_hz);
        assert!(tree.required_frequency_hz > cam.required_frequency_hz);
    }
}
