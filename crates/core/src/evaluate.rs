//! The fast-evaluation pipeline: simulate, derive the required clock,
//! estimate physics — the paper's co-analysis of the SystemC and Matlab
//! models.

use taco_estimate::{Estimate, Estimator, ExternalCam};
use taco_ipv6::{Datagram, NextHeader};
use taco_isa::{CoherenceProtocol, SystemConfig, Topology};
use taco_router::cycle::CycleRouter;
use taco_router::microcode::MicrocodeOptions;
use taco_router::traffic::TrafficGen;
use taco_routing::cam::CamSpec;
use taco_routing::{PortId, Route, SequentialTable, TableKind};
use taco_sim::{SimError, SimStats, StepMode};
use taco_workload::{
    run_scenario_with_faults, run_trace_replay, FaultPlan, ScenarioConfig, ScenarioMetrics,
};

use crate::arch::ArchConfig;
use crate::rate::LineRate;
use crate::request::EvalRequest;

/// Number of measurement datagrams per evaluation (amortises the once-off
/// envelope of a batch run).
const MEASURE_DATAGRAMS: usize = 8;

/// Simulation watchdog per evaluation.
const CYCLE_BUDGET: u64 = 50_000_000;

/// Seconds of wall time one behavioural scenario tick represents when a
/// workload is attached to a request: the per-tick service budget is the
/// number of datagrams the instance forwards in this long at the
/// technology-ceiling clock.  (The scenario's coarse 100 ms tick drives
/// only the RIPng timers; the data plane is modelled on this much finer
/// slice so the built-in workloads — tens of datagrams per tick — sit in
/// the regime where queueing and overload are actually visible.)
const SCENARIO_TICK_SECONDS: f64 = 10e-6;

/// A failure of the [`EvalRequest::trace`](EvalRequest::trace) side
/// channel: the evaluation itself succeeded, but the Chrome timeline could
/// not be produced (unwritable path, failed replay).  Carried on the
/// report instead of being dropped on stderr so programmatic callers — and
/// the wire API — can see it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceError {
    /// The path the timeline was meant to be written to.
    pub path: String,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "could not write trace {}: {}", self.path, self.message)
    }
}

/// The co-analysis result for one architecture instance — one cell of
/// Table 1.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalReport {
    /// The evaluated instance.
    pub config: ArchConfig,
    /// The line-rate target the requirement was computed against.
    pub line_rate: LineRate,
    /// Routing-table size used for the measurement.
    pub table_entries: usize,
    /// Measured cycles per forwarded datagram (worst-case-biased workload);
    /// infinite when the instance could not be simulated at all (see
    /// [`EvalReport::sim_error`]).
    pub cycles_per_datagram: f64,
    /// Dynamic bus utilisation observed during the measurement (Table 1's
    /// "Bus util." column).
    pub bus_utilization: f64,
    /// Minimum clock frequency to sustain the line rate.
    pub required_frequency_hz: f64,
    /// RTU (CAM) search latency in cycles at that frequency (1 for the
    /// microcoded table organisations, which do not use the RTU).
    pub rtu_latency_cycles: u32,
    /// Encoded program-image size in bits (instruction store + literal
    /// pool), as charged to the area estimate.
    pub program_bits: u64,
    /// Physical estimate at the required frequency ("NA" above the
    /// technology ceiling).
    pub estimate: Estimate,
    /// Raw simulator counters from the measurement run (the final
    /// fixed-point iteration for the CAM organisation) — the "performance
    /// data" the paper reads off its SystemC model, kept so sweep
    /// observers can serialise it per design point.
    pub stats: SimStats,
    /// Behavioural scenario metrics, present when the request attached a
    /// [`Workload`](taco_workload::Workload) and the measurement succeeded.
    pub scenario: Option<ScenarioMetrics>,
    /// The structured simulator error that aborted the measurement, if
    /// any.  A report carrying one is infeasible by construction: the
    /// instance cannot execute its own microcode, so no clock rescues it.
    pub sim_error: Option<SimError>,
    /// A failure of the requested trace side channel, if any.  Unlike
    /// [`EvalReport::sim_error`] this does not invalidate the report: the
    /// measurement completed, only the timeline file is missing.
    pub trace_error: Option<TraceError>,
}

impl EvalReport {
    /// `true` when the required clock is achievable in the technology.
    pub fn is_feasible(&self) -> bool {
        self.estimate.is_feasible()
    }
}

impl std::fmt::Display for EvalReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if let Some(e) = &self.sim_error {
            return write!(f, "{}: not simulatable ({e})", self.config);
        }
        write!(
            f,
            "{}: {:.0} cycles/datagram, bus util {:.0}%, needs {} for {} -> {}",
            self.config,
            self.cycles_per_datagram,
            self.bus_utilization * 100.0,
            crate::table1::format_frequency(self.required_frequency_hz),
            self.line_rate,
            self.estimate
        )
    }
}

/// Builds the deterministic benchmark routing table used by every
/// evaluation: `entries` prefixes of mixed length under a shared global
/// prefix (which is what makes the sequential screen pass earn its keep),
/// with no default route so misses are possible.
pub fn benchmark_routes(entries: usize) -> Vec<Route> {
    let mut gen = TrafficGen::new(0x7AC0, 4);
    gen.table(entries, false)
}

/// The measurement workload: every datagram's destination matches the entry
/// the sequential scan reaches *last*, so each organisation is charged its
/// worst case — the "required speed" of Table 1 must *guarantee* line rate,
/// not merely sustain it on friendly traffic.
fn measurement_datagrams(routes: &[Route]) -> Vec<Datagram> {
    let mut gen = TrafficGen::new(0x0DA7A, 4);
    let table = SequentialTable::from_routes(routes.iter().copied());
    let deepest = *table.entries().last().expect("non-empty table");
    (0..MEASURE_DATAGRAMS)
        .map(|_| {
            let dst = gen.addr_in(&deepest.prefix());
            Datagram::builder("2001:db8:ffff::1".parse().expect("valid"), dst)
                .hop_limit(64)
                .payload(NextHeader::Udp, vec![0u8; 32])
                .build()
        })
        .collect()
}

/// Builds the cycle router for `config` over `routes`, with `rtu_latency`
/// for the CAM case.  A [`SimError`] means the generated microcode does
/// not fit (or does not validate on) the configured machine — reported as
/// structured infeasibility rather than a panic.
fn build_router(
    config: &ArchConfig,
    routes: &[Route],
    rtu_latency: u32,
    mode: StepMode,
) -> Result<CycleRouter, SimError> {
    let opts = MicrocodeOptions::default();
    let mut router =
        CycleRouter::for_kind(config.table, &config.machine, routes, rtu_latency, &opts)?;
    router.set_step_mode(mode);
    Ok(router)
}

/// Builds the transient-stall injector a fault plan asks for, if any; the
/// fault-free path never constructs one, so it keeps the exact pre-fault
/// `run()` entry point (the `NullTracer` monomorphisation discipline).
fn stall_injector(faults: Option<&FaultPlan>) -> Option<taco_sim::PeriodicStall> {
    let plan = faults?;
    if plan.stall_every_cycles == 0 {
        return None;
    }
    Some(taco_sim::PeriodicStall::new(
        u64::from(plan.stall_every_cycles),
        u64::from(plan.stall_cycles.max(1)),
    ))
}

/// Measures cycles per datagram and bus utilisation for one configuration,
/// returning the raw simulator counters alongside.
fn measure(
    config: &ArchConfig,
    routes: &[Route],
    rtu_latency: u32,
    faults: Option<&FaultPlan>,
    mode: StepMode,
) -> Result<(f64, f64, SimStats), SimError> {
    let mut router = build_router(config, routes, rtu_latency, mode)?;
    let datagrams = measurement_datagrams(routes);
    router
        .enqueue_batch(datagrams.iter().map(|d| (PortId(0), d)))
        .expect("measurement datagrams fit the buffer");
    let stats = match stall_injector(faults) {
        Some(mut injector) => router.run_fault_injected(CYCLE_BUDGET, &mut injector)?,
        None => router.run(CYCLE_BUDGET)?,
    };
    let n = router.forwarded().len().max(1);
    Ok((stats.cycles as f64 / n as f64, stats.bus_utilization(), stats))
}

/// Replays the measurement workload under `tracer` — same router, same
/// datagrams, same budget (and same injected stalls) as [`measure`], so the
/// captured events describe exactly the run the report's counters came
/// from.
fn traced_measure(
    config: &ArchConfig,
    routes: &[Route],
    rtu_latency: u32,
    faults: Option<&FaultPlan>,
    mode: StepMode,
    tracer: &mut dyn taco_sim::Tracer,
) -> Result<SimStats, SimError> {
    let mut router = build_router(config, routes, rtu_latency, mode)?;
    let datagrams = measurement_datagrams(routes);
    router
        .enqueue_batch(datagrams.iter().map(|d| (PortId(0), d)))
        .expect("measurement datagrams fit the buffer");
    match stall_injector(faults) {
        Some(mut injector) => router.run_fault_traced(CYCLE_BUDGET, &mut injector, tracer),
        None => router.run_traced(CYCLE_BUDGET, tracer),
    }
}

/// Re-runs `request`'s measurement under an arbitrary [`Tracer`] — the
/// entry point the `trace` and `dse --trace-best` binaries capture through.
///
/// Evaluates the request first (through the global cache, so repeat traces
/// of an already-swept point cost one extra simulation, not two) to learn
/// the converged RTU latency, then replays that exact measurement run with
/// `tracer` observing.
///
/// # Errors
///
/// Returns the structured [`SimError`] if the instance cannot execute its
/// microcode — the same condition that makes the report infeasible.
///
/// [`Tracer`]: taco_sim::Tracer
pub fn trace_request(
    request: &EvalRequest,
    tracer: &mut dyn taco_sim::Tracer,
) -> Result<SimStats, SimError> {
    let plain = EvalRequest { trace: None, ..request.clone() };
    let report = crate::cache::EvalCache::global().evaluate(&plain);
    if let Some(e) = report.sim_error {
        return Err(e);
    }
    let routes = benchmark_routes(request.entries);
    traced_measure(
        &request.config,
        &routes,
        report.rtu_latency_cycles,
        request.faults.as_ref(),
        request.step_mode,
        tracer,
    )
}

/// The report an un-simulatable instance earns: infinite required clock,
/// an infeasible estimate, and the structured error preserved so sweeps
/// can say *why* the point died instead of crashing the whole grid.
fn error_report(request: &EvalRequest, rtu_latency: u32, error: SimError) -> EvalReport {
    EvalReport {
        config: request.config.clone(),
        line_rate: request.line_rate,
        table_entries: request.entries,
        cycles_per_datagram: f64::INFINITY,
        bus_utilization: 0.0,
        required_frequency_hz: f64::INFINITY,
        rtu_latency_cycles: rtu_latency,
        program_bits: 0,
        estimate: Estimate::Infeasible {
            required_hz: f64::INFINITY,
            achievable_hz: Estimator::new().max_frequency_hz(),
        },
        stats: SimStats::default(),
        scenario: None,
        sim_error: Some(error),
        trace_error: None,
    }
}

/// Per-tick service budget for the behavioural scenario replay: how many
/// datagrams this instance forwards in one [`SCENARIO_TICK_SECONDS`] slice
/// when clocked at the technology ceiling.
fn scenario_service_per_tick(cycles_per_datagram: f64) -> u32 {
    let f_max = Estimator::new().max_frequency_hz();
    let per_tick = f_max * SCENARIO_TICK_SECONDS / cycles_per_datagram;
    (per_tick as u32).max(1)
}

/// Per-mille clock overhead the coherence machinery costs each core of a
/// multi-core system: the shared snooping bus pays arbitration on every
/// transaction (5% per extra core), a switched mesh only hop latency
/// (1.5% per extra core), and MSI's extra upgrade transactions add 1% per
/// extra core over MESI.  All-integer so the scaling is byte-stable.
fn coherence_overhead_milli(system: &SystemConfig) -> u64 {
    let extra = u64::from(system.cores.saturating_sub(1));
    let topology = match system.interconnect.topology {
        Topology::SharedBus => 50,
        Topology::Mesh => 15,
    };
    let protocol = match system.protocol {
        CoherenceProtocol::Msi => 10,
        CoherenceProtocol::Mesi => 0,
    };
    (topology + protocol) * extra
}

/// Table-1-style frequency scaling for an N-core system: the forwarding
/// load fans out over the cores, so each core needs `1/N` of the
/// single-core clock — inflated by the coherence overhead of keeping the
/// shared routing table consistent.  Single-core systems return the input
/// untouched (bit-for-bit).
fn system_required_frequency_hz(single_core_hz: f64, system: &SystemConfig) -> f64 {
    if system.is_single_core() {
        return single_core_hz;
    }
    let overhead = coherence_overhead_milli(system);
    single_core_hz * (1000 + overhead) as f64 / (1000.0 * f64::from(system.cores))
}

/// Scales a per-core physical estimate to the N-core system: gates, area
/// and power replicate per core, plus the same per-mille interconnect
/// overhead the clock pays (bus wiring or mesh routers are not free).
/// Single-core systems return the estimate untouched.
fn system_estimate(per_core: Estimate, system: &SystemConfig) -> Estimate {
    if system.is_single_core() {
        return per_core;
    }
    match per_core {
        Estimate::Feasible(mut e) => {
            let factor =
                f64::from(system.cores) * (1000 + coherence_overhead_milli(system)) as f64 / 1000.0;
            e.sized_gates *= factor;
            e.area_mm2 *= factor;
            e.power_w *= factor;
            Estimate::Feasible(e)
        }
        infeasible => infeasible,
    }
}

/// Evaluates one [`EvalRequest`] — the paper's per-cell methodology, plus
/// the behavioural scenario replay when the request carries a workload.
///
/// For the CAM organisation the RTU latency depends on the clock and the
/// clock depends on the measured cycles (which include RTU stalls), so the
/// evaluation iterates the pair to a fixed point; it converges in a few
/// rounds because the latency is quantised to whole cycles.
///
/// # Examples
///
/// ```
/// use taco_core::{evaluate_request, ArchConfig, EvalRequest, RoutingTableKind};
///
/// let report = evaluate_request(
///     &EvalRequest::new(ArchConfig::three_bus_one_fu(RoutingTableKind::Cam)),
/// );
/// assert!(report.is_feasible());
/// assert!(report.required_frequency_hz < 200e6); // tens of MHz, as in the paper
/// ```
pub fn evaluate_request(request: &EvalRequest) -> EvalReport {
    let config = &request.config;
    let routes = benchmark_routes(request.entries);
    let cam_spec = CamSpec::paper_default();

    let mut rtu_latency = 1u32;
    let (cycles, util, freq, stats) = loop {
        let (cycles, util, stats) =
            match measure(config, &routes, rtu_latency, request.faults.as_ref(), request.step_mode)
            {
                Ok(m) => m,
                Err(e) => return error_report(request, rtu_latency, e),
            };
        let freq = request.line_rate.required_frequency_hz(cycles);
        if config.table != TableKind::Cam {
            break (cycles, util, freq, stats);
        }
        let next = cam_spec.search_cycles(freq) as u32;
        if next == rtu_latency {
            break (cycles, util, freq, stats);
        }
        rtu_latency = next;
    };

    // Charge the program store for the actual microcode image.
    let program_bits = match build_router(config, &routes, rtu_latency, request.step_mode) {
        Ok(router) => taco_isa::encode(router.processor().program(), &config.machine)
            .map(|e| e.total_bits())
            .unwrap_or(0),
        Err(e) => return error_report(request, rtu_latency, e),
    };

    // Multi-core scaling: the load fans out over the cores, cutting the
    // required per-core clock; gates, area and power replicate per core
    // plus the interconnect overhead.  (The CAM latency fixed point above
    // converged against the single-core clock — conservative, since the
    // scaled clock is never higher.)  Single-core systems pass through
    // both functions bit-for-bit.
    let freq = system_required_frequency_hz(freq, &config.system);

    let mut estimator = Estimator::new().with_program_bits(program_bits);
    if config.table == TableKind::Cam {
        estimator = estimator.with_cam(ExternalCam::micron_harmony());
    }
    let estimate = system_estimate(estimator.estimate(&config.machine, freq), &config.system);

    // Side effect on the report, never on the numbers: replay the converged
    // measurement run under a ChromeTracer and write the timeline out.  IO
    // problems surface as a structured `trace_error` — an unwritable path
    // must not be silently dropped, and must not change the evaluation.
    let trace_error = request.trace.as_ref().and_then(|path| {
        let mut chrome = taco_sim::ChromeTracer::new(config.machine.buses());
        match traced_measure(
            config,
            &routes,
            rtu_latency,
            request.faults.as_ref(),
            request.step_mode,
            &mut chrome,
        ) {
            Ok(traced_stats) => std::fs::write(path, chrome.finish(traced_stats.cycles))
                .err()
                .map(|e| TraceError { path: path.display().to_string(), message: e.to_string() }),
            Err(e) => Some(TraceError {
                path: path.display().to_string(),
                message: format!("traced replay failed: {e}"),
            }),
        }
    });

    let scenario = request.workload.as_ref().map(|workload| {
        let service = scenario_service_per_tick(cycles);
        let scenario_config =
            ScenarioConfig::new(config.table).service_per_tick(service).system(config.system);
        match &request.flow_trace {
            // An attached flow trace is replayed verbatim; the workload
            // descriptor only names its parameters in the report.
            Some(trace) => run_trace_replay(trace, &scenario_config, request.faults.as_ref()),
            None => run_scenario_with_faults(workload, &scenario_config, request.faults.as_ref()),
        }
    });

    EvalReport {
        config: config.clone(),
        line_rate: request.line_rate,
        table_entries: request.entries,
        cycles_per_datagram: cycles,
        bus_utilization: util,
        required_frequency_hz: freq,
        rtu_latency_cycles: rtu_latency,
        program_bits,
        estimate,
        stats,
        scenario,
        sim_error: None,
        trace_error,
    }
}

/// Measures only the cycles-per-datagram of a configuration at a given
/// table size (used by the scaling ablation, where no line-rate conversion
/// is wanted).  Infinite when the instance cannot be simulated.
pub fn cycles_per_datagram(config: &ArchConfig, table_entries: usize) -> f64 {
    let routes = benchmark_routes(table_entries);
    measure(config, &routes, 2, None, StepMode::default())
        .map(|(cycles, _, _)| cycles)
        .unwrap_or(f64::INFINITY)
}

#[cfg(test)]
mod stats_field_tests {
    use super::*;

    #[test]
    fn report_carries_the_measurement_counters() {
        let r = EvalRequest::new(ArchConfig::three_bus_one_fu(TableKind::Cam)).entries(8).run();
        assert!(r.stats.cycles > 0);
        assert!((r.stats.bus_utilization() - r.bus_utilization).abs() < 1e-12);
        let json = r.stats.to_json();
        assert!(json.contains("\"cycles\":"), "{json}");
    }
}

/// The inverse analysis: the highest line rate (bits per second) this
/// configuration can guarantee when clocked at the technology ceiling,
/// assuming `packet_bytes` per packet on the wire (zero when the instance
/// cannot be simulated).
///
/// This answers the designer's converse question — "the clock is whatever
/// the library gives me; what wire speed does that buy?" — and locates the
/// crossovers of the paper's Table 1 from the other side.
pub fn max_sustainable_rate_bps(
    config: &ArchConfig,
    table_entries: usize,
    packet_bytes: u32,
) -> f64 {
    let routes = benchmark_routes(table_entries);
    let f_max = Estimator::new().max_frequency_hz() * 0.999; // just under NA
    let rtu_latency = CamSpec::paper_default().search_cycles(f_max) as u32;
    let Ok((cycles, _, _)) = measure(config, &routes, rtu_latency, None, StepMode::default())
    else {
        return 0.0;
    };
    (f_max / cycles) * 8.0 * f64::from(packet_bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use taco_workload::Workload;

    fn report(config: ArchConfig, line_rate: LineRate, entries: usize) -> EvalReport {
        EvalRequest::new(config).rate(line_rate).entries(entries).run()
    }

    #[test]
    fn benchmark_routes_deterministic_and_sized() {
        let a = benchmark_routes(50);
        let b = benchmark_routes(50);
        assert_eq!(a, b);
        assert_eq!(a.len(), 50);
    }

    #[test]
    fn report_display_reads_as_a_sentence() {
        let r = report(ArchConfig::three_bus_one_fu(TableKind::Cam), LineRate::TEN_GBE, 8);
        let text = r.to_string();
        assert!(text.contains("cam 3BUS/1FU"), "{text}");
        assert!(text.contains("cycles/datagram"), "{text}");
        assert!(text.contains("mm2"), "{text}");
    }

    #[test]
    fn sequential_needs_infeasible_clock_at_10g() {
        let r = report(ArchConfig::one_bus_one_fu(TableKind::Sequential), LineRate::TEN_GBE, 100);
        assert!(!r.is_feasible(), "sequential 1-bus must be NA: {}", r.required_frequency_hz);
        assert!(r.required_frequency_hz > 1.5e9);
    }

    #[test]
    fn tree_is_roughly_logarithmic_and_feasible() {
        let r =
            report(ArchConfig::three_bus_one_fu(TableKind::BalancedTree), LineRate::TEN_GBE, 100);
        assert!(r.is_feasible(), "tree 3-bus should fit 0.18um: {}", r.required_frequency_hz);
        assert!(r.required_frequency_hz < 1e9);
    }

    #[test]
    fn cam_needs_only_tens_of_mhz() {
        let r = report(ArchConfig::three_bus_one_fu(TableKind::Cam), LineRate::TEN_GBE, 100);
        assert!(r.is_feasible());
        assert!(r.required_frequency_hz < 150e6, "{}", r.required_frequency_hz);
        assert!(r.rtu_latency_cycles >= 1);
        // The external CAM is attached to the estimate.
        let est = r.estimate.feasible().unwrap();
        assert!(est.cam.is_some());
        assert!(est.total_power_w() > est.power_w);
    }

    #[test]
    fn inverse_analysis_agrees_with_forward_analysis() {
        // A configuration whose required clock is feasible must sustain at
        // least the target rate when clocked at the ceiling, and vice versa.
        let config = ArchConfig::three_bus_one_fu(TableKind::Cam);
        let fwd = report(config.clone(), LineRate::TEN_GBE, 64);
        let max_rate = max_sustainable_rate_bps(&config, 64, LineRate::TEN_GBE.packet_bytes);
        assert!(fwd.is_feasible());
        assert!(max_rate > LineRate::TEN_GBE.bits_per_second, "{max_rate}");

        let slow = ArchConfig::one_bus_one_fu(TableKind::Sequential);
        let slow_max = max_sustainable_rate_bps(&slow, 64, 84);
        assert!(
            slow_max < LineRate::TEN_GBE_MIN_FRAMES.bits_per_second,
            "sequential cannot do min-frame 10G: {slow_max}"
        );
    }

    #[test]
    fn buses_lower_the_required_clock() {
        let one = report(ArchConfig::one_bus_one_fu(TableKind::Cam), LineRate::TEN_GBE, 100);
        let three = report(ArchConfig::three_bus_one_fu(TableKind::Cam), LineRate::TEN_GBE, 100);
        assert!(
            three.required_frequency_hz < 0.7 * one.required_frequency_hz,
            "3 buses should cut the clock substantially: {} vs {}",
            one.required_frequency_hz,
            three.required_frequency_hz
        );
    }

    #[test]
    fn ordering_matches_the_paper() {
        // For every machine configuration: sequential > tree > cam.
        let seq =
            report(ArchConfig::three_bus_one_fu(TableKind::Sequential), LineRate::TEN_GBE, 100);
        let tree =
            report(ArchConfig::three_bus_one_fu(TableKind::BalancedTree), LineRate::TEN_GBE, 100);
        let cam = report(ArchConfig::three_bus_one_fu(TableKind::Cam), LineRate::TEN_GBE, 100);
        assert!(seq.required_frequency_hz > tree.required_frequency_hz);
        assert!(tree.required_frequency_hz > cam.required_frequency_hz);
    }

    #[test]
    fn workload_attaches_scenario_metrics() {
        let r = EvalRequest::new(ArchConfig::three_bus_one_fu(TableKind::Cam))
            .entries(16)
            .workload(Workload::steady_forward())
            .run();
        let sc = r.scenario.as_ref().expect("workload requested, metrics attached");
        assert_eq!(sc.scenario, "steady-forward");
        assert_eq!(sc.kind, TableKind::Cam);
        assert!(sc.offered > 0);
        assert!(sc.forwarded > 0, "{}", sc.to_json());
    }

    #[test]
    fn explicit_flow_trace_matches_its_descriptor_replay() {
        use std::sync::Arc;
        use taco_workload::TraceGen;
        let trace = Arc::new(TraceGen::generate(21, 40, 8, 12));
        let config = ArchConfig::three_bus_one_fu(TableKind::Cam);
        let explicit =
            EvalRequest::new(config.clone()).entries(16).flow_trace(Arc::clone(&trace)).run();
        let descriptor = EvalRequest::new(config).entries(16).workload(trace.descriptor()).run();
        let a = explicit.scenario.expect("trace replay attaches metrics");
        let b = descriptor.scenario.expect("descriptor replay attaches metrics");
        assert_eq!(a.to_json(), b.to_json(), "verbatim replay must equal regeneration");
        assert!(a.flows.is_some(), "trace replay reports per-flow stats");
    }

    #[test]
    fn slower_organisations_get_smaller_scenario_budgets() {
        // The service budget is derived from measured cycles, so the
        // sequential scan must serve fewer datagrams per tick than the CAM.
        let seq = cycles_per_datagram(&ArchConfig::one_bus_one_fu(TableKind::Sequential), 64);
        let cam = cycles_per_datagram(&ArchConfig::three_bus_one_fu(TableKind::Cam), 64);
        assert!(scenario_service_per_tick(seq) < scenario_service_per_tick(cam));
        assert!(scenario_service_per_tick(f64::INFINITY) >= 1, "budget is never zero");
    }

    #[test]
    fn unwritable_trace_path_surfaces_as_a_structured_error() {
        let path = std::env::temp_dir().join("taco-no-such-dir").join("trace.json");
        let config = ArchConfig::three_bus_one_fu(TableKind::Cam);
        let traced = EvalRequest::new(config.clone()).entries(8).trace(&path).run();
        let err = traced.trace_error.clone().expect("unwritable path must be surfaced");
        assert!(err.path.contains("taco-no-such-dir"), "{err}");
        assert!(!err.message.is_empty());
        // Only the side channel failed: the measurement matches a plain run.
        let plain = EvalRequest::new(config).entries(8).run();
        assert_eq!(EvalReport { trace_error: None, ..traced }, plain);
    }

    #[test]
    fn quad_core_cuts_the_required_clock_but_not_to_a_quarter() {
        let single = report(ArchConfig::three_bus_one_fu(TableKind::Cam), LineRate::TEN_GBE, 64);
        let quad = EvalRequest::new(
            ArchConfig::three_bus_one_fu(TableKind::Cam).with_system(SystemConfig::with_cores(4)),
        )
        .rate(LineRate::TEN_GBE)
        .entries(64)
        .run();
        assert!(quad.required_frequency_hz < single.required_frequency_hz);
        assert!(
            quad.required_frequency_hz > single.required_frequency_hz / 4.0,
            "coherence overhead must show: {} vs {}",
            quad.required_frequency_hz,
            single.required_frequency_hz
        );
        // Area and power replicate per core (plus interconnect overhead).
        let (s, q) = (single.estimate.feasible().unwrap(), quad.estimate.feasible().unwrap());
        assert!(q.area_mm2 > 3.9 * s.area_mm2, "{} vs {}", q.area_mm2, s.area_mm2);
        // Per-core measurement columns are unchanged.
        assert_eq!(quad.cycles_per_datagram, single.cycles_per_datagram);
    }

    #[test]
    fn explicit_single_core_system_report_is_identical() {
        let plain = report(ArchConfig::three_bus_one_fu(TableKind::Cam), LineRate::TEN_GBE, 32);
        let explicit = EvalRequest::new(
            ArchConfig::three_bus_one_fu(TableKind::Cam).with_system(SystemConfig::single_core()),
        )
        .rate(LineRate::TEN_GBE)
        .entries(32)
        .run();
        assert_eq!(plain, explicit);
    }

    #[test]
    fn multicore_workload_carries_the_coherence_section() {
        let r = EvalRequest::new(
            ArchConfig::three_bus_one_fu(TableKind::Cam).with_system(SystemConfig::with_cores(2)),
        )
        .entries(16)
        .workload(Workload::table_churn())
        .run();
        let sc = r.scenario.as_ref().expect("workload requested");
        let c = sc.coherence.expect("multicore runs measure coherence");
        assert!(c.reads > 0, "{}", sc.to_json());
        assert!(c.invalidations > 0, "churn writes invalidate: {}", sc.to_json());
    }

    #[test]
    fn mesh_pays_less_clock_overhead_than_the_shared_bus() {
        let bus = SystemConfig::with_cores(4);
        let mesh = SystemConfig::with_cores(4).topology(Topology::Mesh);
        assert!(coherence_overhead_milli(&mesh) < coherence_overhead_milli(&bus));
        let f = system_required_frequency_hz(1e9, &mesh);
        assert!(f < system_required_frequency_hz(1e9, &bus));
        assert!(f > 1e9 / 4.0);
        // MSI pays more than MESI on the same fabric.
        let msi = SystemConfig::with_cores(4).protocol(CoherenceProtocol::Msi);
        assert!(coherence_overhead_milli(&msi) > coherence_overhead_milli(&bus));
    }

    #[test]
    fn sim_errors_become_structured_infeasibility() {
        use taco_isa::{FuKind, FuRef};
        let request = EvalRequest::new(ArchConfig::three_bus_one_fu(TableKind::Cam));
        let err = SimError::InvalidFuIndex { fu: FuRef::new(FuKind::Matcher, 2), available: 1 };
        let r = error_report(&request, 1, err.clone());
        assert!(!r.is_feasible());
        assert_eq!(r.sim_error, Some(err));
        assert!(r.cycles_per_datagram.is_infinite());
        assert!(r.scenario.is_none());
        assert!(r.to_string().contains("not simulatable"), "{r}");
    }
}
