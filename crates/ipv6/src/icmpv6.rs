//! ICMPv6 (RFC 2463) — the error and diagnostic messages a router emits.
//!
//! The forwarding path needs exactly four behaviours: *destination
//! unreachable / no route* when the lookup fails, *time exceeded* when the
//! hop limit expires, *parameter problem* for malformed headers, and echo
//! request/reply so the router itself is pingable.

use crate::addr::Ipv6Address;
use crate::checksum::pseudo_header_checksum;
use crate::error::ParseError;

/// Protocol number of ICMPv6 in the IPv6 next-header field.
pub const PROTOCOL: u8 = 58;

/// Codes for [`Icmpv6Message::DestinationUnreachable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnreachableCode {
    /// No route to destination (code 0) — the routing-table miss case.
    NoRoute,
    /// Communication administratively prohibited (code 1).
    Prohibited,
    /// Address unreachable (code 3).
    Address,
    /// Port unreachable (code 4).
    Port,
    /// Any other code.
    Other(u8),
}

impl From<u8> for UnreachableCode {
    fn from(v: u8) -> Self {
        match v {
            0 => UnreachableCode::NoRoute,
            1 => UnreachableCode::Prohibited,
            3 => UnreachableCode::Address,
            4 => UnreachableCode::Port,
            other => UnreachableCode::Other(other),
        }
    }
}

impl From<UnreachableCode> for u8 {
    fn from(c: UnreachableCode) -> Self {
        match c {
            UnreachableCode::NoRoute => 0,
            UnreachableCode::Prohibited => 1,
            UnreachableCode::Address => 3,
            UnreachableCode::Port => 4,
            UnreachableCode::Other(v) => v,
        }
    }
}

/// The ICMPv6 messages understood by the router.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Icmpv6Message {
    /// Type 1: the datagram could not be delivered. Carries as much of the
    /// invoking packet as fits.
    DestinationUnreachable {
        /// Reason code.
        code: UnreachableCode,
        /// Leading bytes of the invoking datagram.
        invoking: Vec<u8>,
    },
    /// Type 3 code 0: hop limit exceeded in transit.
    TimeExceeded {
        /// Leading bytes of the invoking datagram.
        invoking: Vec<u8>,
    },
    /// Type 4: a field in the invoking packet was unusable.
    ParameterProblem {
        /// Problem code (0 = erroneous header field).
        code: u8,
        /// Byte offset of the problem within the invoking packet.
        pointer: u32,
        /// Leading bytes of the invoking datagram.
        invoking: Vec<u8>,
    },
    /// Type 128: echo request.
    EchoRequest {
        /// Identifier to match replies to requests.
        id: u16,
        /// Sequence number.
        seq: u16,
        /// Arbitrary data echoed back.
        data: Vec<u8>,
    },
    /// Type 129: echo reply.
    EchoReply {
        /// Identifier copied from the request.
        id: u16,
        /// Sequence number copied from the request.
        seq: u16,
        /// Data copied from the request.
        data: Vec<u8>,
    },
}

impl Icmpv6Message {
    /// The ICMPv6 type number of this message.
    pub fn type_code(&self) -> (u8, u8) {
        match self {
            Icmpv6Message::DestinationUnreachable { code, .. } => (1, (*code).into()),
            Icmpv6Message::TimeExceeded { .. } => (3, 0),
            Icmpv6Message::ParameterProblem { code, .. } => (4, *code),
            Icmpv6Message::EchoRequest { .. } => (128, 0),
            Icmpv6Message::EchoReply { .. } => (129, 0),
        }
    }

    /// Returns `true` for error messages (type < 128).
    pub fn is_error(&self) -> bool {
        self.type_code().0 < 128
    }

    /// Serializes the message, computing the checksum over the pseudo-header
    /// formed from `src`/`dst`.
    pub fn to_bytes(&self, src: &Ipv6Address, dst: &Ipv6Address) -> Vec<u8> {
        let (ty, code) = self.type_code();
        let mut out = vec![ty, code, 0, 0];
        match self {
            Icmpv6Message::DestinationUnreachable { invoking, .. }
            | Icmpv6Message::TimeExceeded { invoking } => {
                out.extend_from_slice(&[0u8; 4]); // unused
                out.extend_from_slice(invoking);
            }
            Icmpv6Message::ParameterProblem { pointer, invoking, .. } => {
                out.extend_from_slice(&pointer.to_be_bytes());
                out.extend_from_slice(invoking);
            }
            Icmpv6Message::EchoRequest { id, seq, data }
            | Icmpv6Message::EchoReply { id, seq, data } => {
                out.extend_from_slice(&id.to_be_bytes());
                out.extend_from_slice(&seq.to_be_bytes());
                out.extend_from_slice(data);
            }
        }
        let c = pseudo_header_checksum(src, dst, PROTOCOL, &out);
        out[2..4].copy_from_slice(&c.to_be_bytes());
        out
    }

    /// Parses and checksum-verifies a message.
    ///
    /// # Errors
    ///
    /// * [`ParseError::Truncated`] if shorter than the 8-byte minimum;
    /// * [`ParseError::BadChecksum`] on verification failure;
    /// * [`ParseError::UnsupportedHeader`] for message types the router does
    ///   not implement.
    pub fn parse(bytes: &[u8], src: &Ipv6Address, dst: &Ipv6Address) -> Result<Self, ParseError> {
        if bytes.len() < 8 {
            return Err(ParseError::Truncated {
                what: "icmpv6 message",
                needed: 8,
                got: bytes.len(),
            });
        }
        if pseudo_header_checksum(src, dst, PROTOCOL, bytes) != 0 {
            return Err(ParseError::BadChecksum { what: "icmpv6" });
        }
        let ty = bytes[0];
        let code = bytes[1];
        let body = &bytes[4..];
        match ty {
            1 => Ok(Icmpv6Message::DestinationUnreachable {
                code: code.into(),
                invoking: body[4..].to_vec(),
            }),
            3 => Ok(Icmpv6Message::TimeExceeded { invoking: body[4..].to_vec() }),
            4 => Ok(Icmpv6Message::ParameterProblem {
                code,
                pointer: u32::from_be_bytes([body[0], body[1], body[2], body[3]]),
                invoking: body[4..].to_vec(),
            }),
            128 | 129 => {
                let id = u16::from_be_bytes([body[0], body[1]]);
                let seq = u16::from_be_bytes([body[2], body[3]]);
                let data = body[4..].to_vec();
                Ok(if ty == 128 {
                    Icmpv6Message::EchoRequest { id, seq, data }
                } else {
                    Icmpv6Message::EchoReply { id, seq, data }
                })
            }
            other => Err(ParseError::UnsupportedHeader(other)),
        }
    }
}

/// Truncates an invoking datagram to the RFC 2463 limit: as much as fits in
/// a 1280-byte minimum-MTU IPv6 packet with the ICMPv6 error wrapped around
/// it (40-byte IPv6 header + 8-byte ICMP prologue).
pub fn truncate_invoking(packet: &[u8]) -> Vec<u8> {
    const MAX: usize = 1280 - 40 - 8;
    packet[..packet.len().min(MAX)].to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addrs() -> (Ipv6Address, Ipv6Address) {
        ("2001:db8::1".parse().unwrap(), "2001:db8::2".parse().unwrap())
    }

    #[test]
    fn echo_round_trip() {
        let (s, d) = addrs();
        let m = Icmpv6Message::EchoRequest { id: 77, seq: 3, data: vec![1, 2, 3] };
        let bytes = m.to_bytes(&s, &d);
        assert_eq!(Icmpv6Message::parse(&bytes, &s, &d).unwrap(), m);
    }

    #[test]
    fn error_messages_round_trip() {
        let (s, d) = addrs();
        let cases = vec![
            Icmpv6Message::DestinationUnreachable {
                code: UnreachableCode::NoRoute,
                invoking: vec![6u8; 48],
            },
            Icmpv6Message::TimeExceeded { invoking: vec![7u8; 40] },
            Icmpv6Message::ParameterProblem { code: 0, pointer: 6, invoking: vec![8u8; 40] },
        ];
        for m in cases {
            let bytes = m.to_bytes(&s, &d);
            assert_eq!(Icmpv6Message::parse(&bytes, &s, &d).unwrap(), m);
            assert!(m.is_error());
        }
    }

    #[test]
    fn echo_is_not_error() {
        let m = Icmpv6Message::EchoReply { id: 0, seq: 0, data: vec![] };
        assert!(!m.is_error());
        assert_eq!(m.type_code(), (129, 0));
    }

    #[test]
    fn corrupted_message_fails_checksum() {
        let (s, d) = addrs();
        let mut bytes =
            Icmpv6Message::EchoRequest { id: 1, seq: 1, data: vec![5] }.to_bytes(&s, &d);
        bytes[8] ^= 0x01;
        assert_eq!(
            Icmpv6Message::parse(&bytes, &s, &d).unwrap_err(),
            ParseError::BadChecksum { what: "icmpv6" }
        );
    }

    #[test]
    fn unknown_type_rejected() {
        let (s, d) = addrs();
        // Hand-build a type-200 message with a valid checksum.
        let mut bytes = vec![200u8, 0, 0, 0, 0, 0, 0, 0];
        let c = pseudo_header_checksum(&s, &d, PROTOCOL, &bytes);
        bytes[2..4].copy_from_slice(&c.to_be_bytes());
        assert_eq!(
            Icmpv6Message::parse(&bytes, &s, &d).unwrap_err(),
            ParseError::UnsupportedHeader(200)
        );
    }

    #[test]
    fn unreachable_code_round_trip() {
        for v in 0..=255u8 {
            assert_eq!(u8::from(UnreachableCode::from(v)), v);
        }
    }

    #[test]
    fn truncate_invoking_respects_min_mtu() {
        let big = vec![0u8; 4000];
        let t = truncate_invoking(&big);
        assert_eq!(t.len(), 1280 - 48);
        let small = vec![0u8; 60];
        assert_eq!(truncate_invoking(&small).len(), 60);
    }
}
