//! UDP over IPv6 (RFC 768 + RFC 2460 §8.1).
//!
//! RIPng rides on UDP port 521; this module provides the header codec and
//! the mandatory-under-IPv6 checksum handling.

use crate::addr::Ipv6Address;
use crate::checksum::pseudo_header_checksum;
use crate::error::ParseError;

/// Protocol number of UDP in the IPv6 next-header field.
pub const PROTOCOL: u8 = 17;

/// The 8-byte UDP header.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct UdpHeader {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Length of header plus data.
    pub length: u16,
    /// Internet checksum over pseudo-header, header and data.
    pub checksum: u16,
}

impl UdpHeader {
    /// Wire length of the UDP header: 8 bytes.
    pub const LEN: usize = 8;

    /// Parses the header from the front of `bytes`.
    ///
    /// # Errors
    ///
    /// Returns [`ParseError::Truncated`] if fewer than 8 bytes are available.
    pub fn parse(bytes: &[u8]) -> Result<Self, ParseError> {
        if bytes.len() < Self::LEN {
            return Err(ParseError::Truncated {
                what: "udp header",
                needed: Self::LEN,
                got: bytes.len(),
            });
        }
        Ok(UdpHeader {
            src_port: u16::from_be_bytes([bytes[0], bytes[1]]),
            dst_port: u16::from_be_bytes([bytes[2], bytes[3]]),
            length: u16::from_be_bytes([bytes[4], bytes[5]]),
            checksum: u16::from_be_bytes([bytes[6], bytes[7]]),
        })
    }

    /// Serializes the header.
    pub fn to_bytes(&self) -> [u8; Self::LEN] {
        let mut b = [0u8; Self::LEN];
        b[0..2].copy_from_slice(&self.src_port.to_be_bytes());
        b[2..4].copy_from_slice(&self.dst_port.to_be_bytes());
        b[4..6].copy_from_slice(&self.length.to_be_bytes());
        b[6..8].copy_from_slice(&self.checksum.to_be_bytes());
        b
    }
}

/// A UDP datagram: header plus data, with IPv6-correct checksum handling.
///
/// # Examples
///
/// ```
/// use taco_ipv6::udp::UdpDatagram;
/// use taco_ipv6::Ipv6Address;
///
/// # fn main() -> Result<(), taco_ipv6::ParseError> {
/// let src: Ipv6Address = "fe80::1".parse()?;
/// let dst: Ipv6Address = "ff02::9".parse()?;
/// let d = UdpDatagram::new(521, 521, b"ripng".to_vec(), &src, &dst);
/// let bytes = d.to_bytes();
/// let parsed = UdpDatagram::parse(&bytes, &src, &dst)?;
/// assert_eq!(parsed.data(), b"ripng");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UdpDatagram {
    header: UdpHeader,
    data: Vec<u8>,
}

impl UdpDatagram {
    /// Builds a datagram and computes the mandatory checksum over the IPv6
    /// pseudo-header formed from `src`/`dst`.
    pub fn new(
        src_port: u16,
        dst_port: u16,
        data: Vec<u8>,
        src: &Ipv6Address,
        dst: &Ipv6Address,
    ) -> Self {
        let length = (UdpHeader::LEN + data.len()) as u16;
        let mut header = UdpHeader { src_port, dst_port, length, checksum: 0 };
        let mut buf = Vec::with_capacity(length as usize);
        buf.extend_from_slice(&header.to_bytes());
        buf.extend_from_slice(&data);
        let mut c = pseudo_header_checksum(src, dst, PROTOCOL, &buf);
        if c == 0 {
            // RFC 2460 §8.1: a computed checksum of zero is sent as all ones.
            c = 0xffff;
        }
        header.checksum = c;
        UdpDatagram { header, data }
    }

    /// Parses and checksum-verifies a datagram.
    ///
    /// # Errors
    ///
    /// * [`ParseError::Truncated`] / [`ParseError::LengthMismatch`] on size
    ///   problems;
    /// * [`ParseError::BadField`] if the checksum field is zero (illegal
    ///   under IPv6);
    /// * [`ParseError::BadChecksum`] if verification fails.
    pub fn parse(bytes: &[u8], src: &Ipv6Address, dst: &Ipv6Address) -> Result<Self, ParseError> {
        let header = UdpHeader::parse(bytes)?;
        let declared = usize::from(header.length);
        if declared < UdpHeader::LEN || bytes.len() < declared {
            return Err(ParseError::LengthMismatch { declared, actual: bytes.len() });
        }
        if header.checksum == 0 {
            return Err(ParseError::BadField { field: "udp checksum", value: 0 });
        }
        if pseudo_header_checksum(src, dst, PROTOCOL, &bytes[..declared]) != 0 {
            return Err(ParseError::BadChecksum { what: "udp" });
        }
        Ok(UdpDatagram { header, data: bytes[UdpHeader::LEN..declared].to_vec() })
    }

    /// The UDP header (checksum already filled in).
    pub fn header(&self) -> &UdpHeader {
        &self.header
    }

    /// The application data.
    pub fn data(&self) -> &[u8] {
        &self.data
    }

    /// Serializes header plus data.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(UdpHeader::LEN + self.data.len());
        out.extend_from_slice(&self.header.to_bytes());
        out.extend_from_slice(&self.data);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addrs() -> (Ipv6Address, Ipv6Address) {
        ("2001:db8::a".parse().unwrap(), "2001:db8::b".parse().unwrap())
    }

    #[test]
    fn header_round_trip() {
        let h = UdpHeader { src_port: 521, dst_port: 521, length: 32, checksum: 0xbeef };
        assert_eq!(UdpHeader::parse(&h.to_bytes()).unwrap(), h);
    }

    #[test]
    fn datagram_round_trip_verifies() {
        let (s, d) = addrs();
        let dgram = UdpDatagram::new(1000, 521, vec![9u8; 25], &s, &d);
        let parsed = UdpDatagram::parse(&dgram.to_bytes(), &s, &d).unwrap();
        assert_eq!(parsed, dgram);
    }

    #[test]
    fn corrupted_data_fails_checksum() {
        let (s, d) = addrs();
        let mut bytes = UdpDatagram::new(1, 2, vec![1, 2, 3], &s, &d).to_bytes();
        bytes[9] ^= 0xff;
        assert_eq!(
            UdpDatagram::parse(&bytes, &s, &d).unwrap_err(),
            ParseError::BadChecksum { what: "udp" }
        );
    }

    #[test]
    fn wrong_pseudo_header_fails_checksum() {
        let (s, d) = addrs();
        let bytes = UdpDatagram::new(1, 2, vec![1, 2, 3], &s, &d).to_bytes();
        let other: Ipv6Address = "2001:db8::c".parse().unwrap();
        assert!(UdpDatagram::parse(&bytes, &s, &other).is_err());
    }

    #[test]
    fn zero_checksum_rejected() {
        let (s, d) = addrs();
        let mut bytes = UdpDatagram::new(1, 2, vec![], &s, &d).to_bytes();
        bytes[6] = 0;
        bytes[7] = 0;
        assert!(matches!(
            UdpDatagram::parse(&bytes, &s, &d),
            Err(ParseError::BadField { field: "udp checksum", .. })
        ));
    }

    #[test]
    fn empty_payload_ok() {
        let (s, d) = addrs();
        let dgram = UdpDatagram::new(5, 6, vec![], &s, &d);
        assert_eq!(dgram.header().length, 8);
        assert!(UdpDatagram::parse(&dgram.to_bytes(), &s, &d).is_ok());
    }

    #[test]
    fn bogus_length_rejected() {
        let (s, d) = addrs();
        let mut bytes = UdpDatagram::new(5, 6, vec![0; 4], &s, &d).to_bytes();
        bytes[4] = 0;
        bytes[5] = 4; // < header size
        assert!(matches!(
            UdpDatagram::parse(&bytes, &s, &d),
            Err(ParseError::LengthMismatch { .. })
        ));
    }
}
