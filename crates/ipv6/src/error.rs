//! Error types shared by the codecs in this crate.

use std::error::Error;
use std::fmt;

/// Error produced when parsing wire data (addresses, headers, datagrams,
/// RIPng messages) fails.
///
/// The variants carry enough context to pinpoint the offending field; the
/// [`fmt::Display`] form is a lowercase, punctuation-free sentence as
/// recommended by the Rust API guidelines.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ParseError {
    /// The input ended before a complete structure could be read.
    ///
    /// `needed` is the minimum number of bytes that would have been required,
    /// `got` is how many were available.
    Truncated {
        /// What was being parsed when the input ran out.
        what: &'static str,
        /// Minimum bytes required.
        needed: usize,
        /// Bytes actually available.
        got: usize,
    },
    /// A version field held something other than 6.
    BadVersion(u8),
    /// A field held a value outside its legal range.
    BadField {
        /// Field name.
        field: &'static str,
        /// Offending value (widened to `u64`).
        value: u64,
    },
    /// Textual IPv6 address could not be parsed.
    BadAddressSyntax,
    /// A prefix length was larger than 128.
    BadPrefixLen(u8),
    /// The payload-length field disagrees with the actual buffer size.
    LengthMismatch {
        /// Length declared in the header.
        declared: usize,
        /// Length actually present.
        actual: usize,
    },
    /// A checksum failed verification.
    BadChecksum {
        /// Protocol whose checksum failed.
        what: &'static str,
    },
    /// An unknown or unsupported next-header value terminated parsing.
    UnsupportedHeader(u8),
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Truncated { what, needed, got } => {
                write!(f, "truncated {what}: needed {needed} bytes, got {got}")
            }
            ParseError::BadVersion(v) => write!(f, "ip version field was {v}, expected 6"),
            ParseError::BadField { field, value } => {
                write!(f, "field {field} held illegal value {value}")
            }
            ParseError::BadAddressSyntax => write!(f, "invalid ipv6 address syntax"),
            ParseError::BadPrefixLen(l) => write!(f, "prefix length {l} exceeds 128"),
            ParseError::LengthMismatch { declared, actual } => {
                write!(f, "payload length {declared} disagrees with buffer size {actual}")
            }
            ParseError::BadChecksum { what } => write!(f, "{what} checksum verification failed"),
            ParseError::UnsupportedHeader(h) => write!(f, "unsupported next-header value {h}"),
        }
    }
}

impl Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_unpunctuated() {
        let cases: Vec<ParseError> = vec![
            ParseError::Truncated { what: "ipv6 header", needed: 40, got: 3 },
            ParseError::BadVersion(4),
            ParseError::BadField { field: "metric", value: 99 },
            ParseError::BadAddressSyntax,
            ParseError::BadPrefixLen(200),
            ParseError::LengthMismatch { declared: 10, actual: 4 },
            ParseError::BadChecksum { what: "udp" },
            ParseError::UnsupportedHeader(250),
        ];
        for c in cases {
            let s = c.to_string();
            assert!(!s.ends_with('.'), "{s}");
            assert!(s.chars().next().unwrap().is_lowercase(), "{s}");
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ParseError>();
    }
}
