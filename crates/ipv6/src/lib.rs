#![warn(missing_docs)]

//! IPv6 packet substrate for the TACO protocol-processor evaluation framework.
//!
//! The paper's router receives *fully assembled, decapsulated IPv6 datagrams*
//! from its line cards, validates them, performs a longest-prefix-match
//! routing lookup, rewrites the hop limit and forwards them.  It also
//! terminates RIPng (RFC 2080) control traffic carried over UDP.  This crate
//! implements everything the router needs to see on the wire:
//!
//! * [`Ipv6Address`] / [`Ipv6Prefix`] — 128-bit addresses and CIDR prefixes
//!   with the bit-level accessors the longest-prefix-match engines need;
//! * [`Ipv6Header`] and the extension-header chain ([`exthdr`]) — parse and
//!   build, including the variable-length chains that motivated the paper's
//!   decision to copy whole datagrams into processor memory;
//! * [`Datagram`] — a full packet with builder-style construction;
//! * [`checksum`] — the RFC 1071 Internet checksum and the IPv6 pseudo-header
//!   sum used by UDP and ICMPv6 (the TACO `Checksum` functional unit computes
//!   exactly this);
//! * [`udp::UdpDatagram`] and [`icmpv6`] messages;
//! * [`ripng`] — the RIPng message codec used by the routing engine.
//!
//! # Examples
//!
//! Build a minimal UDP-over-IPv6 datagram and parse it back:
//!
//! ```
//! use taco_ipv6::{Datagram, Ipv6Address, NextHeader};
//!
//! # fn main() -> Result<(), taco_ipv6::ParseError> {
//! let src: Ipv6Address = "2001:db8::1".parse()?;
//! let dst: Ipv6Address = "2001:db8::2".parse()?;
//! let dgram = Datagram::builder(src, dst)
//!     .hop_limit(64)
//!     .payload(NextHeader::UDP, vec![0u8; 8])
//!     .build();
//! let bytes = dgram.to_bytes();
//! let parsed = Datagram::parse(&bytes)?;
//! assert_eq!(parsed.header().dst, dst);
//! # Ok(())
//! # }
//! ```

pub mod addr;
pub mod checksum;
pub mod error;
pub mod exthdr;
pub mod header;
pub mod icmpv6;
pub mod packet;
pub mod prefix;
pub mod ripng;
pub mod udp;

pub use addr::Ipv6Address;
pub use error::ParseError;
pub use exthdr::{ExtensionHeader, FragmentHeader, OptionsHeader, RoutingHeader};
pub use header::{Ipv6Header, NextHeader};
pub use packet::{Datagram, DatagramBuilder};
pub use prefix::Ipv6Prefix;
