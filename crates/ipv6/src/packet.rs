//! Complete IPv6 datagrams: fixed header + extension chain + payload.

use crate::addr::Ipv6Address;
use crate::error::ParseError;
use crate::exthdr::{encode_chain, parse_chain, ExtensionHeader};
use crate::header::{Ipv6Header, NextHeader};

/// A complete IPv6 datagram as the line cards hand it to the processor.
///
/// Invariants maintained by construction and parsing:
///
/// * `header.payload_len` always equals the encoded extension chain length
///   plus the payload length;
/// * `header.next_header` always names the first extension header, or the
///   upper-layer protocol if the chain is empty.
///
/// # Examples
///
/// ```
/// use taco_ipv6::{Datagram, NextHeader};
///
/// # fn main() -> Result<(), taco_ipv6::ParseError> {
/// let d = Datagram::builder("2001:db8::1".parse()?, "2001:db8::99".parse()?)
///     .hop_limit(32)
///     .payload(NextHeader::Udp, b"rip payload".to_vec())
///     .build();
/// assert_eq!(d.upper_protocol(), NextHeader::Udp);
/// assert_eq!(d.wire_len(), 40 + 11);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Datagram {
    header: Ipv6Header,
    extensions: Vec<ExtensionHeader>,
    upper: NextHeader,
    payload: Vec<u8>,
}

impl Datagram {
    /// Starts building a datagram from `src` to `dst`.
    pub fn builder(src: Ipv6Address, dst: Ipv6Address) -> DatagramBuilder {
        DatagramBuilder {
            src,
            dst,
            traffic_class: 0,
            flow_label: 0,
            hop_limit: 64,
            extensions: Vec::new(),
            upper: NextHeader::NoNextHeader,
            payload: Vec::new(),
        }
    }

    /// Parses a datagram from wire bytes.
    ///
    /// # Errors
    ///
    /// * header/extension errors from the underlying codecs;
    /// * [`ParseError::LengthMismatch`] if the buffer is shorter than the
    ///   declared payload length (extra trailing bytes are ignored, as a
    ///   link layer may pad frames).
    pub fn parse(bytes: &[u8]) -> Result<Self, ParseError> {
        let header = Ipv6Header::parse(bytes)?;
        let declared = usize::from(header.payload_len);
        let rest = &bytes[Ipv6Header::LEN..];
        if rest.len() < declared {
            return Err(ParseError::LengthMismatch { declared, actual: rest.len() });
        }
        let body = &rest[..declared];
        let (extensions, upper, consumed) = parse_chain(header.next_header, body)?;
        let payload = body[consumed..].to_vec();
        Ok(Datagram { header, extensions, upper, payload })
    }

    /// The fixed header (payload length and next header reflect the current
    /// contents).
    pub fn header(&self) -> &Ipv6Header {
        &self.header
    }

    /// The parsed extension-header chain, in wire order.
    pub fn extensions(&self) -> &[ExtensionHeader] {
        &self.extensions
    }

    /// The upper-layer protocol carried after the extension chain.
    pub fn upper_protocol(&self) -> NextHeader {
        self.upper
    }

    /// The upper-layer payload bytes.
    pub fn payload(&self) -> &[u8] {
        &self.payload
    }

    /// Total on-the-wire size in bytes.
    pub fn wire_len(&self) -> usize {
        Ipv6Header::LEN + usize::from(self.header.payload_len)
    }

    /// Serializes the datagram.
    pub fn to_bytes(&self) -> Vec<u8> {
        let (ext_bytes, _) = encode_chain(&self.extensions, self.upper);
        let mut out = Vec::with_capacity(self.wire_len());
        out.extend_from_slice(&self.header.to_bytes());
        out.extend_from_slice(&ext_bytes);
        out.extend_from_slice(&self.payload);
        out
    }

    /// Decrements the hop limit, returning `false` (and leaving the datagram
    /// untouched) if it is already zero — the condition under which a router
    /// must drop the packet and emit an ICMPv6 *time exceeded*.
    pub fn decrement_hop_limit(&mut self) -> bool {
        if self.header.hop_limit == 0 {
            return false;
        }
        self.header.hop_limit -= 1;
        true
    }

    /// Replaces the payload, fixing up `payload_len`.
    pub fn set_payload(&mut self, payload: Vec<u8>) {
        self.payload = payload;
        self.refresh_len();
    }

    fn refresh_len(&mut self) {
        let (ext_bytes, first) = encode_chain(&self.extensions, self.upper);
        self.header.next_header = first;
        self.header.payload_len = (ext_bytes.len() + self.payload.len()) as u16;
    }
}

/// Builder returned by [`Datagram::builder`].
///
/// Field setters may be chained in any order; [`DatagramBuilder::build`]
/// computes the length and next-header fields.
#[derive(Debug, Clone)]
pub struct DatagramBuilder {
    src: Ipv6Address,
    dst: Ipv6Address,
    traffic_class: u8,
    flow_label: u32,
    hop_limit: u8,
    extensions: Vec<ExtensionHeader>,
    upper: NextHeader,
    payload: Vec<u8>,
}

impl DatagramBuilder {
    /// Sets the traffic class (default 0).
    pub fn traffic_class(mut self, tc: u8) -> Self {
        self.traffic_class = tc;
        self
    }

    /// Sets the flow label (default 0).
    ///
    /// # Panics
    ///
    /// [`DatagramBuilder::build`] will panic if the value exceeds 20 bits.
    pub fn flow_label(mut self, fl: u32) -> Self {
        self.flow_label = fl;
        self
    }

    /// Sets the hop limit (default 64).
    pub fn hop_limit(mut self, hl: u8) -> Self {
        self.hop_limit = hl;
        self
    }

    /// Appends an extension header to the chain.
    pub fn extension(mut self, ext: ExtensionHeader) -> Self {
        self.extensions.push(ext);
        self
    }

    /// Sets the upper-layer protocol and payload.
    pub fn payload(mut self, proto: NextHeader, payload: Vec<u8>) -> Self {
        self.upper = proto;
        self.payload = payload;
        self
    }

    /// Finishes the datagram, computing `payload_len` and `next_header`.
    pub fn build(self) -> Datagram {
        let (ext_bytes, first) = encode_chain(&self.extensions, self.upper);
        let header = Ipv6Header {
            traffic_class: self.traffic_class,
            flow_label: self.flow_label,
            payload_len: (ext_bytes.len() + self.payload.len()) as u16,
            next_header: first,
            hop_limit: self.hop_limit,
            src: self.src,
            dst: self.dst,
        };
        Datagram { header, extensions: self.extensions, upper: self.upper, payload: self.payload }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exthdr::{FragmentHeader, OptionsHeader, RoutingHeader};

    fn a(s: &str) -> Ipv6Address {
        s.parse().unwrap()
    }

    fn simple() -> Datagram {
        Datagram::builder(a("2001:db8::1"), a("2001:db8::2"))
            .payload(NextHeader::Udp, vec![1, 2, 3, 4])
            .build()
    }

    #[test]
    fn round_trip_plain() {
        let d = simple();
        assert_eq!(Datagram::parse(&d.to_bytes()).unwrap(), d);
    }

    #[test]
    fn round_trip_with_extensions() {
        let d = Datagram::builder(a("fe80::1"), a("ff02::9"))
            .hop_limit(255)
            .extension(ExtensionHeader::HopByHop(OptionsHeader::new()))
            .extension(ExtensionHeader::Routing(RoutingHeader {
                routing_type: 0,
                segments_left: 1,
                addresses: vec![[3u8; 16]],
            }))
            .extension(ExtensionHeader::Fragment(FragmentHeader { offset: 0, more: false, id: 42 }))
            .payload(NextHeader::Udp, vec![0xab; 64])
            .build();
        let parsed = Datagram::parse(&d.to_bytes()).unwrap();
        assert_eq!(parsed, d);
        assert_eq!(parsed.extensions().len(), 3);
        assert_eq!(parsed.upper_protocol(), NextHeader::Udp);
        assert_eq!(parsed.header().next_header, NextHeader::HopByHop);
    }

    #[test]
    fn payload_len_consistency() {
        let d = simple();
        assert_eq!(usize::from(d.header().payload_len), 4);
        assert_eq!(d.wire_len(), 44);
        assert_eq!(d.to_bytes().len(), d.wire_len());
    }

    #[test]
    fn trailing_padding_ignored() {
        let mut bytes = simple().to_bytes();
        bytes.extend_from_slice(&[0u8; 10]); // link-layer pad
        let parsed = Datagram::parse(&bytes).unwrap();
        assert_eq!(parsed.payload(), &[1, 2, 3, 4]);
    }

    #[test]
    fn short_buffer_rejected() {
        let bytes = simple().to_bytes();
        let err = Datagram::parse(&bytes[..bytes.len() - 1]).unwrap_err();
        assert_eq!(err, ParseError::LengthMismatch { declared: 4, actual: 3 });
    }

    #[test]
    fn hop_limit_decrement() {
        let mut d = simple();
        assert_eq!(d.header().hop_limit, 64);
        assert!(d.decrement_hop_limit());
        assert_eq!(d.header().hop_limit, 63);

        let mut z = Datagram::builder(a("::1"), a("::2"))
            .hop_limit(0)
            .payload(NextHeader::Udp, vec![])
            .build();
        assert!(!z.decrement_hop_limit());
        assert_eq!(z.header().hop_limit, 0);
    }

    #[test]
    fn set_payload_refreshes_len() {
        let mut d = simple();
        d.set_payload(vec![0u8; 100]);
        assert_eq!(usize::from(d.header().payload_len), 100);
        let rt = Datagram::parse(&d.to_bytes()).unwrap();
        assert_eq!(rt.payload().len(), 100);
    }

    #[test]
    fn no_next_header_datagram() {
        let d = Datagram::builder(a("::1"), a("::2")).build();
        assert_eq!(d.header().next_header, NextHeader::NoNextHeader);
        assert_eq!(d.wire_len(), 40);
        assert_eq!(Datagram::parse(&d.to_bytes()).unwrap(), d);
    }
}
