//! CIDR prefixes over [`Ipv6Address`].

use std::fmt;
use std::str::FromStr;

use crate::addr::Ipv6Address;
use crate::error::ParseError;

/// An IPv6 network prefix: an address plus a prefix length in `0..=128`.
///
/// The stored address is always *canonical* — bits beyond the prefix length
/// are zero — so two prefixes covering the same network compare equal
/// regardless of how they were written.
///
/// # Examples
///
/// ```
/// use taco_ipv6::{Ipv6Address, Ipv6Prefix};
///
/// # fn main() -> Result<(), taco_ipv6::ParseError> {
/// let p: Ipv6Prefix = "2001:db8::/32".parse()?;
/// let host: Ipv6Address = "2001:db8:1234::1".parse()?;
/// assert!(p.contains(&host));
/// assert_eq!(p.to_string(), "2001:db8::/32");
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Ipv6Prefix {
    addr: Ipv6Address,
    len: u8,
}

impl Ipv6Prefix {
    /// The default route `::/0`, which matches every address.
    pub const DEFAULT_ROUTE: Ipv6Prefix = Ipv6Prefix { addr: Ipv6Address::UNSPECIFIED, len: 0 };

    /// Creates a prefix, canonicalizing the address by clearing host bits.
    ///
    /// # Errors
    ///
    /// Returns [`ParseError::BadPrefixLen`] if `len > 128`.
    pub fn new(addr: Ipv6Address, len: u8) -> Result<Self, ParseError> {
        if len > 128 {
            return Err(ParseError::BadPrefixLen(len));
        }
        Ok(Ipv6Prefix { addr: addr.truncated(len), len })
    }

    /// Creates a host prefix (`/128`) for a single address.
    pub fn host(addr: Ipv6Address) -> Self {
        Ipv6Prefix { addr, len: 128 }
    }

    /// The canonical network address (host bits zero).
    pub fn addr(&self) -> Ipv6Address {
        self.addr
    }

    /// The prefix length in bits.
    pub fn len(&self) -> u8 {
        self.len
    }

    /// Returns `true` for the zero-length default route `::/0`.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Returns `true` if `addr` falls inside this prefix.
    pub fn contains(&self, addr: &Ipv6Address) -> bool {
        self.addr.common_prefix_len(addr) >= self.len
    }

    /// Returns `true` if `other` is fully covered by `self`
    /// (`self` is shorter or equal and the leading bits agree).
    pub fn covers(&self, other: &Ipv6Prefix) -> bool {
        self.len <= other.len && self.contains(&other.addr)
    }

    /// The 128-bit mask with the first `len` bits set, as four 32-bit words.
    ///
    /// This is the constant the router microcode loads into the Masker /
    /// Matcher functional units before a sequential-table compare.
    pub fn mask_words(&self) -> [u32; 4] {
        let mut words = [0u32; 4];
        let mut remaining = self.len as u32;
        for w in &mut words {
            let take = remaining.min(32);
            *w = if take == 0 { 0 } else { (!0u32) << (32 - take) };
            remaining -= take;
        }
        words
    }
}

impl Default for Ipv6Prefix {
    fn default() -> Self {
        Self::DEFAULT_ROUTE
    }
}

impl fmt::Debug for Ipv6Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Ipv6Prefix({self})")
    }
}

impl fmt::Display for Ipv6Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.addr, self.len)
    }
}

impl FromStr for Ipv6Prefix {
    type Err = ParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (addr_part, len_part) = s.split_once('/').ok_or(ParseError::BadAddressSyntax)?;
        let addr: Ipv6Address = addr_part.parse()?;
        let len: u8 = len_part.parse().map_err(|_| ParseError::BadAddressSyntax)?;
        Ipv6Prefix::new(addr, len)
    }
}

impl From<Ipv6Address> for Ipv6Prefix {
    fn from(addr: Ipv6Address) -> Self {
        Ipv6Prefix::host(addr)
    }
}

/// Orders prefixes by address first, then by length — the order used by the
/// balanced-tree routing table.
impl PartialOrd for Ipv6Prefix {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Ipv6Prefix {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.addr.cmp(&other.addr).then(self.len.cmp(&other.len))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Ipv6Prefix {
        s.parse().unwrap()
    }

    fn a(s: &str) -> Ipv6Address {
        s.parse().unwrap()
    }

    #[test]
    fn canonicalizes_host_bits() {
        let x = Ipv6Prefix::new(a("2001:db8::ffff"), 32).unwrap();
        assert_eq!(x.addr(), a("2001:db8::"));
        assert_eq!(x, p("2001:db8::/32"));
    }

    #[test]
    fn rejects_overlong() {
        assert_eq!(
            Ipv6Prefix::new(Ipv6Address::UNSPECIFIED, 129),
            Err(ParseError::BadPrefixLen(129))
        );
        assert!("::/129".parse::<Ipv6Prefix>().is_err());
        assert!("2001:db8::".parse::<Ipv6Prefix>().is_err()); // missing /len
        assert!("2001:db8::/abc".parse::<Ipv6Prefix>().is_err());
    }

    #[test]
    fn contains_edge_cases() {
        assert!(Ipv6Prefix::DEFAULT_ROUTE.contains(&a("1234::1")));
        assert!(p("2001:db8::/32").contains(&a("2001:db8:ffff::1")));
        assert!(!p("2001:db8::/32").contains(&a("2001:db9::1")));
        let host = Ipv6Prefix::host(a("::7"));
        assert!(host.contains(&a("::7")));
        assert!(!host.contains(&a("::8")));
    }

    #[test]
    fn covers_relation() {
        assert!(p("2001:db8::/32").covers(&p("2001:db8:1::/48")));
        assert!(!p("2001:db8:1::/48").covers(&p("2001:db8::/32")));
        assert!(p("::/0").covers(&p("ffff::/16")));
        let q = p("2001:db8::/32");
        assert!(q.covers(&q));
    }

    #[test]
    fn mask_words_shapes() {
        assert_eq!(p("::/0").mask_words(), [0, 0, 0, 0]);
        assert_eq!(p("2001:db8::/32").mask_words(), [0xffff_ffff, 0, 0, 0]);
        assert_eq!(p("2001:db8::/48").mask_words(), [0xffff_ffff, 0xffff_0000, 0, 0]);
        assert_eq!(Ipv6Prefix::host(a("::1")).mask_words(), [0xffff_ffff; 4]);
        assert_eq!(p("8000::/1").mask_words(), [0x8000_0000, 0, 0, 0]);
    }

    #[test]
    fn display_round_trip() {
        for s in ["::/0", "2001:db8::/32", "fe80::/10", "::1/128"] {
            assert_eq!(p(s).to_string(), s);
        }
    }

    #[test]
    fn ordering_is_addr_then_len() {
        let mut v = vec![p("2001:db8::/48"), p("2001:db8::/32"), p("::/0")];
        v.sort();
        assert_eq!(v, vec![p("::/0"), p("2001:db8::/32"), p("2001:db8::/48")]);
    }
}
