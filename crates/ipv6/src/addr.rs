//! 128-bit IPv6 addresses.
//!
//! [`Ipv6Address`] is a thin newtype over `[u8; 16]` that adds the accessors
//! the rest of the framework needs: word-level views matching the 32-bit
//! datapath of the TACO functional units, bit extraction for the trie and
//! tree lookup engines, and scope classification for the router's input
//! validation microcode.

use std::fmt;
use std::net::Ipv6Addr;
use std::str::FromStr;

use crate::error::ParseError;

/// A 128-bit IPv6 address.
///
/// Stored in network byte order.  The TACO datapath is 32 bits wide, so the
/// address is frequently handled as four big-endian words — see
/// [`Ipv6Address::to_words`].
///
/// # Examples
///
/// ```
/// use taco_ipv6::Ipv6Address;
///
/// # fn main() -> Result<(), taco_ipv6::ParseError> {
/// let a: Ipv6Address = "2001:db8::42".parse()?;
/// assert_eq!(a.to_words()[0], 0x2001_0db8);
/// assert!(!a.bit(0) && a.bit(2)); // first nibble 0x2 = 0b0010
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Ipv6Address([u8; 16]);

impl Ipv6Address {
    /// The unspecified address `::`.
    pub const UNSPECIFIED: Ipv6Address = Ipv6Address([0; 16]);

    /// The loopback address `::1`.
    pub const LOOPBACK: Ipv6Address = Ipv6Address([0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1]);

    /// The all-RIPng-routers multicast group `ff02::9` (RFC 2080 §2.5.1).
    pub const ALL_RIPNG_ROUTERS: Ipv6Address =
        Ipv6Address([0xff, 0x02, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 9]);

    /// Creates an address from 16 bytes in network order.
    pub const fn new(octets: [u8; 16]) -> Self {
        Ipv6Address(octets)
    }

    /// Creates an address from four 32-bit words, most significant first.
    ///
    /// This mirrors how the TACO functional units see an address: as four
    /// consecutive 32-bit operands.
    pub fn from_words(words: [u32; 4]) -> Self {
        let mut o = [0u8; 16];
        for (i, w) in words.iter().enumerate() {
            o[i * 4..i * 4 + 4].copy_from_slice(&w.to_be_bytes());
        }
        Ipv6Address(o)
    }

    /// Creates an address from eight 16-bit segments, most significant first
    /// (the grouping used by the textual representation).
    pub fn from_segments(segs: [u16; 8]) -> Self {
        let mut o = [0u8; 16];
        for (i, s) in segs.iter().enumerate() {
            o[i * 2..i * 2 + 2].copy_from_slice(&s.to_be_bytes());
        }
        Ipv6Address(o)
    }

    /// Returns the 16 raw octets in network order.
    pub const fn octets(&self) -> [u8; 16] {
        self.0
    }

    /// Returns the address as four 32-bit words, most significant first.
    pub fn to_words(self) -> [u32; 4] {
        let mut w = [0u32; 4];
        for (i, item) in w.iter_mut().enumerate() {
            *item = u32::from_be_bytes([
                self.0[i * 4],
                self.0[i * 4 + 1],
                self.0[i * 4 + 2],
                self.0[i * 4 + 3],
            ]);
        }
        w
    }

    /// Returns the address as eight 16-bit segments, most significant first.
    pub fn to_segments(self) -> [u16; 8] {
        let mut s = [0u16; 8];
        for (i, item) in s.iter_mut().enumerate() {
            *item = u16::from_be_bytes([self.0[i * 2], self.0[i * 2 + 1]]);
        }
        s
    }

    /// Returns bit `index` of the address, where bit 0 is the most
    /// significant bit of the first octet.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 128`.
    pub fn bit(&self, index: u8) -> bool {
        assert!(index < 128, "bit index {index} out of range");
        let byte = self.0[(index / 8) as usize];
        (byte >> (7 - index % 8)) & 1 == 1
    }

    /// Returns a copy of the address with bit `index` set to `value`
    /// (bit 0 = most significant).
    ///
    /// # Panics
    ///
    /// Panics if `index >= 128`.
    pub fn with_bit(mut self, index: u8, value: bool) -> Self {
        assert!(index < 128, "bit index {index} out of range");
        let mask = 1u8 << (7 - index % 8);
        if value {
            self.0[(index / 8) as usize] |= mask;
        } else {
            self.0[(index / 8) as usize] &= !mask;
        }
        self
    }

    /// Length of the longest common leading bit string shared with `other`,
    /// in bits (0..=128).
    ///
    /// This is the primitive the tree- and trie-based longest-prefix-match
    /// engines are built on.
    pub fn common_prefix_len(&self, other: &Ipv6Address) -> u8 {
        let mut len = 0u8;
        for i in 0..16 {
            let x = self.0[i] ^ other.0[i];
            if x == 0 {
                len += 8;
            } else {
                len += x.leading_zeros() as u8;
                break;
            }
        }
        len
    }

    /// Returns `true` for multicast addresses (`ff00::/8`).
    pub fn is_multicast(&self) -> bool {
        self.0[0] == 0xff
    }

    /// Returns `true` for link-local unicast addresses (`fe80::/10`).
    pub fn is_link_local(&self) -> bool {
        self.0[0] == 0xfe && (self.0[1] & 0xc0) == 0x80
    }

    /// Returns `true` for the unspecified address `::`.
    pub fn is_unspecified(&self) -> bool {
        *self == Self::UNSPECIFIED
    }

    /// Returns `true` for the loopback address `::1`.
    pub fn is_loopback(&self) -> bool {
        *self == Self::LOOPBACK
    }

    /// Returns a copy with all bits after the first `len` bits cleared.
    ///
    /// # Panics
    ///
    /// Panics if `len > 128`.
    pub fn truncated(mut self, len: u8) -> Self {
        assert!(len <= 128, "prefix length {len} out of range");
        let full = (len / 8) as usize;
        let rem = len % 8;
        if full < 16 {
            if rem > 0 {
                self.0[full] &= 0xffu8 << (8 - rem);
                for b in &mut self.0[full + 1..] {
                    *b = 0;
                }
            } else {
                for b in &mut self.0[full..] {
                    *b = 0;
                }
            }
        }
        self
    }
}

impl fmt::Debug for Ipv6Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Ipv6Address({self})")
    }
}

impl fmt::Display for Ipv6Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Delegate to std's RFC 5952 formatting.
        Ipv6Addr::from(self.0).fmt(f)
    }
}

impl FromStr for Ipv6Address {
    type Err = ParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let std_addr: Ipv6Addr = s.parse().map_err(|_| ParseError::BadAddressSyntax)?;
        Ok(Ipv6Address(std_addr.octets()))
    }
}

impl From<Ipv6Addr> for Ipv6Address {
    fn from(a: Ipv6Addr) -> Self {
        Ipv6Address(a.octets())
    }
}

impl From<Ipv6Address> for Ipv6Addr {
    fn from(a: Ipv6Address) -> Self {
        Ipv6Addr::from(a.0)
    }
}

impl From<[u8; 16]> for Ipv6Address {
    fn from(o: [u8; 16]) -> Self {
        Ipv6Address(o)
    }
}

impl From<Ipv6Address> for [u8; 16] {
    fn from(a: Ipv6Address) -> Self {
        a.0
    }
}

impl AsRef<[u8]> for Ipv6Address {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(s: &str) -> Ipv6Address {
        s.parse().unwrap()
    }

    #[test]
    fn parse_and_display_round_trip() {
        for s in ["::", "::1", "2001:db8::1", "fe80::dead:beef", "ff02::9"] {
            assert_eq!(a(s).to_string(), s);
        }
    }

    #[test]
    fn words_round_trip() {
        let addr = a("2001:db8:aaaa:bbbb:cccc:dddd:eeee:ffff");
        assert_eq!(Ipv6Address::from_words(addr.to_words()), addr);
        assert_eq!(addr.to_words(), [0x2001_0db8, 0xaaaa_bbbb, 0xcccc_dddd, 0xeeee_ffff]);
    }

    #[test]
    fn segments_round_trip() {
        let addr = a("1:2:3:4:5:6:7:8");
        assert_eq!(addr.to_segments(), [1, 2, 3, 4, 5, 6, 7, 8]);
        assert_eq!(Ipv6Address::from_segments(addr.to_segments()), addr);
    }

    #[test]
    fn bit_extraction_msb_first() {
        let addr = a("8000::"); // only bit 0 set
        assert!(addr.bit(0));
        for i in 1..128 {
            assert!(!addr.bit(i), "bit {i}");
        }
        let last = a("::1"); // only bit 127 set
        assert!(last.bit(127));
        assert!(!last.bit(126));
    }

    #[test]
    fn with_bit_sets_and_clears() {
        let addr = Ipv6Address::UNSPECIFIED.with_bit(0, true).with_bit(127, true);
        assert_eq!(addr, a("8000::1"));
        assert_eq!(addr.with_bit(0, false), a("::1"));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bit_out_of_range_panics() {
        let _ = Ipv6Address::UNSPECIFIED.bit(128);
    }

    #[test]
    fn common_prefix_len_cases() {
        assert_eq!(a("2001:db8::").common_prefix_len(&a("2001:db8::")), 128);
        assert_eq!(a("8000::").common_prefix_len(&a("::")), 0);
        assert_eq!(a("2001:db8::").common_prefix_len(&a("2001:db9::")), 31);
        assert_eq!(a("ffff::").common_prefix_len(&a("fffe::")), 15);
    }

    #[test]
    fn scope_classification() {
        assert!(a("ff02::9").is_multicast());
        assert!(!a("2001:db8::1").is_multicast());
        assert!(a("fe80::1").is_link_local());
        assert!(!a("fec0::1").is_link_local());
        assert!(Ipv6Address::UNSPECIFIED.is_unspecified());
        assert!(Ipv6Address::LOOPBACK.is_loopback());
    }

    #[test]
    fn truncated_clears_host_bits() {
        let addr = a("2001:db8:ffff:ffff::1");
        assert_eq!(addr.truncated(32), a("2001:db8::"));
        assert_eq!(addr.truncated(35), a("2001:db8:e000::"));
        assert_eq!(addr.truncated(0), Ipv6Address::UNSPECIFIED);
        assert_eq!(addr.truncated(128), addr);
    }

    #[test]
    fn std_conversions() {
        let std_addr: Ipv6Addr = "2001:db8::7".parse().unwrap();
        let ours: Ipv6Address = std_addr.into();
        let back: Ipv6Addr = ours.into();
        assert_eq!(std_addr, back);
    }

    #[test]
    fn well_known_constants() {
        assert_eq!(Ipv6Address::ALL_RIPNG_ROUTERS, a("ff02::9"));
        assert_eq!(Ipv6Address::LOOPBACK, a("::1"));
    }
}
