//! RFC 1071 Internet checksum and the IPv6 pseudo-header sum.
//!
//! The TACO processor has a dedicated `Checksum` functional unit; this module
//! is the behavioural reference for it.  The incremental [`Checksum`]
//! accumulator mirrors how the FU is fed 32-bit operands one move at a time.

use crate::addr::Ipv6Address;

/// Incremental one's-complement checksum accumulator.
///
/// Feed it bytes or words, then call [`Checksum::finish`] to obtain the
/// folded, complemented 16-bit checksum.
///
/// # Examples
///
/// ```
/// use taco_ipv6::checksum::Checksum;
///
/// let mut c = Checksum::new();
/// c.add_bytes(&[0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7]);
/// // Classic example from RFC 1071 §3.
/// assert_eq!(c.finish(), !0xddf2u16);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Checksum {
    sum: u32,
}

impl Checksum {
    /// Creates an accumulator with a zero partial sum.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a 16-bit word to the running sum.
    pub fn add_u16(&mut self, word: u16) {
        self.sum += u32::from(word);
    }

    /// Adds a 32-bit word (as two 16-bit halves) to the running sum.
    ///
    /// This is the granularity at which the TACO `Checksum` FU is triggered.
    pub fn add_u32(&mut self, word: u32) {
        self.add_u16((word >> 16) as u16);
        self.add_u16(word as u16);
    }

    /// Adds a byte slice, padding an odd trailing byte with zero as the RFC
    /// requires.
    pub fn add_bytes(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(2);
        for c in &mut chunks {
            self.add_u16(u16::from_be_bytes([c[0], c[1]]));
        }
        if let [last] = chunks.remainder() {
            self.add_u16(u16::from_be_bytes([*last, 0]));
        }
    }

    /// Adds the IPv6 pseudo-header of RFC 2460 §8.1.
    ///
    /// `upper_len` is the upper-layer packet length and `next_header` the
    /// final next-header value (e.g. 17 for UDP, 58 for ICMPv6).
    pub fn add_pseudo_header(
        &mut self,
        src: &Ipv6Address,
        dst: &Ipv6Address,
        upper_len: u32,
        next_header: u8,
    ) {
        self.add_bytes(&src.octets());
        self.add_bytes(&dst.octets());
        self.add_u32(upper_len);
        self.add_u32(u32::from(next_header));
    }

    /// Folds carries and returns the one's-complement of the sum.
    ///
    /// A result of `0` is transmitted as `0xffff` by UDP; that substitution
    /// is the caller's business (see [`udp`](crate::udp)).
    pub fn finish(mut self) -> u16 {
        while self.sum > 0xffff {
            self.sum = (self.sum & 0xffff) + (self.sum >> 16);
        }
        !(self.sum as u16)
    }
}

/// Computes the RFC 1071 checksum of `bytes` in one call.
///
/// # Examples
///
/// ```
/// use taco_ipv6::checksum::checksum;
///
/// // A buffer whose checksum field is already correct sums to zero.
/// let mut buf = vec![0x45, 0x00, 0x00, 0x1c];
/// let c = checksum(&buf);
/// buf.extend_from_slice(&c.to_be_bytes());
/// assert_eq!(checksum(&buf), 0);
/// ```
pub fn checksum(bytes: &[u8]) -> u16 {
    let mut c = Checksum::new();
    c.add_bytes(bytes);
    c.finish()
}

/// Computes the checksum of an upper-layer packet including the IPv6
/// pseudo-header.
///
/// `payload` must contain the upper-layer header with its checksum field
/// zeroed (when computing) or filled in (when verifying, in which case a
/// return value of `0` means "valid").
pub fn pseudo_header_checksum(
    src: &Ipv6Address,
    dst: &Ipv6Address,
    next_header: u8,
    payload: &[u8],
) -> u16 {
    let mut c = Checksum::new();
    c.add_pseudo_header(src, dst, payload.len() as u32, next_header);
    c.add_bytes(payload);
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_checksum_is_all_ones() {
        assert_eq!(checksum(&[]), 0xffff);
    }

    #[test]
    fn odd_length_pads_with_zero() {
        assert_eq!(checksum(&[0xab]), checksum(&[0xab, 0x00]));
    }

    #[test]
    fn verification_of_correct_buffer_yields_zero() {
        let data = [0x12u8, 0x34, 0x56, 0x78, 0x9a, 0xbc];
        let c = checksum(&data);
        let mut full = data.to_vec();
        full.extend_from_slice(&c.to_be_bytes());
        assert_eq!(checksum(&full), 0);
    }

    #[test]
    fn u32_matches_bytes() {
        let mut a = Checksum::new();
        a.add_u32(0xdead_beef);
        let mut b = Checksum::new();
        b.add_bytes(&[0xde, 0xad, 0xbe, 0xef]);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn pseudo_header_changes_result() {
        let src: Ipv6Address = "2001:db8::1".parse().unwrap();
        let dst: Ipv6Address = "2001:db8::2".parse().unwrap();
        let plain = checksum(b"hello");
        let with_ph = pseudo_header_checksum(&src, &dst, 17, b"hello");
        assert_ne!(plain, with_ph);
        // Swapping src/dst must not change the sum (addition commutes).
        assert_eq!(with_ph, pseudo_header_checksum(&dst, &src, 17, b"hello"));
    }

    #[test]
    fn order_independence_of_16bit_words() {
        // One's complement addition commutes over 16-bit words.
        let x = checksum(&[1, 2, 3, 4]);
        let y = checksum(&[3, 4, 1, 2]);
        assert_eq!(x, y);
    }

    #[test]
    fn carry_folding() {
        // 0xffff + 0x0001 wraps to 0x0001 in one's complement arithmetic.
        let mut c = Checksum::new();
        c.add_u16(0xffff);
        c.add_u16(0x0001);
        assert_eq!(c.finish(), !0x0001u16);
    }
}
