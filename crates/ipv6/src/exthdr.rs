//! IPv6 extension headers (RFC 2460 §4).
//!
//! The paper copies *entire* datagrams into processor memory precisely
//! because "in IPv6 the IP header can be accompanied by a variable number of
//! extension headers that also have to be taken into consideration".  This
//! module models the headers a router can meet: hop-by-hop options,
//! destination options, the routing header and the fragment header.

use crate::error::ParseError;
use crate::header::NextHeader;

/// A hop-by-hop or destination options header.
///
/// Options are stored as raw TLV bytes; the router does not interpret them,
/// it only needs to skip the header (and, for hop-by-hop, acknowledge that it
/// looked).  On the wire the header is always padded to a multiple of 8
/// bytes; `OptionsHeader` encoding inserts PadN options as needed.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct OptionsHeader {
    /// Raw option TLVs (excluding the 2-byte header prologue and any final
    /// padding).
    pub options: Vec<u8>,
}

impl OptionsHeader {
    /// Creates an empty options header (it will be wire-encoded as 8 bytes of
    /// padding).
    pub fn new() -> Self {
        Self::default()
    }

    /// Wire length including padding: smallest multiple of 8 covering the
    /// 2-byte prologue plus the options.
    pub fn wire_len(&self) -> usize {
        (2 + self.options.len()).div_ceil(8) * 8
    }

    fn encode(&self, next: u8, out: &mut Vec<u8>) {
        let len = self.wire_len();
        out.push(next);
        out.push((len / 8 - 1) as u8);
        out.extend_from_slice(&self.options);
        let pad = len - 2 - self.options.len();
        match pad {
            0 => {}
            1 => out.push(0), // Pad1
            n => {
                // PadN: type 1, length n-2, zero body.
                out.push(1);
                out.push((n - 2) as u8);
                out.extend(std::iter::repeat(0).take(n - 2));
            }
        }
    }

    fn decode(bytes: &[u8]) -> Result<(Self, u8, usize), ParseError> {
        if bytes.len() < 2 {
            return Err(ParseError::Truncated {
                what: "options header",
                needed: 2,
                got: bytes.len(),
            });
        }
        let next = bytes[0];
        let len = (usize::from(bytes[1]) + 1) * 8;
        if bytes.len() < len {
            return Err(ParseError::Truncated {
                what: "options header",
                needed: len,
                got: bytes.len(),
            });
        }
        let mut options = bytes[2..len].to_vec();
        if let Some(end) = Self::last_non_pad_end(&options) {
            options.truncate(end);
        }
        Ok((OptionsHeader { options }, next, len))
    }

    /// Walks the TLV list and returns the byte offset just past the last
    /// non-padding option, or `None` if the bytes are not well-formed TLVs
    /// (in which case they are kept verbatim).
    fn last_non_pad_end(options: &[u8]) -> Option<usize> {
        let mut i = 0usize;
        let mut end = 0usize;
        while i < options.len() {
            match options[i] {
                0 => i += 1, // Pad1
                ty => {
                    let len = *options.get(i + 1)? as usize;
                    if i + 2 + len > options.len() {
                        return None;
                    }
                    i += 2 + len;
                    if ty != 1 {
                        end = i; // not PadN: real payload extends here
                    }
                }
            }
        }
        Some(end)
    }
}

/// A type 0 routing header (RFC 2460 §4.4), carrying a list of intermediate
/// addresses.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RoutingHeader {
    /// Routing type (0 for the classic source route).
    pub routing_type: u8,
    /// Number of listed nodes still to be visited.
    pub segments_left: u8,
    /// The 16-byte addresses, stored raw.
    pub addresses: Vec<[u8; 16]>,
}

impl RoutingHeader {
    /// Wire length: 8-byte prologue plus 16 bytes per address.
    pub fn wire_len(&self) -> usize {
        8 + 16 * self.addresses.len()
    }

    fn encode(&self, next: u8, out: &mut Vec<u8>) {
        out.push(next);
        out.push((2 * self.addresses.len()) as u8);
        out.push(self.routing_type);
        out.push(self.segments_left);
        out.extend_from_slice(&[0u8; 4]); // reserved
        for a in &self.addresses {
            out.extend_from_slice(a);
        }
    }

    fn decode(bytes: &[u8]) -> Result<(Self, u8, usize), ParseError> {
        if bytes.len() < 8 {
            return Err(ParseError::Truncated {
                what: "routing header",
                needed: 8,
                got: bytes.len(),
            });
        }
        let next = bytes[0];
        let ext_len = usize::from(bytes[1]);
        let len = 8 + ext_len * 8;
        if bytes.len() < len {
            return Err(ParseError::Truncated {
                what: "routing header",
                needed: len,
                got: bytes.len(),
            });
        }
        if ext_len % 2 != 0 {
            return Err(ParseError::BadField {
                field: "routing hdr ext len",
                value: ext_len as u64,
            });
        }
        let mut addresses = Vec::with_capacity(ext_len / 2);
        for i in 0..ext_len / 2 {
            let mut a = [0u8; 16];
            a.copy_from_slice(&bytes[8 + i * 16..8 + (i + 1) * 16]);
            addresses.push(a);
        }
        Ok((
            RoutingHeader { routing_type: bytes[2], segments_left: bytes[3], addresses },
            next,
            len,
        ))
    }
}

/// A fragment header (RFC 2460 §4.5).
///
/// The paper's line cards reassemble fragments, but a router still forwards
/// foreign fragments unchanged, so the codec must understand the header.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FragmentHeader {
    /// Offset of this fragment in 8-byte units.
    pub offset: u16,
    /// More-fragments flag.
    pub more: bool,
    /// Identification value shared by all fragments of a packet.
    pub id: u32,
}

impl FragmentHeader {
    /// Wire length: always 8 bytes.
    pub const LEN: usize = 8;

    fn encode(&self, next: u8, out: &mut Vec<u8>) {
        out.push(next);
        out.push(0); // reserved
        let off_flags = (self.offset << 3) | u16::from(self.more);
        out.extend_from_slice(&off_flags.to_be_bytes());
        out.extend_from_slice(&self.id.to_be_bytes());
    }

    fn decode(bytes: &[u8]) -> Result<(Self, u8, usize), ParseError> {
        if bytes.len() < Self::LEN {
            return Err(ParseError::Truncated {
                what: "fragment header",
                needed: Self::LEN,
                got: bytes.len(),
            });
        }
        let next = bytes[0];
        let off_flags = u16::from_be_bytes([bytes[2], bytes[3]]);
        Ok((
            FragmentHeader {
                offset: off_flags >> 3,
                more: off_flags & 1 == 1,
                id: u32::from_be_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]),
            },
            next,
            Self::LEN,
        ))
    }
}

/// One parsed extension header together with its kind.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExtensionHeader {
    /// Hop-by-hop options (next-header value 0).
    HopByHop(OptionsHeader),
    /// Destination options (next-header value 60).
    DestinationOptions(OptionsHeader),
    /// Routing header (next-header value 43).
    Routing(RoutingHeader),
    /// Fragment header (next-header value 44).
    Fragment(FragmentHeader),
}

impl ExtensionHeader {
    /// The [`NextHeader`] value that introduces this header.
    pub fn kind(&self) -> NextHeader {
        match self {
            ExtensionHeader::HopByHop(_) => NextHeader::HopByHop,
            ExtensionHeader::DestinationOptions(_) => NextHeader::DestinationOptions,
            ExtensionHeader::Routing(_) => NextHeader::Routing,
            ExtensionHeader::Fragment(_) => NextHeader::Fragment,
        }
    }

    /// Wire length of this header including padding.
    pub fn wire_len(&self) -> usize {
        match self {
            ExtensionHeader::HopByHop(o) | ExtensionHeader::DestinationOptions(o) => o.wire_len(),
            ExtensionHeader::Routing(r) => r.wire_len(),
            ExtensionHeader::Fragment(_) => FragmentHeader::LEN,
        }
    }

    /// Encodes this header, writing `next` as its next-header field.
    pub(crate) fn encode(&self, next: u8, out: &mut Vec<u8>) {
        match self {
            ExtensionHeader::HopByHop(o) | ExtensionHeader::DestinationOptions(o) => {
                o.encode(next, out)
            }
            ExtensionHeader::Routing(r) => r.encode(next, out),
            ExtensionHeader::Fragment(fh) => fh.encode(next, out),
        }
    }
}

/// Walks an extension-header chain starting with header type `first`.
///
/// Returns the parsed chain, the next-header value of the upper-layer
/// protocol, and the byte offset at which the upper-layer payload starts.
///
/// # Errors
///
/// Propagates truncation and malformed-length errors from the individual
/// header codecs.
pub fn parse_chain(
    first: NextHeader,
    bytes: &[u8],
) -> Result<(Vec<ExtensionHeader>, NextHeader, usize), ParseError> {
    let mut chain = Vec::new();
    let mut kind = first;
    let mut offset = 0usize;
    while kind.is_extension() {
        let rest = &bytes[offset..];
        let (hdr, next, len) = match kind {
            NextHeader::HopByHop => {
                let (o, n, l) = OptionsHeader::decode(rest)?;
                (ExtensionHeader::HopByHop(o), n, l)
            }
            NextHeader::DestinationOptions => {
                let (o, n, l) = OptionsHeader::decode(rest)?;
                (ExtensionHeader::DestinationOptions(o), n, l)
            }
            NextHeader::Routing => {
                let (r, n, l) = RoutingHeader::decode(rest)?;
                (ExtensionHeader::Routing(r), n, l)
            }
            NextHeader::Fragment => {
                let (fh, n, l) = FragmentHeader::decode(rest)?;
                (ExtensionHeader::Fragment(fh), n, l)
            }
            _ => unreachable!("is_extension() guards the match"),
        };
        chain.push(hdr);
        kind = NextHeader::from(next);
        offset += len;
    }
    Ok((chain, kind, offset))
}

/// Encodes a chain of extension headers followed by upper-layer protocol
/// `last`, returning the bytes and the next-header value to put in the fixed
/// IPv6 header.
pub fn encode_chain(chain: &[ExtensionHeader], last: NextHeader) -> (Vec<u8>, NextHeader) {
    if chain.is_empty() {
        return (Vec::new(), last);
    }
    let mut out = Vec::new();
    for (i, hdr) in chain.iter().enumerate() {
        let next: u8 = if i + 1 < chain.len() { chain[i + 1].kind().into() } else { last.into() };
        hdr.encode(next, &mut out);
    }
    (out, chain[0].kind())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_options_header_is_8_bytes() {
        let o = OptionsHeader::new();
        assert_eq!(o.wire_len(), 8);
        let mut buf = Vec::new();
        o.encode(17, &mut buf);
        assert_eq!(buf.len(), 8);
        assert_eq!(buf[0], 17);
        assert_eq!(buf[1], 0);
    }

    #[test]
    fn options_round_trip_with_padding() {
        for n in 0..20 {
            let o = OptionsHeader { options: (0..n).map(|i| i as u8 | 0x80).collect() };
            let mut buf = Vec::new();
            o.encode(58, &mut buf);
            assert_eq!(buf.len() % 8, 0);
            let (dec, next, len) = OptionsHeader::decode(&buf).unwrap();
            assert_eq!(next, 58);
            assert_eq!(len, buf.len());
            // Decoded options include padding bytes; the prefix must match.
            assert_eq!(&dec.options[..o.options.len()], &o.options[..]);
        }
    }

    #[test]
    fn routing_header_round_trip() {
        let r = RoutingHeader {
            routing_type: 0,
            segments_left: 2,
            addresses: vec![[1u8; 16], [2u8; 16]],
        };
        let mut buf = Vec::new();
        r.encode(6, &mut buf);
        assert_eq!(buf.len(), r.wire_len());
        let (dec, next, len) = RoutingHeader::decode(&buf).unwrap();
        assert_eq!((dec, next, len), (r, 6, 40));
    }

    #[test]
    fn fragment_header_round_trip() {
        let fh = FragmentHeader { offset: 185, more: true, id: 0xdead_beef };
        let mut buf = Vec::new();
        fh.encode(17, &mut buf);
        let (dec, next, len) = FragmentHeader::decode(&buf).unwrap();
        assert_eq!((dec, next, len), (fh, 17, 8));
    }

    #[test]
    fn chain_round_trip() {
        let chain = vec![
            ExtensionHeader::HopByHop(OptionsHeader::new()),
            ExtensionHeader::Routing(RoutingHeader {
                routing_type: 0,
                segments_left: 1,
                addresses: vec![[9u8; 16]],
            }),
            ExtensionHeader::Fragment(FragmentHeader { offset: 0, more: false, id: 7 }),
        ];
        let (bytes, first) = encode_chain(&chain, NextHeader::Udp);
        assert_eq!(first, NextHeader::HopByHop);
        let (parsed, upper, consumed) = parse_chain(first, &bytes).unwrap();
        assert_eq!(parsed, chain);
        assert_eq!(upper, NextHeader::Udp);
        assert_eq!(consumed, bytes.len());
    }

    #[test]
    fn empty_chain() {
        let (bytes, first) = encode_chain(&[], NextHeader::Icmpv6);
        assert!(bytes.is_empty());
        assert_eq!(first, NextHeader::Icmpv6);
        let (parsed, upper, consumed) = parse_chain(first, &[]).unwrap();
        assert!(parsed.is_empty());
        assert_eq!(upper, NextHeader::Icmpv6);
        assert_eq!(consumed, 0);
    }

    #[test]
    fn truncated_chain_errors() {
        let chain = vec![ExtensionHeader::HopByHop(OptionsHeader::new())];
        let (bytes, first) = encode_chain(&chain, NextHeader::Udp);
        let err = parse_chain(first, &bytes[..4]).unwrap_err();
        assert!(matches!(err, ParseError::Truncated { .. }));
    }

    #[test]
    fn odd_routing_length_rejected() {
        let mut buf = vec![17u8, 1, 0, 0, 0, 0, 0, 0];
        buf.extend_from_slice(&[0u8; 8]);
        assert!(matches!(
            RoutingHeader::decode(&buf),
            Err(ParseError::BadField { field: "routing hdr ext len", .. })
        ));
    }
}
