//! The fixed 40-byte IPv6 header (RFC 2460 §3).

use std::fmt;

use crate::addr::Ipv6Address;
use crate::error::ParseError;

/// Protocol numbers usable in the IPv6 *next header* field.
///
/// Only the values the router actually encounters are named; anything else is
/// carried verbatim through [`NextHeader::Other`], because a router must
/// forward payloads it does not understand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NextHeader {
    /// Hop-by-hop options header (0) — must be examined by every router.
    HopByHop,
    /// TCP (6).
    Tcp,
    /// UDP (17) — carries RIPng.
    Udp,
    /// Routing extension header (43).
    Routing,
    /// Fragment extension header (44).
    Fragment,
    /// ICMPv6 (58).
    Icmpv6,
    /// No next header (59) — the chain ends with no payload.
    NoNextHeader,
    /// Destination options extension header (60).
    DestinationOptions,
    /// Any other protocol number.
    Other(u8),
}

impl NextHeader {
    /// UDP, spelled the way the builder API reads best.
    pub const UDP: NextHeader = NextHeader::Udp;
    /// ICMPv6, spelled the way the builder API reads best.
    pub const ICMPV6: NextHeader = NextHeader::Icmpv6;

    /// Returns `true` for values that introduce an extension header that the
    /// router must walk past to find the upper-layer protocol.
    pub fn is_extension(&self) -> bool {
        matches!(
            self,
            NextHeader::HopByHop
                | NextHeader::Routing
                | NextHeader::Fragment
                | NextHeader::DestinationOptions
        )
    }
}

impl From<u8> for NextHeader {
    fn from(v: u8) -> Self {
        match v {
            0 => NextHeader::HopByHop,
            6 => NextHeader::Tcp,
            17 => NextHeader::Udp,
            43 => NextHeader::Routing,
            44 => NextHeader::Fragment,
            58 => NextHeader::Icmpv6,
            59 => NextHeader::NoNextHeader,
            60 => NextHeader::DestinationOptions,
            other => NextHeader::Other(other),
        }
    }
}

impl From<NextHeader> for u8 {
    fn from(h: NextHeader) -> Self {
        match h {
            NextHeader::HopByHop => 0,
            NextHeader::Tcp => 6,
            NextHeader::Udp => 17,
            NextHeader::Routing => 43,
            NextHeader::Fragment => 44,
            NextHeader::Icmpv6 => 58,
            NextHeader::NoNextHeader => 59,
            NextHeader::DestinationOptions => 60,
            NextHeader::Other(v) => v,
        }
    }
}

impl fmt::Display for NextHeader {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NextHeader::HopByHop => write!(f, "hop-by-hop"),
            NextHeader::Tcp => write!(f, "tcp"),
            NextHeader::Udp => write!(f, "udp"),
            NextHeader::Routing => write!(f, "routing"),
            NextHeader::Fragment => write!(f, "fragment"),
            NextHeader::Icmpv6 => write!(f, "icmpv6"),
            NextHeader::NoNextHeader => write!(f, "no-next-header"),
            NextHeader::DestinationOptions => write!(f, "destination-options"),
            NextHeader::Other(v) => write!(f, "proto-{v}"),
        }
    }
}

/// The fixed IPv6 header.
///
/// All fields are public: this is a plain data structure mirroring the wire
/// format, and the router microcode manipulates the fields individually.
///
/// # Examples
///
/// ```
/// use taco_ipv6::{Ipv6Header, NextHeader};
///
/// # fn main() -> Result<(), taco_ipv6::ParseError> {
/// let hdr = Ipv6Header {
///     traffic_class: 0,
///     flow_label: 0,
///     payload_len: 8,
///     next_header: NextHeader::Udp,
///     hop_limit: 64,
///     src: "2001:db8::1".parse()?,
///     dst: "2001:db8::2".parse()?,
/// };
/// let bytes = hdr.to_bytes();
/// assert_eq!(bytes.len(), Ipv6Header::LEN);
/// assert_eq!(Ipv6Header::parse(&bytes)?, hdr);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Ipv6Header {
    /// 8-bit traffic class (DSCP + ECN).
    pub traffic_class: u8,
    /// 20-bit flow label; the upper 12 bits must be zero.
    pub flow_label: u32,
    /// Length of everything following this header, in bytes.
    pub payload_len: u16,
    /// Protocol of the immediately following header.
    pub next_header: NextHeader,
    /// Hop limit, decremented by each router.
    pub hop_limit: u8,
    /// Source address.
    pub src: Ipv6Address,
    /// Destination address.
    pub dst: Ipv6Address,
}

impl Ipv6Header {
    /// Wire length of the fixed header: 40 bytes.
    pub const LEN: usize = 40;

    /// Parses the fixed header from the front of `bytes`.
    ///
    /// # Errors
    ///
    /// * [`ParseError::Truncated`] if fewer than 40 bytes are available;
    /// * [`ParseError::BadVersion`] if the version nibble is not 6.
    pub fn parse(bytes: &[u8]) -> Result<Self, ParseError> {
        if bytes.len() < Self::LEN {
            return Err(ParseError::Truncated {
                what: "ipv6 header",
                needed: Self::LEN,
                got: bytes.len(),
            });
        }
        let version = bytes[0] >> 4;
        if version != 6 {
            return Err(ParseError::BadVersion(version));
        }
        let traffic_class = (bytes[0] << 4) | (bytes[1] >> 4);
        let flow_label =
            (u32::from(bytes[1] & 0x0f) << 16) | (u32::from(bytes[2]) << 8) | u32::from(bytes[3]);
        let payload_len = u16::from_be_bytes([bytes[4], bytes[5]]);
        let next_header = NextHeader::from(bytes[6]);
        let hop_limit = bytes[7];
        let mut src = [0u8; 16];
        src.copy_from_slice(&bytes[8..24]);
        let mut dst = [0u8; 16];
        dst.copy_from_slice(&bytes[24..40]);
        Ok(Ipv6Header {
            traffic_class,
            flow_label,
            payload_len,
            next_header,
            hop_limit,
            src: src.into(),
            dst: dst.into(),
        })
    }

    /// Serializes the header to its 40-byte wire form.
    ///
    /// # Panics
    ///
    /// Panics if `flow_label` does not fit in 20 bits; construct headers with
    /// in-range values (parsers always do).
    pub fn to_bytes(&self) -> [u8; Self::LEN] {
        assert!(self.flow_label < (1 << 20), "flow label must fit in 20 bits");
        let mut b = [0u8; Self::LEN];
        b[0] = 0x60 | (self.traffic_class >> 4);
        b[1] = (self.traffic_class << 4) | ((self.flow_label >> 16) as u8 & 0x0f);
        b[2] = (self.flow_label >> 8) as u8;
        b[3] = self.flow_label as u8;
        b[4..6].copy_from_slice(&self.payload_len.to_be_bytes());
        b[6] = self.next_header.into();
        b[7] = self.hop_limit;
        b[8..24].copy_from_slice(&self.src.octets());
        b[24..40].copy_from_slice(&self.dst.octets());
        b
    }

    /// The first 32-bit word of the header (version / class / flow label),
    /// as the TACO Matcher sees it when validating the version field.
    pub fn first_word(&self) -> u32 {
        let b = self.to_bytes();
        u32::from_be_bytes([b[0], b[1], b[2], b[3]])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Ipv6Header {
        Ipv6Header {
            traffic_class: 0xa5,
            flow_label: 0xf_3c2d,
            payload_len: 1234,
            next_header: NextHeader::Udp,
            hop_limit: 63,
            src: "2001:db8::1".parse().unwrap(),
            dst: "2001:db8::2".parse().unwrap(),
        }
    }

    #[test]
    fn round_trip() {
        let h = sample();
        assert_eq!(Ipv6Header::parse(&h.to_bytes()).unwrap(), h);
    }

    #[test]
    fn version_nibble_is_six() {
        let b = sample().to_bytes();
        assert_eq!(b[0] >> 4, 6);
    }

    #[test]
    fn rejects_truncated() {
        let b = sample().to_bytes();
        let err = Ipv6Header::parse(&b[..39]).unwrap_err();
        assert!(matches!(err, ParseError::Truncated { needed: 40, got: 39, .. }));
    }

    #[test]
    fn rejects_ipv4() {
        let mut b = sample().to_bytes();
        b[0] = 0x45;
        assert_eq!(Ipv6Header::parse(&b).unwrap_err(), ParseError::BadVersion(4));
    }

    #[test]
    fn field_bit_packing() {
        // traffic class straddles bytes 0 and 1; flow label takes 20 bits.
        let h = sample();
        let b = h.to_bytes();
        assert_eq!((b[0] << 4) | (b[1] >> 4), 0xa5);
        let fl = (u32::from(b[1] & 0x0f) << 16) | (u32::from(b[2]) << 8) | u32::from(b[3]);
        assert_eq!(fl, 0xf_3c2d);
    }

    #[test]
    fn next_header_round_trip_all_values() {
        for v in 0..=255u8 {
            let nh = NextHeader::from(v);
            assert_eq!(u8::from(nh), v);
        }
    }

    #[test]
    fn extension_classification() {
        assert!(NextHeader::HopByHop.is_extension());
        assert!(NextHeader::Routing.is_extension());
        assert!(NextHeader::Fragment.is_extension());
        assert!(NextHeader::DestinationOptions.is_extension());
        assert!(!NextHeader::Udp.is_extension());
        assert!(!NextHeader::Icmpv6.is_extension());
        assert!(!NextHeader::NoNextHeader.is_extension());
    }

    #[test]
    #[should_panic(expected = "flow label")]
    fn oversized_flow_label_panics() {
        let mut h = sample();
        h.flow_label = 1 << 20;
        let _ = h.to_bytes();
    }
}
