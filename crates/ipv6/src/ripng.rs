//! RIPng message codec (RFC 2080).
//!
//! RIPng is the routing protocol the paper's router speaks: the processor
//! "builds up the Routing Table by listening for specific datagrams
//! broadcasted by the adjacent routers" and broadcasts its own table "at
//! regular intervals".  The protocol engine itself lives in the
//! `taco-routing` crate; this module is purely the wire format.

use std::fmt;

use crate::addr::Ipv6Address;
use crate::error::ParseError;
use crate::prefix::Ipv6Prefix;

/// UDP port on which RIPng listens and from which updates are sourced.
pub const PORT: u16 = 521;

/// The metric that means "unreachable" (RFC 2080 §2.1).
pub const INFINITY_METRIC: u8 = 16;

/// Marker metric identifying a next-hop RTE (RFC 2080 §2.1.1).
pub const NEXT_HOP_METRIC: u8 = 0xff;

/// RIPng command field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Command {
    /// A request for (part of) the responder's routing table.
    Request,
    /// A routing-table advertisement.
    Response,
}

impl TryFrom<u8> for Command {
    type Error = ParseError;

    fn try_from(v: u8) -> Result<Self, ParseError> {
        match v {
            1 => Ok(Command::Request),
            2 => Ok(Command::Response),
            other => Err(ParseError::BadField { field: "ripng command", value: other.into() }),
        }
    }
}

impl From<Command> for u8 {
    fn from(c: Command) -> Self {
        match c {
            Command::Request => 1,
            Command::Response => 2,
        }
    }
}

/// One route table entry (RTE): 20 bytes on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RouteEntry {
    /// Destination prefix.
    pub prefix: Ipv6Prefix,
    /// Route tag, carried unchanged across routers.
    pub route_tag: u16,
    /// Metric `1..=16`, or [`NEXT_HOP_METRIC`] for a next-hop RTE.
    pub metric: u8,
}

impl RouteEntry {
    /// Wire length of one RTE: 20 bytes.
    pub const LEN: usize = 20;

    /// Creates an ordinary route entry.
    ///
    /// # Panics
    ///
    /// Panics if `metric` is 0 or greater than [`INFINITY_METRIC`]; use
    /// [`RouteEntry::next_hop`] for next-hop RTEs.
    pub fn new(prefix: Ipv6Prefix, route_tag: u16, metric: u8) -> Self {
        assert!((1..=INFINITY_METRIC).contains(&metric), "metric {metric} out of range 1..=16");
        RouteEntry { prefix, route_tag, metric }
    }

    /// Creates a next-hop RTE naming `next_hop` as the forwarding address
    /// for the RTEs that follow it.
    pub fn next_hop(next_hop: Ipv6Address) -> Self {
        RouteEntry { prefix: Ipv6Prefix::host(next_hop), route_tag: 0, metric: NEXT_HOP_METRIC }
    }

    /// Returns `true` if this is a next-hop RTE.
    pub fn is_next_hop(&self) -> bool {
        self.metric == NEXT_HOP_METRIC
    }

    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.prefix.addr().octets());
        out.extend_from_slice(&self.route_tag.to_be_bytes());
        out.push(self.prefix.len());
        out.push(self.metric);
    }

    fn decode(bytes: &[u8]) -> Result<Self, ParseError> {
        if bytes.len() < Self::LEN {
            return Err(ParseError::Truncated {
                what: "ripng rte",
                needed: Self::LEN,
                got: bytes.len(),
            });
        }
        let mut addr = [0u8; 16];
        addr.copy_from_slice(&bytes[..16]);
        let route_tag = u16::from_be_bytes([bytes[16], bytes[17]]);
        let prefix_len = bytes[18];
        let metric = bytes[19];
        if metric != NEXT_HOP_METRIC && !(1..=INFINITY_METRIC).contains(&metric) {
            return Err(ParseError::BadField { field: "ripng metric", value: metric.into() });
        }
        Ok(RouteEntry { prefix: Ipv6Prefix::new(addr.into(), prefix_len)?, route_tag, metric })
    }
}

impl fmt::Display for RouteEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_next_hop() {
            write!(f, "next-hop {}", self.prefix.addr())
        } else {
            write!(f, "{} metric {} tag {}", self.prefix, self.metric, self.route_tag)
        }
    }
}

/// A complete RIPng packet.
///
/// # Examples
///
/// ```
/// use taco_ipv6::ripng::{Command, RipngPacket, RouteEntry};
///
/// # fn main() -> Result<(), taco_ipv6::ParseError> {
/// let pkt = RipngPacket {
///     command: Command::Response,
///     entries: vec![RouteEntry::new("2001:db8::/32".parse()?, 0, 2)],
/// };
/// let parsed = RipngPacket::parse(&pkt.to_bytes())?;
/// assert_eq!(parsed, pkt);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RipngPacket {
    /// Request or response.
    pub command: Command,
    /// Route table entries, in wire order (next-hop RTEs apply to the RTEs
    /// that follow them).
    pub entries: Vec<RouteEntry>,
}

impl RipngPacket {
    /// RIPng protocol version implemented here.
    pub const VERSION: u8 = 1;

    /// Builds the canonical "send me your whole table" request
    /// (RFC 2080 §2.4.1: one RTE with the zero prefix and infinity metric).
    pub fn whole_table_request() -> Self {
        RipngPacket {
            command: Command::Request,
            entries: vec![RouteEntry {
                prefix: Ipv6Prefix::DEFAULT_ROUTE,
                route_tag: 0,
                metric: INFINITY_METRIC,
            }],
        }
    }

    /// Returns `true` if this request asks for the entire table.
    pub fn is_whole_table_request(&self) -> bool {
        self.command == Command::Request
            && self.entries.len() == 1
            && self.entries[0].prefix == Ipv6Prefix::DEFAULT_ROUTE
            && self.entries[0].metric == INFINITY_METRIC
    }

    /// Serializes the packet (UDP payload only; no UDP header).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(4 + self.entries.len() * RouteEntry::LEN);
        out.push(self.command.into());
        out.push(Self::VERSION);
        out.extend_from_slice(&[0, 0]); // must-be-zero
        for e in &self.entries {
            e.encode(&mut out);
        }
        out
    }

    /// Parses a packet from a UDP payload.
    ///
    /// # Errors
    ///
    /// * [`ParseError::Truncated`] on short input or a trailing partial RTE;
    /// * [`ParseError::BadField`] for unknown commands, versions, or metrics.
    pub fn parse(bytes: &[u8]) -> Result<Self, ParseError> {
        if bytes.len() < 4 {
            return Err(ParseError::Truncated {
                what: "ripng header",
                needed: 4,
                got: bytes.len(),
            });
        }
        let command = Command::try_from(bytes[0])?;
        if bytes[1] != Self::VERSION {
            return Err(ParseError::BadField { field: "ripng version", value: bytes[1].into() });
        }
        let body = &bytes[4..];
        if body.len() % RouteEntry::LEN != 0 {
            return Err(ParseError::Truncated {
                what: "ripng rte",
                needed: body.len().div_ceil(RouteEntry::LEN) * RouteEntry::LEN,
                got: body.len(),
            });
        }
        let entries = body
            .chunks_exact(RouteEntry::LEN)
            .map(RouteEntry::decode)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(RipngPacket { command, entries })
    }

    /// The maximum number of RTEs that fit in one packet given an MTU of
    /// `mtu` bytes (RFC 2080 §2.1: IPv6 + UDP headers subtracted).
    pub fn max_entries_for_mtu(mtu: usize) -> usize {
        mtu.saturating_sub(40 + 8 + 4) / RouteEntry::LEN
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Ipv6Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn response_round_trip() {
        let pkt = RipngPacket {
            command: Command::Response,
            entries: vec![
                RouteEntry::new(p("2001:db8::/32"), 7, 1),
                RouteEntry::next_hop("fe80::1".parse().unwrap()),
                RouteEntry::new(p("2001:db8:1::/48"), 0, 16),
            ],
        };
        assert_eq!(RipngPacket::parse(&pkt.to_bytes()).unwrap(), pkt);
    }

    #[test]
    fn whole_table_request_shape() {
        let req = RipngPacket::whole_table_request();
        assert!(req.is_whole_table_request());
        let rt = RipngPacket::parse(&req.to_bytes()).unwrap();
        assert!(rt.is_whole_table_request());

        let not_req = RipngPacket { command: Command::Response, entries: req.entries.clone() };
        assert!(!not_req.is_whole_table_request());
    }

    #[test]
    fn wire_layout_matches_rfc() {
        let pkt = RipngPacket {
            command: Command::Response,
            entries: vec![RouteEntry::new(p("2001:db8::/32"), 0x0102, 3)],
        };
        let b = pkt.to_bytes();
        assert_eq!(b.len(), 24);
        assert_eq!(b[0], 2); // response
        assert_eq!(b[1], 1); // version
        assert_eq!(&b[2..4], &[0, 0]);
        assert_eq!(&b[4..6], &[0x20, 0x01]); // prefix starts at offset 4
        assert_eq!(&b[20..22], &[0x01, 0x02]); // route tag
        assert_eq!(b[22], 32); // prefix len
        assert_eq!(b[23], 3); // metric
    }

    #[test]
    fn bad_command_and_version_rejected() {
        let mut b = RipngPacket::whole_table_request().to_bytes();
        b[0] = 9;
        assert!(matches!(
            RipngPacket::parse(&b),
            Err(ParseError::BadField { field: "ripng command", .. })
        ));
        b[0] = 1;
        b[1] = 2;
        assert!(matches!(
            RipngPacket::parse(&b),
            Err(ParseError::BadField { field: "ripng version", .. })
        ));
    }

    #[test]
    fn partial_rte_rejected() {
        let mut b = RipngPacket::whole_table_request().to_bytes();
        b.pop();
        assert!(matches!(RipngPacket::parse(&b), Err(ParseError::Truncated { .. })));
    }

    #[test]
    fn zero_metric_rejected_on_wire() {
        let mut b = RipngPacket {
            command: Command::Response,
            entries: vec![RouteEntry::new(p("::/0"), 0, 1)],
        }
        .to_bytes();
        b[23] = 0;
        assert!(matches!(
            RipngPacket::parse(&b),
            Err(ParseError::BadField { field: "ripng metric", .. })
        ));
    }

    #[test]
    #[should_panic(expected = "metric")]
    fn constructor_rejects_bad_metric() {
        let _ = RouteEntry::new(p("::/0"), 0, 17);
    }

    #[test]
    fn mtu_capacity() {
        // Classic Ethernet: (1500 - 52) / 20 = 72 RTEs.
        assert_eq!(RipngPacket::max_entries_for_mtu(1500), 72);
        assert_eq!(RipngPacket::max_entries_for_mtu(52), 0);
        assert_eq!(RipngPacket::max_entries_for_mtu(0), 0);
    }

    #[test]
    fn next_hop_display() {
        let nh = RouteEntry::next_hop("fe80::1".parse().unwrap());
        assert!(nh.is_next_hop());
        assert_eq!(nh.to_string(), "next-hop fe80::1");
        let e = RouteEntry::new(p("2001:db8::/32"), 5, 2);
        assert_eq!(e.to_string(), "2001:db8::/32 metric 2 tag 5");
    }
}
