//! The cross-engine LPM differential oracle.
//!
//! Every routing-table organisation must give *identical* longest-prefix
//! match answers — hit/miss, egress interface, next hop — because they all
//! implement the same RFC 4632 semantics; only their cost models differ.
//! These tests pit all five engines ([`TableKind::ALL_KINDS`]) against each
//! other on seeded randomized tables up to BGP size (10k prefixes, with the
//! nesting and aliasing of a real feed), so a correctness bug in any engine
//! surfaces as a disagreement instead of silently skewing Table 1.

use taco_ipv6::Ipv6Address;
use taco_router::traffic::TrafficGen;
use taco_routing::{LpmTable, PortId, Route, TableKind};

/// The observable answer of one lookup, compared byte-for-byte.
fn answer(
    table: &dyn LpmTable,
    dst: &Ipv6Address,
) -> Option<(taco_ipv6::Ipv6Prefix, Ipv6Address, PortId)> {
    table.lookup(dst).into_route().map(|r| (r.prefix(), r.next_hop(), r.interface()))
}

/// Asserts all five organisations answer `probes` identically over
/// `routes`, returning the number of hits for sanity checks.
fn assert_all_kinds_agree(routes: &[Route], probes: &[Ipv6Address]) -> usize {
    let tables: Vec<(TableKind, Box<dyn LpmTable>)> =
        TableKind::ALL_KINDS.iter().map(|k| (*k, k.build(routes))).collect();
    let mut hits = 0usize;
    for dst in probes {
        let reference = answer(tables[0].1.as_ref(), dst);
        for (kind, table) in &tables[1..] {
            let got = answer(table.as_ref(), dst);
            assert_eq!(got, reference, "{kind} disagrees with {} on {dst}", tables[0].0);
        }
        hits += usize::from(reference.is_some());
    }
    hits
}

#[test]
fn five_engines_agree_on_a_bgp_table_at_10k_prefixes() {
    let mut g = TrafficGen::new(0xB6F_0001, 8);
    let routes = g.bgp_table(10_000, false);
    // Probe mix: mostly addresses inside some route (often several nested
    // candidates), the rest random global unicast that usually misses.
    let probes: Vec<Ipv6Address> = (0..2_000)
        .map(|i| {
            if i % 4 != 0 {
                let r = routes[(i * 2654435761) % routes.len()];
                g.addr_in(&r.prefix())
            } else {
                g.addr_in(&"2000::/3".parse().unwrap())
            }
        })
        .collect();
    let hits = assert_all_kinds_agree(&routes, &probes);
    assert!(hits >= 1_500, "probe mix should mostly hit: {hits}/2000");
    assert!(hits < 2_000, "probe mix should include misses: {hits}/2000");
}

#[test]
fn five_engines_agree_with_a_default_route_catching_the_misses() {
    let mut g = TrafficGen::new(0xB6F_0002, 8);
    let routes = g.bgp_table(10_000, true);
    let probes: Vec<Ipv6Address> =
        (0..1_000).map(|_| g.addr_in(&"2000::/3".parse().unwrap())).collect();
    let hits = assert_all_kinds_agree(&routes, &probes);
    assert_eq!(hits, 1_000, "the default route must catch everything");
}

#[test]
fn five_engines_agree_on_aliased_and_nested_prefixes() {
    // A hand-built worst case: a full nesting chain under one /16, two
    // sibling /48s differing only in their last prefix bit (aliases), a
    // host route, and a default — the shapes that break naive LPM.
    let route = |p: &str, iface: u16| -> Route {
        Route::new(p.parse().unwrap(), "fe80::1".parse().unwrap(), PortId(iface), 1)
    };
    let routes = vec![
        route("::/0", 1),
        route("2001::/16", 2),
        route("2001:db8::/32", 3),
        route("2001:db8:aa::/47", 4),
        route("2001:db8:aa::/48", 5),
        route("2001:db8:ab::/48", 6),
        route("2001:db8:aa:bb::/64", 7),
        route("2001:db8:aa:bb::77/128", 8),
        route("4000::/2", 9),
    ];
    let mut g = TrafficGen::new(0xB6F_0003, 8);
    let mut probes: Vec<Ipv6Address> = vec![
        "2001:db8:aa:bb::77".parse().unwrap(), // the host route
        "2001:db8:aa:bb::78".parse().unwrap(), // one off: the /64
        "2001:db8:aa::1".parse().unwrap(),     // /48 over /47
        "2001:db8:ab::1".parse().unwrap(),     // the alias sibling
        "2001:db8:ff::1".parse().unwrap(),     // only the /32
        "2001:ff::1".parse().unwrap(),         // only the /16
        "9999::1".parse().unwrap(),            // the default
        "5000::1".parse().unwrap(),            // the /2
    ];
    for r in &routes {
        for _ in 0..32 {
            probes.push(g.addr_in(&r.prefix()));
        }
    }
    let hits = assert_all_kinds_agree(&routes, &probes);
    assert_eq!(hits, probes.len(), "the default route catches everything");
}

#[test]
fn five_engines_agree_under_seeded_random_tables_of_many_sizes() {
    for (seed, n) in [(1u64, 10usize), (2, 100), (3, 1_000), (4, 4_000)] {
        let mut g = TrafficGen::new(seed, 8);
        let routes = g.bgp_table(n, seed % 2 == 0);
        let probes: Vec<Ipv6Address> = (0..400)
            .map(|i| {
                if i % 3 == 0 {
                    g.addr_in(&"2000::/3".parse().unwrap())
                } else {
                    let r = routes[(i * 40503) % routes.len()];
                    g.addr_in(&r.prefix())
                }
            })
            .collect();
        assert_all_kinds_agree(&routes, &probes);
    }
}

#[test]
fn probe_counts_scale_the_way_each_organisation_promises() {
    // Not just the answers: the *cost* signatures must keep their shapes
    // at internet size — constant CAM, log tree, bounded-depth tries,
    // linear scan — since Table 1's frequencies are probes x cycle cost.
    let mut g = TrafficGen::new(0xB6F_0004, 8);
    let routes = g.bgp_table(10_000, false);
    let probes: Vec<Ipv6Address> = (0..200).map(|i| g.addr_in(&routes[i * 50].prefix())).collect();
    let max_steps = |kind: TableKind| -> u32 {
        let table = kind.build(&routes);
        probes.iter().map(|d| table.lookup(d).steps()).max().unwrap()
    };
    assert_eq!(max_steps(TableKind::Cam), 1);
    assert!(max_steps(TableKind::BalancedTree) <= 64);
    assert!(max_steps(TableKind::Trie) <= 129, "unibit depth is prefix length");
    assert!(max_steps(TableKind::Patricia) <= 65, "one probe per branching bit");
    assert!(max_steps(TableKind::Sequential) > 1_000, "linear scan at 10k");
}
