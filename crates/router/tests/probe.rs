use taco_ipv6::{Datagram, NextHeader};
use taco_isa::MachineConfig;
use taco_router::cycle::CycleRouter;
use taco_router::microcode::MicrocodeOptions;
use taco_routing::{BalancedTreeTable, CamTable, PortId, Route, SequentialTable};

fn routes(n: u16) -> Vec<Route> {
    (0..n)
        .map(|i| {
            Route::new(
                format!("2001:db8:{i:x}::/48").parse().unwrap(),
                "fe80::1".parse().unwrap(),
                PortId(i % 4),
                1,
            )
        })
        .collect()
}
fn dgram(dst: &str) -> Datagram {
    Datagram::builder("2001:db8:99::1".parse().unwrap(), dst.parse().unwrap())
        .hop_limit(64)
        .payload(NextHeader::Udp, vec![0u8; 24])
        .build()
}

#[test]
fn probe_cycles() {
    let opts = MicrocodeOptions::default();
    let configs = [
        ("1BUS/1FU", MachineConfig::one_bus_one_fu()),
        ("3BUS/1FU", MachineConfig::three_bus_one_fu()),
        ("3bus/3FU", MachineConfig::three_bus_three_fu()),
    ];
    let k = 8u64;
    for (name, cfg) in &configs {
        let t = SequentialTable::from_routes(routes(100));
        let mut r = CycleRouter::sequential(cfg, &t, &opts).unwrap();
        for _ in 0..k {
            r.enqueue(PortId(0), &dgram("2001:db8:63::7")).unwrap();
        }
        let ss = r.run(100_000_000).unwrap();
        let (seq_c, seq_util) = (ss.cycles / k, ss.bus_utilization() * 100.0);

        let tt = BalancedTreeTable::from_routes(routes(100));
        let mut r = CycleRouter::tree(cfg, &tt, &opts).unwrap();
        for _ in 0..k {
            r.enqueue(PortId(0), &dgram("2001:db8:63::7")).unwrap();
        }
        let st = r.run(100_000_000).unwrap();
        let (tree_c, tree_util) = (st.cycles / k, st.bus_utilization() * 100.0);

        let ct = CamTable::from_routes(routes(100));
        let mut r = CycleRouter::cam(cfg, ct, 2, &opts).unwrap();
        for _ in 0..k {
            r.enqueue(PortId(0), &dgram("2001:db8:63::7")).unwrap();
        }
        let sc = r.run(100_000_000).unwrap();
        let (cam_c, cam_util) = (sc.cycles / k, sc.bus_utilization() * 100.0);
        println!("{name}: seq={seq_c} (util {seq_util:.0}%) tree={tree_c} (util {tree_util:.0}%) cam={cam_c} (util {cam_util:.0}%)");
    }
}
