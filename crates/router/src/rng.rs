//! Minimal deterministic pseudo-random number generation.
//!
//! The workload generator needs reproducible randomness, not cryptographic
//! or statistical sophistication — and it must build with **no external
//! dependencies**, because the repository's tier-1 verification runs in an
//! offline environment where registry crates cannot be resolved.  This
//! module is the in-tree replacement for the `rand` crate: a SplitMix64
//! generator (Steele, Lea & Flood, "Fast splittable pseudorandom number
//! generators", OOPSLA 2014) with the handful of derived samplers the
//! traffic generator uses.
//!
//! SplitMix64 is a good fit here: one `u64` of state, equidistributed
//! output for every seed (including 0), and a trivially auditable
//! xorshift-multiply finalizer.

/// A SplitMix64 pseudo-random number generator.
///
/// Identical seeds produce identical streams on every platform — the
/// property every test and benchmark in this repository relies on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator seeded with `seed` (any value, including 0).
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// The next 32 uniformly distributed bits (the high half of a step).
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `buf` with uniformly distributed bytes.
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        for chunk in buf.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }

    /// A uniform value in `0..n` (Lemire's unbiased multiply-shift method).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "empty range");
        let mut x = self.next_u64();
        let mut m = u128::from(x) * u128::from(n);
        let mut low = m as u64;
        if low < n {
            let threshold = n.wrapping_neg() % n;
            while low < threshold {
                x = self.next_u64();
                m = u128::from(x) * u128::from(n);
                low = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// A uniform value in `lo..=hi`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "inverted range");
        match hi - lo {
            u64::MAX => self.next_u64(),
            span => lo + self.below(span + 1),
        }
    }

    /// A uniform float in `[0, 1)` (53 mantissa bits).
    pub fn next_f64(&mut self) -> f64 {
        const SCALE: f64 = 1.0 / (1u64 << 53) as f64;
        (self.next_u64() >> 11) as f64 * SCALE
    }

    /// `true` with probability `p` (clamped to `0.0..=1.0`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p.clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_reference_vectors() {
        // Reference output of splitmix64 for seed 1234567, per the public
        // domain implementation by Sebastiano Vigna.
        let mut rng = SplitMix64::new(1234567);
        assert_eq!(rng.next_u64(), 6457827717110365317);
        assert_eq!(rng.next_u64(), 3203168211198807973);
        assert_eq!(rng.next_u64(), 9817491932198370423);
    }

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut r = SplitMix64::new(42);
            (0..16).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = SplitMix64::new(42);
            (0..16).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let c: Vec<u64> = {
            let mut r = SplitMix64::new(43);
            (0..16).map(|_| r.next_u64()).collect()
        };
        assert_ne!(a, c);
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut rng = SplitMix64::new(7);
        let mut seen = [false; 5];
        for _ in 0..200 {
            let v = rng.below(5);
            assert!(v < 5);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues reachable: {seen:?}");
    }

    #[test]
    fn range_inclusive_hits_both_ends() {
        let mut rng = SplitMix64::new(11);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..300 {
            let v = rng.range_inclusive(4, 16);
            assert!((4..=16).contains(&v));
            lo_seen |= v == 4;
            hi_seen |= v == 16;
        }
        assert!(lo_seen && hi_seen);
    }

    #[test]
    fn full_range_does_not_overflow() {
        let mut rng = SplitMix64::new(3);
        let _ = rng.range_inclusive(0, u64::MAX);
    }

    #[test]
    fn unit_floats_and_chance_extremes() {
        let mut rng = SplitMix64::new(9);
        for _ in 0..100 {
            let f = rng.next_f64();
            assert!((0.0..1.0).contains(&f), "{f}");
            assert!(!rng.chance(0.0));
            assert!(rng.chance(1.0));
        }
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = SplitMix64::new(5);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
        let mut again = [0u8; 13];
        SplitMix64::new(5).fill_bytes(&mut again);
        assert_eq!(buf, again);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn below_zero_rejected() {
        SplitMix64::new(1).below(0);
    }
}
