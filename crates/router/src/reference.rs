//! The behavioural reference router.
//!
//! A plain-Rust implementation of exactly the forwarding semantics the
//! microcode implements, over any [`LpmTable`].  It serves two purposes:
//!
//! * the oracle for cross-checking the cycle-accurate router (property
//!   tests feed both the same traffic and compare outputs);
//! * the router's *slow path*: ICMPv6 error generation and local delivery
//!   (RIPng), which the paper's fast path hands off.

use taco_ipv6::icmpv6::{truncate_invoking, Icmpv6Message, UnreachableCode};
use taco_ipv6::{Datagram, Ipv6Address, NextHeader, ParseError};
use taco_routing::{LpmTable, PortId};

/// Why a datagram was not forwarded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropReason {
    /// The bytes did not parse as IPv6.
    Malformed,
    /// Hop limit would not survive the decrement.
    HopLimitExceeded,
    /// No route covers the destination.
    NoRoute,
    /// Multicast destination the router does not serve.
    UnservedMulticast,
}

/// The outcome of processing one received datagram.
#[derive(Debug, Clone, PartialEq)]
pub enum ForwardDecision {
    /// Send `datagram` (hop limit already decremented) out of `out_port`.
    Forward {
        /// The chosen output interface.
        out_port: PortId,
        /// The rewritten datagram.
        datagram: Datagram,
    },
    /// The datagram is addressed to the router itself (or to a multicast
    /// group it listens to) — hand it to the control plane.
    Deliver {
        /// The delivered datagram.
        datagram: Datagram,
    },
    /// Discard, optionally bouncing an ICMPv6 error to the source.
    Drop {
        /// The classified reason.
        reason: DropReason,
        /// An error to transmit back through the input port, if the RFC
        /// calls for one.
        icmp: Option<Datagram>,
    },
}

/// Per-router forwarding counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ForwardingStats {
    /// Datagrams forwarded.
    pub forwarded: u64,
    /// Datagrams delivered locally.
    pub delivered: u64,
    /// Datagrams dropped, any reason.
    pub dropped: u64,
    /// Of [`ForwardingStats::dropped`], parse failures (RFC 2460: drop,
    /// no ICMP error).
    pub dropped_malformed: u64,
    /// Of [`ForwardingStats::dropped`], hop-limit expirations.
    pub dropped_hop_limit: u64,
    /// Of [`ForwardingStats::dropped`], LPM misses.
    pub dropped_no_route: u64,
    /// Of [`ForwardingStats::dropped`], unserved multicast.
    pub dropped_multicast: u64,
    /// ICMPv6 errors generated.
    pub icmp_errors: u64,
}

/// The behavioural router core.
///
/// # Examples
///
/// ```
/// use taco_router::reference::{ForwardDecision, ReferenceRouter};
/// use taco_routing::{LpmTable, PortId, Route, SequentialTable};
/// use taco_ipv6::{Datagram, NextHeader};
///
/// # fn main() -> Result<(), taco_ipv6::ParseError> {
/// let table = SequentialTable::from_routes([Route::new(
///     "2001:db8::/32".parse()?, "fe80::1".parse()?, PortId(2), 1,
/// )]);
/// let mut router = ReferenceRouter::new(table, vec!["fe80::99".parse()?]);
/// let d = Datagram::builder("2001:db8:1::1".parse()?, "2001:db8:2::2".parse()?)
///     .hop_limit(64)
///     .payload(NextHeader::Udp, vec![0u8; 8])
///     .build();
/// match router.process(PortId(0), &d.to_bytes()) {
///     ForwardDecision::Forward { out_port, datagram } => {
///         assert_eq!(out_port, PortId(2));
///         assert_eq!(datagram.header().hop_limit, 63);
///     }
///     other => panic!("expected forward, got {other:?}"),
/// }
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ReferenceRouter<T: LpmTable> {
    table: T,
    local_addrs: Vec<Ipv6Address>,
    stats: ForwardingStats,
}

impl<T: LpmTable> ReferenceRouter<T> {
    /// Creates a router forwarding with `table`; datagrams addressed to any
    /// of `local_addrs` (or to the all-RIPng-routers group) are delivered
    /// locally.
    pub fn new(table: T, local_addrs: Vec<Ipv6Address>) -> Self {
        ReferenceRouter { table, local_addrs, stats: ForwardingStats::default() }
    }

    /// The forwarding table (for RIPng to update).
    pub fn table(&self) -> &T {
        &self.table
    }

    /// Mutable access to the forwarding table.
    pub fn table_mut(&mut self) -> &mut T {
        &mut self.table
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> ForwardingStats {
        self.stats
    }

    /// One of the router's own addresses, used as the source of generated
    /// ICMPv6 errors (falls back to the unspecified address when the router
    /// has none, in which case no errors are generated).
    fn own_addr(&self) -> Ipv6Address {
        self.local_addrs.first().copied().unwrap_or(Ipv6Address::UNSPECIFIED)
    }

    /// Processes one received datagram (raw bytes, as the line card
    /// delivers them).
    pub fn process(&mut self, _in_port: PortId, bytes: &[u8]) -> ForwardDecision {
        let datagram = match Datagram::parse(bytes) {
            Ok(d) => d,
            Err(_e @ ParseError::BadVersion(_)) | Err(_e) => {
                self.stats.dropped += 1;
                self.stats.dropped_malformed += 1;
                return ForwardDecision::Drop { reason: DropReason::Malformed, icmp: None };
            }
        };
        let dst = datagram.header().dst;

        // Local delivery (control traffic, including RIPng's ff02::9).
        if self.local_addrs.contains(&dst) || dst == Ipv6Address::ALL_RIPNG_ROUTERS {
            self.stats.delivered += 1;
            return ForwardDecision::Deliver { datagram };
        }
        if dst.is_multicast() {
            self.stats.dropped += 1;
            self.stats.dropped_multicast += 1;
            return ForwardDecision::Drop { reason: DropReason::UnservedMulticast, icmp: None };
        }

        // Hop limit must survive the decrement.
        if datagram.header().hop_limit < 2 {
            self.stats.dropped += 1;
            self.stats.dropped_hop_limit += 1;
            let icmp = self.icmp_error(
                &datagram,
                Icmpv6Message::TimeExceeded { invoking: truncate_invoking(bytes) },
            );
            return ForwardDecision::Drop { reason: DropReason::HopLimitExceeded, icmp };
        }

        // Longest-prefix match.
        match self.table.lookup(&dst).into_route() {
            Some(route) => {
                let mut out = datagram;
                out.decrement_hop_limit();
                self.stats.forwarded += 1;
                ForwardDecision::Forward { out_port: route.interface(), datagram: out }
            }
            None => {
                self.stats.dropped += 1;
                self.stats.dropped_no_route += 1;
                let icmp = self.icmp_error(
                    &datagram,
                    Icmpv6Message::DestinationUnreachable {
                        code: UnreachableCode::NoRoute,
                        invoking: truncate_invoking(bytes),
                    },
                );
                ForwardDecision::Drop { reason: DropReason::NoRoute, icmp }
            }
        }
    }

    fn icmp_error(&mut self, invoking: &Datagram, message: Icmpv6Message) -> Option<Datagram> {
        let src = self.own_addr();
        if src.is_unspecified() {
            return None;
        }
        // RFC 2463 §2.4: never answer a multicast/unspecified source.
        let to = invoking.header().src;
        if to.is_multicast() || to.is_unspecified() {
            return None;
        }
        self.stats.icmp_errors += 1;
        let payload = message.to_bytes(&src, &to);
        Some(Datagram::builder(src, to).hop_limit(64).payload(NextHeader::Icmpv6, payload).build())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taco_routing::{Route, SequentialTable};

    fn table() -> SequentialTable {
        SequentialTable::from_routes([
            Route::new("2001:db8::/32".parse().unwrap(), "fe80::1".parse().unwrap(), PortId(1), 1),
            Route::new("::/0".parse().unwrap(), "fe80::2".parse().unwrap(), PortId(2), 1),
        ])
    }

    fn router() -> ReferenceRouter<SequentialTable> {
        ReferenceRouter::new(table(), vec!["2001:db8::ffff".parse().unwrap()])
    }

    fn dgram(dst: &str, hl: u8) -> Datagram {
        Datagram::builder("2001:db8:9::1".parse().unwrap(), dst.parse().unwrap())
            .hop_limit(hl)
            .payload(NextHeader::Udp, vec![1, 2, 3])
            .build()
    }

    #[test]
    fn forwards_with_decrement() {
        let mut r = router();
        match r.process(PortId(0), &dgram("2001:db8:5::1", 10).to_bytes()) {
            ForwardDecision::Forward { out_port, datagram } => {
                assert_eq!(out_port, PortId(1));
                assert_eq!(datagram.header().hop_limit, 9);
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(r.stats().forwarded, 1);
    }

    #[test]
    fn default_route_catches_everything() {
        let mut r = router();
        match r.process(PortId(0), &dgram("abcd::1", 10).to_bytes()) {
            ForwardDecision::Forward { out_port, .. } => assert_eq!(out_port, PortId(2)),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn no_route_generates_icmp() {
        let table = SequentialTable::from_routes([Route::new(
            "2001:db8::/32".parse().unwrap(),
            "fe80::1".parse().unwrap(),
            PortId(1),
            1,
        )]);
        let mut r = ReferenceRouter::new(table, vec!["2001:db8::ffff".parse().unwrap()]);
        match r.process(PortId(0), &dgram("abcd::1", 10).to_bytes()) {
            ForwardDecision::Drop { reason: DropReason::NoRoute, icmp: Some(err) } => {
                assert_eq!(err.header().dst, "2001:db8:9::1".parse().unwrap());
                assert_eq!(err.upper_protocol(), NextHeader::Icmpv6);
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(r.stats().icmp_errors, 1);
    }

    #[test]
    fn hop_limit_one_bounces_time_exceeded() {
        let mut r = router();
        match r.process(PortId(0), &dgram("2001:db8:5::1", 1).to_bytes()) {
            ForwardDecision::Drop { reason: DropReason::HopLimitExceeded, icmp: Some(_) } => {}
            other => panic!("{other:?}"),
        }
        // Hop limit 0 likewise.
        assert!(matches!(
            r.process(PortId(0), &dgram("2001:db8:5::1", 0).to_bytes()),
            ForwardDecision::Drop { reason: DropReason::HopLimitExceeded, .. }
        ));
    }

    #[test]
    fn local_delivery_beats_hop_limit() {
        let mut r = router();
        // Addressed to the router itself with hop limit 1: delivered.
        match r.process(PortId(0), &dgram("2001:db8::ffff", 1).to_bytes()) {
            ForwardDecision::Deliver { .. } => {}
            other => panic!("{other:?}"),
        }
        // RIPng multicast is also local.
        assert!(matches!(
            r.process(PortId(0), &dgram("ff02::9", 255).to_bytes()),
            ForwardDecision::Deliver { .. }
        ));
    }

    #[test]
    fn other_multicast_dropped_quietly() {
        let mut r = router();
        assert!(matches!(
            r.process(PortId(0), &dgram("ff02::1", 10).to_bytes()),
            ForwardDecision::Drop { reason: DropReason::UnservedMulticast, icmp: None }
        ));
    }

    #[test]
    fn malformed_dropped_quietly() {
        let mut r = router();
        assert!(matches!(
            r.process(PortId(0), &[0x45, 0, 0, 0]),
            ForwardDecision::Drop { reason: DropReason::Malformed, icmp: None }
        ));
        assert_eq!(r.stats().dropped_malformed, 1);
    }

    #[test]
    fn drops_are_classified_per_reason() {
        let mut r = router();
        let _ = r.process(PortId(0), &[0xde, 0xad]); // malformed
        let _ = r.process(PortId(0), &dgram("2001:db8:5::1", 0).to_bytes()); // expires
        let _ = r.process(PortId(0), &dgram("ff02::1", 10).to_bytes()); // multicast
        let table = SequentialTable::new();
        let mut empty = ReferenceRouter::new(table, vec!["2001:db8::ffff".parse().unwrap()]);
        let _ = empty.process(PortId(0), &dgram("abcd::1", 10).to_bytes()); // no route
        let s = r.stats();
        assert_eq!((s.dropped_malformed, s.dropped_hop_limit, s.dropped_multicast), (1, 1, 1));
        assert_eq!(s.dropped, 3);
        let s = empty.stats();
        assert_eq!(s.dropped_no_route, 1);
        assert_eq!(s.dropped, 1);
    }

    #[test]
    fn no_icmp_to_multicast_source() {
        let mut r = router();
        let bad_src = Datagram::builder("ff02::5".parse().unwrap(), "dead::1".parse().unwrap())
            .hop_limit(1)
            .payload(NextHeader::Udp, vec![])
            .build();
        match r.process(PortId(0), &bad_src.to_bytes()) {
            ForwardDecision::Drop { icmp: None, .. } => {}
            other => panic!("{other:?}"),
        }
    }
}
