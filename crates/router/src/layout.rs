//! The router's data-memory map: where datagrams and routing tables live
//! and how they are packed into 32-bit words.
//!
//! "It scans the input ports of the line cards for pending datagrams, which
//! are transferred into the main memory of the processor … we choose to
//! transfer the entire datagram in the main memory."  This module defines
//! that transfer: datagrams are packed big-endian into words, the
//! sequential table is a flat array of `(mask₀,pfx₀,…)` entries ordered
//! longest-prefix-first with the word-0 pair leading for early-out scans,
//! and the balanced tree is a pointer-linked BST over address-space
//! segments.

use taco_ipv6::Datagram;
use taco_routing::{BalancedTreeTable, SequentialTable};

/// First word address of the routing table image.
pub const TABLE_BASE: u32 = 0x100;

/// First word address of the datagram buffer area.
pub const DGRAM_BASE: u32 = 0x2000;

/// Words reserved per buffered datagram (2 KiB — enough for any packet the
/// paper's line cards deliver on Ethernet).
pub const DGRAM_SLOT_WORDS: u32 = 512;

/// Words per sequential-table entry:
/// `[mask0, pfx0, mask1, pfx1, mask2, pfx2, mask3, pfx3, iface, handle, 0, 0]`.
///
/// Mask and prefix words are interleaved so the scan microcode can reject a
/// non-matching entry after reading only the first pair.
pub const SEQ_ENTRY_WORDS: u32 = 12;

/// Words per balanced-tree node:
/// `[key0, key1, key2, key3, left, right, iface, handle]`, where `left` and
/// `right` are absolute word addresses or [`NULL_PTR`].
pub const TREE_NODE_WORDS: u32 = 8;

/// Null child pointer in tree nodes.
pub const NULL_PTR: u32 = 0xffff_ffff;

/// Interface value meaning "no route" in table images and RTU results.
pub const MISS_IFACE: u32 = 0xffff_ffff;

/// Word offset of the destination address inside a buffered datagram
/// (bytes 24–39 of the IPv6 header).
pub const DST_ADDR_WORD: u32 = 6;

/// Word offset of the `payload len | next header | hop limit` word.
pub const HOP_LIMIT_WORD: u32 = 1;

/// Packs a datagram into big-endian 32-bit words (zero-padded tail).
///
/// # Examples
///
/// ```
/// use taco_ipv6::{Datagram, NextHeader};
/// use taco_router::layout::{datagram_to_words, DST_ADDR_WORD};
///
/// # fn main() -> Result<(), taco_ipv6::ParseError> {
/// let d = Datagram::builder("2001:db8::1".parse()?, "2001:db8::2".parse()?)
///     .payload(NextHeader::Udp, vec![1, 2, 3])
///     .build();
/// let words = datagram_to_words(&d);
/// assert_eq!(words[0] >> 28, 6); // version nibble
/// assert_eq!(words[DST_ADDR_WORD as usize], 0x2001_0db8);
/// # Ok(())
/// # }
/// ```
pub fn datagram_to_words(d: &Datagram) -> Vec<u32> {
    bytes_to_words(&d.to_bytes())
}

/// Packs raw wire bytes into big-endian 32-bit words (zero-padded tail) —
/// the same image [`datagram_to_words`] produces, without requiring the
/// bytes to parse (fault injection feeds malformed frames through here).
pub fn bytes_to_words(bytes: &[u8]) -> Vec<u32> {
    bytes
        .chunks(4)
        .map(|c| {
            let mut w = [0u8; 4];
            w[..c.len()].copy_from_slice(c);
            u32::from_be_bytes(w)
        })
        .collect()
}

/// Unpacks `byte_len` bytes from big-endian words back into raw bytes.
pub fn words_to_bytes(words: &[u32], byte_len: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(byte_len);
    for w in words {
        out.extend_from_slice(&w.to_be_bytes());
        if out.len() >= byte_len {
            break;
        }
    }
    out.truncate(byte_len);
    out
}

/// Word address of datagram slot `i`.
pub fn dgram_slot(i: u32) -> u32 {
    DGRAM_BASE + i * DGRAM_SLOT_WORDS
}

/// Serialises a sequential table into its memory image.
///
/// Entries appear in the table's scan order (longest prefix first); the
/// `handle` word of entry *k* is *k*, so tests can map a lookup result back
/// to the entry.
pub fn serialize_sequential(table: &SequentialTable) -> Vec<u32> {
    let mut out = Vec::with_capacity(table.entries().len() * SEQ_ENTRY_WORDS as usize);
    for (k, route) in table.entries().iter().enumerate() {
        let pfx = route.prefix().addr().to_words();
        let mask = route.prefix().mask_words();
        for i in 0..4 {
            out.push(mask[i]);
            out.push(pfx[i]);
        }
        out.push(u32::from(route.interface().0));
        out.push(k as u32);
        out.push(0);
        out.push(0);
    }
    out
}

/// Serialises a balanced-tree table into a pointer-linked balanced BST over
/// its segments, rooted at `TABLE_BASE`.
///
/// The microcode performs a predecessor search: descend left when the
/// destination is smaller than the node key, otherwise remember the node as
/// the best candidate and descend right; the candidate's `iface`/`handle`
/// answer the lookup ([`MISS_IFACE`] for segments not covered by any
/// route).
pub fn serialize_tree(table: &BalancedTreeTable) -> Vec<u32> {
    struct Seg {
        key: [u32; 4],
        iface: u32,
        handle: u32,
    }
    let mut segs: Vec<Seg> = table
        .segments()
        .enumerate()
        .map(|(k, (start, route))| Seg {
            key: start.to_words(),
            iface: route.map_or(MISS_IFACE, |r| u32::from(r.interface().0)),
            handle: k as u32,
        })
        .collect();
    if segs.is_empty() {
        // A freshly constructed empty table has no segments yet; the walk
        // still needs one terminating miss node covering the whole space.
        segs.push(Seg { key: [0; 4], iface: MISS_IFACE, handle: 0 });
    }

    // Build a balanced BST; node ids assigned in recursion order so the
    // root is node 0 (at TABLE_BASE).
    #[derive(Clone, Copy)]
    struct Node {
        seg: usize,
        left: u32,
        right: u32,
    }
    fn build(segs_lo: usize, segs_hi: usize, nodes: &mut Vec<Node>) -> u32 {
        if segs_lo >= segs_hi {
            return NULL_PTR;
        }
        let mid = segs_lo + (segs_hi - segs_lo) / 2;
        let id = nodes.len() as u32;
        nodes.push(Node { seg: mid, left: NULL_PTR, right: NULL_PTR });
        let left = build(segs_lo, mid, nodes);
        let right = build(mid + 1, segs_hi, nodes);
        nodes[id as usize].left = left;
        nodes[id as usize].right = right;
        id
    }
    let mut nodes = Vec::new();
    build(0, segs.len(), &mut nodes);

    let addr_of = |id: u32| -> u32 {
        if id == NULL_PTR {
            NULL_PTR
        } else {
            TABLE_BASE + id * TREE_NODE_WORDS
        }
    };
    let mut out = Vec::with_capacity(nodes.len() * TREE_NODE_WORDS as usize);
    for n in &nodes {
        let s = &segs[n.seg];
        out.extend_from_slice(&s.key);
        out.push(addr_of(n.left));
        out.push(addr_of(n.right));
        out.push(s.iface);
        out.push(s.handle);
    }
    out
}

/// Depth of the serialised balanced BST for `n` segments — the worst-case
/// node count a descent visits.
pub fn tree_depth(n_segments: usize) -> u32 {
    (usize::BITS - n_segments.leading_zeros()).max(1)
}

/// Words per unibit-trie node: `[left, right, iface, handle]`, where the
/// children are absolute word addresses or [`NULL_PTR`] and `iface` is
/// [`MISS_IFACE`] for pass-through nodes.
pub const TRIE_NODE_WORDS: u32 = 4;

/// Serialises a unibit trie into its memory image, rooted at
/// [`TABLE_BASE`].
///
/// The microcode walks one destination-address bit per node, remembering
/// the last node that carried a route (`iface != MISS_IFACE`); a null child
/// ends the walk.
pub fn serialize_trie(table: &taco_routing::TrieTable) -> Vec<u32> {
    let addr_of = |idx: Option<usize>| -> u32 {
        match idx {
            Some(i) => TABLE_BASE + i as u32 * TRIE_NODE_WORDS,
            None => NULL_PTR,
        }
    };
    let mut out = Vec::new();
    for (k, (left, right, route)) in table.flat_nodes().enumerate() {
        out.push(addr_of(left));
        out.push(addr_of(right));
        out.push(route.map_or(MISS_IFACE, |r| u32::from(r.interface().0)));
        out.push(k as u32);
    }
    out
}

/// Words per PATRICIA node:
/// `[left, right, iface, handle, branch_off, branch_mask, mask0, pfx0,
/// mask1, pfx1, mask2, pfx2, mask3, pfx3, 0, 0]`.
///
/// `branch_off` is the datagram-relative word offset holding the node's
/// branch bit (`DST_ADDR_WORD + len/32`) and `branch_mask` selects that
/// bit within the word (`0` for /128 nodes, which are always leaves).  The
/// interleaved mask/prefix pairs let the walk verify the *whole* node
/// prefix — path compression skips bits, so the descent path does not
/// imply them.
pub const PAT_NODE_WORDS: u32 = 16;

/// Serialises a PATRICIA table into its memory image, rooted at
/// [`TABLE_BASE`].
///
/// The microcode verifies each node's masked prefix against the
/// destination (mismatch ends the walk), remembers the last
/// route-carrying node (`iface != MISS_IFACE`), and descends by the bit
/// `branch_off`/`branch_mask` select; a null child ends the walk.
pub fn serialize_patricia(table: &taco_routing::PatriciaTable) -> Vec<u32> {
    let addr_of = |idx: Option<usize>| -> u32 {
        match idx {
            Some(i) => TABLE_BASE + i as u32 * PAT_NODE_WORDS,
            None => NULL_PTR,
        }
    };
    let mut out = Vec::new();
    for (k, (prefix, route, left, right)) in table.flat_nodes().enumerate() {
        out.push(addr_of(left));
        out.push(addr_of(right));
        out.push(route.map_or(MISS_IFACE, |r| u32::from(r.interface().0)));
        out.push(k as u32);
        let len = u32::from(prefix.len());
        if len >= 128 {
            out.push(DST_ADDR_WORD + 3);
            out.push(0); // never branches: /128 nodes are leaves
        } else {
            out.push(DST_ADDR_WORD + len / 32);
            out.push(1u32 << (31 - (len % 32)));
        }
        let mask = prefix.mask_words();
        let pfx = prefix.addr().to_words();
        for i in 0..4 {
            out.push(mask[i]);
            out.push(pfx[i]);
        }
        out.push(0);
        out.push(0);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use taco_ipv6::NextHeader;
    use taco_routing::{PortId, Route};

    fn r(p: &str, port: u16) -> Route {
        Route::new(p.parse().unwrap(), "fe80::1".parse().unwrap(), PortId(port), 1)
    }

    #[test]
    fn datagram_words_round_trip() {
        let d = Datagram::builder("2001:db8::1".parse().unwrap(), "2001:db8::2".parse().unwrap())
            .hop_limit(33)
            .payload(NextHeader::Udp, vec![9u8; 11])
            .build();
        let words = datagram_to_words(&d);
        let bytes = words_to_bytes(&words, d.wire_len());
        assert_eq!(Datagram::parse(&bytes).unwrap(), d);
    }

    #[test]
    fn header_fields_at_documented_offsets() {
        let d = Datagram::builder("2001:db8::1".parse().unwrap(), "aaaa:bbbb::cc".parse().unwrap())
            .hop_limit(64)
            .payload(NextHeader::Udp, vec![0u8; 8])
            .build();
        let words = datagram_to_words(&d);
        assert_eq!(words[HOP_LIMIT_WORD as usize] & 0xff, 64);
        assert_eq!(words[DST_ADDR_WORD as usize], 0xaaaa_bbbb);
        assert_eq!(words[DST_ADDR_WORD as usize + 3], 0x0000_00cc);
    }

    #[test]
    fn sequential_image_shape() {
        let t = SequentialTable::from_routes([r("2001:db8::/32", 3), r("::/0", 1)]);
        let img = serialize_sequential(&t);
        assert_eq!(img.len(), 2 * SEQ_ENTRY_WORDS as usize);
        // First entry is the /32 (longest first): mask0, pfx0 interleaved.
        assert_eq!(img[0], 0xffff_ffff);
        assert_eq!(img[1], 0x2001_0db8);
        assert_eq!(img[8], 3); // iface
        assert_eq!(img[9], 0); // handle
                               // Second entry: the default route (all-zero masks).
        assert_eq!(img[SEQ_ENTRY_WORDS as usize], 0);
        assert_eq!(img[SEQ_ENTRY_WORDS as usize + 8], 1);
    }

    #[test]
    fn tree_image_root_and_pointers() {
        let t = BalancedTreeTable::from_routes([r("8000::/1", 7)]);
        // Segments: [::, route None] and [8000::, route 7].
        let img = serialize_tree(&t);
        assert_eq!(img.len(), 2 * TREE_NODE_WORDS as usize);
        // Root is the middle segment (index 1 of 2 → 8000::).
        assert_eq!(img[0], 0x8000_0000);
        assert_eq!(img[6], 7);
        // Its left child is the :: segment with no route.
        let left_addr = img[4];
        assert_eq!(left_addr, TABLE_BASE + TREE_NODE_WORDS);
        let left = &img[TREE_NODE_WORDS as usize..];
        assert_eq!(left[0], 0);
        assert_eq!(left[6], MISS_IFACE);
        assert_eq!(img[5], NULL_PTR); // root has no right child
    }

    #[test]
    fn tree_depth_bounds() {
        assert_eq!(tree_depth(1), 1);
        assert_eq!(tree_depth(2), 2);
        assert_eq!(tree_depth(201), 8);
        assert_eq!(tree_depth(3), 2);
    }

    #[test]
    fn patricia_image_compresses_paths_and_flags_branch_bits() {
        let t = taco_routing::PatriciaTable::from_routes([r("2001:db8::/32", 3), r("::/0", 1)]);
        let img = serialize_patricia(&t);
        // Root (::/0 with the default route) plus one /32 leaf.
        assert_eq!(img.len(), 2 * PAT_NODE_WORDS as usize);
        let root = &img[..PAT_NODE_WORDS as usize];
        assert_eq!(root[2], 1, "default route lives at the root");
        assert_eq!(root[4], DST_ADDR_WORD, "branch bit 0 lives in dst word 0");
        assert_eq!(root[5], 0x8000_0000);
        assert_eq!(&root[6..14], &[0, 0, 0, 0, 0, 0, 0, 0], "::/0 masks nothing");
        // The /32 leaf hangs off the root's 0-side (2001:... starts 001…).
        assert_eq!(root[0], TABLE_BASE + PAT_NODE_WORDS);
        assert_eq!(root[1], NULL_PTR);
        let leaf = &img[PAT_NODE_WORDS as usize..];
        assert_eq!(leaf[2], 3);
        assert_eq!(leaf[4], DST_ADDR_WORD + 1, "/32 branches on bit 32 = word 1");
        assert_eq!(leaf[5], 0x8000_0000);
        assert_eq!(&leaf[6..10], &[0xffff_ffff, 0x2001_0db8, 0, 0]);
    }

    #[test]
    fn patricia_host_route_never_branches() {
        let t = taco_routing::PatriciaTable::from_routes([r("2001:db8::7/128", 2)]);
        let img = serialize_patricia(&t);
        let leaf = &img[PAT_NODE_WORDS as usize..];
        assert_eq!(leaf[5], 0, "/128 branch mask is the never-matching zero");
        assert_eq!(leaf[4], DST_ADDR_WORD + 3);
        assert_eq!(&leaf[6..10], &[0xffff_ffff, 0x2001_0db8, 0xffff_ffff, 0]);
    }

    #[test]
    fn full_patricia_workload_table_fits_the_table_area() {
        // Path compression is what makes the full 100-entry table image fit
        // where the unibit trie's (4 words x ~1 node per prefix bit) could
        // not — the patricia column needs no differential route cap.
        let t = taco_routing::PatriciaTable::from_routes(
            (0..100u16).map(|i| r(&format!("2001:db8:{i:x}::/48"), i)),
        );
        let img_end = TABLE_BASE + serialize_patricia(&t).len() as u32;
        assert!(img_end < DGRAM_BASE, "patricia image ({img_end:#x}) runs into datagram area");
    }

    #[test]
    fn dgram_slots_do_not_overlap_table() {
        let t = SequentialTable::from_routes(
            (0..100u16).map(|i| r(&format!("2001:db8:{i:x}::/48"), i)),
        );
        let img_end = TABLE_BASE + serialize_sequential(&t).len() as u32;
        assert!(img_end < DGRAM_BASE, "table image ({img_end:#x}) runs into datagram area");
        assert_eq!(dgram_slot(2), DGRAM_BASE + 1024);
    }
}
