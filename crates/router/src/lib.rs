#![warn(missing_docs)]

//! The IPv6 router application on the TACO protocol processor.
//!
//! This crate assembles the substrates into the system the paper evaluates:
//!
//! * [`layout`] — the data-memory map (whole datagrams in main memory,
//!   routing-table images for the scan and tree engines);
//! * [`microcode`] — generated TTA move programs for the forwarding fast
//!   path, one per routing-table organisation, written against *virtual*
//!   FU instances so the same code exploits whatever buses and FUs an
//!   architecture instance provides;
//! * [`cycle`] — [`CycleRouter`]: microcode + simulator + table image,
//!   the measured object behind every Table 1 cell;
//! * [`reference`](mod@reference) — the behavioural router used as a functional oracle
//!   and as the slow path (ICMPv6 errors, local delivery);
//! * [`router`] — the full Fig. 1 system: line cards, forwarding core and
//!   the RIPng control plane keeping the table fresh;
//! * [`traffic`] — reproducible synthetic workloads.
//!
//! # Examples
//!
//! Forward one datagram through the cycle-accurate CAM router:
//!
//! ```
//! use taco_isa::MachineConfig;
//! use taco_router::cycle::CycleRouter;
//! use taco_router::microcode::MicrocodeOptions;
//! use taco_routing::{CamTable, PortId, Route};
//! use taco_ipv6::{Datagram, NextHeader};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let table = CamTable::from_routes([Route::new(
//!     "2001:db8::/32".parse()?, "fe80::1".parse()?, PortId(2), 1,
//! )]);
//! let mut router = CycleRouter::cam(
//!     &MachineConfig::three_bus_one_fu(), table, 2, &MicrocodeOptions::default())?;
//! let d = Datagram::builder("2001:db8:9::1".parse()?, "2001:db8::42".parse()?)
//!     .hop_limit(64)
//!     .payload(NextHeader::Udp, vec![0u8; 16])
//!     .build();
//! router.enqueue(PortId(0), &d)?;
//! let stats = router.run(100_000)?;
//! assert_eq!(router.forwarded()[0].0, PortId(2));
//! println!("forwarding took {} cycles", stats.cycles);
//! # Ok(())
//! # }
//! ```

pub mod cycle;
pub mod layout;
pub mod linecard;
pub mod microcode;
pub mod reference;
pub mod rng;
pub mod router;
pub mod traffic;

pub use cycle::{CamBackend, CycleRouter};
pub use linecard::{Frame, LineCard};
pub use microcode::MicrocodeOptions;
pub use reference::{DropReason, ForwardDecision, ForwardingStats, ReferenceRouter};
pub use rng::SplitMix64;
pub use router::{Router, TickReport};
pub use taco_sim::StepMode;
pub use traffic::{ripng_datagram, TrafficGen};
