//! The complete router of the paper's Fig. 1: line cards around a
//! forwarding core plus the RIPng control plane.
//!
//! This is the *behavioural* integration (the cycle-accurate equivalent of
//! the forwarding core lives in [`crate::cycle`]): datagrams flow from line
//! card input buffers through the forwarding core to line card output
//! buffers, RIPng traffic is terminated and answered, and the routing table
//! the core forwards with is kept in sync with the RIPng RIB — "the TACO
//! processor is in charge of deciding how the forwarded datagrams are to be
//! routed between the line cards and takes care of building and maintaining
//! its routing table".

use taco_ipv6::ripng::{Command, RipngPacket, PORT};
use taco_ipv6::udp::UdpDatagram;
use taco_ipv6::{Datagram, Ipv6Address, NextHeader};
use taco_routing::ripng::{InterfaceConfig, RipngEngine};
use taco_routing::{LpmTable, PortId, SimTime};

use crate::linecard::LineCard;
use crate::reference::{DropReason, ForwardDecision, ReferenceRouter};
use crate::traffic::ripng_datagram;

/// What one [`Router::tick`] did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TickReport {
    /// Datagrams forwarded between line cards.
    pub forwarded: u64,
    /// Datagrams delivered to the control plane.
    pub delivered: u64,
    /// Datagrams dropped.
    pub dropped: u64,
    /// Of [`TickReport::dropped`], frames the core rejected as malformed
    /// (parse failures — RFC 2460 says drop, no ICMP error).
    pub dropped_malformed: u64,
    /// Of [`TickReport::dropped`], datagrams that expired (hop limit),
    /// bouncing an ICMPv6 time-exceeded.
    pub dropped_hop_limit: u64,
    /// RIPng packets transmitted (periodic, triggered and replies).
    pub ripng_sent: u64,
}

/// An IPv6 router: line cards + forwarding core + RIPng.
///
/// # Examples
///
/// Two routers discovering each other's networks is shown in the
/// `ripng_convergence` example; the unit tests below exercise the pieces.
#[derive(Debug)]
pub struct Router<T: LpmTable> {
    cards: Vec<LineCard>,
    core: ReferenceRouter<T>,
    ripng: RipngEngine,
    started: bool,
}

impl<T: LpmTable> Router<T> {
    /// Builds a router with one line card per interface; `table` seeds the
    /// forwarding state (it is immediately overwritten from the RIPng RIB,
    /// which starts with the connected routes).
    pub fn new(interfaces: Vec<InterfaceConfig>, table: T) -> Self {
        let cards = interfaces.iter().map(|i| LineCard::new(i.port)).collect();
        let local_addrs = interfaces.iter().map(|i| i.address).collect();
        let ripng = RipngEngine::new(interfaces);
        let mut core = ReferenceRouter::new(table, local_addrs);
        ripng.sync_fib(core.table_mut());
        Router { cards, core, ripng, started: false }
    }

    /// The line card serving `port`.
    ///
    /// # Panics
    ///
    /// Panics if `port` has no card.
    pub fn card(&self, port: PortId) -> &LineCard {
        self.cards.iter().find(|c| c.port() == port).expect("no such port")
    }

    /// Mutable access to the line card serving `port` (to inject traffic
    /// and drain output).
    ///
    /// # Panics
    ///
    /// Panics if `port` has no card.
    pub fn card_mut(&mut self, port: PortId) -> &mut LineCard {
        self.cards.iter_mut().find(|c| c.port() == port).expect("no such port")
    }

    /// The forwarding core (stats, table).
    pub fn core(&self) -> &ReferenceRouter<T> {
        &self.core
    }

    /// The RIPng engine (RIB, stats).
    pub fn ripng(&self) -> &RipngEngine {
        &self.ripng
    }

    /// All line cards, in interface order.
    pub fn cards(&self) -> &[LineCard] {
        &self.cards
    }

    /// Datagrams waiting in line-card input buffers across the router.
    pub fn pending(&self) -> usize {
        self.cards.iter().map(|c| c.pending()).sum()
    }

    /// Processes all pending input, runs protocol timers at `now`, and
    /// refreshes the forwarding table from the RIB.
    pub fn tick(&mut self, now: SimTime) -> TickReport {
        self.tick_budgeted(now, usize::MAX)
    }

    /// Like [`Router::tick`], but processes at most `max_datagrams` from the
    /// input buffers — the rest stay queued for later ticks.  This is the
    /// scenario engine's service-rate model: a processor that can forward
    /// only so many datagrams per tick falls behind a line-rate burst, and
    /// the backlog (then the tail drops) becomes measurable.
    pub fn tick_budgeted(&mut self, now: SimTime, max_datagrams: usize) -> TickReport {
        let mut report = TickReport::default();
        let mut budget = max_datagrams;

        // RFC 2080 §2.5.1: on startup, ask every neighbour for its whole
        // table rather than waiting out a periodic-update interval.
        if !self.started {
            self.started = true;
            for (port, request) in self.ripng.startup_requests() {
                self.send_ripng(port, &request, Ipv6Address::ALL_RIPNG_ROUTERS);
                report.ripng_sent += 1;
            }
        }

        // 1. Drain line-card inputs through the forwarding core.
        let ports: Vec<PortId> = self.cards.iter().map(|c| c.port()).collect();
        'service: for port in &ports {
            loop {
                if budget == 0 {
                    break 'service;
                }
                let Some(frame) = self.card_mut(*port).poll_input() else {
                    break;
                };
                budget -= 1;
                let bytes = frame.into_bytes();
                match self.core.process(*port, &bytes) {
                    ForwardDecision::Forward { out_port, datagram } => {
                        report.forwarded += 1;
                        self.card_mut(out_port).transmit(datagram);
                    }
                    ForwardDecision::Deliver { datagram } => {
                        report.delivered += 1;
                        report.ripng_sent += self.deliver(*port, &datagram, now);
                    }
                    ForwardDecision::Drop { icmp, reason } => {
                        report.dropped += 1;
                        match reason {
                            DropReason::Malformed => report.dropped_malformed += 1,
                            DropReason::HopLimitExceeded => report.dropped_hop_limit += 1,
                            _ => {}
                        }
                        if let Some(err) = icmp {
                            self.card_mut(*port).transmit(err);
                        }
                    }
                }
            }
        }

        // 2. Protocol timers: periodic/triggered updates, expirations.
        for (port, packet) in self.ripng.tick(now) {
            self.send_ripng(port, &packet, Ipv6Address::ALL_RIPNG_ROUTERS);
            report.ripng_sent += 1;
        }

        // 3. Forwarding table follows the RIB.
        self.ripng.sync_fib(self.core.table_mut());
        report
    }

    /// Handles a locally delivered datagram; returns how many RIPng packets
    /// were transmitted in response.
    fn deliver(&mut self, port: PortId, datagram: &Datagram, now: SimTime) -> u64 {
        if datagram.upper_protocol() != NextHeader::Udp {
            return 0; // ping etc. are beyond the control plane modelled here
        }
        let Ok(udp) =
            UdpDatagram::parse(datagram.payload(), &datagram.header().src, &datagram.header().dst)
        else {
            return 0;
        };
        if udp.header().dst_port != PORT {
            return 0;
        }
        let Ok(packet) = RipngPacket::parse(udp.data()) else {
            return 0;
        };
        let from = datagram.header().src;
        let mut sent = 0;
        match packet.command {
            Command::Response => {
                for (out_port, update) in self.ripng.handle_response(port, from, &packet, now) {
                    self.send_ripng(out_port, &update, Ipv6Address::ALL_RIPNG_ROUTERS);
                    sent += 1;
                }
            }
            Command::Request => {
                if let Some(reply) = self.ripng.handle_request(port, &packet, now) {
                    self.send_ripng(port, &reply, from);
                    sent += 1;
                }
            }
        }
        sent
    }

    /// Transmits a RIPng packet, splitting it at the interface MTU as
    /// RFC 2080 §2.1 requires ("as many packets as necessary").
    fn send_ripng(&mut self, port: PortId, packet: &RipngPacket, to: Ipv6Address) {
        let from = self
            .ripng
            .interfaces()
            .iter()
            .find(|i| i.port == port)
            .map(|i| i.address)
            .unwrap_or(Ipv6Address::UNSPECIFIED);
        let mtu = self.card(port).mtu();
        let per_packet = RipngPacket::max_entries_for_mtu(mtu).max(1);

        let mut chunks: Vec<RipngPacket> = if packet.entries.len() <= per_packet {
            vec![packet.clone()]
        } else {
            packet
                .entries
                .chunks(per_packet)
                .map(|entries| RipngPacket { command: packet.command, entries: entries.to_vec() })
                .collect()
        };
        for chunk in chunks.drain(..) {
            let datagram = if to == Ipv6Address::ALL_RIPNG_ROUTERS {
                ripng_datagram(from, &chunk)
            } else {
                let udp = UdpDatagram::new(PORT, PORT, chunk.to_bytes(), &from, &to);
                Datagram::builder(from, to)
                    .hop_limit(255)
                    .payload(NextHeader::Udp, udp.to_bytes())
                    .build()
            };
            self.card_mut(port).transmit(datagram);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taco_routing::SequentialTable;

    fn interfaces() -> Vec<InterfaceConfig> {
        vec![
            InterfaceConfig::new(
                PortId(0),
                "fe80::a".parse().unwrap(),
                vec!["2001:db8:a::/48".parse().unwrap()],
            ),
            InterfaceConfig::new(
                PortId(1),
                "fe80::b".parse().unwrap(),
                vec!["2001:db8:b::/48".parse().unwrap()],
            ),
        ]
    }

    fn router() -> Router<SequentialTable> {
        Router::new(interfaces(), SequentialTable::new())
    }

    fn dgram(dst: &str) -> Datagram {
        Datagram::builder("2001:db8:a::5".parse().unwrap(), dst.parse().unwrap())
            .hop_limit(64)
            .payload(NextHeader::Udp, vec![0u8; 8])
            .build()
    }

    #[test]
    fn forwards_between_connected_networks() {
        let mut r = router();
        r.card_mut(PortId(0)).receive(dgram("2001:db8:b::7"));
        let report = r.tick(SimTime::ZERO);
        assert_eq!(report.forwarded, 1);
        let out = r.card_mut(PortId(1)).drain_transmitted();
        // Output card carries the forwarded datagram plus its periodic
        // RIPng update; find the forwarded one.
        assert!(out.iter().any(|d| d.header().hop_limit == 63));
    }

    #[test]
    fn first_tick_sends_startup_requests_and_periodic_updates() {
        let mut r = router();
        let report = r.tick(SimTime::ZERO);
        assert_eq!(report.ripng_sent, 4); // request + periodic per interface
                                          // The startup request is a whole-table RIPng request on the wire.
        let out = r.card_mut(PortId(0)).drain_transmitted();
        let has_request = out.iter().any(|d| {
            UdpDatagram::parse(d.payload(), &d.header().src, &d.header().dst)
                .ok()
                .and_then(|u| RipngPacket::parse(u.data()).ok())
                .is_some_and(|p| p.is_whole_table_request())
        });
        assert!(has_request);
        // Subsequent ticks send no further requests.
        let report = r.tick(SimTime::from_secs(30));
        assert_eq!(report.ripng_sent, 2);
    }

    #[test]
    fn learns_from_neighbour_response() {
        let mut r = router();
        r.tick(SimTime::ZERO);
        let mut g = crate::traffic::TrafficGen::new(1, 2);
        let foreign = taco_routing::Route::new(
            "2001:db8:c::/48".parse().unwrap(),
            "fe80::2".parse().unwrap(),
            PortId(0),
            1,
        );
        let pkt = g.ripng_response(&[foreign]);
        let adv = ripng_datagram("fe80::2".parse().unwrap(), &pkt);
        r.card_mut(PortId(0)).receive(adv);
        r.tick(SimTime::from_secs(1));
        // The learned route is now in the FIB: traffic to it forwards.
        r.card_mut(PortId(1)).receive(dgram("2001:db8:c::1"));
        let report = r.tick(SimTime::from_secs(2));
        assert_eq!(report.forwarded, 1);
    }

    #[test]
    fn answers_whole_table_requests_unicast() {
        let mut r = router();
        r.tick(SimTime::ZERO);
        let req = RipngPacket::whole_table_request();
        let from: Ipv6Address = "fe80::77".parse().unwrap();
        let udp = UdpDatagram::new(PORT, PORT, req.to_bytes(), &from, &"fe80::a".parse().unwrap());
        let d = Datagram::builder(from, "fe80::a".parse().unwrap())
            .hop_limit(255)
            .payload(NextHeader::Udp, udp.to_bytes())
            .build();
        r.card_mut(PortId(0)).receive(d);
        r.tick(SimTime::from_secs(1));
        let out = r.card_mut(PortId(0)).drain_transmitted();
        let reply =
            out.iter().find(|d| d.header().dst == from).expect("unicast reply to the requester");
        let udp = UdpDatagram::parse(reply.payload(), &reply.header().src, &from).unwrap();
        let pkt = RipngPacket::parse(udp.data()).unwrap();
        assert_eq!(pkt.command, Command::Response);
        assert_eq!(pkt.entries.len(), 2); // both connected networks
    }

    #[test]
    fn large_tables_split_across_mtu_sized_updates() {
        // 100 learned routes + 2 connected exceed one Ethernet-MTU packet
        // (72 RTEs); the periodic update must arrive as two datagrams, each
        // within the MTU, together carrying every route.
        let mut r = router();
        let mut g = crate::traffic::TrafficGen::new(5, 2);
        let foreign = g.table(100, false);
        // The neighbour also respects the MTU: advertise in two chunks.
        for chunk in foreign.chunks(60) {
            let pkt = g.ripng_response(chunk);
            let adv = ripng_datagram("fe80::2".parse().unwrap(), &pkt);
            assert!(r.card_mut(PortId(0)).receive(adv), "advertisement exceeds the MTU");
        }
        r.tick(SimTime::ZERO);
        r.card_mut(PortId(1)).drain_transmitted();
        r.tick(SimTime::from_secs(30)); // periodic update with the full RIB
        let out = r.card_mut(PortId(1)).drain_transmitted();
        let mut total_entries = 0;
        let mut update_packets = 0;
        for d in &out {
            assert!(d.wire_len() <= 1500, "update exceeds the MTU: {}", d.wire_len());
            if let Ok(udp) = UdpDatagram::parse(d.payload(), &d.header().src, &d.header().dst) {
                if let Ok(p) = RipngPacket::parse(udp.data()) {
                    if p.command == Command::Response {
                        update_packets += 1;
                        total_entries += p.entries.len();
                    }
                }
            }
        }
        assert!(update_packets >= 2, "expected a split update, got {update_packets}");
        assert_eq!(total_entries, 102);
    }

    #[test]
    fn budgeted_tick_leaves_backlog_queued() {
        let mut r = router();
        for _ in 0..5 {
            r.card_mut(PortId(0)).receive(dgram("2001:db8:b::7"));
        }
        assert_eq!(r.pending(), 5);
        let report = r.tick_budgeted(SimTime::ZERO, 2);
        assert_eq!(report.forwarded, 2);
        assert_eq!(r.pending(), 3);
        // The remainder drains on later ticks, in arrival order.
        let report = r.tick_budgeted(SimTime::from_secs(1), usize::MAX);
        assert_eq!(report.forwarded, 3);
        assert_eq!(r.pending(), 0);
    }

    #[test]
    fn no_route_counts_drop() {
        let mut r = router();
        r.card_mut(PortId(0)).receive(dgram("9999::1"));
        let report = r.tick(SimTime::ZERO);
        assert_eq!(report.dropped, 1);
        assert_eq!(report.forwarded, 0);
        // A no-route drop is neither malformed nor expired.
        assert_eq!(report.dropped_malformed, 0);
        assert_eq!(report.dropped_hop_limit, 0);
    }

    #[test]
    fn malformed_and_expiring_frames_drop_gracefully_by_class() {
        let mut r = router();
        r.tick(SimTime::ZERO); // startup traffic out of the way
                               // Truncated garbage straight off the wire.
        assert!(r.card_mut(PortId(0)).receive_raw(vec![0xff; 12]));
        // A consistent frame whose version nibble says IPv4.
        let mut bad = dgram("2001:db8:b::7").to_bytes();
        bad[0] = (bad[0] & 0x0f) | (4 << 4);
        assert!(r.card_mut(PortId(0)).receive_raw(bad));
        // An expiring datagram.
        let expired =
            Datagram::builder("2001:db8:a::5".parse().unwrap(), "2001:db8:b::7".parse().unwrap())
                .hop_limit(0)
                .payload(NextHeader::Udp, vec![0u8; 4])
                .build();
        assert!(r.card_mut(PortId(0)).receive(expired));

        let report = r.tick(SimTime::from_secs(1));
        assert_eq!(report.dropped, 3);
        assert_eq!(report.dropped_malformed, 2);
        assert_eq!(report.dropped_hop_limit, 1);
        assert_eq!(report.forwarded, 0);
        // The expiring datagram bounced an ICMPv6 time-exceeded; malformed
        // frames are dropped silently per RFC 2460.
        let out = r.card_mut(PortId(0)).drain_transmitted();
        assert_eq!(out.iter().filter(|d| d.upper_protocol() == NextHeader::Icmpv6).count(), 1);
    }
}
